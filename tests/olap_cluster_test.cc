#include <gtest/gtest.h>

#include "common/fault_injector.h"
#include "olap/baselines.h"
#include "olap/cluster.h"
#include "stream/broker.h"

namespace uberrt::olap {
namespace {

using stream::AckMode;
using stream::Broker;
using stream::Message;
using stream::TopicConfig;

RowSchema RideSchema() {
  return RowSchema({{"ride_id", ValueType::kInt},
                    {"city", ValueType::kString},
                    {"fare", ValueType::kDouble},
                    {"status", ValueType::kString},
                    {"ts", ValueType::kInt}});
}

class OlapClusterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    broker_ = std::make_unique<Broker>("c1");
    store_ = std::make_unique<storage::InMemoryObjectStore>();
    store_->SetFaultInjector(&faults_);
    cluster_ = std::make_unique<OlapCluster>(broker_.get(), store_.get());
    TopicConfig config;
    config.num_partitions = 4;
    ASSERT_TRUE(broker_->CreateTopic("rides", config).ok());
  }

  void ProduceRide(int64_t id, const std::string& city, double fare,
                   const std::string& status = "completed", int64_t ts = 1000,
                   const std::string& key = "") {
    Message m;
    m.key = key.empty() ? city : key;
    m.value = EncodeRow({Value(id), Value(city), Value(fare), Value(status), Value(ts)});
    m.timestamp = ts;
    ASSERT_TRUE(broker_->Produce("rides", std::move(m)).ok());
  }

  TableConfig RideTable(const std::string& name = "rides_t") {
    TableConfig config;
    config.name = name;
    config.schema = RideSchema();
    config.time_column = "ts";
    config.segment_rows_threshold = 50;
    config.index_config.inverted_columns = {"city"};
    return config;
  }

  common::FaultInjector faults_;
  std::unique_ptr<Broker> broker_;
  std::unique_ptr<storage::InMemoryObjectStore> store_;
  std::unique_ptr<OlapCluster> cluster_;
};

TEST_F(OlapClusterTest, IngestsAndAnswersGroupBy) {
  for (int i = 0; i < 200; ++i) {
    ProduceRide(i, i % 2 == 0 ? "sf" : "nyc", 10.0 + i % 5);
  }
  ASSERT_TRUE(cluster_->CreateTable(RideTable(), "rides").ok());
  ASSERT_TRUE(cluster_->IngestAll("rides_t").ok());
  EXPECT_EQ(cluster_->NumRows("rides_t").value(), 200);
  EXPECT_EQ(cluster_->IngestLag("rides_t").value(), 0);

  OlapQuery query;
  query.group_by = {"city"};
  query.aggregations = {OlapAggregation::Count("rides"),
                        OlapAggregation::Avg("fare", "avg_fare")};
  query.order_by = "rides";
  Result<OlapResult> result = cluster_->Query("rides_t", query);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result.value().rows.size(), 2u);
  EXPECT_EQ(result.value().rows[0][1].AsInt(), 100);
  EXPECT_EQ(result.value().rows[1][1].AsInt(), 100);
  // Sealing happened (threshold 50, 200 rows over 4 partitions).
  EXPECT_GT(result.value().stats.segments_scanned, 0);
}

TEST_F(OlapClusterTest, ScatterGatherMergesAcrossServersAndBuffer) {
  // 75 rows per city: crosses one seal boundary, leaving a consuming tail.
  for (int i = 0; i < 150; ++i) ProduceRide(i, i % 2 == 0 ? "sf" : "nyc", 1.0);
  ASSERT_TRUE(cluster_->CreateTable(RideTable(), "rides").ok());
  ASSERT_TRUE(cluster_->IngestAll("rides_t").ok());
  OlapQuery query;
  query.aggregations = {OlapAggregation::Count("n"), OlapAggregation::Sum("fare", "s")};
  Result<OlapResult> result = cluster_->Query("rides_t", query);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().rows.size(), 1u);
  EXPECT_EQ(result.value().rows[0][0].AsInt(), 150);
  EXPECT_DOUBLE_EQ(result.value().rows[0][1].AsDouble(), 150.0);
  EXPECT_EQ(result.value().stats.servers_queried, 2);
}

TEST_F(OlapClusterTest, VectorizedEngineCountersSurfaceOnQueryPath) {
  for (int i = 0; i < 200; ++i) ProduceRide(i, i % 2 == 0 ? "sf" : "nyc", 2.0);
  ASSERT_TRUE(cluster_->CreateTable(RideTable(), "rides").ok());
  ASSERT_TRUE(cluster_->IngestAll("rides_t").ok());
  // Threshold sealing already produced segments; flush any consuming tail so
  // every row is served by the vectorized engine.
  ASSERT_TRUE(cluster_->ForceSeal("rides_t").ok());

  OlapQuery query;
  query.aggregations = {OlapAggregation::Count("n")};
  query.filters = {FilterPredicate::Eq("city", Value("sf"))};
  Result<OlapResult> result = cluster_->Query("rides_t", query);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().rows[0][0].AsInt(), 100);
  // Per-query stats report vectorized activity: the inverted-index filter
  // ran as bitmap kernels and the aggregate phase ran in row batches.
  EXPECT_GT(result.value().stats.exec_batches, 0);
  EXPECT_GT(result.value().stats.bitmap_words, 0);
  // ...and the gather mirrors them into the cluster counters.
  EXPECT_EQ(cluster_->metrics()->GetCounter("olap.exec.batches")->value(),
            result.value().stats.exec_batches);
  EXPECT_EQ(cluster_->metrics()->GetCounter("olap.exec.bitmap_words")->value(),
            result.value().stats.bitmap_words);

  // The scalar oracle bypasses the vectorized engine entirely.
  query.force_scalar = true;
  Result<OlapResult> scalar = cluster_->Query("rides_t", query);
  ASSERT_TRUE(scalar.ok());
  EXPECT_EQ(scalar.value().rows, result.value().rows);
  EXPECT_EQ(scalar.value().stats.exec_batches, 0);
  EXPECT_EQ(scalar.value().stats.bitmap_words, 0);
}

TEST_F(OlapClusterTest, OrderByAndLimitAppliedAfterMerge) {
  for (int i = 0; i < 100; ++i) {
    ProduceRide(i, "city" + std::to_string(i % 10), static_cast<double>(i % 10));
  }
  ASSERT_TRUE(cluster_->CreateTable(RideTable(), "rides").ok());
  ASSERT_TRUE(cluster_->IngestAll("rides_t").ok());
  OlapQuery query;
  query.group_by = {"city"};
  query.aggregations = {OlapAggregation::Sum("fare", "total")};
  query.order_by = "total";
  query.order_desc = true;
  query.limit = 3;
  Result<OlapResult> result = cluster_->Query("rides_t", query);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().rows.size(), 3u);
  EXPECT_EQ(result.value().rows[0][0].AsString(), "city9");
  EXPECT_DOUBLE_EQ(result.value().rows[0][1].AsDouble(), 90.0);
  EXPECT_GE(result.value().rows[0][1].AsDouble(), result.value().rows[1][1].AsDouble());
}

TEST_F(OlapClusterTest, TimeBoundaryPruningSkipsSegments) {
  // Two time epochs in separate segments.
  for (int i = 0; i < 50; ++i) ProduceRide(i, "sf", 1.0, "completed", 1000 + i, "sf");
  for (int i = 0; i < 50; ++i) ProduceRide(i, "sf", 1.0, "completed", 100000 + i, "sf");
  TableConfig config = RideTable();
  config.segment_rows_threshold = 50;
  ASSERT_TRUE(cluster_->CreateTable(config, "rides").ok());
  ASSERT_TRUE(cluster_->IngestAll("rides_t").ok());

  OlapQuery recent;
  recent.aggregations = {OlapAggregation::Count("n")};
  recent.filters = {FilterPredicate::Range("ts", FilterPredicate::Op::kGe,
                                           Value(int64_t{100000}))};
  Result<OlapResult> all_segments = cluster_->Query("rides_t", recent);
  ASSERT_TRUE(all_segments.ok());
  EXPECT_EQ(all_segments.value().rows[0][0].AsInt(), 50);
  // Old segment pruned by its max_time: only 1 sealed segment scanned (+
  // buffer rows if any).
  EXPECT_LE(all_segments.value().stats.segments_scanned, 1);
}

TEST_F(OlapClusterTest, UpsertKeepsLatestVersionOnly) {
  TopicConfig config;
  config.num_partitions = 4;
  ASSERT_TRUE(broker_->CreateTopic("fares", config).ok());
  TableConfig table;
  table.name = "fares_t";
  table.schema = RowSchema({{"ride_id", ValueType::kString},
                            {"fare", ValueType::kDouble},
                            {"status", ValueType::kString}});
  table.segment_rows_threshold = 10;
  table.upsert_enabled = true;
  table.primary_key_column = "ride_id";
  ASSERT_TRUE(cluster_->CreateTable(table, "fares").ok());

  auto produce = [&](const std::string& ride, double fare, const std::string& status) {
    Message m;
    m.key = ride;  // stream partitioned by primary key
    m.value = EncodeRow({Value(ride), Value(fare), Value(status)});
    m.timestamp = 1;
    ASSERT_TRUE(broker_->Produce("fares", std::move(m)).ok());
  };
  // 30 rides, then correct fares for 10 of them (the paper's
  // "correcting a ride fare" scenario). Crosses seal boundaries.
  for (int i = 0; i < 30; ++i) produce("ride" + std::to_string(i), 10.0, "completed");
  ASSERT_TRUE(cluster_->IngestAll("fares_t").ok());
  for (int i = 0; i < 10; ++i) produce("ride" + std::to_string(i), 99.0, "corrected");
  ASSERT_TRUE(cluster_->IngestAll("fares_t").ok());

  OlapQuery query;
  query.aggregations = {OlapAggregation::Count("n"), OlapAggregation::Sum("fare", "s")};
  Result<OlapResult> result = cluster_->Query("fares_t", query);
  ASSERT_TRUE(result.ok());
  // Exactly one live row per key.
  EXPECT_EQ(result.value().rows[0][0].AsInt(), 30);
  EXPECT_DOUBLE_EQ(result.value().rows[0][1].AsDouble(), 20 * 10.0 + 10 * 99.0);

  // Point lookup returns only the corrected version...
  OlapQuery point;
  point.select_columns = {"ride_id", "fare", "status"};
  point.filters = {FilterPredicate::Eq("ride_id", Value("ride3"))};
  Result<OlapResult> lookup = cluster_->Query("fares_t", point);
  ASSERT_TRUE(lookup.ok());
  ASSERT_EQ(lookup.value().rows.size(), 1u);
  EXPECT_DOUBLE_EQ(lookup.value().rows[0][1].AsDouble(), 99.0);
  EXPECT_EQ(lookup.value().rows[0][2].AsString(), "corrected");
  // ...and partition-aware routing queried a single server (Section 4.3.1).
  EXPECT_EQ(lookup.value().stats.servers_queried, 1);
}

TEST_F(OlapClusterTest, UpsertRejectsSortedColumnAndStarTree) {
  TableConfig table = RideTable("bad");
  table.upsert_enabled = true;
  table.primary_key_column = "ride_id";
  table.index_config.sorted_column = "city";
  EXPECT_FALSE(cluster_->CreateTable(table, "rides").ok());
  table.index_config.sorted_column.clear();
  table.index_config.star_tree_dimensions = {"city"};
  EXPECT_FALSE(cluster_->CreateTable(table, "rides").ok());
}

TEST_F(OlapClusterTest, SyncArchivalHaltsIngestionDuringStoreOutage) {
  for (int i = 0; i < 400; ++i) ProduceRide(i, "sf", 1.0, "completed", 1000, "sf");
  TableConfig config = RideTable();
  ClusterTableOptions options;
  options.archival_mode = ArchivalMode::kSyncCentralized;
  ASSERT_TRUE(cluster_->CreateTable(config, "rides", options).ok());
  faults_.SetDown("store", true);
  for (int i = 0; i < 20; ++i) cluster_->IngestOnce("rides_t").ok();
  // Ingestion halted at the first seal: lag remains.
  EXPECT_GT(cluster_->IngestLag("rides_t").value(), 0);
  // Store recovers -> ingestion resumes and archives.
  faults_.SetDown("store", false);
  ASSERT_TRUE(cluster_->IngestAll("rides_t").ok());
  EXPECT_EQ(cluster_->IngestLag("rides_t").value(), 0);
  EXPECT_FALSE(store_->List("segments/rides_t/").empty());
}

TEST_F(OlapClusterTest, AsyncP2PKeepsIngestingDuringStoreOutage) {
  for (int i = 0; i < 400; ++i) ProduceRide(i, "sf", 1.0, "completed", 1000, "sf");
  TableConfig config = RideTable();
  ClusterTableOptions options;
  options.archival_mode = ArchivalMode::kAsyncPeerToPeer;
  ASSERT_TRUE(cluster_->CreateTable(config, "rides", options).ok());
  faults_.SetDown("store", true);
  ASSERT_TRUE(cluster_->IngestAll("rides_t").ok());
  // Fully ingested despite the outage; archival queued.
  EXPECT_EQ(cluster_->IngestLag("rides_t").value(), 0);
  EXPECT_GT(cluster_->ArchivalQueueDepth("rides_t"), 0);
  // Store back: queue drains (counting the earlier failures as retries).
  faults_.SetDown("store", false);
  ASSERT_TRUE(cluster_->DrainArchivalQueue("rides_t").ok());
  EXPECT_EQ(cluster_->ArchivalQueueDepth("rides_t"), 0);
}

TEST_F(OlapClusterTest, PeerToPeerRecoveryRestoresKilledServer) {
  for (int i = 0; i < 300; ++i) ProduceRide(i, i % 2 ? "sf" : "nyc", 2.0);
  ClusterTableOptions options;
  options.archival_mode = ArchivalMode::kAsyncPeerToPeer;
  options.replication_factor = 2;
  ASSERT_TRUE(cluster_->CreateTable(RideTable(), "rides", options).ok());
  ASSERT_TRUE(cluster_->IngestAll("rides_t").ok());
  int64_t rows_before = cluster_->NumRows("rides_t").value();

  // Kill server 0 while the archival store is down: only peers can help.
  faults_.SetDown("store", true);
  ASSERT_TRUE(cluster_->KillServer("rides_t", 0).ok());
  EXPECT_LT(cluster_->NumRows("rides_t").value(), rows_before);
  Result<RecoveryReport> report = cluster_->RecoverServer("rides_t", 0);
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report.value().segments_from_peers, 0);
  EXPECT_EQ(report.value().segments_lost, 0);
  EXPECT_EQ(cluster_->NumRows("rides_t").value(), rows_before);
  faults_.SetDown("store", false);
}

TEST(EsLikeStoreTest, QueryParityWithOlapSemantics) {
  EsLikeStore es(RideSchema());
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(es.Ingest({Value(static_cast<int64_t>(i)),
                           Value(i % 2 == 0 ? std::string("sf") : std::string("nyc")),
                           Value(10.0 + i % 5),
                           Value(std::string("completed")),
                           Value(static_cast<int64_t>(1000 + i))})
                    .ok());
  }
  OlapQuery query;
  query.group_by = {"city"};
  query.aggregations = {OlapAggregation::Count("n"), OlapAggregation::Avg("fare", "f")};
  Result<OlapResult> result = es.Query(query);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().rows.size(), 2u);
  EXPECT_EQ(result.value().rows[0][1].AsInt(), 50);
  // Range filter.
  OlapQuery range;
  range.aggregations = {OlapAggregation::Count("n")};
  range.filters = {FilterPredicate::Range("ts", FilterPredicate::Op::kGe,
                                          Value(int64_t{1090}))};
  EXPECT_EQ(es.Query(range).value().rows[0][0].AsInt(), 10);
}

TEST(EsLikeStoreTest, FootprintExceedsColumnarSegment) {
  RowSchema schema = RideSchema();
  EsLikeStore es(schema);
  std::vector<Row> rows;
  for (int i = 0; i < 2000; ++i) {
    Row row{Value(static_cast<int64_t>(i)),
            Value("city" + std::to_string(i % 20)),
            Value(10.0 + i % 7),
            Value(i % 3 ? std::string("completed") : std::string("canceled")),
            Value(static_cast<int64_t>(1000 + i))};
    es.Ingest(row).ok();
    rows.push_back(std::move(row));
  }
  Result<std::shared_ptr<Segment>> pinot = Segment::Build("s", schema, rows, {});
  ASSERT_TRUE(pinot.ok());
  // The Section 4.3 footprint ordering: ES-like memory and disk are larger.
  EXPECT_GT(es.MemoryBytes(), pinot.value()->MemoryBytes());
  EXPECT_GT(es.DiskBytes(), pinot.value()->DiskBytes());
}

}  // namespace
}  // namespace uberrt::olap
