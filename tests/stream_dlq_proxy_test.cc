#include <gtest/gtest.h>

#include <atomic>

#include "stream/broker.h"
#include "stream/consumer_proxy.h"
#include "stream/dlq.h"

namespace uberrt::stream {
namespace {

Message Msg(const std::string& key, const std::string& value) {
  Message m;
  m.key = key;
  m.value = value;
  m.timestamp = 1;
  m.headers[kHeaderUid] = value;
  return m;
}

class DlqTest : public ::testing::Test {
 protected:
  void SetUp() override {
    broker_ = std::make_unique<Broker>("c1");
    TopicConfig config;
    config.num_partitions = 2;
    ASSERT_TRUE(broker_->CreateTopic("t", config).ok());
    dlq_ = std::make_unique<DlqManager>(broker_.get(), DlqOptions{2});
    ASSERT_TRUE(dlq_->EnsureTopics("t").ok());
  }
  std::unique_ptr<Broker> broker_;
  std::unique_ptr<DlqManager> dlq_;
};

TEST_F(DlqTest, SideTopicsMirrorPartitions) {
  EXPECT_TRUE(broker_->HasTopic("t__retry"));
  EXPECT_TRUE(broker_->HasTopic("t__dlq"));
  EXPECT_EQ(broker_->NumPartitions("t__retry").value(), 2);
}

TEST_F(DlqTest, FailureRoutesToRetryThenDlq) {
  Message m = Msg("k", "poison");
  auto retry_depth = [&] {
    return broker_->EndOffset("t__retry", 0).value() +
           broker_->EndOffset("t__retry", 1).value();
  };
  // Two retries allowed; third failure parks it.
  ASSERT_TRUE(dlq_->HandleFailure("t", m).ok());  // retry 1
  EXPECT_EQ(retry_depth(), 1);
  EXPECT_EQ(dlq_->DlqDepth("t").value(), 0);
  Message retried = m;
  retried.headers[kHeaderRetryCount] = "1";
  ASSERT_TRUE(dlq_->HandleFailure("t", retried).ok());  // retry 2
  Message exhausted = m;
  exhausted.headers[kHeaderRetryCount] = "2";
  ASSERT_TRUE(dlq_->HandleFailure("t", exhausted).ok());  // -> DLQ
  EXPECT_EQ(dlq_->DlqDepth("t").value(), 1);
}

TEST_F(DlqTest, MergeReinjectsAndPurgeDrops) {
  Message m = Msg("k", "bad");
  m.headers[kHeaderRetryCount] = "5";  // over budget -> straight to DLQ
  ASSERT_TRUE(dlq_->HandleFailure("t", m).ok());
  ASSERT_TRUE(dlq_->HandleFailure("t", m).ok());
  EXPECT_EQ(dlq_->DlqDepth("t").value(), 2);

  int64_t main_before = broker_->EndOffset("t", 0).value() +
                        broker_->EndOffset("t", 1).value();
  Result<int64_t> merged = dlq_->Merge("t", "ops");
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged.value(), 2);
  int64_t main_after = broker_->EndOffset("t", 0).value() +
                       broker_->EndOffset("t", 1).value();
  EXPECT_EQ(main_after - main_before, 2);  // re-injected with reset budget

  // Merge again: already consumed (offset tracked per consumer group).
  EXPECT_EQ(dlq_->Merge("t", "ops").value(), 0);

  // Park more and purge.
  ASSERT_TRUE(dlq_->HandleFailure("t", m).ok());
  EXPECT_EQ(dlq_->Purge("t", "ops").value(), 1);
  EXPECT_EQ(dlq_->Merge("t", "ops").value(), 0);
}

class ConsumerProxyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    broker_ = std::make_unique<Broker>("c1");
    TopicConfig config;
    config.num_partitions = 2;
    ASSERT_TRUE(broker_->CreateTopic("t", config).ok());
  }
  std::unique_ptr<Broker> broker_;
};

TEST_F(ConsumerProxyTest, DispatchesEveryMessageOnce) {
  for (int i = 0; i < 200; ++i) {
    broker_->Produce("t", Msg("k" + std::to_string(i), "v" + std::to_string(i))).ok();
  }
  std::atomic<int64_t> received{0};
  ConsumerProxyOptions options;
  options.num_workers = 4;
  ConsumerProxy proxy(broker_.get(), "t", "g",
                      [&](const Message&) {
                        received.fetch_add(1);
                        return Status::Ok();
                      },
                      options);
  ASSERT_TRUE(proxy.Start().ok());
  ASSERT_TRUE(proxy.WaitUntilCaughtUp().ok());
  proxy.Stop();
  EXPECT_EQ(received.load(), 200);
  EXPECT_EQ(proxy.succeeded(), 200);
  EXPECT_EQ(proxy.dead_lettered(), 0);
}

TEST_F(ConsumerProxyTest, ParallelismBeyondPartitionCount) {
  // 2 partitions but 8 workers: a slow endpoint finishes ~4x faster than
  // partition-bound consumption would allow. We assert concurrency directly:
  // the max number of simultaneously-running endpoint calls exceeds the
  // partition count.
  for (int i = 0; i < 64; ++i) broker_->Produce("t", Msg("", "v")).ok();
  std::atomic<int32_t> in_endpoint{0};
  std::atomic<int32_t> max_concurrent{0};
  ConsumerProxyOptions options;
  options.num_workers = 8;
  ConsumerProxy proxy(broker_.get(), "t", "g",
                      [&](const Message&) {
                        int32_t now = in_endpoint.fetch_add(1) + 1;
                        int32_t seen = max_concurrent.load();
                        while (now > seen &&
                               !max_concurrent.compare_exchange_weak(seen, now)) {
                        }
                        SystemClock::Instance()->SleepMs(2);
                        in_endpoint.fetch_sub(1);
                        return Status::Ok();
                      },
                      options);
  ASSERT_TRUE(proxy.Start().ok());
  ASSERT_TRUE(proxy.WaitUntilCaughtUp().ok());
  proxy.Stop();
  EXPECT_GT(max_concurrent.load(), 2);  // more parallel than partitions
}

TEST_F(ConsumerProxyTest, PoisonMessagesGoToDlqWithoutBlockingTraffic) {
  for (int i = 0; i < 50; ++i) {
    broker_->Produce("t", Msg("k" + std::to_string(i),
                              i % 10 == 0 ? "poison" : "ok")).ok();
  }
  std::atomic<int64_t> processed{0};
  ConsumerProxyOptions options;
  options.num_workers = 4;
  options.max_retries = 2;
  ConsumerProxy proxy(broker_.get(), "t", "g",
                      [&](const Message& m) {
                        if (m.value == "poison") return Status::Internal("cannot parse");
                        processed.fetch_add(1);
                        return Status::Ok();
                      },
                      options);
  ASSERT_TRUE(proxy.Start().ok());
  ASSERT_TRUE(proxy.WaitUntilCaughtUp().ok());
  proxy.Stop();
  // All healthy messages processed despite the poison ones.
  EXPECT_EQ(processed.load(), 45);
  // Every poison message exhausted its retries and was parked.
  EXPECT_EQ(proxy.dead_lettered(), 5);
  EXPECT_EQ(proxy.dlq()->DlqDepth("t").value(), 5);
  // And nothing was lost: 45 ok + 5 parked = 50.
}

}  // namespace
}  // namespace uberrt::stream
