// End-to-end chaos soak: every layer runs against the process-wide
// FaultInjector while the test asserts the system's core durability
// invariants hold. Deterministic per seed; select a seed with
//   UBERRT_CHAOS_SEED=<n> ./chaos_soak_test
// (default 42). CI runs it under TSan with two fixed seeds.

#include <gtest/gtest.h>

#include <cstdlib>
#include <set>
#include <string>
#include <vector>

#include "allactive/coordinator.h"
#include "allactive/drill.h"
#include "allactive/topology.h"
#include "common/fault_injector.h"
#include "common/retry.h"
#include "compute/job_manager.h"
#include "olap/cluster.h"
#include "stream/broker.h"

namespace uberrt {
namespace {

using common::FaultInjector;
using common::FaultRule;
using common::RetryOptions;
using common::RetryPolicy;

uint64_t ChaosSeed() {
  const char* env = std::getenv("UBERRT_CHAOS_SEED");
  if (env == nullptr || *env == '\0') return 42;
  return std::strtoull(env, nullptr, 10);
}

// --- Scenario A: stream layer --------------------------------------------
// Probabilistic produce and fetch faults. Invariant: acked-or-error — every
// produce the retry loop acked is consumable, and nothing unacked was stored.
TEST(ChaosSoakTest, NoAckedMessageLostUnderBrokerFaults) {
  const uint64_t seed = ChaosSeed();
  SCOPED_TRACE("seed=" + std::to_string(seed));
  FaultInjector faults(seed);
  stream::Broker broker("chaos");
  broker.SetFaultInjector(&faults);
  stream::TopicConfig config;
  config.num_partitions = 4;
  ASSERT_TRUE(broker.CreateTopic("events", config).ok());

  FaultRule flaky;
  flaky.error_probability = 0.3;
  faults.SetRule("broker.produce.chaos", flaky);
  faults.SetRule("broker.fetch.chaos", flaky);

  RetryOptions retry_options;
  retry_options.max_attempts = 4;
  MetricsRegistry retry_metrics;
  RetryPolicy produce_retry("soak.produce", retry_options, SystemClock::Instance(),
                            &retry_metrics, seed);
  std::set<std::string> acked;
  for (int i = 0; i < 500; ++i) {
    const std::string uid = "m-" + std::to_string(i);
    stream::Message message;
    message.key = uid;
    message.value = uid;
    message.timestamp = 1000 + i;
    Status produced =
        produce_retry.Run([&] { return broker.Produce("events", message).status(); });
    if (produced.ok()) acked.insert(uid);
  }
  // The fault plane really fired, and the retry loop really absorbed hits.
  EXPECT_GT(faults.metrics()->GetCounter("faults.injected")->value(), 0);
  EXPECT_GT(retry_metrics.GetCounter("retries.soak.produce.retries")->value(), 0);
  EXPECT_GT(retry_metrics.GetCounter("retries.soak.produce.success")->value(), 0);
  ASSERT_GT(acked.size(), 0u);

  // Drain through the faulty fetch path.
  RetryPolicy fetch_retry("soak.fetch", retry_options, SystemClock::Instance(),
                          &retry_metrics, seed);
  std::set<std::string> stored;
  for (int32_t p = 0; p < 4; ++p) {
    int64_t offset = 0;
    const int64_t end = broker.EndOffset("events", p).value();
    while (offset < end) {
      Result<std::vector<stream::Message>> batch =
          fetch_retry.RunResult<std::vector<stream::Message>>(
              [&] { return broker.Fetch("events", p, offset, 64); });
      ASSERT_TRUE(batch.ok()) << batch.status().ToString();
      for (const stream::Message& m : batch.value()) stored.insert(m.value);
      offset += static_cast<int64_t>(batch.value().size());
    }
  }
  // Acked-or-error: the stored set is exactly the acked set. An injected
  // produce fault fires before the append, so an error never hides a write.
  EXPECT_EQ(stored, acked);
}

// --- Scenario B: OLAP layer ----------------------------------------------
// Server churn + store flaps + per-server query faults. Invariant: every
// query that returns Ok returns exact counts; recovery loses no segments;
// archival pressure is observable in olap.backup_retries.
TEST(ChaosSoakTest, OlapStaysCorrectUnderServerChurnAndStoreFlaps) {
  const uint64_t seed = ChaosSeed();
  SCOPED_TRACE("seed=" + std::to_string(seed));
  FaultInjector faults(seed + 1);  // independent stream of randomness
  stream::Broker broker("c1");
  storage::InMemoryObjectStore store;
  store.SetFaultInjector(&faults);
  olap::OlapCluster cluster(&broker, &store);
  cluster.SetFaultInjector(&faults);

  stream::TopicConfig config;
  config.num_partitions = 4;
  ASSERT_TRUE(broker.CreateTopic("rides", config).ok());
  olap::TableConfig table;
  table.name = "rides_t";
  table.schema = RowSchema({{"ride_id", ValueType::kInt},
                            {"city", ValueType::kString},
                            {"fare", ValueType::kDouble},
                            {"ts", ValueType::kInt}});
  table.time_column = "ts";
  table.segment_rows_threshold = 50;
  olap::ClusterTableOptions cluster_options;
  cluster_options.archival_mode = olap::ArchivalMode::kAsyncPeerToPeer;
  cluster_options.replication_factor = 2;
  ASSERT_TRUE(cluster.CreateTable(table, "rides", cluster_options).ok());

  FaultRule flaky_store;
  flaky_store.error_probability = 0.4;
  faults.SetRule("store.put", flaky_store);
  FaultRule flaky_server;
  flaky_server.error_probability = 0.25;
  faults.SetRule("olap.server.query", flaky_server);

  auto exact_count = [&]() -> int64_t {
    olap::OlapQuery query;
    query.aggregations = {olap::OlapAggregation::Count("n")};
    // The cluster retries per-server sub-queries internally; one outer
    // bounded loop absorbs the rare fully-exhausted case.
    for (int tries = 0; tries < 50; ++tries) {
      Result<olap::OlapResult> result = cluster.Query("rides_t", query);
      if (result.ok()) return result.value().rows[0][0].AsInt();
    }
    return -1;
  };

  int64_t produced = 0;
  for (int round = 0; round < 8; ++round) {
    for (int i = 0; i < 100; ++i) {
      stream::Message m;
      m.key = "k" + std::to_string(i % 4);
      m.value = EncodeRow({Value(produced), Value(std::string("sf")),
                           Value(10.0 + i), Value(int64_t{1000})});
      m.timestamp = 1000;
      ASSERT_TRUE(broker.Produce("rides", std::move(m)).ok());
      ++produced;
    }
    ASSERT_TRUE(cluster.IngestAll("rides_t").ok());
    cluster.DrainArchivalQueue("rides_t").ok();  // flap pressure; may not drain

    // Exactness survives every round of faults.
    ASSERT_EQ(exact_count(), produced) << "round " << round;

    // Kill a server while the store is hard-down: only peers can rebuild it.
    const int32_t victim = round % 2;
    faults.SetDown("store", true);
    ASSERT_TRUE(cluster.KillServer("rides_t", victim).ok());
    Result<olap::RecoveryReport> report = cluster.RecoverServer("rides_t", victim);
    ASSERT_TRUE(report.ok());
    EXPECT_EQ(report.value().segments_lost, 0) << "round " << round;
    faults.SetDown("store", false);
    ASSERT_EQ(exact_count(), produced) << "post-recovery round " << round;
  }

  // Retry/fault activity was real and observable.
  EXPECT_GT(cluster.metrics()->GetCounter("olap.backup_retries")->value(), 0);
  EXPECT_GT(cluster.metrics()->GetCounter("retries.olap.query.attempts")->value(), 0);
  EXPECT_GT(faults.metrics()->GetCounter("faults.injected")->value(), 0);

  // Store heals: the archival queue fully drains, nothing was dropped.
  faults.ClearRule("store.put");
  ASSERT_TRUE(cluster.DrainArchivalQueue("rides_t").ok());
  EXPECT_EQ(cluster.ArchivalQueueDepth("rides_t"), 0);
  EXPECT_FALSE(store.List("segments/rides_t/").empty());

  // Partial results are opt-in: with one server hard-down, a partial query
  // succeeds and reports the dropped server; the default stays strict.
  faults.SetDown("olap.server.query.0", true);
  olap::OlapQuery partial;
  partial.aggregations = {olap::OlapAggregation::Count("n")};
  partial.allow_partial = true;
  Result<olap::OlapResult> partial_result = cluster.Query("rides_t", partial);
  ASSERT_TRUE(partial_result.ok());
  EXPECT_GE(partial_result.value().stats.servers_failed, 1);
  olap::OlapQuery strict;
  strict.aggregations = {olap::OlapAggregation::Count("n")};
  EXPECT_FALSE(cluster.Query("rides_t", strict).ok());
  faults.SetDown("olap.server.query.0", false);
}

// --- Scenario C: compute layer -------------------------------------------
// Checkpoint under a flaky store, then an injected crash. Invariant: the
// restarted job resumes from its checkpoint and the windowed count is exact
// (exactly-once effect on the result).
TEST(ChaosSoakTest, CheckpointCrashRestartKeepsCountsExact) {
  const uint64_t seed = ChaosSeed();
  SCOPED_TRACE("seed=" + std::to_string(seed));
  FaultInjector faults(seed + 2);
  stream::Broker broker("c1");
  storage::InMemoryObjectStore store;
  store.SetFaultInjector(&faults);
  compute::JobManager manager(&broker, &store);
  manager.SetFaultInjector(&faults);
  stream::TopicConfig config;
  config.num_partitions = 4;
  ASSERT_TRUE(broker.CreateTopic("events", config).ok());

  FaultRule flaky_store;
  flaky_store.error_probability = 0.3;
  faults.SetRule("store.put", flaky_store);
  faults.SetRule("store.get", flaky_store);

  RowSchema schema({{"key", ValueType::kString},
                    {"v", ValueType::kDouble},
                    {"ts", ValueType::kInt}});
  std::mutex mu;
  std::vector<Row> results;
  compute::JobGraph graph("soak");
  compute::SourceSpec source;
  source.topic = "events";
  source.schema = schema;
  source.time_field = "ts";
  source.watermark_interval_records = 4;
  graph.AddSource(source).WindowAggregate("agg", {"key"},
                                          compute::WindowSpec::Tumbling(60000),
                                          {compute::AggregateSpec::Count("n")});
  graph.SinkToCollector([&](const Row& row, TimestampMs) {
    std::lock_guard<std::mutex> lock(mu);
    results.push_back(row);
  });
  Result<std::string> id = manager.Submit(graph);
  ASSERT_TRUE(id.ok()) << id.status().ToString();

  auto produce = [&](int from, int to) {
    for (int i = from; i < to; ++i) {
      stream::Message m;
      m.key = "A";
      m.value = EncodeRow({Value(std::string("A")), Value(1.0), Value(int64_t{1000 + i})});
      m.timestamp = 1000 + i;
      ASSERT_TRUE(broker.Produce("events", std::move(m)).ok());
    }
  };

  produce(0, 40);
  ASSERT_TRUE(manager.GetRunner(id.value())->WaitUntilCaughtUp(20000).ok());
  ASSERT_TRUE(manager.Tick().ok());  // checkpoint (retried through the flaky store)

  // One-shot crash on the fault plane; the same sweep restarts from the
  // checkpoint (restore also retried through the flaky store).
  FaultRule crash;
  crash.error_probability = 1.0;
  crash.max_triggers = 1;
  faults.SetRule("job.crash." + id.value(), crash);
  for (int tick = 0; tick < 20; ++tick) {
    ASSERT_TRUE(manager.Tick().ok());
    Result<compute::JobInfo> info = manager.GetJob(id.value());
    ASSERT_TRUE(info.ok());
    ASSERT_NE(info.value().state, compute::JobState::kFailed);
    if (info.value().restarts >= 1 && manager.GetRunner(id.value())->IsRunning()) break;
  }
  EXPECT_GE(manager.GetJob(id.value()).value().restarts, 1);

  produce(40, 80);
  compute::JobRunner* runner = manager.GetRunner(id.value());
  ASSERT_TRUE(runner->WaitUntilCaughtUp(20000).ok());
  runner->RequestFinish();
  ASSERT_TRUE(runner->AwaitTermination(20000).ok());
  std::lock_guard<std::mutex> lock(mu);
  int64_t total = 0;
  for (const Row& row : results) total += row[2].AsInt();
  // Exactly-once effect: 80 records counted once each, across a crash and a
  // flaky checkpoint store.
  EXPECT_EQ(total, 80);
  // The checkpoint retry loop was exercised and is observable.
  EXPECT_GT(manager.metrics()->GetCounter("retries.checkpoint.attempts")->value(), 0);
}

// --- Scenario D: all-active layer ----------------------------------------
// Scripted region outage on a simulated clock. Invariant: the health sweep
// auto-fails-over, consumption resumes in the surviving region with zero
// loss and only a bounded replay window.
TEST(ChaosSoakTest, AutoFailoverReplaysBoundedWindowWithZeroLoss) {
  const uint64_t seed = ChaosSeed();
  SCOPED_TRACE("seed=" + std::to_string(seed));
  SimulatedClock clock(0);
  FaultInjector faults(seed + 3, &clock);
  allactive::MultiRegionTopology topology({"dca", "phx"});
  topology.SetFaultInjector(&faults);
  stream::TopicConfig config;
  config.num_partitions = 2;
  ASSERT_TRUE(topology.CreateTopic("trips", config).ok());

  // Replication itself runs under transient copy faults the whole time:
  // skipped partitions mean lag, never loss.
  FaultRule flaky_copy;
  flaky_copy.error_probability = 0.2;
  faults.SetRule("ureplicator.copy", flaky_copy);
  // The disaster: dca goes dark at t=100 and stays down.
  faults.ScheduleOutage("region.dca", 100, INT64_MAX);

  allactive::AllActiveCoordinator coordinator(&topology);
  ASSERT_TRUE(coordinator.RegisterService("payments", "dca").ok());

  int64_t produced = 0;
  for (int i = 0; i < 300; ++i) {
    stream::Message m;
    m.value = "m-" + std::to_string(i);
    m.timestamp = 1;
    m.headers[stream::kHeaderUid] = m.value;
    ASSERT_TRUE(topology.ProduceToRegion(i % 2 ? "dca" : "phx", "trips",
                                         std::move(m)).ok());
    ++produced;
  }
  // Transient copy faults can end a ReplicateAll pass early (a zero-moved
  // cycle); repeated passes drain everything — lag, not loss.
  for (int i = 0; i < 20; ++i) ASSERT_TRUE(topology.ReplicateAll().ok());

  allactive::ActivePassiveConsumer consumer(&topology, "payments", "trips", "dca");
  std::set<std::string> seen;
  while (static_cast<int64_t>(seen.size()) < produced / 2) {
    Result<std::vector<stream::Message>> batch = consumer.Poll(40);
    ASSERT_TRUE(batch.ok());
    if (batch.value().empty()) break;
    for (const stream::Message& m : batch.value()) seen.insert(m.value);
  }
  ASSERT_GT(seen.size(), 0u);

  // The outage window opens; the health sweep reacts without an operator.
  clock.SetMs(200);
  topology.SyncRegionHealth();
  EXPECT_FALSE(topology.GetRegion("dca")->healthy());
  Result<int64_t> moved = coordinator.HealthCheckOnce();
  ASSERT_TRUE(moved.ok());
  EXPECT_EQ(moved.value(), 1);
  EXPECT_EQ(coordinator.auto_failovers(), 1);
  Result<std::string> primary = coordinator.Primary("payments");
  ASSERT_TRUE(primary.ok());
  EXPECT_EQ(primary.value(), "phx");

  // Consumer follows the new primary; drain the rest there.
  ASSERT_TRUE(consumer.FailoverTo(primary.value()).ok());
  int64_t duplicates = 0;
  while (true) {
    Result<std::vector<stream::Message>> batch = consumer.Poll(100);
    ASSERT_TRUE(batch.ok());
    if (batch.value().empty()) break;
    for (const stream::Message& m : batch.value()) {
      if (!seen.insert(m.value).second) ++duplicates;
    }
  }
  // Zero loss, bounded replay.
  EXPECT_EQ(static_cast<int64_t>(seen.size()), produced);
  EXPECT_LT(duplicates, produced / 2);
  EXPECT_GT(faults.metrics()->GetCounter("faults.injected")->value(), 0);
}

// --- Scenario E: segment tiers -------------------------------------------
// A tight memory budget keeps most segments cold, so queries continuously
// reload frames from a store whose get/put paths flap the whole time.
// Invariant: no query that returns Ok ever returns a wrong count, and no
// segment is lost — a failed eviction leaves the segment warm, a failed
// reload fails the query, never silently drops rows.
TEST(ChaosSoakTest, TieredQueriesStayExactWhileStoreFlapsDuringColdReloads) {
  const uint64_t seed = ChaosSeed();
  SCOPED_TRACE("seed=" + std::to_string(seed));
  FaultInjector faults(seed + 4);
  stream::Broker broker("c1");
  storage::InMemoryObjectStore store;
  store.SetFaultInjector(&faults);
  olap::OlapClusterOptions cluster_options;
  cluster_options.memory_budget_bytes = 1;  // everything demotes to cold
  olap::OlapCluster cluster(&broker, &store, nullptr, cluster_options);

  stream::TopicConfig config;
  config.num_partitions = 4;
  ASSERT_TRUE(broker.CreateTopic("rides", config).ok());
  olap::TableConfig table;
  table.name = "rides_t";
  table.schema = RowSchema({{"ride_id", ValueType::kInt},
                            {"city", ValueType::kString},
                            {"fare", ValueType::kDouble},
                            {"ts", ValueType::kInt}});
  table.time_column = "ts";
  table.segment_rows_threshold = 25;
  ASSERT_TRUE(cluster.CreateTable(table, "rides").ok());

  FaultRule flaky_get;
  flaky_get.error_probability = 0.3;
  faults.SetRule("store.get", flaky_get);
  FaultRule flaky_put;
  flaky_put.error_probability = 0.3;
  faults.SetRule("store.put", flaky_put);

  auto exact_count = [&]() -> int64_t {
    olap::OlapQuery query;
    query.aggregations = {olap::OlapAggregation::Count("n")};
    // A cold reload that exhausts its retry budget fails the query loudly;
    // a bounded outer loop absorbs those, and every Ok answer must be exact.
    for (int tries = 0; tries < 50; ++tries) {
      Result<olap::OlapResult> result = cluster.Query("rides_t", query);
      if (result.ok()) return result.value().rows[0][0].AsInt();
    }
    return -1;
  };

  int64_t produced = 0;
  for (int round = 0; round < 6; ++round) {
    for (int i = 0; i < 100; ++i) {
      stream::Message m;
      m.key = "k" + std::to_string(i % 4);
      m.value = EncodeRow({Value(produced), Value(std::string("sf")),
                           Value(10.0 + i), Value(int64_t{1000})});
      m.timestamp = 1000;
      ASSERT_TRUE(broker.Produce("rides", std::move(m)).ok());
      ++produced;
    }
    // Ingest/seal triggers budget enforcement under put faults: evictions
    // that fail leave segments warm (retried next pass), never dropped.
    ASSERT_TRUE(cluster.IngestAll("rides_t").ok());
    ASSERT_TRUE(cluster.ForceSeal("rides_t").ok());
    ASSERT_EQ(exact_count(), produced) << "round " << round;
    // Each query promoted cold segments; enforcement demotes them again so
    // the next round reloads through the flapping store once more.
    cluster.EnforceMemoryBudget();
    ASSERT_EQ(exact_count(), produced) << "round " << round << " re-cooled";
  }

  // Tiering activity under faults was real and observable.
  EXPECT_GT(cluster.metrics()->GetCounter("olap.tier.demotions")->value(), 0);
  EXPECT_GT(cluster.metrics()->GetCounter("olap.tier.promotions")->value(), 0);
  EXPECT_GT(faults.metrics()->GetCounter("faults.injected")->value(), 0);
  EXPECT_GT(cluster.metrics()
                ->GetCounter("retries.olap.tier.attempts")
                ->value(),
            0);

  // Store heals: everything demotes cleanly, counts stay exact, and a
  // killed server rebuilds from the (now stable) cold tier with zero loss.
  faults.ClearRule("store.get");
  faults.ClearRule("store.put");
  cluster.EnforceMemoryBudget();
  ASSERT_EQ(exact_count(), produced);
  ASSERT_TRUE(cluster.KillServer("rides_t", 0).ok());
  Result<olap::RecoveryReport> report = cluster.RecoverServer("rides_t", 0);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().segments_lost, 0);
  ASSERT_EQ(exact_count(), produced);
}

// --- Scenario F: capacity-aware failover drill under control-plane chaos --
// An unplanned drill (outage lands on the live primary mid-traffic) with
// probabilistic faults layered onto the replication pumps and the offset-sync
// plane — both sit behind retries. Invariants: every admitted-and-acked
// message is consumed exactly (bounded replay, zero loss), and shedding only
// ever happens at the declared priorities: the overloaded survivor sheds
// best-effort work, never critical.
TEST(ChaosSoakTest, DrillUnderLiveTrafficShedsOnlyDeclaredPriorities) {
  allactive::DrillOptions options;
  options.seed = ChaosSeed() + 5;
  options.replication_fault_probability = 0.25;
  options.offset_sync_fault_probability = 0.5;
  allactive::DrillHarness harness(options);
  allactive::DrillReport report = harness.Run(allactive::DrillMode::kUnplanned);

  // The gate: no critical shed, no acked message lost.
  EXPECT_EQ(report.shed_critical, 0);
  EXPECT_EQ(report.query_shed_critical, 0);
  EXPECT_EQ(report.lost, 0);
  EXPECT_EQ(report.consumed, report.acked);
  // The drill was real: traffic flowed, the survivor shed best-effort load,
  // the health plane failed over on its own, and the chaos actually fired.
  EXPECT_GT(report.acked, 0);
  EXPECT_GT(report.shed_besteffort, 0);
  EXPECT_GE(report.auto_failovers, 1);
  EXPECT_GT(report.faults_injected, 0);
  EXPECT_LT(report.replayed, report.consumed);
}

}  // namespace
}  // namespace uberrt
