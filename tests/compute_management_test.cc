#include <gtest/gtest.h>

#include <mutex>

#include "common/fault_injector.h"
#include "common/hash.h"
#include "compute/backfill.h"
#include "compute/baselines.h"
#include "compute/job_manager.h"
#include "stream/broker.h"
#include "workload/generators.h"

namespace uberrt::compute {
namespace {

using stream::Broker;
using stream::Message;
using stream::TopicConfig;

RowSchema EventSchema() {
  return RowSchema({{"key", ValueType::kString},
                    {"v", ValueType::kDouble},
                    {"ts", ValueType::kInt}});
}

Message Event(const std::string& key, double v, int64_t ts) {
  Message m;
  m.key = key;
  m.value = EncodeRow({Value(key), Value(v), Value(ts)});
  m.timestamp = ts;
  return m;
}

class JobManagerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    broker_ = std::make_unique<Broker>("c1");
    store_ = std::make_unique<storage::InMemoryObjectStore>();
    manager_ = std::make_unique<JobManager>(broker_.get(), store_.get());
    TopicConfig config;
    config.num_partitions = 4;
    ASSERT_TRUE(broker_->CreateTopic("events", config).ok());
  }

  JobGraph CountingGraph(std::vector<Row>* results, std::mutex* mu) {
    JobGraph graph("counting");
    SourceSpec source;
    source.topic = "events";
    source.schema = EventSchema();
    source.time_field = "ts";
    source.watermark_interval_records = 4;
    graph.AddSource(source).WindowAggregate("agg", {"key"}, WindowSpec::Tumbling(60000),
                                            {AggregateSpec::Count("n")});
    graph.SinkToCollector([results, mu](const Row& row, TimestampMs) {
      std::lock_guard<std::mutex> lock(*mu);
      results->push_back(row);
    });
    return graph;
  }

  std::unique_ptr<Broker> broker_;
  std::unique_ptr<storage::InMemoryObjectStore> store_;
  std::unique_ptr<JobManager> manager_;
};

TEST_F(JobManagerTest, SubmitListAndLifecycle) {
  std::mutex mu;
  std::vector<Row> results;
  Result<std::string> id = manager_->Submit(CountingGraph(&results, &mu));
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  Result<JobInfo> info = manager_->GetJob(id.value());
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info.value().state, JobState::kRunning);
  EXPECT_TRUE(info.value().stateful);
  EXPECT_EQ(manager_->ListJobs().size(), 1u);
  ASSERT_TRUE(manager_->CancelJob(id.value()).ok());
  EXPECT_EQ(manager_->GetJob(id.value()).value().state, JobState::kCancelled);
  // Invalid graphs are rejected up front.
  EXPECT_FALSE(manager_->Submit(JobGraph("empty")).ok());
}

TEST_F(JobManagerTest, CrashedJobAutoRestartsFromCheckpointWithCorrectState) {
  std::mutex mu;
  std::vector<Row> results;
  Result<std::string> id = manager_->Submit(CountingGraph(&results, &mu));
  ASSERT_TRUE(id.ok());
  // Feed half the data, checkpoint via Tick, then crash it.
  for (int i = 0; i < 40; ++i) broker_->Produce("events", Event("A", 1.0, 1000 + i)).ok();
  JobRunner* runner = manager_->GetRunner(id.value());
  ASSERT_TRUE(runner->WaitUntilCaughtUp(10000).ok());
  ASSERT_TRUE(manager_->Tick().ok());  // takes a checkpoint

  // Crash via the fault plane: a one-shot "job.crash.<id>" rule. The same
  // Tick sweep that detects the dead runner restarts it from the checkpoint.
  common::FaultInjector faults;
  manager_->SetFaultInjector(&faults);
  common::FaultRule crash;
  crash.error_probability = 1.0;
  crash.max_triggers = 1;
  faults.SetRule("job.crash." + id.value(), crash);
  ASSERT_TRUE(manager_->Tick().ok());
  Result<JobInfo> info = manager_->GetJob(id.value());
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info.value().state, JobState::kRunning);
  EXPECT_EQ(info.value().restarts, 1);

  // Feed the rest; the window total must be exact (state survived).
  for (int i = 40; i < 80; ++i) broker_->Produce("events", Event("A", 1.0, 1000 + i)).ok();
  JobRunner* restarted = manager_->GetRunner(id.value());
  ASSERT_TRUE(restarted->WaitUntilCaughtUp(10000).ok());
  restarted->RequestFinish();
  ASSERT_TRUE(restarted->AwaitTermination(10000).ok());
  std::lock_guard<std::mutex> lock(mu);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0][2].AsInt(), 80);
}

TEST_F(JobManagerTest, InjectFailureShimStillKillsRunner) {
  std::mutex mu;
  std::vector<Row> results;
  Result<std::string> id = manager_->Submit(CountingGraph(&results, &mu));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(manager_->InjectFailure(id.value()).ok());
  EXPECT_FALSE(manager_->GetRunner(id.value())->IsRunning());
  ASSERT_TRUE(manager_->Tick().ok());  // monitor restarts it
  EXPECT_EQ(manager_->GetJob(id.value()).value().restarts, 1);
}

TEST_F(JobManagerTest, LagTriggersAutoScaleWithStateRedistribution) {
  JobManagerOptions options;
  options.lag_scale_up_threshold = 100;
  options.max_parallelism = 4;
  manager_ = std::make_unique<JobManager>(broker_.get(), store_.get(), options);

  std::mutex mu;
  std::vector<Row> results;
  Result<std::string> id = manager_->Submit(CountingGraph(&results, &mu));
  ASSERT_TRUE(id.ok());
  // Let some state accumulate and checkpoint it at parallelism 1.
  for (int i = 0; i < 50; ++i) {
    broker_->Produce("events", Event("k" + std::to_string(i % 7), 1.0, 1000 + i)).ok();
  }
  ASSERT_TRUE(manager_->GetRunner(id.value())->WaitUntilCaughtUp(10000).ok());
  ASSERT_TRUE(manager_->Tick().ok());

  // Build a big backlog, then tick: the monitor should scale up.
  for (int i = 0; i < 2000; ++i) {
    broker_->Produce("events", Event("k" + std::to_string(i % 7), 1.0, 2000 + i)).ok();
  }
  ASSERT_TRUE(manager_->Tick().ok());
  Result<JobInfo> info = manager_->GetJob(id.value());
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info.value().rescales, 1);
  EXPECT_EQ(info.value().parallelism, 2);

  // Drain and finish: per-key counts must be exact across the rescale —
  // proof the keyed state was redistributed correctly.
  JobRunner* runner = manager_->GetRunner(id.value());
  ASSERT_TRUE(runner->WaitUntilCaughtUp(20000).ok());
  runner->RequestFinish();
  ASSERT_TRUE(runner->AwaitTermination(20000).ok());
  std::lock_guard<std::mutex> lock(mu);
  int64_t total = 0;
  for (const Row& row : results) total += row[2].AsInt();
  EXPECT_EQ(total, 2050);
}

TEST(RedistributeStateTest, SplitsByRoutingHash) {
  // Synthesize a 1-instance checkpoint with two keys and verify the rows
  // land where the runner's Dispatch would route those keys at P=2.
  JobGraph graph("g");
  SourceSpec source;
  source.topic = "t";
  source.schema = EventSchema();
  graph.AddSource(source).WindowAggregate("agg", {"key"}, WindowSpec::Tumbling(1000),
                                          {AggregateSpec::Count("n")});
  CheckpointData data;
  data.sequence = 1;
  std::vector<Row> state_rows;
  for (const char* key : {"alpha", "beta", "gamma", "delta"}) {
    Row state_row;
    state_row.push_back(Value(EncodeRow({Value(std::string(key))})));
    state_row.push_back(Value(int64_t{0}));
    state_row.push_back(Value(int64_t{1000}));
    state_row.push_back(Value(EncodeRow({Value(std::string(key))})));
    state_row.push_back(Value(int64_t{3}));
    state_row.push_back(Value(3.0));
    state_row.push_back(Value(1.0));
    state_row.push_back(Value(1.0));
    state_rows.push_back(std::move(state_row));
  }
  data.entries["op.0.0"] = storage::EncodeRowBatch(state_rows);
  data.entries["source.0.0"] = "17";

  Result<CheckpointData> redistributed = RedistributeKeyedState(data, graph, 1, 2);
  ASSERT_TRUE(redistributed.ok());
  EXPECT_EQ(redistributed.value().entries.at("source.0.0"), "17");
  int total = 0;
  for (int i = 0; i < 2; ++i) {
    Result<std::vector<Row>> rows = storage::DecodeRowBatch(
        redistributed.value().entries.at("op.0." + std::to_string(i)));
    ASSERT_TRUE(rows.ok());
    for (const Row& row : rows.value()) {
      // Row must live on the instance its key hashes to.
      EXPECT_EQ(uberrt::Fnv1a64(row[0].AsString()) % 2, static_cast<uint64_t>(i));
      ++total;
    }
  }
  EXPECT_EQ(total, 4);
}

TEST(BacklogRecoveryModelTest, StormLikeRecoversMuchSlowerAndGrowsWithBacklog) {
  BacklogRecoveryParams params;
  params.backlog = 2'000'000;
  params.service_per_tick = 10'000;
  params.timeout_ticks = 5;
  params.max_pending = 2'000'000;  // effectively unbounded: the misconfiguration
  BacklogRecoveryResult flink = SimulateCreditBasedRecovery(params);
  BacklogRecoveryResult storm = SimulateAckReplayRecovery(params);
  EXPECT_EQ(flink.ticks_to_recover, 200);
  EXPECT_EQ(flink.wasted_work, 0);
  // The "several hours vs 20 minutes" shape: a large multiple, not a few %.
  EXPECT_GT(storm.ticks_to_recover, flink.ticks_to_recover * 5);
  EXPECT_GT(storm.wasted_work, params.backlog);  // more waste than real work
  EXPECT_GT(storm.replays, 0);

  // And the multiple grows with the backlog.
  BacklogRecoveryParams small = params;
  small.backlog = 100'000;
  double small_ratio =
      static_cast<double>(SimulateAckReplayRecovery(small).ticks_to_recover) /
      static_cast<double>(SimulateCreditBasedRecovery(small).ticks_to_recover);
  double big_ratio = static_cast<double>(storm.ticks_to_recover) /
                     static_cast<double>(flink.ticks_to_recover);
  EXPECT_GT(big_ratio, small_ratio * 2);
}

TEST(BacklogRecoveryModelTest, WellTunedStormApproachesFlink) {
  // With max_pending well under service*timeout, queue waits stay far below
  // the timeout and replays are rare: near-Flink recovery.
  BacklogRecoveryParams params;
  params.backlog = 500'000;
  params.service_per_tick = 10'000;
  params.timeout_ticks = 10;
  params.max_pending = 20'000;
  BacklogRecoveryResult flink = SimulateCreditBasedRecovery(params);
  BacklogRecoveryResult storm = SimulateAckReplayRecovery(params);
  EXPECT_LT(static_cast<double>(storm.ticks_to_recover),
            static_cast<double>(flink.ticks_to_recover) * 1.3);
}

class BacklogMonotonicityTest : public ::testing::TestWithParam<int64_t> {};

TEST_P(BacklogMonotonicityTest, CreditBasedRecoveryIsLinear) {
  BacklogRecoveryParams params;
  params.backlog = GetParam();
  params.service_per_tick = 10'000;
  EXPECT_EQ(SimulateCreditBasedRecovery(params).ticks_to_recover,
            (GetParam() + 9'999) / 10'000);
}

INSTANTIATE_TEST_SUITE_P(Backlogs, BacklogMonotonicityTest,
                         ::testing::Values(10'000, 100'000, 1'000'000, 5'000'000));

class BackfillTest : public ::testing::Test {
 protected:
  void SetUp() override {
    broker_ = std::make_unique<Broker>("c1");
    store_ = std::make_unique<storage::InMemoryObjectStore>();
  }
  std::unique_ptr<Broker> broker_;
  std::unique_ptr<storage::InMemoryObjectStore> store_;
};

TEST_F(BackfillTest, KappaPlusReprocessesArchivedDaysWithSameLogic) {
  // Archive: 3 "days" of events, deliberately out of order within each day.
  storage::ArchiveTable archive(store_.get(), "events", EventSchema());
  Rng rng(5);
  int64_t expected_total = 0;
  for (int day = 0; day < 3; ++day) {
    std::vector<Row> rows;
    for (int i = 0; i < 200; ++i) {
      int64_t ts = day * 86'400'000LL + rng.Uniform(0, 3'600'000);
      rows.push_back({Value("k" + std::to_string(i % 5)), Value(1.0), Value(ts)});
      ++expected_total;
    }
    archive.AppendBatch("2020-10-0" + std::to_string(day + 1), rows).ok();
  }

  // The normal streaming job definition, unchanged.
  std::mutex mu;
  std::vector<Row> results;
  JobGraph graph("hourly_counts");
  SourceSpec source;
  source.topic = "events";  // the topic it would read in production
  source.schema = EventSchema();
  source.time_field = "ts";
  graph.AddSource(source).WindowAggregate("agg", {"key"},
                                          WindowSpec::Tumbling(3'600'000),
                                          {AggregateSpec::Count("n")});
  graph.SinkToCollector([&](const Row& row, TimestampMs) {
    std::lock_guard<std::mutex> lock(mu);
    results.push_back(row);
  });

  KappaPlusBackfill backfill(broker_.get(), store_.get());
  BackfillOptions options;
  options.reorder_slack_ms = 3'600'000;  // archive is unordered
  Result<BackfillReport> report =
      backfill.Run(graph, archive, {"2020-10-01", "2020-10-02", "2020-10-03"}, options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report.value().records_pumped, 600);
  int64_t total = 0;
  for (const Row& row : results) total += row[2].AsInt();
  EXPECT_EQ(total, expected_total);  // every archived record reprocessed once
}

TEST_F(BackfillTest, KappaFromKafkaLosesTruncatedHistory) {
  // The rejected alternative: retention-limited Kafka replay (Section 7).
  TopicConfig config;
  config.num_partitions = 1;
  config.retention.max_age_ms = 1000;  // "a few days" scaled down
  ASSERT_TRUE(broker_->CreateTopic("events", config).ok());
  TimestampMs now = SystemClock::Instance()->NowMs();
  for (int i = 0; i < 100; ++i) {
    broker_->Produce("events", Event("k", 1.0, now - 50'000)).ok();  // old
  }
  for (int i = 0; i < 20; ++i) {
    broker_->Produce("events", Event("k", 1.0, now)).ok();  // recent
  }
  broker_->ApplyRetention();
  Result<int64_t> replayable = KappaReplayableRecords(broker_.get(), "events");
  ASSERT_TRUE(replayable.ok());
  EXPECT_EQ(replayable.value(), 20);  // 100 old records unreplayable
}

TEST(MicroBatchBaselineTest, SameAnswersFarMoreMemoryThanIncremental) {
  Broker broker("c1");
  storage::InMemoryObjectStore store;
  TopicConfig config;
  config.num_partitions = 2;
  broker.CreateTopic("events", config).ok();
  // 20 keys x 3 windows x 25 records.
  for (int w = 0; w < 3; ++w) {
    for (int i = 0; i < 500; ++i) {
      broker.Produce("events", Event("k" + std::to_string(i % 20), 2.0,
                                     w * 60'000 + (i / 20) * 100)).ok();
    }
  }
  SourceSpec source;
  source.topic = "events";
  source.schema = EventSchema();
  source.time_field = "ts";
  Result<MicroBatchReport> spark = RunMicroBatchWindowAggregate(
      &broker, source, {"key"}, WindowSpec::Tumbling(60'000),
      {AggregateSpec::Count("n"), AggregateSpec::Sum("v", "s")});
  ASSERT_TRUE(spark.ok()) << spark.status().ToString();
  EXPECT_EQ(spark.value().records_processed, 1500);
  EXPECT_EQ(spark.value().rows.size(), 60u);  // 20 keys x 3 windows

  // Run the incremental engine on the same data.
  JobGraph graph("inc");
  graph.AddSource(source).WindowAggregate("agg", {"key"}, WindowSpec::Tumbling(60'000),
                                          {AggregateSpec::Count("n"),
                                           AggregateSpec::Sum("v", "s")});
  std::mutex mu;
  std::vector<Row> results;
  graph.SinkToCollector([&](const Row& row, TimestampMs) {
    std::lock_guard<std::mutex> lock(mu);
    results.push_back(row);
  });
  JobRunner runner(graph, &broker, &store);
  ASSERT_TRUE(runner.Start().ok());
  runner.RequestFinish();
  ASSERT_TRUE(runner.AwaitTermination(10000).ok());
  EXPECT_EQ(results.size(), 60u);
  // The Section 4.2 memory shape: materialized micro-batch state is a
  // multiple of the incremental accumulator state.
  EXPECT_GT(spark.value().peak_buffered_bytes, runner.PeakStateBytes() * 3);
}

}  // namespace
}  // namespace uberrt::compute
