// Morsel-scheduling acceptance suite: (1) the broker's morsel-parallel
// scatter must return results bitwise-identical to the serial path on any
// query (the per-morsel output slots make this true by construction — this
// fuzz guards the construction); (2) zone-map / membership pruning must
// skip segments without ever changing results; (3) the broker result cache
// must serve only fresh entries and invalidate per covered partition. Runs
// in the ASan/TSan concurrency gate.

#include <gtest/gtest.h>

#include <memory>
#include <random>
#include <string>
#include <vector>

#include "common/executor.h"
#include "common/hash.h"
#include "olap/cluster.h"
#include "stream/broker.h"

namespace uberrt::olap {
namespace {

using stream::Broker;
using stream::Message;
using stream::TopicConfig;

RowSchema RideSchema() {
  return RowSchema({{"ride_id", ValueType::kInt},
                    {"city", ValueType::kString},
                    {"fare", ValueType::kDouble},
                    {"ts", ValueType::kInt}});
}

class OlapMorselParityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    broker_ = std::make_unique<Broker>("c1");
    store_ = std::make_unique<storage::InMemoryObjectStore>();
    common::ExecutorOptions pool;
    pool.num_threads = 4;
    pool.name = "executor.morsel_test";
    executor_ = std::make_unique<common::Executor>(pool);
    cluster_ = std::make_unique<OlapCluster>(broker_.get(), store_.get(),
                                             executor_.get());
    TopicConfig config;
    config.num_partitions = 8;
    ASSERT_TRUE(broker_->CreateTopic("rides", config).ok());
  }

  void ProduceRide(int64_t id, const std::string& city, double fare, int64_t ts,
                   const std::string& key = "") {
    Message m;
    m.key = key.empty() ? "k" + std::to_string(id % 16) : key;
    m.value = EncodeRow({Value(id), Value(city), Value(fare), Value(ts)});
    m.timestamp = ts;
    ASSERT_TRUE(broker_->Produce("rides", std::move(m)).ok());
  }

  TableConfig RideTable(const std::string& name = "rides_t") {
    TableConfig config;
    config.name = name;
    config.schema = RideSchema();
    config.time_column = "ts";
    config.segment_rows_threshold = 40;
    config.index_config.inverted_columns = {"city"};
    return config;
  }

  static ClusterTableOptions FourServers() {
    ClusterTableOptions options;
    options.num_servers = 4;
    return options;
  }

  /// Bitwise row fingerprint: EncodeRow is typed and self-delimiting, so
  /// equal fingerprints mean equal row sequences (values AND order).
  static std::string Fingerprint(const OlapResult& result) {
    std::string fp;
    for (const Row& row : result.rows) fp += EncodeRow(row) + "\x1f";
    return fp;
  }

  std::unique_ptr<Broker> broker_;
  std::unique_ptr<storage::InMemoryObjectStore> store_;
  std::unique_ptr<common::Executor> executor_;
  std::unique_ptr<OlapCluster> cluster_;
};

// Randomized parity fuzz: every query runs three ways — morsel-parallel on
// the pool, serial (no executor), and the row-at-a-time scalar oracle — and
// all three must agree on rows; parallel and serial must also agree on
// every execution statistic (same morsels planned, scanned and pruned).
TEST_F(OlapMorselParityTest, ParallelSerialAndScalarAgreeOnRandomQueries) {
  const char* cities[] = {"sf", "nyc", "la", "chi", "sea"};
  // 6 epochs of 100 rows: many sealed segments per partition plus a
  // consuming tail (620 % 40 != 0), disjoint ride_id and ts ranges per
  // epoch so range filters actually prune.
  int64_t id = 0;
  for (int epoch = 0; epoch < 6; ++epoch) {
    for (int i = 0; i < 100; ++i, ++id) {
      ProduceRide(epoch * 1000 + i, cities[(epoch + i) % 5], 5.0 + i % 7,
                  100000 * epoch + i);
    }
  }
  for (int i = 0; i < 20; ++i, ++id) ProduceRide(9000 + i, "sf", 1.0, 700000 + i);
  ASSERT_TRUE(cluster_->CreateTable(RideTable(), "rides", FourServers()).ok());
  ASSERT_TRUE(cluster_->IngestAll("rides_t").ok());

  std::mt19937 rng(42);
  auto pick = [&rng](int n) { return static_cast<int>(rng() % n); };
  int64_t pruned_total = 0;
  for (int q = 0; q < 30; ++q) {
    OlapQuery query;
    switch (pick(3)) {
      case 0:
        query.group_by = {"city"};
        query.aggregations = {OlapAggregation::Count("n"),
                              OlapAggregation::Sum("fare", "s")};
        query.order_by = "n";
        break;
      case 1:
        query.aggregations = {OlapAggregation::Count("n"),
                              OlapAggregation::Min("fare", "lo"),
                              OlapAggregation::Max("fare", "hi"),
                              OlapAggregation::Avg("fare", "avg")};
        break;
      default:
        query.select_columns = {"ride_id", "city", "fare"};
        query.limit = 64;
        break;
    }
    if (pick(2) == 0) {
      query.filters.push_back(FilterPredicate::Eq("city", Value(cities[pick(5)])));
    }
    if (pick(2) == 0) {
      query.filters.push_back(FilterPredicate::Range(
          "ride_id", pick(2) == 0 ? FilterPredicate::Op::kGe : FilterPredicate::Op::kLt,
          Value(int64_t{1000} * pick(7))));
    }
    if (pick(3) == 0) {
      query.filters.push_back(FilterPredicate::Range(
          "ts", FilterPredicate::Op::kGe, Value(int64_t{100000} * pick(7))));
    }

    cluster_->SetExecutor(nullptr);
    Result<OlapResult> serial = cluster_->Query("rides_t", query);
    cluster_->SetExecutor(executor_.get());
    Result<OlapResult> parallel = cluster_->Query("rides_t", query);
    OlapQuery scalar_query = query;
    scalar_query.force_scalar = true;
    Result<OlapResult> scalar = cluster_->Query("rides_t", scalar_query);

    ASSERT_TRUE(serial.ok()) << serial.status().ToString();
    ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
    ASSERT_TRUE(scalar.ok()) << scalar.status().ToString();
    EXPECT_EQ(Fingerprint(serial.value()), Fingerprint(parallel.value()))
        << "query " << q << ": parallel rows diverged from serial";
    EXPECT_EQ(Fingerprint(serial.value()), Fingerprint(scalar.value()))
        << "query " << q << ": scalar oracle diverged";
    EXPECT_EQ(serial.value().stats.segments_scanned,
              parallel.value().stats.segments_scanned);
    EXPECT_EQ(serial.value().stats.segments_pruned,
              parallel.value().stats.segments_pruned);
    EXPECT_EQ(serial.value().stats.rows_scanned, parallel.value().stats.rows_scanned);
    EXPECT_EQ(serial.value().stats.star_tree_hits,
              parallel.value().stats.star_tree_hits);
    EXPECT_EQ(serial.value().stats.servers_queried,
              parallel.value().stats.servers_queried);
    pruned_total += serial.value().stats.segments_pruned;
  }
  // The epoch-disjoint ranges guarantee the fuzz exercised pruning.
  EXPECT_GT(pruned_total, 0);
}

// Zone maps prune on any filtered column, not just the time column: the
// epochs have disjoint ride_id ranges, so a ride_id range predicate must
// skip the segments of the other epochs while returning the exact answer.
TEST_F(OlapMorselParityTest, ZoneMapsPruneSegmentsOnNonTimeColumns) {
  ASSERT_TRUE(cluster_->CreateTable(RideTable(), "rides", FourServers()).ok());
  // Seal between the epochs so no segment straddles the id ranges.
  for (int i = 0; i < 200; ++i) ProduceRide(i, "sf", 1.0, 1000 + i);
  ASSERT_TRUE(cluster_->IngestAll("rides_t").ok());
  ASSERT_TRUE(cluster_->ForceSeal("rides_t").ok());
  for (int i = 0; i < 200; ++i) ProduceRide(100000 + i, "nyc", 2.0, 2000 + i);
  ASSERT_TRUE(cluster_->IngestAll("rides_t").ok());
  ASSERT_TRUE(cluster_->ForceSeal("rides_t").ok());

  OlapQuery query;
  query.aggregations = {OlapAggregation::Count("n")};
  query.filters = {FilterPredicate::Range("ride_id", FilterPredicate::Op::kGe,
                                          Value(int64_t{100000}))};
  Result<OlapResult> result = cluster_->Query("rides_t", query);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().rows[0][0].AsInt(), 200);
  EXPECT_GT(result.value().stats.segments_pruned, 0);
  EXPECT_EQ(cluster_->metrics()->GetCounter("olap.segments_pruned")->value(),
            result.value().stats.segments_pruned);
}

// Equality lookups for absent keys inside a segment's [min, max] range are
// pruned by the membership filter + exact dictionary probe: a segment of
// even ride_ids must not be scanned for an odd one.
TEST_F(OlapMorselParityTest, MembershipFilterPrunesInRangeMisses) {
  // One stream partition (fixed key), threshold 100: a single sealed
  // segment holding 100 distinct even ride_ids (cardinality >= 64 builds
  // the membership filter).
  TableConfig config = RideTable();
  config.segment_rows_threshold = 100;
  for (int i = 0; i < 100; ++i) ProduceRide(2 * i, "sf", 1.0, 1000 + i, "one-key");
  ASSERT_TRUE(cluster_->CreateTable(config, "rides", FourServers()).ok());
  ASSERT_TRUE(cluster_->IngestAll("rides_t").ok());
  ASSERT_TRUE(cluster_->ForceSeal("rides_t").ok());

  OlapQuery query;
  query.aggregations = {OlapAggregation::Count("n")};
  query.filters = {FilterPredicate::Eq("ride_id", Value(int64_t{51}))};
  Result<OlapResult> result = cluster_->Query("rides_t", query);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().rows[0][0].AsInt(), 0);
  EXPECT_EQ(result.value().stats.segments_pruned, 1);
  EXPECT_EQ(result.value().stats.segments_scanned, 0);

  // Present keys still execute (and agree with ground truth).
  query.filters = {FilterPredicate::Eq("ride_id", Value(int64_t{50}))};
  result = cluster_->Query("rides_t", query);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().rows[0][0].AsInt(), 1);
  EXPECT_EQ(result.value().stats.segments_pruned, 0);
}

TEST_F(OlapMorselParityTest, ResultCacheHitsUntilIngestInvalidates) {
  for (int i = 0; i < 120; ++i) ProduceRide(i, i % 2 == 0 ? "sf" : "nyc", 3.0, 1000 + i);
  ASSERT_TRUE(cluster_->CreateTable(RideTable(), "rides", FourServers()).ok());
  ASSERT_TRUE(cluster_->IngestAll("rides_t").ok());

  OlapQuery query;
  query.use_cache = true;
  query.group_by = {"city"};
  query.aggregations = {OlapAggregation::Count("n")};
  query.order_by = "n";
  Result<OlapResult> first = cluster_->Query("rides_t", query);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first.value().stats.from_cache);

  Result<OlapResult> second = cluster_->Query("rides_t", query);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second.value().stats.from_cache);
  EXPECT_EQ(Fingerprint(first.value()), Fingerprint(second.value()));
  // Filter order must not defeat the canonical key, and an equivalent query
  // submitted with reordered filters is the same cache entry.
  OlapQuery reordered = query;
  reordered.filters = {FilterPredicate::Range("ride_id", FilterPredicate::Op::kGe,
                                              Value(int64_t{0})),
                       FilterPredicate::Eq("city", Value("sf"))};
  OlapQuery swapped = reordered;
  std::swap(swapped.filters[0], swapped.filters[1]);
  Result<OlapResult> warm = cluster_->Query("rides_t", reordered);
  ASSERT_TRUE(warm.ok());
  EXPECT_FALSE(warm.value().stats.from_cache);
  Result<OlapResult> hit = cluster_->Query("rides_t", swapped);
  ASSERT_TRUE(hit.ok());
  EXPECT_TRUE(hit.value().stats.from_cache);

  // New data invalidates: the next execution recomputes and re-caches.
  for (int i = 0; i < 10; ++i) ProduceRide(1000 + i, "sf", 3.0, 5000 + i);
  ASSERT_TRUE(cluster_->IngestAll("rides_t").ok());
  Result<OlapResult> after = cluster_->Query("rides_t", query);
  ASSERT_TRUE(after.ok());
  EXPECT_FALSE(after.value().stats.from_cache);
  EXPECT_EQ(after.value().rows[0][1].AsInt() + after.value().rows[1][1].AsInt(), 130);

  // Sealing (ForceSeal) also bumps the covered versions: results are
  // unchanged but stats would not be, so the entry must not be served.
  Result<OlapResult> rewarmed = cluster_->Query("rides_t", query);
  ASSERT_TRUE(rewarmed.ok());
  EXPECT_TRUE(rewarmed.value().stats.from_cache);
  ASSERT_TRUE(cluster_->ForceSeal("rides_t").ok());
  Result<OlapResult> resealed = cluster_->Query("rides_t", query);
  ASSERT_TRUE(resealed.ok());
  EXPECT_FALSE(resealed.value().stats.from_cache);

  EXPECT_GT(cluster_->metrics()->GetCounter("olap.result_cache.hits")->value(), 0);
  EXPECT_GT(cluster_->metrics()->GetCounter("olap.result_cache.misses")->value(), 0);
}

// A routed (single-partition) cached query must survive ingestion into
// OTHER partitions — the version fingerprint only covers the partitions the
// query reads — and must still invalidate when its own partition changes.
TEST_F(OlapMorselParityTest, ResultCacheInvalidationIsPartitionScoped) {
  TopicConfig topic;
  topic.num_partitions = 4;
  ASSERT_TRUE(broker_->CreateTopic("fares", topic).ok());
  TableConfig table;
  table.name = "fares_t";
  table.schema = RowSchema({{"ride_id", ValueType::kString},
                            {"fare", ValueType::kDouble}});
  table.segment_rows_threshold = 10;
  table.upsert_enabled = true;
  table.primary_key_column = "ride_id";
  ASSERT_TRUE(cluster_->CreateTable(table, "fares").ok());

  // Two keys on different stream partitions (same hash the broker uses).
  std::string key_a = "ride0";
  std::string key_b;
  for (int i = 1; i < 64 && key_b.empty(); ++i) {
    std::string candidate = "ride" + std::to_string(i);
    if (KeyToPartition(candidate, 4) != KeyToPartition(key_a, 4)) key_b = candidate;
  }
  ASSERT_FALSE(key_b.empty());

  auto produce = [&](const std::string& ride, double fare) {
    Message m;
    m.key = ride;
    m.value = EncodeRow({Value(ride), Value(fare)});
    m.timestamp = 1;
    ASSERT_TRUE(broker_->Produce("fares", std::move(m)).ok());
  };
  produce(key_a, 10.0);
  produce(key_b, 20.0);
  ASSERT_TRUE(cluster_->IngestAll("fares_t").ok());

  OlapQuery lookup;
  lookup.use_cache = true;
  lookup.select_columns = {"ride_id", "fare"};
  lookup.filters = {FilterPredicate::Eq("ride_id", Value(key_a))};
  ASSERT_TRUE(cluster_->Query("fares_t", lookup).ok());  // warm
  Result<OlapResult> hit = cluster_->Query("fares_t", lookup);
  ASSERT_TRUE(hit.ok());
  EXPECT_TRUE(hit.value().stats.from_cache);

  // Writing key_b touches a different partition: key_a's entry stays fresh.
  produce(key_b, 21.0);
  ASSERT_TRUE(cluster_->IngestAll("fares_t").ok());
  hit = cluster_->Query("fares_t", lookup);
  ASSERT_TRUE(hit.ok());
  EXPECT_TRUE(hit.value().stats.from_cache);

  // Writing key_a invalidates, and the recomputed result sees the upsert.
  produce(key_a, 99.0);
  ASSERT_TRUE(cluster_->IngestAll("fares_t").ok());
  Result<OlapResult> fresh = cluster_->Query("fares_t", lookup);
  ASSERT_TRUE(fresh.ok());
  EXPECT_FALSE(fresh.value().stats.from_cache);
  ASSERT_EQ(fresh.value().rows.size(), 1u);
  EXPECT_DOUBLE_EQ(fresh.value().rows[0][1].AsDouble(), 99.0);
}

}  // namespace
}  // namespace uberrt::olap
