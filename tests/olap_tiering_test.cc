// Segment-lifecycle acceptance suite: sealed segments round-trip through
// the hot -> warm -> cold tiers (and back, via query promotion and
// background compaction) with bitwise-identical results at every step; the
// cluster-wide memory budget actually bounds the resident set; pruning
// never materializes a demoted segment; and the broker result cache is a
// byte-capped LRU charged against the same budget. Runs in the ASan/TSan
// concurrency gate.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/executor.h"
#include "common/fault_injector.h"
#include "common/hash.h"
#include "olap/cluster.h"
#include "stream/broker.h"

namespace uberrt::olap {
namespace {

using stream::Broker;
using stream::Message;
using stream::TopicConfig;

RowSchema RideSchema() {
  return RowSchema({{"ride_id", ValueType::kInt},
                    {"city", ValueType::kString},
                    {"fare", ValueType::kDouble},
                    {"ts", ValueType::kInt}});
}

class OlapTieringTest : public ::testing::Test {
 protected:
  void SetUp() override {
    broker_ = std::make_unique<Broker>("c1");
    store_ = std::make_unique<storage::InMemoryObjectStore>();
    common::ExecutorOptions pool;
    pool.num_threads = 4;
    pool.name = "executor.tiering_test";
    executor_ = std::make_unique<common::Executor>(pool);
    cluster_ = std::make_unique<OlapCluster>(broker_.get(), store_.get(),
                                             executor_.get());
    TopicConfig config;
    config.num_partitions = 8;
    ASSERT_TRUE(broker_->CreateTopic("rides", config).ok());
  }

  void ProduceRide(int64_t id, const std::string& city, double fare, int64_t ts,
                   const std::string& key = "") {
    Message m;
    m.key = key.empty() ? "k" + std::to_string(id % 16) : key;
    m.value = EncodeRow({Value(id), Value(city), Value(fare), Value(ts)});
    m.timestamp = ts;
    ASSERT_TRUE(broker_->Produce("rides", std::move(m)).ok());
  }

  TableConfig RideTable(const std::string& name = "rides_t") {
    TableConfig config;
    config.name = name;
    config.schema = RideSchema();
    config.time_column = "ts";
    config.segment_rows_threshold = 40;
    config.index_config.inverted_columns = {"city"};
    return config;
  }

  static ClusterTableOptions FourServers() {
    ClusterTableOptions options;
    options.num_servers = 4;
    return options;
  }

  /// Bitwise row fingerprint: EncodeRow is typed and self-delimiting, so
  /// equal fingerprints mean equal row sequences (values AND order).
  static std::string Fingerprint(const OlapResult& result) {
    std::string fp;
    for (const Row& row : result.rows) fp += EncodeRow(row) + "\x1f";
    return fp;
  }

  /// The parity query set: group-by, global aggregate, filtered selection.
  static std::vector<OlapQuery> ParityQueries() {
    std::vector<OlapQuery> queries;
    OlapQuery by_city;
    by_city.group_by = {"city"};
    by_city.aggregations = {OlapAggregation::Count("n"),
                            OlapAggregation::Sum("fare", "s")};
    by_city.order_by = "n";
    queries.push_back(by_city);
    OlapQuery global;
    global.aggregations = {OlapAggregation::Count("n"),
                           OlapAggregation::Min("fare", "lo"),
                           OlapAggregation::Max("fare", "hi")};
    queries.push_back(global);
    OlapQuery select;
    select.select_columns = {"ride_id", "city", "fare"};
    select.filters = {FilterPredicate::Eq("city", Value("sf"))};
    select.order_by = "ride_id";
    select.order_desc = false;
    queries.push_back(select);
    OlapQuery ranged;
    ranged.aggregations = {OlapAggregation::Count("n")};
    ranged.filters = {FilterPredicate::Range("ride_id", FilterPredicate::Op::kGe,
                                             Value(int64_t{200}))};
    queries.push_back(ranged);
    return queries;
  }

  std::vector<std::string> RunParitySet(const std::vector<OlapQuery>& queries,
                                        OlapQueryStats* total = nullptr) {
    std::vector<std::string> fps;
    for (const OlapQuery& query : queries) {
      Result<OlapResult> result = cluster_->Query("rides_t", query);
      EXPECT_TRUE(result.ok()) << result.status().ToString();
      if (!result.ok()) {
        fps.push_back("<error>");
        continue;
      }
      if (total != nullptr) {
        total->segments_hot += result.value().stats.segments_hot;
        total->segments_warm += result.value().stats.segments_warm;
        total->segments_cold += result.value().stats.segments_cold;
        total->columns_materialized += result.value().stats.columns_materialized;
      }
      // Scalar oracle must agree in every tier.
      OlapQuery scalar = query;
      scalar.force_scalar = true;
      Result<OlapResult> oracle = cluster_->Query("rides_t", scalar);
      EXPECT_TRUE(oracle.ok()) << oracle.status().ToString();
      if (oracle.ok()) {
        EXPECT_EQ(Fingerprint(result.value()), Fingerprint(oracle.value()));
      }
      fps.push_back(Fingerprint(result.value()));
    }
    return fps;
  }

  void ProduceEpochs(int epochs = 6) {
    const char* cities[] = {"sf", "nyc", "la", "chi", "sea"};
    for (int epoch = 0; epoch < epochs; ++epoch) {
      for (int i = 0; i < 100; ++i) {
        ProduceRide(epoch * 1000 + i, cities[(epoch + i) % 5], 5.0 + i % 7,
                    100000 * epoch + i);
      }
    }
  }

  std::unique_ptr<Broker> broker_;
  std::unique_ptr<storage::InMemoryObjectStore> store_;
  std::unique_ptr<common::Executor> executor_;
  std::unique_ptr<OlapCluster> cluster_;
};

// Tentpole round trip: seal (deferred indexes) -> background compaction ->
// demote to warm -> query (lazy materialization) -> demote to cold ->
// query (store reload / promotion). Results are bitwise-identical to the
// all-hot fingerprints at every stage, and the tier gauges/counters track.
TEST_F(OlapTieringTest, RoundTripLifecycleParity) {
  ProduceEpochs();
  TableConfig table = RideTable();
  table.deferred_index_build = true;
  ASSERT_TRUE(cluster_->CreateTable(table, "rides", FourServers()).ok());
  ASSERT_TRUE(cluster_->IngestAll("rides_t").ok());
  ASSERT_TRUE(cluster_->ForceSeal("rides_t").ok());

  // Background compaction rebuilds the deferred inverted indexes off the
  // write path; a second pump finds nothing left to claim.
  Result<int64_t> compacted = cluster_->CompactOnce("rides_t");
  ASSERT_TRUE(compacted.ok()) << compacted.status().ToString();
  EXPECT_GT(compacted.value(), 0);
  EXPECT_EQ(cluster_->CompactOnce("rides_t").value(), 0);

  const std::vector<OlapQuery> queries = ParityQueries();
  OlapQueryStats hot_stats;
  const std::vector<std::string> hot_fps = RunParitySet(queries, &hot_stats);
  EXPECT_GT(hot_stats.segments_hot, 0);
  EXPECT_EQ(hot_stats.segments_warm + hot_stats.segments_cold, 0);
  const int64_t hot_bytes = cluster_->MemoryBytes("rides_t").value();

  // All warm: packed frames resident, columns decode lazily on first touch.
  ASSERT_TRUE(cluster_->lifecycle()->ApplyTierTargets(0, 1 << 20).ok());
  EXPECT_GT(cluster_->metrics()->GetGauge("olap.tier.warm_bytes")->value(), 0);
  EXPECT_GT(cluster_->metrics()->GetCounter("olap.tier.demotions")->value(), 0);
  const int64_t warm_bytes_before_queries = cluster_->MemoryBytes("rides_t").value();
  EXPECT_LT(warm_bytes_before_queries, hot_bytes);
  OlapQueryStats warm_stats;
  EXPECT_EQ(RunParitySet(queries, &warm_stats), hot_fps);
  EXPECT_GT(warm_stats.segments_warm, 0);
  EXPECT_EQ(warm_stats.segments_cold, 0);
  EXPECT_GT(warm_stats.columns_materialized, 0);
  EXPECT_GT(cluster_->metrics()->GetCounter("olap.tier.materializations")->value(), 0);

  // All cold: frames evicted to the store (put-if-absent), only prune info
  // and validity stay resident. The first query per segment reloads.
  ASSERT_TRUE(cluster_->lifecycle()->ApplyTierTargets(0, 0).ok());
  EXPECT_GT(cluster_->metrics()->GetGauge("olap.tier.cold_bytes")->value(), 0);
  const int64_t cold_bytes = cluster_->MemoryBytes("rides_t").value();
  EXPECT_LT(cold_bytes, warm_bytes_before_queries);
  EXPECT_LT(cold_bytes, hot_bytes / 2);
  EXPECT_FALSE(store_->List("segments/rides_t/").empty());
  OlapQueryStats cold_stats;
  EXPECT_EQ(RunParitySet(queries, &cold_stats), hot_fps);
  EXPECT_GT(cold_stats.segments_cold, 0);
  EXPECT_GT(cluster_->metrics()->GetCounter("olap.tier.promotions")->value(), 0);

  // Promoted segments serve warm now — no second reload.
  OlapQueryStats again_stats;
  EXPECT_EQ(RunParitySet(queries, &again_stats), hot_fps);
  EXPECT_EQ(again_stats.segments_cold, 0);
  EXPECT_GT(again_stats.segments_warm, 0);
}

// Plan-time pruning must never touch a demoted segment's bytes: with every
// segment cold and the store hard-down, a fully-prunable query still
// succeeds (prune info is always resident) and materializes nothing.
TEST_F(OlapTieringTest, PruningNeverMaterializesDemotedSegments) {
  ProduceEpochs();
  ASSERT_TRUE(cluster_->CreateTable(RideTable(), "rides", FourServers()).ok());
  ASSERT_TRUE(cluster_->IngestAll("rides_t").ok());
  ASSERT_TRUE(cluster_->ForceSeal("rides_t").ok());
  ASSERT_TRUE(cluster_->lifecycle()->ApplyTierTargets(0, 0).ok());

  store_->SetAvailable(false);  // any reload attempt would fail loudly
  OlapQuery query;
  query.aggregations = {OlapAggregation::Count("n")};
  query.filters = {FilterPredicate::Eq("ride_id", Value(int64_t{999999999}))};
  Result<OlapResult> result = cluster_->Query("rides_t", query);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().rows[0][0].AsInt(), 0);
  EXPECT_EQ(result.value().stats.segments_scanned, 0);
  EXPECT_EQ(result.value().stats.segments_cold, 0);
  EXPECT_EQ(result.value().stats.columns_materialized, 0);
  EXPECT_GT(result.value().stats.segments_pruned, 0);
  store_->SetAvailable(true);
}

// warm -> cold eviction requires a durable blob: while the store is down
// the demotion fails, the segment stays warm and queries keep working; the
// moment the store heals the eviction completes.
TEST_F(OlapTieringTest, ColdEvictionRequiresDurableBlob) {
  ProduceEpochs(2);
  ASSERT_TRUE(cluster_->CreateTable(RideTable(), "rides", FourServers()).ok());
  ASSERT_TRUE(cluster_->IngestAll("rides_t").ok());
  ASSERT_TRUE(cluster_->ForceSeal("rides_t").ok());
  ASSERT_TRUE(cluster_->lifecycle()->ApplyTierTargets(0, 1 << 20).ok());

  store_->SetAvailable(false);
  EXPECT_FALSE(cluster_->lifecycle()->ApplyTierTargets(0, 0).ok());
  EXPECT_GT(cluster_->metrics()->GetGauge("olap.tier.warm_bytes")->value(), 0);
  OlapQuery query;
  query.aggregations = {OlapAggregation::Count("n")};
  Result<OlapResult> during = cluster_->Query("rides_t", query);
  ASSERT_TRUE(during.ok()) << during.status().ToString();
  EXPECT_EQ(during.value().rows[0][0].AsInt(), 200);

  store_->SetAvailable(true);
  ASSERT_TRUE(cluster_->lifecycle()->ApplyTierTargets(0, 0).ok());
  EXPECT_GT(cluster_->metrics()->GetGauge("olap.tier.cold_bytes")->value(), 0);
  Result<OlapResult> after = cluster_->Query("rides_t", query);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value().rows[0][0].AsInt(), 200);
}

// The acceptance bar: with the budget set to 40% of the all-hot footprint,
// enforcement demotes by query recency until the cluster fits within 1.1x
// the budget, and every query still returns the all-hot fingerprints.
TEST_F(OlapTieringTest, BudgetEnforcementKeepsParity) {
  ProduceEpochs();
  ASSERT_TRUE(cluster_->CreateTable(RideTable(), "rides", FourServers()).ok());
  ASSERT_TRUE(cluster_->IngestAll("rides_t").ok());
  ASSERT_TRUE(cluster_->ForceSeal("rides_t").ok());

  const std::vector<OlapQuery> queries = ParityQueries();
  const std::vector<std::string> hot_fps = RunParitySet(queries);
  const int64_t all_hot = cluster_->lifecycle()->ManagedBytes();
  ASSERT_GT(all_hot, 0);

  const int64_t budget = all_hot * 2 / 5;  // 40% of the all-hot footprint
  cluster_->SetMemoryBudget(budget);
  EXPECT_GT(cluster_->EnforceMemoryBudget(), 0);
  EXPECT_LE(cluster_->lifecycle()->BudgetedBytes(), budget * 11 / 10);
  EXPECT_GT(cluster_->metrics()->GetCounter("olap.tier.demotions")->value(), 0);

  // Queries promote/materialize as needed; the automatic post-query
  // enforcement keeps the cluster inside the budget envelope throughout.
  for (int round = 0; round < 3; ++round) {
    EXPECT_EQ(RunParitySet(queries), hot_fps) << "round " << round;
    EXPECT_LE(cluster_->lifecycle()->BudgetedBytes(), budget * 11 / 10)
        << "round " << round;
  }
  const int64_t hot_gauge =
      cluster_->metrics()->GetGauge("olap.tier.hot_bytes")->value();
  const int64_t warm_gauge =
      cluster_->metrics()->GetGauge("olap.tier.warm_bytes")->value();
  EXPECT_LE(hot_gauge + warm_gauge, budget * 11 / 10);
}

// TSan target: queries race tier demotions and a compaction swap. Every
// query must observe exact counts no matter which representation it pins.
TEST_F(OlapTieringTest, QueriesRaceDemotionsAndCompaction) {
  ProduceEpochs(4);
  TableConfig table = RideTable();
  table.deferred_index_build = true;
  ASSERT_TRUE(cluster_->CreateTable(table, "rides", FourServers()).ok());
  ASSERT_TRUE(cluster_->IngestAll("rides_t").ok());
  ASSERT_TRUE(cluster_->ForceSeal("rides_t").ok());
  const int64_t expect_rows = 400;

  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      OlapQuery query;
      query.aggregations = {OlapAggregation::Count("n")};
      for (int i = 0; i < 40; ++i) {
        Result<OlapResult> result = cluster_->Query("rides_t", query);
        ASSERT_TRUE(result.ok()) << result.status().ToString();
        EXPECT_EQ(result.value().rows[0][0].AsInt(), expect_rows);
      }
    });
  }
  ASSERT_TRUE(cluster_->CompactOnce("rides_t").ok());
  for (int i = 0; i < 15; ++i) {
    ASSERT_TRUE(cluster_->lifecycle()->ApplyTierTargets(0, 1 << 20).ok());
    ASSERT_TRUE(cluster_->lifecycle()->ApplyTierTargets(0, 0).ok());
  }
  for (std::thread& t : readers) t.join();

  OlapQuery final_query;
  final_query.aggregations = {OlapAggregation::Count("n")};
  EXPECT_EQ(cluster_->Query("rides_t", final_query).value().rows[0][0].AsInt(),
            expect_rows);
}

// Upsert correctness across the full lifecycle: overwritten rows stay dead
// through demotion, cold eviction, server loss and store-path recovery
// (the replay rebuilds validity; archived snapshots are never trusted).
TEST_F(OlapTieringTest, UpsertRecoveryAcrossTiers) {
  TopicConfig topic;
  topic.num_partitions = 4;
  ASSERT_TRUE(broker_->CreateTopic("fares", topic).ok());
  TableConfig table;
  table.name = "fares_t";
  table.schema = RowSchema({{"ride_id", ValueType::kString},
                            {"fare", ValueType::kDouble}});
  table.segment_rows_threshold = 10;
  table.upsert_enabled = true;
  table.primary_key_column = "ride_id";
  ClusterTableOptions one_server;
  one_server.num_servers = 1;  // no peers: recovery must go via the store
  ASSERT_TRUE(cluster_->CreateTable(table, "fares", one_server).ok());

  auto produce = [&](int id, double fare) {
    Message m;
    m.key = "ride" + std::to_string(id);
    m.value = EncodeRow({Value("ride" + std::to_string(id)), Value(fare)});
    m.timestamp = 1;
    ASSERT_TRUE(broker_->Produce("fares", std::move(m)).ok());
  };
  for (int id = 0; id < 60; ++id) produce(id, 10.0 + id);
  ASSERT_TRUE(cluster_->IngestAll("fares_t").ok());
  ASSERT_TRUE(cluster_->ForceSeal("fares_t").ok());
  // Overwrite a third of the keys AFTER their segments sealed (and after
  // the seal-time validity snapshot was archived — the snapshot is stale).
  ASSERT_TRUE(cluster_->DrainArchivalQueue("fares_t").ok());
  for (int id = 0; id < 60; id += 3) produce(id, 999.0);
  ASSERT_TRUE(cluster_->IngestAll("fares_t").ok());
  ASSERT_TRUE(cluster_->ForceSeal("fares_t").ok());
  ASSERT_TRUE(cluster_->DrainArchivalQueue("fares_t").ok());

  auto check = [&](const std::string& stage) {
    OlapQuery count;
    count.aggregations = {OlapAggregation::Count("n")};
    Result<OlapResult> total = cluster_->Query("fares_t", count);
    ASSERT_TRUE(total.ok()) << stage << ": " << total.status().ToString();
    EXPECT_EQ(total.value().rows[0][0].AsInt(), 60) << stage;
    OlapQuery lookup;
    lookup.select_columns = {"fare"};
    lookup.filters = {FilterPredicate::Eq("ride_id", Value("ride3"))};
    Result<OlapResult> hit = cluster_->Query("fares_t", lookup);
    ASSERT_TRUE(hit.ok()) << stage;
    ASSERT_EQ(hit.value().rows.size(), 1u) << stage;
    EXPECT_DOUBLE_EQ(hit.value().rows[0][0].AsDouble(), 999.0) << stage;
  };
  check("all hot");

  ASSERT_TRUE(cluster_->lifecycle()->ApplyTierTargets(0, 0).ok());
  check("all cold");

  ASSERT_TRUE(cluster_->KillServer("fares_t", 0).ok());
  Result<RecoveryReport> report = cluster_->RecoverServer("fares_t", 0);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report.value().segments_lost, 0);
  EXPECT_GT(report.value().segments_from_store, 0);
  check("post recovery");

  // Idempotent recovery: HasSegment (hash set) dedupes a second pass.
  Result<RecoveryReport> again = cluster_->RecoverServer("fares_t", 0);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value().segments_from_store, 0);
  EXPECT_EQ(again.value().segments_from_peers, 0);
  check("double recovery");

  ASSERT_TRUE(cluster_->lifecycle()->ApplyTierTargets(0, 0).ok());
  check("cold after recovery");
}

// The result cache is a byte-capped LRU: a hit refreshes recency, inserts
// evict from the cold end, and the gauge tracks the resident bytes.
TEST_F(OlapTieringTest, ResultCacheLruByteCap) {
  ProduceEpochs(2);
  OlapClusterOptions options;
  options.result_cache_max_bytes = 8192;
  OlapCluster capped(broker_.get(), store_.get(), executor_.get(), options);
  ASSERT_TRUE(capped.CreateTable(RideTable(), "rides", FourServers()).ok());
  ASSERT_TRUE(capped.IngestAll("rides_t").ok());

  // Three ~3.2 KB results: two fit under the cap together, three never do.
  auto make_query = [](int64_t min_id) {
    OlapQuery query;
    query.use_cache = true;
    query.select_columns = {"ride_id", "city", "fare"};
    query.filters = {FilterPredicate::Range("ride_id", FilterPredicate::Op::kGe,
                                            Value(min_id))};
    query.order_by = "ride_id";
    query.order_desc = false;
    query.limit = 48;
    return query;
  };
  auto from_cache = [&](const OlapQuery& query) {
    Result<OlapResult> result = capped.Query("rides_t", query);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return result.ok() && result.value().stats.from_cache;
  };
  const OlapQuery qa = make_query(0), qb = make_query(1), qc = make_query(2);

  EXPECT_FALSE(from_cache(qa));  // cache A
  EXPECT_FALSE(from_cache(qb));  // cache B (A older)
  const int64_t two_entries =
      capped.metrics()->GetGauge("olap.result_cache.bytes")->value();
  EXPECT_GT(two_entries, 0);
  EXPECT_LE(two_entries, options.result_cache_max_bytes);

  EXPECT_TRUE(from_cache(qa));   // hit moves A to the front; B is now LRU
  EXPECT_FALSE(from_cache(qc));  // cache C -> evicts B, keeps A
  EXPECT_TRUE(from_cache(qa));
  EXPECT_FALSE(from_cache(qb));  // B was evicted
  EXPECT_LE(capped.metrics()->GetGauge("olap.result_cache.bytes")->value(),
            options.result_cache_max_bytes);
}

}  // namespace
}  // namespace uberrt::olap
