// Concurrency suite for the shared execution substrate: BoundedQueue under
// multi-producer/multi-consumer stress and close-while-blocked, the
// TryPushRef stash-retry contract the cooperative JobRunner relies on,
// WaitGroup, and the Executor pool itself. Meant to run under
// -DUBERRT_SANITIZE=thread and =address in addition to the plain build.

#include "common/executor.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/queue.h"
#include "compute/job_runner.h"
#include "stream/broker.h"

namespace uberrt::common {
namespace {

TEST(BoundedQueueConcurrencyTest, MpmcStressDeliversEveryItemExactlyOnce) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 5000;
  BoundedQueue<int> queue(8);  // small capacity: forces blocking both ways
  std::vector<std::atomic<int>> seen(kProducers * kPerProducer);

  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&] {
      while (true) {
        std::optional<int> item = queue.Pop();
        if (!item.has_value()) return;  // closed and drained
        seen[static_cast<size_t>(*item)].fetch_add(1);
      }
    });
  }
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(queue.Push(p * kPerProducer + i));
      }
    });
  }
  for (std::thread& t : producers) t.join();
  queue.Close();
  for (std::thread& t : consumers) t.join();
  for (const std::atomic<int>& count : seen) EXPECT_EQ(count.load(), 1);
}

TEST(BoundedQueueConcurrencyTest, CloseReleasesProducersBlockedOnFullQueue) {
  BoundedQueue<int> queue(1);
  ASSERT_TRUE(queue.Push(7));  // now full
  std::atomic<int> rejected{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < 3; ++p) {
    producers.emplace_back([&] {
      if (!queue.Push(99)) rejected.fetch_add(1);  // blocks until Close
    });
  }
  SystemClock::Instance()->SleepMs(20);  // let them block
  queue.Close();
  for (std::thread& t : producers) t.join();
  EXPECT_EQ(rejected.load(), 3);
  // The pre-close item still drains, then the closed queue reports empty.
  EXPECT_EQ(queue.Pop().value(), 7);
  EXPECT_FALSE(queue.Pop().has_value());
}

TEST(BoundedQueueConcurrencyTest, CloseReleasesConsumersBlockedOnEmptyQueue) {
  BoundedQueue<int> queue(4);
  std::atomic<int> woken{0};
  std::vector<std::thread> consumers;
  for (int c = 0; c < 3; ++c) {
    consumers.emplace_back([&] {
      if (!queue.Pop().has_value()) woken.fetch_add(1);  // blocks until Close
    });
  }
  SystemClock::Instance()->SleepMs(20);
  queue.Close();
  for (std::thread& t : consumers) t.join();
  EXPECT_EQ(woken.load(), 3);
}

TEST(BoundedQueueTest, TryPushRefLeavesItemIntactOnFullAndClosed) {
  BoundedQueue<std::string> queue(1);
  std::string stashed = "stashed-payload";
  ASSERT_TRUE(queue.TryPushRef(stashed));  // success consumes the value
  stashed = "second";
  EXPECT_FALSE(queue.TryPushRef(stashed));  // full: value must survive
  EXPECT_EQ(stashed, "second");
  EXPECT_EQ(queue.Pop().value(), "stashed-payload");
  EXPECT_TRUE(queue.TryPushRef(stashed));
  EXPECT_EQ(queue.Pop().value(), "second");
  stashed = "after-close";
  queue.Close();
  EXPECT_FALSE(queue.TryPushRef(stashed));
  EXPECT_EQ(stashed, "after-close");
}

TEST(WaitGroupTest, WaitForTimesOutThenCompletes) {
  WaitGroup wg;
  wg.Add(2);
  EXPECT_FALSE(wg.WaitFor(std::chrono::milliseconds(10)));
  std::thread finisher([&] {
    wg.Done();
    wg.Done();
  });
  wg.Wait();
  finisher.join();
  EXPECT_TRUE(wg.WaitFor(std::chrono::milliseconds(0)));
}

TEST(ExecutorTest, RunsEveryAcceptedTaskOnItsOwnThreads) {
  ExecutorOptions options;
  options.num_threads = 2;
  options.name = "executor.test";
  Executor executor(options);
  ASSERT_EQ(executor.num_threads(), 2u);

  constexpr int kTasks = 500;
  std::atomic<int> ran{0};
  std::mutex mu;
  std::set<std::thread::id> task_threads;
  const std::thread::id submitter = std::this_thread::get_id();
  WaitGroup wg;
  for (int i = 0; i < kTasks; ++i) {
    wg.Add(1);
    ASSERT_TRUE(executor.Submit([&] {
      ran.fetch_add(1);
      {
        std::lock_guard<std::mutex> lock(mu);
        task_threads.insert(std::this_thread::get_id());
      }
      wg.Done();
    }));
  }
  wg.Wait();
  EXPECT_EQ(ran.load(), kTasks);
  // Every task ran on a pool thread — never inline on the submitter — and
  // the pool used no more OS threads than configured.
  EXPECT_LE(task_threads.size(), 2u);
  EXPECT_EQ(task_threads.count(submitter), 0u);

  executor.Shutdown();
  EXPECT_EQ(executor.metrics().GetCounter("executor.test.tasks_submitted")->value(),
            kTasks);
  EXPECT_EQ(executor.metrics().GetCounter("executor.test.tasks_completed")->value(),
            kTasks);
  EXPECT_GT(executor.metrics().GetHistogram("executor.test.task_run_us")->Count(), 0);
}

TEST(ExecutorTest, SubmitAfterShutdownFailsAndShutdownIsIdempotent) {
  Executor executor(ExecutorOptions{2, 0, "executor.test"});
  executor.Shutdown();
  EXPECT_FALSE(executor.Submit([] {}));
  executor.Shutdown();  // second call must be a no-op
  EXPECT_EQ(executor.QueueDepth(), 0u);
}

TEST(ExecutorTest, ConcurrentSubmittersRaceShutdownWithoutLosingAcceptedTasks) {
  Executor executor(ExecutorOptions{3, 0, "executor.test"});
  std::atomic<bool> stop{false};
  std::atomic<int64_t> accepted{0};
  std::atomic<int64_t> executed{0};
  std::vector<std::thread> submitters;
  for (int s = 0; s < 4; ++s) {
    submitters.emplace_back([&] {
      while (!stop.load()) {
        if (executor.Submit([&executed] { executed.fetch_add(1); })) {
          accepted.fetch_add(1);
        }
      }
    });
  }
  SystemClock::Instance()->SleepMs(30);
  executor.Shutdown();  // races in-flight Submit calls; queue still drains
  stop.store(true);
  for (std::thread& t : submitters) t.join();
  EXPECT_EQ(executed.load(), accepted.load());
  EXPECT_GT(executed.load(), 0);
}

TEST(ExecutorTest, ConcurrentShutdownCallsAreSafe) {
  auto executor = std::make_unique<Executor>(ExecutorOptions{2, 0, "executor.test"});
  for (int i = 0; i < 64; ++i) {
    executor->Submit([] { SystemClock::Instance()->SleepMs(1); });
  }
  std::vector<std::thread> closers;
  for (int c = 0; c < 3; ++c) {
    closers.emplace_back([&] { executor->Shutdown(); });
  }
  for (std::thread& t : closers) t.join();
}

// The ISSUE's thread-count acceptance check: a wide job (parallelism 4 ->
// 4 source + 16 operator instance loops under the old thread-per-instance
// runner) must run entirely on a 2-thread shared pool. Sink records which
// threads execute operator work; the set must be within the pool.
TEST(ExecutorTest, WideJobRunsBoundedByTwoThreadSharedPool) {
  stream::Broker broker("c1");
  stream::TopicConfig topic;
  topic.num_partitions = 4;
  ASSERT_TRUE(broker.CreateTopic("trips", topic).ok());
  RowSchema schema({{"hex", ValueType::kString},
                    {"fare", ValueType::kDouble},
                    {"ts", ValueType::kInt}});
  for (int i = 0; i < 200; ++i) {
    stream::Message m;
    m.key = "hex" + std::to_string(i % 7);
    m.value = EncodeRow({Value(m.key), Value(1.0 * i), Value(int64_t{1000} + i)});
    m.timestamp = 1000 + i;
    ASSERT_TRUE(broker.Produce("trips", std::move(m)).ok());
  }

  Executor pool(ExecutorOptions{2, 0, "executor.test"});
  std::mutex mu;
  std::set<std::thread::id> sink_threads;
  std::atomic<int64_t> rows{0};
  compute::JobGraph graph("wide");
  compute::SourceSpec source;
  source.topic = "trips";
  source.schema = schema;
  source.time_field = "ts";
  graph.AddSource(source)
      .Map(
          "ident", [](const Row& r) { return r; }, schema)
      .SinkToCollector([&](const Row&, TimestampMs) {
        rows.fetch_add(1);
        std::lock_guard<std::mutex> lock(mu);
        sink_threads.insert(std::this_thread::get_id());
      });

  compute::JobRunnerOptions options;
  options.executor = &pool;
  storage::InMemoryObjectStore store;
  compute::JobRunner runner(graph.WithParallelism(4), &broker, &store, options);
  ASSERT_TRUE(runner.Start().ok());
  runner.RequestFinish();
  ASSERT_TRUE(runner.AwaitTermination(10000).ok());
  EXPECT_EQ(rows.load(), 200);
  EXPECT_LE(sink_threads.size(), 2u);
  EXPECT_EQ(pool.num_threads(), 2u);
}

}  // namespace
}  // namespace uberrt::common
