#include <gtest/gtest.h>

#include <set>

#include "allactive/coordinator.h"
#include "allactive/topology.h"

namespace uberrt::allactive {
namespace {

using stream::Message;
using stream::TopicConfig;

Message Msg(const std::string& uid, TimestampMs ts = 1) {
  Message m;
  m.value = uid;
  m.timestamp = ts;
  m.headers[stream::kHeaderUid] = uid;
  return m;
}

class MultiRegionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    topology_ = std::make_unique<MultiRegionTopology>(
        std::vector<std::string>{"dca", "phx"});
    TopicConfig config;
    config.num_partitions = 2;
    ASSERT_TRUE(topology_->CreateTopic("trips", config).ok());
  }

  std::set<std::string> AggregateContents(const std::string& region) {
    std::set<std::string> uids;
    stream::Broker* aggregate = topology_->GetRegion(region)->aggregate();
    for (int32_t p = 0; p < 2; ++p) {
      Result<std::vector<Message>> batch = aggregate->Fetch("trips", p, 0, 10'000);
      if (!batch.ok()) continue;
      for (const Message& m : batch.value()) uids.insert(m.value);
    }
    return uids;
  }

  std::unique_ptr<MultiRegionTopology> topology_;
};

TEST_F(MultiRegionTest, AggregateClustersConvergeToGlobalView) {
  // Producers in both regions (Figure 6's regional -> aggregate flow).
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(topology_->ProduceToRegion("dca", "trips",
                                           Msg("dca-" + std::to_string(i))).ok());
  }
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(topology_->ProduceToRegion("phx", "trips",
                                           Msg("phx-" + std::to_string(i))).ok());
  }
  ASSERT_TRUE(topology_->ReplicateAll().ok());
  std::set<std::string> dca = AggregateContents("dca");
  std::set<std::string> phx = AggregateContents("phx");
  EXPECT_EQ(dca.size(), 50u);
  // Both aggregates hold the identical logical content: the convergence
  // property that lets redundant surge pipelines compute the same result.
  EXPECT_EQ(dca, phx);
}

TEST_F(MultiRegionTest, RegionalFailureDoesNotBlockOtherRoutes) {
  for (int i = 0; i < 10; ++i) {
    topology_->ProduceToRegion("dca", "trips", Msg("dca-" + std::to_string(i))).ok();
  }
  topology_->GetRegion("phx")->Fail();
  ASSERT_TRUE(topology_->ReplicateAll().ok());
  // dca's aggregate got dca's data; phx untouched but nothing crashed.
  EXPECT_EQ(AggregateContents("dca").size(), 10u);
  topology_->GetRegion("phx")->Restore();
  ASSERT_TRUE(topology_->ReplicateAll().ok());
  EXPECT_EQ(AggregateContents("phx").size(), 10u);  // caught up after restore
}

TEST_F(MultiRegionTest, ActivePassiveFailoverLosesNothing) {
  // Steady production in both regions, replicated everywhere.
  int64_t produced = 0;
  for (int i = 0; i < 300; ++i) {
    topology_->ProduceToRegion(i % 2 ? "dca" : "phx", "trips",
                               Msg("m-" + std::to_string(i))).ok();
    ++produced;
  }
  ASSERT_TRUE(topology_->ReplicateAll().ok());

  ActivePassiveConsumer consumer(topology_.get(), "payments", "trips", "dca");
  std::set<std::string> seen;
  // Consume roughly half, committing as we go.
  while (static_cast<int64_t>(seen.size()) < produced / 2) {
    Result<std::vector<Message>> batch = consumer.Poll(40);
    ASSERT_TRUE(batch.ok());
    if (batch.value().empty()) break;
    for (const Message& m : batch.value()) seen.insert(m.value);
  }
  int64_t before_failover = static_cast<int64_t>(seen.size());
  ASSERT_GT(before_failover, 0);

  // Disaster strikes dca; fail over to phx.
  topology_->GetRegion("dca")->Fail();
  ASSERT_TRUE(consumer.FailoverTo("phx").ok());
  EXPECT_EQ(consumer.current_region(), "phx");

  int64_t duplicates = 0;
  while (true) {
    Result<std::vector<Message>> batch = consumer.Poll(100);
    ASSERT_TRUE(batch.ok());
    if (batch.value().empty()) break;
    for (const Message& m : batch.value()) {
      if (!seen.insert(m.value).second) ++duplicates;
    }
  }
  // Zero loss: every produced message was processed at least once.
  EXPECT_EQ(static_cast<int64_t>(seen.size()), produced);
  // Bounded replay: the duplicate window stays well under a full re-read
  // (the offset sync resumed near the synced position, not from zero).
  EXPECT_LT(duplicates, produced / 2);
}

TEST_F(MultiRegionTest, OffsetSyncIsConservative) {
  for (int i = 0; i < 200; ++i) {
    topology_->ProduceToRegion("dca", "trips", Msg("a-" + std::to_string(i))).ok();
  }
  ASSERT_TRUE(topology_->ReplicateAll().ok());
  stream::Broker* dca_agg = topology_->GetRegion("dca")->aggregate();
  // Simulate a consumer that committed to the middle of partition 0.
  int64_t end = dca_agg->EndOffset("trips", 0).value();
  ASSERT_TRUE(dca_agg->CommitOffset("g", "trips", 0, end / 2).ok());
  Result<int64_t> synced = topology_->SyncConsumerOffsets("g", "trips", "dca", "phx");
  ASSERT_TRUE(synced.ok());
  EXPECT_EQ(synced.value(), 1);
  stream::Broker* phx_agg = topology_->GetRegion("phx")->aggregate();
  Result<int64_t> translated = phx_agg->CommittedOffset("g", "trips", 0);
  ASSERT_TRUE(translated.ok());
  // Conservative: at or before the logically-equivalent position, never past.
  EXPECT_LE(translated.value(), end / 2);
  EXPECT_GT(translated.value(), 0);
}

TEST(AllActiveCoordinatorTest, PrimaryElectionAndFailover) {
  MultiRegionTopology topology({"dca", "phx", "sjc"});
  AllActiveCoordinator coordinator(&topology);
  ASSERT_TRUE(coordinator.RegisterService("surge", "dca").ok());
  EXPECT_TRUE(coordinator.IsPrimary("surge", "dca"));
  EXPECT_FALSE(coordinator.IsPrimary("surge", "phx"));
  EXPECT_TRUE(coordinator.RegisterService("surge", "dca").IsAlreadyExists());

  topology.GetRegion("dca")->Fail();
  Result<std::string> new_primary = coordinator.Failover("surge");
  ASSERT_TRUE(new_primary.ok());
  EXPECT_NE(new_primary.value(), "dca");
  EXPECT_TRUE(coordinator.IsPrimary("surge", new_primary.value()));
  EXPECT_EQ(coordinator.failovers(), 1);

  // All regions down: failover impossible.
  topology.GetRegion("phx")->Fail();
  topology.GetRegion("sjc")->Fail();
  EXPECT_TRUE(coordinator.Failover("surge").status().IsUnavailable());
}

}  // namespace
}  // namespace uberrt::allactive
