#include <gtest/gtest.h>

#include "sql/expr_eval.h"
#include "sql/parser.h"

namespace uberrt::sql {
namespace {

std::unique_ptr<SelectStmt> ParseOrDie(const std::string& query) {
  Result<std::unique_ptr<SelectStmt>> stmt = ParseSelect(query);
  EXPECT_TRUE(stmt.ok()) << query << " -> " << stmt.status().ToString();
  return stmt.ok() ? std::move(stmt.value()) : nullptr;
}

TEST(ParserTest, SimpleSelect) {
  auto stmt = ParseOrDie("SELECT a, b FROM t");
  ASSERT_NE(stmt, nullptr);
  ASSERT_EQ(stmt->items.size(), 2u);
  EXPECT_EQ(stmt->items[0].expr->name, "a");
  EXPECT_EQ(stmt->from->name, "t");
  EXPECT_EQ(stmt->limit, -1);
}

TEST(ParserTest, StarAliasesAndLimit) {
  auto stmt = ParseOrDie("select * from t limit 10;");
  ASSERT_NE(stmt, nullptr);
  EXPECT_EQ(stmt->items[0].expr->kind, Expr::Kind::kStar);
  EXPECT_EQ(stmt->limit, 10);
  auto aliased = ParseOrDie("SELECT fare AS f, fare * 2 doubled FROM trips");
  ASSERT_NE(aliased, nullptr);
  EXPECT_EQ(aliased->items[0].alias, "f");
  EXPECT_EQ(aliased->items[1].alias, "doubled");
}

TEST(ParserTest, WherePrecedence) {
  auto stmt = ParseOrDie("SELECT a FROM t WHERE x > 1 AND y < 2 OR NOT z = 3");
  ASSERT_NE(stmt, nullptr);
  // ((x>1 AND y<2) OR (NOT (z=3)))
  EXPECT_EQ(stmt->where->op, Expr::Op::kOr);
  EXPECT_EQ(stmt->where->children[0]->op, Expr::Op::kAnd);
  EXPECT_EQ(stmt->where->children[1]->op, Expr::Op::kNot);
}

TEST(ParserTest, ArithmeticPrecedence) {
  auto stmt = ParseOrDie("SELECT a + b * 2 - c / 4 FROM t");
  ASSERT_NE(stmt, nullptr);
  EXPECT_EQ(stmt->items[0].expr->ToString(), "((a + (b * 2)) - (c / 4))");
}

TEST(ParserTest, GroupByWithTumbleWindow) {
  auto stmt = ParseOrDie(
      "SELECT hex, COUNT(*) AS n FROM trips "
      "GROUP BY hex, TUMBLE(ts, INTERVAL '5' MINUTE)");
  ASSERT_NE(stmt, nullptr);
  ASSERT_EQ(stmt->group_by.size(), 1u);
  ASSERT_TRUE(stmt->window.has_value());
  EXPECT_EQ(stmt->window->type, WindowClause::Type::kTumble);
  EXPECT_EQ(stmt->window->time_column, "ts");
  EXPECT_EQ(stmt->window->size_ms, 5 * 60'000);
}

TEST(ParserTest, HopAndSessionWindows) {
  auto hop = ParseOrDie(
      "SELECT COUNT(*) FROM t GROUP BY HOP(ts, INTERVAL '1' MINUTE, "
      "INTERVAL '10' MINUTE)");
  ASSERT_NE(hop, nullptr);
  EXPECT_EQ(hop->window->type, WindowClause::Type::kHop);
  EXPECT_EQ(hop->window->slide_ms, 60'000);
  EXPECT_EQ(hop->window->size_ms, 600'000);
  auto session =
      ParseOrDie("SELECT COUNT(*) FROM t GROUP BY SESSION(ts, INTERVAL '30' SECOND)");
  ASSERT_NE(session, nullptr);
  EXPECT_EQ(session->window->type, WindowClause::Type::kSession);
  EXPECT_EQ(session->window->gap_ms, 30'000);
}

TEST(ParserTest, JoinWithOnCondition) {
  auto stmt = ParseOrDie(
      "SELECT a.x, b.y FROM left_t a JOIN right_t b ON a.id = b.id AND a.v > 3");
  ASSERT_NE(stmt, nullptr);
  ASSERT_EQ(stmt->from->kind, TableRef::Kind::kJoin);
  EXPECT_EQ(stmt->from->left->name, "left_t");
  EXPECT_EQ(stmt->from->left->alias, "a");
  EXPECT_EQ(stmt->from->right->alias, "b");
  EXPECT_EQ(stmt->from->join_condition->op, Expr::Op::kAnd);
}

TEST(ParserTest, SubqueryInFrom) {
  auto stmt = ParseOrDie(
      "SELECT city, n FROM (SELECT city, COUNT(*) AS n FROM orders GROUP BY city) "
      "sub WHERE n > 10");
  ASSERT_NE(stmt, nullptr);
  ASSERT_EQ(stmt->from->kind, TableRef::Kind::kSubquery);
  EXPECT_EQ(stmt->from->alias, "sub");
  ASSERT_NE(stmt->from->subquery, nullptr);
  EXPECT_EQ(stmt->from->subquery->group_by.size(), 1u);
}

TEST(ParserTest, OrderByHavingDistinctDirections) {
  auto stmt = ParseOrDie(
      "SELECT city, SUM(v) AS s FROM t GROUP BY city HAVING SUM(v) > 5 "
      "ORDER BY s DESC, city ASC LIMIT 7");
  ASSERT_NE(stmt, nullptr);
  ASSERT_NE(stmt->having, nullptr);
  ASSERT_EQ(stmt->order_by.size(), 2u);
  EXPECT_TRUE(stmt->order_by[0].descending);
  EXPECT_FALSE(stmt->order_by[1].descending);
  EXPECT_EQ(stmt->limit, 7);
}

TEST(ParserTest, LiteralsAndFunctions) {
  auto stmt = ParseOrDie(
      "SELECT COUNT(*), SUM(fare), ABS(delta) FROM t "
      "WHERE name = 'some string' AND flag = TRUE AND x <> NULL");
  ASSERT_NE(stmt, nullptr);
  EXPECT_TRUE(stmt->items[0].expr->ContainsAggregate());
  EXPECT_TRUE(stmt->items[1].expr->ContainsAggregate());
  EXPECT_FALSE(stmt->items[2].expr->ContainsAggregate());
}

TEST(ParserTest, QualifiedCatalogTableNames) {
  auto stmt = ParseOrDie("SELECT x FROM hive.raw.orders");
  ASSERT_NE(stmt, nullptr);
  EXPECT_EQ(stmt->from->name, "hive.raw.orders");
}

TEST(ParserTest, ErrorsAreClear) {
  EXPECT_FALSE(ParseSelect("").ok());
  EXPECT_FALSE(ParseSelect("SELECT").ok());
  EXPECT_FALSE(ParseSelect("SELECT a").ok());                 // no FROM
  EXPECT_FALSE(ParseSelect("SELECT a FROM t WHERE").ok());    // dangling
  EXPECT_FALSE(ParseSelect("SELECT a FROM t GROUP x").ok());  // missing BY
  EXPECT_FALSE(ParseSelect("SELECT a FROM t extra garbage !").ok());
  EXPECT_FALSE(ParseSelect("SELECT a FROM t WHERE name = 'unterminated").ok());
}

TEST(ExprEvalTest, ArithmeticAndComparisons) {
  RowSchema schema({{"a", ValueType::kInt}, {"b", ValueType::kDouble},
                    {"s", ValueType::kString}});
  RowBinding binding(schema);
  Row row{Value(int64_t{6}), Value(2.5), Value("hi")};
  auto eval = [&](const std::string& sql_expr) {
    auto stmt = ParseOrDie("SELECT " + sql_expr + " FROM t");
    Result<Value> v = EvalExpr(*stmt->items[0].expr, row, binding);
    EXPECT_TRUE(v.ok()) << sql_expr << ": " << v.status().ToString();
    return v.ok() ? v.value() : Value::Null();
  };
  EXPECT_DOUBLE_EQ(eval("a + b").ToNumeric(), 8.5);
  EXPECT_DOUBLE_EQ(eval("a * 2 - 1").ToNumeric(), 11.0);
  EXPECT_DOUBLE_EQ(eval("a / 4").ToNumeric(), 1.5);
  EXPECT_TRUE(eval("a / 0").is_null());  // SQL-style null on divide-by-zero
  EXPECT_TRUE(eval("a > 5").AsBool());
  EXPECT_TRUE(eval("a >= 6 AND b < 3").AsBool());
  EXPECT_FALSE(eval("a = 7").AsBool());
  EXPECT_TRUE(eval("s = 'hi'").AsBool());
  EXPECT_TRUE(eval("NOT (a < 0)").AsBool());
  EXPECT_DOUBLE_EQ(eval("ABS(0 - a)").ToNumeric(), 6.0);
  EXPECT_EQ(eval("LENGTH(s)").AsInt(), 2);
  EXPECT_DOUBLE_EQ(eval("-a").ToNumeric(), -6.0);
}

TEST(ExprEvalTest, QualifiedAndAmbiguousColumns) {
  RowBinding binding;
  binding.Add("a", RowSchema({{"id", ValueType::kInt}}), 0);
  binding.Add("b", RowSchema({{"id", ValueType::kInt}}), 1);
  Row row{Value(int64_t{1}), Value(int64_t{2})};
  auto q = Expr::Column("b", "id");
  EXPECT_EQ(EvalExpr(*q, row, binding).value().AsInt(), 2);
  auto unqualified = Expr::Column("", "id");
  EXPECT_FALSE(EvalExpr(*unqualified, row, binding).ok());  // ambiguous
  auto unknown = Expr::Column("", "nope");
  EXPECT_FALSE(EvalExpr(*unknown, row, binding).ok());
}

TEST(ExprEvalTest, AggregateInScalarContextRejected) {
  RowBinding binding(RowSchema({{"a", ValueType::kInt}}));
  auto call = Expr::Call("SUM", {});
  EXPECT_FALSE(EvalExpr(*call, {Value(int64_t{1})}, binding).ok());
}

}  // namespace
}  // namespace uberrt::sql
