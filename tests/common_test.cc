#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/clock.h"
#include "common/hash.h"
#include "common/metrics.h"
#include "common/queue.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/value.h"

namespace uberrt {
namespace {

TEST(StatusTest, OkAndErrorStates) {
  Status ok = Status::Ok();
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.ToString(), "OK");
  Status nf = Status::NotFound("thing");
  EXPECT_FALSE(nf.ok());
  EXPECT_TRUE(nf.IsNotFound());
  EXPECT_EQ(nf.ToString(), "NotFound: thing");
}

TEST(ResultTest, ValueAndStatusPaths) {
  Result<int> good = 7;
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 7);
  Result<int> bad = Status::Timeout("slow");
  ASSERT_FALSE(bad.ok());
  EXPECT_TRUE(bad.status().IsTimeout());
}

TEST(ValueTest, TypedAccessAndComparison) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value(int64_t{5}).AsInt(), 5);
  EXPECT_DOUBLE_EQ(Value(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Value("abc").AsString(), "abc");
  EXPECT_TRUE(Value(true).AsBool());
  // Cross-type numeric ordering.
  EXPECT_TRUE(Value(int64_t{3}) < Value(3.5));
  EXPECT_FALSE(Value(3.5) < Value(int64_t{3}));
  // Null sorts first.
  EXPECT_TRUE(Value::Null() < Value(int64_t{0}));
  // Numerics sort before strings.
  EXPECT_TRUE(Value(int64_t{99}) < Value("a"));
}

TEST(ValueTest, ToNumericCoercions) {
  EXPECT_DOUBLE_EQ(Value(int64_t{4}).ToNumeric(), 4.0);
  EXPECT_DOUBLE_EQ(Value(true).ToNumeric(), 1.0);
  EXPECT_DOUBLE_EQ(Value("x").ToNumeric(), 0.0);
  EXPECT_DOUBLE_EQ(Value::Null().ToNumeric(), 0.0);
}

TEST(RowCodecTest, RoundTripAllTypes) {
  Row row{Value(int64_t{-42}), Value(3.14159), Value("hello world"), Value(false),
          Value::Null(), Value(std::string())};
  Result<Row> decoded = DecodeRow(EncodeRow(row));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value(), row);
}

TEST(RowCodecTest, EmptyRowRoundTrips) {
  Result<Row> decoded = DecodeRow(EncodeRow(Row{}));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded.value().empty());
}

TEST(RowCodecTest, CorruptInputsRejectedSafely) {
  EXPECT_TRUE(DecodeRow("").status().IsCorruption());
  EXPECT_TRUE(DecodeRow("abc").status().IsCorruption());
  // Huge bogus field count must not allocate.
  EXPECT_TRUE(DecodeRow("\xff\xff\xff\xff").status().IsCorruption());
  // Truncated string body.
  std::string valid = EncodeRow({Value("hello")});
  EXPECT_TRUE(DecodeRow(valid.substr(0, valid.size() - 2)).status().IsCorruption());
}

/// Property sweep: random rows of every size round-trip exactly.
class RowCodecPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(RowCodecPropertyTest, RandomRowsRoundTrip) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  for (int trial = 0; trial < 50; ++trial) {
    Row row;
    int64_t fields = rng.Uniform(0, 12);
    for (int64_t f = 0; f < fields; ++f) {
      switch (rng.Uniform(0, 4)) {
        case 0: row.push_back(Value(rng.Uniform(-1'000'000, 1'000'000))); break;
        case 1: row.push_back(Value(rng.Gaussian(0, 1e6))); break;
        case 2: row.push_back(Value(rng.AlphaString(static_cast<size_t>(rng.Uniform(0, 40))))); break;
        case 3: row.push_back(Value(rng.Chance(0.5))); break;
        default: row.push_back(Value::Null()); break;
      }
    }
    Result<Row> decoded = DecodeRow(EncodeRow(row));
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded.value(), row);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RowCodecPropertyTest, ::testing::Values(1, 2, 3, 4, 5));

TEST(RowSchemaTest, FieldLookup) {
  RowSchema schema({{"a", ValueType::kInt}, {"b", ValueType::kString}});
  EXPECT_EQ(schema.FieldIndex("a"), 0);
  EXPECT_EQ(schema.FieldIndex("b"), 1);
  EXPECT_EQ(schema.FieldIndex("c"), -1);
  EXPECT_TRUE(schema.HasField("b"));
  EXPECT_EQ(schema.ToString(), "(a INT, b STRING)");
}

TEST(BoundedQueueTest, FifoOrder) {
  BoundedQueue<int> q(10);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(q.Push(i));
  for (int i = 0; i < 5; ++i) EXPECT_EQ(*q.Pop(), i);
}

TEST(BoundedQueueTest, TryPushRespectsCapacity) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));
  EXPECT_FALSE(q.TryPush(3));  // full
  q.Pop();
  EXPECT_TRUE(q.TryPush(3));
}

TEST(BoundedQueueTest, UnboundedNeverBlocks) {
  BoundedQueue<int> q(0);
  for (int i = 0; i < 100'000; ++i) ASSERT_TRUE(q.TryPush(i));
  EXPECT_EQ(q.Size(), 100'000u);
}

TEST(BoundedQueueTest, CloseDrainsThenEnds) {
  BoundedQueue<int> q(4);
  q.Push(1);
  q.Push(2);
  q.Close();
  EXPECT_FALSE(q.Push(3));
  EXPECT_EQ(*q.Pop(), 1);
  EXPECT_EQ(*q.Pop(), 2);
  EXPECT_FALSE(q.Pop().has_value());
}

TEST(BoundedQueueTest, BlockedProducerUnblocksOnPop) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.Push(1));
  std::thread producer([&] { EXPECT_TRUE(q.Push(2)); });
  SystemClock::Instance()->SleepMs(5);
  EXPECT_EQ(*q.Pop(), 1);
  producer.join();
  EXPECT_EQ(*q.Pop(), 2);
}

TEST(MetricsTest, CountersGaugesHistograms) {
  MetricsRegistry registry;
  registry.GetCounter("c")->Increment(3);
  registry.GetCounter("c")->Increment();
  EXPECT_EQ(registry.GetCounter("c")->value(), 4);
  registry.GetGauge("g")->Set(7);
  EXPECT_EQ(registry.GetGauge("g")->value(), 7);
  Histogram* h = registry.GetHistogram("h");
  for (int i = 1; i <= 100; ++i) h->Record(i);
  EXPECT_EQ(h->Percentile(50), 50);
  EXPECT_EQ(h->Percentile(99), 99);
  EXPECT_EQ(h->Max(), 100);
  EXPECT_DOUBLE_EQ(h->Mean(), 50.5);
  auto snapshot = registry.SnapshotValues();
  EXPECT_EQ(snapshot["c"], 4);
  EXPECT_EQ(snapshot["g"], 7);
}

TEST(MetricsTest, HistogramSortCacheInvalidatedByRecord) {
  // Regression for the lazily-sorted percentile cache: queries between
  // records reuse one sort, and a new Record must invalidate the cache so
  // later queries see the fresh sample (interleaved query/record pattern).
  Histogram h;
  h.Record(10);
  h.Record(30);
  EXPECT_EQ(h.Percentile(0), 10);
  EXPECT_EQ(h.Percentile(100), 30);
  h.Record(20);  // lands in the middle after the cache was built
  EXPECT_EQ(h.Percentile(50), 20);
  EXPECT_EQ(h.Max(), 30);
  EXPECT_DOUBLE_EQ(h.Mean(), 20.0);
  h.Record(5);  // new minimum after another query round
  EXPECT_EQ(h.Percentile(0), 5);
  EXPECT_EQ(h.Max(), 30);
  h.Reset();
  EXPECT_EQ(h.Percentile(50), 0);
  EXPECT_EQ(h.Max(), 0);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.Count(), 0u);
  h.Record(-7);  // negative samples: max must track the first sample
  EXPECT_EQ(h.Max(), -7);
  EXPECT_EQ(h.Percentile(100), -7);
}

TEST(MetricsTest, HistogramConcurrentRecordAndQuery) {
  Histogram h;
  std::atomic<bool> stop{false};
  std::thread recorder([&] {
    int64_t i = 0;
    while (!stop.load()) h.Record(i++ % 1000);
  });
  std::thread querier([&] {
    while (!stop.load()) {
      int64_t p50 = h.Percentile(50);
      EXPECT_GE(p50, 0);
      EXPECT_LE(h.Percentile(99), 999);
      EXPECT_GE(h.Max(), p50);
    }
  });
  SystemClock::Instance()->SleepMs(100);
  stop.store(true);
  recorder.join();
  querier.join();
  EXPECT_GT(h.Count(), 0u);
}

TEST(HashTest, StablePartitioning) {
  EXPECT_EQ(Fnv1a64("abc"), Fnv1a64("abc"));
  EXPECT_NE(Fnv1a64("abc"), Fnv1a64("abd"));
  for (uint32_t n : {1u, 4u, 16u}) {
    EXPECT_LT(KeyToPartition("some-key", n), n);
  }
}

TEST(RngTest, DeterministicWithSeed) {
  Rng a(99), b(99);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(a.Uniform(0, 1000), b.Uniform(0, 1000));
}

TEST(RngTest, ZipfSkewsTowardLowIndexes) {
  Rng rng(7);
  int64_t low = 0;
  const int kTrials = 10'000;
  for (int i = 0; i < kTrials; ++i) {
    if (rng.Zipf(100, 1.2) < 10) ++low;
  }
  // With skew, the first 10% of the ids should get far more than 10% of hits.
  EXPECT_GT(low, kTrials / 4);
}

TEST(SimulatedClockTest, AdvancesManually) {
  SimulatedClock clock(1000);
  EXPECT_EQ(clock.NowMs(), 1000);
  clock.AdvanceMs(500);
  EXPECT_EQ(clock.NowMs(), 1500);
  clock.SleepMs(100);  // advances, doesn't block
  EXPECT_EQ(clock.NowMs(), 1600);
}

}  // namespace
}  // namespace uberrt
