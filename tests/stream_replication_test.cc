#include <gtest/gtest.h>

#include "stream/broker.h"
#include "stream/chaperone.h"
#include "stream/ureplicator.h"

namespace uberrt::stream {
namespace {

Message Msg(const std::string& value, TimestampMs ts = 1) {
  Message m;
  m.value = value;
  m.timestamp = ts;
  m.headers[kHeaderUid] = value;
  return m;
}

class UReplicatorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    source_ = std::make_unique<Broker>("src");
    destination_ = std::make_unique<Broker>("dst");
    TopicConfig config;
    config.num_partitions = 8;
    ASSERT_TRUE(source_->CreateTopic("t", config).ok());
  }
  std::unique_ptr<Broker> source_;
  std::unique_ptr<Broker> destination_;
  OffsetMappingStore mappings_;
};

TEST_F(UReplicatorTest, ReplicatesAllMessagesInPartitionOrder) {
  for (int i = 0; i < 100; ++i) {
    Message m = Msg("v" + std::to_string(i));
    m.partition = i % 8;
    source_->Produce("t", std::move(m)).ok();
  }
  UReplicator replicator(source_.get(), destination_.get(), "src>dst", &mappings_);
  ASSERT_TRUE(replicator.AddTopic("t").ok());
  Result<int64_t> copied = replicator.RunUntilCaughtUp();
  ASSERT_TRUE(copied.ok());
  EXPECT_EQ(copied.value(), 100);
  EXPECT_EQ(replicator.TotalLag().value(), 0);
  // Destination created with same partition count; per-partition order kept.
  EXPECT_EQ(destination_->NumPartitions("t").value(), 8);
  Result<std::vector<Message>> p0 = destination_->Fetch("t", 0, 0, 100);
  ASSERT_TRUE(p0.ok());
  for (size_t i = 1; i < p0.value().size(); ++i) {
    // Values v0, v8, v16... arrive in source order.
    EXPECT_LT(std::stoi(p0.value()[i - 1].value.substr(1)),
              std::stoi(p0.value()[i].value.substr(1)));
  }
}

TEST_F(UReplicatorTest, MinimalRebalanceMovesOnlyDeadWorkersPartitions) {
  UReplicatorOptions options;
  options.num_workers = 4;
  options.num_standby_workers = 0;
  UReplicator replicator(source_.get(), destination_.get(), "r", &mappings_, options);
  ASSERT_TRUE(replicator.AddTopic("t").ok());
  // 8 partitions over 4 workers: 2 each.
  Result<int64_t> moved = replicator.RemoveWorker(0);
  ASSERT_TRUE(moved.ok());
  EXPECT_EQ(moved.value(), 2);  // only worker 0's partitions moved
}

TEST_F(UReplicatorTest, FullRehashMovesMostPartitions) {
  UReplicatorOptions options;
  options.num_workers = 4;
  options.num_standby_workers = 0;
  options.rebalance_mode = RebalanceMode::kFullRehash;
  UReplicator replicator(source_.get(), destination_.get(), "r", &mappings_, options);
  ASSERT_TRUE(replicator.AddTopic("t").ok());
  replicator.RemoveWorker(0).ok();  // initial hash layout
  Result<int64_t> moved = replicator.RemoveWorker(1);
  ASSERT_TRUE(moved.ok());
  // Rehash over a changed worker list moves far more than the dead
  // worker's fair share (2).
  EXPECT_GT(moved.value(), 2);
}

TEST_F(UReplicatorTest, BurstTrafficShiftsToStandbyWorkers) {
  UReplicatorOptions options;
  options.num_workers = 2;
  options.num_standby_workers = 1;
  options.burst_lag_threshold = 50;
  UReplicator replicator(source_.get(), destination_.get(), "r", &mappings_, options);
  ASSERT_TRUE(replicator.AddTopic("t").ok());
  // Burst into 6 of 8 partitions: the two active workers are overloaded
  // (3 bursting each vs a fair share of 2 over the 3-worker pool), so the
  // fair-share redistribution hands some to the standby.
  for (int i = 0; i < 1'200; ++i) {
    Message m = Msg("burst");
    m.partition = i % 6;
    source_->Produce("t", std::move(m)).ok();
  }
  std::set<int32_t> owners_before;
  for (int32_t p = 0; p < 6; ++p) owners_before.insert(replicator.OwnerOf({"t", p}));
  EXPECT_EQ(owners_before.size(), 2u);  // only actives
  ASSERT_TRUE(replicator.RunOnce().ok());
  std::set<int32_t> owners_after;
  for (int32_t p = 0; p < 6; ++p) owners_after.insert(replicator.OwnerOf({"t", p}));
  EXPECT_EQ(owners_after.size(), 3u);  // standby now carries burst load
  EXPECT_GT(replicator.partitions_moved_total(), 0);
  ASSERT_TRUE(replicator.RunUntilCaughtUp().ok());
  EXPECT_EQ(replicator.TotalLag().value(), 0);
}

TEST_F(UReplicatorTest, OffsetMappingCheckpointsRecorded) {
  UReplicatorOptions options;
  options.checkpoint_every = 10;
  UReplicator replicator(source_.get(), destination_.get(), "r", &mappings_, options);
  ASSERT_TRUE(replicator.AddTopic("t").ok());
  for (int i = 0; i < 100; ++i) {
    Message m = Msg("v");
    m.partition = 0;
    source_->Produce("t", std::move(m)).ok();
  }
  ASSERT_TRUE(replicator.RunUntilCaughtUp().ok());
  TopicPartition tp{"t", 0};
  std::vector<OffsetMapping> all = mappings_.GetAll("r", tp);
  EXPECT_GE(all.size(), 9u);
  // Lookup semantics: latest checkpoint at or before a source offset.
  Result<OffsetMapping> at = mappings_.LatestAtOrBefore("r", tp, 35);
  ASSERT_TRUE(at.ok());
  EXPECT_LE(at.value().source_offset, 35);
  // Inverse lookup by destination.
  Result<OffsetMapping> inverse = mappings_.LatestByDestinationAtOrBefore("r", tp, 35);
  ASSERT_TRUE(inverse.ok());
  EXPECT_LE(inverse.value().destination_offset, 35);
  // The first checkpoint is an anchor at the route's first copied message,
  // so lookups below the first cadence checkpoint resolve to it instead of
  // NotFound — offset sync relies on this to prove a source with no
  // qualifying checkpoint was never consumed at all.
  Result<OffsetMapping> anchor = mappings_.LatestAtOrBefore("r", tp, 3);
  ASSERT_TRUE(anchor.ok());
  EXPECT_EQ(anchor.value().source_offset, 0);
  EXPECT_EQ(anchor.value().destination_offset, 0);
  ASSERT_TRUE(mappings_.Earliest("r", tp).ok());
  EXPECT_EQ(mappings_.Earliest("r", tp).value().destination_offset, 0);
  // A route that never copied anything has no anchor.
  EXPECT_TRUE(mappings_.Earliest("r", TopicPartition{"t", 5}).status().IsNotFound());
}

TEST(ChaperoneTest, DetectsLossBetweenStages) {
  Chaperone audit(1000);
  for (int i = 0; i < 10; ++i) {
    audit.RecordRaw("producer", "t", 100 + i, "uid" + std::to_string(i));
  }
  for (int i = 0; i < 7; ++i) {  // 3 lost downstream
    audit.RecordRaw("aggregate", "t", 100 + i, "uid" + std::to_string(i));
  }
  std::vector<AuditAlert> alerts = audit.Compare("producer", "aggregate", "t");
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].kind, AuditAlert::Kind::kLoss);
  EXPECT_EQ(alerts[0].upstream_count, 10);
  EXPECT_EQ(alerts[0].downstream_count, 7);
}

TEST(ChaperoneTest, DetectsDuplication) {
  Chaperone audit(1000);
  for (int i = 0; i < 5; ++i) {
    audit.RecordRaw("producer", "t", 50, "uid" + std::to_string(i));
    audit.RecordRaw("replica", "t", 50, "uid" + std::to_string(i));
  }
  audit.RecordRaw("replica", "t", 50, "uid0");  // duplicate
  std::vector<AuditAlert> alerts = audit.Compare("producer", "replica", "t");
  ASSERT_EQ(alerts.size(), 1u);
  EXPECT_EQ(alerts[0].kind, AuditAlert::Kind::kDuplication);
}

TEST(ChaperoneTest, CleanPipelineRaisesNoAlerts) {
  Chaperone audit(1000);
  for (int i = 0; i < 50; ++i) {
    std::string uid = "u" + std::to_string(i);
    TimestampMs ts = i * 100;
    audit.RecordRaw("producer", "t", ts, uid);
    audit.RecordRaw("regional", "t", ts, uid);
    audit.RecordRaw("aggregate", "t", ts, uid);
  }
  EXPECT_TRUE(audit.Compare("producer", "regional", "t").empty());
  EXPECT_TRUE(audit.Compare("regional", "aggregate", "t").empty());
  EXPECT_EQ(audit.TotalCount("producer", "t"), 50);
  // Windowing: events spread across 5 windows of 1000ms.
  EXPECT_EQ(audit.GetStats("producer", "t").size(), 5u);
}

TEST(ChaperoneTest, EndToEndThroughReplication) {
  // Wire a real replication pipeline and verify the audit catches injected
  // loss (bench C13's core path).
  Broker source("src"), destination("dst");
  TopicConfig config;
  config.num_partitions = 2;
  source.CreateTopic("t", config).ok();
  Chaperone audit(1000);
  for (int i = 0; i < 40; ++i) {
    Message m = Msg("uid" + std::to_string(i), 100 + i * 10);
    audit.Record("producer", "t", m);
    source.Produce("t", std::move(m)).ok();
  }
  OffsetMappingStore mappings;
  UReplicator replicator(&source, &destination, "r", &mappings);
  replicator.AddTopic("t").ok();
  replicator.RunUntilCaughtUp().ok();
  // Downstream stage records what actually arrived, minus 2 "lost" ones.
  int skipped = 0;
  for (int32_t p = 0; p < 2; ++p) {
    Result<std::vector<Message>> arrived = destination.Fetch("t", p, 0, 100);
    ASSERT_TRUE(arrived.ok());
    for (const Message& m : arrived.value()) {
      if (skipped < 2 && m.headers.at(kHeaderUid) == "uid" + std::to_string(p)) {
        ++skipped;  // simulate loss of two specific messages
        continue;
      }
      audit.Record("aggregate", "t", m);
    }
  }
  std::vector<AuditAlert> alerts = audit.Compare("producer", "aggregate", "t");
  ASSERT_FALSE(alerts.empty());
  int64_t lost = 0;
  for (const AuditAlert& alert : alerts) {
    ASSERT_EQ(alert.kind, AuditAlert::Kind::kLoss);
    lost += alert.upstream_count - alert.downstream_count;
  }
  EXPECT_EQ(lost, 2);
}

}  // namespace
}  // namespace uberrt::stream
