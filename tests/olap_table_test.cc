#include "olap/table.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace uberrt::olap {
namespace {

TableConfig FareTable(bool upsert) {
  TableConfig config;
  config.name = "fares";
  config.schema = RowSchema({{"ride", ValueType::kString},
                             {"fare", ValueType::kDouble},
                             {"ts", ValueType::kInt}});
  config.time_column = "ts";
  config.segment_rows_threshold = 10;
  config.upsert_enabled = upsert;
  if (upsert) config.primary_key_column = "ride";
  return config;
}

Row Fare(const std::string& ride, double fare, int64_t ts = 0) {
  return {Value(ride), Value(fare), Value(ts)};
}

int64_t CountAll(const RealtimePartition& partition) {
  OlapQuery query;
  query.aggregations = {OlapAggregation::Count("n")};
  OlapQueryStats stats;
  Result<OlapResult> result = partition.Execute(query, &stats);
  EXPECT_TRUE(result.ok());
  // Partitions return one partial accumulator per segment/buffer; sum them.
  int64_t total = 0;
  for (const Row& partial : result.value().rows) total += partial[0].AsInt();
  return total;
}

TEST(RealtimePartitionTest, BufferQueriesBeforeSeal) {
  RealtimePartition partition(FareTable(false), 0);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(partition.Ingest(Fare("r" + std::to_string(i), 10.0 + i)).ok());
  }
  EXPECT_EQ(partition.NumSealedSegments(), 0);
  EXPECT_EQ(CountAll(partition), 5);

  OlapQuery select;
  select.select_columns = {"ride", "fare"};
  select.filters = {FilterPredicate::Range("fare", FilterPredicate::Op::kGe,
                                           Value(12.0))};
  OlapQueryStats stats;
  Result<OlapResult> result = partition.Execute(select, &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().rows.size(), 3u);
}

TEST(RealtimePartitionTest, SealAtThresholdAndQueryAcrossBoth) {
  RealtimePartition partition(FareTable(false), 0);
  for (int i = 0; i < 25; ++i) {
    ASSERT_TRUE(partition.Ingest(Fare("r" + std::to_string(i), 1.0)).ok());
    partition.SealIfNeeded().ok();
  }
  EXPECT_EQ(partition.NumSealedSegments(), 2);  // 10 + 10, 5 buffered
  EXPECT_EQ(partition.BufferedRows(), 5);
  EXPECT_EQ(CountAll(partition), 25);
  EXPECT_EQ(partition.NumRows(), 25);
}

TEST(RealtimePartitionTest, ForceSealFlushesSmallBuffer) {
  RealtimePartition partition(FareTable(false), 0);
  partition.Ingest(Fare("r", 1.0)).ok();
  Result<std::shared_ptr<Segment>> none = partition.SealIfNeeded(false);
  ASSERT_TRUE(none.ok());
  EXPECT_EQ(none.value(), nullptr);
  Result<std::shared_ptr<Segment>> forced = partition.SealIfNeeded(true);
  ASSERT_TRUE(forced.ok());
  ASSERT_NE(forced.value(), nullptr);
  EXPECT_EQ(forced.value()->NumRows(), 1);
  EXPECT_EQ(partition.BufferedRows(), 0);
}

TEST(RealtimePartitionTest, UpsertAcrossSealBoundaries) {
  RealtimePartition partition(FareTable(true), 0);
  // 10 rides fill a segment; then correct 3 of them, twice.
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(partition.Ingest(Fare("r" + std::to_string(i), 10.0)).ok());
    partition.SealIfNeeded().ok();
  }
  for (int round = 0; round < 2; ++round) {
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(
          partition.Ingest(Fare("r" + std::to_string(i), 100.0 + round)).ok());
    }
  }
  EXPECT_EQ(CountAll(partition), 10);  // one live version per ride
  OlapQuery lookup;
  lookup.select_columns = {"fare"};
  lookup.filters = {FilterPredicate::Eq("ride", Value("r1"))};
  OlapQueryStats stats;
  Result<OlapResult> result = partition.Execute(lookup, &stats);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().rows.size(), 1u);
  EXPECT_DOUBLE_EQ(result.value().rows[0][0].AsDouble(), 101.0);  // latest
}

TEST(RealtimePartitionTest, RowWidthValidated) {
  RealtimePartition partition(FareTable(false), 0);
  EXPECT_FALSE(partition.Ingest({Value("r")}).ok());
}

/// Property sweep: EvalPredicate agrees with a straightforward spec across
/// all ops and value-type pairings.
struct PredicateCase {
  FilterPredicate::Op op;
  double lhs;
  double rhs;
  bool expected;
};

class EvalPredicateTest : public ::testing::TestWithParam<PredicateCase> {};

TEST_P(EvalPredicateTest, NumericSemantics) {
  const PredicateCase& c = GetParam();
  FilterPredicate pred{"x", c.op, Value(c.rhs)};
  EXPECT_EQ(EvalPredicate(pred, Value(c.lhs)), c.expected);
  // Int/double cross-typing preserves semantics when values are integral.
  if (c.lhs == static_cast<int64_t>(c.lhs)) {
    EXPECT_EQ(EvalPredicate(pred, Value(static_cast<int64_t>(c.lhs))), c.expected);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, EvalPredicateTest,
    ::testing::Values(PredicateCase{FilterPredicate::Op::kEq, 5, 5, true},
                      PredicateCase{FilterPredicate::Op::kEq, 5, 6, false},
                      PredicateCase{FilterPredicate::Op::kNe, 5, 6, true},
                      PredicateCase{FilterPredicate::Op::kNe, 5, 5, false},
                      PredicateCase{FilterPredicate::Op::kLt, 4, 5, true},
                      PredicateCase{FilterPredicate::Op::kLt, 5, 5, false},
                      PredicateCase{FilterPredicate::Op::kLe, 5, 5, true},
                      PredicateCase{FilterPredicate::Op::kLe, 6, 5, false},
                      PredicateCase{FilterPredicate::Op::kGt, 6, 5, true},
                      PredicateCase{FilterPredicate::Op::kGt, 5, 5, false},
                      PredicateCase{FilterPredicate::Op::kGe, 5, 5, true},
                      PredicateCase{FilterPredicate::Op::kGe, 4, 5, false}));

TEST(EvalPredicateTest, StringSemantics) {
  EXPECT_TRUE(EvalPredicate({"x", FilterPredicate::Op::kEq, Value("abc")},
                            Value("abc")));
  EXPECT_TRUE(EvalPredicate({"x", FilterPredicate::Op::kLt, Value("b")},
                            Value("a")));
  EXPECT_FALSE(EvalPredicate({"x", FilterPredicate::Op::kGe, Value("b")},
                             Value("a")));
}

/// Property: partition query results equal brute force over the ingested
/// rows regardless of seal boundaries.
class PartitionPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PartitionPropertyTest, AggregatesMatchBruteForceAcrossSeals) {
  Rng rng(GetParam());
  RealtimePartition partition(FareTable(false), 0);
  double expected_sum = 0;
  int64_t expected_n = 0;
  for (int i = 0; i < 200; ++i) {
    double fare = rng.Uniform(5, 80);
    int64_t ts = rng.Uniform(0, 1'000);
    partition.Ingest(Fare("r" + std::to_string(i), fare, ts)).ok();
    if (rng.Chance(0.1)) partition.SealIfNeeded(true).ok();
    if (fare >= 40) {
      expected_sum += fare;
      ++expected_n;
    }
  }
  OlapQuery query;
  query.aggregations = {OlapAggregation::Count("n"), OlapAggregation::Sum("fare", "s")};
  query.filters = {FilterPredicate::Range("fare", FilterPredicate::Op::kGe,
                                          Value(40.0))};
  OlapQueryStats stats;
  Result<OlapResult> result = partition.Execute(query, &stats);
  ASSERT_TRUE(result.ok());
  // Merge the per-segment partials: layout is one 4-field accumulator
  // (count,sum,min,max) per aggregation.
  int64_t n = 0;
  double sum = 0;
  for (const Row& partial : result.value().rows) {
    n += partial[0].AsInt();                          // count acc of COUNT
    sum += partial[kAccumulatorFields + 1].AsDouble();  // sum acc of SUM
  }
  EXPECT_EQ(n, expected_n);
  EXPECT_NEAR(sum, expected_sum, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PartitionPropertyTest,
                         ::testing::Values(3u, 17u, 99u));

}  // namespace
}  // namespace uberrt::olap
