#include <gtest/gtest.h>

#include <mutex>

#include "compute/flink_sql.h"
#include "compute/job_runner.h"
#include "stream/broker.h"

namespace uberrt::compute {
namespace {

using stream::Broker;
using stream::Message;
using stream::TopicConfig;

RowSchema OrderSchema() {
  return RowSchema({{"restaurant", ValueType::kString},
                    {"total", ValueType::kDouble},
                    {"status", ValueType::kString},
                    {"ts", ValueType::kInt}});
}

class FlinkSqlTest : public ::testing::Test {
 protected:
  void SetUp() override {
    broker_ = std::make_unique<Broker>("c1");
    store_ = std::make_unique<storage::InMemoryObjectStore>();
    TopicConfig config;
    config.num_partitions = 2;
    ASSERT_TRUE(broker_->CreateTopic("orders", config).ok());
  }

  void ProduceOrder(const std::string& restaurant, double total,
                    const std::string& status, int64_t ts) {
    Message m;
    m.key = restaurant;
    m.value = EncodeRow({Value(restaurant), Value(total), Value(status), Value(ts)});
    m.timestamp = ts;
    ASSERT_TRUE(broker_->Produce("orders", std::move(m)).ok());
  }

  std::vector<Row> RunBounded(const JobGraph& graph) {
    std::mutex mu;
    std::vector<Row> results;
    JobGraph with_sink = graph;
    with_sink.SinkToCollector([&](const Row& row, TimestampMs) {
      std::lock_guard<std::mutex> lock(mu);
      results.push_back(row);
    });
    JobRunner runner(with_sink, broker_.get(), store_.get());
    EXPECT_TRUE(runner.Start().ok());
    runner.RequestFinish();
    EXPECT_TRUE(runner.AwaitTermination(10000).ok());
    return results;
  }

  std::unique_ptr<Broker> broker_;
  std::unique_ptr<storage::InMemoryObjectStore> store_;
};

TEST_F(FlinkSqlTest, ProjectionAndFilterCompile) {
  ProduceOrder("r1", 10.0, "delivered", 100);
  ProduceOrder("r2", 30.0, "abandoned", 200);
  ProduceOrder("r3", 50.0, "delivered", 300);
  Result<JobGraph> graph = CompileStreamingSql(
      "SELECT restaurant, total * 2 AS doubled FROM orders "
      "WHERE status = 'delivered' AND total > 20",
      OrderSchema());
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  std::vector<Row> rows = RunBounded(graph.value());
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0].AsString(), "r3");
  EXPECT_DOUBLE_EQ(rows[0][1].ToNumeric(), 100.0);
}

TEST_F(FlinkSqlTest, WindowedAggregationCompiles) {
  // Two windows of one minute; two restaurants.
  for (int w = 0; w < 2; ++w) {
    for (int i = 0; i < 5; ++i) {
      ProduceOrder("r1", 10.0, "delivered", w * 60000 + i * 100);
      ProduceOrder("r2", 20.0, "delivered", w * 60000 + i * 100);
    }
  }
  Result<JobGraph> graph = CompileStreamingSql(
      "SELECT restaurant, window_start, COUNT(*) AS n, SUM(total) AS sales "
      "FROM orders GROUP BY restaurant, TUMBLE(ts, INTERVAL '1' MINUTE)",
      OrderSchema());
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  std::vector<Row> rows = RunBounded(graph.value());
  ASSERT_EQ(rows.size(), 4u);  // 2 restaurants x 2 windows
  for (const Row& row : rows) {
    ASSERT_EQ(row.size(), 4u);  // select order: restaurant, window_start, n, sales
    EXPECT_EQ(row[2].AsInt(), 5);
    if (row[0].AsString() == "r1") {
      EXPECT_DOUBLE_EQ(row[3].AsDouble(), 50.0);
    }
  }
}

TEST_F(FlinkSqlTest, HavingBecomesPostAggregationFilter) {
  for (int i = 0; i < 6; ++i) ProduceOrder("big", 10.0, "delivered", 100 + i);
  ProduceOrder("small", 10.0, "delivered", 100);
  Result<JobGraph> graph = CompileStreamingSql(
      "SELECT restaurant, COUNT(*) AS n FROM orders "
      "GROUP BY restaurant, TUMBLE(ts, INTERVAL '1' MINUTE) HAVING n > 3",
      OrderSchema());
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  std::vector<Row> rows = RunBounded(graph.value());
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0].AsString(), "big");
}

TEST_F(FlinkSqlTest, SelectStarPassesThrough) {
  ProduceOrder("r1", 1.0, "delivered", 10);
  Result<JobGraph> graph = CompileStreamingSql("SELECT * FROM orders", OrderSchema());
  ASSERT_TRUE(graph.ok());
  std::vector<Row> rows = RunBounded(graph.value());
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].size(), 4u);
}

TEST_F(FlinkSqlTest, StreamingSemanticsEnforced) {
  // ORDER BY / LIMIT are batch constructs (Section 4.2.1's semantics gap).
  EXPECT_FALSE(CompileStreamingSql("SELECT restaurant FROM orders ORDER BY restaurant",
                                   OrderSchema())
                   .ok());
  EXPECT_FALSE(CompileStreamingSql("SELECT restaurant FROM orders LIMIT 5",
                                   OrderSchema())
                   .ok());
  // Aggregation without a window is unbounded state.
  EXPECT_FALSE(CompileStreamingSql("SELECT COUNT(*) FROM orders", OrderSchema()).ok());
  // GROUP BY column missing from schema.
  EXPECT_FALSE(CompileStreamingSql(
                   "SELECT nope, COUNT(*) FROM orders GROUP BY nope, "
                   "TUMBLE(ts, INTERVAL '1' MINUTE)",
                   OrderSchema())
                   .ok());
  // Joins are the API layer's job in this dialect.
  EXPECT_FALSE(CompileStreamingSql(
                   "SELECT a.x FROM t1 a JOIN t2 b ON a.x = b.x", OrderSchema())
                   .ok());
}

TEST_F(FlinkSqlTest, TopicOverrideRedirectsSource) {
  TopicConfig config;
  config.num_partitions = 1;
  ASSERT_TRUE(broker_->CreateTopic("orders_replay", config).ok());
  Message m;
  m.value = EncodeRow({Value("rX"), Value(5.0), Value("delivered"),
                       Value(int64_t{42})});
  m.timestamp = 42;
  ASSERT_TRUE(broker_->Produce("orders_replay", std::move(m)).ok());
  FlinkSqlOptions options;
  options.topic_override = "orders_replay";
  Result<JobGraph> graph =
      CompileStreamingSql("SELECT restaurant FROM orders", OrderSchema(), options);
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph.value().sources()[0].topic, "orders_replay");
  std::vector<Row> rows = RunBounded(graph.value());
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0].AsString(), "rX");
}

}  // namespace
}  // namespace uberrt::compute
