#include <gtest/gtest.h>

#include "stream/consumer.h"
#include "stream/federation.h"

namespace uberrt::stream {
namespace {

Message Msg(const std::string& key, const std::string& value) {
  Message m;
  m.key = key;
  m.value = value;
  m.timestamp = 1;
  return m;
}

class FederationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(
        federation_.AddCluster(std::make_unique<Broker>("c1"), /*capacity=*/2).ok());
    ASSERT_TRUE(
        federation_.AddCluster(std::make_unique<Broker>("c2"), /*capacity=*/2).ok());
  }
  KafkaFederation federation_;
};

TEST_F(FederationTest, TopicsSpreadAcrossLeastLoadedClusters) {
  TopicConfig config;
  config.num_partitions = 2;
  ASSERT_TRUE(federation_.CreateTopic("t1", config).ok());
  ASSERT_TRUE(federation_.CreateTopic("t2", config).ok());
  std::string host1 = federation_.HostingCluster("t1").value();
  std::string host2 = federation_.HostingCluster("t2").value();
  EXPECT_NE(host1, host2);  // least-loaded placement alternates
}

TEST_F(FederationTest, CapacityExhaustedUntilClusterAdded) {
  TopicConfig config;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(federation_.CreateTopic("t" + std::to_string(i), config).ok());
  }
  // All clusters full.
  Status full = federation_.CreateTopic("t4", config);
  EXPECT_EQ(full.code(), StatusCode::kResourceExhausted);
  // Horizontal scaling: add a cluster, creation succeeds again.
  ASSERT_TRUE(federation_.AddCluster(std::make_unique<Broker>("c3"), 2).ok());
  EXPECT_TRUE(federation_.CreateTopic("t4", config).ok());
  EXPECT_EQ(federation_.HostingCluster("t4").value(), "c3");
}

TEST_F(FederationTest, TransparentRouting) {
  TopicConfig config;
  config.num_partitions = 1;
  ASSERT_TRUE(federation_.CreateTopic("t", config).ok());
  Result<ProduceResult> produced = federation_.Produce("t", Msg("k", "v1"));
  ASSERT_TRUE(produced.ok());
  Result<std::vector<Message>> fetched = federation_.Fetch("t", 0, 0, 10);
  ASSERT_TRUE(fetched.ok());
  ASSERT_EQ(fetched.value().size(), 1u);
  EXPECT_EQ(fetched.value()[0].value, "v1");
}

TEST_F(FederationTest, ProduceFailsOverWhenHostClusterDies) {
  TopicConfig config;
  config.num_partitions = 1;
  ASSERT_TRUE(federation_.CreateTopic("t", config).ok());
  std::string host = federation_.HostingCluster("t").value();
  federation_.GetCluster(host).value()->SetAvailable(false);
  // Produce triggers automatic failover to a healthy cluster.
  Result<ProduceResult> produced = federation_.Produce("t", Msg("k", "v"));
  ASSERT_TRUE(produced.ok()) << produced.status().ToString();
  std::string new_host = federation_.HostingCluster("t").value();
  EXPECT_NE(new_host, host);
  EXPECT_EQ(federation_.Fetch("t", 0, 0, 10).value().size(), 1u);
}

TEST_F(FederationTest, LiveConsumerSurvivesTopicMigration) {
  TopicConfig config;
  config.num_partitions = 2;
  ASSERT_TRUE(federation_.CreateTopic("t", config).ok());
  for (int i = 0; i < 10; ++i) {
    federation_.Produce("t", Msg("k" + std::to_string(i), "v" + std::to_string(i))).ok();
  }
  Consumer consumer(&federation_, "g", "t", "m1");
  ASSERT_TRUE(consumer.Subscribe().ok());
  EXPECT_EQ(consumer.Poll(5).value().size(), 5u);
  ASSERT_TRUE(consumer.Commit().ok());

  // Migrate the topic to the other cluster while the consumer is live.
  std::string host = federation_.HostingCluster("t").value();
  std::string target = host == "c1" ? "c2" : "c1";
  ASSERT_TRUE(federation_.MigrateTopic("t", target).ok());
  EXPECT_EQ(federation_.HostingCluster("t").value(), target);

  // Consumer keeps polling without restart and misses nothing: offsets were
  // preserved by the migration copy.
  size_t got = 0;
  for (int i = 0; i < 10 && got < 5; ++i) {
    got += consumer.Poll(10).value().size();
  }
  EXPECT_EQ(got, 5u);

  // New data lands on the new cluster and still flows.
  federation_.Produce("t", Msg("kx", "fresh")).ok();
  EXPECT_EQ(consumer.Poll(10).value().size(), 1u);
}

TEST_F(FederationTest, GroupStateSurvivesMigration) {
  TopicConfig config;
  config.num_partitions = 1;
  ASSERT_TRUE(federation_.CreateTopic("t", config).ok());
  for (int i = 0; i < 6; ++i) federation_.Produce("t", Msg("", "v")).ok();
  ASSERT_TRUE(federation_.CommitOffset("g", "t", 0, 4).ok());
  std::string host = federation_.HostingCluster("t").value();
  ASSERT_TRUE(federation_.MigrateTopic("t", host == "c1" ? "c2" : "c1").ok());
  // Committed offsets live at the federation layer, not the physical
  // cluster, so they survive.
  EXPECT_EQ(federation_.CommittedOffset("g", "t", 0).value(), 4);
  EXPECT_EQ(federation_.ConsumerLag("g", "t").value(), 2);
}

}  // namespace
}  // namespace uberrt::stream
