#include <gtest/gtest.h>

#include <set>

#include "stream/broker.h"
#include "workload/generators.h"

namespace uberrt::workload {
namespace {

TEST(TripGeneratorTest, DeterministicWithSeed) {
  TripEventGenerator a({}, 7), b({}, 7);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(a.NextRow(), b.NextRow());
}

TEST(TripGeneratorTest, RowsMatchSchemaAndAdvanceTime) {
  TripEventGenerator gen({});
  RowSchema schema = TripEventGenerator::Schema();
  TimestampMs last = -1;
  for (int i = 0; i < 100; ++i) {
    Row row = gen.NextRow();
    ASSERT_EQ(row.size(), schema.NumFields());
    EXPECT_EQ(row[0].type(), ValueType::kInt);
    EXPECT_EQ(row[1].type(), ValueType::kString);
    EXPECT_GT(row[5].ToNumeric(), 0.0);  // fare positive
    EXPECT_GE(gen.last_event_time(), last);
    last = gen.last_event_time();
  }
}

TEST(TripGeneratorTest, HexSkewProducesHotGeofences) {
  TripEventGenerator::Options options;
  options.num_hexes = 50;
  TripEventGenerator gen(options);
  std::map<std::string, int> counts;
  for (int i = 0; i < 5000; ++i) counts[gen.NextRow()[1].AsString()]++;
  int hottest = 0;
  for (const auto& [hex, n] : counts) hottest = std::max(hottest, n);
  // Zipf: the hottest hex gets far more than the uniform share (100).
  EXPECT_GT(hottest, 300);
}

TEST(TripGeneratorTest, NoiseInjectsLateDuplicateAndCorrupt) {
  stream::Broker broker("c1");
  stream::TopicConfig config;
  config.num_partitions = 2;
  broker.CreateTopic("trips", config).ok();
  TripEventGenerator::Options options;
  options.noise.late_probability = 0.3;
  options.noise.duplicate_probability = 0.2;
  options.noise.corrupt_probability = 0.1;
  TripEventGenerator gen(options);
  Result<int64_t> produced = gen.Produce(&broker, "trips", 500);
  ASSERT_TRUE(produced.ok());
  EXPECT_GT(produced.value(), 500);  // duplicates add extra

  int64_t corrupt = 0, total = 0;
  std::set<std::string> uids;
  int64_t dupes = 0;
  for (int32_t p = 0; p < 2; ++p) {
    Result<std::vector<stream::Message>> batch = broker.Fetch("trips", p, 0, 10'000);
    ASSERT_TRUE(batch.ok());
    for (const stream::Message& m : batch.value()) {
      ++total;
      if (!DecodeRow(m.value).ok()) ++corrupt;
      if (!uids.insert(m.headers.at(stream::kHeaderUid)).second) ++dupes;
    }
  }
  EXPECT_EQ(total, produced.value());
  EXPECT_GT(corrupt, 10);
  EXPECT_GT(dupes, 30);
}

TEST(EatsOrderGeneratorTest, FieldsWithinConfiguredDomains) {
  EatsOrderGenerator gen({});
  EatsOrderGenerator::Options defaults;
  for (int i = 0; i < 200; ++i) {
    Row row = gen.NextRow();
    ASSERT_EQ(row.size(), EatsOrderGenerator::Schema().NumFields());
    EXPECT_LT(row[1].AsInt(), defaults.num_restaurants);
    bool known_city = false;
    for (const std::string& city : defaults.cities) {
      if (row[4].AsString() == city) known_city = true;
    }
    EXPECT_TRUE(known_city);
    EXPECT_GT(row[6].ToNumeric(), 0.0);
  }
}

TEST(PredictionGeneratorTest, PairsShareIdAndModelOutcomeLags) {
  PredictionGenerator gen({});
  PredictionGenerator::Options defaults;
  for (int i = 0; i < 100; ++i) {
    PredictionGenerator::Pair pair = gen.NextPair();
    EXPECT_EQ(pair.prediction[0].AsInt(), pair.outcome[0].AsInt());
    EXPECT_EQ(pair.prediction[1].AsString(), pair.outcome[1].AsString());
    EXPECT_EQ(pair.outcome[3].AsInt() - pair.prediction[3].AsInt(),
              defaults.outcome_delay_ms);
  }
}

TEST(PredictionGeneratorTest, BiasGrowsWithModelIndexMod5) {
  PredictionGenerator gen({});
  std::map<std::string, std::pair<double, int>> error_sums;
  for (int i = 0; i < 5000; ++i) {
    PredictionGenerator::Pair pair = gen.NextPair();
    double err = std::abs(pair.prediction[2].AsDouble() - pair.outcome[2].AsDouble());
    auto& [sum, n] = error_sums[pair.prediction[1].AsString()];
    sum += err;
    ++n;
  }
  double low_bias = error_sums["model0"].first / error_sums["model0"].second;
  double high_bias = error_sums["model4"].first / error_sums["model4"].second;
  EXPECT_GT(high_bias, low_bias * 3);
}

}  // namespace
}  // namespace uberrt::workload
