#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <mutex>
#include <string>
#include <vector>

#include "common/rng.h"
#include "compute/job_runner.h"
#include "stream/broker.h"

// Batch-at-a-time dataflow parity: the batched runtime (ElementBatch
// channels, vectorized ProcessBatch, operator chaining) must produce exactly
// the same output multiset and the same records_in/out as the per-record
// baseline (max_batch_records = 1, chaining off) for randomized job graphs,
// including across a mid-stream checkpoint/restore that flips chaining on.
//
// Test data keeps event-time disorder within the source's out-of-orderness
// slack, so no run ever drops a record as late and the output multiset is a
// pure function of the input — independent of watermark transport timing,
// which legitimately differs between batch sizes.

namespace uberrt::compute {
namespace {

using stream::AckMode;
using stream::Broker;
using stream::Message;
using stream::TopicConfig;

RowSchema EventSchema() {
  return RowSchema({{"key", ValueType::kString},
                    {"v", ValueType::kDouble},
                    {"ts", ValueType::kInt}});
}

Message EventMessage(const std::string& key, double v, int64_t ts) {
  Message m;
  m.key = key;
  m.value = EncodeRow({Value(key), Value(v), Value(ts)});
  m.timestamp = ts;
  return m;
}

struct RunResult {
  std::vector<std::string> rows;  ///< encoded output rows, sorted
  int64_t records_in = 0;
  int64_t records_out = 0;
};

struct RunConfig {
  size_t max_batch_records = 1;
  bool enable_chaining = false;
};

RunResult RunGraph(JobGraph graph, Broker* broker, const RunConfig& config,
                   const std::string& run_name) {
  std::mutex mu;
  std::vector<std::string> rows;
  graph = graph.WithName(run_name);
  graph.SinkToCollector([&](const Row& row, TimestampMs) {
    std::lock_guard<std::mutex> lock(mu);
    rows.push_back(EncodeRow(row));
  });
  storage::InMemoryObjectStore store;
  JobRunnerOptions options;
  options.max_batch_records = config.max_batch_records;
  options.enable_chaining = config.enable_chaining;
  JobRunner runner(std::move(graph), broker, &store, options);
  EXPECT_TRUE(runner.Start().ok());
  runner.RequestFinish();
  EXPECT_TRUE(runner.AwaitTermination(30000).ok());
  RunResult result;
  result.records_in = runner.RecordsIn();
  result.records_out = runner.RecordsOut();
  result.rows = std::move(rows);
  std::sort(result.rows.begin(), result.rows.end());
  return result;
}

void ExpectParity(const RunResult& baseline, const RunResult& candidate,
                  const std::string& label) {
  EXPECT_EQ(baseline.records_in, candidate.records_in) << label;
  EXPECT_EQ(baseline.records_out, candidate.records_out) << label;
  ASSERT_EQ(baseline.rows.size(), candidate.rows.size()) << label;
  EXPECT_EQ(baseline.rows, candidate.rows) << label;
}

/// Random chain of stateless transforms with varying parallelism (so some
/// adjacent pairs chain and some break on a parallelism change), optionally
/// capped by a keyed window aggregation.
JobGraph RandomGraph(Rng* rng, const std::string& topic, bool with_window) {
  JobGraph graph("proto");
  SourceSpec source;
  source.topic = topic;
  source.schema = EventSchema();
  source.time_field = "ts";
  source.out_of_orderness_ms = 200;
  source.watermark_interval_records = 1 + rng->Uniform(0, 16);
  graph.AddSource(source);
  int stages = 2 + rng->Uniform(0, 4);
  for (int s = 0; s < stages; ++s) {
    int32_t parallelism = 1 + rng->Uniform(0, 2);
    switch (rng->Uniform(0, 3)) {
      case 0:
        graph.Map(
            "m" + std::to_string(s),
            [s](const Row& r) {
              return Row{r[0], Value(r[1].ToNumeric() * 1.25 + s), r[2]};
            },
            EventSchema(), parallelism);
        break;
      case 1:
        graph.Filter(
            "f" + std::to_string(s),
            [s](const Row& r) {
              return std::fmod(r[1].ToNumeric() + s, 7.0) < 5.5;
            },
            parallelism);
        break;
      default:
        graph.FlatMap(
            "fm" + std::to_string(s),
            [](const Row& r) {
              std::vector<Row> out{r};
              if (r[1].ToNumeric() < 40.0) {
                out.push_back({r[0], Value(r[1].ToNumeric() + 100.0), r[2]});
              }
              return out;
            },
            EventSchema(), parallelism);
        break;
    }
  }
  if (with_window) {
    graph.WindowAggregate("agg", {"key"}, WindowSpec::Tumbling(1000),
                          {AggregateSpec::Count("n"), AggregateSpec::Sum("v", "s"),
                           AggregateSpec::Max("v", "hi")},
                          /*allowed_lateness_ms=*/0, /*parallelism=*/2);
  }
  return graph;
}

/// Mostly-ordered event times: monotone base plus jitter well inside the
/// 200ms out-of-orderness slack, so nothing is ever late in any mode.
void ProduceEvents(Broker* broker, const std::string& topic, Rng* rng, int count,
                   int64_t ts_base = 0) {
  for (int i = 0; i < count; ++i) {
    std::string key = "k" + std::to_string(rng->Uniform(0, 7));
    double v = static_cast<double>(rng->Uniform(0, 80));
    int64_t ts = ts_base + i * 10 + rng->Uniform(0, 5) * 10;
    ASSERT_TRUE(broker->Produce(topic, EventMessage(key, v, ts)).ok());
  }
}

class BatchParityTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BatchParityTest, RandomStatelessChains) {
  Rng rng(GetParam());
  Broker broker("cluster1");
  TopicConfig config;
  config.num_partitions = 3;
  ASSERT_TRUE(broker.CreateTopic("events", config).ok());
  ProduceEvents(&broker, "events", &rng, 400);
  JobGraph graph = RandomGraph(&rng, "events", /*with_window=*/false);

  RunResult per_record = RunGraph(graph, &broker, {1, false}, "per_record");
  RunResult batched = RunGraph(graph, &broker, {64, false}, "batched");
  RunResult chained = RunGraph(graph, &broker, {64, true}, "chained");
  EXPECT_EQ(per_record.records_in, 400);
  ExpectParity(per_record, batched, "batched vs per-record");
  ExpectParity(per_record, chained, "batched+chained vs per-record");
}

TEST_P(BatchParityTest, RandomGraphsWithWindowAggregation) {
  Rng rng(GetParam());
  Broker broker("cluster1");
  TopicConfig config;
  config.num_partitions = 3;
  ASSERT_TRUE(broker.CreateTopic("events", config).ok());
  ProduceEvents(&broker, "events", &rng, 400);
  JobGraph graph = RandomGraph(&rng, "events", /*with_window=*/true);

  RunResult per_record = RunGraph(graph, &broker, {1, false}, "per_record");
  RunResult batched = RunGraph(graph, &broker, {64, false}, "batched");
  RunResult chained = RunGraph(graph, &broker, {256, true}, "chained");
  ExpectParity(per_record, batched, "batched vs per-record");
  ExpectParity(per_record, chained, "batched+chained vs per-record");
}

TEST_P(BatchParityTest, WindowJoinAcrossBatchSizes) {
  Rng rng(GetParam());
  Broker broker("cluster1");
  TopicConfig config;
  config.num_partitions = 2;
  ASSERT_TRUE(broker.CreateTopic("left", config).ok());
  ASSERT_TRUE(broker.CreateTopic("right", config).ok());
  for (int i = 0; i < 150; ++i) {
    std::string key = "k" + std::to_string(rng.Uniform(0, 4));
    int64_t ts = i * 10 + rng.Uniform(0, 5) * 10;
    ASSERT_TRUE(
        broker.Produce("left", EventMessage(key, 1.0 + i, ts)).ok());
    ASSERT_TRUE(
        broker.Produce("right", EventMessage("k" + std::to_string(rng.Uniform(0, 4)),
                                             2.0 + i, ts + 3))
            .ok());
  }
  auto make_graph = [&] {
    JobGraph graph("proto");
    for (const char* topic : {"left", "right"}) {
      SourceSpec source;
      source.topic = topic;
      source.schema = topic == std::string("left")
                          ? RowSchema({{"key", ValueType::kString},
                                       {"l", ValueType::kDouble},
                                       {"ts", ValueType::kInt}})
                          : RowSchema({{"key", ValueType::kString},
                                       {"r", ValueType::kDouble},
                                       {"ts2", ValueType::kInt}});
      source.time_field = topic == std::string("left") ? "ts" : "ts2";
      source.out_of_orderness_ms = 200;
      source.watermark_interval_records = 8;
      graph.AddSource(source);
    }
    graph.WindowJoin("join", {"key"}, WindowSpec::Tumbling(1000),
                     /*allowed_lateness_ms=*/0, /*parallelism=*/2);
    return graph;
  };

  RunResult per_record = RunGraph(make_graph(), &broker, {1, false}, "per_record");
  RunResult batched = RunGraph(make_graph(), &broker, {64, false}, "batched");
  RunResult chained = RunGraph(make_graph(), &broker, {64, true}, "chained");
  ExpectParity(per_record, batched, "batched vs per-record");
  ExpectParity(per_record, chained, "batched+chained vs per-record");
}

INSTANTIATE_TEST_SUITE_P(Seeds, BatchParityTest, ::testing::Values(11u, 42u, 977u));

// A checkpoint taken by the unchained batched runtime restores into the
// chained runtime (and the combined pre/post-restore output matches an
// uninterrupted per-record run): chaining keeps per-graph-transform
// checkpoint keys, so flipping the flag across a restart is safe.
TEST(BatchParityCheckpointTest, RestoreAcrossChainingModes) {
  Rng rng(7);
  Broker broker("cluster1");
  TopicConfig config;
  config.num_partitions = 2;
  ASSERT_TRUE(broker.CreateTopic("events", config).ok());

  auto make_graph = [&] {
    JobGraph graph("proto");
    SourceSpec source;
    source.topic = "events";
    source.schema = EventSchema();
    source.time_field = "ts";
    source.out_of_orderness_ms = 200;
    source.watermark_interval_records = 4;
    graph.AddSource(source)
        .Filter("keep", [](const Row& r) { return r[1].ToNumeric() < 70.0; })
        .Map(
            "scale",
            [](const Row& r) {
              return Row{r[0], Value(r[1].ToNumeric() * 2.0), r[2]};
            },
            EventSchema())
        .WindowAggregate("agg", {"key"}, WindowSpec::Tumbling(1000),
                         {AggregateSpec::Count("n"), AggregateSpec::Sum("v", "s")},
                         /*allowed_lateness_ms=*/0, /*parallelism=*/2);
    return graph;
  };

  std::mutex mu;
  std::vector<std::string> rows;
  auto collect = [&](const Row& row, TimestampMs) {
    std::lock_guard<std::mutex> lock(mu);
    rows.push_back(EncodeRow(row));
  };
  storage::InMemoryObjectStore store;
  int64_t in_phase1 = 0;
  int64_t in_phase2 = 0;

  // Phase 1: half the stream through the unchained batched runtime, then
  // checkpoint and crash.
  ProduceEvents(&broker, "events", &rng, 200);
  {
    JobGraph graph = make_graph().WithName("chk");
    graph.SinkToCollector(collect);
    JobRunnerOptions options;
    options.max_batch_records = 64;
    options.enable_chaining = false;
    JobRunner runner(std::move(graph), &broker, &store, options);
    ASSERT_TRUE(runner.Start().ok());
    ASSERT_TRUE(runner.WaitUntilCaughtUp(15000).ok());
    Result<int64_t> seq = runner.TriggerCheckpoint();
    ASSERT_TRUE(seq.ok()) << seq.status().ToString();
    in_phase1 = runner.RecordsIn();
    runner.Cancel();
  }

  // Phase 2: rest of the stream; restore with chaining on.
  ProduceEvents(&broker, "events", &rng, 200, /*ts_base=*/2000);
  {
    JobGraph graph = make_graph().WithName("chk");
    graph.SinkToCollector(collect);
    JobRunnerOptions options;
    options.max_batch_records = 64;
    options.enable_chaining = true;
    JobRunner runner(std::move(graph), &broker, &store, options);
    ASSERT_TRUE(runner.RestoreFromCheckpoint().ok());
    ASSERT_TRUE(runner.Start().ok());
    runner.RequestFinish();
    ASSERT_TRUE(runner.AwaitTermination(30000).ok());
    in_phase2 = runner.RecordsIn();
  }
  EXPECT_EQ(in_phase1 + in_phase2, 400);  // no record replayed or skipped

  // Reference: one uninterrupted per-record run over the full stream.
  RunResult reference = RunGraph(make_graph(), &broker, {1, false}, "reference");
  EXPECT_EQ(reference.records_in, 400);
  std::sort(rows.begin(), rows.end());
  EXPECT_EQ(rows, reference.rows);
}

}  // namespace
}  // namespace uberrt::compute
