#include <gtest/gtest.h>

#include "common/rng.h"
#include "olap/segment.h"

namespace uberrt::olap {
namespace {

RowSchema OrdersSchema() {
  return RowSchema({{"restaurant", ValueType::kInt},
                    {"item", ValueType::kString},
                    {"total", ValueType::kDouble},
                    {"ts", ValueType::kInt}});
}

std::vector<Row> MakeOrders(int n, int restaurants = 10) {
  std::vector<Row> rows;
  const char* items[] = {"pizza", "burger", "sushi"};
  for (int i = 0; i < n; ++i) {
    rows.push_back({Value(static_cast<int64_t>(i % restaurants)),
                    Value(std::string(items[i % 3])),
                    Value(10.0 + i % 7),
                    Value(static_cast<int64_t>(1000 + i))});
  }
  return rows;
}

std::shared_ptr<Segment> BuildOrDie(std::vector<Row> rows, SegmentIndexConfig config) {
  Result<std::shared_ptr<Segment>> segment =
      Segment::Build("s0", OrdersSchema(), std::move(rows), config);
  EXPECT_TRUE(segment.ok()) << segment.status().ToString();
  return segment.value();
}

// --- BitPackedVector property sweep ------------------------------------------

class BitPackTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(BitPackTest, RoundTripsAtEveryWidth) {
  uint32_t max_value = GetParam();
  Rng rng(max_value);
  std::vector<uint32_t> values;
  for (int i = 0; i < 1000; ++i) {
    values.push_back(static_cast<uint32_t>(rng.Uniform(0, max_value)));
  }
  BitPackedVector packed(values, max_value);
  ASSERT_EQ(packed.size(), values.size());
  for (size_t i = 0; i < values.size(); ++i) EXPECT_EQ(packed.Get(i), values[i]);
  // Packing should beat 32-bit storage for small cardinalities.
  if (max_value < 255) {
    EXPECT_LT(packed.MemoryBytes(), static_cast<int64_t>(values.size() * 4));
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, BitPackTest,
                         ::testing::Values(1u, 2u, 7u, 63u, 255u, 4095u, 1048575u));

TEST_P(BitPackTest, UnpackMatchesGetAtEveryOffset) {
  uint32_t max_value = GetParam();
  Rng rng(max_value + 1);
  std::vector<uint32_t> values;
  for (int i = 0; i < 1000; ++i) {
    values.push_back(static_cast<uint32_t>(rng.Uniform(0, max_value)));
  }
  BitPackedVector packed(values, max_value);
  // Batch decode at misaligned offsets and counts, including word-crossing
  // cell boundaries.
  std::vector<uint32_t> out(values.size());
  for (size_t start : {size_t{0}, size_t{1}, size_t{63}, size_t{64}, size_t{997}}) {
    size_t count = std::min<size_t>(values.size() - start, 129);
    packed.Unpack(start, count, out.data());
    for (size_t i = 0; i < count; ++i) {
      ASSERT_EQ(out[i], values[start + i]) << "start=" << start << " i=" << i;
    }
  }
}

TEST(BitPackedVectorTest, FromWordsAdoptsSerializedWords) {
  std::vector<uint32_t> values;
  for (uint32_t i = 0; i < 500; ++i) values.push_back(i % 100);
  BitPackedVector packed(values, 99);
  Result<BitPackedVector> adopted = BitPackedVector::FromWords(
      packed.bits_per_value(), packed.size(), packed.words());
  ASSERT_TRUE(adopted.ok());
  for (size_t i = 0; i < values.size(); ++i) {
    ASSERT_EQ(adopted.value().Get(i), values[i]);
  }
  // Geometry mismatches are corruption, not UB.
  EXPECT_FALSE(BitPackedVector::FromWords(0, 10, {}).ok());
  EXPECT_FALSE(BitPackedVector::FromWords(33, 10, {}).ok());
  std::vector<uint64_t> truncated = packed.words();
  truncated.pop_back();
  EXPECT_FALSE(BitPackedVector::FromWords(packed.bits_per_value(), packed.size(),
                                          std::move(truncated))
                   .ok());
}

// --- Filters across all ops, with and without indexes -----------------------

struct FilterCase {
  FilterPredicate::Op op;
  int64_t value;
  int expected;
};

class SegmentFilterTest
    : public ::testing::TestWithParam<std::tuple<bool, bool, FilterCase>> {};

TEST_P(SegmentFilterTest, MatchesBruteForceSemantics) {
  auto [use_inverted, use_sorted, fc] = GetParam();
  SegmentIndexConfig config;
  if (use_inverted) config.inverted_columns = {"restaurant"};
  if (use_sorted) config.sorted_column = "restaurant";
  auto segment = BuildOrDie(MakeOrders(100), config);

  OlapQuery query;
  query.aggregations = {OlapAggregation::Count("n")};
  query.filters = {{"restaurant", fc.op, Value(fc.value)}};
  OlapQueryStats stats;
  Result<OlapResult> result = segment->Execute(query, nullptr, &stats);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Partial row: one group (none), accumulator [count,sum,min,max].
  int64_t count = result.value().rows.empty() ? 0 : result.value().rows[0][0].AsInt();
  EXPECT_EQ(count, fc.expected);
}

INSTANTIATE_TEST_SUITE_P(
    AllOpsAllIndexes, SegmentFilterTest,
    ::testing::Combine(
        ::testing::Bool(), ::testing::Bool(),
        ::testing::Values(FilterCase{FilterPredicate::Op::kEq, 3, 10},
                          FilterCase{FilterPredicate::Op::kNe, 3, 90},
                          FilterCase{FilterPredicate::Op::kLt, 3, 30},
                          FilterCase{FilterPredicate::Op::kLe, 3, 40},
                          FilterCase{FilterPredicate::Op::kGt, 7, 20},
                          FilterCase{FilterPredicate::Op::kGe, 7, 30},
                          FilterCase{FilterPredicate::Op::kEq, 99, 0})));

TEST(SegmentTest, CombinedFiltersIntersect) {
  auto segment = BuildOrDie(MakeOrders(90), {});
  OlapQuery query;
  query.aggregations = {OlapAggregation::Count("n")};
  query.filters = {FilterPredicate::Eq("restaurant", Value(int64_t{0})),
                   FilterPredicate::Eq("item", Value("pizza"))};
  OlapQueryStats stats;
  Result<OlapResult> result = segment->Execute(query, nullptr, &stats);
  ASSERT_TRUE(result.ok());
  // restaurant 0 -> rows 0,10,..,80 (9 rows); item pizza -> i%3==0:
  // intersection = i in {0,30,60} -> 3 rows.
  EXPECT_EQ(result.value().rows[0][0].AsInt(), 3);
}

TEST(SegmentTest, GroupByProducesPartialAccumulators) {
  auto segment = BuildOrDie(MakeOrders(30, 3), {});
  OlapQuery query;
  query.group_by = {"item"};
  query.aggregations = {OlapAggregation::Count("n"),
                        OlapAggregation::Sum("total", "sales")};
  OlapQueryStats stats;
  Result<OlapResult> result = segment->Execute(query, nullptr, &stats);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().rows.size(), 3u);  // 3 items
  for (const Row& row : result.value().rows) {
    // [item, count-acc(4), sum-acc(4)]
    ASSERT_EQ(row.size(), 1 + 2 * kAccumulatorFields);
    EXPECT_EQ(row[1].AsInt(), 10);  // count per item
  }
}

TEST(SegmentTest, SortedColumnServesRangeWithoutFullScan) {
  SegmentIndexConfig config;
  config.sorted_column = "restaurant";
  auto segment = BuildOrDie(MakeOrders(1000, 100), config);
  OlapQuery query;
  query.aggregations = {OlapAggregation::Count("n")};
  query.filters = {FilterPredicate::Range("restaurant", FilterPredicate::Op::kLt,
                                          Value(int64_t{10}))};
  OlapQueryStats stats;
  Result<OlapResult> result = segment->Execute(query, nullptr, &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().rows[0][0].AsInt(), 100);
  EXPECT_EQ(stats.rows_scanned, 100);  // only the matching range visited
}

// rows_scanned is one count per row examined, regardless of engine. The
// seed engine double-counted scan-filtered rows: FilterRows tallied every
// candidate, then the aggregate phase added the survivors again.
TEST(SegmentTest, RowsScannedCountsEachRowOnce) {
  for (bool force_scalar : {false, true}) {
    // Pure scan predicate: the filter pass examines all 100 rows; the
    // aggregate phase must add nothing (seed reported 100 + matches).
    auto segment = BuildOrDie(MakeOrders(100), {});
    OlapQuery query;
    query.force_scalar = force_scalar;
    query.aggregations = {OlapAggregation::Count("n")};
    query.filters = {FilterPredicate::Eq("item", Value("pizza"))};
    OlapQueryStats stats;
    Result<OlapResult> result = segment->Execute(query, nullptr, &stats);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result.value().rows[0][0].AsInt(), 34);
    EXPECT_EQ(stats.rows_scanned, 100) << "force_scalar=" << force_scalar;

    // Index candidates + residual scan predicate: the scan pass examines the
    // 10 candidates once; the aggregate phase adds nothing (seed: 10 + 4).
    SegmentIndexConfig config;
    config.inverted_columns = {"restaurant"};
    auto indexed = BuildOrDie(MakeOrders(100), config);
    query.filters = {FilterPredicate::Eq("restaurant", Value(int64_t{3})),
                     FilterPredicate::Eq("item", Value("pizza"))};
    stats = {};
    result = indexed->Execute(query, nullptr, &stats);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(stats.rows_scanned, 10) << "force_scalar=" << force_scalar;

    // Pure index filter: only the selected rows are visited, by the
    // aggregate phase.
    query.filters = {FilterPredicate::Eq("restaurant", Value(int64_t{3}))};
    stats = {};
    result = indexed->Execute(query, nullptr, &stats);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result.value().rows[0][0].AsInt(), 10);
    EXPECT_EQ(stats.rows_scanned, 10) << "force_scalar=" << force_scalar;
  }
}

TEST(SegmentTest, StarTreeAnswersMatchScanExactly) {
  SegmentIndexConfig star;
  star.star_tree_dimensions = {"restaurant", "item"};
  star.star_tree_metrics = {"total"};
  auto with_star = BuildOrDie(MakeOrders(300), star);
  auto without = BuildOrDie(MakeOrders(300), {});

  for (bool filter : {false, true}) {
    OlapQuery query;
    query.group_by = {"restaurant"};
    query.aggregations = {OlapAggregation::Count("n"),
                          OlapAggregation::Sum("total", "sales"),
                          OlapAggregation::Min("total", "lo"),
                          OlapAggregation::Max("total", "hi")};
    if (filter) {
      query.filters = {FilterPredicate::Eq("restaurant", Value(int64_t{2}))};
    }
    OlapQueryStats star_stats, scan_stats;
    Result<OlapResult> fast = with_star->Execute(query, nullptr, &star_stats);
    Result<OlapResult> slow = without->Execute(query, nullptr, &scan_stats);
    ASSERT_TRUE(fast.ok());
    ASSERT_TRUE(slow.ok());
    EXPECT_EQ(star_stats.star_tree_hits, 1);
    EXPECT_EQ(star_stats.rows_scanned, 0);  // no row visits at all
    EXPECT_GT(scan_stats.rows_scanned, 0);
    ASSERT_EQ(fast.value().rows.size(), slow.value().rows.size());
    EXPECT_EQ(fast.value().rows, slow.value().rows);
  }
}

TEST(SegmentTest, StarTreeDeclinesUnsupportedQueries) {
  SegmentIndexConfig star;
  star.star_tree_dimensions = {"restaurant"};
  star.star_tree_metrics = {"total"};
  auto segment = BuildOrDie(MakeOrders(50), star);
  OlapQuery query;
  query.group_by = {"item"};  // not a star dimension
  query.aggregations = {OlapAggregation::Count("n")};
  OlapQueryStats stats;
  ASSERT_TRUE(segment->Execute(query, nullptr, &stats).ok());
  EXPECT_EQ(stats.star_tree_hits, 0);  // fell back to scan, still correct
}

TEST(SegmentTest, ValidityMaskHidesUpsertedRows) {
  auto segment = BuildOrDie(MakeOrders(10, 1), {});
  std::vector<bool> validity(10, true);
  validity[0] = false;
  validity[5] = false;
  OlapQuery query;
  query.aggregations = {OlapAggregation::Count("n")};
  OlapQueryStats stats;
  Result<OlapResult> result = segment->Execute(query, &validity, &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().rows[0][0].AsInt(), 8);
}

TEST(SegmentTest, SelectionWithLimitShortCircuits) {
  auto segment = BuildOrDie(MakeOrders(1000), {});
  OlapQuery query;
  query.select_columns = {"restaurant", "total"};
  query.limit = 5;
  OlapQueryStats stats;
  Result<OlapResult> result = segment->Execute(query, nullptr, &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().rows.size(), 5u);
  EXPECT_LT(stats.rows_scanned, 1000);
}

TEST(SegmentTest, SerializeDeserializeRoundTrip) {
  SegmentIndexConfig config;
  config.inverted_columns = {"item"};
  config.sorted_column = "restaurant";
  config.star_tree_dimensions = {"restaurant"};
  config.star_tree_metrics = {"total"};
  auto original = BuildOrDie(MakeOrders(200), config);
  std::string blob = original->Serialize();
  Result<std::shared_ptr<Segment>> restored = Segment::Deserialize(blob);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  ASSERT_EQ(restored.value()->NumRows(), original->NumRows());
  EXPECT_TRUE(restored.value()->HasStarTree());
  // Same query, same answers.
  OlapQuery query;
  query.group_by = {"restaurant"};
  query.aggregations = {OlapAggregation::Sum("total", "sales")};
  OlapQueryStats s1, s2;
  EXPECT_EQ(original->Execute(query, nullptr, &s1).value().rows,
            restored.value()->Execute(query, nullptr, &s2).value().rows);
  // Every row identical.
  for (int64_t r = 0; r < original->NumRows(); ++r) {
    EXPECT_EQ(original->GetRow(static_cast<size_t>(r)),
              restored.value()->GetRow(static_cast<size_t>(r)));
  }
}

TEST(SegmentTest, DeserializeRejectsCorruptBlob) {
  auto segment = BuildOrDie(MakeOrders(10), {});
  std::string blob = segment->Serialize();
  EXPECT_FALSE(Segment::Deserialize(blob.substr(0, blob.size() / 2)).ok());
  EXPECT_FALSE(Segment::Deserialize("garbage").ok());
}

TEST(SegmentTest, BitPackingShrinksFootprintVsPlain) {
  SegmentIndexConfig packed;
  SegmentIndexConfig plain;
  plain.bit_packed_forward_index = false;
  auto small = BuildOrDie(MakeOrders(5000), packed);
  auto big = BuildOrDie(MakeOrders(5000), plain);
  // Low-cardinality columns pack into a few bits vs 32.
  EXPECT_LT(small->MemoryBytes(), big->MemoryBytes());
}

TEST(SegmentTest, MemoryBytesCountsZoneMapsAndMembershipFilters) {
  // A/B across the bloom cardinality threshold: 64 distinct restaurant ids
  // builds that column's membership filter (kBloomMinCardinality), 63 does
  // not. Everything else about the two segments is identical, so the
  // footprint delta must include the filter's bit array (64 values at
  // 8 bits/value = 64 bytes of words) — the budget the lifecycle manager
  // enforces has to see index memory, not just forward indexes.
  auto with_bloom = BuildOrDie(MakeOrders(128, 64), {});
  auto without_bloom = BuildOrDie(MakeOrders(128, 63), {});
  EXPECT_GE(with_bloom->MemoryBytes() - without_bloom->MemoryBytes(), 64);

  // The accounting survives a serialize/deserialize round trip: the
  // reloaded segments carry the same filters, so the same delta holds.
  auto reload = [](const Segment& s) {
    Result<std::shared_ptr<Segment>> restored = Segment::Deserialize(s.Serialize());
    EXPECT_TRUE(restored.ok()) << restored.status().ToString();
    return restored.value();
  };
  EXPECT_GE(reload(*with_bloom)->MemoryBytes() -
                reload(*without_bloom)->MemoryBytes(),
            64);
}

TEST(SegmentTest, EmptySegmentHandled) {
  auto segment = BuildOrDie({}, {});
  OlapQuery query;
  query.aggregations = {OlapAggregation::Count("n")};
  OlapQueryStats stats;
  Result<OlapResult> result = segment->Execute(query, nullptr, &stats);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result.value().rows.empty());
}

}  // namespace
}  // namespace uberrt::olap
