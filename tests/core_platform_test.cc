#include <gtest/gtest.h>

#include "core/platform.h"
#include "core/use_cases.h"
#include "workload/generators.h"

namespace uberrt::core {
namespace {

class PlatformTest : public ::testing::Test {
 protected:
  RealtimePlatform platform_;
};

TEST_F(PlatformTest, ProvisioningRegistersSchemaAndTopic) {
  RowSchema schema({{"a", ValueType::kInt}});
  ASSERT_TRUE(platform_.ProvisionTopic("events", schema, 4, "tester").ok());
  EXPECT_TRUE(platform_.streams()->HasTopic("events"));
  EXPECT_EQ(platform_.registry()->GetLatest("events").value().schema, schema);
  // Idempotent for the same schema.
  ASSERT_TRUE(platform_.ProvisionTopic("events", schema, 4, "tester").ok());
  // Incompatible schema evolution refused at the platform boundary.
  EXPECT_FALSE(platform_
                   .ProvisionTopic("events", RowSchema({{"a", ValueType::kString}}), 4,
                                   "tester")
                   .ok());
  EXPECT_EQ(platform_.LayersUsed("tester"),
            std::set<std::string>{std::string(kLayerStream)});
}

TEST_F(PlatformTest, SqlJobFlowsIntoOlapAndPresto) {
  RowSchema schema({{"city", ValueType::kString},
                    {"v", ValueType::kDouble},
                    {"ts", ValueType::kInt}});
  ASSERT_TRUE(platform_.ProvisionTopic("events", schema, 2, "app").ok());
  Result<std::string> job = platform_.SubmitSqlJob(
      "SELECT city, window_start, COUNT(*) AS n, SUM(v) AS total FROM events "
      "GROUP BY city, TUMBLE(ts, INTERVAL '1' MINUTE)",
      "events_rollup", "app");
  ASSERT_TRUE(job.ok()) << job.status().ToString();
  olap::TableConfig table;
  table.name = "rollup";
  ASSERT_TRUE(platform_.ProvisionOlapTable(table, "events_rollup",
                                           olap::ClusterTableOptions(), "app").ok());

  // Produce two windows of events and pump the platform end to end.
  for (int w = 0; w < 2; ++w) {
    for (int i = 0; i < 10; ++i) {
      Row row{Value(i % 2 ? std::string("sf") : std::string("nyc")), Value(1.5),
              Value(static_cast<int64_t>(w * 60'000 + i * 100))};
      ASSERT_TRUE(platform_.ProduceRow("events", row, row[0].AsString(),
                                       row[2].AsInt(), "app").ok());
    }
  }
  compute::JobRunner* runner = platform_.jobs()->GetRunner(job.value());
  ASSERT_NE(runner, nullptr);
  runner->RequestFinish();
  ASSERT_TRUE(runner->AwaitTermination(10'000).ok());
  ASSERT_TRUE(platform_.PumpUntilIngested().ok());

  // Query through Presto: 2 cities x 2 windows, 5 events each.
  Result<sql::QueryResult> result = platform_.Query(
      "SELECT city, SUM(n) AS events FROM rollup GROUP BY city ORDER BY city ASC",
      "analyst");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result.value().rows.size(), 2u);
  EXPECT_EQ(result.value().rows[0][0].AsString(), "nyc");
  EXPECT_EQ(result.value().rows[0][1].ToNumeric(), 10);

  // Lineage threads through topic -> job -> rollup topic -> olap table.
  std::vector<std::string> downstream = platform_.registry()->Downstream("events");
  bool reaches_table = false;
  for (const std::string& node : downstream) {
    if (node == "olap:rollup") reaches_table = true;
  }
  EXPECT_TRUE(reaches_table);
  // Chaperone saw the produced events.
  EXPECT_EQ(platform_.audit()->TotalCount("producer", "events"), 20);
}

/// The full Section 5 quartet running against one platform, reproducing
/// Table 1 from live layer usage.
class UseCaseTableTest : public ::testing::Test {
 protected:
  void SetUp() override {
    platform_ = std::make_unique<RealtimePlatform>();
    surge_ = std::make_unique<SurgePricingApp>(platform_.get());
    restaurant_ = std::make_unique<RestaurantManagerApp>(platform_.get());
    prediction_ = std::make_unique<PredictionMonitoringApp>(platform_.get());
    ops_ = std::make_unique<EatsOpsAutomationApp>(platform_.get());
  }

  void DriveAll() {
    ASSERT_TRUE(surge_->Start().ok());
    ASSERT_TRUE(restaurant_->Start().ok());
    ASSERT_TRUE(prediction_->Start().ok());

    workload::TripEventGenerator trips({});
    ASSERT_TRUE(trips.Produce(platform_->streams(), "trips", 600).ok());
    workload::EatsOrderGenerator orders({});
    ASSERT_TRUE(orders.Produce(platform_->streams(), "eats_orders", 600).ok());
    workload::PredictionGenerator predictions({});
    ASSERT_TRUE(predictions.ProducePairs(platform_->streams(), "predictions",
                                         "outcomes", 300).ok());
    // Seal the event time for all jobs, then drain.
    for (compute::JobInfo info : platform_->jobs()->ListJobs()) {
      compute::JobRunner* runner = platform_->jobs()->GetRunner(info.id);
      ASSERT_NE(runner, nullptr);
      ASSERT_TRUE(runner->WaitUntilCaughtUp(30'000).ok());
      runner->RequestFinish();
      ASSERT_TRUE(runner->AwaitTermination(30'000).ok());
    }
    ASSERT_TRUE(platform_->PumpUntilIngested().ok());

    // Prediction monitoring queries its cube (the SQL-layer usage of Table 1).
    ASSERT_TRUE(prediction_->AccuracyByModel().ok());

    // Ops explores and productionizes a rule (PrestoSQL on the rollup).
    ASSERT_TRUE(ops_->Explore("SELECT COUNT(*) FROM eats_rollup").ok());
    ASSERT_TRUE(ops_->AddRule({"busy", "SELECT SUM(orders) FROM eats_rollup", 1.0,
                               true}).ok());
    ASSERT_TRUE(ops_->EvaluateRules().ok());
    ASSERT_TRUE(ops_->StartPreprocessing("eats_orders", "ops_city_rollup").ok());
  }

  std::unique_ptr<RealtimePlatform> platform_;
  std::unique_ptr<SurgePricingApp> surge_;
  std::unique_ptr<RestaurantManagerApp> restaurant_;
  std::unique_ptr<PredictionMonitoringApp> prediction_;
  std::unique_ptr<EatsOpsAutomationApp> ops_;
};

TEST_F(UseCaseTableTest, ReproducesTable1ComponentMatrix) {
  DriveAll();
  // Paper Table 1, column by column.
  using Layers = std::set<std::string>;
  EXPECT_EQ(platform_->LayersUsed(SurgePricingApp::kActor),
            (Layers{kLayerApi, kLayerCompute, kLayerStream}));
  EXPECT_EQ(platform_->LayersUsed(RestaurantManagerApp::kActor),
            (Layers{kLayerSql, kLayerOlap, kLayerCompute, kLayerStream, kLayerStorage}));
  EXPECT_EQ(platform_->LayersUsed(PredictionMonitoringApp::kActor),
            (Layers{kLayerApi, kLayerSql, kLayerOlap, kLayerCompute, kLayerStream,
                    kLayerStorage}));
  EXPECT_EQ(platform_->LayersUsed(EatsOpsAutomationApp::kActor),
            (Layers{kLayerSql, kLayerOlap, kLayerCompute, kLayerStream}));
  // Rendered matrix mentions all four columns.
  std::string table = platform_->RenderComponentTable(
      {SurgePricingApp::kActor, RestaurantManagerApp::kActor,
       PredictionMonitoringApp::kActor, EatsOpsAutomationApp::kActor});
  EXPECT_NE(table.find("surge"), std::string::npos);
  EXPECT_NE(table.find("Compute"), std::string::npos);
}

TEST_F(UseCaseTableTest, SurgeComputesMultipliersPerHex) {
  DriveAll();
  EXPECT_GT(surge_->windows_computed(), 0);
  std::map<std::string, double> multipliers = surge_->Multipliers();
  ASSERT_FALSE(multipliers.empty());
  for (const auto& [hex, multiplier] : multipliers) {
    EXPECT_GE(multiplier, 1.0);
    EXPECT_LE(multiplier, 5.0);
  }
  EXPECT_DOUBLE_EQ(surge_->GetMultiplier("never-seen-hex"), 1.0);
}

TEST_F(UseCaseTableTest, RestaurantDashboardsAnswerFromPreAggregates) {
  DriveAll();
  Result<sql::QueryResult> top = restaurant_->TopItems(0);
  ASSERT_TRUE(top.ok()) << top.status().ToString();
  EXPECT_FALSE(top.value().rows.empty());
  EXPECT_LE(top.value().rows.size(), 5u);
  // Sales sorted descending.
  for (size_t i = 1; i < top.value().rows.size(); ++i) {
    EXPECT_GE(top.value().rows[i - 1][1].ToNumeric(),
              top.value().rows[i][1].ToNumeric());
  }
  Result<sql::QueryResult> series = restaurant_->SalesTimeseries(0);
  ASSERT_TRUE(series.ok());
  EXPECT_FALSE(series.value().rows.empty());
  // Flush the consuming buffers into indexed segments, then the star-tree
  // answers without touching raw rows.
  ASSERT_TRUE(platform_->olap()->ForceSeal("eats_rollup").ok());
  Result<olap::OlapResult> olap_direct = restaurant_->SalesByItemOlap(0);
  ASSERT_TRUE(olap_direct.ok());
  EXPECT_GT(olap_direct.value().stats.star_tree_hits, 0);
}

TEST_F(UseCaseTableTest, PredictionMonitoringDetectsBiasedModels) {
  DriveAll();
  Result<sql::QueryResult> accuracy = prediction_->AccuracyByModel();
  ASSERT_TRUE(accuracy.ok()) << accuracy.status().ToString();
  ASSERT_FALSE(accuracy.value().rows.empty());
  // The generator injects bias = 0.05 * (model_index % 5); models with
  // index % 5 == 4 carry ~0.2 error, far above the unbiased ~0.02.
  // Bias levels are 0.05 * (index % 5) = {0, .05, .10, .15, .20}; a 0.12
  // threshold should flag exactly the two highest-bias groups.
  Result<std::vector<std::string>> abnormal = prediction_->DetectAbnormalModels(0.12);
  ASSERT_TRUE(abnormal.ok());
  EXPECT_FALSE(abnormal.value().empty());
  for (const std::string& model : abnormal.value()) {
    int index = std::stoi(model.substr(5));
    EXPECT_GE(index % 5, 3) << model << " flagged but has low bias";
  }
}

TEST_F(UseCaseTableTest, OpsRulesFireOnRealData) {
  DriveAll();
  Result<std::vector<EatsOpsAutomationApp::Alert>> alerts = ops_->EvaluateRules();
  ASSERT_TRUE(alerts.ok());
  ASSERT_EQ(alerts.value().size(), 1u);  // the "busy" rule fires
  EXPECT_EQ(alerts.value()[0].rule, "busy");
  EXPECT_GT(alerts.value()[0].observed, 1.0);
}

}  // namespace
}  // namespace uberrt::core
