#include <gtest/gtest.h>

#include <string>

#include "compute/checkpoint.h"
#include "storage/object_store.h"

namespace uberrt::compute {
namespace {

CheckpointData SampleData() {
  CheckpointData data;
  data.sequence = 7;
  data.entries["source.0.0"] = "42";
  data.entries["op.0.0"] = std::string("\x00\x01\x02", 3);
  return data;
}

TEST(CheckpointDataTest, EncodeDecodeRoundtrip) {
  CheckpointData data = SampleData();
  Result<CheckpointData> decoded = CheckpointData::Decode(data.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().sequence, 7);
  EXPECT_EQ(decoded.value().entries, data.entries);
}

TEST(CheckpointDataTest, TruncatedBlobsAreCorruptionNotCrash) {
  std::string blob = SampleData().Encode();
  // Every possible truncation point must decode to an error, never throw or
  // read out of bounds.
  for (size_t len = 0; len < blob.size(); ++len) {
    Result<CheckpointData> decoded = CheckpointData::Decode(blob.substr(0, len));
    EXPECT_FALSE(decoded.ok()) << "truncated at " << len;
    EXPECT_TRUE(decoded.status().IsCorruption()) << "truncated at " << len;
  }
}

TEST(CheckpointDataTest, GarbageHeaderFieldsAreCorruption) {
  // Hand-build a blob whose length-prefixed header fields hold non-numeric
  // text where the decoder expects decimal sequence/count.
  auto field = [](const std::string& s) {
    uint32_t len = static_cast<uint32_t>(s.size());
    std::string out(reinterpret_cast<const char*>(&len), 4);
    return out + s;
  };
  Result<CheckpointData> bad_seq = CheckpointData::Decode(field("abc") + field("0"));
  EXPECT_TRUE(bad_seq.status().IsCorruption());
  Result<CheckpointData> bad_count = CheckpointData::Decode(field("1") + field("xyz"));
  EXPECT_TRUE(bad_count.status().IsCorruption());
  Result<CheckpointData> neg_count = CheckpointData::Decode(field("1") + field("-4"));
  EXPECT_TRUE(neg_count.status().IsCorruption());
  // Overflowing digits must not wrap.
  Result<CheckpointData> huge =
      CheckpointData::Decode(field("999999999999999999999999") + field("0"));
  EXPECT_TRUE(huge.status().IsCorruption());
}

TEST(CheckpointDataTest, HugeEntryCountRejectedWithoutAllocating) {
  auto field = [](const std::string& s) {
    uint32_t len = static_cast<uint32_t>(s.size());
    std::string out(reinterpret_cast<const char*>(&len), 4);
    return out + s;
  };
  // Claims 4 billion entries in a blob with room for none.
  Result<CheckpointData> decoded =
      CheckpointData::Decode(field("1") + field("4000000000"));
  EXPECT_TRUE(decoded.status().IsCorruption());
}

TEST(CheckpointDataTest, RandomBytesNeverCrash) {
  // Deterministic pseudo-random garbage of varying length.
  uint64_t x = 0x9e3779b97f4a7c15ULL;
  for (int round = 0; round < 64; ++round) {
    std::string blob;
    for (int i = 0; i < round * 3; ++i) {
      x ^= x << 13;
      x ^= x >> 7;
      x ^= x << 17;
      blob.push_back(static_cast<char>(x & 0xff));
    }
    CheckpointData::Decode(blob).ok();  // must simply not crash
  }
}

TEST(CheckpointStoreTest, SaveLoadLatestRoundtrip) {
  storage::InMemoryObjectStore store;
  CheckpointStore checkpoints(&store, "checkpoints", "job1");
  EXPECT_TRUE(checkpoints.LoadLatest().status().IsNotFound());
  ASSERT_TRUE(checkpoints.Save(SampleData()).ok());
  Result<CheckpointData> loaded = checkpoints.LoadLatest();
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().sequence, 7);
}

TEST(CheckpointStoreTest, LatestPointingAtDeletedCheckpointIsNotFound) {
  storage::InMemoryObjectStore store;
  CheckpointStore checkpoints(&store, "checkpoints", "job1");
  ASSERT_TRUE(checkpoints.Save(SampleData()).ok());
  // Simulate a half-completed cleanup: the checkpoint object is gone but
  // LATEST still names it.
  ASSERT_TRUE(store.Delete("checkpoints/job1/chk-7").ok());
  Result<CheckpointData> loaded = checkpoints.LoadLatest();
  EXPECT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsNotFound());
}

TEST(CheckpointStoreTest, CorruptLatestPointerIsCorruption) {
  storage::InMemoryObjectStore store;
  CheckpointStore checkpoints(&store, "checkpoints", "job1");
  ASSERT_TRUE(store.Put("checkpoints/job1/LATEST", "not-a-number").ok());
  EXPECT_TRUE(checkpoints.LoadLatest().status().IsCorruption());
  EXPECT_TRUE(checkpoints.LatestSequence().status().IsCorruption());
}

TEST(CheckpointStoreTest, CorruptCheckpointBlobSurfacesCorruption) {
  storage::InMemoryObjectStore store;
  CheckpointStore checkpoints(&store, "checkpoints", "job1");
  ASSERT_TRUE(checkpoints.Save(SampleData()).ok());
  ASSERT_TRUE(store.Put("checkpoints/job1/chk-7", "shredded").ok());
  EXPECT_TRUE(checkpoints.LoadLatest().status().IsCorruption());
}

}  // namespace
}  // namespace uberrt::compute
