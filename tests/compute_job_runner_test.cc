#include "compute/job_runner.h"

#include <gtest/gtest.h>

#include <mutex>

#include "stream/broker.h"

namespace uberrt::compute {
namespace {

using stream::AckMode;
using stream::Broker;
using stream::Message;
using stream::TopicConfig;

RowSchema TripSchema() {
  return RowSchema({{"hex", ValueType::kString},
                    {"fare", ValueType::kDouble},
                    {"ts", ValueType::kInt}});
}

Message TripMessage(const std::string& hex, double fare, int64_t ts) {
  Message m;
  m.key = hex;
  m.value = EncodeRow({Value(hex), Value(fare), Value(ts)});
  m.timestamp = ts;
  return m;
}

class JobRunnerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    broker_ = std::make_unique<Broker>("cluster1");
    store_ = std::make_unique<storage::InMemoryObjectStore>();
    TopicConfig config;
    config.num_partitions = 4;
    ASSERT_TRUE(broker_->CreateTopic("trips", config).ok());
  }

  std::unique_ptr<Broker> broker_;
  std::unique_ptr<storage::InMemoryObjectStore> store_;
};

TEST_F(JobRunnerTest, MapFilterPipelineDeliversAllRows) {
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(
        broker_->Produce("trips", TripMessage("hex" + std::to_string(i % 7), i, 1000 + i))
            .ok());
  }
  std::mutex mu;
  std::vector<Row> results;
  JobGraph graph("map_filter");
  SourceSpec source;
  source.topic = "trips";
  source.schema = TripSchema();
  source.time_field = "ts";
  graph.AddSource(source)
      .Filter("cheap", [](const Row& r) { return r[1].ToNumeric() < 50.0; })
      .Map(
          "double_fare",
          [](const Row& r) {
            return Row{r[0], Value(r[1].ToNumeric() * 2.0), r[2]};
          },
          TripSchema())
      .SinkToCollector([&](const Row& row, TimestampMs) {
        std::lock_guard<std::mutex> lock(mu);
        results.push_back(row);
      });

  JobRunner runner(graph, broker_.get(), store_.get());
  ASSERT_TRUE(runner.Start().ok());
  runner.RequestFinish();
  ASSERT_TRUE(runner.AwaitTermination(10000).ok());
  EXPECT_EQ(results.size(), 50u);
  EXPECT_EQ(runner.RecordsIn(), 100);
  EXPECT_EQ(runner.RecordsOut(), 50);
  for (const Row& r : results) EXPECT_LT(r[1].ToNumeric(), 100.0);
}

TEST_F(JobRunnerTest, TumblingWindowCountsPerKey) {
  // 2 keys x 3 windows x 10 records.
  for (int w = 0; w < 3; ++w) {
    for (int i = 0; i < 10; ++i) {
      int64_t ts = w * 60000 + i * 100;
      ASSERT_TRUE(broker_->Produce("trips", TripMessage("A", 1.0, ts)).ok());
      ASSERT_TRUE(broker_->Produce("trips", TripMessage("B", 2.0, ts)).ok());
    }
  }
  std::mutex mu;
  std::vector<Row> results;
  JobGraph graph("windowed");
  SourceSpec source;
  source.topic = "trips";
  source.schema = TripSchema();
  source.time_field = "ts";
  source.watermark_interval_records = 8;
  graph.AddSource(source)
      .WindowAggregate("agg", {"hex"}, WindowSpec::Tumbling(60000),
                       {AggregateSpec::Count("n"), AggregateSpec::Sum("fare", "total"),
                        AggregateSpec::Avg("fare", "avg_fare")},
                       /*allowed_lateness_ms=*/0, /*parallelism=*/2)
      .SinkToCollector([&](const Row& row, TimestampMs) {
        std::lock_guard<std::mutex> lock(mu);
        results.push_back(row);
      });

  JobRunner runner(graph, broker_.get(), store_.get());
  ASSERT_TRUE(runner.Start().ok());
  runner.RequestFinish();
  ASSERT_TRUE(runner.AwaitTermination(10000).ok());

  ASSERT_EQ(results.size(), 6u);  // 2 keys x 3 windows
  for (const Row& r : results) {
    // [hex, window_start, n, total, avg]
    EXPECT_EQ(r.size(), 5u);
    EXPECT_EQ(r[2].AsInt(), 10);
    if (r[0].AsString() == "A") {
      EXPECT_DOUBLE_EQ(r[3].AsDouble(), 10.0);
      EXPECT_DOUBLE_EQ(r[4].AsDouble(), 1.0);
    } else {
      EXPECT_DOUBLE_EQ(r[3].AsDouble(), 20.0);
      EXPECT_DOUBLE_EQ(r[4].AsDouble(), 2.0);
    }
  }
}

TEST_F(JobRunnerTest, CheckpointRestartResumesWithoutDuplicateState) {
  std::mutex mu;
  std::vector<Row> results;
  auto make_graph = [&] {
    JobGraph graph("chk");
    SourceSpec source;
    source.topic = "trips";
    source.schema = TripSchema();
    source.time_field = "ts";
    source.watermark_interval_records = 4;
    graph.AddSource(source)
        .WindowAggregate("agg", {"hex"}, WindowSpec::Tumbling(60000),
                         {AggregateSpec::Count("n")})
        .SinkToCollector([&](const Row& row, TimestampMs) {
          std::lock_guard<std::mutex> lock(mu);
          results.push_back(row);
        });
    return graph;
  };

  // Phase 1: half the data, checkpoint, crash.
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(broker_->Produce("trips", TripMessage("A", 1.0, 1000 + i)).ok());
  }
  {
    JobRunner runner(make_graph(), broker_.get(), store_.get());
    ASSERT_TRUE(runner.Start().ok());
    ASSERT_TRUE(runner.WaitUntilCaughtUp(10000).ok());
    Result<int64_t> seq = runner.TriggerCheckpoint();
    ASSERT_TRUE(seq.ok()) << seq.status().ToString();
    runner.Cancel();  // crash: window never fired, no output
  }
  EXPECT_TRUE(results.empty());

  // Phase 2: rest of the data, restore, finish.
  for (int i = 50; i < 100; ++i) {
    ASSERT_TRUE(broker_->Produce("trips", TripMessage("A", 1.0, 1000 + i)).ok());
  }
  {
    JobRunner runner(make_graph(), broker_.get(), store_.get());
    ASSERT_TRUE(runner.RestoreFromCheckpoint().ok());
    ASSERT_TRUE(runner.Start().ok());
    runner.RequestFinish();
    ASSERT_TRUE(runner.AwaitTermination(10000).ok());
  }
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0][2].AsInt(), 100);  // exactly-once state across restart
}

TEST_F(JobRunnerTest, WindowJoinMatchesWithinWindow) {
  TopicConfig config;
  config.num_partitions = 2;
  ASSERT_TRUE(broker_->CreateTopic("predictions", config).ok());
  ASSERT_TRUE(broker_->CreateTopic("outcomes", config).ok());

  RowSchema pred_schema({{"model", ValueType::kString},
                         {"predicted", ValueType::kDouble},
                         {"ts", ValueType::kInt}});
  RowSchema outcome_schema({{"model", ValueType::kString},
                            {"actual", ValueType::kDouble},
                            {"ts2", ValueType::kInt}});
  for (int i = 0; i < 20; ++i) {
    Message p;
    p.key = "m" + std::to_string(i % 2);
    p.value = EncodeRow({Value(p.key), Value(0.5 + i), Value(static_cast<int64_t>(1000 + i))});
    p.timestamp = 1000 + i;
    ASSERT_TRUE(broker_->Produce("predictions", p).ok());
    Message o;
    o.key = p.key;
    o.value = EncodeRow({Value(o.key), Value(0.4 + i), Value(static_cast<int64_t>(1001 + i))});
    o.timestamp = 1001 + i;
    ASSERT_TRUE(broker_->Produce("outcomes", o).ok());
  }

  std::mutex mu;
  std::vector<Row> results;
  JobGraph graph("join");
  SourceSpec left;
  left.topic = "predictions";
  left.schema = pred_schema;
  left.time_field = "ts";
  left.watermark_interval_records = 4;
  SourceSpec right;
  right.topic = "outcomes";
  right.schema = outcome_schema;
  right.time_field = "ts2";
  right.watermark_interval_records = 4;
  graph.AddSource(left).AddSource(right);
  graph.WindowJoin("join", {"model"}, WindowSpec::Tumbling(60000));
  graph.SinkToCollector([&](const Row& row, TimestampMs) {
    std::lock_guard<std::mutex> lock(mu);
    results.push_back(row);
  });

  JobRunner runner(graph, broker_.get(), store_.get());
  ASSERT_TRUE(runner.Start().ok());
  runner.RequestFinish();
  ASSERT_TRUE(runner.AwaitTermination(10000).ok());
  // All records share one window; 10 left x 10 right per key.
  EXPECT_EQ(results.size(), 200u);
  // Joined row: model, predicted, ts, actual, ts2.
  ASSERT_FALSE(results.empty());
  EXPECT_EQ(results[0].size(), 5u);
}

TEST_F(JobRunnerTest, LateRecordsAreDropped) {
  std::mutex mu;
  std::vector<Row> results;
  JobGraph graph("late");
  SourceSpec source;
  source.topic = "trips";
  source.schema = TripSchema();
  source.time_field = "ts";
  source.watermark_interval_records = 1;  // watermark after every record
  graph.AddSource(source)
      .WindowAggregate("agg", {"hex"}, WindowSpec::Tumbling(1000),
                       {AggregateSpec::Count("n")})
      .SinkToCollector([&](const Row& row, TimestampMs) {
        std::lock_guard<std::mutex> lock(mu);
        results.push_back(row);
      });

  JobRunner runner(graph, broker_.get(), store_.get());
  ASSERT_TRUE(runner.Start().ok());
  // Window [0,1000) then jump to 5000 (fires it), then a late record at 500.
  ASSERT_TRUE(broker_->Produce("trips", TripMessage("A", 1.0, 100)).ok());
  ASSERT_TRUE(broker_->Produce("trips", TripMessage("A", 1.0, 5000)).ok());
  ASSERT_TRUE(runner.WaitUntilCaughtUp(10000).ok());
  ASSERT_TRUE(broker_->Produce("trips", TripMessage("A", 1.0, 500)).ok());
  runner.RequestFinish();
  ASSERT_TRUE(runner.AwaitTermination(10000).ok());
  EXPECT_EQ(runner.LateDropped(), 1);
  // Two windows fired: [0,1000) with 1 record, [5000,6000) with 1.
  EXPECT_EQ(results.size(), 2u);
}

TEST_F(JobRunnerTest, CorruptMessagesCountedNotFatal) {
  Message bad;
  bad.value = "not-a-row";
  ASSERT_TRUE(broker_->Produce("trips", bad).ok());
  ASSERT_TRUE(broker_->Produce("trips", TripMessage("A", 1.0, 100)).ok());

  std::mutex mu;
  std::vector<Row> results;
  JobGraph graph("corrupt");
  SourceSpec source;
  source.topic = "trips";
  source.schema = TripSchema();
  source.time_field = "ts";
  graph.AddSource(source).SinkToCollector([&](const Row& row, TimestampMs) {
    std::lock_guard<std::mutex> lock(mu);
    results.push_back(row);
  });

  JobRunner runner(graph, broker_.get(), store_.get());
  ASSERT_TRUE(runner.Start().ok());
  runner.RequestFinish();
  ASSERT_TRUE(runner.AwaitTermination(10000).ok());
  EXPECT_EQ(runner.DecodeErrors(), 1);
  EXPECT_EQ(results.size(), 1u);
}

}  // namespace
}  // namespace uberrt::compute
