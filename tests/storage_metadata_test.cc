#include <gtest/gtest.h>

#include "common/fault_injector.h"
#include "metadata/schema_registry.h"
#include "storage/archive.h"
#include "storage/object_store.h"

namespace uberrt {
namespace {

using common::FaultInjector;
using metadata::SchemaRegistry;
using storage::ArchiveTable;
using storage::InMemoryObjectStore;

TEST(ObjectStoreTest, ReadAfterWrite) {
  InMemoryObjectStore store;
  ASSERT_TRUE(store.Put("a/b", "data1").ok());
  Result<std::string> got = store.Get("a/b");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got.value(), "data1");
  ASSERT_TRUE(store.Put("a/b", "data2").ok());  // overwrite
  EXPECT_EQ(store.Get("a/b").value(), "data2");
}

TEST(ObjectStoreTest, MissingKeyIsNotFound) {
  InMemoryObjectStore store;
  EXPECT_TRUE(store.Get("nope").status().IsNotFound());
  EXPECT_TRUE(store.Delete("nope").IsNotFound());
  EXPECT_FALSE(store.Exists("nope"));
}

TEST(ObjectStoreTest, ListByPrefixSorted) {
  InMemoryObjectStore store;
  store.Put("seg/t1/b", "x").ok();
  store.Put("seg/t1/a", "x").ok();
  store.Put("seg/t2/a", "x").ok();
  store.Put("other", "x").ok();
  std::vector<std::string> listed = store.List("seg/t1/");
  ASSERT_EQ(listed.size(), 2u);
  EXPECT_EQ(listed[0], "seg/t1/a");
  EXPECT_EQ(listed[1], "seg/t1/b");
}

TEST(ObjectStoreTest, TotalBytesTracksWritesAndDeletes) {
  InMemoryObjectStore store;
  store.Put("k1", std::string(100, 'x')).ok();
  store.Put("k2", std::string(50, 'y')).ok();
  EXPECT_EQ(store.TotalBytes(), 150);
  store.Put("k1", std::string(10, 'z')).ok();  // overwrite shrinks
  EXPECT_EQ(store.TotalBytes(), 60);
  store.Delete("k2").ok();
  EXPECT_EQ(store.TotalBytes(), 10);
}

TEST(ObjectStoreTest, OutageFailsEveryOperation) {
  FaultInjector faults;
  InMemoryObjectStore store;
  store.SetFaultInjector(&faults);
  store.Put("k", "v").ok();
  faults.SetDown("store", true);
  EXPECT_TRUE(store.Put("k2", "v").IsUnavailable());
  EXPECT_TRUE(store.Get("k").status().IsUnavailable());
  EXPECT_FALSE(store.Exists("k"));
  EXPECT_TRUE(store.List("").empty());
  EXPECT_GT(faults.metrics()->GetCounter("faults.store.put.injected")->value(), 0);
  faults.SetDown("store", false);
  EXPECT_EQ(store.Get("k").value(), "v");
}

// The legacy toggle stays as a thin compat shim over the same error path.
TEST(ObjectStoreTest, SetAvailableShimStillWorks) {
  InMemoryObjectStore store;
  store.Put("k", "v").ok();
  store.SetAvailable(false);
  EXPECT_TRUE(store.Get("k").status().IsUnavailable());
  store.SetAvailable(true);
  EXPECT_EQ(store.Get("k").value(), "v");
}

TEST(ArchiveTest, BatchesReadBackInOrder) {
  InMemoryObjectStore store;
  RowSchema schema({{"id", ValueType::kInt}, {"v", ValueType::kDouble}});
  ArchiveTable table(&store, "trips", schema);
  std::vector<Row> day1a{{Value(int64_t{1}), Value(1.0)}, {Value(int64_t{2}), Value(2.0)}};
  std::vector<Row> day1b{{Value(int64_t{3}), Value(3.0)}};
  std::vector<Row> day2{{Value(int64_t{4}), Value(4.0)}};
  ASSERT_TRUE(table.AppendBatch("2020-10-01", day1a).ok());
  ASSERT_TRUE(table.AppendBatch("2020-10-01", day1b).ok());
  ASSERT_TRUE(table.AppendBatch("2020-10-02", day2).ok());

  std::vector<std::string> partitions = table.ListPartitions();
  ASSERT_EQ(partitions.size(), 2u);
  EXPECT_EQ(partitions[0], "2020-10-01");

  Result<std::vector<Row>> rows = table.ReadPartition("2020-10-01");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows.value().size(), 3u);
  EXPECT_EQ(rows.value()[0][0].AsInt(), 1);
  EXPECT_EQ(rows.value()[2][0].AsInt(), 3);

  Result<int64_t> count = table.CountRows({"2020-10-01", "2020-10-02"});
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count.value(), 4);
}

TEST(ArchiveTest, EmptyBatchRejected) {
  InMemoryObjectStore store;
  ArchiveTable table(&store, "t", RowSchema({{"a", ValueType::kInt}}));
  EXPECT_FALSE(table.AppendBatch("p", {}).ok());
}

TEST(SchemaRegistryTest, VersioningAndIdempotentRegister) {
  SchemaRegistry registry;
  RowSchema v1({{"a", ValueType::kInt}});
  Result<int> first = registry.Register("topic", v1);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first.value(), 1);
  // Same schema: same version.
  EXPECT_EQ(registry.Register("topic", v1).value(), 1);
  // Compatible evolution: appended field.
  RowSchema v2({{"a", ValueType::kInt}, {"b", ValueType::kString}});
  EXPECT_EQ(registry.Register("topic", v2).value(), 2);
  EXPECT_EQ(registry.GetLatest("topic").value().version, 2);
  EXPECT_EQ(registry.GetVersion("topic", 1).value().schema, v1);
}

TEST(SchemaRegistryTest, IncompatibleChangesRejected) {
  SchemaRegistry registry;
  registry.Register("t", RowSchema({{"a", ValueType::kInt}, {"b", ValueType::kString}}))
      .ok();
  // Removing a field.
  EXPECT_FALSE(registry.Register("t", RowSchema({{"a", ValueType::kInt}})).ok());
  // Changing a type.
  EXPECT_FALSE(
      registry.Register("t", RowSchema({{"a", ValueType::kDouble},
                                        {"b", ValueType::kString}})).ok());
  // Renaming / reordering.
  EXPECT_FALSE(
      registry.Register("t", RowSchema({{"b", ValueType::kString},
                                        {"a", ValueType::kInt}})).ok());
  // Registry unchanged.
  EXPECT_EQ(registry.GetLatest("t").value().version, 1);
}

TEST(SchemaRegistryTest, LineageTransitiveDownstream) {
  SchemaRegistry registry;
  registry.AddLineage("topic_a", "job_1");
  registry.AddLineage("job_1", "topic_b");
  registry.AddLineage("topic_b", "olap_t");
  std::vector<std::string> down = registry.Downstream("topic_a");
  ASSERT_EQ(down.size(), 3u);
  EXPECT_EQ(down[0], "job_1");
  EXPECT_EQ(down[2], "olap_t");
  std::vector<std::string> up = registry.Upstream("topic_b");
  ASSERT_EQ(up.size(), 1u);
  EXPECT_EQ(up[0], "job_1");
}

TEST(SchemaRegistryTest, LineageCycleSafe) {
  SchemaRegistry registry;
  registry.AddLineage("a", "b");
  registry.AddLineage("b", "a");
  EXPECT_EQ(registry.Downstream("a").size(), 1u);  // terminates
}

}  // namespace
}  // namespace uberrt
