#include "compute/window_operator.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "storage/archive.h"

namespace uberrt::compute {
namespace {

RowSchema EventSchema() {
  return RowSchema({{"key", ValueType::kString},
                    {"v", ValueType::kDouble},
                    {"ts", ValueType::kInt}});
}

/// Captures emissions.
class CollectingEmitter : public Emitter {
 public:
  void Emit(Row row, TimestampMs event_time) override {
    rows.push_back(std::move(row));
    times.push_back(event_time);
  }
  std::vector<Row> rows;
  std::vector<TimestampMs> times;
};

TransformSpec AggSpec(WindowSpec window, int64_t lateness = 0) {
  TransformSpec spec;
  spec.kind = TransformSpec::Kind::kWindowAggregate;
  spec.name = "agg";
  spec.key_fields = {"key"};
  spec.window = window;
  spec.aggregates = {AggregateSpec::Count("n"), AggregateSpec::Sum("v", "s"),
                     AggregateSpec::Min("v", "lo"), AggregateSpec::Max("v", "hi"),
                     AggregateSpec::Avg("v", "avg")};
  spec.allowed_lateness_ms = lateness;
  return spec;
}

Element Record(const std::string& key, double v, TimestampMs ts) {
  return Element::Record({Value(key), Value(v), Value(ts)}, ts);
}

TEST(WindowAggregateOperatorTest, TumblingFiresOnceWithAllAggregates) {
  WindowAggregateOperator op(AggSpec(WindowSpec::Tumbling(100)), EventSchema());
  CollectingEmitter out;
  op.ProcessRecord(Record("a", 1.0, 10), &out);
  op.ProcessRecord(Record("a", 5.0, 20), &out);
  op.ProcessRecord(Record("a", 3.0, 99), &out);
  EXPECT_TRUE(out.rows.empty());
  EXPECT_EQ(op.LiveWindows(), 1);
  op.OnWatermark(100, &out);
  ASSERT_EQ(out.rows.size(), 1u);
  const Row& row = out.rows[0];
  // [key, window_start, n, s, lo, hi, avg]
  EXPECT_EQ(row[0].AsString(), "a");
  EXPECT_EQ(row[1].AsInt(), 0);
  EXPECT_EQ(row[2].AsInt(), 3);
  EXPECT_DOUBLE_EQ(row[3].AsDouble(), 9.0);
  EXPECT_DOUBLE_EQ(row[4].AsDouble(), 1.0);
  EXPECT_DOUBLE_EQ(row[5].AsDouble(), 5.0);
  EXPECT_DOUBLE_EQ(row[6].AsDouble(), 3.0);
  EXPECT_EQ(op.LiveWindows(), 0);
  EXPECT_EQ(op.StateBytes(), 0);  // fully reclaimed
}

TEST(WindowAggregateOperatorTest, NegativeTimestampsAssignCorrectWindows) {
  WindowAggregateOperator op(AggSpec(WindowSpec::Tumbling(100)), EventSchema());
  CollectingEmitter out;
  op.ProcessRecord(Record("a", 1.0, -50), &out);  // window [-100, 0)
  op.OnWatermark(0, &out);
  ASSERT_EQ(out.rows.size(), 1u);
  EXPECT_EQ(out.rows[0][1].AsInt(), -100);
}

TEST(WindowAggregateOperatorTest, SlidingWindowsOverlap) {
  // size 100, slide 50: each record lands in 2 windows.
  WindowAggregateOperator op(AggSpec(WindowSpec::Sliding(100, 50)), EventSchema());
  CollectingEmitter out;
  op.ProcessRecord(Record("a", 1.0, 60), &out);  // windows [0,100) and [50,150)
  op.OnWatermark(200, &out);
  ASSERT_EQ(out.rows.size(), 2u);
  std::set<int64_t> starts{out.rows[0][1].AsInt(), out.rows[1][1].AsInt()};
  EXPECT_TRUE(starts.count(0) == 1 && starts.count(50) == 1);
}

TEST(WindowAggregateOperatorTest, SessionWindowsMergeOnOverlap) {
  WindowAggregateOperator op(AggSpec(WindowSpec::Session(100)), EventSchema());
  CollectingEmitter out;
  // Two bursts per key: 10,50,90 (one session) then 400 (another session).
  op.ProcessRecord(Record("a", 1.0, 10), &out);
  op.ProcessRecord(Record("a", 1.0, 90), &out);
  op.ProcessRecord(Record("a", 1.0, 50), &out);  // bridges/merges
  op.ProcessRecord(Record("a", 1.0, 400), &out);
  EXPECT_EQ(op.LiveWindows(), 2);
  op.OnWatermark(kMaxWatermark, &out);
  ASSERT_EQ(out.rows.size(), 2u);
  // First session counts 3, second 1.
  std::map<int64_t, int64_t> by_start;
  for (const Row& row : out.rows) by_start[row[1].AsInt()] = row[2].AsInt();
  EXPECT_EQ(by_start[10], 3);
  EXPECT_EQ(by_start[400], 1);
}

TEST(WindowAggregateOperatorTest, SessionsArePerKey) {
  WindowAggregateOperator op(AggSpec(WindowSpec::Session(100)), EventSchema());
  CollectingEmitter out;
  op.ProcessRecord(Record("a", 1.0, 10), &out);
  op.ProcessRecord(Record("b", 1.0, 20), &out);  // overlapping time, other key
  EXPECT_EQ(op.LiveWindows(), 2);
  op.OnWatermark(kMaxWatermark, &out);
  EXPECT_EQ(out.rows.size(), 2u);
}

TEST(WindowAggregateOperatorTest, LatenessExtendsFiring) {
  WindowAggregateOperator op(AggSpec(WindowSpec::Tumbling(100), /*lateness=*/50),
                             EventSchema());
  CollectingEmitter out;
  op.ProcessRecord(Record("a", 1.0, 10), &out);
  op.OnWatermark(120, &out);  // end=100, fire at 150
  EXPECT_TRUE(out.rows.empty());
  // A late-but-allowed record still lands.
  op.ProcessRecord(Record("a", 2.0, 20), &out);
  EXPECT_EQ(op.late_dropped(), 0);
  op.OnWatermark(150, &out);
  ASSERT_EQ(out.rows.size(), 1u);
  EXPECT_EQ(out.rows[0][2].AsInt(), 2);
  // Beyond lateness: dropped.
  op.ProcessRecord(Record("a", 3.0, 30), &out);
  EXPECT_EQ(op.late_dropped(), 1);
}

TEST(WindowAggregateOperatorTest, SnapshotRestoreIsExact) {
  Rng rng(13);
  WindowAggregateOperator original(AggSpec(WindowSpec::Tumbling(1000)), EventSchema());
  CollectingEmitter sink;
  for (int i = 0; i < 500; ++i) {
    original.ProcessRecord(Record("k" + std::to_string(rng.Uniform(0, 20)),
                                  rng.Gaussian(10, 3), rng.Uniform(0, 10'000)),
                           &sink);
  }
  ASSERT_TRUE(sink.rows.empty());
  std::string blob = original.SnapshotState();

  WindowAggregateOperator restored(AggSpec(WindowSpec::Tumbling(1000)), EventSchema());
  ASSERT_TRUE(restored.RestoreState(blob).ok());
  EXPECT_EQ(restored.LiveWindows(), original.LiveWindows());
  EXPECT_EQ(restored.StateBytes(), original.StateBytes());

  CollectingEmitter a, b;
  original.OnWatermark(kMaxWatermark, &a);
  restored.OnWatermark(kMaxWatermark, &b);
  ASSERT_EQ(a.rows.size(), b.rows.size());
  auto sorter = [](const Row& x, const Row& y) {
    if (x[0].AsString() != y[0].AsString()) return x[0].AsString() < y[0].AsString();
    return x[1].AsInt() < y[1].AsInt();
  };
  std::sort(a.rows.begin(), a.rows.end(), sorter);
  std::sort(b.rows.begin(), b.rows.end(), sorter);
  EXPECT_EQ(a.rows, b.rows);
}

// Snapshot blobs written by the retired std::map-keyed implementation must
// restore into the flat-hash keyed state unchanged, and re-snapshotting must
// reproduce them byte for byte (rows sorted by (start, key) — the old map's
// iteration order). Guards checkpoint compatibility across the migration.
TEST(WindowAggregateOperatorTest, LegacyFormatBlobRoundTripsBitwise) {
  TransformSpec spec;
  spec.kind = TransformSpec::Kind::kWindowAggregate;
  spec.name = "agg";
  spec.key_fields = {"key"};
  spec.window = WindowSpec::Tumbling(100);
  spec.aggregates = {AggregateSpec::Count("n"), AggregateSpec::Sum("v", "s")};

  // Build the blob exactly as the std::map<WindowKey, WindowState> encoder
  // did: iterate (start, encoded key) in ascending order, one row per window
  // of [key, start, end, EncodeRow(key_values), (count,sum,min,max) x aggs].
  struct LegacyWindow {
    Row key_values;
    TimestampMs end;
    int64_t count;
    double sum;
  };
  std::map<std::pair<TimestampMs, std::string>, LegacyWindow> legacy;
  legacy[{0, EncodeRow({Value("b")})}] = {{Value("b")}, 100, 2, 7.0};
  legacy[{0, EncodeRow({Value("a")})}] = {{Value("a")}, 100, 3, 6.0};
  legacy[{100, EncodeRow({Value("a")})}] = {{Value("a")}, 200, 1, 4.0};
  std::vector<Row> blob_rows;
  for (const auto& [wk, ws] : legacy) {
    Row row{Value(wk.second), Value(static_cast<int64_t>(wk.first)),
            Value(static_cast<int64_t>(ws.end)), Value(EncodeRow(ws.key_values))};
    // Count accumulator: count only; min/max track the counted 1.0 samples.
    row.insert(row.end(), {Value(ws.count), Value(static_cast<double>(ws.count)),
                           Value(1.0), Value(1.0)});
    // Sum accumulator.
    row.insert(row.end(),
               {Value(ws.count), Value(ws.sum), Value(1.0), Value(ws.sum)});
    blob_rows.push_back(std::move(row));
  }
  std::string legacy_blob = storage::EncodeRowBatch(blob_rows);

  WindowAggregateOperator op(spec, EventSchema());
  ASSERT_TRUE(op.RestoreState(legacy_blob).ok());
  EXPECT_EQ(op.LiveWindows(), 3);
  EXPECT_EQ(op.SnapshotState(), legacy_blob);

  // The restored windows fire with the legacy counts, oldest start first.
  CollectingEmitter out;
  op.OnWatermark(kMaxWatermark, &out);
  ASSERT_EQ(out.rows.size(), 3u);
  EXPECT_EQ(out.rows[0][0].AsString(), "a");
  EXPECT_EQ(out.rows[0][1].AsInt(), 0);
  EXPECT_EQ(out.rows[0][2].AsInt(), 3);
  EXPECT_DOUBLE_EQ(out.rows[0][3].AsDouble(), 6.0);
  EXPECT_EQ(out.rows[1][0].AsString(), "b");
  EXPECT_EQ(out.rows[1][2].AsInt(), 2);
  EXPECT_EQ(out.rows[2][1].AsInt(), 100);
  EXPECT_EQ(out.rows[2][2].AsInt(), 1);
}

TEST(WindowAggregateOperatorTest, RestoreRejectsCorruptState) {
  WindowAggregateOperator op(AggSpec(WindowSpec::Tumbling(100)), EventSchema());
  EXPECT_FALSE(op.RestoreState("junk").ok());
}

TransformSpec JoinSpec(int64_t size = 1000) {
  TransformSpec spec;
  spec.kind = TransformSpec::Kind::kWindowJoin;
  spec.name = "join";
  spec.key_fields = {"key"};
  spec.window = WindowSpec::Tumbling(size);
  return spec;
}

RowSchema LeftSchema() {
  return RowSchema({{"key", ValueType::kString}, {"l", ValueType::kDouble}});
}
RowSchema RightSchema() {
  return RowSchema({{"key", ValueType::kString}, {"r", ValueType::kDouble}});
}

Element SideRecord(int side, const std::string& key, double v, TimestampMs ts) {
  Element e = Element::Record({Value(key), Value(v)}, ts);
  e.side = side;
  return e;
}

TEST(WindowJoinOperatorTest, EmitsCrossProductWithinKeyAndWindow) {
  WindowJoinOperator op(JoinSpec(), LeftSchema(), RightSchema());
  CollectingEmitter out;
  op.ProcessRecord(SideRecord(0, "a", 1.0, 10), &out);
  op.ProcessRecord(SideRecord(0, "a", 2.0, 20), &out);
  op.ProcessRecord(SideRecord(1, "a", 9.0, 30), &out);  // joins with both lefts
  EXPECT_EQ(out.rows.size(), 2u);
  // Different key: no match.
  op.ProcessRecord(SideRecord(1, "b", 7.0, 30), &out);
  EXPECT_EQ(out.rows.size(), 2u);
  // Different window: no match.
  op.ProcessRecord(SideRecord(1, "a", 8.0, 1500), &out);
  EXPECT_EQ(out.rows.size(), 2u);
  // Joined row: [key, l, r] (dup key deduped), time = max of sides.
  EXPECT_EQ(out.rows[0].size(), 3u);
  EXPECT_EQ(out.times[0], 30);
}

TEST(WindowJoinOperatorTest, WatermarkReclaimsBuffers) {
  WindowJoinOperator op(JoinSpec(1000), LeftSchema(), RightSchema());
  CollectingEmitter out;
  op.ProcessRecord(SideRecord(0, "a", 1.0, 10), &out);
  op.ProcessRecord(SideRecord(1, "a", 2.0, 20), &out);
  EXPECT_GT(op.StateBytes(), 0);
  op.OnWatermark(1000, &out);
  EXPECT_EQ(op.StateBytes(), 0);
  // Records for the expired window are late now.
  op.ProcessRecord(SideRecord(0, "a", 3.0, 30), &out);
  EXPECT_EQ(op.late_dropped(), 1);
}

TEST(WindowJoinOperatorTest, SnapshotRestorePreservesBuffers) {
  WindowJoinOperator original(JoinSpec(), LeftSchema(), RightSchema());
  CollectingEmitter sink;
  original.ProcessRecord(SideRecord(0, "a", 1.0, 10), &sink);
  original.ProcessRecord(SideRecord(0, "b", 2.0, 20), &sink);
  std::string blob = original.SnapshotState();

  WindowJoinOperator restored(JoinSpec(), LeftSchema(), RightSchema());
  ASSERT_TRUE(restored.RestoreState(blob).ok());
  EXPECT_EQ(restored.StateBytes(), original.StateBytes());
  CollectingEmitter out;
  restored.ProcessRecord(SideRecord(1, "a", 9.0, 30), &out);
  ASSERT_EQ(out.rows.size(), 1u);  // joins against the restored left buffer
  EXPECT_DOUBLE_EQ(out.rows[0][1].AsDouble(), 1.0);
}

TEST(WindowJoinOperatorTest, LegacyFormatBlobRoundTripsBitwise) {
  // One row per buffered record, buckets ascending by (start, encoded key),
  // left rows before right: [key, start, side, event_time, EncodeRow(row)] —
  // the retired std::map<BufferKey, Buffers> encoding, which the flat-hash
  // implementation must keep producing byte for byte.
  Row left_a{Value("a"), Value(1.0)};
  Row left_b{Value("b"), Value(2.0)};
  Row right_a{Value("a"), Value(9.0)};
  std::string key_a = EncodeRow({Value("a")});
  std::string key_b = EncodeRow({Value("b")});
  std::vector<Row> blob_rows;
  blob_rows.push_back({Value(key_a), Value(static_cast<int64_t>(0)),
                       Value(static_cast<int64_t>(0)), Value(static_cast<int64_t>(10)),
                       Value(EncodeRow(left_a))});
  blob_rows.push_back({Value(key_a), Value(static_cast<int64_t>(0)),
                       Value(static_cast<int64_t>(1)), Value(static_cast<int64_t>(30)),
                       Value(EncodeRow(right_a))});
  blob_rows.push_back({Value(key_b), Value(static_cast<int64_t>(0)),
                       Value(static_cast<int64_t>(0)), Value(static_cast<int64_t>(20)),
                       Value(EncodeRow(left_b))});
  std::string legacy_blob = storage::EncodeRowBatch(blob_rows);

  WindowJoinOperator op(JoinSpec(), LeftSchema(), RightSchema());
  ASSERT_TRUE(op.RestoreState(legacy_blob).ok());
  EXPECT_EQ(op.SnapshotState(), legacy_blob);

  // A new right record joins against the restored "a" left buffer only.
  CollectingEmitter out;
  op.ProcessRecord(SideRecord(1, "a", 5.0, 40), &out);
  ASSERT_EQ(out.rows.size(), 1u);
  EXPECT_DOUBLE_EQ(out.rows[0][1].AsDouble(), 1.0);
  EXPECT_DOUBLE_EQ(out.rows[0][2].AsDouble(), 5.0);
}

/// Property: for random streams, windowed counts from the operator equal a
/// brute-force reference computation.
class WindowCountPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WindowCountPropertyTest, MatchesBruteForce) {
  Rng rng(GetParam());
  const int64_t kWindow = 500;
  WindowAggregateOperator op(AggSpec(WindowSpec::Tumbling(kWindow)), EventSchema());
  CollectingEmitter out;
  std::map<std::pair<std::string, int64_t>, int64_t> reference;
  for (int i = 0; i < 2'000; ++i) {
    std::string key = "k" + std::to_string(rng.Uniform(0, 10));
    TimestampMs ts = rng.Uniform(0, 20'000);
    op.ProcessRecord(Record(key, 1.0, ts), &out);
    int64_t start = ts - ((ts % kWindow) + kWindow) % kWindow;
    reference[{key, start}]++;
  }
  op.OnWatermark(kMaxWatermark, &out);
  ASSERT_EQ(out.rows.size(), reference.size());
  for (const Row& row : out.rows) {
    auto key = std::make_pair(row[0].AsString(), row[1].AsInt());
    EXPECT_EQ(row[2].AsInt(), reference[key]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WindowCountPropertyTest,
                         ::testing::Values(1u, 7u, 42u, 1337u));

}  // namespace
}  // namespace uberrt::compute
