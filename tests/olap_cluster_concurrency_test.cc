// Concurrency stress suite for the OLAP cluster. Mirrors the stream broker
// suite: real threads hammer one cluster with queries, ingestion, table
// churn, archival drains and server kill/recover, and the whole file is an
// acceptance gate under -DUBERRT_SANITIZE=thread and =address builds. The
// pre-refactor cluster held one cluster-wide mutex for every operation, so
// queries could neither overlap each other nor proceed during ingestion;
// the tests here assert the new behaviour (shared_ptr table ownership,
// per-table reader/writer locks, scatter-gather on the shared executor).

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/executor.h"
#include "olap/cluster.h"
#include "stream/broker.h"

namespace uberrt::olap {
namespace {

using stream::Broker;
using stream::Message;
using stream::TopicConfig;

RowSchema RideSchema() {
  return RowSchema({{"ride_id", ValueType::kInt},
                    {"city", ValueType::kString},
                    {"fare", ValueType::kDouble},
                    {"ts", ValueType::kInt}});
}

class OlapClusterConcurrencyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    broker_ = std::make_unique<Broker>("c1");
    store_ = std::make_unique<storage::InMemoryObjectStore>();
    common::ExecutorOptions pool;
    pool.num_threads = 4;
    pool.name = "executor.olap_test";
    executor_ = std::make_unique<common::Executor>(pool);
    cluster_ = std::make_unique<OlapCluster>(broker_.get(), store_.get(),
                                             executor_.get());
    TopicConfig config;
    config.num_partitions = 8;
    ASSERT_TRUE(broker_->CreateTopic("rides", config).ok());
  }

  void ProduceRides(int count, int base = 0) {
    for (int i = 0; i < count; ++i) {
      Message m;
      m.key = "k" + std::to_string((base + i) % 16);
      m.value = EncodeRow({Value(int64_t{base} + i),
                           Value((base + i) % 2 == 0 ? "sf" : "nyc"),
                           Value(10.0 + (base + i) % 5),
                           Value(int64_t{1000} + base + i)});
      m.timestamp = 1000 + base + i;
      ASSERT_TRUE(broker_->Produce("rides", std::move(m)).ok());
    }
  }

  TableConfig RideTable(const std::string& name) {
    TableConfig config;
    config.name = name;
    config.schema = RideSchema();
    config.time_column = "ts";
    config.segment_rows_threshold = 64;
    config.index_config.inverted_columns = {"city"};
    return config;
  }

  static ClusterTableOptions FourServers() {
    ClusterTableOptions options;
    options.num_servers = 4;
    return options;
  }

  static OlapQuery GroupByCity() {
    OlapQuery query;
    query.group_by = {"city"};
    query.aggregations = {OlapAggregation::Count("rides"),
                          OlapAggregation::Sum("fare", "total")};
    query.order_by = "rides";
    return query;
  }

  std::unique_ptr<Broker> broker_;
  std::unique_ptr<storage::InMemoryObjectStore> store_;
  std::unique_ptr<common::Executor> executor_;
  std::unique_ptr<OlapCluster> cluster_;
};

// The headline assertion for the refactor: two queries must be *inside*
// Query() at the same time. The cluster counts in-flight queries in the
// olap.queries_executing gauge; a sampler thread must observe it at >= 2,
// which is impossible when a cluster-wide mutex serializes queries.
TEST_F(OlapClusterConcurrencyTest, QueriesOnDifferentTablesOverlap) {
  ProduceRides(2000);
  ASSERT_TRUE(cluster_->CreateTable(RideTable("a"), "rides", FourServers()).ok());
  ASSERT_TRUE(cluster_->CreateTable(RideTable("b"), "rides", FourServers()).ok());
  ASSERT_TRUE(cluster_->IngestAll("a").ok());
  ASSERT_TRUE(cluster_->IngestAll("b").ok());

  Gauge* executing = cluster_->metrics()->GetGauge("olap.queries_executing");
  std::atomic<bool> stop{false};
  std::atomic<int64_t> max_observed{0};
  std::thread sampler([&] {
    while (!stop.load()) {
      int64_t now = executing->value();
      int64_t seen = max_observed.load();
      while (now > seen && !max_observed.compare_exchange_weak(seen, now)) {
      }
    }
  });
  std::vector<std::thread> queriers;
  for (const std::string table : {"a", "b"}) {
    queriers.emplace_back([&, table] {
      OlapQuery query = GroupByCity();
      while (!stop.load()) {
        Result<OlapResult> result = cluster_->Query(table, query);
        ASSERT_TRUE(result.ok()) << result.status().ToString();
      }
    });
  }
  // Query until overlap is demonstrated (deadline-capped for slow machines).
  TimestampMs deadline = SystemClock::Instance()->NowMs() + 5000;
  while (max_observed.load() < 2 && SystemClock::Instance()->NowMs() < deadline) {
    SystemClock::Instance()->SleepMs(1);
  }
  stop.store(true);
  sampler.join();
  for (std::thread& t : queriers) t.join();
  EXPECT_GE(max_observed.load(), 2);
}

// Parallel scatter-gather must be a pure execution-strategy change: the
// same query on the same data returns identical rows with and without the
// executor (the gather indexes partials by server, so merge order is
// deterministic either way).
TEST_F(OlapClusterConcurrencyTest, ParallelAndSerialQueriesAgree) {
  ProduceRides(1500);
  ASSERT_TRUE(cluster_->CreateTable(RideTable("t"), "rides", FourServers()).ok());
  ASSERT_TRUE(cluster_->IngestAll("t").ok());
  ASSERT_TRUE(cluster_->ForceSeal("t").ok());

  OlapQuery query = GroupByCity();
  Result<OlapResult> parallel = cluster_->Query("t", query);
  ASSERT_TRUE(parallel.ok());
  cluster_->SetExecutor(nullptr);
  Result<OlapResult> serial = cluster_->Query("t", query);
  ASSERT_TRUE(serial.ok());

  ASSERT_EQ(parallel.value().rows.size(), serial.value().rows.size());
  for (size_t i = 0; i < serial.value().rows.size(); ++i) {
    ASSERT_EQ(parallel.value().rows[i].size(), serial.value().rows[i].size());
    for (size_t f = 0; f < serial.value().rows[i].size(); ++f) {
      EXPECT_EQ(parallel.value().rows[i][f].ToString(),
                serial.value().rows[i][f].ToString());
    }
  }
  EXPECT_EQ(parallel.value().stats.servers_queried,
            serial.value().stats.servers_queried);
  EXPECT_EQ(parallel.value().stats.rows_scanned, serial.value().stats.rows_scanned);
}

// DropTable while queries and ingestion are in flight: the shared_ptr keeps
// the detached table alive for in-flight callers, so the worst legal
// outcome is NotFound on the next call — never a crash or use-after-free.
TEST_F(OlapClusterConcurrencyTest, DropTableWhileQueryAndIngestInFlight) {
  ProduceRides(1000);
  ASSERT_TRUE(cluster_->CreateTable(RideTable("churn"), "rides", FourServers()).ok());
  std::atomic<bool> stop{false};
  std::atomic<int64_t> queries_ok{0};
  std::atomic<int64_t> ingests_ok{0};

  std::thread querier([&] {
    OlapQuery query = GroupByCity();
    while (!stop.load()) {
      Result<OlapResult> result = cluster_->Query("churn", query);
      // Valid outcomes: data (possibly from a just-detached table), NotFound.
      if (result.ok()) queries_ok.fetch_add(1);
    }
  });
  std::thread ingester([&] {
    while (!stop.load()) {
      Result<int64_t> n = cluster_->IngestOnce("churn", 64);
      if (n.ok()) ingests_ok.fetch_add(1);
    }
  });
  std::thread stats([&] {
    while (!stop.load()) {
      cluster_->NumRows("churn").ok();
      cluster_->MemoryBytes("churn").ok();
      cluster_->IngestLag("churn").ok();
      cluster_->ArchivalQueueDepth("churn");
    }
  });

  TimestampMs deadline = SystemClock::Instance()->NowMs() + 5000;
  for (int i = 0; i < 300 || queries_ok.load() == 0 || ingests_ok.load() == 0; ++i) {
    cluster_->DropTable("churn").ok();
    cluster_->CreateTable(RideTable("churn"), "rides", FourServers()).ok();
    if (i % 64 == 0) SystemClock::Instance()->SleepMs(1);
    if (SystemClock::Instance()->NowMs() > deadline) break;
  }
  stop.store(true);
  querier.join();
  ingester.join();
  stats.join();
  EXPECT_GT(queries_ok.load(), 0);
  EXPECT_GT(ingests_ok.load(), 0);
  EXPECT_TRUE(cluster_->HasTable("churn"));
}

// The everything-at-once soak and the suite's sanitizer acceptance gate:
// queries, ingestion pumps, seal + archival drains, server kill/recover and
// table churn all race on one cluster.
TEST_F(OlapClusterConcurrencyTest, FullStressSoak) {
  ProduceRides(500);
  ASSERT_TRUE(cluster_->CreateTable(RideTable("stable"), "rides", FourServers()).ok());
  ASSERT_TRUE(cluster_->CreateTable(RideTable("churn"), "rides", FourServers()).ok());
  ASSERT_TRUE(cluster_->IngestAll("stable").ok());
  std::atomic<bool> stop{false};
  std::atomic<int64_t> queries_ok{0};

  std::vector<std::thread> threads;
  for (int q = 0; q < 2; ++q) {
    threads.emplace_back([&, q] {  // queriers over both tables
      OlapQuery query = GroupByCity();
      while (!stop.load()) {
        if (cluster_->Query(q == 0 ? "stable" : "churn", query).ok()) {
          queries_ok.fetch_add(1);
        }
      }
    });
  }
  threads.emplace_back([&] {  // producer + ingestion pump
    int base = 500;
    while (!stop.load()) {
      ProduceRides(32, base);
      base += 32;
      cluster_->IngestOnce("stable", 64).ok();
      cluster_->IngestOnce("churn", 64).ok();
    }
  });
  threads.emplace_back([&] {  // seal + archival drain
    while (!stop.load()) {
      cluster_->ForceSeal("stable").ok();
      cluster_->DrainArchivalQueue("stable").ok();
      cluster_->DrainArchivalQueue("churn").ok();
    }
  });
  threads.emplace_back([&] {  // server kill/recover churn
    while (!stop.load()) {
      cluster_->KillServer("stable", 1).ok();
      cluster_->RecoverServer("stable", 1).ok();
    }
  });
  threads.emplace_back([&] {  // table churn
    while (!stop.load()) {
      cluster_->DropTable("churn").ok();
      cluster_->CreateTable(RideTable("churn"), "rides", FourServers()).ok();
    }
  });

  SystemClock::Instance()->SleepMs(400);
  stop.store(true);
  for (std::thread& t : threads) t.join();
  EXPECT_GT(queries_ok.load(), 0);
  EXPECT_TRUE(cluster_->HasTable("stable"));
}

}  // namespace
}  // namespace uberrt::olap
