// Regression suite for the upsert/recovery correctness fixes:
//   1. A stale primary-key location must never index into dropped sealed
//      segments — kill-then-ingest used to write out of bounds (ASan).
//   2. Recovery (peer and store path) must not resurrect rows that later
//      upserts overwrote: restored segments are replayed in seal order to
//      rebuild key locations and row validity.
//   3. A store outage in sync-archival mode must halt ingestion WITHOUT
//      starving queries: the blocking ArchivePut retry loop runs off the
//      table's reader/writer lock.
// Runs in the ASan/TSan concurrency gate.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/fault_injector.h"
#include "olap/cluster.h"
#include "stream/broker.h"

namespace uberrt::olap {
namespace {

using stream::Broker;
using stream::Message;
using stream::TopicConfig;

class OlapUpsertRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    broker_ = std::make_unique<Broker>("c1");
    store_ = std::make_unique<storage::InMemoryObjectStore>();
    store_->SetFaultInjector(&faults_);
    cluster_ = std::make_unique<OlapCluster>(broker_.get(), store_.get());
    cluster_->SetFaultInjector(&faults_);
    TopicConfig config;
    config.num_partitions = 4;
    ASSERT_TRUE(broker_->CreateTopic("fares", config).ok());
  }

  TableConfig FareTable() {
    TableConfig config;
    config.name = "fares_t";
    config.schema = RowSchema({{"ride_id", ValueType::kString},
                               {"fare", ValueType::kDouble},
                               {"status", ValueType::kString}});
    config.segment_rows_threshold = 10;
    config.upsert_enabled = true;
    config.primary_key_column = "ride_id";
    return config;
  }

  void Produce(const std::string& ride, double fare, const std::string& status) {
    Message m;
    m.key = ride;  // stream partitioned by primary key
    m.value = EncodeRow({Value(ride), Value(fare), Value(status)});
    m.timestamp = 1;
    ASSERT_TRUE(broker_->Produce("fares", std::move(m)).ok());
  }

  struct CountSum {
    int64_t count = 0;
    double sum = 0.0;
  };
  CountSum QueryCountSum() {
    OlapQuery query;
    query.aggregations = {OlapAggregation::Count("n"),
                          OlapAggregation::Sum("fare", "s")};
    Result<OlapResult> result = cluster_->Query("fares_t", query);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    if (!result.ok()) return {};
    return {result.value().rows[0][0].AsInt(), result.value().rows[0][1].AsDouble()};
  }

  common::FaultInjector faults_;
  std::unique_ptr<Broker> broker_;
  std::unique_ptr<storage::InMemoryObjectStore> store_;
  std::unique_ptr<OlapCluster> cluster_;
};

// Bugfix 1: KillServer drops the sealed segments but the key->location map
// used to keep entries pointing into them; the next upsert for such a key
// wrote through the stale index into a cleared vector (out-of-bounds under
// ASan). After the fix those locations are erased with the segments, and
// re-ingest + recovery converge to one live row per key.
TEST_F(OlapUpsertRecoveryTest, UpsertAfterKillDoesNotWriteThroughStaleLocations) {
  ClusterTableOptions options;
  options.num_servers = 2;
  options.replication_factor = 2;
  ASSERT_TRUE(cluster_->CreateTable(FareTable(), "fares", options).ok());
  for (int i = 0; i < 30; ++i) Produce("ride" + std::to_string(i), 10.0, "completed");
  ASSERT_TRUE(cluster_->IngestAll("fares_t").ok());
  // Seal so every key's location points into a sealed segment.
  ASSERT_TRUE(cluster_->ForceSeal("fares_t").ok());

  ASSERT_TRUE(cluster_->KillServer("fares_t", 0).ok());
  // Every key gets a correction — keys homed on server 0 now have locations
  // that (pre-fix) still pointed into the dropped segments.
  for (int i = 0; i < 30; ++i) Produce("ride" + std::to_string(i), 99.0, "corrected");
  ASSERT_TRUE(cluster_->IngestAll("fares_t").ok());

  CountSum after_corrections = QueryCountSum();
  EXPECT_EQ(after_corrections.count, 30);
  EXPECT_DOUBLE_EQ(after_corrections.sum, 30 * 99.0);

  // Recovery replays the restored segments under the buffered corrections:
  // still exactly one live row per key, all corrected.
  Result<RecoveryReport> report = cluster_->RecoverServer("fares_t", 0);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().segments_lost, 0);
  CountSum after_recovery = QueryCountSum();
  EXPECT_EQ(after_recovery.count, 30);
  EXPECT_DOUBLE_EQ(after_recovery.sum, 30 * 99.0);
}

// Bugfix 2a (peer path): replicas used to snapshot row validity at seal
// time, so corrections landing after replication were invisible to
// recovery and the overwritten rows resurrected. The replica now shares
// the live validity vector and recovery replays in seal order.
TEST_F(OlapUpsertRecoveryTest, PeerRecoveryDoesNotResurrectOverwrittenRows) {
  ClusterTableOptions options;
  options.num_servers = 2;
  options.replication_factor = 2;
  ASSERT_TRUE(cluster_->CreateTable(FareTable(), "fares", options).ok());
  for (int i = 0; i < 30; ++i) Produce("ride" + std::to_string(i), 10.0, "completed");
  ASSERT_TRUE(cluster_->IngestAll("fares_t").ok());
  ASSERT_TRUE(cluster_->ForceSeal("fares_t").ok());
  // Corrections AFTER the segments were sealed and replicated.
  for (int i = 0; i < 10; ++i) Produce("ride" + std::to_string(i), 99.0, "corrected");
  ASSERT_TRUE(cluster_->IngestAll("fares_t").ok());

  CountSum before = QueryCountSum();
  ASSERT_EQ(before.count, 30);
  ASSERT_DOUBLE_EQ(before.sum, 20 * 10.0 + 10 * 99.0);

  // Kill + recover with the store down: peers are the only source.
  faults_.SetDown("store", true);
  ASSERT_TRUE(cluster_->KillServer("fares_t", 0).ok());
  Result<RecoveryReport> report = cluster_->RecoverServer("fares_t", 0);
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report.value().segments_from_peers, 0);
  EXPECT_EQ(report.value().segments_lost, 0);
  faults_.SetDown("store", false);

  CountSum after = QueryCountSum();
  EXPECT_EQ(after.count, 30);
  EXPECT_DOUBLE_EQ(after.sum, 20 * 10.0 + 10 * 99.0);
  // The corrected rows did not come back as duplicates.
  OlapQuery point;
  point.select_columns = {"ride_id", "fare", "status"};
  point.filters = {FilterPredicate::Eq("ride_id", Value("ride3"))};
  Result<OlapResult> lookup = cluster_->Query("fares_t", point);
  ASSERT_TRUE(lookup.ok());
  ASSERT_EQ(lookup.value().rows.size(), 1u);
  EXPECT_DOUBLE_EQ(lookup.value().rows[0][1].AsDouble(), 99.0);
}

// Bugfix 2b (store path): archived blobs used to carry only the raw
// segment, so recovery from the store restored every row as valid and in
// arbitrary order. The archival frame now carries seal seq + validity, and
// FinishRestore replays segments in seal order so later upserts win even
// when the archived validity snapshot predates the correction.
TEST_F(OlapUpsertRecoveryTest, StoreRecoveryReplaysUpsertsInSealOrder) {
  ClusterTableOptions options;
  options.num_servers = 2;
  options.replication_factor = 1;  // no peers: recovery must use the store
  ASSERT_TRUE(cluster_->CreateTable(FareTable(), "fares", options).ok());
  for (int i = 0; i < 30; ++i) Produce("ride" + std::to_string(i), 10.0, "completed");
  ASSERT_TRUE(cluster_->IngestAll("fares_t").ok());
  ASSERT_TRUE(cluster_->ForceSeal("fares_t").ok());
  // Corrections land in LATER segments (sealed + archived as well).
  for (int i = 0; i < 10; ++i) Produce("ride" + std::to_string(i), 99.0, "corrected");
  ASSERT_TRUE(cluster_->IngestAll("fares_t").ok());
  ASSERT_TRUE(cluster_->ForceSeal("fares_t").ok());
  ASSERT_TRUE(cluster_->DrainArchivalQueue("fares_t").ok());

  ASSERT_TRUE(cluster_->KillServer("fares_t", 0).ok());
  Result<RecoveryReport> report = cluster_->RecoverServer("fares_t", 0);
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report.value().segments_from_store, 0);
  EXPECT_EQ(report.value().segments_lost, 0);

  CountSum after = QueryCountSum();
  EXPECT_EQ(after.count, 30);
  EXPECT_DOUBLE_EQ(after.sum, 20 * 10.0 + 10 * 99.0);

  // Recovery is idempotent: a second recover restores nothing twice.
  Result<RecoveryReport> again = cluster_->RecoverServer("fares_t", 0);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value().segments_from_store, 0);
  EXPECT_EQ(again.value().segments_from_peers, 0);
  CountSum after_again = QueryCountSum();
  EXPECT_EQ(after_again.count, 30);
  EXPECT_DOUBLE_EQ(after_again.sum, 20 * 10.0 + 10 * 99.0);
}

// Bugfix 3: in sync-archival mode the failed-backup retry loop (with real
// backoff and injected store latency) used to run while holding the table's
// exclusive lock, so every query stalled for the whole outage. Now the
// store I/O happens off rw_mu: ingestion halts, queries keep their
// millisecond latencies.
TEST_F(OlapUpsertRecoveryTest, StoreOutageBlocksIngestionButNotQueries) {
  TopicConfig topic;
  topic.num_partitions = 1;
  ASSERT_TRUE(broker_->CreateTopic("rides", topic).ok());
  TableConfig table;
  table.name = "rides_t";
  table.schema = RowSchema({{"ride_id", ValueType::kInt}, {"fare", ValueType::kDouble}});
  table.segment_rows_threshold = 50;
  ClusterTableOptions options;
  options.num_servers = 1;
  options.archival_mode = ArchivalMode::kSyncCentralized;
  ASSERT_TRUE(cluster_->CreateTable(table, "rides", options).ok());

  auto produce_ride = [&](int64_t id) {
    Message m;
    m.key = "k";
    m.value = EncodeRow({Value(id), Value(1.0)});
    m.timestamp = 1;
    ASSERT_TRUE(broker_->Produce("rides", std::move(m)).ok());
  };
  for (int i = 0; i < 40; ++i) produce_ride(i);
  ASSERT_TRUE(cluster_->IngestAll("rides_t").ok());  // queryable tail, no seal

  // Store hard-down AND slow: every Put attempt eats 100ms of injected
  // latency, so one blocked ingest pump (4 backed-off attempts) spends
  // >= 400ms in store I/O.
  common::FaultRule rule;
  rule.down = true;
  rule.added_latency_ms = 100;
  faults_.SetRule("store.put", rule);
  for (int i = 40; i < 200; ++i) produce_ride(i);

  std::atomic<bool> stop{false};
  std::thread ingester([&] {
    while (!stop.load()) {
      Result<int64_t> n = cluster_->IngestOnce("rides_t");
      if (!n.ok()) break;
    }
  });

  // Let the ingester reach the blocked-archival drain loop, then measure
  // query latency while the store outage is eating its retries.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  OlapQuery query;
  query.aggregations = {OlapAggregation::Count("n")};
  int64_t worst_ms = 0;
  for (int i = 0; i < 10; ++i) {
    auto start = std::chrono::steady_clock::now();
    Result<OlapResult> result = cluster_->Query("rides_t", query);
    auto elapsed_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                          std::chrono::steady_clock::now() - start)
                          .count();
    ASSERT_TRUE(result.ok());
    worst_ms = std::max<int64_t>(worst_ms, elapsed_ms);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  stop.store(true);
  ingester.join();

  // Ingestion halted at the seal boundary (paper: "all data ingestion came
  // to a halt")...
  Result<int64_t> lag = cluster_->IngestLag("rides_t");
  ASSERT_TRUE(lag.ok());
  EXPECT_GT(lag.value(), 0);
  // ...but no query ever waited anywhere near one 400ms+ blocked drain.
  EXPECT_LT(worst_ms, 250);

  // Store back up: ingestion resumes and fully drains.
  faults_.ClearRule("store.put");
  ASSERT_TRUE(cluster_->IngestAll("rides_t").ok());
  EXPECT_EQ(cluster_->IngestLag("rides_t").value(), 0);
  EXPECT_EQ(cluster_->NumRows("rides_t").value(), 200);
  EXPECT_FALSE(store_->List("segments/rides_t/").empty());
}

}  // namespace
}  // namespace uberrt::olap
