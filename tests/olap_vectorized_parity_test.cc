/// Randomized differential test: the vectorized segment engine must return
/// exactly the same rows as the row-at-a-time scalar oracle
/// (OlapQuery::force_scalar) for any schema, index configuration, filter
/// set, group-by and validity mask. Doubles are generated on a 0.25 grid at
/// modest magnitude so every sum is exact regardless of accumulation order,
/// making "exactly" mean bitwise equality — including through the star-tree
/// and through a serialize/deserialize round trip.
///
/// Runs at two fixed seeds (reproducible; also wired into the ASan and TSan
/// suites in ci.sh). Index archetypes rotate per iteration so both seeds
/// cover star-tree, sorted-range, inverted, pure-scan and validity paths
/// with bit-packing on and off.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "olap/segment.h"

namespace uberrt::olap {
namespace {

struct FuzzContext {
  std::shared_ptr<Segment> segment;
  std::vector<bool> validity;
  bool use_validity = false;
  int64_t k1_cardinality = 1;
  std::vector<std::string> k2_pool;
};

Row RandomRow(Rng& rng, const FuzzContext& ctx) {
  Row row;
  row.push_back(Value(rng.Uniform(0, ctx.k1_cardinality - 1)));
  if (rng.Chance(0.05)) {
    row.push_back(Value::Null());
  } else {
    row.push_back(Value(rng.Pick(ctx.k2_pool)));
  }
  // 0.25 grid: sums of a few thousand of these are exact in double, so
  // every accumulation order produces the same bits.
  row.push_back(Value(0.25 * static_cast<double>(rng.Uniform(0, 400))));
  if (rng.Chance(0.05)) {
    row.push_back(Value::Null());
  } else {
    row.push_back(Value(rng.Uniform(-50, 50)));
  }
  return row;
}

FuzzContext BuildRandomSegment(Rng& rng, int iteration) {
  FuzzContext ctx;
  ctx.k1_cardinality = rng.Uniform(1, 20);
  int64_t k2_cardinality = rng.Uniform(1, 50);
  for (int64_t i = 0; i < k2_cardinality; ++i) {
    ctx.k2_pool.push_back("s" + std::to_string(i));
  }
  RowSchema schema({{"k1", ValueType::kInt},
                    {"k2", ValueType::kString},
                    {"v1", ValueType::kDouble},
                    {"v2", ValueType::kInt}});
  size_t num_rows = static_cast<size_t>(rng.Uniform(0, 600));
  std::vector<Row> rows;
  rows.reserve(num_rows);
  for (size_t r = 0; r < num_rows; ++r) rows.push_back(RandomRow(rng, ctx));

  // Rotate through the index archetypes so a fixed iteration count still
  // covers every execution path.
  SegmentIndexConfig config;
  switch (iteration % 5) {
    case 0: break;  // pure scan
    case 1:
      config.inverted_columns = {"k1", "k2"};
      break;
    case 2:
      config.sorted_column = "k1";
      break;
    case 3:
      config.star_tree_dimensions = {"k1", "k2"};
      config.star_tree_metrics = {"v1", "v2"};
      break;
    case 4:
      config.inverted_columns = {"k2"};
      config.sorted_column = "k1";
      config.star_tree_dimensions = {"k1"};
      config.star_tree_metrics = {"v1"};
      break;
  }
  config.bit_packed_forward_index = iteration % 2 == 0;

  Result<std::shared_ptr<Segment>> segment =
      Segment::Build("fuzz", schema, std::move(rows), config);
  EXPECT_TRUE(segment.ok()) << segment.status().ToString();
  ctx.segment = segment.value();

  ctx.use_validity = rng.Chance(0.3);
  if (ctx.use_validity) {
    ctx.validity.assign(num_rows, true);
    for (size_t r = 0; r < num_rows; ++r) {
      if (rng.Chance(0.2)) ctx.validity[r] = false;
    }
  }
  return ctx;
}

FilterPredicate RandomPredicate(Rng& rng, const FuzzContext& ctx) {
  static const FilterPredicate::Op kOps[] = {
      FilterPredicate::Op::kEq, FilterPredicate::Op::kNe,
      FilterPredicate::Op::kLt, FilterPredicate::Op::kLe,
      FilterPredicate::Op::kGt, FilterPredicate::Op::kGe};
  FilterPredicate pred;
  pred.op = kOps[rng.Uniform(0, 5)];
  switch (rng.Uniform(0, 2)) {
    case 0:
      pred.column = "k1";
      // Values deliberately overshoot the cardinality so empty dictionary
      // ranges are exercised.
      pred.value = Value(rng.Uniform(-2, ctx.k1_cardinality + 2));
      break;
    case 1:
      pred.column = "k2";
      pred.value = rng.Chance(0.8) ? Value(rng.Pick(ctx.k2_pool)) : Value("zzz-missing");
      break;
    default:
      pred.column = "v1";
      pred.value = Value(0.25 * static_cast<double>(rng.Uniform(-10, 410)));
      break;
  }
  return pred;
}

OlapQuery RandomAggregateQuery(Rng& rng, const FuzzContext& ctx) {
  OlapQuery query;
  int num_filters = static_cast<int>(rng.Uniform(0, 3));
  for (int f = 0; f < num_filters; ++f) {
    query.filters.push_back(RandomPredicate(rng, ctx));
  }
  switch (rng.Uniform(0, 3)) {
    case 0: break;  // global aggregate
    case 1: query.group_by = {"k1"}; break;
    case 2: query.group_by = {"k2"}; break;
    default: query.group_by = {"k1", "k2"}; break;
  }
  query.aggregations.push_back(OlapAggregation::Count("n"));
  if (rng.Chance(0.8)) {
    query.aggregations.push_back(OlapAggregation::Sum("v1", "sum1"));
  }
  if (rng.Chance(0.5)) {
    query.aggregations.push_back(OlapAggregation::Min("v1", "lo"));
    query.aggregations.push_back(OlapAggregation::Max("v1", "hi"));
  }
  if (rng.Chance(0.5)) {
    query.aggregations.push_back(OlapAggregation::Avg("v2", "mean2"));
  }
  return query;
}

OlapQuery RandomSelectQuery(Rng& rng, const FuzzContext& ctx) {
  OlapQuery query;
  int num_filters = static_cast<int>(rng.Uniform(0, 2));
  for (int f = 0; f < num_filters; ++f) {
    query.filters.push_back(RandomPredicate(rng, ctx));
  }
  static const std::vector<std::vector<std::string>> kSelections = {
      {"k1"}, {"k2", "v1"}, {"k1", "k2", "v1", "v2"}, {"v2"}};
  query.select_columns = kSelections[static_cast<size_t>(rng.Uniform(0, 3))];
  static const int64_t kLimits[] = {-1, -1, 1, 7, 1000};
  query.limit = kLimits[rng.Uniform(0, 4)];
  return query;
}

/// Runs `query` through both engines on the same segment + validity and
/// requires bitwise-identical result rows.
void ExpectParity(const FuzzContext& ctx, OlapQuery query, int iteration,
                  const char* what) {
  const std::vector<bool>* validity = ctx.use_validity ? &ctx.validity : nullptr;
  OlapQueryStats vec_stats, scalar_stats;
  query.force_scalar = false;
  Result<OlapResult> vectorized = ctx.segment->Execute(query, validity, &vec_stats);
  query.force_scalar = true;
  Result<OlapResult> scalar = ctx.segment->Execute(query, validity, &scalar_stats);
  ASSERT_EQ(vectorized.ok(), scalar.ok())
      << what << " iteration " << iteration << ": status mismatch, vectorized="
      << vectorized.status().ToString() << " scalar=" << scalar.status().ToString();
  if (!vectorized.ok()) return;
  ASSERT_EQ(vectorized.value().rows, scalar.value().rows)
      << what << " iteration " << iteration << " diverged (star_tree_hits="
      << vec_stats.star_tree_hits << ", exec_batches=" << vec_stats.exec_batches
      << ")";
}

class VectorizedParityTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(VectorizedParityTest, VectorizedMatchesScalarOracleExactly) {
  Rng rng(GetParam());
  for (int iteration = 0; iteration < 60; ++iteration) {
    FuzzContext ctx = BuildRandomSegment(rng, iteration);
    ExpectParity(ctx, RandomAggregateQuery(rng, ctx), iteration, "aggregate");
    ExpectParity(ctx, RandomAggregateQuery(rng, ctx), iteration, "aggregate");
    ExpectParity(ctx, RandomSelectQuery(rng, ctx), iteration, "select");

    // Every fourth iteration also round-trips through the columnar blob so
    // the FromWords deserialization path serves the vectorized engine.
    if (iteration % 4 == 0) {
      Result<std::shared_ptr<Segment>> restored =
          Segment::Deserialize(ctx.segment->Serialize());
      ASSERT_TRUE(restored.ok()) << restored.status().ToString();
      FuzzContext restored_ctx = ctx;
      restored_ctx.segment = restored.value();
      ExpectParity(restored_ctx, RandomAggregateQuery(rng, ctx), iteration,
                   "restored-aggregate");
    }
  }
}

INSTANTIATE_TEST_SUITE_P(FixedSeeds, VectorizedParityTest,
                         ::testing::Values(0xC0FFEEULL, 0x5EEDF00DULL));

}  // namespace
}  // namespace uberrt::olap
