#include <gtest/gtest.h>

#include "common/clock.h"
#include "stream/broker.h"
#include "stream/consumer.h"
#include "stream/log.h"

namespace uberrt::stream {
namespace {

Message Msg(const std::string& key, const std::string& value, TimestampMs ts = 0) {
  Message m;
  m.key = key;
  m.value = value;
  m.timestamp = ts;
  return m;
}

TEST(PartitionLogTest, OffsetsAreDenseAndMonotonic) {
  PartitionLog log;
  EXPECT_EQ(log.Append(Msg("", "a")), 0);
  EXPECT_EQ(log.Append(Msg("", "b")), 1);
  EXPECT_EQ(log.BeginOffset(), 0);
  EXPECT_EQ(log.EndOffset(), 2);
  Result<std::vector<Message>> read = log.Read(0, 10);
  ASSERT_TRUE(read.ok());
  ASSERT_EQ(read.value().size(), 2u);
  EXPECT_EQ(read.value()[1].value, "b");
  EXPECT_EQ(read.value()[1].offset, 1);
}

TEST(PartitionLogTest, ReadBoundsChecked) {
  PartitionLog log;
  log.Append(Msg("", "a"));
  EXPECT_TRUE(log.Read(5, 1).status().code() == StatusCode::kOutOfRange);
  // Reading at end offset returns empty, not an error.
  Result<std::vector<Message>> at_end = log.Read(1, 1);
  ASSERT_TRUE(at_end.ok());
  EXPECT_TRUE(at_end.value().empty());
}

TEST(PartitionLogTest, AgeRetentionAdvancesBeginOffset) {
  PartitionLog log;
  for (int i = 0; i < 10; ++i) log.Append(Msg("", "m", /*ts=*/i * 100));
  RetentionPolicy policy;
  policy.max_age_ms = 500;
  int64_t dropped = log.ApplyRetention(policy, /*now=*/1000);
  // Messages with ts < 500 dropped: ts 0..400 -> 5 messages.
  EXPECT_EQ(dropped, 5);
  EXPECT_EQ(log.BeginOffset(), 5);
  EXPECT_EQ(log.EndOffset(), 10);
  EXPECT_TRUE(log.Read(0, 1).status().code() == StatusCode::kOutOfRange);
  EXPECT_EQ(log.Read(5, 1).value()[0].timestamp, 500);
}

TEST(PartitionLogTest, SizeRetentionKeepsNewest) {
  PartitionLog log;
  for (int i = 0; i < 100; ++i) log.Append(Msg("", std::string(100, 'x'), 1));
  RetentionPolicy policy;
  policy.max_bytes = 1500;
  log.ApplyRetention(policy, 0);
  EXPECT_LE(log.Bytes(), 1500);
  EXPECT_GT(log.Size(), 0);
  EXPECT_EQ(log.EndOffset(), 100);  // numbering preserved
}

class BrokerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    broker_ = std::make_unique<Broker>("c1");
    TopicConfig config;
    config.num_partitions = 4;
    ASSERT_TRUE(broker_->CreateTopic("t", config).ok());
  }
  std::unique_ptr<Broker> broker_;
};

TEST_F(BrokerTest, TopicLifecycle) {
  EXPECT_TRUE(broker_->HasTopic("t"));
  EXPECT_EQ(broker_->NumPartitions("t").value(), 4);
  EXPECT_TRUE(broker_->CreateTopic("t", TopicConfig()).IsAlreadyExists());
  EXPECT_TRUE(broker_->DeleteTopic("t").ok());
  EXPECT_FALSE(broker_->HasTopic("t"));
  EXPECT_TRUE(broker_->Produce("t", Msg("k", "v")).status().IsNotFound());
}

TEST_F(BrokerTest, KeyedMessagesLandOnOnePartition) {
  int32_t first = -1;
  for (int i = 0; i < 10; ++i) {
    Result<ProduceResult> r = broker_->Produce("t", Msg("same-key", "v"));
    ASSERT_TRUE(r.ok());
    if (first < 0) first = r.value().partition;
    EXPECT_EQ(r.value().partition, first);
  }
}

TEST_F(BrokerTest, KeylessMessagesRoundRobin) {
  std::set<int32_t> partitions;
  for (int i = 0; i < 8; ++i) {
    partitions.insert(broker_->Produce("t", Msg("", "v")).value().partition);
  }
  EXPECT_EQ(partitions.size(), 4u);
}

TEST_F(BrokerTest, UnavailableClusterBehaviour) {
  TopicConfig lossy;
  lossy.num_partitions = 1;
  lossy.lossless = false;
  ASSERT_TRUE(broker_->CreateTopic("surge", lossy).ok());
  broker_->SetAvailable(false);
  // Lossless topic: hard failure.
  EXPECT_TRUE(broker_->Produce("t", Msg("k", "v")).status().IsUnavailable());
  // Non-lossless topic: silently dropped (availability over consistency).
  Result<ProduceResult> dropped = broker_->Produce("surge", Msg("k", "v"));
  ASSERT_TRUE(dropped.ok());
  EXPECT_TRUE(dropped.value().dropped);
  // Fetch fails while down.
  EXPECT_TRUE(broker_->Fetch("t", 0, 0, 1).status().IsUnavailable());
  broker_->SetAvailable(true);
  EXPECT_TRUE(broker_->Produce("t", Msg("k", "v")).ok());
  // The dropped message is really gone.
  EXPECT_EQ(broker_->EndOffset("surge", 0).value(), 0);
}

TEST_F(BrokerTest, MissingTopicIsNotFoundEvenWhenUnavailable) {
  // Regression: an unavailable cluster used to answer Unavailable for every
  // produce, including topics that do not exist — so federation retry logic
  // would retry forever against a topic that will never exist. Existence is
  // checked first now.
  broker_->SetAvailable(false);
  EXPECT_TRUE(broker_->Produce("ghost", Msg("k", "v")).status().IsNotFound());
  EXPECT_TRUE(broker_->Fetch("ghost", 0, 0, 1).status().IsNotFound());
  EXPECT_TRUE(broker_->Replicate("ghost", Msg("k", "v")).IsNotFound());
  // Existing topics keep the availability semantics.
  EXPECT_TRUE(broker_->Produce("t", Msg("k", "v")).status().IsUnavailable());
  broker_->SetAvailable(true);
  EXPECT_TRUE(broker_->Produce("ghost", Msg("k", "v")).status().IsNotFound());
}

TEST_F(BrokerTest, RangeAssignmentIsContiguousAndBalanced) {
  // Kafka's range strategy: contiguous blocks in sorted-member order, the
  // first (partitions % members) members take one extra partition.
  ASSERT_TRUE(broker_->JoinGroup("g", "t", "a").ok());
  ASSERT_TRUE(broker_->JoinGroup("g", "t", "b").ok());
  ASSERT_TRUE(broker_->JoinGroup("g", "t", "c").ok());
  // 4 partitions, 3 members: a=[0,1], b=[2], c=[3].
  EXPECT_EQ(broker_->GetAssignment("g", "t", "a").value(),
            (std::vector<int32_t>{0, 1}));
  EXPECT_EQ(broker_->GetAssignment("g", "t", "b").value(),
            (std::vector<int32_t>{2}));
  EXPECT_EQ(broker_->GetAssignment("g", "t", "c").value(),
            (std::vector<int32_t>{3}));
  ASSERT_TRUE(broker_->LeaveGroup("g", "t", "b").ok());
  // 4 partitions, 2 members: contiguous halves.
  EXPECT_EQ(broker_->GetAssignment("g", "t", "a").value(),
            (std::vector<int32_t>{0, 1}));
  EXPECT_EQ(broker_->GetAssignment("g", "t", "c").value(),
            (std::vector<int32_t>{2, 3}));
}

TEST_F(BrokerTest, ConsumerGroupAssignmentCoversAllPartitions) {
  ASSERT_TRUE(broker_->JoinGroup("g", "t", "m1").ok());
  ASSERT_TRUE(broker_->JoinGroup("g", "t", "m2").ok());
  EXPECT_TRUE(broker_->JoinGroup("g", "t", "m1").IsAlreadyExists());
  std::set<int32_t> covered;
  for (const char* member : {"m1", "m2"}) {
    Result<std::vector<int32_t>> assigned = broker_->GetAssignment("g", "t", member);
    ASSERT_TRUE(assigned.ok());
    EXPECT_EQ(assigned.value().size(), 2u);
    for (int32_t p : assigned.value()) covered.insert(p);
  }
  EXPECT_EQ(covered.size(), 4u);
  int64_t generation = broker_->GroupGeneration("g", "t");
  ASSERT_TRUE(broker_->LeaveGroup("g", "t", "m2").ok());
  EXPECT_GT(broker_->GroupGeneration("g", "t"), generation);
  EXPECT_EQ(broker_->GetAssignment("g", "t", "m1").value().size(), 4u);
}

TEST_F(BrokerTest, CommittedOffsetsAndLag) {
  for (int i = 0; i < 10; ++i) broker_->Produce("t", Msg("", "v")).ok();
  EXPECT_TRUE(broker_->CommittedOffset("g", "t", 0).status().IsNotFound());
  EXPECT_EQ(broker_->ConsumerLag("g", "t").value(), 10);
  for (int32_t p = 0; p < 4; ++p) {
    int64_t end = broker_->EndOffset("t", p).value();
    broker_->CommitOffset("g", "t", p, end).ok();
  }
  EXPECT_EQ(broker_->ConsumerLag("g", "t").value(), 0);
}

TEST_F(BrokerTest, ConsumerPollsAllMessagesAndRebalances) {
  for (int i = 0; i < 20; ++i) {
    broker_->Produce("t", Msg("k" + std::to_string(i), "v" + std::to_string(i))).ok();
  }
  Consumer c1(broker_.get(), "g", "t", "m1");
  ASSERT_TRUE(c1.Subscribe().ok());
  Result<std::vector<Message>> batch = c1.Poll(100);
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch.value().size(), 20u);
  ASSERT_TRUE(c1.Commit().ok());

  // Second consumer joins: m1 gives up half the partitions but progress is
  // preserved via committed offsets.
  Consumer c2(broker_.get(), "g", "t", "m2");
  ASSERT_TRUE(c2.Subscribe().ok());
  for (int i = 0; i < 20; ++i) {
    broker_->Produce("t", Msg("k" + std::to_string(i), "w")).ok();
  }
  size_t total = c1.Poll(100).value().size() + c2.Poll(100).value().size();
  EXPECT_EQ(total, 20u);  // no duplicates, nothing lost
}

TEST_F(BrokerTest, ConsumerSurvivesRetentionTruncation) {
  TopicConfig config;
  config.num_partitions = 1;
  config.retention.max_age_ms = 100;
  ASSERT_TRUE(broker_->CreateTopic("short", config).ok());
  TimestampMs now = SystemClock::Instance()->NowMs();
  for (int i = 0; i < 5; ++i) {
    broker_->Produce("short", Msg("", "old", now - 10'000)).ok();
  }
  Consumer consumer(broker_.get(), "g", "short", "m");
  ASSERT_TRUE(consumer.Subscribe().ok());
  // Truncate everything before the consumer reads.
  broker_->ApplyRetention();
  for (int i = 0; i < 3; ++i) broker_->Produce("short", Msg("", "new", now)).ok();
  Result<std::vector<Message>> batch = consumer.Poll(100);
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ(batch.value().size(), 3u);  // jumped to the retained range
}

TEST(BrokerCoordinationTest, ClusterSizeCoordinationCost) {
  // The Section 4.1.1 model: per-produce work grows superlinearly with the
  // node count, so big clusters are slower per message.
  auto measure = [](int32_t nodes) {
    BrokerOptions options;
    options.num_nodes = nodes;
    options.coordination_model_enabled = true;
    Broker broker("c", options);
    TopicConfig config;
    config.num_partitions = 1;
    broker.CreateTopic("t", config).ok();
    TimestampMs start = SystemClock::Instance()->NowMs();
    for (int i = 0; i < 3000; ++i) {
      Message m;
      m.value = "x";
      broker.Produce("t", std::move(m)).ok();
    }
    return SystemClock::Instance()->NowMs() - start + 1;
  };
  // 600-node cluster should be clearly slower per message than 100-node.
  EXPECT_GT(measure(600), measure(100));
}

}  // namespace
}  // namespace uberrt::stream
