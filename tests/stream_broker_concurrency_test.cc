// Concurrency stress suite for the stream layer. Every test here runs real
// threads against one Broker (or federation) and is meant to be executed
// under -DUBERRT_SANITIZE=thread and =address builds: the pre-shared_ptr
// broker handed out raw Topic*/PartitionLog* pointers captured under its
// mutex and dereferenced after release, which these tests turn into
// use-after-free / data-race reports. On the fixed broker they pass clean.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "stream/broker.h"
#include "stream/consumer.h"
#include "stream/federation.h"
#include "stream/ureplicator.h"

namespace uberrt::stream {
namespace {

Message Msg(const std::string& key, const std::string& value) {
  Message m;
  m.key = key;
  m.value = value;
  m.timestamp = 1;
  return m;
}

TopicConfig Partitions(int32_t n) {
  TopicConfig config;
  config.num_partitions = n;
  return config;
}

// The headline regression: fetch/produce in flight while the topic is
// deleted and recreated. The pre-fix broker captured a PartitionLog* under
// mu_ and read it after release — a use-after-free once DeleteTopic dropped
// the unique_ptr. With shared_ptr topic ownership the in-flight operation
// keeps the log alive and simply races with the route flip, returning
// NotFound/OutOfRange at worst.
TEST(BrokerConcurrencyTest, DeleteTopicWhileFetchAndProduceInFlight) {
  Broker broker("c");
  ASSERT_TRUE(broker.CreateTopic("t", Partitions(2)).ok());
  std::atomic<bool> stop{false};
  std::atomic<int64_t> fetches{0};
  std::atomic<int64_t> produces{0};

  std::thread fetcher([&] {
    while (!stop.load()) {
      Result<std::vector<Message>> batch = broker.Fetch("t", 0, 0, 64);
      // Valid outcomes: data, empty, NotFound (deleted), OutOfRange.
      if (batch.ok()) fetches.fetch_add(1);
    }
  });
  std::thread producer([&] {
    while (!stop.load()) {
      if (broker.Produce("t", Msg("", "v")).ok()) produces.fetch_add(1);
    }
  });
  std::thread offsets([&] {
    while (!stop.load()) {
      broker.BeginOffset("t", 0).ok();
      broker.EndOffset("t", 1).ok();
      broker.Replicate("t", Msg("", "x")).ok();  // bad offset, still must not crash
    }
  });

  // Churn until the workers have demonstrably raced the lifecycle (or a
  // generous cap on slow machines — single-core schedulers may run the
  // churn loop to completion before a worker thread ever gets a slice).
  TimestampMs deadline = SystemClock::Instance()->NowMs() + 5000;
  for (int i = 0; i < 400 || (fetches.load() == 0 || produces.load() == 0);
       ++i) {
    broker.DeleteTopic("t").ok();
    broker.CreateTopic("t", Partitions(2)).ok();
    if (i % 64 == 0) SystemClock::Instance()->SleepMs(1);
    if (SystemClock::Instance()->NowMs() > deadline) break;
  }
  stop.store(true);
  fetcher.join();
  producer.join();
  offsets.join();
  EXPECT_GT(produces.load(), 0);
  EXPECT_GT(fetches.load(), 0);
  EXPECT_TRUE(broker.HasTopic("t"));
}

// ApplyRetention used to collect raw Topic* under the lock and walk them
// after release; deleting a topic mid-walk freed the partitions under it.
TEST(BrokerConcurrencyTest, RetentionThreadVsTopicChurn) {
  Broker broker("c");
  TopicConfig config = Partitions(2);
  config.retention.max_bytes = 64;  // aggressive truncation
  for (int t = 0; t < 4; ++t) {
    ASSERT_TRUE(
        broker.CreateTopic("t" + std::to_string(t), config).ok());
  }
  std::atomic<bool> stop{false};
  std::thread retention([&] {
    while (!stop.load()) broker.ApplyRetention();
  });
  std::thread producer([&] {
    int i = 0;
    while (!stop.load()) {
      broker.Produce("t" + std::to_string(i++ % 4), Msg("", "xxxxxxxxxxxxxxxx")).ok();
    }
  });
  for (int i = 0; i < 300; ++i) {
    std::string name = "t" + std::to_string(i % 4);
    broker.DeleteTopic(name).ok();
    broker.CreateTopic(name, config).ok();
  }
  stop.store(true);
  retention.join();
  producer.join();
}

// Produce and fetch on distinct topics must proceed concurrently (the old
// single coarse mutex serialized them); this is a liveness/correctness smoke
// that also hammers the split topic/group/offset locks from many threads.
TEST(BrokerConcurrencyTest, ParallelTrafficOnDistinctTopics) {
  Broker broker("c");
  constexpr int kTopics = 4;
  constexpr int kPerTopic = 2000;
  for (int t = 0; t < kTopics; ++t) {
    ASSERT_TRUE(broker.CreateTopic("t" + std::to_string(t), Partitions(1)).ok());
  }
  std::vector<std::thread> threads;
  for (int t = 0; t < kTopics; ++t) {
    threads.emplace_back([&broker, t] {
      std::string topic = "t" + std::to_string(t);
      for (int i = 0; i < kPerTopic; ++i) {
        ASSERT_TRUE(broker.Produce(topic, Msg("", "v")).ok());
        broker.CommitOffset("g", topic, 0, i).ok();
        broker.ConsumerLag("g", topic).ok();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (int t = 0; t < kTopics; ++t) {
    EXPECT_EQ(broker.EndOffset("t" + std::to_string(t), 0).value(), kPerTopic);
  }
}

// Consumer groups rebalance-looping: members join and leave while pollers
// read their assignments each cycle and the cluster flips availability.
// Exercises groups_mu_ against topics_mu_ and the atomic available_ flag.
TEST(BrokerConcurrencyTest, RebalanceLoopWithAvailabilityFlips) {
  Broker broker("c");
  ASSERT_TRUE(broker.CreateTopic("t", Partitions(8)).ok());
  for (int i = 0; i < 64; ++i) broker.Produce("t", Msg("", "v")).ok();
  std::atomic<bool> stop{false};

  std::vector<std::thread> pollers;
  for (int m = 0; m < 3; ++m) {
    pollers.emplace_back([&broker, &stop, m] {
      std::string member = "m" + std::to_string(m);
      while (!stop.load()) {
        Consumer consumer(&broker, "g", "t", member);
        if (!consumer.Subscribe().ok()) continue;
        for (int i = 0; i < 10 && !stop.load(); ++i) {
          Result<std::vector<Message>> batch = consumer.Poll(16);
          if (batch.ok() && !batch.value().empty()) consumer.Commit().ok();
          broker.GetAssignment("g", "t", member).ok();
          broker.GroupGeneration("g", "t");
        }
        consumer.Close().ok();
      }
    });
  }
  std::thread flipper([&] {
    while (!stop.load()) {
      broker.SetAvailable(false);
      broker.SetAvailable(true);
    }
  });
  std::thread producer([&] {
    while (!stop.load()) broker.Produce("t", Msg("k", "v")).ok();
  });

  SystemClock::Instance()->SleepMs(300);
  stop.store(true);
  for (std::thread& t : pollers) t.join();
  flipper.join();
  producer.join();
  EXPECT_GE(broker.GroupGeneration("g", "t"), 2);
}

// The everything-at-once soak: producers, rebalancing consumer groups,
// CreateTopic/DeleteTopic churn and a retention thread, all against the
// same broker. This is the suite's acceptance gate under TSan/ASan.
TEST(BrokerConcurrencyTest, FullStressSoak) {
  Broker broker("c");
  TopicConfig config = Partitions(4);
  config.retention.max_bytes = 4096;
  ASSERT_TRUE(broker.CreateTopic("stable", config).ok());
  ASSERT_TRUE(broker.CreateTopic("churn", config).ok());
  std::atomic<bool> stop{false};

  std::vector<std::thread> threads;
  for (int p = 0; p < 2; ++p) {
    threads.emplace_back([&broker, &stop, p] {
      int i = 0;
      while (!stop.load()) {
        broker.Produce(i++ % 2 == 0 ? "stable" : "churn",
                       Msg("k" + std::to_string(p), "payload")).ok();
      }
    });
  }
  threads.emplace_back([&broker, &stop] {  // group churn
    while (!stop.load()) {
      broker.JoinGroup("g", "stable", "a").ok();
      broker.GetAssignment("g", "stable", "a").ok();
      broker.JoinGroup("g", "stable", "b").ok();
      broker.GetAssignment("g", "stable", "b").ok();
      broker.LeaveGroup("g", "stable", "b").ok();
      broker.LeaveGroup("g", "stable", "a").ok();
    }
  });
  threads.emplace_back([&broker, &stop] {  // fetcher over both topics
    while (!stop.load()) {
      for (int p = 0; p < 4; ++p) {
        broker.Fetch("stable", p, 0, 32).ok();
        broker.Fetch("churn", p, 0, 32).ok();
      }
      broker.ConsumerLag("g", "stable").ok();
    }
  });
  threads.emplace_back([&broker, &stop] {  // retention
    while (!stop.load()) broker.ApplyRetention();
  });
  threads.emplace_back([&broker, &stop, &config] {  // topic churn
    while (!stop.load()) {
      broker.DeleteTopic("churn").ok();
      broker.CreateTopic("churn", config).ok();
    }
  });

  SystemClock::Instance()->SleepMs(400);
  stop.store(true);
  for (std::thread& t : threads) t.join();
  EXPECT_GT(broker.metrics()->GetCounter("broker.c.produced")->value(), 0);
}

// Federation-level race: produce traffic while the hosting cluster dies and
// topics fail over, plus GetCluster handles being used concurrently. The
// shared_ptr<Broker> route means a routed broker can never dangle mid-call.
TEST(FederationConcurrencyTest, ProduceDuringAvailabilityFlapAndFailover) {
  KafkaFederation federation;
  ASSERT_TRUE(federation.AddCluster(std::make_unique<Broker>("c1"), 8).ok());
  ASSERT_TRUE(federation.AddCluster(std::make_unique<Broker>("c2"), 8).ok());
  ASSERT_TRUE(federation.CreateTopic("t", Partitions(2)).ok());
  std::atomic<bool> stop{false};
  std::atomic<int64_t> produced{0};

  std::vector<std::thread> producers;
  for (int p = 0; p < 3; ++p) {
    producers.emplace_back([&] {
      while (!stop.load()) {
        if (federation.Produce("t", Msg("k", "v")).ok()) produced.fetch_add(1);
        federation.Fetch("t", 0, 0, 16).ok();
        federation.ConsumerLag("g", "t").ok();
      }
    });
  }
  std::thread flapper([&] {
    while (!stop.load()) {
      Result<std::string> host = federation.HostingCluster("t");
      if (!host.ok()) continue;
      Result<std::shared_ptr<Broker>> broker = federation.GetCluster(host.value());
      if (!broker.ok()) continue;
      broker.value()->SetAvailable(false);
      SystemClock::Instance()->SleepMs(1);
      broker.value()->SetAvailable(true);
    }
  });

  SystemClock::Instance()->SleepMs(300);
  stop.store(true);
  for (std::thread& t : producers) t.join();
  flapper.join();
  EXPECT_GT(produced.load(), 0);
}

// partitions_moved_total() is read without the replicator lock while
// rebalances bump it — it must be atomic (it was a plain int64_t).
TEST(UReplicatorConcurrencyTest, MovedCounterReadableDuringRebalances) {
  Broker source("src");
  Broker destination("dst");
  ASSERT_TRUE(source.CreateTopic("t", Partitions(8)).ok());
  for (int i = 0; i < 256; ++i) source.Produce("t", Msg("", "v")).ok();
  UReplicator replicator(&source, &destination, "r", nullptr);
  ASSERT_TRUE(replicator.AddTopic("t").ok());
  std::atomic<bool> stop{false};

  std::thread reader([&] {
    int64_t last = 0;
    while (!stop.load()) {
      int64_t now = replicator.partitions_moved_total();
      EXPECT_GE(now, last);  // monotone
      last = now;
    }
  });
  std::thread pumper([&] {
    while (!stop.load()) replicator.RunOnce().ok();
  });
  for (int i = 0; i < 200; ++i) {
    int32_t added = -1;
    {
      Result<int64_t> moved = replicator.AddWorker();
      ASSERT_TRUE(moved.ok());
      added = replicator.ActiveWorkers().back();
    }
    replicator.RemoveWorker(added).ok();
  }
  stop.store(true);
  reader.join();
  pumper.join();
}

}  // namespace
}  // namespace uberrt::stream
