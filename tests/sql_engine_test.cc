#include <gtest/gtest.h>

#include "olap/cluster.h"
#include "sql/engine.h"
#include "storage/archive.h"
#include "stream/broker.h"

namespace uberrt::sql {
namespace {

using olap::ClusterTableOptions;
using olap::OlapCluster;
using olap::TableConfig;
using storage::ArchiveTable;
using storage::InMemoryObjectStore;
using stream::Broker;
using stream::Message;
using stream::TopicConfig;

/// Fixture: a Pinot-like `orders` table (fresh data) + a Hive-like
/// `restaurants` dimension table (archived data) — the classic Section 4.3.2
/// federation target.
class PrestoEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    broker_ = std::make_unique<Broker>("c1");
    store_ = std::make_unique<InMemoryObjectStore>();
    cluster_ = std::make_unique<OlapCluster>(broker_.get(), store_.get());

    TopicConfig topic;
    topic.num_partitions = 2;
    ASSERT_TRUE(broker_->CreateTopic("orders_raw", topic).ok());
    TableConfig table;
    table.name = "orders";
    table.schema = RowSchema({{"order_id", ValueType::kInt},
                              {"restaurant_id", ValueType::kInt},
                              {"total", ValueType::kDouble},
                              {"status", ValueType::kString}});
    table.segment_rows_threshold = 40;
    table.index_config.inverted_columns = {"restaurant_id"};
    ASSERT_TRUE(cluster_->CreateTable(table, "orders_raw").ok());
    for (int i = 0; i < 100; ++i) {
      Message m;
      m.key = std::to_string(i % 5);
      m.value = EncodeRow({Value(static_cast<int64_t>(i)),
                           Value(static_cast<int64_t>(i % 5)),
                           Value(10.0 + i % 4),
                           Value(i % 10 == 0 ? std::string("abandoned")
                                             : std::string("delivered"))});
      m.timestamp = 1;
      ASSERT_TRUE(broker_->Produce("orders_raw", std::move(m)).ok());
    }
    ASSERT_TRUE(cluster_->IngestAll("orders").ok());

    // Hive-like dimension table.
    restaurants_ = std::make_unique<ArchiveTable>(
        store_.get(), "restaurants",
        RowSchema({{"restaurant_id", ValueType::kInt}, {"name", ValueType::kString},
                   {"city", ValueType::kString}}));
    std::vector<Row> dim;
    const char* cities[] = {"sf", "sf", "nyc", "nyc", "la"};
    for (int64_t r = 0; r < 5; ++r) {
      dim.push_back({Value(r), Value("rest" + std::to_string(r)),
                     Value(std::string(cities[r]))});
    }
    ASSERT_TRUE(restaurants_->AppendBatch("all", dim).ok());

    catalog_.Register("orders", std::make_unique<OlapConnector>(cluster_.get(), "orders"));
    catalog_.Register("restaurants",
                      std::make_unique<ArchiveConnector>(restaurants_.get()));
  }

  std::unique_ptr<Broker> broker_;
  std::unique_ptr<InMemoryObjectStore> store_;
  std::unique_ptr<OlapCluster> cluster_;
  std::unique_ptr<ArchiveTable> restaurants_;
  Catalog catalog_;
};

TEST_F(PrestoEngineTest, SimpleProjectionAndFilter) {
  PrestoEngine engine(&catalog_);
  Result<QueryResult> result = engine.Execute(
      "SELECT order_id, total FROM orders WHERE restaurant_id = 2 LIMIT 100");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().rows.size(), 20u);
  EXPECT_EQ(result.value().schema.FieldIndex("total"), 1);
}

TEST_F(PrestoEngineTest, AggregationWithGroupByOrderLimit) {
  PrestoEngine engine(&catalog_);
  Result<QueryResult> result = engine.Execute(
      "SELECT restaurant_id, COUNT(*) AS n, SUM(total) AS sales FROM orders "
      "WHERE status = 'delivered' GROUP BY restaurant_id ORDER BY sales DESC "
      "LIMIT 3");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result.value().rows.size(), 3u);
  // Descending by sales.
  EXPECT_GE(result.value().rows[0][2].ToNumeric(),
            result.value().rows[1][2].ToNumeric());
  // Restaurant 0 lost its i%10==0 orders to the filter.
  for (const Row& row : result.value().rows) {
    if (row[0].AsInt() == 0) {
      EXPECT_EQ(row[1].AsInt(), 10);
    } else {
      EXPECT_EQ(row[1].AsInt(), 20);
    }
  }
}

TEST_F(PrestoEngineTest, PushdownLevelsAgreeButMoveDifferentAmounts) {
  const std::string sql =
      "SELECT restaurant_id, COUNT(*) AS n FROM orders "
      "WHERE restaurant_id = 1 GROUP BY restaurant_id";
  PrestoEngine none(&catalog_, PushdownLevel::kNone);
  PrestoEngine predicate(&catalog_, PushdownLevel::kPredicate);
  PrestoEngine full(&catalog_, PushdownLevel::kFull);

  Result<QueryResult> r_none = none.Execute(sql);
  Result<QueryResult> r_pred = predicate.Execute(sql);
  Result<QueryResult> r_full = full.Execute(sql);
  ASSERT_TRUE(r_none.ok());
  ASSERT_TRUE(r_pred.ok());
  ASSERT_TRUE(r_full.ok());
  // Identical answers.
  ASSERT_EQ(r_none.value().rows.size(), 1u);
  EXPECT_EQ(r_none.value().rows, r_pred.value().rows);
  EXPECT_EQ(r_none.value().rows, r_full.value().rows);
  EXPECT_EQ(r_none.value().rows[0][1].AsInt(), 20);
  // Data movement strictly shrinks with pushdown.
  EXPECT_EQ(r_none.value().stats.rows_fetched, 100);   // full scan
  EXPECT_EQ(r_pred.value().stats.rows_fetched, 20);    // filtered at source
  EXPECT_EQ(r_full.value().stats.rows_fetched, 1);     // aggregated at source
  EXPECT_FALSE(r_none.value().stats.aggregation_pushed);
  EXPECT_FALSE(r_pred.value().stats.aggregation_pushed);
  EXPECT_TRUE(r_full.value().stats.aggregation_pushed);
}

TEST_F(PrestoEngineTest, JoinPinotWithHiveDimensionTable) {
  PrestoEngine engine(&catalog_);
  Result<QueryResult> result = engine.Execute(
      "SELECT r.city, SUM(o.total) AS sales FROM orders o "
      "JOIN restaurants r ON o.restaurant_id = r.restaurant_id "
      "GROUP BY r.city ORDER BY sales DESC");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result.value().rows.size(), 3u);  // sf, nyc, la
  double total = 0;
  for (const Row& row : result.value().rows) total += row[1].ToNumeric();
  // Every order joined exactly once: sum of all totals.
  double expected = 0;
  for (int i = 0; i < 100; ++i) expected += 10.0 + i % 4;
  EXPECT_DOUBLE_EQ(total, expected);
}

TEST_F(PrestoEngineTest, SubqueryFeedsOuterQuery) {
  PrestoEngine engine(&catalog_);
  Result<QueryResult> result = engine.Execute(
      "SELECT city FROM (SELECT r.city AS city, COUNT(*) AS n FROM orders o "
      "JOIN restaurants r ON o.restaurant_id = r.restaurant_id GROUP BY r.city) t "
      "WHERE n >= 40 ORDER BY city ASC");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // sf: restaurants 0,1 -> 40 orders; nyc: 2,3 -> 40; la: 1 restaurant -> 20.
  ASSERT_EQ(result.value().rows.size(), 2u);
  EXPECT_EQ(result.value().rows[0][0].AsString(), "nyc");
  EXPECT_EQ(result.value().rows[1][0].AsString(), "sf");
}

TEST_F(PrestoEngineTest, HavingFiltersAggregatedRows) {
  PrestoEngine engine(&catalog_, PushdownLevel::kPredicate);
  Result<QueryResult> result = engine.Execute(
      "SELECT status, COUNT(*) AS n FROM orders GROUP BY status HAVING n > 50");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result.value().rows.size(), 1u);
  EXPECT_EQ(result.value().rows[0][0].AsString(), "delivered");
}

TEST_F(PrestoEngineTest, ExpressionsInSelectList) {
  PrestoEngine engine(&catalog_);
  Result<QueryResult> result = engine.Execute(
      "SELECT order_id, total * 2 AS doubled FROM orders WHERE order_id < 3 "
      "ORDER BY order_id ASC");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_EQ(result.value().rows.size(), 3u);
  EXPECT_DOUBLE_EQ(result.value().rows[0][1].ToNumeric(), 20.0);
}

TEST_F(PrestoEngineTest, ErrorsSurfaceCleanly) {
  PrestoEngine engine(&catalog_);
  EXPECT_FALSE(engine.Execute("SELECT x FROM missing_table").ok());
  EXPECT_FALSE(engine.Execute("SELECT missing_col FROM orders").ok());
  EXPECT_FALSE(engine
                   .Execute("SELECT COUNT(*) FROM orders GROUP BY "
                            "TUMBLE(ts, INTERVAL '1' MINUTE)")
                   .ok());  // streaming windows belong to FlinkSQL
  EXPECT_FALSE(engine.Execute("SELECT status, COUNT(*) FROM orders").ok());
}

TEST_F(PrestoEngineTest, GlobalAggregateOverEmptyMatchIsZero) {
  PrestoEngine engine(&catalog_);
  Result<QueryResult> result =
      engine.Execute("SELECT COUNT(*) AS n FROM orders WHERE restaurant_id = 777");
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result.value().rows.size(), 1u);
  EXPECT_EQ(result.value().rows[0][0].AsInt(), 0);
}

}  // namespace
}  // namespace uberrt::sql
