#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/clock.h"
#include "stream/broker.h"
#include "stream/consumer.h"
#include "stream/log.h"
#include "stream/producer.h"
#include "stream/wire.h"

namespace uberrt::stream {
namespace {

Message Msg(const std::string& key, const std::string& value, TimestampMs ts = 1) {
  Message m;
  m.key = key;
  m.value = value;
  m.timestamp = ts;
  return m;
}

wire::EncodedBatch Batch(const std::vector<Message>& messages) {
  wire::BatchBuilder builder;
  for (const Message& m : messages) builder.Add(m);
  return builder.Finish();
}

// --- frame format -----------------------------------------------------------

TEST(WireTest, FrameSizeMatchesEncodedBytes) {
  Message m = Msg("key", "some value", 42);
  m.headers["uid"] = "abc-123";
  m.headers["service"] = "rides";
  std::string buf;
  wire::AppendFrame(buf, m);
  EXPECT_EQ(buf.size(), m.FrameSize());
  // And the deprecated alias agrees (the old flat-24 formula did not).
  EXPECT_EQ(m.ByteSize(), m.FrameSize());

  Message empty;
  std::string buf2;
  wire::AppendFrame(buf2, empty);
  EXPECT_EQ(buf2.size(), empty.FrameSize());
  EXPECT_EQ(buf2.size(), 4 + wire::kMinFrameLen);
}

TEST(WireTest, MessageRoundTripsThroughFrame) {
  Message m = Msg("k1", "v1", 77);
  m.headers["uid"] = "u-9";
  m.headers["tier"] = "1";
  wire::EncodedBatch batch = Batch({m});
  Result<wire::BatchReader> reader = wire::BatchReader::Open(batch.data);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  EXPECT_EQ(reader.value().record_count(), 1u);
  EXPECT_EQ(reader.value().max_timestamp(), 77);
  Result<wire::MessageView> view = reader.value().Next();
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(view.value().key, "k1");
  EXPECT_EQ(view.value().value, "v1");
  EXPECT_EQ(view.value().timestamp, 77);
  EXPECT_EQ(view.value().header_count, 2u);
  std::string_view header;
  ASSERT_TRUE(view.value().GetHeader("uid", &header));
  EXPECT_EQ(header, "u-9");
  EXPECT_FALSE(view.value().GetHeader("absent", &header));
  Message back = view.value().ToMessage();
  EXPECT_EQ(back.key, m.key);
  EXPECT_EQ(back.value, m.value);
  EXPECT_EQ(back.headers, m.headers);
}

TEST(WireTest, CorruptedPayloadFailsCrc) {
  wire::EncodedBatch batch = Batch({Msg("k", "payload-bytes", 5)});
  ASSERT_TRUE(wire::ValidateBatch(batch.data).ok());
  // Flip one payload byte: the CRC must catch it.
  std::string corrupted = batch.data;
  corrupted[wire::kBatchHeaderSize + 10] ^= 0x01;
  EXPECT_TRUE(wire::ValidateBatch(corrupted).IsCorruption());
  // And a corrupted batch is rejected before any log state changes.
  PartitionLog log;
  wire::EncodedBatch bad = batch;
  bad.data = corrupted;
  EXPECT_TRUE(log.AppendBatch(bad).status().IsCorruption());
  EXPECT_EQ(log.EndOffset(), 0);
}

TEST(WireTest, BadMagicAndTruncationRejected) {
  wire::EncodedBatch batch = Batch({Msg("k", "v", 5)});
  std::string bad_magic = batch.data;
  bad_magic[0] = 0x00;
  EXPECT_FALSE(wire::ValidateBatch(bad_magic).ok());
  EXPECT_FALSE(wire::ValidateBatch(batch.data.substr(0, 10)).ok());
  EXPECT_FALSE(wire::ValidateBatch(batch.data.substr(0, batch.data.size() - 1)).ok());
}

// --- partition log ----------------------------------------------------------

TEST(StreamLogTest, AppendBatchAssignsDenseOffsetsAcrossBatches) {
  PartitionLog log;
  Result<int64_t> first = log.AppendBatch(Batch({Msg("", "a"), Msg("", "b")}));
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first.value(), 0);
  // Single-message compatibility append interleaves with batches.
  EXPECT_EQ(log.Append(Msg("", "c")), 2);
  Result<int64_t> second = log.AppendBatch(Batch({Msg("", "d")}));
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.value(), 3);
  EXPECT_EQ(log.EndOffset(), 4);
  Result<FetchedBatch> views = log.ReadViews(0, 10);
  ASSERT_TRUE(views.ok());
  ASSERT_EQ(views.value().size(), 4u);
  const char* expected[] = {"a", "b", "c", "d"};
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(views.value().messages[i].offset, i);
    EXPECT_EQ(views.value().messages[i].value, expected[i]);
  }
}

TEST(StreamLogTest, OffsetContinuityAcrossTruncation) {
  PartitionLog log;
  for (int i = 0; i < 10; ++i) log.Append(Msg("", "m" + std::to_string(i), 100 + i));
  RetentionPolicy policy;
  policy.max_age_ms = 5;
  ASSERT_EQ(log.ApplyRetention(policy, /*now=*/110), 5);  // ts 100..104 dropped
  EXPECT_EQ(log.BeginOffset(), 5);
  EXPECT_EQ(log.EndOffset(), 10);
  // Offsets are never renumbered: message 7 is still at offset 7.
  Result<FetchedBatch> views = log.ReadViews(7, 1);
  ASSERT_TRUE(views.ok());
  ASSERT_EQ(views.value().size(), 1u);
  EXPECT_EQ(views.value().messages[0].value, "m7");
  // Truncated-away and beyond-end offsets are OutOfRange; appends continue
  // from the preserved numbering.
  EXPECT_TRUE(log.ReadViews(4, 1).status().code() == StatusCode::kOutOfRange);
  EXPECT_TRUE(log.ReadViews(11, 1).status().code() == StatusCode::kOutOfRange);
  EXPECT_EQ(log.Append(Msg("", "next")), 10);
}

TEST(StreamLogTest, AppendWithOffsetRejectsGaps) {
  PartitionLog log;
  Message m = Msg("", "a");
  m.offset = 0;
  ASSERT_TRUE(log.AppendWithOffset(m).ok());
  Message gap = Msg("", "b");
  gap.offset = 5;  // skips 1..4
  EXPECT_EQ(log.AppendWithOffset(gap).code(), StatusCode::kInvalidArgument);
  Message stale = Msg("", "c");
  stale.offset = 0;  // already taken
  EXPECT_EQ(log.AppendWithOffset(stale).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(log.EndOffset(), 1);
}

TEST(StreamLogTest, ViewsSurviveRetentionViaPins) {
  PartitionLogOptions options;
  options.segment_bytes = 64;  // force an arena per batch
  PartitionLog log(options);
  log.AppendBatch(Batch({Msg("k0", "first-batch-value", 10)})).value();
  log.AppendBatch(Batch({Msg("k1", "second-batch-value", 20)})).value();
  Result<FetchedBatch> fetched = log.ReadViews(0, 10);
  ASSERT_TRUE(fetched.ok());
  ASSERT_EQ(fetched.value().size(), 2u);
  // Retention truncates everything the views point at...
  RetentionPolicy policy;
  policy.max_age_ms = 1;
  ASSERT_EQ(log.ApplyRetention(policy, /*now=*/1000), 2);
  EXPECT_EQ(log.BeginOffset(), 2);
  // ...but the FetchedBatch pins the arena segments, so the borrowed views
  // stay valid until the batch is destroyed.
  EXPECT_EQ(fetched.value().messages[0].value, "first-batch-value");
  EXPECT_EQ(fetched.value().messages[1].value, "second-batch-value");
  EXPECT_EQ(fetched.value().messages[1].ToMessage().key, "k1");
}

TEST(StreamLogTest, BytesTracksEncodedBatchSizes) {
  PartitionLog log;
  EXPECT_EQ(log.Bytes(), 0);
  Message m = Msg("key", "value", 3);
  m.headers["uid"] = "u";
  wire::EncodedBatch batch = Batch({m, m});
  log.AppendBatch(batch).value();
  EXPECT_EQ(log.Bytes(), static_cast<int64_t>(batch.bytes()));
  EXPECT_EQ(batch.bytes(), wire::kBatchHeaderSize + 2 * m.FrameSize());
  // Retention accounting returns to zero when everything is truncated.
  RetentionPolicy policy;
  policy.max_age_ms = 1;
  log.ApplyRetention(policy, 1000);
  EXPECT_EQ(log.Bytes(), 0);
}

// --- retention bugfix regressions -------------------------------------------

TEST(StreamLogTest, SizeRetentionNeverDropsNewestBatch) {
  PartitionLog log;
  // A single batch far larger than the budget must survive: an acked produce
  // is never truncated by its own arrival.
  log.AppendBatch(Batch({Msg("", std::string(4096, 'x'), 1)})).value();
  RetentionPolicy policy;
  policy.max_bytes = 100;
  EXPECT_EQ(log.ApplyRetention(policy, 0), 0);
  EXPECT_EQ(log.Size(), 1);
  // Once a newer batch arrives, the old oversized one may go, but the newest
  // again stays even though it also exceeds the budget on its own.
  log.AppendBatch(Batch({Msg("", std::string(4096, 'y'), 2)})).value();
  EXPECT_EQ(log.ApplyRetention(policy, 0), 1);
  EXPECT_EQ(log.BeginOffset(), 1);
  EXPECT_EQ(log.Size(), 1);
  EXPECT_EQ(log.ReadViews(1, 1).value().messages[0].value[0], 'y');
}

TEST(StreamLogTest, AgeRetentionUsesMonotoneWatermark) {
  PartitionLogOptions options;
  options.segment_bytes = 64;  // one arena per batch
  PartitionLog log(options);
  // Fresh data first, then a late record whose event timestamp is ancient.
  log.AppendBatch(Batch({Msg("", std::string(64, 'a'), 10000)})).value();
  log.AppendBatch(Batch({Msg("", "late", 10)})).value();
  // Drop the first batch via size retention so the late record is at the
  // front with its own timestamp ancient but its watermark fresh.
  RetentionPolicy size_policy;
  size_policy.max_bytes = 50;
  ASSERT_EQ(log.ApplyRetention(size_policy, 0), 1);
  ASSERT_EQ(log.BeginOffset(), 1);
  // Old semantics compared the record's own timestamp (10) and would expire
  // it here; the monotone watermark (10000) keeps it alive as long as the
  // data appended around it.
  RetentionPolicy age_policy;
  age_policy.max_age_ms = 500;
  EXPECT_EQ(log.ApplyRetention(age_policy, /*now=*/9000), 0);
  EXPECT_EQ(log.Size(), 1);
  // And it expires with its append cohort, not its event timestamp.
  EXPECT_EQ(log.ApplyRetention(age_policy, /*now=*/10501), 1);
  EXPECT_EQ(log.Size(), 0);
}

TEST(StreamLogTest, AgeRetentionStrictlyByAppendOrder) {
  PartitionLogOptions options;
  options.segment_bytes = 16;  // one arena per batch
  PartitionLog log(options);
  // Timestamps out of order across appends: 100, 5000, 300.
  log.AppendBatch(Batch({Msg("", "a", 100)})).value();
  log.AppendBatch(Batch({Msg("", "b", 5000)})).value();
  log.AppendBatch(Batch({Msg("", "c", 300)})).value();
  RetentionPolicy policy;
  policy.max_age_ms = 1000;
  // Threshold 4000: only the first batch's watermark (100) is expired. The
  // third batch (own ts 300, watermark 5000) is fenced by append order.
  EXPECT_EQ(log.ApplyRetention(policy, /*now=*/5000), 1);
  EXPECT_EQ(log.BeginOffset(), 1);
  EXPECT_EQ(log.Size(), 2);
  // Threshold 5500: everything behind the watermark expires together.
  EXPECT_EQ(log.ApplyRetention(policy, /*now=*/6500), 2);
  EXPECT_EQ(log.Size(), 0);
}

// --- batching producer / zero-copy consumer end to end ----------------------

TEST(StreamLogTest, BatchingProducerRoundTripsThroughBroker) {
  SimulatedClock clock(1000);
  Broker broker("c1", BrokerOptions{}, &clock);
  TopicConfig config;
  config.num_partitions = 2;
  ASSERT_TRUE(broker.CreateTopic("t", config).ok());

  BatchingProducerOptions options;
  options.batch_records = 8;
  options.linger_ms = -1;  // flush on size or explicitly
  BatchingProducer producer(&broker, "t", options, &clock);
  for (int i = 0; i < 100; ++i) {
    Message m = Msg("key" + std::to_string(i), "value" + std::to_string(i));
    m.headers["uid"] = "u" + std::to_string(i);
    ASSERT_TRUE(producer.Produce(m).ok());
  }
  ASSERT_TRUE(producer.Flush().ok());
  EXPECT_EQ(producer.produced(), 100);
  EXPECT_EQ(producer.buffered(), 0);
  // Batching amortization actually happened: far fewer batches than records.
  EXPECT_LT(producer.batches_flushed(), 30);

  Consumer consumer(&broker, "g", "t", "m1");
  ASSERT_TRUE(consumer.Subscribe().ok());
  size_t got = 0;
  std::map<std::string, std::string> seen;  // key -> value
  for (int i = 0; i < 50 && got < 100; ++i) {
    Result<FetchedBatch> batch = consumer.PollViews(32);
    ASSERT_TRUE(batch.ok()) << batch.status().ToString();
    for (const wire::MessageView& v : batch.value().messages) {
      EXPECT_GE(v.partition, 0);
      EXPECT_LT(v.partition, 2);
      std::string_view uid;
      EXPECT_TRUE(v.GetHeader("uid", &uid));
      seen[std::string(v.key)] = std::string(v.value);
    }
    got += batch.value().size();
  }
  EXPECT_EQ(got, 100u);
  ASSERT_EQ(seen.size(), 100u);
  EXPECT_EQ(seen["key42"], "value42");
}

TEST(StreamLogTest, LingerBudgetFlushesSparseTraffic) {
  SimulatedClock clock(0);
  Broker broker("c1", BrokerOptions{}, &clock);
  TopicConfig config;
  config.num_partitions = 1;
  ASSERT_TRUE(broker.CreateTopic("t", config).ok());

  BatchingProducerOptions options;
  options.batch_records = 1000;  // never flush on size in this test
  options.linger_ms = 5;
  BatchingProducer producer(&broker, "t", options, &clock);
  ASSERT_TRUE(producer.Produce(Msg("", "sparse")).ok());
  EXPECT_EQ(producer.produced(), 0);  // still buffered
  EXPECT_EQ(producer.buffered(), 1);
  clock.AdvanceMs(10);
  ASSERT_TRUE(producer.MaybeFlushLinger().ok());
  EXPECT_EQ(producer.produced(), 1);
  EXPECT_EQ(broker.EndOffset("t", 0).value(), 1);
}

}  // namespace
}  // namespace uberrt::stream
