#include <gtest/gtest.h>

#include <vector>

#include "common/fault_injector.h"
#include "common/retry.h"

namespace uberrt::common {
namespace {

TEST(FaultInjectorTest, NoRulesMeansEveryCheckPasses) {
  FaultInjector faults;
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(faults.Check("store.put").ok());
  }
  EXPECT_FALSE(faults.IsDown("store.put"));
  EXPECT_EQ(faults.metrics()->GetCounter("faults.injected")->value(), 0);
  EXPECT_EQ(faults.metrics()->GetCounter("faults.checks")->value(), 100);
}

TEST(FaultInjectorTest, ProbabilityOneAlwaysFiresWithConfiguredCode) {
  FaultInjector faults;
  FaultRule rule;
  rule.error_probability = 1.0;
  rule.error_code = StatusCode::kTimeout;
  faults.SetRule("broker.produce", rule);
  Status status = faults.Check("broker.produce");
  EXPECT_TRUE(status.IsTimeout());
  // Other sites unaffected.
  EXPECT_TRUE(faults.Check("store.put").ok());
  faults.ClearRule("broker.produce");
  EXPECT_TRUE(faults.Check("broker.produce").ok());
}

TEST(FaultInjectorTest, PrefixRuleGovernsChildSites) {
  FaultInjector faults;
  faults.SetDown("store", true);
  EXPECT_FALSE(faults.Check("store.put").ok());
  EXPECT_FALSE(faults.Check("store.get").ok());
  EXPECT_TRUE(faults.IsDown("store.delete"));
  // Prefix match is on dot boundaries, not raw string prefixes.
  EXPECT_TRUE(faults.Check("storefront.put").ok());
  EXPECT_FALSE(faults.IsDown("storefront"));
  faults.SetDown("store", false);
  EXPECT_TRUE(faults.Check("store.put").ok());
}

TEST(FaultInjectorTest, OutageWindowsFollowTheInjectedClock) {
  SimulatedClock clock(0);
  FaultInjector faults(7, &clock);
  faults.ScheduleOutage("region.dca", 100, 200);
  EXPECT_TRUE(faults.Check("region.dca").ok());
  EXPECT_FALSE(faults.IsDown("region.dca"));
  clock.SetMs(100);
  EXPECT_TRUE(faults.IsDown("region.dca"));
  EXPECT_TRUE(faults.Check("region.dca").IsUnavailable());
  clock.SetMs(199);
  EXPECT_TRUE(faults.IsDown("region.dca"));
  clock.SetMs(200);  // half-open: end is exclusive
  EXPECT_FALSE(faults.IsDown("region.dca"));
  EXPECT_TRUE(faults.Check("region.dca").ok());
}

TEST(FaultInjectorTest, MaxTriggersMakesOneShotFaults) {
  FaultInjector faults;
  FaultRule rule;
  rule.error_probability = 1.0;
  rule.max_triggers = 1;
  faults.SetRule("job.crash.j1", rule);
  EXPECT_FALSE(faults.Check("job.crash.j1").ok());
  // The budget is spent: subsequent checks pass.
  EXPECT_TRUE(faults.Check("job.crash.j1").ok());
  EXPECT_TRUE(faults.Check("job.crash.j1").ok());
}

TEST(FaultInjectorTest, AddedLatencyAdvancesTheClock) {
  SimulatedClock clock(0);
  FaultInjector faults(7, &clock);
  FaultRule rule;
  rule.added_latency_ms = 25;
  faults.SetRule("olap.server.query", rule);
  EXPECT_TRUE(faults.Check("olap.server.query.0").ok());
  EXPECT_EQ(clock.NowMs(), 25);
}

TEST(FaultInjectorTest, DeterministicPerSeed) {
  auto run = [](uint64_t seed) {
    FaultInjector faults(seed);
    FaultRule rule;
    rule.error_probability = 0.5;
    faults.SetRule("site", rule);
    std::vector<bool> outcomes;
    for (int i = 0; i < 200; ++i) outcomes.push_back(faults.Check("site").ok());
    return outcomes;
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(run(42), run(1337));
}

TEST(FaultInjectorTest, MetricsCountPerSiteInjections) {
  FaultInjector faults;
  FaultRule rule;
  rule.error_probability = 1.0;
  faults.SetRule("store.put", rule);
  faults.Check("store.put").ok();
  faults.Check("store.put").ok();
  EXPECT_EQ(faults.metrics()->GetCounter("faults.store.put.injected")->value(), 2);
  EXPECT_EQ(faults.metrics()->GetCounter("faults.injected")->value(), 2);
}

TEST(RetryPolicyTest, SucceedsAfterTransientFailures) {
  SimulatedClock clock(0);
  RetryPolicy policy("test", RetryOptions{}, &clock);
  int calls = 0;
  Status status = policy.Run([&] {
    ++calls;
    return calls < 3 ? Status::Unavailable("flaky") : Status::Ok();
  });
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(calls, 3);
  EXPECT_GT(clock.NowMs(), 0);  // backoff slept on the injected clock
}

TEST(RetryPolicyTest, NonRetryableCodePassesStraightThrough) {
  SimulatedClock clock(0);
  RetryPolicy policy("test", RetryOptions{}, &clock);
  int calls = 0;
  Status status = policy.Run([&] {
    ++calls;
    return Status::InvalidArgument("bad");
  });
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(calls, 1);
  EXPECT_EQ(clock.NowMs(), 0);
}

TEST(RetryPolicyTest, ExhaustsAfterMaxAttempts) {
  SimulatedClock clock(0);
  RetryOptions options;
  options.max_attempts = 3;
  MetricsRegistry metrics;
  RetryPolicy policy("flaky", options, &clock, &metrics);
  int calls = 0;
  Status status = policy.Run([&] {
    ++calls;
    return Status::Timeout("never");
  });
  EXPECT_TRUE(status.IsTimeout());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(metrics.GetCounter("retries.flaky.attempts")->value(), 3);
  EXPECT_EQ(metrics.GetCounter("retries.flaky.retries")->value(), 2);
  EXPECT_EQ(metrics.GetCounter("retries.flaky.exhausted")->value(), 1);
  EXPECT_EQ(metrics.GetCounter("retries.flaky.success")->value(), 0);
}

TEST(RetryPolicyTest, DeadlineBudgetStopsRetriesEarly) {
  SimulatedClock clock(0);
  RetryOptions options;
  options.max_attempts = 100;
  options.initial_backoff_ms = 40;
  options.multiplier = 1.0;
  options.max_backoff_ms = 40;
  options.jitter = 0.0;
  options.deadline_ms = 100;
  RetryPolicy policy("deadline", options, &clock);
  int calls = 0;
  Status status = policy.Run([&] {
    ++calls;
    return Status::Unavailable("down");
  });
  EXPECT_TRUE(status.IsUnavailable());
  // 40ms per backoff into a 100ms budget: attempts at t=0, 40, 80; the next
  // backoff would land at 120 > 100, so exactly 3 calls.
  EXPECT_EQ(calls, 3);
}

TEST(RetryPolicyTest, RunResultRetriesAndReturnsValue) {
  SimulatedClock clock(0);
  RetryPolicy policy("result", RetryOptions{}, &clock);
  int calls = 0;
  Result<int> result = policy.RunResult<int>([&]() -> Result<int> {
    ++calls;
    if (calls < 2) return Status::Unavailable("flaky");
    return 17;
  });
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 17);
  EXPECT_EQ(calls, 2);
}

TEST(RetryPolicyTest, IsRetryableClassifiesCodes) {
  EXPECT_TRUE(RetryPolicy::IsRetryable(Status::Unavailable("x")));
  EXPECT_TRUE(RetryPolicy::IsRetryable(Status::Timeout("x")));
  EXPECT_TRUE(RetryPolicy::IsRetryable(Status::ResourceExhausted("x")));
  EXPECT_FALSE(RetryPolicy::IsRetryable(Status::NotFound("x")));
  EXPECT_FALSE(RetryPolicy::IsRetryable(Status::Corruption("x")));
  EXPECT_FALSE(RetryPolicy::IsRetryable(Status::Ok()));
}

}  // namespace
}  // namespace uberrt::common
