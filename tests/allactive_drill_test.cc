// Capacity-aware failover: admission ladder, drain-based handover, partial
// failover routing, flap hysteresis, retry-backed consumer failover, the
// offset-sync vs replication race, and the full drill harness whose report
// feeds BENCH_drills.json (the CI drill gate).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "allactive/capacity.h"
#include "allactive/coordinator.h"
#include "allactive/drill.h"
#include "allactive/topology.h"
#include "common/fault_injector.h"
#include "common/rng.h"
#include "stream/broker.h"

namespace uberrt::allactive {
namespace {

using common::FaultInjector;
using common::FaultRule;
using stream::Message;
using stream::Priority;
using stream::TopicConfig;

Message Msg(const std::string& uid, const char* priority = nullptr) {
  Message m;
  m.value = uid;
  m.timestamp = 1;
  m.headers[stream::kHeaderUid] = uid;
  if (priority != nullptr) m.headers[stream::kHeaderPriority] = priority;
  return m;
}

// --- Admission ladder -------------------------------------------------------

TEST(RegionCapacityTest, LadderShedsLowestPriorityFirstWithRetryAfter) {
  SimulatedClock clock(0);
  CapacityOptions options;
  options.max_inflight_produce_units = 10;
  options.priority_weights = {1.0, 0.6, 0.4};
  options.window_ms = 1000;
  options.retry_after_ms = 321;
  RegionCapacity capacity("dca", options, &clock);

  // Best-effort ceiling = 0.4 * 10 = 4 units.
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(capacity.AdmitProduce("t", Priority::kBestEffort, 1).ok()) << i;
  }
  Status shed = capacity.AdmitProduce("t", Priority::kBestEffort, 1);
  EXPECT_EQ(shed.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(RegionCapacity::RetryAfterMsFromStatus(shed), 321);

  // Important rides to 0.6 * 10 = 6 total units, then sheds.
  ASSERT_TRUE(capacity.AdmitProduce("t", Priority::kImportant, 2).ok());
  EXPECT_EQ(capacity.AdmitProduce("t", Priority::kImportant, 1).code(),
            StatusCode::kResourceExhausted);

  // Critical gets the full budget: the (1.0 - 0.6) * 10 reserve is exactly
  // what important/best-effort can never crowd out.
  ASSERT_TRUE(capacity.AdmitProduce("t", Priority::kCritical, 4).ok());
  EXPECT_EQ(capacity.AdmitProduce("t", Priority::kCritical, 1).code(),
            StatusCode::kResourceExhausted);

  EXPECT_EQ(capacity.inflight_produce(), 10);
  EXPECT_EQ(capacity.shed_count(Priority::kBestEffort), 1);
  EXPECT_EQ(capacity.shed_count(Priority::kImportant), 1);
  EXPECT_EQ(capacity.shed_count(Priority::kCritical), 1);
  EXPECT_EQ(capacity.admitted_count(Priority::kBestEffort), 4);
  // Not a shed status => no hint.
  EXPECT_EQ(RegionCapacity::RetryAfterMsFromStatus(Status::Ok()), -1);
}

TEST(RegionCapacityTest, WindowRollRestoresBudgetAndDrainStopsNewWork) {
  SimulatedClock clock(0);
  CapacityOptions options;
  options.max_inflight_produce_units = 5;
  options.window_ms = 1000;
  RegionCapacity capacity("dca", options, &clock);

  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(capacity.AdmitProduce("t", Priority::kCritical, 1).ok());
  }
  EXPECT_EQ(capacity.AdmitProduce("t", Priority::kCritical, 1).code(),
            StatusCode::kResourceExhausted);
  // The inflight window decays when the clock rolls past it.
  clock.AdvanceMs(1000);
  EXPECT_EQ(capacity.inflight_produce(), 0);
  ASSERT_TRUE(capacity.AdmitProduce("t", Priority::kCritical, 1).ok());

  // Drain: stop-new-work rejects everything (even critical) with
  // kUnavailable so clients re-route rather than back off.
  capacity.BeginDrain();
  EXPECT_TRUE(capacity.draining());
  Status rejected = capacity.AdmitProduce("t", Priority::kCritical, 1);
  EXPECT_TRUE(rejected.IsUnavailable());
  EXPECT_TRUE(capacity.AdmitQuery(Priority::kCritical).IsUnavailable());
  clock.AdvanceMs(1000);
  EXPECT_EQ(capacity.inflight_produce(), 0);  // drained
  capacity.EndDrain();
  EXPECT_TRUE(capacity.AdmitProduce("t", Priority::kCritical, 1).ok());
}

TEST(RegionCapacityTest, BrokerAdmissionGateRejectsBeforeAppend) {
  SimulatedClock clock(0);
  CapacityOptions options;
  options.max_inflight_produce_units = 5;
  options.priority_weights = {1.0, 0.6, 0.4};
  RegionCapacity capacity("dca", options, &clock);
  stream::Broker broker("dca-regional");
  broker.SetAdmission(&capacity);
  TopicConfig config;
  config.num_partitions = 1;
  ASSERT_TRUE(broker.CreateTopic("trips", config).ok());

  // Best-effort ceiling = 2 units; the third is shed and must not append.
  ASSERT_TRUE(broker.Produce("trips", Msg("a", "besteffort")).ok());
  ASSERT_TRUE(broker.Produce("trips", Msg("b", "besteffort")).ok());
  Result<stream::ProduceResult> shed = broker.Produce("trips", Msg("c", "besteffort"));
  EXPECT_EQ(shed.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(broker.EndOffset("trips", 0).value(), 2);  // acked-or-error

  // An unlabeled message defaults to kImportant and still fits.
  ASSERT_TRUE(broker.Produce("trips", Msg("d")).ok());
  // Critical uses the reserve the lower classes cannot touch.
  ASSERT_TRUE(broker.Produce("trips", Msg("e", "critical")).ok());
  ASSERT_TRUE(broker.Produce("trips", Msg("f", "critical")).ok());
  EXPECT_EQ(broker.Produce("trips", Msg("g", "critical")).status().code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(broker.EndOffset("trips", 0).value(), 5);
  broker.SetAdmission(nullptr);
  ASSERT_TRUE(broker.Produce("trips", Msg("h", "besteffort")).ok());
}

// --- Partial failover & deterministic routing -------------------------------

TEST(PartialFailoverTest, SplitRoutesDeterministicallyAndReroutesAroundOutage) {
  MultiRegionTopology topology({"dca", "phx"});
  AllActiveCoordinator coordinator(&topology);
  ASSERT_TRUE(coordinator.RegisterService("surge", "dca").ok());

  // 100% on the primary to start.
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(coordinator.RouteFor("surge", "k" + std::to_string(i)).value(), "dca");
  }

  // Shift 40%: both regions now take traffic, same key -> same region.
  ASSERT_EQ(coordinator.PartialFailover("surge", "phx", 40).value(), 40);
  std::map<std::string, int32_t> split = coordinator.Split("surge").value();
  EXPECT_EQ(split["dca"], 60);
  EXPECT_EQ(split["phx"], 40);
  int dca_keys = 0;
  int phx_keys = 0;
  for (int i = 0; i < 300; ++i) {
    const std::string key = "rider-" + std::to_string(i);
    const std::string first = coordinator.RouteFor("surge", key).value();
    EXPECT_EQ(coordinator.RouteFor("surge", key).value(), first);  // stable
    (first == "dca" ? dca_keys : phx_keys)++;
  }
  // Roughly the declared proportions (hash buckets, not exact).
  EXPECT_GT(dca_keys, 120);
  EXPECT_GT(phx_keys, 60);

  // Shifting more than the primary holds moves only what is left.
  ASSERT_EQ(coordinator.PartialFailover("surge", "phx", 90).value(), 60);
  EXPECT_EQ(coordinator.Split("surge").value()["phx"], 100);
  EXPECT_TRUE(coordinator.IsPrimary("surge", "dca"));  // designation unchanged

  // A key assigned to a down regional cluster reroutes deterministically.
  ASSERT_EQ(coordinator.PartialFailover("surge", "dca", 0).status().code(),
            StatusCode::kInvalidArgument);
  AllActiveCoordinator fresh(&topology);
  ASSERT_TRUE(fresh.RegisterService("eats", "dca").ok());
  topology.GetRegion("dca")->FailRegional();
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(fresh.RouteFor("eats", "k" + std::to_string(i)).value(), "phx");
  }
  EXPECT_GT(topology.metrics()->GetCounter("allactive.rerouted")->value(), 0);
  topology.GetRegion("dca")->RestoreRegional();
}

// --- Drain-based handover ----------------------------------------------------

TEST(DrainHandoverTest, DrainsInflightSyncsOffsetsAndFlips) {
  SimulatedClock clock(0);
  TopologyOptions topo_options;
  topo_options.clock = &clock;
  topo_options.capacity.max_inflight_produce_units = 10'000;
  topo_options.capacity.window_ms = 1000;
  MultiRegionTopology topology({"dca", "phx"}, topo_options);
  AllActiveCoordinator coordinator(&topology);
  TopicConfig config;
  config.num_partitions = 2;
  ASSERT_TRUE(topology.CreateTopic("trips", config).ok());
  ASSERT_TRUE(coordinator.RegisterService("surge", "dca").ok());

  // Enough volume that the replication pumps write offset-mapping
  // checkpoints (every 100 messages per partition) the sync can translate.
  for (int i = 0; i < 250; ++i) {
    ASSERT_TRUE(topology.ProduceToRegion("dca", "trips",
                                         Msg("m-" + std::to_string(i))).ok());
  }
  ASSERT_TRUE(topology.ReplicateAll().ok());
  // Commit at the replicated high watermark: the route checkpoint written by
  // the pump is at-or-before it, so the sync can translate this partition.
  Result<int64_t> end =
      topology.GetRegion("dca")->aggregate()->EndOffset("trips", 0);
  ASSERT_TRUE(end.ok());
  ASSERT_GT(end.value(), 0);
  ASSERT_TRUE(topology.GetRegion("dca")->aggregate()->CommitOffset(
      "payments", "trips", 0, end.value()).ok());
  EXPECT_EQ(topology.GetRegion("dca")->capacity()->inflight_produce(), 250);

  Result<HandoverReport> handover =
      coordinator.DrainHandover("surge", "phx", "payments", "trips");
  ASSERT_TRUE(handover.ok()) << handover.status().ToString();
  EXPECT_TRUE(handover.value().drained);
  EXPECT_FALSE(handover.value().abandoned);
  EXPECT_GT(handover.value().drain_ms, 0);
  EXPECT_GE(handover.value().synced_partitions, 1);
  EXPECT_EQ(handover.value().from, "dca");
  EXPECT_EQ(handover.value().to, "phx");
  EXPECT_TRUE(coordinator.IsPrimary("surge", "phx"));
  EXPECT_EQ(coordinator.Split("surge").value()["phx"], 100);
  EXPECT_EQ(coordinator.failovers(), 1);
  // Drain released: the vacated region accepts produce again.
  EXPECT_FALSE(topology.GetRegion("dca")->capacity()->draining());
  EXPECT_TRUE(topology.ProduceToRegion("dca", "trips", Msg("after")).ok());
}

TEST(DrainHandoverTest, AbandonsAtDeadlineAndStillHandsOver) {
  SimulatedClock clock(0);
  TopologyOptions topo_options;
  topo_options.clock = &clock;
  topo_options.capacity.max_inflight_produce_units = 100;
  // The window never rolls within the drain deadline: inflight can't decay.
  topo_options.capacity.window_ms = 1'000'000;
  MultiRegionTopology topology({"dca", "phx"}, topo_options);
  CoordinatorOptions coord_options;
  coord_options.drain_deadline_ms = 2'000;
  AllActiveCoordinator coordinator(&topology, coord_options);
  TopicConfig config;
  config.num_partitions = 1;
  ASSERT_TRUE(topology.CreateTopic("trips", config).ok());
  ASSERT_TRUE(coordinator.RegisterService("surge", "dca").ok());
  ASSERT_TRUE(topology.ProduceToRegion("dca", "trips", Msg("stuck")).ok());

  Result<HandoverReport> handover =
      coordinator.DrainHandover("surge", "phx", "", "trips");
  ASSERT_TRUE(handover.ok());
  EXPECT_FALSE(handover.value().drained);
  EXPECT_TRUE(handover.value().abandoned);  // bounded-replay covers the rest
  EXPECT_GE(handover.value().drain_ms, 2'000);
  EXPECT_TRUE(coordinator.IsPrimary("surge", "phx"));
  EXPECT_FALSE(topology.GetRegion("dca")->capacity()->draining());
}

// --- Partial degradation (satellite: regional vs aggregate health) ----------

TEST(DegradationTest, AggregateOnlyOutageMovesOnlyServicesThatNeedIt) {
  MultiRegionTopology topology({"dca", "phx"});
  AllActiveCoordinator coordinator(&topology);
  TopicConfig config;
  config.num_partitions = 1;
  ASSERT_TRUE(topology.CreateTopic("trips", config).ok());
  ServiceOptions local_only;
  local_only.needs_aggregate = false;
  ASSERT_TRUE(coordinator.RegisterService("ingest", "dca", local_only).ok());
  ASSERT_TRUE(coordinator.RegisterService("surge", "dca").ok());

  topology.GetRegion("dca")->FailAggregate();
  EXPECT_FALSE(topology.GetRegion("dca")->healthy());
  EXPECT_TRUE(topology.GetRegion("dca")->regional_healthy());

  // Only the global-view service leaves; local ingestion degrades in place
  // and the region still accepts local produce.
  EXPECT_EQ(coordinator.HealthCheckOnce().value(), 1);
  EXPECT_EQ(coordinator.Primary("surge").value(), "phx");
  EXPECT_EQ(coordinator.Primary("ingest").value(), "dca");
  EXPECT_TRUE(topology.ProduceToRegion("dca", "trips", Msg("local")).ok());

  // Regional cluster loss moves everything.
  topology.GetRegion("dca")->FailRegional();
  EXPECT_EQ(coordinator.HealthCheckOnce().value(), 1);
  EXPECT_EQ(coordinator.Primary("ingest").value(), "phx");
  topology.GetRegion("dca")->Restore();
}

TEST(DegradationTest, FaultPlaneDrivesComponentHealthSeparately) {
  SimulatedClock clock(0);
  FaultInjector faults(42, &clock);
  MultiRegionTopology topology({"dca", "phx"});
  topology.SetFaultInjector(&faults);

  faults.ScheduleOutage("region.dca.aggregate", 100, 200);
  clock.SetMs(150);
  topology.SyncRegionHealth();
  EXPECT_TRUE(topology.GetRegion("dca")->regional_healthy());
  EXPECT_FALSE(topology.GetRegion("dca")->aggregate_healthy());

  // A rule on the whole-region prefix still downs both components.
  faults.SetDown("region.phx", true);
  topology.SyncRegionHealth();
  EXPECT_FALSE(topology.GetRegion("phx")->regional_healthy());
  EXPECT_FALSE(topology.GetRegion("phx")->aggregate_healthy());
  faults.SetDown("region.phx", false);
  clock.SetMs(250);
  topology.SyncRegionHealth();
  EXPECT_TRUE(topology.GetRegion("dca")->healthy());
  EXPECT_TRUE(topology.GetRegion("phx")->healthy());
}

// --- Flap hysteresis ---------------------------------------------------------

// Anti-phase flapping (each region down for two sweeps at a time, with
// seed-jittered blips on top): without hysteresis the primary thrashes with
// every phase change; with it, failovers happen only when the primary is
// genuinely down, the target has proven stable, and the cooldown has passed.
int64_t RunFlapScenario(uint64_t seed, const CoordinatorOptions& options) {
  MultiRegionTopology topology({"dca", "phx", "sjc"});
  AllActiveCoordinator coordinator(&topology, options);
  EXPECT_TRUE(coordinator.RegisterService("surge", "dca").ok());
  Rng rng(seed);
  // sjc is hard-down throughout: a tempting target that is never eligible.
  topology.GetRegion("sjc")->Fail();
  for (int sweep = 0; sweep < 16; ++sweep) {
    const bool dca_down = ((sweep / 2) % 2 == 0) != rng.Chance(0.1);
    const bool phx_down = !((sweep / 2) % 2 == 0) != rng.Chance(0.1);
    dca_down ? topology.GetRegion("dca")->Fail() : topology.GetRegion("dca")->Restore();
    phx_down ? topology.GetRegion("phx")->Fail() : topology.GetRegion("phx")->Restore();
    EXPECT_TRUE(coordinator.HealthCheckOnce().ok());
  }
  return coordinator.auto_failovers();
}

TEST(FlapHysteresisTest, FlappingRegionsDoNotThrashPrimaries) {
  for (uint64_t seed : {7ull, 1337ull}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    CoordinatorOptions no_hysteresis;
    no_hysteresis.min_target_healthy_sweeps = 0;
    no_hysteresis.failover_cooldown_sweeps = 0;
    const int64_t thrash = RunFlapScenario(seed, no_hysteresis);
    const int64_t damped = RunFlapScenario(seed, CoordinatorOptions{});
    EXPECT_GE(thrash, 4) << "control should thrash under anti-phase flapping";
    EXPECT_LE(damped, 4);
    EXPECT_LT(damped, thrash);
  }
}

TEST(FlapHysteresisTest, NeverUnhealthyRegionIsImmediatelyEligible) {
  // The chaos-D shape: first-ever outage must fail over on the first sweep
  // even with hysteresis defaults (a never-unhealthy target needs no proof).
  MultiRegionTopology topology({"dca", "phx"});
  AllActiveCoordinator coordinator(&topology);
  ASSERT_TRUE(coordinator.RegisterService("payments", "dca").ok());
  topology.GetRegion("dca")->Fail();
  EXPECT_EQ(coordinator.HealthCheckOnce().value(), 1);
  EXPECT_EQ(coordinator.Primary("payments").value(), "phx");
  EXPECT_EQ(coordinator.auto_failovers(), 1);
}

// --- Retry-backed consumer failover (satellite) ------------------------------

TEST(ConsumerFailoverRetryTest, TransientSyncFaultsAreAbsorbedByTheBudget) {
  SimulatedClock clock(0);
  FaultInjector faults(7, &clock);
  TopologyOptions topo_options;
  topo_options.clock = &clock;
  MultiRegionTopology topology({"dca", "phx"}, topo_options);
  topology.SetFaultInjector(&faults);
  TopicConfig config;
  config.num_partitions = 2;
  ASSERT_TRUE(topology.CreateTopic("trips", config).ok());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(topology.ProduceToRegion("dca", "trips",
                                         Msg("m-" + std::to_string(i))).ok());
  }
  ASSERT_TRUE(topology.ReplicateAll().ok());
  ActivePassiveConsumer consumer(&topology, "payments", "trips", "dca");
  ASSERT_TRUE(consumer.Poll(10).ok());

  // The sync plane fails exactly twice, then recovers: the deadline-budget
  // retry inside FailoverTo must absorb both hits.
  FaultRule transient;
  transient.error_probability = 1.0;
  transient.max_triggers = 2;
  faults.SetRule("allactive.offset_sync", transient);
  ASSERT_TRUE(consumer.FailoverTo("phx").ok());
  EXPECT_EQ(consumer.current_region(), "phx");
  EXPECT_GE(
      topology.metrics()->GetCounter("retries.allactive.failover.retries")->value(),
      2);
  EXPECT_GE(
      topology.metrics()->GetCounter("retries.allactive.failover.attempts")->value(),
      3);
  EXPECT_TRUE(consumer.Poll(10).ok());
}

TEST(ConsumerFailoverRetryTest, StrandedConsumerRetriesReopenNotSync) {
  MultiRegionTopology topology({"dca", "phx"});
  TopicConfig config;
  config.num_partitions = 1;
  ASSERT_TRUE(topology.CreateTopic("trips", config).ok());
  ASSERT_TRUE(topology.ProduceToRegion("dca", "trips", Msg("m-0")).ok());
  ASSERT_TRUE(topology.ReplicateAll().ok());
  ActivePassiveConsumer consumer(&topology, "payments", "trips", "dca");
  ASSERT_TRUE(consumer.Poll(10).ok());

  // The target region lost this topic: the sync half succeeds but the
  // reopen half cannot, leaving the consumer stranded in the new region.
  ASSERT_TRUE(topology.GetRegion("phx")->aggregate()->DeleteTopic("trips").ok());
  EXPECT_FALSE(consumer.FailoverTo("phx").ok());
  EXPECT_EQ(consumer.current_region(), "phx");
  EXPECT_EQ(consumer.Poll(10).status().code(), StatusCode::kFailedPrecondition);

  // Once the topic is back, re-calling with the SAME region must retry the
  // reopen (not reject with "already in phx", not re-sync).
  ASSERT_TRUE(topology.GetRegion("phx")->aggregate()->CreateTopic("trips", config).ok());
  ASSERT_TRUE(consumer.FailoverTo("phx").ok());
  EXPECT_TRUE(consumer.Poll(10).ok());
  // A live consumer still rejects a no-op failover.
  EXPECT_EQ(consumer.FailoverTo("phx").code(), StatusCode::kInvalidArgument);
}

// --- Offset sync racing replication pumps (satellite) ------------------------

TEST(OffsetSyncRaceTest, SyncRacingPumpsNeverLosesACommittedMessage) {
  MultiRegionTopology topology({"dca", "phx"});
  TopicConfig config;
  config.num_partitions = 4;
  ASSERT_TRUE(topology.CreateTopic("trips", config).ok());
  ActivePassiveConsumer consumer(&topology, "payments", "trips", "dca");

  std::atomic<bool> stop{false};
  std::vector<std::thread> pumps;
  for (int t = 0; t < 2; ++t) {
    pumps.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        topology.ReplicateOnce().ok();
      }
    });
  }

  // Live traffic + consumption + repeated offset syncs, all while the pumps
  // advance route positions and write checkpoints concurrently.
  int64_t produced = 0;
  std::set<std::string> seen;
  int64_t duplicates = 0;
  const auto drain = [&](size_t max) {
    Result<std::vector<Message>> batch = consumer.Poll(max);
    ASSERT_TRUE(batch.ok());
    for (const Message& m : batch.value()) {
      if (!seen.insert(m.value).second) ++duplicates;
    }
  };
  for (int round = 0; round < 20; ++round) {
    for (int i = 0; i < 50; ++i) {
      const std::string uid = "m-" + std::to_string(produced++);
      ASSERT_TRUE(topology
                      .ProduceToRegion(round % 2 ? "dca" : "phx", "trips", Msg(uid))
                      .ok());
    }
    drain(40);
    // Mid-replication sync: must be conservative against half-advanced
    // routes (some checkpoints written, some not, for the same batch).
    topology.SyncConsumerOffsets("payments", "trips", "dca", "phx").ok();
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : pumps) t.join();

  for (int i = 0; i < 20; ++i) ASSERT_TRUE(topology.ReplicateAll().ok());
  ASSERT_TRUE(consumer.FailoverTo("phx").ok());
  for (int i = 0; i < 200 && static_cast<int64_t>(seen.size()) < produced; ++i) {
    drain(200);
  }
  // Conservative min-over-routes: nothing committed is ever lost; the
  // failover replays a bounded window rather than the whole log.
  EXPECT_EQ(static_cast<int64_t>(seen.size()), produced);
  EXPECT_LT(duplicates, produced);
}

// --- The drill harness (tentpole) --------------------------------------------

TEST(DrillHarnessTest, PlannedAndUnplannedDrillsMeetTheGate) {
  DrillHarness harness(DrillOptions{});
  DrillReport planned = harness.Run(DrillMode::kPlanned);
  DrillReport unplanned = harness.Run(DrillMode::kUnplanned);

  for (const DrillReport* r : {&planned, &unplanned}) {
    SCOPED_TRACE(r->name);
    // The gate: critical traffic is never shed, and no acked message is
    // lost, even while best-effort shedding is active.
    EXPECT_EQ(r->shed_critical, 0);
    EXPECT_EQ(r->query_shed_critical, 0);
    EXPECT_EQ(r->lost, 0);
    EXPECT_GT(r->shed_besteffort, 0);  // the overloaded survivor really shed
    EXPECT_GT(r->acked, 0);
    EXPECT_EQ(r->consumed, r->acked);  // ledger closes exactly
    EXPECT_GE(r->mttr_ms, 0);
    EXPECT_LT(r->replayed, r->consumed);
    EXPECT_GT(r->faults_injected, 0);  // the outage window really fired
  }
  // Planned: graceful — drained fully, no abandonment, no auto failover.
  EXPECT_TRUE(planned.drained);
  EXPECT_FALSE(planned.abandoned);
  EXPECT_GE(planned.synced_partitions, 1);
  EXPECT_EQ(planned.auto_failovers, 0);
  // Unplanned: the health plane moved the primary without an operator, and
  // detection cost shows up as a positive MTTR.
  EXPECT_GE(unplanned.auto_failovers, 1);
  EXPECT_GT(unplanned.mttr_ms, 0);

  // Determinism: same options, same seed, same evidence.
  DrillReport again = harness.Run(DrillMode::kUnplanned);
  EXPECT_EQ(again.acked, unplanned.acked);
  EXPECT_EQ(again.mttr_ms, unplanned.mttr_ms);
  EXPECT_EQ(again.shed_besteffort, unplanned.shed_besteffort);

  ASSERT_TRUE(WriteDrillReportsJson("BENCH_drills.json", {planned, unplanned}).ok());
  FILE* f = std::fopen("BENCH_drills.json", "r");
  ASSERT_NE(f, nullptr);
  std::string contents;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) contents.append(buf, n);
  std::fclose(f);
  EXPECT_NE(contents.find("\"benchmark\": \"allactive_drills\""), std::string::npos);
  EXPECT_NE(contents.find("\"mttr_ms\""), std::string::npos);
  EXPECT_NE(contents.find("\"lost\": 0"), std::string::npos);
  EXPECT_NE(contents.find("\"totals\""), std::string::npos);
}

}  // namespace
}  // namespace uberrt::allactive
