#include "allactive/coordinator.h"

#include <algorithm>

#include "common/hash.h"

namespace uberrt::allactive {
namespace {

/// Offset-sync / handover paths retry under a deadline budget: mid-disaster
/// the sync plane (the active-active mapping database) is exactly what
/// flakes, and the failover must either get through or fail loudly in
/// bounded time.
common::RetryOptions HandoverRetryOptions() {
  common::RetryOptions options;
  options.max_attempts = 8;
  options.initial_backoff_ms = 5;
  options.max_backoff_ms = 100;
  options.deadline_ms = 2'000;
  return options;
}

}  // namespace

AllActiveCoordinator::AllActiveCoordinator(MultiRegionTopology* topology,
                                           CoordinatorOptions options)
    : topology_(topology),
      options_(options),
      sync_retry_("allactive.handover", HandoverRetryOptions(), topology->clock(),
                  topology->metrics()),
      rerouted_(topology->metrics()->GetCounter("allactive.rerouted")) {}

Status AllActiveCoordinator::RegisterService(const std::string& service,
                                             const std::string& primary_region,
                                             ServiceOptions service_options) {
  if (topology_->GetRegion(primary_region) == nullptr) {
    return Status::NotFound("no region: " + primary_region);
  }
  ServiceState state;
  state.primary = primary_region;
  state.needs_aggregate = service_options.needs_aggregate;
  if (service_options.split.empty()) {
    state.split[primary_region] = 100;
  } else {
    int32_t total = 0;
    for (const auto& [region, percent] : service_options.split) {
      if (topology_->GetRegion(region) == nullptr) {
        return Status::NotFound("no region in split: " + region);
      }
      if (percent < 0) return Status::InvalidArgument("negative split percent");
      total += percent;
    }
    if (total != 100) {
      return Status::InvalidArgument("split must sum to 100, got " +
                                     std::to_string(total));
    }
    state.split = std::move(service_options.split);
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (services_.count(service) > 0) {
    return Status::AlreadyExists("service registered: " + service);
  }
  services_[service] = std::move(state);
  return Status::Ok();
}

Result<std::string> AllActiveCoordinator::Primary(const std::string& service) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = services_.find(service);
  if (it == services_.end()) return Status::NotFound("no service: " + service);
  return it->second.primary;
}

bool AllActiveCoordinator::IsPrimary(const std::string& service,
                                     const std::string& region) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = services_.find(service);
  return it != services_.end() && it->second.primary == region;
}

Result<std::map<std::string, int32_t>> AllActiveCoordinator::Split(
    const std::string& service) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = services_.find(service);
  if (it == services_.end()) return Status::NotFound("no service: " + service);
  return it->second.split;
}

bool AllActiveCoordinator::HealthyFor(const ServiceState& state,
                                      const Region* region) const {
  if (region == nullptr) return false;
  if (!region->regional_healthy()) return false;
  return !state.needs_aggregate || region->aggregate_healthy();
}

std::string AllActiveCoordinator::ElectLocked(const ServiceState& state,
                                              const std::string& exclude,
                                              bool respect_hysteresis) const {
  for (const std::string& candidate : topology_->RegionNames()) {
    if (candidate == exclude) continue;
    const Region* region = topology_->GetRegion(candidate);
    if (!HealthyFor(state, region)) continue;
    if (respect_hysteresis) {
      auto it = region_health_.find(candidate);
      // A region never seen unhealthy is always eligible; a flapper must
      // accumulate min_target_healthy_sweeps stable sweeps first.
      if (it != region_health_.end() && it->second.ever_unhealthy &&
          it->second.healthy_streak < options_.min_target_healthy_sweeps) {
        continue;
      }
    }
    return candidate;
  }
  return "";
}

void AllActiveCoordinator::CommitFailoverLocked(ServiceState* state,
                                                const std::string& target) {
  state->primary = target;
  state->split.clear();
  state->split[target] = 100;
  state->last_failover_sweep = sweep_;
  ++failovers_;
}

Result<std::string> AllActiveCoordinator::Failover(const std::string& service) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = services_.find(service);
  if (it == services_.end()) return Status::NotFound("no service: " + service);
  std::string target = ElectLocked(it->second, it->second.primary,
                                   /*respect_hysteresis=*/false);
  if (target.empty()) {
    return Status::Unavailable("no healthy region to fail over to");
  }
  CommitFailoverLocked(&it->second, target);
  return target;
}

Result<int64_t> AllActiveCoordinator::HealthCheckOnce() {
  std::lock_guard<std::mutex> lock(mu_);
  ++sweep_;
  for (const std::string& name : topology_->RegionNames()) {
    Region* region = topology_->GetRegion(name);
    RegionHealth& health = region_health_[name];
    if (region != nullptr && region->healthy()) {
      ++health.healthy_streak;
      health.unhealthy_streak = 0;
    } else {
      ++health.unhealthy_streak;
      health.healthy_streak = 0;
      health.ever_unhealthy = true;
    }
  }
  int64_t moved = 0;
  for (auto& [service, state] : services_) {
    Region* primary = topology_->GetRegion(state.primary);
    if (HealthyFor(state, primary)) continue;
    // Hysteresis: the primary must be persistently unhealthy (not a blip)
    // and the service must be past its post-failover cooldown.
    const RegionHealth& health = region_health_[state.primary];
    if (health.unhealthy_streak < options_.unhealthy_sweeps_before_failover) {
      continue;
    }
    if (sweep_ - state.last_failover_sweep <= options_.failover_cooldown_sweeps) {
      continue;
    }
    std::string target =
        ElectLocked(state, state.primary, /*respect_hysteresis=*/true);
    if (target.empty()) continue;  // no eligible region; retried next sweep
    CommitFailoverLocked(&state, target);
    ++auto_failovers_;
    ++moved;
  }
  return moved;
}

Result<std::string> AllActiveCoordinator::RouteFor(const std::string& service,
                                                   const std::string& key) const {
  std::string assigned;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = services_.find(service);
    if (it == services_.end()) return Status::NotFound("no service: " + service);
    const auto bucket = static_cast<int32_t>(
        Fnv1a64(service + '\0' + key) % 100);
    int32_t cumulative = 0;
    for (const auto& [region, percent] : it->second.split) {
      if (percent <= 0) continue;
      cumulative += percent;
      if (bucket < cumulative) {
        assigned = region;
        break;
      }
    }
    if (assigned.empty()) assigned = it->second.primary;  // split underfull
  }
  Region* region = topology_->GetRegion(assigned);
  // Produce routing needs the regional cluster only; aggregate health is a
  // primary-election concern, not a per-key routing one.
  if (region != nullptr && region->regional_healthy()) return assigned;
  // Deterministic per-key reroute: first healthy region in topology order.
  for (const std::string& candidate : topology_->RegionNames()) {
    if (candidate == assigned) continue;
    Region* fallback = topology_->GetRegion(candidate);
    if (fallback != nullptr && fallback->regional_healthy()) {
      rerouted_->Increment();
      return candidate;
    }
  }
  return Status::Unavailable("no region can accept produce for " + service);
}

Result<int32_t> AllActiveCoordinator::PartialFailover(const std::string& service,
                                                      const std::string& to_region,
                                                      int32_t percent) {
  if (percent <= 0 || percent > 100) {
    return Status::InvalidArgument("percent must be in (0, 100]");
  }
  if (topology_->GetRegion(to_region) == nullptr) {
    return Status::NotFound("no region: " + to_region);
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto it = services_.find(service);
  if (it == services_.end()) return Status::NotFound("no service: " + service);
  ServiceState& state = it->second;
  if (to_region == state.primary) {
    return Status::InvalidArgument(to_region + " is already the primary");
  }
  const int32_t available = state.split.count(state.primary) > 0
                                ? state.split[state.primary]
                                : 0;
  const int32_t moved = std::min(percent, available);
  if (moved > 0) {
    state.split[state.primary] -= moved;
    if (state.split[state.primary] == 0) state.split.erase(state.primary);
    state.split[to_region] += moved;
  }
  return moved;
}

Result<HandoverReport> AllActiveCoordinator::DrainHandover(
    const std::string& service, const std::string& to_region,
    const std::string& group, const std::string& topic) {
  std::string from;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = services_.find(service);
    if (it == services_.end()) return Status::NotFound("no service: " + service);
    from = it->second.primary;
    if (to_region == from) {
      return Status::InvalidArgument(to_region + " is already the primary");
    }
    Region* target = topology_->GetRegion(to_region);
    if (!HealthyFor(it->second, target)) {
      return Status::Unavailable("handover target unhealthy: " + to_region);
    }
  }
  Region* source = topology_->GetRegion(from);
  RegionCapacity* capacity = source->capacity();
  Clock* clock = topology_->clock();
  HandoverReport report;
  report.from = from;
  report.to = to_region;

  // Stop-new-work: the source rejects produce with kUnavailable from here
  // until the flip, so clients re-route instead of piling more inflight on.
  capacity->BeginDrain();
  const TimestampMs start_ms = clock->NowMs();
  const int64_t step_ms = std::max<int64_t>(1, capacity->options().window_ms / 4);
  while (capacity->inflight_produce() > 0 &&
         clock->NowMs() - start_ms < options_.drain_deadline_ms) {
    clock->SleepMs(step_ms);
  }
  report.drained = capacity->inflight_produce() == 0;
  report.abandoned = !report.drained;
  report.drain_ms = clock->NowMs() - start_ms;

  if (!group.empty()) {
    Result<int64_t> synced = sync_retry_.RunResult<int64_t>([&] {
      return topology_->SyncConsumerOffsets(group, topic, from, to_region);
    });
    if (!synced.ok()) {
      capacity->EndDrain();  // handover failed; let the source serve again
      return synced.status();
    }
    report.synced_partitions = synced.value();
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = services_.find(service);
    if (it == services_.end() || it->second.primary != from) {
      capacity->EndDrain();
      return Status::FailedPrecondition("primary changed during handover of " +
                                        service);
    }
    CommitFailoverLocked(&it->second, to_region);
  }
  capacity->EndDrain();
  return report;
}

int64_t AllActiveCoordinator::failovers() const {
  std::lock_guard<std::mutex> lock(mu_);
  return failovers_;
}

int64_t AllActiveCoordinator::auto_failovers() const {
  std::lock_guard<std::mutex> lock(mu_);
  return auto_failovers_;
}

ActivePassiveConsumer::ActivePassiveConsumer(MultiRegionTopology* topology,
                                             std::string group, std::string topic,
                                             std::string initial_region)
    : topology_(topology),
      group_(std::move(group)),
      topic_(std::move(topic)),
      region_(std::move(initial_region)),
      failover_retry_("allactive.failover", HandoverRetryOptions(),
                      topology->clock(), topology->metrics()) {
  OpenConsumer().ok();
}

Status ActivePassiveConsumer::OpenConsumer() {
  Region* region = topology_->GetRegion(region_);
  if (region == nullptr) return Status::NotFound("no region: " + region_);
  consumer_ = std::make_unique<stream::Consumer>(region->aggregate(), group_, topic_,
                                                 group_ + "@" + region_);
  Status subscribed = consumer_->Subscribe();
  if (!subscribed.ok()) consumer_.reset();  // leave a clean stranded state
  return subscribed;
}

Result<std::vector<stream::Message>> ActivePassiveConsumer::Poll(size_t max_messages) {
  if (!consumer_) return Status::FailedPrecondition("consumer not open");
  Result<std::vector<stream::Message>> batch = consumer_->Poll(max_messages);
  if (!batch.ok()) return batch;
  UBERRT_RETURN_IF_ERROR(consumer_->Commit());
  return batch;
}

Status ActivePassiveConsumer::FailoverTo(const std::string& new_region) {
  // A prior FailoverTo may have synced + closed but failed to reopen (the
  // new region was still coming up); region_ already points there with no
  // live consumer. Retry just the reopen instead of rejecting.
  const bool stranded = new_region == region_ && consumer_ == nullptr;
  if (new_region == region_ && !stranded) {
    return Status::InvalidArgument("already in " + new_region);
  }
  if (!stranded) {
    // Translate committed progress; the old region may already be down, which
    // is fine — the mapping store lives outside the region. The sync plane
    // itself may flake mid-disaster; retry under the deadline budget.
    Result<int64_t> synced = failover_retry_.RunResult<int64_t>([&] {
      return topology_->SyncConsumerOffsets(group_, topic_, region_, new_region);
    });
    if (!synced.ok()) return synced.status();
    if (consumer_) consumer_->Close().ok();
    consumer_.reset();
    region_ = new_region;
  }
  return failover_retry_.Run([this] { return OpenConsumer(); });
}

}  // namespace uberrt::allactive
