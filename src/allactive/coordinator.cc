#include "allactive/coordinator.h"

namespace uberrt::allactive {

Status AllActiveCoordinator::RegisterService(const std::string& service,
                                             const std::string& primary_region) {
  if (topology_->GetRegion(primary_region) == nullptr) {
    return Status::NotFound("no region: " + primary_region);
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (primaries_.count(service) > 0) {
    return Status::AlreadyExists("service registered: " + service);
  }
  primaries_[service] = primary_region;
  return Status::Ok();
}

Result<std::string> AllActiveCoordinator::Primary(const std::string& service) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = primaries_.find(service);
  if (it == primaries_.end()) return Status::NotFound("no service: " + service);
  return it->second;
}

bool AllActiveCoordinator::IsPrimary(const std::string& service,
                                     const std::string& region) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = primaries_.find(service);
  return it != primaries_.end() && it->second == region;
}

Result<std::string> AllActiveCoordinator::Failover(const std::string& service) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = primaries_.find(service);
  if (it == primaries_.end()) return Status::NotFound("no service: " + service);
  for (const std::string& candidate : topology_->RegionNames()) {
    if (candidate == it->second) continue;
    Region* region = topology_->GetRegion(candidate);
    if (region != nullptr && region->healthy()) {
      it->second = candidate;
      ++failovers_;
      return candidate;
    }
  }
  return Status::Unavailable("no healthy region to fail over to");
}

Result<int64_t> AllActiveCoordinator::HealthCheckOnce() {
  std::vector<std::string> unhealthy;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [service, primary] : primaries_) {
      Region* region = topology_->GetRegion(primary);
      if (region == nullptr || !region->healthy()) unhealthy.push_back(service);
    }
  }
  // Failover takes mu_ itself; run the elections outside the lock.
  int64_t moved = 0;
  for (const std::string& service : unhealthy) {
    if (Failover(service).ok()) ++moved;  // else: retried next sweep
  }
  if (moved > 0) {
    std::lock_guard<std::mutex> lock(mu_);
    auto_failovers_ += moved;
  }
  return moved;
}

int64_t AllActiveCoordinator::failovers() const {
  std::lock_guard<std::mutex> lock(mu_);
  return failovers_;
}

int64_t AllActiveCoordinator::auto_failovers() const {
  std::lock_guard<std::mutex> lock(mu_);
  return auto_failovers_;
}

ActivePassiveConsumer::ActivePassiveConsumer(MultiRegionTopology* topology,
                                             std::string group, std::string topic,
                                             std::string initial_region)
    : topology_(topology),
      group_(std::move(group)),
      topic_(std::move(topic)),
      region_(std::move(initial_region)) {
  OpenConsumer().ok();
}

Status ActivePassiveConsumer::OpenConsumer() {
  Region* region = topology_->GetRegion(region_);
  if (region == nullptr) return Status::NotFound("no region: " + region_);
  consumer_ = std::make_unique<stream::Consumer>(region->aggregate(), group_, topic_,
                                                 group_ + "@" + region_);
  return consumer_->Subscribe();
}

Result<std::vector<stream::Message>> ActivePassiveConsumer::Poll(size_t max_messages) {
  if (!consumer_) return Status::FailedPrecondition("consumer not open");
  Result<std::vector<stream::Message>> batch = consumer_->Poll(max_messages);
  if (!batch.ok()) return batch;
  UBERRT_RETURN_IF_ERROR(consumer_->Commit());
  return batch;
}

Status ActivePassiveConsumer::FailoverTo(const std::string& new_region) {
  if (new_region == region_) return Status::InvalidArgument("already in " + new_region);
  // Translate committed progress; the old region may already be down, which
  // is fine — the mapping store lives outside the region.
  Result<int64_t> synced =
      topology_->SyncConsumerOffsets(group_, topic_, region_, new_region);
  if (!synced.ok()) return synced.status();
  if (consumer_) consumer_->Close().ok();
  region_ = new_region;
  return OpenConsumer();
}

}  // namespace uberrt::allactive
