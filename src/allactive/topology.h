#ifndef UBERRT_ALLACTIVE_TOPOLOGY_H_
#define UBERRT_ALLACTIVE_TOPOLOGY_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "allactive/capacity.h"
#include "common/clock.h"
#include "common/fault_injector.h"
#include "common/metrics.h"
#include "common/status.h"
#include "stream/broker.h"
#include "stream/ureplicator.h"

namespace uberrt::allactive {

/// One deployment region: a regional Kafka cluster receiving locally
/// produced events and an aggregate cluster holding the global view (every
/// region's regional data replicated in), per Section 6 / Figure 6.
///
/// Health is tracked per component, not as one binary: a region whose
/// aggregate cluster is down still accepts local produce (only services
/// that need the global view must leave), and a region whose regional
/// cluster is down can still serve the aggregate view it already holds.
class Region {
 public:
  Region(std::string name, const CapacityOptions& capacity, Clock* clock,
         MetricsRegistry* metrics)
      : name_(std::move(name)),
        regional_(std::make_unique<stream::Broker>(name_ + "-regional")),
        aggregate_(std::make_unique<stream::Broker>(name_ + "-aggregate")),
        capacity_(std::make_unique<RegionCapacity>(name_, capacity, clock,
                                                   metrics)) {
    // The capacity budget guards the produce boundary clients hit; the
    // aggregate cluster only receives internal replication and is exempt.
    regional_->SetAdmission(capacity_.get());
  }

  const std::string& name() const { return name_; }
  stream::Broker* regional() { return regional_.get(); }
  stream::Broker* aggregate() { return aggregate_.get(); }
  RegionCapacity* capacity() { return capacity_.get(); }

  /// Simulates losing the whole region (both clusters).
  void Fail() {
    FailRegional();
    FailAggregate();
  }
  void Restore() {
    RestoreRegional();
    RestoreAggregate();
  }
  /// Partial degradation: one cluster down, the other serving.
  void FailRegional() { regional_->SetAvailable(false); }
  void RestoreRegional() { regional_->SetAvailable(true); }
  void FailAggregate() { aggregate_->SetAvailable(false); }
  void RestoreAggregate() { aggregate_->SetAvailable(true); }

  bool regional_healthy() const { return regional_->available(); }
  bool aggregate_healthy() const { return aggregate_->available(); }
  /// Fully healthy — both clusters up. Prefer the component accessors when
  /// deciding what a *specific* workload needs (local produce only needs
  /// the regional cluster).
  bool healthy() const { return regional_healthy() && aggregate_healthy(); }

 private:
  std::string name_;
  std::unique_ptr<stream::Broker> regional_;
  std::unique_ptr<stream::Broker> aggregate_;
  std::unique_ptr<RegionCapacity> capacity_;
};

/// Topology-wide knobs. Defaults preserve the pre-capacity behaviour:
/// effectively unlimited budgets, wall-clock time.
struct TopologyOptions {
  CapacityOptions capacity;
  Clock* clock = SystemClock::Instance();
};

/// The multi-region Kafka fabric of Section 6: every region's regional
/// cluster replicates into *every* region's aggregate cluster via
/// uReplicator (with offset-mapping checkpoints per route), so each
/// aggregate cluster converges to the same logical content and any region
/// can compute the global view.
class MultiRegionTopology {
 public:
  explicit MultiRegionTopology(const std::vector<std::string>& region_names,
                               TopologyOptions options = {});

  Region* GetRegion(const std::string& name);
  std::vector<std::string> RegionNames() const;

  /// Creates the topic in every regional and aggregate cluster and wires a
  /// uReplicator per (source regional, destination aggregate) pair.
  Status CreateTopic(const std::string& topic, stream::TopicConfig config);

  /// Produces to a region's regional cluster (an app publishing locally).
  Result<stream::ProduceResult> ProduceToRegion(const std::string& region,
                                                const std::string& topic,
                                                stream::Message message);

  /// Pumps all replication routes once; returns messages moved. Routes
  /// whose source or destination region is down are skipped.
  Result<int64_t> ReplicateOnce();
  /// Pumps until all healthy routes are drained.
  Result<int64_t> ReplicateAll(int32_t max_cycles = 1000);

  /// Route name for the mapping store ("<src>-regional><dst>-aggregate").
  static std::string RouteName(const std::string& source_region,
                               const std::string& destination_region);

  stream::OffsetMappingStore* mapping_store() { return &mapping_store_; }

  /// The offset sync job of Figure 7: translates `group`'s committed
  /// offsets on `from_region`'s aggregate cluster into committed offsets on
  /// `to_region`'s aggregate cluster, conservatively (min over source
  /// routes) so failover loses nothing and replays only a bounded window.
  /// Returns the number of partitions synced. Consults the fault plane at
  /// "allactive.offset_sync" (the sync job reads the active-active mapping
  /// database, which can be transiently unreachable mid-disaster); callers
  /// on the failover path retry with a deadline budget.
  Result<int64_t> SyncConsumerOffsets(const std::string& group, const std::string& topic,
                                      const std::string& from_region,
                                      const std::string& to_region);

  /// Attaches the process-wide fault plane: region availability is then
  /// driven by IsDown("region.<name>") via SyncRegionHealth, and every
  /// replication route consults "ureplicator.copy.<route>".
  void SetFaultInjector(common::FaultInjector* faults);

  /// Reconciles every region's availability with the fault plane's
  /// scripted outages, per component: "region.<name>.regional" and
  /// "region.<name>.aggregate" drive the two clusters separately, and a
  /// rule on the "region.<name>" prefix downs both (the old whole-region
  /// semantics). No-op without an injector. With an injector attached the
  /// fault plane is the single source of truth for region health.
  void SyncRegionHealth();

  /// Registry shared by every region's capacity layer plus topology-level
  /// counters (allactive.shed.<priority>, allactive.rerouted, ...).
  MetricsRegistry* metrics() { return &metrics_; }
  Clock* clock() const { return options_.clock; }

 private:
  struct Route {
    std::string source_region;
    std::string destination_region;
    std::unique_ptr<stream::UReplicator> replicator;
  };

  TopologyOptions options_;
  common::FaultInjector* faults_ = nullptr;
  MetricsRegistry metrics_;
  std::vector<std::unique_ptr<Region>> regions_;
  std::map<std::string, Region*> regions_by_name_;
  std::vector<Route> routes_;
  stream::OffsetMappingStore mapping_store_;
};

}  // namespace uberrt::allactive

#endif  // UBERRT_ALLACTIVE_TOPOLOGY_H_
