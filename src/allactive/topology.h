#ifndef UBERRT_ALLACTIVE_TOPOLOGY_H_
#define UBERRT_ALLACTIVE_TOPOLOGY_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/fault_injector.h"
#include "common/status.h"
#include "stream/broker.h"
#include "stream/ureplicator.h"

namespace uberrt::allactive {

/// One deployment region: a regional Kafka cluster receiving locally
/// produced events and an aggregate cluster holding the global view (every
/// region's regional data replicated in), per Section 6 / Figure 6.
class Region {
 public:
  explicit Region(std::string name)
      : name_(std::move(name)),
        regional_(std::make_unique<stream::Broker>(name_ + "-regional")),
        aggregate_(std::make_unique<stream::Broker>(name_ + "-aggregate")) {}

  const std::string& name() const { return name_; }
  stream::Broker* regional() { return regional_.get(); }
  stream::Broker* aggregate() { return aggregate_.get(); }

  /// Simulates losing the whole region (both clusters).
  void Fail() {
    regional_->SetAvailable(false);
    aggregate_->SetAvailable(false);
  }
  void Restore() {
    regional_->SetAvailable(true);
    aggregate_->SetAvailable(true);
  }
  bool healthy() const { return regional_->available() && aggregate_->available(); }

 private:
  std::string name_;
  std::unique_ptr<stream::Broker> regional_;
  std::unique_ptr<stream::Broker> aggregate_;
};

/// The multi-region Kafka fabric of Section 6: every region's regional
/// cluster replicates into *every* region's aggregate cluster via
/// uReplicator (with offset-mapping checkpoints per route), so each
/// aggregate cluster converges to the same logical content and any region
/// can compute the global view.
class MultiRegionTopology {
 public:
  explicit MultiRegionTopology(const std::vector<std::string>& region_names);

  Region* GetRegion(const std::string& name);
  std::vector<std::string> RegionNames() const;

  /// Creates the topic in every regional and aggregate cluster and wires a
  /// uReplicator per (source regional, destination aggregate) pair.
  Status CreateTopic(const std::string& topic, stream::TopicConfig config);

  /// Produces to a region's regional cluster (an app publishing locally).
  Result<stream::ProduceResult> ProduceToRegion(const std::string& region,
                                                const std::string& topic,
                                                stream::Message message);

  /// Pumps all replication routes once; returns messages moved. Routes
  /// whose source or destination region is down are skipped.
  Result<int64_t> ReplicateOnce();
  /// Pumps until all healthy routes are drained.
  Result<int64_t> ReplicateAll(int32_t max_cycles = 1000);

  /// Route name for the mapping store ("<src>-regional><dst>-aggregate").
  static std::string RouteName(const std::string& source_region,
                               const std::string& destination_region);

  stream::OffsetMappingStore* mapping_store() { return &mapping_store_; }

  /// The offset sync job of Figure 7: translates `group`'s committed
  /// offsets on `from_region`'s aggregate cluster into committed offsets on
  /// `to_region`'s aggregate cluster, conservatively (min over source
  /// routes) so failover loses nothing and replays only a bounded window.
  /// Returns the number of partitions synced.
  Result<int64_t> SyncConsumerOffsets(const std::string& group, const std::string& topic,
                                      const std::string& from_region,
                                      const std::string& to_region);

  /// Attaches the process-wide fault plane: region availability is then
  /// driven by IsDown("region.<name>") via SyncRegionHealth, and every
  /// replication route consults "ureplicator.copy.<route>".
  void SetFaultInjector(common::FaultInjector* faults);

  /// Reconciles every region's availability with the fault plane's
  /// scripted outages: Fail()s regions inside an outage window, Restore()s
  /// them outside. No-op without an injector. With an injector attached the
  /// fault plane is the single source of truth for region health.
  void SyncRegionHealth();

 private:
  struct Route {
    std::string source_region;
    std::string destination_region;
    std::unique_ptr<stream::UReplicator> replicator;
  };

  common::FaultInjector* faults_ = nullptr;
  std::vector<std::unique_ptr<Region>> regions_;
  std::map<std::string, Region*> regions_by_name_;
  std::vector<Route> routes_;
  stream::OffsetMappingStore mapping_store_;
};

}  // namespace uberrt::allactive

#endif  // UBERRT_ALLACTIVE_TOPOLOGY_H_
