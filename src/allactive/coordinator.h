#ifndef UBERRT_ALLACTIVE_COORDINATOR_H_
#define UBERRT_ALLACTIVE_COORDINATOR_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "allactive/topology.h"
#include "common/status.h"
#include "stream/consumer.h"

namespace uberrt::allactive {

/// The "all-active coordinating service" of Figure 6: tracks which region's
/// update service is primary for each service and fails over to a healthy
/// region on demand. In active-active mode every region runs the full
/// (compute-intensive) pipeline; only the primary's results are published.
class AllActiveCoordinator {
 public:
  explicit AllActiveCoordinator(MultiRegionTopology* topology) : topology_(topology) {}

  /// Registers a service with an initial primary region.
  Status RegisterService(const std::string& service, const std::string& primary_region);

  Result<std::string> Primary(const std::string& service) const;
  bool IsPrimary(const std::string& service, const std::string& region) const;

  /// Elects a new healthy primary (used when the current primary region is
  /// down). Returns the new primary region.
  Result<std::string> Failover(const std::string& service);

  /// One health-check sweep: every service whose primary region is
  /// unhealthy is failed over to a healthy region automatically (paper
  /// Section 6 — failover must not wait for an operator). Returns how many
  /// services moved; a service with no healthy region available stays put
  /// and is retried next sweep. Pair with
  /// MultiRegionTopology::SyncRegionHealth when outages are scripted on a
  /// fault injector.
  Result<int64_t> HealthCheckOnce();

  int64_t failovers() const;
  /// Subset of failovers() initiated by HealthCheckOnce.
  int64_t auto_failovers() const;

 private:
  MultiRegionTopology* topology_;
  mutable std::mutex mu_;
  std::map<std::string, std::string> primaries_;
  int64_t failovers_ = 0;
  int64_t auto_failovers_ = 0;
};

/// Active/passive consumption (Section 6, Figure 7): a single logical
/// consumer (unique name) reads the aggregate cluster of the primary region;
/// on failover the offset sync job translates its committed progress to the
/// new region and consumption resumes there with zero loss and a bounded
/// replay window. Used by consistency-first services (payments, auditing).
class ActivePassiveConsumer {
 public:
  ActivePassiveConsumer(MultiRegionTopology* topology, std::string group,
                        std::string topic, std::string initial_region);

  /// Polls from the current region's aggregate cluster and commits.
  Result<std::vector<stream::Message>> Poll(size_t max_messages);

  /// Fails over: syncs offsets from the old region to `new_region` and
  /// reopens the consumer there.
  Status FailoverTo(const std::string& new_region);

  const std::string& current_region() const { return region_; }

 private:
  Status OpenConsumer();

  MultiRegionTopology* topology_;
  std::string group_;
  std::string topic_;
  std::string region_;
  std::unique_ptr<stream::Consumer> consumer_;
};

}  // namespace uberrt::allactive

#endif  // UBERRT_ALLACTIVE_COORDINATOR_H_
