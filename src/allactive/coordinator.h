#ifndef UBERRT_ALLACTIVE_COORDINATOR_H_
#define UBERRT_ALLACTIVE_COORDINATOR_H_

#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "allactive/topology.h"
#include "common/retry.h"
#include "common/status.h"
#include "stream/consumer.h"

namespace uberrt::allactive {

/// Failover-policy knobs ("Uber's Failover Architecture"): hysteresis keeps a
/// flapping region from thrashing primaries back and forth, and the drain
/// deadline bounds how long a graceful handover may wait for inflight work.
struct CoordinatorOptions {
  /// Consecutive unhealthy sweeps a primary must accumulate before an
  /// automatic failover fires. 1 = fail over on first observation (a hard
  /// regional outage should not wait).
  int32_t unhealthy_sweeps_before_failover = 1;
  /// Consecutive healthy sweeps a region that has EVER been unhealthy must
  /// accumulate before it is eligible as a failover *target* again. Regions
  /// never seen unhealthy are always eligible, so a fresh topology fails
  /// over instantly; a flapper must prove itself stable first.
  int32_t min_target_healthy_sweeps = 2;
  /// After a service fails over, this many sweeps must pass before it may
  /// auto-fail-over again (manual Failover is exempt — the operator knows).
  int32_t failover_cooldown_sweeps = 2;
  /// Drain-based handover: how long DrainHandover waits for the source
  /// region's inflight window to empty before abandoning the drain and
  /// relying on offset-sync bounded replay instead.
  int64_t drain_deadline_ms = 5'000;
};

/// Per-service registration knobs.
struct ServiceOptions {
  /// Services that compute on the global view (surge, payments) need the
  /// primary region's *aggregate* cluster; a region whose aggregate is down
  /// but regional is up is unhealthy for them. Services that only ingest
  /// locally (needs_aggregate = false) stay put through an aggregate-only
  /// outage — degradation, not binary failover.
  bool needs_aggregate = true;
  /// Initial traffic split, region -> percent (must sum to 100). Empty means
  /// 100% on the primary. Drives RouteFor and PartialFailover.
  std::map<std::string, int32_t> split;
};

/// Result of a drain-based handover.
struct HandoverReport {
  std::string from;
  std::string to;
  /// Inflight produce units hit zero before the deadline (graceful: the new
  /// primary starts from a fully replicated position).
  bool drained = false;
  /// Deadline expired with work still inflight; the handover proceeded
  /// anyway and the offset-sync bounded replay covers the remainder.
  bool abandoned = false;
  int64_t drain_ms = 0;
  int64_t synced_partitions = 0;
};

/// The "all-active coordinating service" of Figure 6, grown from binary
/// failover into capacity-aware failover: tracks which region's update
/// service is primary for each service, splits traffic across regions by
/// deterministic key hashing, shifts k% at a time (partial failover), drains
/// a region before a planned handover, and applies hysteresis so flapping
/// regions don't thrash primaries.
class AllActiveCoordinator {
 public:
  explicit AllActiveCoordinator(MultiRegionTopology* topology,
                                CoordinatorOptions options = {});

  /// Registers a service with an initial primary region (100% split there).
  Status RegisterService(const std::string& service, const std::string& primary_region,
                         ServiceOptions service_options = {});

  Result<std::string> Primary(const std::string& service) const;
  bool IsPrimary(const std::string& service, const std::string& region) const;

  /// Current traffic split (region -> percent; entries sum to 100).
  Result<std::map<std::string, int32_t>> Split(const std::string& service) const;

  /// Deterministic traffic routing: hashes (service, key) into a percent
  /// bucket and walks the split. When the assigned region's regional cluster
  /// is down the key reroutes (deterministically) to the next healthy
  /// region, counted in "allactive.rerouted" — per-key failover without
  /// touching the split.
  Result<std::string> RouteFor(const std::string& service, const std::string& key) const;

  /// Partial failover: shifts up to `percent` points of the service's split
  /// from the current primary to `to_region` (bounded by what the primary
  /// still holds). The primary designation is unchanged — this is the
  /// "shift k% of traffic away" step that precedes or replaces a full flip.
  /// Returns the points actually moved.
  Result<int32_t> PartialFailover(const std::string& service,
                                  const std::string& to_region, int32_t percent);

  /// Drain-based handover to `to_region`: stop-new-work on the current
  /// primary (its capacity layer rejects new produce with kUnavailable),
  /// wait for its inflight window to empty (up to drain_deadline_ms, then
  /// abandon), sync `group`'s consumer offsets across (retried under a
  /// deadline budget), then flip the primary and 100% of the split. Pass an
  /// empty `group` to skip the offset sync (no consumer follows this
  /// service). Counts as a failover.
  Result<HandoverReport> DrainHandover(const std::string& service,
                                       const std::string& to_region,
                                       const std::string& group,
                                       const std::string& topic);

  /// Elects a new healthy primary immediately (operator-initiated; skips
  /// hysteresis). Moves the full split. Returns the new primary region.
  Result<std::string> Failover(const std::string& service);

  /// One health-check sweep. Updates per-region health streaks, then fails
  /// over every service whose primary is unhealthy *for it* (a region with
  /// only its aggregate cluster down is still healthy for services with
  /// needs_aggregate = false) — provided the primary has been unhealthy for
  /// unhealthy_sweeps_before_failover sweeps and the service is past its
  /// failover cooldown. Targets must be healthy for the service and past
  /// the flap-hysteresis bar. Returns how many services moved; a service
  /// with no eligible region stays put and is retried next sweep. Pair with
  /// MultiRegionTopology::SyncRegionHealth when outages are scripted on a
  /// fault injector.
  Result<int64_t> HealthCheckOnce();

  int64_t failovers() const;
  /// Subset of failovers() initiated by HealthCheckOnce.
  int64_t auto_failovers() const;

  const CoordinatorOptions& options() const { return options_; }

 private:
  struct ServiceState {
    std::string primary;
    bool needs_aggregate = true;
    std::map<std::string, int32_t> split;  // region -> percent, sums to 100
    // Far in the past (but safe from int64 underflow in sweep arithmetic).
    int64_t last_failover_sweep = -1'000'000'000;
  };
  struct RegionHealth {
    int32_t healthy_streak = 0;
    int32_t unhealthy_streak = 0;
    bool ever_unhealthy = false;
  };

  /// Is `region` healthy for this service's needs? (Caller may be unlocked —
  /// reads only broker availability atomics.)
  bool HealthyFor(const ServiceState& state, const Region* region) const;
  /// First region != exclude that is healthy for the service and (when
  /// `respect_hysteresis`) past the target-eligibility bar. Empty if none.
  std::string ElectLocked(const ServiceState& state, const std::string& exclude,
                          bool respect_hysteresis) const;
  /// Flips primary + split to `target` and tallies. Caller holds mu_.
  void CommitFailoverLocked(ServiceState* state, const std::string& target);

  MultiRegionTopology* topology_;
  CoordinatorOptions options_;
  mutable std::mutex mu_;
  std::map<std::string, ServiceState> services_;
  std::map<std::string, RegionHealth> region_health_;
  int64_t sweep_ = 0;
  int64_t failovers_ = 0;
  int64_t auto_failovers_ = 0;
  mutable common::RetryPolicy sync_retry_;
  Counter* rerouted_;
};

/// Active/passive consumption (Section 6, Figure 7): a single logical
/// consumer (unique name) reads the aggregate cluster of the primary region;
/// on failover the offset sync job translates its committed progress to the
/// new region and consumption resumes there with zero loss and a bounded
/// replay window. Used by consistency-first services (payments, auditing).
class ActivePassiveConsumer {
 public:
  ActivePassiveConsumer(MultiRegionTopology* topology, std::string group,
                        std::string topic, std::string initial_region);

  /// Polls from the current region's aggregate cluster and commits.
  Result<std::vector<stream::Message>> Poll(size_t max_messages);

  /// Fails over: syncs offsets from the old region to `new_region` and
  /// reopens the consumer there. Both steps run under a RetryPolicy with a
  /// deadline budget ("retries.allactive.failover.*" in the topology
  /// registry) — mid-disaster the offset-sync plane is exactly the thing
  /// that flakes. If a previous attempt left the consumer stranded (synced
  /// but not reopened), calling again with the same region retries the
  /// reopen instead of erroring.
  Status FailoverTo(const std::string& new_region);

  const std::string& current_region() const { return region_; }

 private:
  Status OpenConsumer();

  MultiRegionTopology* topology_;
  std::string group_;
  std::string topic_;
  std::string region_;
  common::RetryPolicy failover_retry_;
  std::unique_ptr<stream::Consumer> consumer_;
};

}  // namespace uberrt::allactive

#endif  // UBERRT_ALLACTIVE_COORDINATOR_H_
