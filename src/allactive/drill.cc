#include "allactive/drill.h"

#include <cinttypes>
#include <cstdio>
#include <set>

#include "allactive/coordinator.h"
#include "allactive/topology.h"
#include "common/fault_injector.h"

namespace uberrt::allactive {

CapacityOptions DrillCapacityDefaults() {
  CapacityOptions capacity;
  capacity.max_inflight_produce_units = 260;
  capacity.max_inflight_query_units = 30;
  capacity.priority_weights = {1.0, 0.6, 0.4};
  capacity.window_ms = 1000;
  capacity.retry_after_ms = 500;
  return capacity;
}

DrillReport DrillHarness::Run(DrillMode mode) {
  SimulatedClock clock(0);
  common::FaultInjector faults(options_.seed, &clock);
  TopologyOptions topo_options;
  topo_options.capacity = options_.capacity;
  topo_options.clock = &clock;
  MultiRegionTopology topology({options_.from_region, options_.to_region},
                               topo_options);
  topology.SetFaultInjector(&faults);
  AllActiveCoordinator coordinator(&topology);
  stream::TopicConfig config;
  config.num_partitions = 4;
  topology.CreateTopic(options_.topic, config).ok();
  coordinator.RegisterService(options_.service, options_.from_region).ok();
  ActivePassiveConsumer consumer(&topology, options_.group, options_.topic,
                                 options_.from_region);
  workload::TripEventGenerator::Options gen_options;
  gen_options.time_step_ms = 10;
  workload::TripEventGenerator generator(gen_options, options_.seed);

  // The outage opens half a tick before the sweep at outage_start_tick —
  // real outages never align with health checks, so detection costs up to
  // one sweep interval.
  const TimestampMs outage_start_ms =
      options_.outage_start_tick * options_.tick_ms - options_.tick_ms / 2;
  const TimestampMs outage_end_ms = options_.outage_end_tick * options_.tick_ms;
  faults.ScheduleOutage("region." + options_.from_region, outage_start_ms,
                        outage_end_ms);
  if (options_.replication_fault_probability > 0) {
    common::FaultRule rule;
    rule.error_probability = options_.replication_fault_probability;
    faults.SetRule("ureplicator.copy", rule);
  }
  if (options_.offset_sync_fault_probability > 0) {
    common::FaultRule rule;
    rule.error_probability = options_.offset_sync_fault_probability;
    faults.SetRule("allactive.offset_sync", rule);
  }

  DrillReport report;
  report.name = mode == DrillMode::kPlanned ? "planned" : "unplanned";

  std::set<std::string> acked_uids;
  std::set<std::string> consumed_uids;
  const auto on_ack = [&](const stream::Message& message, stream::Priority) {
    auto uid = message.headers.find(stream::kHeaderUid);
    if (uid != message.headers.end()) acked_uids.insert(uid->second);
  };

  // MTTR clock: unplanned drills measure from the moment the outage opens;
  // planned drills from the moment the handover starts.
  TimestampMs mttr_start_ms =
      mode == DrillMode::kUnplanned ? outage_start_ms : -1;
  TimestampMs last_ok_poll_ms = 0;

  const auto poll_and_record = [&]() {
    Result<std::vector<stream::Message>> batch = consumer.Poll(1'000);
    if (!batch.ok()) return false;
    for (const stream::Message& message : batch.value()) {
      auto uid = message.headers.find(stream::kHeaderUid);
      if (uid == message.headers.end()) continue;
      if (!consumed_uids.insert(uid->second).second) ++report.replayed;
    }
    last_ok_poll_ms = clock.NowMs();
    return true;
  };
  const auto accumulate = [&](const workload::OpenLoopTick& tick) {
    report.attempted += tick.attempted;
    report.acked += tick.acked;
    report.shed_critical += tick.shed[0];
    report.shed_important += tick.shed[1];
    report.shed_besteffort += tick.shed[2];
    report.unavailable += tick.unavailable;
  };

  for (int64_t tick = 0; tick < options_.ticks; ++tick) {
    // Drains and retry backoffs advance the simulated clock mid-tick; never
    // step it backwards.
    const TimestampMs tick_start_ms = tick * options_.tick_ms;
    if (tick_start_ms > clock.NowMs()) clock.SetMs(tick_start_ms);

    topology.SyncRegionHealth();
    coordinator.HealthCheckOnce().ok();

    if (mode == DrillMode::kPlanned && tick == options_.planned_partial_tick) {
      coordinator
          .PartialFailover(options_.service, options_.to_region,
                           options_.partial_percent)
          .ok();
    }
    if (mode == DrillMode::kPlanned && tick == options_.planned_handover_tick) {
      mttr_start_ms = clock.NowMs();
      Result<HandoverReport> handover = coordinator.DrainHandover(
          options_.service, options_.to_region, options_.group, options_.topic);
      if (handover.ok()) {
        report.drained = handover.value().drained;
        report.abandoned = handover.value().abandoned;
        report.drain_ms = handover.value().drain_ms;
        report.synced_partitions = handover.value().synced_partitions;
      }
    }

    // The consumer follows the primary; a failed failover (target still
    // coming up, sync plane flaking) is simply retried next tick.
    Result<std::string> primary = coordinator.Primary(options_.service);
    if (primary.ok() && consumer.current_region() != primary.value()) {
      consumer.FailoverTo(primary.value()).ok();
    }

    // Routed service traffic (follows the split; reroutes around downed
    // regional clusters per key).
    const auto route = [&](const std::string& key) -> stream::MessageBus* {
      Result<std::string> region = coordinator.RouteFor(options_.service, key);
      if (!region.ok()) return nullptr;
      return topology.GetRegion(region.value())->regional();
    };
    accumulate(generator.ProduceOpenLoop(route, options_.topic,
                                         options_.events_per_tick, options_.mix,
                                         on_ack));

    // The survivor's own steady direct load — what makes failover a
    // capacity problem: shifted traffic lands on top of it.
    const auto direct = [&](const std::string&) -> stream::MessageBus* {
      Region* region = topology.GetRegion(options_.to_region);
      return region->regional_healthy() ? region->regional() : nullptr;
    };
    accumulate(generator.ProduceOpenLoop(direct, options_.topic,
                                         options_.base_events_per_tick,
                                         options_.mix, on_ack));

    // Query-side admission against the current primary. Once the survivor
    // is primary it absorbs both regions' dashboards and surge computations.
    const std::string query_region =
        primary.ok() ? primary.value() : options_.to_region;
    RegionCapacity* query_capacity = topology.GetRegion(query_region)->capacity();
    const int64_t factor = query_region == options_.from_region ? 1 : 2;
    for (int64_t i = 0; i < options_.dashboard_queries_per_tick * factor; ++i) {
      Status admitted = query_capacity->AdmitQuery(Priority::kBestEffort);
      if (admitted.code() == StatusCode::kResourceExhausted) {
        ++report.query_shed_besteffort;
      }
    }
    for (int64_t i = 0; i < options_.surge_queries_per_tick * factor; ++i) {
      Status admitted = query_capacity->AdmitQuery(Priority::kCritical);
      if (admitted.code() == StatusCode::kResourceExhausted) {
        ++report.query_shed_critical;
      }
    }

    // Replication pumps; a flaky route fails the pump for this tick and is
    // resumed next tick from its tracked position.
    topology.ReplicateOnce().ok();
    topology.ReplicateOnce().ok();

    const bool polled = poll_and_record();
    if (polled && report.mttr_ms < 0 && mttr_start_ms >= 0 &&
        clock.NowMs() >= mttr_start_ms &&
        consumer.current_region() == options_.to_region) {
      report.mttr_ms = clock.NowMs() - mttr_start_ms;
    }
    if (clock.NowMs() - last_ok_poll_ms > options_.freshness_sla_ms) {
      ++report.sla_violations;
    }
  }

  // Recovery epilogue: past the outage window, restore health, drain every
  // replication backlog and the consumer, then audit the ledger.
  const TimestampMs end_ms = options_.ticks * options_.tick_ms;
  if (end_ms > clock.NowMs()) clock.SetMs(end_ms);
  topology.SyncRegionHealth();
  coordinator.HealthCheckOnce().ok();
  Result<std::string> primary = coordinator.Primary(options_.service);
  if (primary.ok() && consumer.current_region() != primary.value()) {
    consumer.FailoverTo(primary.value()).ok();
  }
  for (int32_t i = 0; i < 50; ++i) {
    Result<int64_t> moved = topology.ReplicateAll();
    if (moved.ok() && moved.value() == 0) break;
  }
  int32_t empty_polls = 0;
  while (empty_polls < 3) {
    const size_t before = consumed_uids.size() + static_cast<size_t>(report.replayed);
    if (!poll_and_record()) break;
    const size_t after = consumed_uids.size() + static_cast<size_t>(report.replayed);
    empty_polls = after == before ? empty_polls + 1 : 0;
  }
  if (report.mttr_ms < 0 && mttr_start_ms >= 0 &&
      consumer.current_region() == options_.to_region) {
    report.mttr_ms = clock.NowMs() - mttr_start_ms;
  }

  report.consumed = static_cast<int64_t>(consumed_uids.size());
  for (const std::string& uid : acked_uids) {
    if (consumed_uids.count(uid) == 0) ++report.lost;
  }
  report.rerouted = topology.metrics()->GetCounter("allactive.rerouted")->value();
  report.failover_retry_attempts =
      topology.metrics()->GetCounter("retries.allactive.failover.attempts")->value();
  report.auto_failovers = coordinator.auto_failovers();
  // Evidence the outage really fired: probabilistic injections (Check sites)
  // plus the health sweeps that observed the scripted window (IsDown sites).
  report.faults_injected =
      faults.metrics()->GetCounter("faults.injected")->value() +
      faults.metrics()
          ->GetCounter("faults.region." + options_.from_region +
                       ".regional.unavailable")
          ->value() +
      faults.metrics()
          ->GetCounter("faults.region." + options_.from_region +
                       ".aggregate.unavailable")
          ->value();
  return report;
}

namespace {

void WriteReportFields(FILE* f, const DrillReport& r) {
  std::fprintf(f, "    {\n");
  std::fprintf(f, "      \"name\": \"%s\",\n", r.name.c_str());
  std::fprintf(f, "      \"mttr_ms\": %" PRId64 ",\n", r.mttr_ms);
  std::fprintf(f, "      \"drained\": %s,\n", r.drained ? "true" : "false");
  std::fprintf(f, "      \"abandoned\": %s,\n", r.abandoned ? "true" : "false");
  std::fprintf(f, "      \"drain_ms\": %" PRId64 ",\n", r.drain_ms);
  std::fprintf(f, "      \"synced_partitions\": %" PRId64 ",\n", r.synced_partitions);
  std::fprintf(f, "      \"attempted\": %" PRId64 ",\n", r.attempted);
  std::fprintf(f, "      \"acked\": %" PRId64 ",\n", r.acked);
  std::fprintf(f, "      \"consumed\": %" PRId64 ",\n", r.consumed);
  std::fprintf(f, "      \"replayed\": %" PRId64 ",\n", r.replayed);
  std::fprintf(f, "      \"lost\": %" PRId64 ",\n", r.lost);
  std::fprintf(f, "      \"shed_critical\": %" PRId64 ",\n", r.shed_critical);
  std::fprintf(f, "      \"shed_important\": %" PRId64 ",\n", r.shed_important);
  std::fprintf(f, "      \"shed_besteffort\": %" PRId64 ",\n", r.shed_besteffort);
  std::fprintf(f, "      \"query_shed_critical\": %" PRId64 ",\n",
               r.query_shed_critical);
  std::fprintf(f, "      \"query_shed_important\": %" PRId64 ",\n",
               r.query_shed_important);
  std::fprintf(f, "      \"query_shed_besteffort\": %" PRId64 ",\n",
               r.query_shed_besteffort);
  std::fprintf(f, "      \"unavailable\": %" PRId64 ",\n", r.unavailable);
  std::fprintf(f, "      \"rerouted\": %" PRId64 ",\n", r.rerouted);
  std::fprintf(f, "      \"sla_violations\": %" PRId64 ",\n", r.sla_violations);
  std::fprintf(f, "      \"failover_retry_attempts\": %" PRId64 ",\n",
               r.failover_retry_attempts);
  std::fprintf(f, "      \"auto_failovers\": %" PRId64 ",\n", r.auto_failovers);
  std::fprintf(f, "      \"faults_injected\": %" PRId64 "\n", r.faults_injected);
  std::fprintf(f, "    }");
}

}  // namespace

Status WriteDrillReportsJson(const std::string& path,
                             const std::vector<DrillReport>& reports) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return Status::Internal("cannot open " + path);
  DrillReport totals;
  int64_t mttr_max = -1;
  for (const DrillReport& r : reports) {
    totals.shed_critical += r.shed_critical + r.query_shed_critical;
    totals.shed_important += r.shed_important + r.query_shed_important;
    totals.shed_besteffort += r.shed_besteffort + r.query_shed_besteffort;
    totals.lost += r.lost;
    totals.replayed += r.replayed;
    totals.sla_violations += r.sla_violations;
    if (r.mttr_ms > mttr_max) mttr_max = r.mttr_ms;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"allactive_drills\",\n");
  std::fprintf(f, "  \"drills\": [\n");
  for (size_t i = 0; i < reports.size(); ++i) {
    WriteReportFields(f, reports[i]);
    std::fprintf(f, "%s\n", i + 1 < reports.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"totals\": {\n");
  std::fprintf(f, "    \"drills\": %zu,\n", reports.size());
  std::fprintf(f, "    \"mttr_ms_max\": %" PRId64 ",\n", mttr_max);
  std::fprintf(f, "    \"shed_critical\": %" PRId64 ",\n", totals.shed_critical);
  std::fprintf(f, "    \"shed_important\": %" PRId64 ",\n", totals.shed_important);
  std::fprintf(f, "    \"shed_besteffort\": %" PRId64 ",\n", totals.shed_besteffort);
  std::fprintf(f, "    \"replayed\": %" PRId64 ",\n", totals.replayed);
  std::fprintf(f, "    \"lost\": %" PRId64 ",\n", totals.lost);
  std::fprintf(f, "    \"sla_violations\": %" PRId64 "\n", totals.sla_violations);
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
  return Status::Ok();
}

}  // namespace uberrt::allactive
