#ifndef UBERRT_ALLACTIVE_DRILL_H_
#define UBERRT_ALLACTIVE_DRILL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "allactive/capacity.h"
#include "common/status.h"
#include "workload/generators.h"

namespace uberrt::allactive {

/// Planned = capacity-aware graceful handover (partial shift, drain, flip)
/// completed *before* the scripted outage window hits the vacated region —
/// the maintenance-drill shape. Unplanned = the outage lands on the live
/// primary and the health-check plane must auto-fail-over mid-traffic.
enum class DrillMode { kPlanned, kUnplanned };

/// Capacity budgets sized for the default drill traffic so that the
/// post-failover surge sheds best-effort (and possibly some important)
/// work while critical traffic always fits: the survivor carries
/// events_per_tick + base_events_per_tick = 150 produce units/window against
/// a 260-unit budget with weights {1.0, 0.6, 0.4} — best-effort ceiling 104,
/// critical reserve 104 units.
CapacityOptions DrillCapacityDefaults();

struct DrillOptions {
  std::string from_region = "dca";
  std::string to_region = "phx";
  std::string service = "surge";
  std::string topic = "trips";
  std::string group = "payments";
  int64_t ticks = 40;
  int64_t tick_ms = 1000;
  /// The outage window on from_region opens half a tick before this tick
  /// (outages never align with health sweeps) and closes at outage_end_tick.
  int64_t outage_start_tick = 10;
  int64_t outage_end_tick = 25;
  /// Planned-mode schedule: shift partial_percent of the split at
  /// planned_partial_tick, full drain-handover at planned_handover_tick
  /// (both before the outage window opens).
  int64_t planned_partial_tick = 5;
  int64_t planned_handover_tick = 8;
  int32_t partial_percent = 50;
  /// Routed service traffic (follows the coordinator's split) and the
  /// survivor's own steady direct load, per tick.
  int64_t events_per_tick = 100;
  int64_t base_events_per_tick = 50;
  /// Query-side admissions per tick against the primary region: dashboard
  /// refreshes are best-effort, surge computations critical. When the
  /// primary is the survivor both regions' query load lands on it (doubled).
  int64_t dashboard_queries_per_tick = 10;
  int64_t surge_queries_per_tick = 3;
  workload::PriorityMix mix{0.15, 0.35};
  /// A tick violates the freshness SLA when the consumer has not completed
  /// a successful poll within this long.
  int64_t freshness_sla_ms = 5'000;
  /// Extra chaos on the control/replication planes: probabilistic transient
  /// faults on "ureplicator.copy" and "allactive.offset_sync". Both planes
  /// sit behind retries, so the gate invariants must hold regardless.
  double replication_fault_probability = 0.0;
  double offset_sync_fault_probability = 0.0;
  CapacityOptions capacity = DrillCapacityDefaults();
  uint64_t seed = 42;
};

/// Everything a drill records — the evidence an operator reviews after a
/// failover exercise, persisted to BENCH_drills.json.
struct DrillReport {
  std::string name;  // "planned" | "unplanned"
  /// Outage (or handover) start to the first successful poll in the
  /// takeover region. -1 if recovery never completed.
  int64_t mttr_ms = -1;
  bool drained = false;
  bool abandoned = false;
  int64_t drain_ms = 0;
  int64_t synced_partitions = 0;
  int64_t attempted = 0;
  int64_t acked = 0;
  int64_t consumed = 0;
  /// Messages consumed more than once (bounded replay after offset sync).
  int64_t replayed = 0;
  /// Acked messages never consumed by drill end. The gate requires 0.
  int64_t lost = 0;
  /// Produce sheds by priority (open-loop tallies). The gate requires
  /// shed_critical == 0.
  int64_t shed_critical = 0;
  int64_t shed_important = 0;
  int64_t shed_besteffort = 0;
  /// Query-side sheds by priority.
  int64_t query_shed_critical = 0;
  int64_t query_shed_important = 0;
  int64_t query_shed_besteffort = 0;
  /// Produce attempts rejected because no region could take them (down or
  /// draining) — re-route traffic, not shed traffic.
  int64_t unavailable = 0;
  /// Per-key deterministic reroutes around a down regional cluster.
  int64_t rerouted = 0;
  int64_t sla_violations = 0;
  int64_t failover_retry_attempts = 0;
  int64_t auto_failovers = 0;
  int64_t faults_injected = 0;
};

/// Runs scripted failover drills against a fresh two-region topology under
/// live open-loop TripEventGenerator traffic, on a simulated clock with a
/// FaultInjector-scripted outage window. Deterministic for a given options
/// struct (same seed, same schedule => same report).
class DrillHarness {
 public:
  explicit DrillHarness(DrillOptions options) : options_(std::move(options)) {}

  /// Executes one drill end to end (build world, run ticks, recover, audit
  /// loss) and returns the evidence.
  DrillReport Run(DrillMode mode);

  const DrillOptions& options() const { return options_; }

 private:
  DrillOptions options_;
};

/// Writes the drill reports (plus cross-drill totals the CI gate reads) as
/// JSON to `path`.
Status WriteDrillReportsJson(const std::string& path,
                             const std::vector<DrillReport>& reports);

}  // namespace uberrt::allactive

#endif  // UBERRT_ALLACTIVE_DRILL_H_
