#include "allactive/topology.h"

#include <algorithm>

namespace uberrt::allactive {

MultiRegionTopology::MultiRegionTopology(const std::vector<std::string>& region_names,
                                         TopologyOptions options)
    : options_(options) {
  for (const std::string& name : region_names) {
    auto region =
        std::make_unique<Region>(name, options_.capacity, options_.clock, &metrics_);
    regions_by_name_[name] = region.get();
    regions_.push_back(std::move(region));
  }
  // Full mesh: every regional cluster replicates into every aggregate.
  for (auto& source : regions_) {
    for (auto& destination : regions_) {
      Route route;
      route.source_region = source->name();
      route.destination_region = destination->name();
      stream::UReplicatorOptions rep_options;
      rep_options.checkpoint_every = 50;
      route.replicator = std::make_unique<stream::UReplicator>(
          source->regional(), destination->aggregate(),
          RouteName(source->name(), destination->name()), &mapping_store_, rep_options);
      routes_.push_back(std::move(route));
    }
  }
}

void MultiRegionTopology::SetFaultInjector(common::FaultInjector* faults) {
  faults_ = faults;
  for (Route& route : routes_) route.replicator->SetFaultInjector(faults);
}

void MultiRegionTopology::SyncRegionHealth() {
  if (faults_ == nullptr) return;
  for (auto& region : regions_) {
    // Component sites are children of "region.<name>", so a rule on the
    // whole-region prefix (the pre-existing chaos vocabulary) downs both,
    // while targeted scripts can fail one cluster and leave the other up.
    const bool regional_down =
        faults_->IsDown("region." + region->name() + ".regional");
    const bool aggregate_down =
        faults_->IsDown("region." + region->name() + ".aggregate");
    if (regional_down) {
      region->FailRegional();
    } else {
      region->RestoreRegional();
    }
    if (aggregate_down) {
      region->FailAggregate();
    } else {
      region->RestoreAggregate();
    }
  }
}

Region* MultiRegionTopology::GetRegion(const std::string& name) {
  auto it = regions_by_name_.find(name);
  return it == regions_by_name_.end() ? nullptr : it->second;
}

std::vector<std::string> MultiRegionTopology::RegionNames() const {
  std::vector<std::string> out;
  for (const auto& region : regions_) out.push_back(region->name());
  return out;
}

std::string MultiRegionTopology::RouteName(const std::string& source_region,
                                           const std::string& destination_region) {
  return source_region + "-regional>" + destination_region + "-aggregate";
}

Status MultiRegionTopology::CreateTopic(const std::string& topic,
                                        stream::TopicConfig config) {
  for (auto& region : regions_) {
    UBERRT_RETURN_IF_ERROR(region->regional()->CreateTopic(topic, config));
    UBERRT_RETURN_IF_ERROR(region->aggregate()->CreateTopic(topic, config));
  }
  for (Route& route : routes_) {
    UBERRT_RETURN_IF_ERROR(route.replicator->AddTopic(topic));
  }
  return Status::Ok();
}

Result<stream::ProduceResult> MultiRegionTopology::ProduceToRegion(
    const std::string& region, const std::string& topic, stream::Message message) {
  Region* r = GetRegion(region);
  if (r == nullptr) return Status::NotFound("no region: " + region);
  return r->regional()->Produce(topic, std::move(message), stream::AckMode::kLeader);
}

Result<int64_t> MultiRegionTopology::ReplicateOnce() {
  int64_t moved = 0;
  for (Route& route : routes_) {
    Region* source = GetRegion(route.source_region);
    Region* destination = GetRegion(route.destination_region);
    if (!source->regional()->available() || !destination->aggregate()->available()) {
      continue;
    }
    Result<int64_t> n = route.replicator->RunOnce();
    if (!n.ok()) return n;
    moved += n.value();
  }
  return moved;
}

Result<int64_t> MultiRegionTopology::ReplicateAll(int32_t max_cycles) {
  int64_t total = 0;
  for (int32_t i = 0; i < max_cycles; ++i) {
    Result<int64_t> moved = ReplicateOnce();
    if (!moved.ok()) return moved;
    total += moved.value();
    if (moved.value() == 0) return total;
  }
  return Status::Timeout("replication did not drain");
}

Result<int64_t> MultiRegionTopology::SyncConsumerOffsets(const std::string& group,
                                                         const std::string& topic,
                                                         const std::string& from_region,
                                                         const std::string& to_region) {
  if (faults_ != nullptr) {
    UBERRT_RETURN_IF_ERROR(faults_->Check("allactive.offset_sync"));
  }
  Region* from = GetRegion(from_region);
  Region* to = GetRegion(to_region);
  if (from == nullptr || to == nullptr) return Status::NotFound("unknown region");
  Result<int32_t> partitions = from->aggregate()->NumPartitions(topic);
  if (!partitions.ok()) return partitions.status();

  int64_t synced = 0;
  for (int32_t p = 0; p < partitions.value(); ++p) {
    Result<int64_t> committed = from->aggregate()->CommittedOffset(group, topic, p);
    if (!committed.ok()) continue;  // nothing to sync for this partition
    stream::TopicPartition tp{topic, p};
    // For each source region: invert (source -> from-aggregate) at the
    // committed offset, then map forward through (source -> to-aggregate).
    // The minimum destination offset over all sources is safe: every
    // message the consumer processed in `from` is at or before it in `to`
    // for its own source stream, so nothing is skipped.
    int64_t safe_offset = INT64_MAX;
    bool any = false;
    for (const auto& region : regions_) {
      const std::string inbound = RouteName(region->name(), from_region);
      const std::string outbound = RouteName(region->name(), to_region);
      Result<stream::OffsetMapping> at_from =
          mapping_store_.LatestByDestinationAtOrBefore(inbound, tp, committed.value());
      if (!at_from.ok()) {
        // No inbound checkpoint at or before the committed offset. Every
        // route anchors its first copied batch, so this proves the consumer
        // has consumed nothing of this source in `from`. If the source has
        // already reached `to`, the resume point must not skip past its
        // first message there; a source with no presence in `to` constrains
        // nothing. Dropping the source instead would let the min over the
        // other sources overshoot its unconsumed messages — silent loss.
        Result<stream::OffsetMapping> anchor = mapping_store_.Earliest(outbound, tp);
        if (anchor.ok()) {
          safe_offset = std::min(safe_offset, anchor.value().destination_offset);
          any = true;
        }
        continue;
      }
      Result<stream::OffsetMapping> at_to = mapping_store_.LatestAtOrBefore(
          outbound, tp, at_from.value().source_offset);
      if (!at_to.ok()) {
        // Destination has no checkpoint yet for this source: resume from
        // the beginning of the destination partition to avoid loss.
        safe_offset = 0;
        any = true;
        continue;
      }
      safe_offset = std::min(safe_offset, at_to.value().destination_offset);
      any = true;
    }
    if (!any) continue;
    UBERRT_RETURN_IF_ERROR(
        to->aggregate()->CommitOffset(group, topic, p, safe_offset));
    ++synced;
  }
  return synced;
}

}  // namespace uberrt::allactive
