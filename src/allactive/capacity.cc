#include "allactive/capacity.h"

#include <cstdlib>

namespace uberrt::allactive {

RegionCapacity::RegionCapacity(std::string region, CapacityOptions options,
                               Clock* clock, MetricsRegistry* metrics)
    : region_(std::move(region)),
      options_(options),
      clock_(clock),
      metrics_(metrics != nullptr ? metrics : &owned_metrics_),
      window_start_(clock->NowMs()) {
  for (int32_t p = 0; p < stream::kNumPriorities; ++p) {
    const char* name = stream::PriorityName(static_cast<Priority>(p));
    shed_counters_[p] = metrics_->GetCounter(std::string("allactive.shed.") + name);
    admitted_counters_[p] =
        metrics_->GetCounter(std::string("allactive.admitted.") + name);
  }
  drain_rejected_ = metrics_->GetCounter("allactive.drain.rejected");
  produce_gauge_ =
      metrics_->GetGauge("allactive." + region_ + ".inflight_produce");
  query_gauge_ = metrics_->GetGauge("allactive." + region_ + ".inflight_query");
}

void RegionCapacity::RollWindowLocked() const {
  const TimestampMs now = clock_->NowMs();
  if (now - window_start_ >= options_.window_ms || now < window_start_) {
    window_start_ = now;
    produce_used_ = 0;
    query_used_ = 0;
  }
}

Status RegionCapacity::AdmitLocked(const char* kind, int64_t* used,
                                   int64_t budget, Priority priority,
                                   int64_t units) {
  const auto p = static_cast<size_t>(priority);
  const double weight = options_.priority_weights[p];
  // The ladder: class p may push total usage up to weight_p * budget. With
  // non-increasing weights, best-effort hits its ceiling first, then
  // important; critical rides to the full budget, and the gap between the
  // important weight and 1.0 is its guaranteed reserve.
  const auto ceiling = static_cast<int64_t>(weight * static_cast<double>(budget));
  if (*used + units > ceiling) {
    shed_[p] += 1;
    shed_counters_[p]->Increment();
    return Status::ResourceExhausted(
        "region " + region_ + " over " + kind + " budget for " +
        stream::PriorityName(priority) + "; retry after " +
        std::to_string(options_.retry_after_ms) + " ms");
  }
  *used += units;
  admitted_[p] += units;
  admitted_counters_[p]->Increment(units);
  return Status::Ok();
}

Status RegionCapacity::AdmitProduce(const std::string& topic, Priority priority,
                                    int64_t units) {
  (void)topic;
  std::lock_guard<std::mutex> lock(mu_);
  if (draining_) {
    drain_rejected_->Increment();
    return Status::Unavailable("region " + region_ +
                               " draining for handover; re-route produce");
  }
  RollWindowLocked();
  Status admitted = AdmitLocked("produce", &produce_used_,
                                options_.max_inflight_produce_units, priority,
                                units);
  produce_gauge_->Set(produce_used_);
  return admitted;
}

Status RegionCapacity::AdmitQuery(Priority priority, int64_t units) {
  std::lock_guard<std::mutex> lock(mu_);
  if (draining_) {
    drain_rejected_->Increment();
    return Status::Unavailable("region " + region_ +
                               " draining for handover; re-route query");
  }
  RollWindowLocked();
  Status admitted = AdmitLocked("query", &query_used_,
                                options_.max_inflight_query_units, priority,
                                units);
  query_gauge_->Set(query_used_);
  return admitted;
}

void RegionCapacity::BeginDrain() {
  std::lock_guard<std::mutex> lock(mu_);
  draining_ = true;
}

void RegionCapacity::EndDrain() {
  std::lock_guard<std::mutex> lock(mu_);
  draining_ = false;
}

bool RegionCapacity::draining() const {
  std::lock_guard<std::mutex> lock(mu_);
  return draining_;
}

int64_t RegionCapacity::inflight_produce() const {
  std::lock_guard<std::mutex> lock(mu_);
  RollWindowLocked();
  return produce_used_;
}

int64_t RegionCapacity::inflight_query() const {
  std::lock_guard<std::mutex> lock(mu_);
  RollWindowLocked();
  return query_used_;
}

int64_t RegionCapacity::shed_count(Priority priority) const {
  std::lock_guard<std::mutex> lock(mu_);
  return shed_[static_cast<size_t>(priority)];
}

int64_t RegionCapacity::admitted_count(Priority priority) const {
  std::lock_guard<std::mutex> lock(mu_);
  return admitted_[static_cast<size_t>(priority)];
}

int64_t RegionCapacity::RetryAfterMsFromStatus(const Status& status) {
  if (status.code() != StatusCode::kResourceExhausted) return -1;
  const std::string& message = status.message();
  const std::string marker = "retry after ";
  size_t at = message.rfind(marker);
  if (at == std::string::npos) return -1;
  return std::strtoll(message.c_str() + at + marker.size(), nullptr, 10);
}

}  // namespace uberrt::allactive
