#ifndef UBERRT_ALLACTIVE_CAPACITY_H_
#define UBERRT_ALLACTIVE_CAPACITY_H_

#include <array>
#include <cstdint>
#include <mutex>
#include <string>

#include "common/clock.h"
#include "common/metrics.h"
#include "common/status.h"
#include "stream/admission.h"

namespace uberrt::allactive {

using stream::Priority;

/// Per-region capacity budget ("Uber's Failover Architecture": failover is a
/// capacity problem — the surviving region must absorb shifted traffic
/// without melting, which means admission control with priority-ordered
/// load shedding rather than best-wishes acceptance).
struct CapacityOptions {
  /// Max produce units in flight inside one admission window. A unit is one
  /// message (batches cost record_count). Default is effectively unlimited
  /// so existing topologies are unaffected until a budget is declared.
  int64_t max_inflight_produce_units = INT64_MAX / 4;
  /// Max query units in flight inside one admission window (a dashboard
  /// refresh or surge computation declares its own cost).
  int64_t max_inflight_query_units = INT64_MAX / 4;
  /// Per-priority weights: the fraction of the budget traffic of class p
  /// (and everything admitted before it) may fill before class p is shed.
  /// kCritical gets the full budget; the gap between the kImportant weight
  /// and 1.0 is the critical reserve that guarantees surge pricing is never
  /// crowded out by dashboards. Must be non-increasing.
  std::array<double, stream::kNumPriorities> priority_weights = {1.0, 0.6, 0.4};
  /// Admission accounting window: units acquired by an admit are held until
  /// the window rolls over on the region clock, so the budget is a bound on
  /// per-window (≈ per-tick) load.
  int64_t window_ms = 1000;
  /// Retry-after hint carried by shed rejections (reject-with-retry-after,
  /// never a silent drop).
  int64_t retry_after_ms = 1000;
};

/// Tracks one region's inflight produce/query units and sheds over-budget
/// traffic lowest-priority-first. Installed on the region's *regional*
/// broker as its produce admission (replication into aggregates is internal
/// traffic and exempt). Thread-safe.
///
/// Metrics (into the shared topology registry):
///   allactive.shed.<priority>            sheds, produce + query combined
///   allactive.admitted.<priority>        admitted units
///   allactive.drain.rejected             produces rejected while draining
///   allactive.<region>.inflight_produce  gauge, current window
///   allactive.<region>.inflight_query    gauge, current window
class RegionCapacity : public stream::ProduceAdmission {
 public:
  RegionCapacity(std::string region, CapacityOptions options, Clock* clock,
                 MetricsRegistry* metrics = nullptr);

  /// stream::ProduceAdmission. Sheds with kResourceExhausted ("retry after
  /// <n> ms"); while draining rejects everything with kUnavailable so
  /// clients re-route to the takeover region instead of backing off.
  Status AdmitProduce(const std::string& topic, Priority priority,
                      int64_t units) override;

  /// Same admission ladder for query-side work (dashboards vs surge).
  Status AdmitQuery(Priority priority, int64_t units = 1);

  /// Drain-based handover: stop-new-work. Admissions are rejected until
  /// EndDrain; inflight units decay as the window rolls.
  void BeginDrain();
  void EndDrain();
  bool draining() const;

  /// Units admitted in the current window (rolls the window first, so a
  /// drain loop on a simulated clock observes the decay).
  int64_t inflight_produce() const;
  int64_t inflight_query() const;

  /// Per-region shed/admit tallies (the shared-registry counters aggregate
  /// across regions; drill reports need the per-region split).
  int64_t shed_count(Priority priority) const;
  int64_t admitted_count(Priority priority) const;

  /// Extracts the "retry after <n> ms" hint from a shed rejection; -1 when
  /// the status is not a shed.
  static int64_t RetryAfterMsFromStatus(const Status& status);

  const std::string& region() const { return region_; }
  const CapacityOptions& options() const { return options_; }

 private:
  /// Shared admission ladder. `used` is the inflight counter for the kind,
  /// `budget` its max units. Caller holds mu_.
  Status AdmitLocked(const char* kind, int64_t* used, int64_t budget,
                     Priority priority, int64_t units);
  void RollWindowLocked() const;

  const std::string region_;
  const CapacityOptions options_;
  Clock* const clock_;
  MetricsRegistry owned_metrics_;  // used when no registry is injected
  MetricsRegistry* metrics_;

  mutable std::mutex mu_;
  mutable TimestampMs window_start_ = 0;
  mutable int64_t produce_used_ = 0;
  mutable int64_t query_used_ = 0;
  bool draining_ = false;
  std::array<int64_t, stream::kNumPriorities> shed_{};
  std::array<int64_t, stream::kNumPriorities> admitted_{};

  Counter* shed_counters_[stream::kNumPriorities];
  Counter* admitted_counters_[stream::kNumPriorities];
  Counter* drain_rejected_;
  Gauge* produce_gauge_;
  Gauge* query_gauge_;
};

}  // namespace uberrt::allactive

#endif  // UBERRT_ALLACTIVE_CAPACITY_H_
