#include "compute/window_operator.h"

#include <algorithm>
#include <cstring>

#include "common/hash.h"
#include "storage/archive.h"

namespace uberrt::compute {

namespace {

int64_t ApproxRowBytes(const Row& row) {
  int64_t bytes = 16;
  for (const Value& v : row) {
    bytes += 16;
    if (v.type() == ValueType::kString) bytes += static_cast<int64_t>(v.AsString().size());
  }
  return bytes;
}

}  // namespace

void EncodeKeyTo(const Row& row, const std::vector<int>& key_indices,
                 std::string* out) {
  out->clear();
  // Same bytes as EncodeRow of the key-field Row: u32 count then tagged
  // values, with out-of-range indices encoded as nulls.
  uint32_t count = static_cast<uint32_t>(key_indices.size());
  char buf[4];
  std::memcpy(buf, &count, 4);
  out->append(buf, 4);
  for (int idx : key_indices) {
    if (idx >= 0 && idx < static_cast<int>(row.size())) {
      AppendValue(out, row[static_cast<size_t>(idx)]);
    } else {
      AppendValue(out, Value::Null());
    }
  }
}

std::string EncodeKey(const Row& row, const std::vector<int>& key_indices) {
  std::string out;
  EncodeKeyTo(row, key_indices, &out);
  return out;
}

std::vector<int> ResolveIndices(const RowSchema& schema,
                                const std::vector<std::string>& fields) {
  std::vector<int> out;
  out.reserve(fields.size());
  for (const std::string& f : fields) out.push_back(schema.FieldIndex(f));
  return out;
}

Value Accumulator::Finish(AggregateSpec::Kind kind) const {
  switch (kind) {
    case AggregateSpec::Kind::kCount:
      return Value(count);
    case AggregateSpec::Kind::kSum:
      return Value(sum);
    case AggregateSpec::Kind::kMin:
      return Value(count == 0 ? 0.0 : min);
    case AggregateSpec::Kind::kMax:
      return Value(count == 0 ? 0.0 : max);
    case AggregateSpec::Kind::kAvg:
      return Value(count == 0 ? 0.0 : sum / static_cast<double>(count));
  }
  return Value::Null();
}

// --- WindowAggregateOperator -------------------------------------------

WindowAggregateOperator::WindowAggregateOperator(const TransformSpec& spec,
                                                 const RowSchema& input)
    : spec_(spec), input_(input) {
  key_indices_ = ResolveIndices(input, spec.key_fields);
  for (const AggregateSpec& agg : spec.aggregates) {
    agg_indices_.push_back(agg.field.empty() ? -1 : input.FieldIndex(agg.field));
  }
}

std::vector<TimestampMs> WindowAggregateOperator::AssignWindows(TimestampMs t) const {
  std::vector<TimestampMs> starts;
  const WindowSpec& w = spec_.window;
  if (w.type == WindowSpec::Type::kTumbling) {
    TimestampMs start = t - ((t % w.size_ms) + w.size_ms) % w.size_ms;
    starts.push_back(start);
  } else if (w.type == WindowSpec::Type::kSliding) {
    TimestampMs last_start = t - ((t % w.slide_ms) + w.slide_ms) % w.slide_ms;
    for (TimestampMs s = last_start; s > t - w.size_ms; s -= w.slide_ms) {
      starts.push_back(s);
    }
  }
  return starts;
}

Row WindowAggregateOperator::KeyValues(const Row& row) const {
  Row key_values;
  key_values.reserve(key_indices_.size());
  for (int idx : key_indices_) {
    key_values.push_back(idx >= 0 && idx < static_cast<int>(row.size())
                             ? row[static_cast<size_t>(idx)]
                             : Value::Null());
  }
  return key_values;
}

int64_t WindowAggregateOperator::WindowStateBytes(const WindowState& ws) const {
  return ApproxRowBytes(ws.key_values) +
         static_cast<int64_t>(spec_.aggregates.size()) * 40 + 48;
}

void WindowAggregateOperator::AddToWindow(uint64_t key_hash, std::string_view key,
                                          const Row& source_row, TimestampMs start,
                                          TimestampMs end) {
  bool inserted = false;
  WindowState& ws = windows_.FindOrInsert(key_hash, key, start, &inserted);
  if (inserted) {
    ws.key_values = KeyValues(source_row);
    ws.end = end;
    ws.accumulators.resize(spec_.aggregates.size());
    state_bytes_ += WindowStateBytes(ws);
  }
  for (size_t a = 0; a < spec_.aggregates.size(); ++a) {
    int idx = agg_indices_[a];
    double v = 0.0;
    if (idx >= 0 && idx < static_cast<int>(source_row.size())) {
      v = source_row[static_cast<size_t>(idx)].ToNumeric();
    }
    ws.accumulators[a].Add(v);
  }
}

void WindowAggregateOperator::AddToSession(uint64_t key_hash, std::string_view key,
                                           const Row& source_row, TimestampMs t) {
  // A session for this record spans [t, t + gap). Find overlapping sessions
  // of the same key and merge them.
  TimestampMs new_start = t;
  TimestampMs new_end = t + spec_.window.gap_ms;
  std::vector<Accumulator> merged(spec_.aggregates.size());
  std::vector<TimestampMs> to_erase;
  windows_.ForEachMutable([&](FlatKeyedMap<WindowState>::Entry& entry) {
    if (entry.hash != key_hash || entry.key != key) return;
    WindowState& ws = entry.value;
    if (entry.start <= new_end && ws.end >= new_start) {
      new_start = std::min(new_start, entry.start);
      new_end = std::max(new_end, ws.end);
      for (size_t a = 0; a < merged.size(); ++a) {
        const Accumulator& acc = ws.accumulators[a];
        if (acc.count > 0) {
          if (merged[a].count == 0) {
            merged[a] = acc;
          } else {
            merged[a].count += acc.count;
            merged[a].sum += acc.sum;
            merged[a].min = std::min(merged[a].min, acc.min);
            merged[a].max = std::max(merged[a].max, acc.max);
          }
        }
      }
      to_erase.push_back(entry.start);
    }
  });
  for (TimestampMs start : to_erase) {
    WindowState* ws = windows_.Find(key_hash, key, start);
    if (ws != nullptr) state_bytes_ -= WindowStateBytes(*ws);
    windows_.Erase(key_hash, key, start);
  }
  bool inserted = false;
  WindowState& ws = windows_.FindOrInsert(key_hash, key, new_start, &inserted);
  ws.key_values = KeyValues(source_row);
  ws.end = new_end;
  ws.accumulators = std::move(merged);
  state_bytes_ += WindowStateBytes(ws);
  for (size_t a = 0; a < spec_.aggregates.size(); ++a) {
    int idx = agg_indices_[a];
    double v = 0.0;
    if (idx >= 0 && idx < static_cast<int>(source_row.size())) {
      v = source_row[static_cast<size_t>(idx)].ToNumeric();
    }
    ws.accumulators[a].Add(v);
  }
}

void WindowAggregateOperator::ProcessRecord(const Element& element, Emitter* out) {
  (void)out;
  TimestampMs t = element.event_time;
  EncodeKeyTo(element.row, key_indices_, &key_scratch_);
  uint64_t key_hash = Fnv1a64(key_scratch_);
  if (spec_.window.type == WindowSpec::Type::kSession) {
    if (t + spec_.window.gap_ms + spec_.allowed_lateness_ms <= current_watermark_) {
      ++late_dropped_;
      return;
    }
    AddToSession(key_hash, key_scratch_, element.row, t);
    return;
  }
  for (TimestampMs start : AssignWindows(t)) {
    TimestampMs end = start + spec_.window.size_ms;
    if (end + spec_.allowed_lateness_ms <= current_watermark_) {
      ++late_dropped_;
      continue;
    }
    AddToWindow(key_hash, key_scratch_, element.row, start, end);
  }
}

void WindowAggregateOperator::Fire(TimestampMs start, const WindowState& ws,
                                   Emitter* out) {
  Row result = ws.key_values;
  result.push_back(Value(static_cast<int64_t>(start)));
  for (size_t a = 0; a < spec_.aggregates.size(); ++a) {
    result.push_back(ws.accumulators[a].Finish(spec_.aggregates[a].kind));
  }
  out->Emit(std::move(result), ws.end - 1);
}

void WindowAggregateOperator::OnWatermark(TimestampMs watermark, Emitter* out) {
  current_watermark_ = std::max(current_watermark_, watermark);
  // Fire windows whose end + lateness has passed. Session windows may keep
  // extending, but once the watermark passes end + gap no record can extend
  // them (later records would open a new session past end). Fired windows
  // are sorted by (start, key) — the retired std::map's iteration order — so
  // emission order is unchanged by the flat-hash migration.
  struct FiredWindow {
    TimestampMs start;
    std::string key;
    uint64_t hash;
  };
  std::vector<FiredWindow> fired;
  windows_.ForEach([&](const FlatKeyedMap<WindowState>::Entry& entry) {
    TimestampMs fire_at = entry.value.end + spec_.allowed_lateness_ms;
    if (watermark == kMaxWatermark || fire_at <= watermark) {
      fired.push_back({entry.start, entry.key, entry.hash});
    }
  });
  std::sort(fired.begin(), fired.end(), [](const FiredWindow& a, const FiredWindow& b) {
    if (a.start != b.start) return a.start < b.start;
    return a.key < b.key;
  });
  for (const FiredWindow& fw : fired) {
    WindowState* ws = windows_.Find(fw.hash, fw.key, fw.start);
    if (ws == nullptr) continue;
    Fire(fw.start, *ws, out);
    state_bytes_ -= WindowStateBytes(*ws);
    windows_.Erase(fw.hash, fw.key, fw.start);
  }
}

std::string WindowAggregateOperator::SnapshotState() const {
  // One row per live window:
  // [key(string), start, end, (count,sum,min,max) x aggregates]
  // Sorted by (start, key), so blobs are byte-identical to the pre-flat-hash
  // std::map encoding and deterministic across runs.
  std::vector<Row> rows;
  rows.reserve(windows_.size());
  windows_.ForEach([&](const FlatKeyedMap<WindowState>::Entry& entry) {
    const WindowState& ws = entry.value;
    Row row;
    row.push_back(Value(entry.key));
    row.push_back(Value(static_cast<int64_t>(entry.start)));
    row.push_back(Value(static_cast<int64_t>(ws.end)));
    row.push_back(Value(EncodeRow(ws.key_values)));
    for (const Accumulator& acc : ws.accumulators) {
      row.push_back(Value(acc.count));
      row.push_back(Value(acc.sum));
      row.push_back(Value(acc.min));
      row.push_back(Value(acc.max));
    }
    rows.push_back(std::move(row));
  });
  std::sort(rows.begin(), rows.end(), [](const Row& a, const Row& b) {
    if (a[1].AsInt() != b[1].AsInt()) return a[1].AsInt() < b[1].AsInt();
    return a[0].AsString() < b[0].AsString();
  });
  return storage::EncodeRowBatch(rows);
}

Status WindowAggregateOperator::RestoreState(const std::string& blob) {
  Result<std::vector<Row>> rows = storage::DecodeRowBatch(blob);
  if (!rows.ok()) return rows.status();
  windows_.Clear();
  state_bytes_ = 0;
  for (const Row& row : rows.value()) {
    size_t expected = 4 + spec_.aggregates.size() * 4;
    if (row.size() != expected) return Status::Corruption("window state row size");
    const std::string& key = row[0].AsString();
    TimestampMs start = row[1].AsInt();
    bool inserted = false;
    WindowState& ws = windows_.FindOrInsert(Fnv1a64(key), key, start, &inserted);
    ws.end = row[2].AsInt();
    Result<Row> key_values = DecodeRow(row[3].AsString());
    if (!key_values.ok()) return key_values.status();
    ws.key_values = std::move(key_values.value());
    ws.accumulators.clear();
    for (size_t a = 0; a < spec_.aggregates.size(); ++a) {
      Accumulator acc;
      acc.count = row[4 + a * 4].AsInt();
      acc.sum = row[5 + a * 4].AsDouble();
      acc.min = row[6 + a * 4].AsDouble();
      acc.max = row[7 + a * 4].AsDouble();
      ws.accumulators.push_back(acc);
    }
    state_bytes_ += WindowStateBytes(ws);
  }
  return Status::Ok();
}

int64_t WindowAggregateOperator::StateBytes() const { return state_bytes_; }

// --- WindowJoinOperator --------------------------------------------------

WindowJoinOperator::WindowJoinOperator(const TransformSpec& spec, const RowSchema& left,
                                       const RowSchema& right)
    : spec_(spec), left_(left), right_(right) {
  left_key_indices_ = ResolveIndices(left, spec.key_fields);
  right_key_indices_ = ResolveIndices(right, spec.key_fields);
  // Right fields that are not duplicates of left fields.
  for (size_t i = 0; i < right.fields().size(); ++i) {
    if (left.FieldIndex(right.fields()[i].name) < 0) {
      right_output_indices_.push_back(static_cast<int>(i));
    }
  }
}

Row WindowJoinOperator::JoinRows(const Row& left, const Row& right) const {
  Row out = left;
  for (int idx : right_output_indices_) {
    out.push_back(right[static_cast<size_t>(idx)]);
  }
  return out;
}

void WindowJoinOperator::ProcessRecord(const Element& element, Emitter* out) {
  TimestampMs t = element.event_time;
  TimestampMs size = spec_.window.size_ms;
  TimestampMs start = t - ((t % size) + size) % size;
  if (start + size + spec_.allowed_lateness_ms <= current_watermark_) {
    ++late_dropped_;
    return;
  }
  bool is_left = element.side == 0;
  EncodeKeyTo(element.row, is_left ? left_key_indices_ : right_key_indices_,
              &key_scratch_);
  uint64_t key_hash = Fnv1a64(key_scratch_);
  bool inserted = false;
  Buffers& buffers = buffers_.FindOrInsert(key_hash, key_scratch_, start, &inserted);
  if (is_left) {
    for (const auto& [right_row, right_time] : buffers.right) {
      out->Emit(JoinRows(element.row, right_row), std::max(t, right_time));
    }
    buffers.left.emplace_back(element.row, t);
  } else {
    for (const auto& [left_row, left_time] : buffers.left) {
      out->Emit(JoinRows(left_row, element.row), std::max(t, left_time));
    }
    buffers.right.emplace_back(element.row, t);
  }
  state_bytes_ += ApproxRowBytes(element.row);
}

void WindowJoinOperator::OnWatermark(TimestampMs watermark, Emitter* out) {
  (void)out;
  current_watermark_ = std::max(current_watermark_, watermark);
  struct Expired {
    TimestampMs start;
    std::string key;
    uint64_t hash;
  };
  std::vector<Expired> expired;
  buffers_.ForEach([&](const FlatKeyedMap<Buffers>::Entry& entry) {
    TimestampMs end = entry.start + spec_.window.size_ms;
    if (watermark == kMaxWatermark ||
        end + spec_.allowed_lateness_ms <= watermark) {
      expired.push_back({entry.start, entry.key, entry.hash});
    }
  });
  for (const Expired& e : expired) {
    Buffers* buffers = buffers_.Find(e.hash, e.key, e.start);
    if (buffers == nullptr) continue;
    for (const auto& [row, t] : buffers->left) state_bytes_ -= ApproxRowBytes(row);
    for (const auto& [row, t] : buffers->right) state_bytes_ -= ApproxRowBytes(row);
    buffers_.Erase(e.hash, e.key, e.start);
  }
}

std::string WindowJoinOperator::SnapshotState() const {
  // One row per buffered record: [key, start, side, event_time, enc_row].
  // Buckets sorted by (start, key) with left rows before right, matching the
  // pre-flat-hash std::map blob byte for byte.
  struct Bucket {
    TimestampMs start;
    const std::string* key;
    const Buffers* buffers;
  };
  std::vector<Bucket> buckets;
  buckets.reserve(buffers_.size());
  buffers_.ForEach([&](const FlatKeyedMap<Buffers>::Entry& entry) {
    buckets.push_back({entry.start, &entry.key, &entry.value});
  });
  std::sort(buckets.begin(), buckets.end(), [](const Bucket& a, const Bucket& b) {
    if (a.start != b.start) return a.start < b.start;
    return *a.key < *b.key;
  });
  std::vector<Row> rows;
  for (const Bucket& bucket : buckets) {
    for (const auto& [row, t] : bucket.buffers->left) {
      rows.push_back({Value(*bucket.key), Value(static_cast<int64_t>(bucket.start)),
                      Value(static_cast<int64_t>(0)), Value(static_cast<int64_t>(t)),
                      Value(EncodeRow(row))});
    }
    for (const auto& [row, t] : bucket.buffers->right) {
      rows.push_back({Value(*bucket.key), Value(static_cast<int64_t>(bucket.start)),
                      Value(static_cast<int64_t>(1)), Value(static_cast<int64_t>(t)),
                      Value(EncodeRow(row))});
    }
  }
  return storage::EncodeRowBatch(rows);
}

Status WindowJoinOperator::RestoreState(const std::string& blob) {
  Result<std::vector<Row>> rows = storage::DecodeRowBatch(blob);
  if (!rows.ok()) return rows.status();
  buffers_.Clear();
  state_bytes_ = 0;
  for (const Row& row : rows.value()) {
    if (row.size() != 5) return Status::Corruption("join state row size");
    const std::string& key = row[0].AsString();
    TimestampMs start = row[1].AsInt();
    Result<Row> data = DecodeRow(row[4].AsString());
    if (!data.ok()) return data.status();
    state_bytes_ += ApproxRowBytes(data.value());
    bool inserted = false;
    Buffers& buffers = buffers_.FindOrInsert(Fnv1a64(key), key, start, &inserted);
    if (row[2].AsInt() == 0) {
      buffers.left.emplace_back(std::move(data.value()), row[3].AsInt());
    } else {
      buffers.right.emplace_back(std::move(data.value()), row[3].AsInt());
    }
  }
  return Status::Ok();
}

int64_t WindowJoinOperator::StateBytes() const { return state_bytes_; }

}  // namespace uberrt::compute
