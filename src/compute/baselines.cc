#include "compute/baselines.h"

#include <cmath>
#include <map>

#include "compute/window_operator.h"

namespace uberrt::compute {

BacklogRecoveryResult SimulateCreditBasedRecovery(const BacklogRecoveryParams& params) {
  BacklogRecoveryResult result;
  // The operator pulls exactly service_per_tick per tick; zero waste.
  result.ticks_to_recover =
      (params.backlog + params.service_per_tick - 1) / params.service_per_tick;
  return result;
}

BacklogRecoveryResult SimulateAckReplayRecovery(const BacklogRecoveryParams& params) {
  // Copy-level queueing model of ack/timeout/replay without flow control.
  //
  // The spout reads from Kafka faster than the worker drains and keeps up to
  // max_pending copies in flight, so under a backlog the worker queue fills
  // to max_pending. A tuple's sojourn in that queue is approximated as
  // exponential with mean Q / service (queueing variance is what lets *some*
  // tuples complete within the timeout even under overload); a tuple whose
  // sojourn exceeds the ack timeout is re-emitted by the spout, its stale
  // copy becoming pure waste when the worker reaches it. The probability a
  // copy completes usefully is therefore
  //     p = 1 - exp(-timeout * service / Q),
  // effective goodput is service * p, and the recovery-time multiple over
  // the credit-based engine is ~1/p — which grows as the backlog (and with
  // it Q, up to max_pending) grows. This reproduces the Section 4.2 shape:
  // a well-tuned pending cap matches Flink, an oversized one turns a
  // minutes-long backlog into hours.
  BacklogRecoveryResult result;
  const double service = static_cast<double>(params.service_per_tick);
  const double spout_rate = service * 3.0;
  const int64_t kMaxTicks = 10'000'000;

  double pool = static_cast<double>(params.backlog);  // copies awaiting emission
  double queue = 0.0;                                 // copies in the worker queue
  double done = 0.0;                                  // logical tuples completed
  double waste = 0.0;
  double replays = 0.0;

  int64_t tick = 0;
  for (; tick < kMaxTicks && done < static_cast<double>(params.backlog) - 0.5; ++tick) {
    double emit = std::min(
        {spout_rate, static_cast<double>(params.max_pending) - queue, pool});
    if (emit > 0) {
      queue += emit;
      pool -= emit;
    }
    double processed = std::min(service, queue);
    if (processed <= 0) {
      if (pool <= 0 && queue <= 0) break;  // drained
      continue;
    }
    double wait_mean = std::max(queue, service) / service;  // ticks in queue
    double p_complete =
        1.0 - std::exp(-static_cast<double>(params.timeout_ticks) / wait_mean);
    queue -= processed;
    double useful = processed * p_complete;
    double stale = processed - useful;
    done = std::min(done + useful, static_cast<double>(params.backlog));
    waste += stale;
    // Every timed-out copy was re-emitted once: it re-enters the pool.
    replays += stale;
    pool += stale;
  }
  result.ticks_to_recover = tick;
  result.wasted_work = static_cast<int64_t>(waste);
  result.replays = static_cast<int64_t>(replays);
  return result;
}

Result<MicroBatchReport> RunMicroBatchWindowAggregate(
    stream::MessageBus* bus, const SourceSpec& source,
    const std::vector<std::string>& key_fields, const WindowSpec& window,
    const std::vector<AggregateSpec>& aggregates) {
  if (window.type != WindowSpec::Type::kTumbling) {
    return Status::InvalidArgument("micro-batch baseline supports tumbling windows");
  }
  MicroBatchReport report;
  std::vector<int> key_indices = ResolveIndices(source.schema, key_fields);
  std::vector<int> agg_indices;
  for (const AggregateSpec& agg : aggregates) {
    agg_indices.push_back(agg.field.empty() ? -1 : source.schema.FieldIndex(agg.field));
  }
  int time_index = source.time_field.empty() ? -1
                                             : source.schema.FieldIndex(source.time_field);

  // Buffer every raw row per (window, key) — the materialized micro-batch
  // state — tracking the peak footprint.
  struct Bucket {
    Row key_values;
    std::vector<Row> rows;
  };
  std::map<std::pair<TimestampMs, std::string>, Bucket> buffers;
  int64_t buffered_bytes = 0;
  auto row_bytes = [](const Row& row) {
    int64_t bytes = 16;
    for (const Value& v : row) {
      bytes += 16;
      if (v.type() == ValueType::kString) {
        bytes += static_cast<int64_t>(v.AsString().size());
      }
    }
    return bytes;
  };
  auto flush_before = [&](TimestampMs watermark) {
    while (!buffers.empty() && buffers.begin()->first.first + window.size_ms <= watermark) {
      auto it = buffers.begin();
      Row out = it->second.key_values;
      out.push_back(Value(static_cast<int64_t>(it->first.first)));
      for (size_t a = 0; a < aggregates.size(); ++a) {
        Accumulator acc;
        for (const Row& row : it->second.rows) {
          int idx = agg_indices[a];
          acc.Add(idx >= 0 && idx < static_cast<int>(row.size())
                      ? row[static_cast<size_t>(idx)].ToNumeric()
                      : 0.0);
        }
        out.push_back(acc.Finish(aggregates[a].kind));
      }
      for (const Row& row : it->second.rows) buffered_bytes -= row_bytes(row);
      report.rows.push_back(std::move(out));
      buffers.erase(it);
    }
  };

  Result<int32_t> partitions = bus->NumPartitions(source.topic);
  if (!partitions.ok()) return partitions.status();
  TimestampMs max_seen = INT64_MIN;
  for (int32_t p = 0; p < partitions.value(); ++p) {
    Result<int64_t> begin = bus->BeginOffset(source.topic, p);
    Result<int64_t> end = bus->EndOffset(source.topic, p);
    if (!begin.ok()) return begin.status();
    if (!end.ok()) return end.status();
    int64_t offset = begin.value();
    while (offset < end.value()) {
      Result<std::vector<stream::Message>> batch =
          bus->Fetch(source.topic, p, offset, 1024);
      if (!batch.ok()) return batch.status();
      if (batch.value().empty()) break;
      for (const stream::Message& m : batch.value()) {
        offset = m.offset + 1;
        Result<Row> row = DecodeRow(m.value);
        if (!row.ok()) continue;
        TimestampMs t = m.timestamp;
        if (time_index >= 0 && time_index < static_cast<int>(row.value().size()) &&
            row.value()[static_cast<size_t>(time_index)].type() == ValueType::kInt) {
          t = row.value()[static_cast<size_t>(time_index)].AsInt();
        }
        max_seen = std::max(max_seen, t);
        TimestampMs start = t - ((t % window.size_ms) + window.size_ms) % window.size_ms;
        std::string key = EncodeKey(row.value(), key_indices);
        auto& bucket = buffers[{start, key}];
        if (bucket.rows.empty()) {
          for (int idx : key_indices) {
            bucket.key_values.push_back(idx >= 0 ? row.value()[static_cast<size_t>(idx)]
                                                 : Value::Null());
          }
        }
        buffered_bytes += row_bytes(row.value());
        bucket.rows.push_back(std::move(row.value()));
        ++report.records_processed;
        report.peak_buffered_bytes = std::max(report.peak_buffered_bytes, buffered_bytes);
        // Micro-batch boundary handling: fire windows that closed one full
        // window behind the max seen time (batch watermark).
        if (report.records_processed % 1024 == 0) {
          flush_before(max_seen - window.size_ms);
        }
      }
    }
  }
  flush_before(kMaxWatermark);
  return report;
}

}  // namespace uberrt::compute
