#ifndef UBERRT_COMPUTE_JOB_MANAGER_H_
#define UBERRT_COMPUTE_JOB_MANAGER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/fault_injector.h"
#include "common/metrics.h"
#include "common/retry.h"
#include "common/status.h"
#include "compute/job_graph.h"
#include "compute/job_runner.h"

namespace uberrt::compute {

enum class JobState { kRunning, kFinished, kFailed, kCancelled };

const char* JobStateName(JobState state);

/// Monitoring snapshot of one managed job.
struct JobInfo {
  std::string id;
  JobState state = JobState::kRunning;
  int32_t parallelism = 1;
  int64_t restarts = 0;
  int64_t rescales = 0;
  int64_t records_in = 0;
  int64_t records_out = 0;
  int64_t lag = 0;
  int64_t state_bytes = 0;
  bool stateful = false;
};

/// Rule-based monitoring thresholds (Section 4.2.1: "a rule-based engine
/// which compares the Flink job's key metrics ... and takes corrective
/// action such as restarting a stuck job or auto scaling").
struct JobManagerOptions {
  /// Consumer lag above which a running job is scaled up (parallelism x2).
  int64_t lag_scale_up_threshold = 50'000;
  int32_t max_parallelism = 8;
  /// Periodic checkpoint cadence, counted in Tick() calls.
  int64_t checkpoint_every_ticks = 1;
  /// Pool handed to every runner whose own options leave `executor` unset —
  /// how the platform shares one process-wide pool across all jobs. nullptr
  /// lets each runner create its private pool.
  common::Executor* default_executor = nullptr;
};

/// The job management layer of the unified Flink platform (Section 4.2.2,
/// Figure 5): owns the full job lifecycle — validation, deployment,
/// monitoring, automatic failure recovery from the latest checkpoint, and
/// lag-driven auto-scaling (with keyed state redistributed across the new
/// parallelism). The platform layer above it submits standard job
/// definitions (JobGraph, produced by hand or by FlinkSQL); the
/// infrastructure below is the MessageBus + ObjectStore pair.
class JobManager {
 public:
  JobManager(stream::MessageBus* bus, storage::ObjectStore* store,
             JobManagerOptions options = JobManagerOptions());
  ~JobManager();

  /// Validates and starts the job. Returns its id.
  Result<std::string> Submit(const JobGraph& graph,
                             JobRunnerOptions runner_options = JobRunnerOptions());

  /// Stops and removes the job (graceful: checkpoint first).
  Status CancelJob(const std::string& id);

  Result<JobInfo> GetJob(const std::string& id) const;
  std::vector<JobInfo> ListJobs() const;

  /// One monitoring sweep: detect finished/crashed jobs, restart crashed
  /// ones from their latest checkpoint, auto-scale lagging jobs, and take
  /// periodic checkpoints. Deterministic (no internal timer thread).
  Status Tick();

  /// Compat shim over the unified fault plane: hard-kills the job's runner
  /// as if the process crashed. New code scripts a one-shot
  /// "job.crash.<id>" rule on the injector instead.
  Status InjectFailure(const std::string& id);

  /// Attaches the process-wide fault plane. Each Tick consults
  /// Check("job.crash.<id>") per running job; an injected fault cancels the
  /// runner (simulated crash), and the same sweep's crash detection restarts
  /// it from the latest checkpoint.
  void SetFaultInjector(common::FaultInjector* faults) { faults_ = faults; }

  /// Registry holding the manager's retries.checkpoint.* counters.
  MetricsRegistry* metrics() { return &metrics_; }

  /// Direct access for assertions in tests.
  JobRunner* GetRunner(const std::string& id);

 private:
  struct ManagedJob {
    std::string id;
    JobGraph graph;  // at original parallelism; scaled copies derived
    JobRunnerOptions runner_options;
    std::unique_ptr<JobRunner> runner;
    JobState state = JobState::kRunning;
    int32_t parallelism = 1;
    int64_t restarts = 0;
    int64_t rescales = 0;
  };

  Status RestartFromCheckpoint(ManagedJob* job, int32_t new_parallelism);
  JobInfo InfoFor(const ManagedJob& job) const;

  stream::MessageBus* bus_;
  storage::ObjectStore* store_;
  JobManagerOptions options_;
  common::FaultInjector* faults_ = nullptr;
  MetricsRegistry metrics_;
  /// Shared by every managed runner's checkpoint Save/Load (see Submit).
  common::RetryPolicy checkpoint_retry_;
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<ManagedJob>> jobs_;
  int64_t next_id_ = 0;
  int64_t ticks_ = 0;
};

/// Re-buckets keyed operator state (window aggregates and join buffers, whose
/// snapshot rows carry the partition key in field 0) from `old_parallelism`
/// instances to `new_parallelism`, using the same key hash the runner uses
/// for record routing — so restored state lands on the instance that will
/// receive that key's future records.
Result<CheckpointData> RedistributeKeyedState(const CheckpointData& data,
                                              const JobGraph& graph,
                                              int32_t old_parallelism,
                                              int32_t new_parallelism);

}  // namespace uberrt::compute

#endif  // UBERRT_COMPUTE_JOB_MANAGER_H_
