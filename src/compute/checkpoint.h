#ifndef UBERRT_COMPUTE_CHECKPOINT_H_
#define UBERRT_COMPUTE_CHECKPOINT_H_

#include <cstdint>
#include <map>
#include <string>

#include "common/status.h"
#include "storage/object_store.h"

namespace uberrt::compute {

/// One job checkpoint: a flat key/value snapshot holding every source's
/// per-partition offsets and every operator instance's serialized state.
/// Keys: "source.<source_index>.<partition>" -> offset (decimal string),
///       "op.<stage>.<instance>"             -> operator state blob.
///
/// Checkpoints are what let Flink jobs at Uber recover from failures and
/// restart with state (Section 4.2); they are persisted to the archival
/// store exactly as Flink persists to HDFS (Section 4.4).
struct CheckpointData {
  int64_t sequence = 0;
  std::map<std::string, std::string> entries;

  std::string Encode() const;
  static Result<CheckpointData> Decode(const std::string& blob);
};

/// Persists/loads checkpoints under "<prefix>/<job>/chk-<seq>", tracking the
/// latest sequence in "<prefix>/<job>/LATEST".
class CheckpointStore {
 public:
  CheckpointStore(storage::ObjectStore* store, std::string prefix, std::string job)
      : store_(store), prefix_(std::move(prefix)), job_(std::move(job)) {}

  Status Save(const CheckpointData& data);
  Result<CheckpointData> Load(int64_t sequence) const;
  /// Latest sequence, or NotFound when no checkpoint exists.
  Result<int64_t> LatestSequence() const;
  Result<CheckpointData> LoadLatest() const;

 private:
  std::string Key(int64_t sequence) const;

  storage::ObjectStore* store_;
  std::string prefix_;
  std::string job_;
};

}  // namespace uberrt::compute

#endif  // UBERRT_COMPUTE_CHECKPOINT_H_
