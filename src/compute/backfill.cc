#include "compute/backfill.h"

#include "common/clock.h"

namespace uberrt::compute {

Result<BackfillReport> KappaPlusBackfill::Run(const JobGraph& graph,
                                              const storage::ArchiveTable& table,
                                              const std::vector<std::string>& partitions,
                                              BackfillOptions options) {
  if (graph.sources().size() != 1) {
    return Status::InvalidArgument("backfill supports single-source jobs");
  }
  TimestampMs start_ms = SystemClock::Instance()->NowMs();

  // Transient replay topic standing in for the original Kafka source.
  const std::string replay_topic =
      graph.name() + "__backfill_" + std::to_string(next_replay_id_++);
  stream::TopicConfig config;
  config.num_partitions = options.replay_partitions;
  UBERRT_RETURN_IF_ERROR(bus_->CreateTopic(replay_topic, config));

  // Same logic, minor config changes: source topic + reorder slack.
  SourceSpec source = graph.sources()[0];
  source.topic = replay_topic;
  source.out_of_orderness_ms =
      std::max(source.out_of_orderness_ms, options.reorder_slack_ms);
  JobGraph backfill_graph =
      graph.WithSource(0, std::move(source)).WithName(graph.name() + "_backfill");

  JobRunner runner(backfill_graph, bus_, checkpoint_store_);
  UBERRT_RETURN_IF_ERROR(runner.Start());

  BackfillReport report;
  int64_t since_check = 0;
  for (const std::string& partition : partitions) {
    Result<std::vector<Row>> rows = table.ReadPartition(partition);
    if (!rows.ok()) {
      runner.Cancel();
      return rows.status();
    }
    for (Row& row : rows.value()) {
      stream::Message message;
      message.value = EncodeRow(row);
      Result<stream::ProduceResult> produced =
          bus_->Produce(replay_topic, std::move(message), stream::AckMode::kLeader);
      if (!produced.ok()) {
        runner.Cancel();
        return produced.status();
      }
      ++report.records_pumped;
      if (++since_check >= options.pump_chunk) {
        since_check = 0;
        // Throttle: historic data reads far outpace the job; wait for the
        // pipeline to digest before pumping more.
        while (true) {
          Result<int64_t> lag = runner.SourceLag();
          if (!lag.ok()) break;
          if (lag.value() <= options.max_inflight_records) break;
          SystemClock::Instance()->SleepMs(1);
        }
      }
    }
  }
  runner.RequestFinish();
  Status finished = runner.AwaitTermination(120'000);
  if (!finished.ok()) {
    runner.Cancel();
    return finished;
  }
  report.records_out = runner.RecordsOut();
  report.duration_ms = SystemClock::Instance()->NowMs() - start_ms;
  return report;
}

Result<int64_t> KappaReplayableRecords(stream::MessageBus* bus,
                                       const std::string& topic) {
  Result<int32_t> partitions = bus->NumPartitions(topic);
  if (!partitions.ok()) return partitions.status();
  int64_t replayable = 0;
  for (int32_t p = 0; p < partitions.value(); ++p) {
    Result<int64_t> begin = bus->BeginOffset(topic, p);
    Result<int64_t> end = bus->EndOffset(topic, p);
    if (!begin.ok()) return begin.status();
    if (!end.ok()) return end.status();
    replayable += end.value() - begin.value();
  }
  return replayable;
}

}  // namespace uberrt::compute
