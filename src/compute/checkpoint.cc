#include "compute/checkpoint.h"

#include <cstring>

namespace uberrt::compute {

namespace {

void AppendString(std::string* out, const std::string& s) {
  uint32_t len = static_cast<uint32_t>(s.size());
  char buf[4];
  std::memcpy(buf, &len, 4);
  out->append(buf, 4);
  out->append(s);
}

bool ReadString(const std::string& data, size_t* pos, std::string* out) {
  if (*pos + 4 > data.size()) return false;
  uint32_t len;
  std::memcpy(&len, data.data() + *pos, 4);
  *pos += 4;
  if (*pos + len > data.size()) return false;
  out->assign(data, *pos, len);
  *pos += len;
  return true;
}

}  // namespace

std::string CheckpointData::Encode() const {
  std::string out;
  AppendString(&out, std::to_string(sequence));
  AppendString(&out, std::to_string(entries.size()));
  for (const auto& [key, value] : entries) {
    AppendString(&out, key);
    AppendString(&out, value);
  }
  return out;
}

Result<CheckpointData> CheckpointData::Decode(const std::string& blob) {
  CheckpointData data;
  size_t pos = 0;
  std::string sequence_str, count_str;
  if (!ReadString(blob, &pos, &sequence_str) || !ReadString(blob, &pos, &count_str)) {
    return Status::Corruption("checkpoint header truncated");
  }
  data.sequence = std::stoll(sequence_str);
  size_t count = static_cast<size_t>(std::stoull(count_str));
  for (size_t i = 0; i < count; ++i) {
    std::string key, value;
    if (!ReadString(blob, &pos, &key) || !ReadString(blob, &pos, &value)) {
      return Status::Corruption("checkpoint entry truncated");
    }
    data.entries.emplace(std::move(key), std::move(value));
  }
  return data;
}

std::string CheckpointStore::Key(int64_t sequence) const {
  return prefix_ + "/" + job_ + "/chk-" + std::to_string(sequence);
}

Status CheckpointStore::Save(const CheckpointData& data) {
  UBERRT_RETURN_IF_ERROR(store_->Put(Key(data.sequence), data.Encode()));
  return store_->Put(prefix_ + "/" + job_ + "/LATEST", std::to_string(data.sequence));
}

Result<CheckpointData> CheckpointStore::Load(int64_t sequence) const {
  Result<std::string> blob = store_->Get(Key(sequence));
  if (!blob.ok()) return blob.status();
  return CheckpointData::Decode(blob.value());
}

Result<int64_t> CheckpointStore::LatestSequence() const {
  Result<std::string> latest = store_->Get(prefix_ + "/" + job_ + "/LATEST");
  if (!latest.ok()) return latest.status();
  return std::stoll(latest.value());
}

Result<CheckpointData> CheckpointStore::LoadLatest() const {
  Result<int64_t> sequence = LatestSequence();
  if (!sequence.ok()) return sequence.status();
  return Load(sequence.value());
}

}  // namespace uberrt::compute
