#include "compute/checkpoint.h"

#include <cstring>

namespace uberrt::compute {

namespace {

void AppendString(std::string* out, const std::string& s) {
  uint32_t len = static_cast<uint32_t>(s.size());
  char buf[4];
  std::memcpy(buf, &len, 4);
  out->append(buf, 4);
  out->append(s);
}

bool ReadString(const std::string& data, size_t* pos, std::string* out) {
  if (*pos + 4 > data.size()) return false;
  uint32_t len;
  std::memcpy(&len, data.data() + *pos, 4);
  *pos += 4;
  if (*pos + len > data.size()) return false;
  out->assign(data, *pos, len);
  *pos += len;
  return true;
}

/// Exception-free decimal parse. Checkpoint blobs come off the object store
/// and may be truncated or corrupt; std::stoll would throw on them.
bool ParseInt64(const std::string& s, int64_t* out) {
  if (s.empty()) return false;
  size_t i = 0;
  bool negative = false;
  if (s[0] == '-') {
    negative = true;
    i = 1;
    if (s.size() == 1) return false;
  }
  int64_t value = 0;
  for (; i < s.size(); ++i) {
    if (s[i] < '0' || s[i] > '9') return false;
    if (value > (INT64_MAX - (s[i] - '0')) / 10) return false;  // overflow
    value = value * 10 + (s[i] - '0');
  }
  *out = negative ? -value : value;
  return true;
}

}  // namespace

std::string CheckpointData::Encode() const {
  std::string out;
  AppendString(&out, std::to_string(sequence));
  AppendString(&out, std::to_string(entries.size()));
  for (const auto& [key, value] : entries) {
    AppendString(&out, key);
    AppendString(&out, value);
  }
  return out;
}

Result<CheckpointData> CheckpointData::Decode(const std::string& blob) {
  CheckpointData data;
  size_t pos = 0;
  std::string sequence_str, count_str;
  if (!ReadString(blob, &pos, &sequence_str) || !ReadString(blob, &pos, &count_str)) {
    return Status::Corruption("checkpoint header truncated");
  }
  int64_t count = 0;
  if (!ParseInt64(sequence_str, &data.sequence) || !ParseInt64(count_str, &count) ||
      count < 0) {
    return Status::Corruption("checkpoint header corrupt");
  }
  // Each entry needs at least 8 bytes of length prefixes; a count larger
  // than the remaining bytes allow is corruption, not a huge allocation.
  if (static_cast<size_t>(count) > (blob.size() - pos) / 8 + 1) {
    return Status::Corruption("checkpoint entry count exceeds blob size");
  }
  for (int64_t i = 0; i < count; ++i) {
    std::string key, value;
    if (!ReadString(blob, &pos, &key) || !ReadString(blob, &pos, &value)) {
      return Status::Corruption("checkpoint entry truncated");
    }
    data.entries.emplace(std::move(key), std::move(value));
  }
  return data;
}

std::string CheckpointStore::Key(int64_t sequence) const {
  return prefix_ + "/" + job_ + "/chk-" + std::to_string(sequence);
}

Status CheckpointStore::Save(const CheckpointData& data) {
  UBERRT_RETURN_IF_ERROR(store_->Put(Key(data.sequence), data.Encode()));
  return store_->Put(prefix_ + "/" + job_ + "/LATEST", std::to_string(data.sequence));
}

Result<CheckpointData> CheckpointStore::Load(int64_t sequence) const {
  Result<std::string> blob = store_->Get(Key(sequence));
  if (!blob.ok()) return blob.status();
  return CheckpointData::Decode(blob.value());
}

Result<int64_t> CheckpointStore::LatestSequence() const {
  Result<std::string> latest = store_->Get(prefix_ + "/" + job_ + "/LATEST");
  if (!latest.ok()) return latest.status();
  int64_t sequence = 0;
  if (!ParseInt64(latest.value(), &sequence)) {
    return Status::Corruption("LATEST pointer corrupt: " + latest.value());
  }
  return sequence;
}

Result<CheckpointData> CheckpointStore::LoadLatest() const {
  Result<int64_t> sequence = LatestSequence();
  if (!sequence.ok()) return sequence.status();
  return Load(sequence.value());
}

}  // namespace uberrt::compute
