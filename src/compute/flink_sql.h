#ifndef UBERRT_COMPUTE_FLINK_SQL_H_
#define UBERRT_COMPUTE_FLINK_SQL_H_

#include <string>

#include "common/status.h"
#include "common/value.h"
#include "compute/job_graph.h"

namespace uberrt::compute {

struct FlinkSqlOptions {
  int32_t parallelism = 1;
  int64_t allowed_lateness_ms = 0;
  int64_t out_of_orderness_ms = 1000;
  /// Topic to read instead of the FROM table name (e.g. federated routing).
  std::string topic_override;
};

/// FlinkSQL (Section 4.2.1): compiles a streaming SQL query into a Flink
/// JobGraph, the layer that lets "users of all technical levels run their
/// streaming processing applications in production in a span of mere hours".
///
/// Supported shape (see sql::ParseSelect for the grammar):
///  - FROM <topic>: the stream; `input_schema` describes its rows.
///  - WHERE: compiled to a Filter stage.
///  - scalar SELECT items: compiled to a Map projection.
///  - GROUP BY cols + TUMBLE/HOP/SESSION(ts, INTERVAL ...) with aggregate
///    select items: compiled to a keyed WindowAggregate; the window start is
///    exposed as pseudo-column `window_start`.
///  - HAVING: Filter over the aggregated rows.
/// ORDER BY / LIMIT are rejected: the output is an unbounded stream
/// (FlinkSQL semantics differ from batch SQL, as the paper stresses).
///
/// The returned graph has no sink; attach SinkToTopic/SinkToCollector.
Result<JobGraph> CompileStreamingSql(const std::string& sql,
                                     const RowSchema& input_schema,
                                     FlinkSqlOptions options = FlinkSqlOptions());

}  // namespace uberrt::compute

#endif  // UBERRT_COMPUTE_FLINK_SQL_H_
