#ifndef UBERRT_COMPUTE_KEYED_STATE_H_
#define UBERRT_COMPUTE_KEYED_STATE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/hash.h"

namespace uberrt::compute {

/// Open-addressing flat hash map for keyed window state, keyed by
/// (encoded key bytes, window start). Mirrors the PR 5 group-by design:
/// linear probing over a power-of-two slot array of dense entry indexes,
/// with the caller pre-computing the FNV-1a hash of the key bytes once per
/// record (from a reused scratch buffer) so probing never re-hashes and a
/// miss costs one cache line, not a std::map pointer chase with full string
/// comparisons at every node.
///
/// Erase uses tombstones plus a free list of dead entry slots; the table
/// rehashes (dropping tombstones) when live+tombstone occupancy passes 75%.
/// Iteration order is unspecified — callers that need the legacy
/// std::map<(start,key)> ordering (snapshot blobs, fire order) sort the
/// collected entries, which is O(k log k) in the touched entries only.
template <typename V>
class FlatKeyedMap {
 public:
  struct Entry {
    uint64_t hash = 0;
    std::string key;
    TimestampMs start = 0;
    V value{};
    bool live = false;
  };

  FlatKeyedMap() { Rehash(64); }

  size_t size() const { return live_; }
  bool empty() const { return live_ == 0; }

  /// Pointer to the value for (hash, key, start), or nullptr.
  V* Find(uint64_t hash, std::string_view key, TimestampMs start) {
    size_t mask = slots_.size() - 1;
    size_t slot = Mix(hash, start) & mask;
    while (true) {
      uint32_t e = slots_[slot];
      if (e == kEmpty) return nullptr;
      if (e != kTombstone) {
        Entry& entry = entries_[e];
        if (entry.hash == hash && entry.start == start && entry.key == key) {
          return &entry.value;
        }
      }
      slot = (slot + 1) & mask;
    }
  }

  /// Value for (hash, key, start), default-constructed and inserted if new.
  /// `inserted` reports whether a new entry was created (the key bytes are
  /// copied out of the caller's scratch buffer only then).
  V& FindOrInsert(uint64_t hash, std::string_view key, TimestampMs start,
                  bool* inserted) {
    if ((live_ + tombstones_ + 1) * 4 > slots_.size() * 3) {
      Rehash(slots_.size() * 2);
    }
    size_t mask = slots_.size() - 1;
    size_t slot = Mix(hash, start) & mask;
    size_t first_tombstone = kNoSlot;
    while (true) {
      uint32_t e = slots_[slot];
      if (e == kEmpty) {
        if (first_tombstone != kNoSlot) {
          slot = first_tombstone;
          --tombstones_;
        }
        uint32_t idx = AllocEntry();
        Entry& entry = entries_[idx];
        entry.hash = hash;
        entry.key.assign(key.data(), key.size());
        entry.start = start;
        entry.value = V{};
        entry.live = true;
        slots_[slot] = idx;
        ++live_;
        *inserted = true;
        return entry.value;
      }
      if (e == kTombstone) {
        if (first_tombstone == kNoSlot) first_tombstone = slot;
      } else {
        Entry& entry = entries_[e];
        if (entry.hash == hash && entry.start == start && entry.key == key) {
          *inserted = false;
          return entry.value;
        }
      }
      slot = (slot + 1) & mask;
    }
  }

  /// Removes (hash, key, start); false when absent.
  bool Erase(uint64_t hash, std::string_view key, TimestampMs start) {
    size_t mask = slots_.size() - 1;
    size_t slot = Mix(hash, start) & mask;
    while (true) {
      uint32_t e = slots_[slot];
      if (e == kEmpty) return false;
      if (e != kTombstone) {
        Entry& entry = entries_[e];
        if (entry.hash == hash && entry.start == start && entry.key == key) {
          entry.live = false;
          entry.key.clear();
          entry.value = V{};
          free_.push_back(e);
          slots_[slot] = kTombstone;
          --live_;
          ++tombstones_;
          return true;
        }
      }
      slot = (slot + 1) & mask;
    }
  }

  void Clear() {
    entries_.clear();
    free_.clear();
    live_ = 0;
    tombstones_ = 0;
    Rehash(64);
  }

  /// Visits every live entry; `fn(const Entry&)`. Unspecified order.
  template <typename F>
  void ForEach(F&& fn) const {
    for (const Entry& entry : entries_) {
      if (entry.live) fn(entry);
    }
  }

  /// Mutable variant of ForEach (session-window merges edit accumulators in
  /// place).
  template <typename F>
  void ForEachMutable(F&& fn) {
    for (Entry& entry : entries_) {
      if (entry.live) fn(entry);
    }
  }

 private:
  static constexpr uint32_t kEmpty = 0xFFFFFFFFu;
  static constexpr uint32_t kTombstone = 0xFFFFFFFEu;
  static constexpr size_t kNoSlot = static_cast<size_t>(-1);

  /// Folds the window start into the precomputed key hash and finalizes, so
  /// the same key across adjacent windows doesn't cluster into one probe run.
  static size_t Mix(uint64_t hash, TimestampMs start) {
    uint64_t h = hash ^ (static_cast<uint64_t>(start) * 0x9E3779B97F4A7C15ULL);
    h ^= h >> 33;
    h *= 0xFF51AFD7ED558CCDULL;
    h ^= h >> 33;
    return static_cast<size_t>(h);
  }

  uint32_t AllocEntry() {
    if (!free_.empty()) {
      uint32_t idx = free_.back();
      free_.pop_back();
      return idx;
    }
    entries_.emplace_back();
    return static_cast<uint32_t>(entries_.size() - 1);
  }

  void Rehash(size_t new_capacity) {
    slots_.assign(new_capacity, kEmpty);
    tombstones_ = 0;
    size_t mask = new_capacity - 1;
    for (size_t e = 0; e < entries_.size(); ++e) {
      if (!entries_[e].live) continue;
      size_t slot = Mix(entries_[e].hash, entries_[e].start) & mask;
      while (slots_[slot] != kEmpty) slot = (slot + 1) & mask;
      slots_[slot] = static_cast<uint32_t>(e);
    }
  }

  std::vector<uint32_t> slots_;
  std::vector<Entry> entries_;
  std::vector<uint32_t> free_;  ///< dead entry indexes available for reuse
  size_t live_ = 0;
  size_t tombstones_ = 0;
};

}  // namespace uberrt::compute

#endif  // UBERRT_COMPUTE_KEYED_STATE_H_
