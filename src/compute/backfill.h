#ifndef UBERRT_COMPUTE_BACKFILL_H_
#define UBERRT_COMPUTE_BACKFILL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "compute/job_graph.h"
#include "compute/job_runner.h"
#include "storage/archive.h"
#include "stream/message_bus.h"

namespace uberrt::compute {

/// Kappa+ backfill (Section 7): re-executes an unchanged streaming JobGraph
/// over archived (Hive-like) data instead of Kafka. This is Uber's answer to
/// both Lambda (two codebases) and Kappa (needs unaffordable Kafka
/// retention): the same stream-processing logic reads bounded historic data
/// directly from the archive, with
///  - explicit start/end boundaries (the archive partitions to process),
///  - throttling of the much-higher historic read throughput (the pump
///    pauses while the job's source lag exceeds a high-watermark), and
///  - a widened out-of-orderness allowance, since archived data is not in
///    event-time order.
struct BackfillOptions {
  /// Pause pumping while the job's source lag exceeds this (throttling).
  int64_t max_inflight_records = 50'000;
  /// Rows pumped between lag checks.
  int64_t pump_chunk = 4'096;
  /// Watermark slack applied to the job's sources (archived data is
  /// unordered; windows need a larger reorder buffer).
  int64_t reorder_slack_ms = 60'000;
  /// Partition count of the transient replay topic.
  int32_t replay_partitions = 4;
};

struct BackfillReport {
  int64_t records_pumped = 0;
  int64_t records_out = 0;
  int64_t duration_ms = 0;
};

/// Executes `graph` (single-source) against archive partitions. The graph's
/// source is transparently re-pointed at a transient replay topic — the
/// user's logic is reused verbatim, "with minor config changes" exactly as
/// the paper describes.
class KappaPlusBackfill {
 public:
  KappaPlusBackfill(stream::MessageBus* bus, storage::ObjectStore* checkpoint_store)
      : bus_(bus), checkpoint_store_(checkpoint_store) {}

  Result<BackfillReport> Run(const JobGraph& graph, const storage::ArchiveTable& table,
                             const std::vector<std::string>& partitions,
                             BackfillOptions options = BackfillOptions());

 private:
  stream::MessageBus* bus_;
  storage::ObjectStore* checkpoint_store_;
  int64_t next_replay_id_ = 0;
};

/// The Kappa alternative the paper rejects: replay straight from the Kafka
/// topic. Returns how many of `expected_records` are still replayable given
/// the topic's current retention — demonstrating why limited retention makes
/// pure Kappa lossy at Uber (bench C11).
Result<int64_t> KappaReplayableRecords(stream::MessageBus* bus, const std::string& topic);

}  // namespace uberrt::compute

#endif  // UBERRT_COMPUTE_BACKFILL_H_
