#ifndef UBERRT_COMPUTE_WINDOW_OPERATOR_H_
#define UBERRT_COMPUTE_WINDOW_OPERATOR_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "compute/keyed_state.h"
#include "compute/operator.h"

namespace uberrt::compute {

/// Incremental aggregate accumulator (one per AggregateSpec per window).
/// Constant size regardless of how many records flow in — this is the
/// Flink-style incremental state the paper contrasts with Spark's
/// materialize-the-batch approach (Section 4.2, 5-10x memory claim).
struct Accumulator {
  int64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;

  void Add(double v) {
    if (count == 0) {
      min = v;
      max = v;
    } else {
      if (v < min) min = v;
      if (v > max) max = v;
    }
    ++count;
    sum += v;
  }

  Value Finish(AggregateSpec::Kind kind) const;
};

/// Keyed event-time window aggregation: tumbling, sliding and session
/// windows with count/sum/min/max/avg aggregates, allowed lateness and
/// late-record dropping. Output rows are
/// [key fields..., window_start, aggregate columns...] emitted when the
/// watermark passes window end + allowed lateness.
class WindowAggregateOperator : public OperatorInstance {
 public:
  WindowAggregateOperator(const TransformSpec& spec, const RowSchema& input);

  void ProcessRecord(const Element& element, Emitter* out) override;
  void OnWatermark(TimestampMs watermark, Emitter* out) override;
  std::string SnapshotState() const override;
  Status RestoreState(const std::string& blob) override;
  int64_t StateBytes() const override;
  int64_t late_dropped() const override { return late_dropped_; }

  /// Number of live (unfired) windows, for tests.
  int64_t LiveWindows() const { return static_cast<int64_t>(windows_.size()); }

 private:
  struct WindowState {
    Row key_values;
    TimestampMs end = 0;  ///< exclusive
    std::vector<Accumulator> accumulators;
  };

  /// Window start times the event timestamp falls into (non-session).
  std::vector<TimestampMs> AssignWindows(TimestampMs t) const;
  /// `key`/`key_hash` come from the reused scratch buffer; `row` feeds the
  /// accumulators. Lazily materializes key_values from `source_row` only on
  /// first touch of a window.
  void AddToWindow(uint64_t key_hash, std::string_view key, const Row& source_row,
                   TimestampMs start, TimestampMs end);
  void AddToSession(uint64_t key_hash, std::string_view key, const Row& source_row,
                    TimestampMs t);
  void Fire(TimestampMs start, const WindowState& ws, Emitter* out);
  Row KeyValues(const Row& row) const;
  int64_t WindowStateBytes(const WindowState& ws) const;

  TransformSpec spec_;
  RowSchema input_;
  std::vector<int> key_indices_;
  std::vector<int> agg_indices_;
  TimestampMs current_watermark_ = INT64_MIN;
  /// Keyed state in an open-addressing flat hash map over precomputed
  /// FNV-1a hashes of the encoded key (see keyed_state.h). Snapshot blobs
  /// stay format-compatible with the retired std::map layout: rows are
  /// sorted by (start, key) before encoding, which was exactly the map's
  /// iteration order.
  FlatKeyedMap<WindowState> windows_;
  std::string key_scratch_;  ///< reused per-record key encoding buffer
  int64_t late_dropped_ = 0;
  int64_t state_bytes_ = 0;
};

/// Keyed tumbling-window stream-stream inner join. Buffers rows per
/// (key, window) per side, emits a concatenated row for every cross match,
/// and clears buffers once the watermark passes the window (the
/// memory-bound job class of Section 4.2.1).
class WindowJoinOperator : public OperatorInstance {
 public:
  WindowJoinOperator(const TransformSpec& spec, const RowSchema& left,
                     const RowSchema& right);

  void ProcessRecord(const Element& element, Emitter* out) override;
  void OnWatermark(TimestampMs watermark, Emitter* out) override;
  std::string SnapshotState() const override;
  Status RestoreState(const std::string& blob) override;
  int64_t StateBytes() const override;
  int64_t late_dropped() const override { return late_dropped_; }

 private:
  struct Buffers {
    std::vector<std::pair<Row, TimestampMs>> left;
    std::vector<std::pair<Row, TimestampMs>> right;
  };

  Row JoinRows(const Row& left, const Row& right) const;

  TransformSpec spec_;
  RowSchema left_;
  RowSchema right_;
  std::vector<int> left_key_indices_;
  std::vector<int> right_key_indices_;
  /// Right-schema field indices copied into the output (dup names dropped).
  std::vector<int> right_output_indices_;
  TimestampMs current_watermark_ = INT64_MIN;
  /// Same flat-hash keyed state design as WindowAggregateOperator.
  FlatKeyedMap<Buffers> buffers_;
  std::string key_scratch_;  ///< reused per-record key encoding buffer
  int64_t late_dropped_ = 0;
  int64_t state_bytes_ = 0;
};

/// Encoded key-field values of a row (used for keyed partitioning by the
/// runner as well, so records for one key land on one instance).
std::string EncodeKey(const Row& row, const std::vector<int>& key_indices);

/// Allocation-free variant: clears `out` and appends the encoded key-field
/// values (same bytes as EncodeKey), reusing the buffer's capacity. Hot
/// paths (keyed dispatch, window-state probes) pair this with Fnv1a64(*out).
void EncodeKeyTo(const Row& row, const std::vector<int>& key_indices,
                 std::string* out);

/// Resolves field names to indices; missing fields become -1.
std::vector<int> ResolveIndices(const RowSchema& schema,
                                const std::vector<std::string>& fields);

}  // namespace uberrt::compute

#endif  // UBERRT_COMPUTE_WINDOW_OPERATOR_H_
