#include "compute/job_graph.h"

namespace uberrt::compute {

RowSchema WindowAggregateOutputSchema(const RowSchema& input,
                                      const std::vector<std::string>& key_fields,
                                      const std::vector<AggregateSpec>& aggregates) {
  std::vector<FieldSpec> fields;
  for (const std::string& key : key_fields) {
    int idx = input.FieldIndex(key);
    fields.push_back({key, idx >= 0 ? input.fields()[static_cast<size_t>(idx)].type
                                    : ValueType::kString});
  }
  fields.push_back({"window_start", ValueType::kInt});
  for (const AggregateSpec& agg : aggregates) {
    ValueType type =
        agg.kind == AggregateSpec::Kind::kCount ? ValueType::kInt : ValueType::kDouble;
    fields.push_back({agg.output_name, type});
  }
  return RowSchema(fields);
}

RowSchema WindowJoinOutputSchema(const RowSchema& left, const RowSchema& right) {
  std::vector<FieldSpec> fields = left.fields();
  for (const FieldSpec& f : right.fields()) {
    // Dedup identically-named fields (typically the join key).
    bool exists = false;
    for (const FieldSpec& existing : fields) {
      if (existing.name == f.name) {
        exists = true;
        break;
      }
    }
    if (!exists) fields.push_back(f);
  }
  return RowSchema(fields);
}

RowSchema JobGraph::SchemaAfter(int index) const {
  RowSchema schema = sources_.empty() ? RowSchema() : sources_[0].schema;
  for (int i = 0; i <= index && i < static_cast<int>(transforms_.size()); ++i) {
    const TransformSpec& t = transforms_[static_cast<size_t>(i)];
    switch (t.kind) {
      case TransformSpec::Kind::kMap:
      case TransformSpec::Kind::kFlatMap:
        schema = t.output_schema;
        break;
      case TransformSpec::Kind::kFilter:
        break;  // schema unchanged
      case TransformSpec::Kind::kWindowAggregate:
        schema = WindowAggregateOutputSchema(schema, t.key_fields, t.aggregates);
        break;
      case TransformSpec::Kind::kWindowJoin:
        schema = WindowJoinOutputSchema(sources_[0].schema, sources_[1].schema);
        break;
    }
  }
  return schema;
}

Status JobGraph::Validate() const {
  if (sources_.empty()) return Status::InvalidArgument("job has no source");
  if (sources_.size() > 2) return Status::InvalidArgument("at most two sources");
  if (sources_.size() == 2) {
    if (transforms_.empty() ||
        transforms_[0].kind != TransformSpec::Kind::kWindowJoin) {
      return Status::InvalidArgument(
          "two-source job must start with a window join");
    }
  }
  for (const SourceSpec& s : sources_) {
    if (s.topic.empty()) return Status::InvalidArgument("source topic empty");
    if (s.schema.NumFields() == 0) return Status::InvalidArgument("source schema empty");
    if (!s.time_field.empty() && !s.schema.HasField(s.time_field)) {
      return Status::InvalidArgument("time field '" + s.time_field +
                                     "' not in source schema");
    }
  }
  RowSchema schema = sources_[0].schema;
  for (size_t i = 0; i < transforms_.size(); ++i) {
    const TransformSpec& t = transforms_[i];
    if (t.parallelism <= 0) return Status::InvalidArgument("parallelism must be >= 1");
    switch (t.kind) {
      case TransformSpec::Kind::kMap:
        if (!t.map_fn) return Status::InvalidArgument(t.name + ": map fn missing");
        break;
      case TransformSpec::Kind::kFilter:
        if (!t.filter_fn) return Status::InvalidArgument(t.name + ": filter fn missing");
        break;
      case TransformSpec::Kind::kFlatMap:
        if (!t.flatmap_fn) return Status::InvalidArgument(t.name + ": flatmap fn missing");
        break;
      case TransformSpec::Kind::kWindowAggregate: {
        for (const std::string& key : t.key_fields) {
          if (!schema.HasField(key)) {
            return Status::InvalidArgument(t.name + ": key field '" + key +
                                           "' not in input schema " + schema.ToString());
          }
        }
        for (const AggregateSpec& agg : t.aggregates) {
          if (agg.kind != AggregateSpec::Kind::kCount && !schema.HasField(agg.field)) {
            return Status::InvalidArgument(t.name + ": aggregate field '" + agg.field +
                                           "' not in input schema");
          }
        }
        if (t.window.type == WindowSpec::Type::kSliding && t.window.slide_ms <= 0) {
          return Status::InvalidArgument(t.name + ": sliding window needs slide_ms");
        }
        if (t.window.type == WindowSpec::Type::kSession && t.window.gap_ms <= 0) {
          return Status::InvalidArgument(t.name + ": session window needs gap_ms");
        }
        break;
      }
      case TransformSpec::Kind::kWindowJoin: {
        if (i != 0 || sources_.size() != 2) {
          return Status::InvalidArgument("window join must be first, with two sources");
        }
        for (const std::string& key : t.key_fields) {
          if (!sources_[0].schema.HasField(key) || !sources_[1].schema.HasField(key)) {
            return Status::InvalidArgument(t.name + ": join key '" + key +
                                           "' missing from one side");
          }
        }
        break;
      }
    }
    schema = SchemaAfter(static_cast<int>(i));
  }
  return Status::Ok();
}

bool JobGraph::IsStateful() const {
  for (const TransformSpec& t : transforms_) {
    if (t.kind == TransformSpec::Kind::kWindowAggregate ||
        t.kind == TransformSpec::Kind::kWindowJoin) {
      return true;
    }
  }
  return false;
}

}  // namespace uberrt::compute
