#ifndef UBERRT_COMPUTE_ELEMENT_H_
#define UBERRT_COMPUTE_ELEMENT_H_

#include <cstdint>
#include <limits>
#include <vector>

#include "common/clock.h"
#include "common/value.h"

namespace uberrt::compute {

/// Watermark value meaning "input exhausted; flush everything".
inline constexpr TimestampMs kMaxWatermark = std::numeric_limits<TimestampMs>::max();

/// One unit flowing through a dataflow channel: a data record, a watermark,
/// or an end-of-stream marker. Mirrors Flink's StreamElement.
struct Element {
  enum class Kind { kRecord = 0, kWatermark = 1, kEnd = 2 };

  Kind kind = Kind::kRecord;
  Row row;                    ///< payload (kRecord)
  TimestampMs event_time = 0; ///< record event time, or the watermark value
  int32_t from_channel = 0;   ///< upstream instance index (watermark alignment)
  int32_t side = 0;           ///< input side for two-input operators (joins)

  static Element Record(Row row, TimestampMs event_time, int32_t side = 0) {
    Element e;
    e.kind = Kind::kRecord;
    e.row = std::move(row);
    e.event_time = event_time;
    e.side = side;
    return e;
  }
  static Element Watermark(TimestampMs watermark) {
    Element e;
    e.kind = Kind::kWatermark;
    e.event_time = watermark;
    return e;
  }
  static Element End() {
    Element e;
    e.kind = Kind::kEnd;
    return e;
  }
};

/// Unit carried through a dataflow channel: a run of records optionally
/// followed by control elements (watermark / end), in order. Batching
/// amortizes the queue mutex, the wakeup CAS and the dispatch bookkeeping
/// over every element in the batch instead of paying them per record
/// (Flink's network-buffer batching, Section 4.2). A batch of one element
/// degenerates to the old per-record dataflow, which the bench keeps as its
/// baseline.
///
/// Rows inside the batch own their values outright (decoded from borrowed
/// stream views at the source boundary), so a batch has no lifetime tie to
/// the broker arenas it was read from: the FetchedBatch pin is released at
/// the end of the source poll cycle that decoded it.
struct ElementBatch {
  std::vector<Element> items;

  bool empty() const { return items.empty(); }
  size_t size() const { return items.size(); }
};

}  // namespace uberrt::compute

#endif  // UBERRT_COMPUTE_ELEMENT_H_
