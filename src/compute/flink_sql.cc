#include "compute/flink_sql.h"

#include <algorithm>
#include <memory>

#include "sql/expr_eval.h"
#include "sql/parser.h"

namespace uberrt::compute {

namespace {

using sql::Expr;
using sql::RowBinding;
using sql::SelectItem;
using sql::SelectStmt;
using sql::WindowClause;

std::string UpperCopy(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::toupper(c)); });
  return s;
}

Result<AggregateSpec> CompileAggregate(const Expr& call, const std::string& output) {
  AggregateSpec spec;
  spec.output_name = output;
  std::string fn = UpperCopy(call.name);
  if (fn == "COUNT") {
    spec.kind = AggregateSpec::Kind::kCount;
    // COUNT(*) or COUNT(col) — both count rows here (no NULL-skipping
    // distinction in this dialect).
    return spec;
  }
  if (call.children.size() != 1 || call.children[0]->kind != Expr::Kind::kColumn) {
    return Status::InvalidArgument(fn + " expects a single column argument");
  }
  spec.field = call.children[0]->name;
  if (fn == "SUM") {
    spec.kind = AggregateSpec::Kind::kSum;
  } else if (fn == "MIN") {
    spec.kind = AggregateSpec::Kind::kMin;
  } else if (fn == "MAX") {
    spec.kind = AggregateSpec::Kind::kMax;
  } else if (fn == "AVG") {
    spec.kind = AggregateSpec::Kind::kAvg;
  } else {
    return Status::InvalidArgument("unsupported aggregate: " + fn);
  }
  return spec;
}

/// Infers a result type for a scalar expression (best-effort; used to name
/// and type projection outputs).
ValueType InferType(const Expr& expr, const RowSchema& schema) {
  switch (expr.kind) {
    case Expr::Kind::kLiteral:
      return expr.literal.type();
    case Expr::Kind::kColumn: {
      int idx = schema.FieldIndex(expr.name);
      return idx >= 0 ? schema.fields()[static_cast<size_t>(idx)].type
                      : ValueType::kNull;
    }
    case Expr::Kind::kBinary:
      switch (expr.op) {
        case Expr::Op::kAnd: case Expr::Op::kOr: case Expr::Op::kEq:
        case Expr::Op::kNe: case Expr::Op::kLt: case Expr::Op::kLe:
        case Expr::Op::kGt: case Expr::Op::kGe:
          return ValueType::kBool;
        default:
          return ValueType::kDouble;
      }
    case Expr::Kind::kUnary:
      return expr.op == Expr::Op::kNot ? ValueType::kBool : ValueType::kDouble;
    case Expr::Kind::kCall:
      return ValueType::kDouble;
    case Expr::Kind::kStar:
      return ValueType::kNull;
  }
  return ValueType::kNull;
}

}  // namespace

Result<JobGraph> CompileStreamingSql(const std::string& sql,
                                     const RowSchema& input_schema,
                                     FlinkSqlOptions options) {
  Result<std::unique_ptr<SelectStmt>> parsed = sql::ParseSelect(sql);
  if (!parsed.ok()) return parsed.status();
  // Shared ownership so the compiled std::functions can outlive this call.
  std::shared_ptr<SelectStmt> stmt(parsed.value().release());

  if (!stmt->from || stmt->from->kind != sql::TableRef::Kind::kNamed) {
    return Status::InvalidArgument("streaming SQL requires FROM <topic>");
  }
  if (!stmt->order_by.empty() || stmt->limit >= 0) {
    return Status::InvalidArgument(
        "ORDER BY / LIMIT are batch semantics; a stream is unbounded "
        "(use the OLAP layer for ranked queries)");
  }
  bool has_aggregates = false;
  for (const SelectItem& item : stmt->items) {
    if (item.expr->ContainsAggregate()) has_aggregates = true;
  }
  if (has_aggregates && !stmt->window.has_value()) {
    return Status::InvalidArgument(
        "aggregation over a stream requires a TUMBLE/HOP/SESSION window in "
        "GROUP BY");
  }
  if (!stmt->group_by.empty() && !has_aggregates) {
    return Status::InvalidArgument("GROUP BY without aggregates");
  }

  JobGraph graph("flinksql");
  SourceSpec source;
  source.topic = options.topic_override.empty() ? stmt->from->name
                                                : options.topic_override;
  source.schema = input_schema;
  source.out_of_orderness_ms = options.out_of_orderness_ms;
  if (stmt->window.has_value()) {
    if (!input_schema.HasField(stmt->window->time_column)) {
      return Status::InvalidArgument("window time column '" +
                                     stmt->window->time_column + "' not in schema");
    }
    source.time_field = stmt->window->time_column;
  }
  graph.AddSource(source);

  auto binding = std::make_shared<RowBinding>(input_schema);

  // WHERE -> Filter on the raw stream.
  if (stmt->where) {
    std::shared_ptr<SelectStmt> keep = stmt;  // keeps the Expr alive
    const Expr* where = stmt->where.get();
    auto bind = binding;
    graph.Filter(
        "where",
        [keep, where, bind](const Row& row) {
          Result<Value> v = sql::EvalExpr(*where, row, *bind);
          return v.ok() && sql::Truthy(v.value());
        },
        options.parallelism);
  }

  if (!has_aggregates) {
    // Pure projection (possibly SELECT *).
    bool star_only = stmt->items.size() == 1 &&
                     stmt->items[0].expr->kind == Expr::Kind::kStar;
    if (!star_only) {
      std::vector<FieldSpec> out_fields;
      for (const SelectItem& item : stmt->items) {
        if (item.expr->kind == Expr::Kind::kStar) {
          return Status::InvalidArgument("'*' must be the only select item");
        }
        out_fields.push_back(
            {sql::SelectItemName(item), InferType(*item.expr, input_schema)});
      }
      std::shared_ptr<SelectStmt> keep = stmt;
      auto bind = binding;
      graph.Map(
          "project",
          [keep, bind](const Row& row) {
            Row out;
            out.reserve(keep->items.size());
            for (const SelectItem& item : keep->items) {
              Result<Value> v = sql::EvalExpr(*item.expr, row, *bind);
              out.push_back(v.ok() ? v.value() : Value::Null());
            }
            return out;
          },
          RowSchema(out_fields), options.parallelism);
    }
    return graph;
  }

  // Windowed aggregation. Group keys must be plain columns.
  std::vector<std::string> key_fields;
  for (const auto& key : stmt->group_by) {
    if (key->kind != Expr::Kind::kColumn) {
      return Status::InvalidArgument("GROUP BY keys must be columns");
    }
    if (!input_schema.HasField(key->name)) {
      return Status::InvalidArgument("GROUP BY column '" + key->name +
                                     "' not in schema");
    }
    key_fields.push_back(key->name);
  }

  WindowSpec window;
  switch (stmt->window->type) {
    case WindowClause::Type::kTumble:
      window = WindowSpec::Tumbling(stmt->window->size_ms);
      break;
    case WindowClause::Type::kHop:
      window = WindowSpec::Sliding(stmt->window->size_ms, stmt->window->slide_ms);
      break;
    case WindowClause::Type::kSession:
      window = WindowSpec::Session(stmt->window->gap_ms);
      break;
  }

  // Aggregate select items in select order; validate the scalar ones.
  std::vector<AggregateSpec> aggregates;
  for (const SelectItem& item : stmt->items) {
    if (item.expr->kind == Expr::Kind::kCall &&
        sql::IsAggregateFunction(item.expr->name)) {
      Result<AggregateSpec> spec =
          CompileAggregate(*item.expr, sql::SelectItemName(item));
      if (!spec.ok()) return spec.status();
      aggregates.push_back(std::move(spec.value()));
    } else if (item.expr->kind == Expr::Kind::kColumn) {
      const std::string& name = item.expr->name;
      bool is_key =
          std::find(key_fields.begin(), key_fields.end(), name) != key_fields.end();
      if (!is_key && name != "window_start") {
        return Status::InvalidArgument(
            "select item '" + name + "' is neither a group key, window_start, "
            "nor an aggregate");
      }
    } else {
      return Status::InvalidArgument("unsupported select item: " +
                                     item.expr->ToString());
    }
  }
  if (aggregates.empty()) {
    return Status::InvalidArgument("windowed query needs at least one aggregate");
  }

  graph.WindowAggregate("window_agg", key_fields, window, aggregates,
                        options.allowed_lateness_ms, options.parallelism);
  RowSchema agg_schema =
      WindowAggregateOutputSchema(input_schema, key_fields, aggregates);

  // HAVING -> Filter over aggregated rows.
  if (stmt->having) {
    std::shared_ptr<SelectStmt> keep = stmt;
    const Expr* having = stmt->having.get();
    auto agg_binding = std::make_shared<RowBinding>(agg_schema);
    graph.Filter("having", [keep, having, agg_binding](const Row& row) {
      Result<Value> v = sql::EvalExpr(*having, row, *agg_binding);
      return v.ok() && sql::Truthy(v.value());
    });
  }

  // Final projection into select-item order.
  std::vector<int> out_indices;
  std::vector<FieldSpec> out_fields;
  for (const SelectItem& item : stmt->items) {
    std::string name = item.expr->kind == Expr::Kind::kColumn
                           ? item.expr->name
                           : sql::SelectItemName(item);
    int idx = agg_schema.FieldIndex(name);
    if (idx < 0) return Status::Internal("projection lost column: " + name);
    out_indices.push_back(idx);
    out_fields.push_back({sql::SelectItemName(item),
                          agg_schema.fields()[static_cast<size_t>(idx)].type});
  }
  graph.Map(
      "select",
      [out_indices](const Row& row) {
        Row out;
        out.reserve(out_indices.size());
        for (int idx : out_indices) out.push_back(row[static_cast<size_t>(idx)]);
        return out;
      },
      RowSchema(out_fields));
  return graph;
}

}  // namespace uberrt::compute
