#ifndef UBERRT_COMPUTE_JOB_GRAPH_H_
#define UBERRT_COMPUTE_JOB_GRAPH_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "common/value.h"

namespace uberrt::compute {

/// Event-time window shape (Flink-style).
struct WindowSpec {
  enum class Type { kTumbling, kSliding, kSession };
  Type type = Type::kTumbling;
  int64_t size_ms = 60000;
  int64_t slide_ms = 0;  ///< sliding windows only
  int64_t gap_ms = 0;    ///< session windows only

  static WindowSpec Tumbling(int64_t size_ms) {
    WindowSpec w;
    w.type = Type::kTumbling;
    w.size_ms = size_ms;
    return w;
  }
  static WindowSpec Sliding(int64_t size_ms, int64_t slide_ms) {
    WindowSpec w;
    w.type = Type::kSliding;
    w.size_ms = size_ms;
    w.slide_ms = slide_ms;
    return w;
  }
  static WindowSpec Session(int64_t gap_ms) {
    WindowSpec w;
    w.type = Type::kSession;
    w.gap_ms = gap_ms;
    return w;
  }
};

/// One aggregation inside a window (or a global group-by).
struct AggregateSpec {
  enum class Kind { kCount, kSum, kMin, kMax, kAvg };
  Kind kind = Kind::kCount;
  std::string field;        ///< input field (ignored for kCount)
  std::string output_name;  ///< name of the result column

  static AggregateSpec Count(std::string output_name) {
    return {Kind::kCount, "", std::move(output_name)};
  }
  static AggregateSpec Sum(std::string field, std::string output_name) {
    return {Kind::kSum, std::move(field), std::move(output_name)};
  }
  static AggregateSpec Min(std::string field, std::string output_name) {
    return {Kind::kMin, std::move(field), std::move(output_name)};
  }
  static AggregateSpec Max(std::string field, std::string output_name) {
    return {Kind::kMax, std::move(field), std::move(output_name)};
  }
  static AggregateSpec Avg(std::string field, std::string output_name) {
    return {Kind::kAvg, std::move(field), std::move(output_name)};
  }
};

/// A stream source: a topic (or, for backfill, an archive table standing in
/// for the topic) plus how to extract event time from rows.
struct SourceSpec {
  std::string topic;
  RowSchema schema;
  /// Field carrying the event timestamp (ms). Empty -> ingestion time.
  std::string time_field;
  /// Bounded out-of-orderness watermark generator: watermark = max seen
  /// event time minus this slack.
  int64_t out_of_orderness_ms = 0;
  /// Emit a watermark every this many records.
  int64_t watermark_interval_records = 64;
};

/// One transformation stage.
struct TransformSpec {
  enum class Kind { kMap, kFilter, kFlatMap, kWindowAggregate, kWindowJoin };

  Kind kind = Kind::kMap;
  std::string name;
  int32_t parallelism = 1;

  // kMap / kFilter / kFlatMap.
  std::function<Row(const Row&)> map_fn;
  std::function<bool(const Row&)> filter_fn;
  std::function<std::vector<Row>(const Row&)> flatmap_fn;
  RowSchema output_schema;  ///< schema after this stage

  // kWindowAggregate / kWindowJoin.
  std::vector<std::string> key_fields;
  WindowSpec window;
  std::vector<AggregateSpec> aggregates;
  int64_t allowed_lateness_ms = 0;

  // kWindowJoin: key/time fields resolved against each side's schema.
  // Output schema is left fields then right fields (key fields deduped).
};

/// Where results go.
struct SinkSpec {
  enum class Kind { kTopic, kCollector };
  Kind kind = Kind::kCollector;
  std::string topic;
  /// Collector callback; must be thread-safe. Receives the output row and
  /// its event time.
  std::function<void(const Row&, TimestampMs)> collector;
};

/// Declarative dataflow description — what FlinkSQL compiles to and what
/// both the streaming runner and the Kappa+ backfill runner execute
/// (Section 7: "execute the same code ... on both streaming or batch data
/// sources"). One or two sources; with two sources the first transform must
/// be a window join.
class JobGraph {
 public:
  JobGraph() = default;
  explicit JobGraph(std::string job_name) : name_(std::move(job_name)) {}

  const std::string& name() const { return name_; }

  JobGraph& AddSource(SourceSpec source) {
    sources_.push_back(std::move(source));
    return *this;
  }

  JobGraph& Map(std::string name, std::function<Row(const Row&)> fn,
                RowSchema output_schema, int32_t parallelism = 1) {
    TransformSpec t;
    t.kind = TransformSpec::Kind::kMap;
    t.name = std::move(name);
    t.map_fn = std::move(fn);
    t.output_schema = std::move(output_schema);
    t.parallelism = parallelism;
    transforms_.push_back(std::move(t));
    return *this;
  }

  JobGraph& Filter(std::string name, std::function<bool(const Row&)> fn,
                   int32_t parallelism = 1) {
    TransformSpec t;
    t.kind = TransformSpec::Kind::kFilter;
    t.name = std::move(name);
    t.filter_fn = std::move(fn);
    t.parallelism = parallelism;
    transforms_.push_back(std::move(t));
    return *this;
  }

  JobGraph& FlatMap(std::string name, std::function<std::vector<Row>(const Row&)> fn,
                    RowSchema output_schema, int32_t parallelism = 1) {
    TransformSpec t;
    t.kind = TransformSpec::Kind::kFlatMap;
    t.name = std::move(name);
    t.flatmap_fn = std::move(fn);
    t.output_schema = std::move(output_schema);
    t.parallelism = parallelism;
    transforms_.push_back(std::move(t));
    return *this;
  }

  /// Keyed event-time windowed aggregation. Output schema: key fields,
  /// then "window_start" (INT, ms), then one column per aggregate.
  JobGraph& WindowAggregate(std::string name, std::vector<std::string> key_fields,
                            WindowSpec window, std::vector<AggregateSpec> aggregates,
                            int64_t allowed_lateness_ms = 0, int32_t parallelism = 1) {
    TransformSpec t;
    t.kind = TransformSpec::Kind::kWindowAggregate;
    t.name = std::move(name);
    t.key_fields = std::move(key_fields);
    t.window = window;
    t.aggregates = std::move(aggregates);
    t.allowed_lateness_ms = allowed_lateness_ms;
    t.parallelism = parallelism;
    transforms_.push_back(std::move(t));
    return *this;
  }

  /// Keyed tumbling-window stream-stream join of the two sources; must be
  /// the first transform of a two-source graph. Output: left row fields
  /// followed by right row fields.
  JobGraph& WindowJoin(std::string name, std::vector<std::string> key_fields,
                       WindowSpec window, int64_t allowed_lateness_ms = 0,
                       int32_t parallelism = 1) {
    TransformSpec t;
    t.kind = TransformSpec::Kind::kWindowJoin;
    t.name = std::move(name);
    t.key_fields = std::move(key_fields);
    t.window = window;
    t.allowed_lateness_ms = allowed_lateness_ms;
    t.parallelism = parallelism;
    transforms_.push_back(std::move(t));
    return *this;
  }

  JobGraph& SinkToTopic(std::string topic) {
    sink_.kind = SinkSpec::Kind::kTopic;
    sink_.topic = std::move(topic);
    return *this;
  }

  JobGraph& SinkToCollector(std::function<void(const Row&, TimestampMs)> fn) {
    sink_.kind = SinkSpec::Kind::kCollector;
    sink_.collector = std::move(fn);
    return *this;
  }

  const std::vector<SourceSpec>& sources() const { return sources_; }
  const std::vector<TransformSpec>& transforms() const { return transforms_; }
  const SinkSpec& sink() const { return sink_; }

  /// Schema of rows leaving the given transform (resolving window/join
  /// output schemas). `index == -1` gives the (first) source schema.
  RowSchema SchemaAfter(int index) const;

  /// Structural validation (source present, join arity, fields resolvable).
  Status Validate() const;

  /// True when the graph keeps keyed window state (join or window
  /// aggregation) — the memory-bound job class of Section 4.2.1, vs the
  /// CPU-bound stateless class.
  bool IsStateful() const;

  /// Copy with source `index` replaced — how backfill re-points a job at a
  /// replay topic without touching its logic (Section 7).
  JobGraph WithSource(size_t index, SourceSpec source) const {
    JobGraph copy = *this;
    if (index < copy.sources_.size()) copy.sources_[index] = std::move(source);
    return copy;
  }

  /// Copy renamed (checkpoints are namespaced by job name).
  JobGraph WithName(std::string job_name) const {
    JobGraph copy = *this;
    copy.name_ = std::move(job_name);
    return copy;
  }

  /// Copy with every transform's parallelism set — the job manager's
  /// auto-scaling lever (Section 4.2.1).
  JobGraph WithParallelism(int32_t parallelism) const {
    JobGraph copy = *this;
    for (TransformSpec& t : copy.transforms_) t.parallelism = parallelism;
    return copy;
  }

 private:
  std::string name_ = "job";
  std::vector<SourceSpec> sources_;
  std::vector<TransformSpec> transforms_;
  SinkSpec sink_;
};

/// Output schema of a window aggregation given input schema and spec.
RowSchema WindowAggregateOutputSchema(const RowSchema& input,
                                      const std::vector<std::string>& key_fields,
                                      const std::vector<AggregateSpec>& aggregates);

/// Output schema of a window join of two inputs.
RowSchema WindowJoinOutputSchema(const RowSchema& left, const RowSchema& right);

}  // namespace uberrt::compute

#endif  // UBERRT_COMPUTE_JOB_GRAPH_H_
