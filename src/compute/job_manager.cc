#include "compute/job_manager.h"

#include "common/hash.h"
#include "storage/archive.h"

namespace uberrt::compute {

const char* JobStateName(JobState state) {
  switch (state) {
    case JobState::kRunning: return "RUNNING";
    case JobState::kFinished: return "FINISHED";
    case JobState::kFailed: return "FAILED";
    case JobState::kCancelled: return "CANCELLED";
  }
  return "UNKNOWN";
}

Result<CheckpointData> RedistributeKeyedState(const CheckpointData& data,
                                              const JobGraph& graph,
                                              int32_t old_parallelism,
                                              int32_t new_parallelism) {
  CheckpointData out;
  out.sequence = data.sequence;
  // Source offsets copy through unchanged.
  for (const auto& [key, value] : data.entries) {
    if (key.rfind("source.", 0) == 0) out.entries[key] = value;
  }
  for (size_t s = 0; s < graph.transforms().size(); ++s) {
    // Gather all old instances' state rows for this stage.
    std::vector<Row> all_rows;
    for (int32_t i = 0; i < old_parallelism; ++i) {
      auto it = data.entries.find("op." + std::to_string(s) + "." + std::to_string(i));
      if (it == data.entries.end() || it->second.empty()) continue;
      Result<std::vector<Row>> rows = storage::DecodeRowBatch(it->second);
      if (!rows.ok()) return rows.status();
      for (Row& row : rows.value()) all_rows.push_back(std::move(row));
    }
    // Re-bucket by the key in field 0 with the runner's routing hash.
    std::vector<std::vector<Row>> buckets(static_cast<size_t>(new_parallelism));
    for (Row& row : all_rows) {
      if (row.empty() || row[0].type() != ValueType::kString) {
        return Status::Corruption("keyed state row lacks key field");
      }
      size_t target = static_cast<size_t>(
          Fnv1a64(row[0].AsString()) % static_cast<uint64_t>(new_parallelism));
      buckets[target].push_back(std::move(row));
    }
    for (int32_t i = 0; i < new_parallelism; ++i) {
      out.entries["op." + std::to_string(s) + "." + std::to_string(i)] =
          storage::EncodeRowBatch(buckets[static_cast<size_t>(i)]);
    }
  }
  return out;
}

JobManager::JobManager(stream::MessageBus* bus, storage::ObjectStore* store,
                       JobManagerOptions options)
    : bus_(bus),
      store_(store),
      options_(options),
      checkpoint_retry_("checkpoint", common::RetryOptions{},
                        SystemClock::Instance(), &metrics_) {}

JobManager::~JobManager() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [id, job] : jobs_) {
    if (job->runner) job->runner->Cancel();
  }
}

Result<std::string> JobManager::Submit(const JobGraph& graph,
                                       JobRunnerOptions runner_options) {
  UBERRT_RETURN_IF_ERROR(graph.Validate());
  std::lock_guard<std::mutex> lock(mu_);
  auto job = std::make_unique<ManagedJob>();
  job->id = graph.name() + "-" + std::to_string(next_id_++);
  job->graph = graph.WithName(job->id);  // checkpoint namespace per managed job
  job->runner_options = runner_options;
  if (job->runner_options.executor == nullptr) {
    job->runner_options.executor = options_.default_executor;
  }
  if (job->runner_options.checkpoint_retry == nullptr) {
    job->runner_options.checkpoint_retry = &checkpoint_retry_;
  }
  job->parallelism = graph.transforms().empty() ? 1 : graph.transforms()[0].parallelism;
  job->runner = std::make_unique<JobRunner>(job->graph, bus_, store_, job->runner_options);
  UBERRT_RETURN_IF_ERROR(job->runner->Start());
  std::string id = job->id;
  jobs_.emplace(id, std::move(job));
  return id;
}

Status JobManager::CancelJob(const std::string& id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) return Status::NotFound("no job: " + id);
  ManagedJob* job = it->second.get();
  if (job->runner && job->runner->IsRunning()) {
    if (job->runner_options.periodic_checkpoints) {
      job->runner->TriggerCheckpoint().ok();  // best-effort graceful snapshot
    }
    job->runner->Cancel();
  }
  job->state = JobState::kCancelled;
  return Status::Ok();
}

Result<JobInfo> JobManager::GetJob(const std::string& id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) return Status::NotFound("no job: " + id);
  return InfoFor(*it->second);
}

std::vector<JobInfo> JobManager::ListJobs() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<JobInfo> out;
  for (const auto& [id, job] : jobs_) out.push_back(InfoFor(*job));
  return out;
}

JobInfo JobManager::InfoFor(const ManagedJob& job) const {
  JobInfo info;
  info.id = job.id;
  info.state = job.state;
  info.parallelism = job.parallelism;
  info.restarts = job.restarts;
  info.rescales = job.rescales;
  info.stateful = job.graph.IsStateful();
  if (job.runner) {
    info.records_in = job.runner->RecordsIn();
    info.records_out = job.runner->RecordsOut();
    info.state_bytes = job.runner->StateBytes();
    Result<int64_t> lag = job.runner->SourceLag();
    if (lag.ok()) info.lag = lag.value();
  }
  return info;
}

Status JobManager::RestartFromCheckpoint(ManagedJob* job, int32_t new_parallelism) {
  JobGraph graph = job->graph.WithParallelism(new_parallelism);
  auto runner = std::make_unique<JobRunner>(graph, bus_, store_, job->runner_options);
  if (new_parallelism != job->parallelism) {
    // Rescale: rewrite the latest checkpoint with state re-bucketed.
    CheckpointStore checkpoints(store_, job->runner_options.checkpoint_prefix, job->id);
    Result<CheckpointData> latest = checkpoint_retry_.RunResult<CheckpointData>(
        [&] { return checkpoints.LoadLatest(); });
    if (latest.ok()) {
      Result<CheckpointData> redistributed = RedistributeKeyedState(
          latest.value(), job->graph, job->parallelism, new_parallelism);
      if (!redistributed.ok()) return redistributed.status();
      CheckpointData data = std::move(redistributed.value());
      data.sequence = latest.value().sequence + 1;
      UBERRT_RETURN_IF_ERROR(checkpoints.Save(data));
    }
  }
  Status restored = runner->RestoreFromCheckpoint();
  if (!restored.ok() && !restored.IsNotFound()) return restored;
  UBERRT_RETURN_IF_ERROR(runner->Start());
  job->runner = std::move(runner);
  job->parallelism = new_parallelism;
  return Status::Ok();
}

Status JobManager::Tick() {
  std::lock_guard<std::mutex> lock(mu_);
  ++ticks_;
  for (auto& [id, job_ptr] : jobs_) {
    ManagedJob* job = job_ptr.get();
    if (job->state != JobState::kRunning || !job->runner) continue;
    if (job->runner->IsFinished()) {
      job->runner->AwaitTermination(1000).ok();
      job->state = JobState::kFinished;
      continue;
    }
    // Injected crash: cancel the runner exactly as a process kill would;
    // the crash-detection branch below restarts it in this same sweep.
    if (faults_ != nullptr && job->runner->IsRunning() &&
        !faults_->Check("job.crash." + id).ok()) {
      job->runner->Cancel();
    }
    if (!job->runner->IsRunning()) {
      // Crash detected: automatic failure recovery from the last checkpoint.
      ++job->restarts;
      Status restarted = RestartFromCheckpoint(job, job->parallelism);
      // A transiently-down checkpoint store is not a dead job: leave it
      // kRunning so the next sweep retries the restart.
      if (!restarted.ok() && !common::RetryPolicy::IsRetryable(restarted)) {
        job->state = JobState::kFailed;
      }
      continue;
    }
    // Periodic checkpoint.
    if (job->runner_options.periodic_checkpoints &&
        ticks_ % options_.checkpoint_every_ticks == 0) {
      job->runner->TriggerCheckpoint().ok();
    }
    // Lag-driven auto-scaling.
    Result<int64_t> lag = job->runner->SourceLag();
    if (lag.ok() && lag.value() > options_.lag_scale_up_threshold &&
        job->parallelism < options_.max_parallelism) {
      job->runner->TriggerCheckpoint().ok();
      job->runner->Cancel();
      ++job->rescales;
      int32_t new_parallelism = std::min(options_.max_parallelism, job->parallelism * 2);
      Status rescaled = RestartFromCheckpoint(job, new_parallelism);
      if (!rescaled.ok() && !common::RetryPolicy::IsRetryable(rescaled)) {
        job->state = JobState::kFailed;
      }
    }
  }
  return Status::Ok();
}

Status JobManager::InjectFailure(const std::string& id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) return Status::NotFound("no job: " + id);
  if (it->second->runner) it->second->runner->Cancel();
  return Status::Ok();
}

JobRunner* JobManager::GetRunner(const std::string& id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = jobs_.find(id);
  return it == jobs_.end() ? nullptr : it->second->runner.get();
}

}  // namespace uberrt::compute
