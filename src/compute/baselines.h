#ifndef UBERRT_COMPUTE_BASELINES_H_
#define UBERRT_COMPUTE_BASELINES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "compute/job_graph.h"
#include "stream/message_bus.h"

namespace uberrt::compute {

/// Deterministic model of recovering from an input backlog, reproducing the
/// Section 4.2 comparison: "Storm performed poorly in handling back pressure
/// when faced with a massive input backlog of millions of messages, taking
/// several hours to recover whereas Flink only took 20 minutes."
///
/// Flink-like (credit-based flow control): the operator admits exactly what
/// it can process; no work is wasted, so recovery time is
/// backlog / service_rate.
///
/// Storm-like (ack + timeout + replay, no flow control): the spout keeps up
/// to `max_pending` unacked tuples in flight; tuples that are not acked
/// within `timeout_ticks` are re-emitted by the spout while the stale
/// original still occupies worker capacity when it reaches the head of the
/// queue. When max_pending exceeds service_rate x timeout (the classic
/// misconfiguration under backlog), a large fraction of capacity is burned
/// on stale tuples, so recovery takes a multiple of the Flink time — and the
/// multiple grows with the backlog as the in-flight queue saturates.
struct BacklogRecoveryParams {
  int64_t backlog = 1'000'000;       ///< messages waiting in Kafka
  int64_t service_per_tick = 10'000; ///< messages the operator completes per tick
  int64_t timeout_ticks = 30;        ///< ack timeout (Storm only)
  int64_t max_pending = 1'000'000;   ///< spout max in-flight (Storm only)
};

struct BacklogRecoveryResult {
  int64_t ticks_to_recover = 0;  ///< ticks until every backlog message acked
  int64_t wasted_work = 0;       ///< stale tuples processed and discarded
  int64_t replays = 0;           ///< tuples re-emitted after timeout
};

/// Credit-based flow control (Flink-like): exact, no waste.
BacklogRecoveryResult SimulateCreditBasedRecovery(const BacklogRecoveryParams& params);

/// Ack/timeout/replay without flow control (Storm-like).
BacklogRecoveryResult SimulateAckReplayRecovery(const BacklogRecoveryParams& params);

/// Micro-batch windowed aggregation (Spark-Streaming-like) over a bounded
/// topic: every record of each live window is buffered as a raw row until
/// the window's batch boundary passes, then aggregated in one pass. This is
/// the materialize-then-aggregate execution whose memory footprint the paper
/// contrasts with Flink's incremental accumulators ("Spark jobs consumed
/// 5-10 times more memory than a corresponding Flink job", Section 4.2).
struct MicroBatchReport {
  std::vector<Row> rows;           ///< aggregated output rows
  int64_t peak_buffered_bytes = 0; ///< peak raw-row buffer footprint
  int64_t records_processed = 0;
};

/// Runs the aggregation described by (key_fields, window, aggregates) over
/// the full current contents of `source.topic`. Only tumbling windows.
Result<MicroBatchReport> RunMicroBatchWindowAggregate(
    stream::MessageBus* bus, const SourceSpec& source,
    const std::vector<std::string>& key_fields, const WindowSpec& window,
    const std::vector<AggregateSpec>& aggregates);

}  // namespace uberrt::compute

#endif  // UBERRT_COMPUTE_BASELINES_H_
