#include "compute/job_runner.h"

#include <algorithm>

#include "common/clock.h"
#include "common/hash.h"
#include "compute/window_operator.h"

namespace uberrt::compute {

namespace {

/// Elements (not batches) one instance task processes before rescheduling
/// itself, so a small pool round-robins fairly across a wide pipeline.
constexpr int kInstanceTaskBudget = 1024;

/// Terminal stage: delivers rows to the configured sink.
class SinkOperator : public OperatorInstance {
 public:
  SinkOperator(const SinkSpec& spec, stream::MessageBus* bus,
               std::atomic<int64_t>* records_out)
      : spec_(spec), bus_(bus), records_out_(records_out) {}

  void ProcessRecord(const Element& element, Emitter* out) override {
    (void)out;
    if (spec_.kind == SinkSpec::Kind::kTopic) {
      stream::Message message;
      message.value = EncodeRow(element.row);
      message.timestamp = element.event_time;
      bus_->Produce(spec_.topic, std::move(message), stream::AckMode::kLeader).ok();
    } else if (spec_.collector) {
      spec_.collector(element.row, element.event_time);
    }
    records_out_->fetch_add(1);
  }

 private:
  SinkSpec spec_;
  stream::MessageBus* bus_;
  std::atomic<int64_t>* records_out_;
};

}  // namespace

struct JobRunner::Wiring {
  std::vector<BoundedQueue<ElementBatch>*> queues;
  std::vector<Instance*> targets;  ///< parallel to queues, for wakeups
  bool keyed = false;
  std::vector<int> key_indices[2];  ///< per input side (joins); [0] otherwise
  std::atomic<uint64_t> round_robin{0};
};

struct JobRunner::PendingPush {
  ElementBatch batch;
  Wiring* wiring = nullptr;
  size_t target = 0;
};

/// Per-producer output staging: one open batch per downstream target plus a
/// reused key-encoding scratch buffer. Owned by exactly one task at a time
/// (the producer's current quantum), so no locking. Elements in a pending
/// batch are already counted in in_flight_ — a producer always flushes (to
/// queue or stash) before ending its quantum, so quiesce never misses them.
struct JobRunner::OutBuffer {
  std::vector<ElementBatch> pending;  ///< parallel to the wiring's queues
  std::string key_scratch;
};

struct JobRunner::Instance {
  int stage = 0;
  int index = 0;
  std::unique_ptr<BoundedQueue<ElementBatch>> queue;
  std::unique_ptr<OperatorInstance> op;
  Wiring* output = nullptr;  ///< null for the sink stage
  int num_upstream = 0;
  bool is_sink = false;
  std::atomic<int64_t> state_bytes{0};
  std::atomic<int64_t> peak_state_bytes{0};
  std::atomic<int64_t> late_dropped{0};

  /// True while a pool task is queued or running for this instance. The
  /// clear-then-recheck protocol in RunInstance/WakeInstance guarantees at
  /// most one task at a time and no lost wakeups, which also makes the
  /// fields below single-writer (the current task) without locks.
  std::atomic<bool> scheduled{false};
  std::atomic<bool> exited{false};
  bool exiting = false;  ///< final End seen; draining stash before exit
  std::vector<TimestampMs> upstream_wm;
  int ends_remaining = 0;
  TimestampMs aligned = INT64_MIN;
  OutBuffer out;                  ///< output batching, owner-task only
  std::deque<PendingPush> stash;  ///< output backpressure, owner-task only
};

struct JobRunner::SourceState {
  SourceSpec spec;
  /// Next offset to fetch, per partition. Atomic because the owner poll task
  /// advances it while SourceLag() reads it from the caller's thread.
  std::vector<std::atomic<int64_t>> positions;
  int time_field_index = -1;
  /// Per-partition max event time (as in Flink's per-partition Kafka
  /// watermarking): the source watermark is the min over partitions that
  /// have produced data, so slow partitions never make fast ones "late".
  std::vector<TimestampMs> partition_max_event_time;
  int64_t records_since_watermark = 0;
  std::atomic<bool> busy{false};
  std::atomic<bool> done{false};

  // Owner-task-only fields (one poll task at a time, self-rescheduled).
  bool finishing = false;
  bool final_sent = false;  ///< terminal watermark+End broadcast issued
  std::vector<int64_t> end_targets;
  OutBuffer out;
  std::deque<PendingPush> stash;

  /// Watermark base: min event time over partitions. A partition with no
  /// samples yet holds the watermark back (returns INT64_MIN) if it still
  /// has unread data — we must not declare time progressed past records we
  /// have not looked at. Truly empty partitions are ignored as idle.
  TimestampMs CurrentWatermarkBase(stream::MessageBus* bus) const {
    TimestampMs min_wm = kMaxWatermark;
    bool any = false;
    for (size_t p = 0; p < partition_max_event_time.size(); ++p) {
      TimestampMs t = partition_max_event_time[p];
      if (t == INT64_MIN) {
        Result<int64_t> end = bus->EndOffset(spec.topic, static_cast<int32_t>(p));
        if (end.ok() && end.value() > positions[p]) return INT64_MIN;  // unread data
        continue;  // idle partition
      }
      any = true;
      min_wm = std::min(min_wm, t);
    }
    return any ? min_wm : INT64_MIN;
  }
};

namespace {

/// Emitter bound to one instance: routes records into the next stage
/// through the instance's own output buffer and stash (never blocks the
/// pool thread).
class RunnerEmitter : public Emitter {
 public:
  RunnerEmitter(JobRunner* runner, JobRunner::Instance* instance)
      : runner_(runner), instance_(instance) {}

  void Emit(Row row, TimestampMs event_time) override;

 private:
  JobRunner* runner_;
  JobRunner::Instance* instance_;
};

}  // namespace

JobRunner::JobRunner(JobGraph graph, stream::MessageBus* bus,
                     storage::ObjectStore* store, JobRunnerOptions options)
    : graph_(std::move(graph)),
      bus_(bus),
      options_(options),
      checkpoint_store_(store, options.checkpoint_prefix, graph_.name()) {
  max_batch_ = std::max<size_t>(1, options_.max_batch_records);
}

JobRunner::~JobRunner() { Cancel(); }

Status JobRunner::BuildTopology() {
  // Sources.
  for (const SourceSpec& spec : graph_.sources()) {
    auto src = std::make_unique<SourceState>();
    src->spec = spec;
    src->time_field_index = spec.time_field.empty()
                                ? -1
                                : spec.schema.FieldIndex(spec.time_field);
    Result<int32_t> partitions = bus_->NumPartitions(spec.topic);
    if (!partitions.ok()) return partitions.status();
    src->positions = std::vector<std::atomic<int64_t>>(
        static_cast<size_t>(partitions.value()));
    src->partition_max_event_time.resize(static_cast<size_t>(partitions.value()),
                                         INT64_MIN);
    for (int32_t p = 0; p < partitions.value(); ++p) {
      std::string key = "source." + std::to_string(source_states_.size()) + "." +
                        std::to_string(p);
      auto it = restored_.entries.find(key);
      if (it != restored_.entries.end()) {
        src->positions[static_cast<size_t>(p)] = std::stoll(it->second);
      } else {
        Result<int64_t> begin = bus_->BeginOffset(spec.topic, p);
        if (!begin.ok()) return begin.status();
        src->positions[static_cast<size_t>(p)] = begin.value();
      }
    }
    source_states_.push_back(std::move(src));
  }

  // Stage plans: fuse runs of consecutive same-parallelism stateless
  // transforms into one stage (Flink task chaining); stateful transforms
  // and the sink stand alone.
  const auto& transforms = graph_.transforms();
  plans_.clear();
  for (size_t t = 0; t < transforms.size();) {
    StagePlan plan;
    plan.first = t;
    plan.last = t;
    plan.parallelism = transforms[t].parallelism;
    if (options_.enable_chaining && IsStatelessTransform(transforms[t])) {
      while (plan.last + 1 < transforms.size() &&
             IsStatelessTransform(transforms[plan.last + 1]) &&
             transforms[plan.last + 1].parallelism == plan.parallelism) {
        ++plan.last;
      }
    }
    t = plan.last + 1;
    plans_.push_back(plan);
  }
  StagePlan sink_plan;
  sink_plan.first = transforms.size();
  sink_plan.last = transforms.size();
  sink_plan.parallelism = 1;
  sink_plan.is_sink = true;
  plans_.push_back(sink_plan);

  size_t num_stages = plans_.size();
  stages_.resize(num_stages);
  wirings_.resize(num_stages);

  // Instances per stage.
  for (size_t s = 0; s < num_stages; ++s) {
    const StagePlan& plan = plans_[s];
    int num_upstream = s == 0 ? static_cast<int>(graph_.sources().size())
                              : plans_[s - 1].parallelism;
    RowSchema input = graph_.SchemaAfter(static_cast<int>(plan.first) - 1);
    for (int32_t i = 0; i < plan.parallelism; ++i) {
      auto inst = std::make_unique<Instance>();
      inst->stage = static_cast<int>(s);
      inst->index = i;
      inst->queue =
          std::make_unique<BoundedQueue<ElementBatch>>(options_.channel_capacity);
      inst->num_upstream = num_upstream;
      inst->is_sink = plan.is_sink;
      inst->upstream_wm.assign(static_cast<size_t>(num_upstream), INT64_MIN);
      inst->ends_remaining = num_upstream;
      if (plan.is_sink) {
        inst->op = std::make_unique<SinkOperator>(graph_.sink(), bus_, &records_out_);
      } else if (plan.last > plan.first) {
        std::vector<TransformSpec> chain(transforms.begin() + plan.first,
                                         transforms.begin() + plan.last + 1);
        inst->op = CreateChainedOperatorInstance(std::move(chain));
      } else {
        RowSchema left = graph_.sources()[0].schema;
        RowSchema right =
            graph_.sources().size() > 1 ? graph_.sources()[1].schema : RowSchema();
        inst->op = CreateOperatorInstance(transforms[plan.first], input, left, right);
      }
      if (!plan.is_sink) {
        // State lives with the stage's first transform; chained followers
        // are stateless by construction and keep "" entries for key
        // compatibility with unchained checkpoints.
        std::string key =
            "op." + std::to_string(plan.first) + "." + std::to_string(i);
        auto it = restored_.entries.find(key);
        if (it != restored_.entries.end()) {
          UBERRT_RETURN_IF_ERROR(inst->op->RestoreState(it->second));
          inst->state_bytes.store(inst->op->StateBytes());
        }
      }
      stages_[s].push_back(std::move(inst));
    }
  }

  // Wirings: wirings_[s] feeds stage s.
  for (size_t s = 0; s < num_stages; ++s) {
    auto wiring = std::make_unique<Wiring>();
    for (auto& inst : stages_[s]) {
      wiring->queues.push_back(inst->queue.get());
      wiring->targets.push_back(inst.get());
    }
    if (!plans_[s].is_sink) {
      const TransformSpec& t = transforms[plans_[s].first];
      if (t.kind == TransformSpec::Kind::kWindowAggregate) {
        wiring->keyed = true;
        RowSchema input = graph_.SchemaAfter(static_cast<int>(plans_[s].first) - 1);
        wiring->key_indices[0] = ResolveIndices(input, t.key_fields);
        wiring->key_indices[1] = wiring->key_indices[0];
      } else if (t.kind == TransformSpec::Kind::kWindowJoin) {
        wiring->keyed = true;
        wiring->key_indices[0] = ResolveIndices(graph_.sources()[0].schema, t.key_fields);
        wiring->key_indices[1] = ResolveIndices(graph_.sources()[1].schema, t.key_fields);
      }
    }
    wirings_[s] = std::move(wiring);
  }

  // Instance outputs and per-producer output buffers.
  for (size_t s = 0; s + 1 < num_stages; ++s) {
    for (auto& inst : stages_[s]) {
      inst->output = wirings_[s + 1].get();
      inst->out.pending.resize(wirings_[s + 1]->queues.size());
    }
  }
  for (auto& src : source_states_) {
    src->out.pending.resize(wirings_[0]->queues.size());
  }
  return Status::Ok();
}

Status JobRunner::Start() {
  if (running_.load()) return Status::FailedPrecondition("already running");
  UBERRT_RETURN_IF_ERROR(graph_.Validate());
  UBERRT_RETURN_IF_ERROR(BuildTopology());
  executor_ = options_.executor;
  if (executor_ == nullptr) {
    common::ExecutorOptions pool;
    pool.num_threads = std::max<size_t>(1, options_.pool_threads);
    pool.name = "executor.job." + graph_.name();
    owned_executor_ = std::make_unique<common::Executor>(pool);
    executor_ = owned_executor_.get();
  }
  running_.store(true);
  for (size_t si = 0; si < source_states_.size(); ++si) {
    if (!SubmitTask([this, si] { RunSource(si); })) {
      source_states_[si]->done.store(true);
    }
  }
  return Status::Ok();
}

Status JobRunner::RestoreFromCheckpoint(int64_t sequence) {
  if (running_.load()) return Status::FailedPrecondition("job already started");
  auto load = [&] {
    return sequence < 0 ? checkpoint_store_.LoadLatest()
                        : checkpoint_store_.Load(sequence);
  };
  Result<CheckpointData> data =
      options_.checkpoint_retry != nullptr
          ? options_.checkpoint_retry->RunResult<CheckpointData>(load)
          : load();
  if (!data.ok()) return data.status();
  restored_ = std::move(data.value());
  has_restored_ = true;
  checkpoint_sequence_.store(restored_.sequence);
  return Status::Ok();
}

bool JobRunner::SubmitTask(std::function<void()> fn) {
  tasks_wg_.Add(1);
  bool ok = executor_->Submit([this, fn = std::move(fn)] {
    fn();
    tasks_wg_.Done();
  });
  if (!ok) tasks_wg_.Done();
  return ok;
}

void JobRunner::WakeInstance(Instance* instance) {
  if (instance->exited.load(std::memory_order_acquire)) return;
  bool expected = false;
  if (!instance->scheduled.compare_exchange_strong(expected, true,
                                                   std::memory_order_acq_rel)) {
    return;  // a task is queued/running; it rechecks the queue before idling
  }
  if (!SubmitTask([this, instance] { RunInstance(instance); })) {
    instance->scheduled.store(false, std::memory_order_release);
  }
}

bool JobRunner::FlushStash(std::deque<PendingPush>& stash) {
  while (!stash.empty()) {
    PendingPush& pending = stash.front();
    BoundedQueue<ElementBatch>* queue = pending.wiring->queues[pending.target];
    if (queue->TryPushRef(pending.batch)) {
      WakeInstance(pending.wiring->targets[pending.target]);
      stash.pop_front();
      continue;
    }
    if (queue->closed()) {
      // Cancelled under us: drop, as the blocking Push used to.
      in_flight_.fetch_sub(static_cast<int64_t>(pending.batch.items.size()));
      stash.pop_front();
      continue;
    }
    return false;  // downstream still full
  }
  return true;
}

void JobRunner::FlushTarget(size_t target, Wiring& wiring, OutBuffer* out,
                            std::deque<PendingPush>* stash) {
  ElementBatch& pending = out->pending[target];
  if (pending.items.empty()) return;
  ElementBatch batch = std::move(pending);
  pending.items.clear();
  // Per-queue FIFO from one producer must hold (watermarks may not overtake
  // records), so while anything sits in the stash, everything new queues
  // behind it.
  if (!stash->empty()) {
    FlushStash(*stash);
    if (!stash->empty()) {
      stash->push_back({std::move(batch), &wiring, target});
      return;
    }
  }
  if (wiring.queues[target]->TryPushRef(batch)) {
    WakeInstance(wiring.targets[target]);
    return;
  }
  if (wiring.queues[target]->closed()) {
    in_flight_.fetch_sub(static_cast<int64_t>(batch.items.size()));
    return;
  }
  stash->push_back({std::move(batch), &wiring, target});
}

void JobRunner::FlushOut(Wiring& wiring, OutBuffer* out,
                         std::deque<PendingPush>* stash) {
  for (size_t target = 0; target < out->pending.size(); ++target) {
    FlushTarget(target, wiring, out, stash);
  }
}

void JobRunner::EmitRecord(Element element, Wiring& wiring, OutBuffer* out,
                           std::deque<PendingPush>* stash) {
  size_t n = wiring.queues.size();
  size_t target = 0;
  if (wiring.keyed) {
    int side = element.side == 1 ? 1 : 0;
    EncodeKeyTo(element.row, wiring.key_indices[side], &out->key_scratch);
    target = static_cast<size_t>(Fnv1a64(out->key_scratch) % n);
  } else if (n > 1) {
    target = wiring.round_robin.fetch_add(1) % n;
  }
  in_flight_.fetch_add(1);
  ElementBatch& pending = out->pending[target];
  pending.items.push_back(std::move(element));
  if (pending.items.size() >= max_batch_) {
    FlushTarget(target, wiring, out, stash);
  }
}

void JobRunner::EmitControl(const Element& element, Wiring& wiring, OutBuffer* out,
                            std::deque<PendingPush>* stash) {
  for (size_t target = 0; target < out->pending.size(); ++target) {
    in_flight_.fetch_add(1);
    ElementBatch& pending = out->pending[target];
    pending.items.push_back(element);
    if (pending.items.size() >= max_batch_) {
      FlushTarget(target, wiring, out, stash);
    }
  }
}

void RunnerEmitter::Emit(Row row, TimestampMs event_time) {
  if (instance_->output == nullptr) return;
  Element element = Element::Record(std::move(row), event_time);
  element.from_channel = instance_->index;
  runner_->EmitRecord(std::move(element), *instance_->output, &instance_->out,
                      &instance_->stash);
}

void JobRunner::RunSource(size_t source_index) {
  SourceState& src = *source_states_[source_index];
  if (cancel_.load()) {
    src.done.store(true);
    return;
  }
  // busy is set before any position write and cleared after the last one, so
  // WaitForQuiesce observing busy==false (after pausing) means no write is
  // in progress and none will start until unpause. Every return path below
  // flushes the output buffer first, so positions never run ahead of
  // elements that are not yet queue-or-stash accounted.
  src.busy.store(true);
  Wiring& out = *wirings_[0];

  bool flushed = FlushStash(src.stash);
  if (src.final_sent) {
    src.busy.store(false);
    if (flushed) {
      src.done.store(true);
      return;
    }
    if (!SubmitTask([this, source_index] { RunSource(source_index); })) {
      src.done.store(true);
    }
    return;
  }
  if (!flushed || pause_sources_.load()) {
    // Backpressured or checkpoint-paused: yield. The pool's FIFO lets the
    // downstream instance tasks (and the checkpointer) make progress.
    src.busy.store(false);
    SystemClock::Instance()->SleepMs(1);
    if (cancel_.load() || !SubmitTask([this, source_index] { RunSource(source_index); })) {
      src.done.store(true);
    }
    return;
  }

  if (finish_requested_.load() && !src.finishing) {
    src.finishing = true;
    src.end_targets.resize(src.positions.size());
    for (size_t p = 0; p < src.positions.size(); ++p) {
      Result<int64_t> end = bus_->EndOffset(src.spec.topic, static_cast<int32_t>(p));
      src.end_targets[p] = end.ok() ? end.value() : src.positions[p].load();
    }
  }
  // Per-record mode (max_batch_records <= 1) keeps the seed's deep-copy
  // Fetch path so the bench baseline measures the old dataflow honestly;
  // batched mode fetches borrowed views and decodes straight from the
  // broker's arenas (zero copy until Row materialization). The FetchedBatch
  // pin dies at the end of each partition's poll, after every record has
  // been decoded into an owning Row.
  const bool zero_copy = max_batch_ > 1;
  bool got_data = false;
  for (size_t p = 0; p < src.positions.size() && !cancel_.load(); ++p) {
    if (!src.stash.empty()) break;  // downstream full: stop pulling more
    stream::FetchedBatch views;
    std::vector<stream::Message> owned;
    Status fetch_status = Status::Ok();
    if (zero_copy) {
      Result<stream::FetchedBatch> batch =
          bus_->FetchViews(src.spec.topic, static_cast<int32_t>(p),
                           src.positions[p], options_.source_poll_batch);
      if (batch.ok()) {
        views = std::move(batch.value());
      } else {
        fetch_status = batch.status();
      }
    } else {
      Result<std::vector<stream::Message>> batch =
          bus_->Fetch(src.spec.topic, static_cast<int32_t>(p), src.positions[p],
                      options_.source_poll_batch);
      if (batch.ok()) {
        owned = std::move(batch.value());
        for (stream::Message& m : owned) {
          views.messages.push_back(
              {m.key, m.value, m.timestamp, m.offset, m.partition, {}, {}, 0});
        }
      } else {
        fetch_status = batch.status();
      }
    }
    if (!fetch_status.ok()) {
      if (fetch_status.code() == StatusCode::kOutOfRange) {
        Result<int64_t> begin =
            bus_->BeginOffset(src.spec.topic, static_cast<int32_t>(p));
        if (begin.ok() && begin.value() > src.positions[p]) {
          src.positions[p] = begin.value();
        }
      }
      continue;
    }
    for (const stream::wire::MessageView& m : views.messages) {
      got_data = true;
      Result<Row> row = DecodeRow(m.value);
      // Position advances only after the record is in the pipeline (queue,
      // stash or pending output batch — all counted in_flight_), so a
      // checkpoint can never skip an unpushed record.
      if (!row.ok()) {
        decode_errors_.fetch_add(1);
        src.positions[p] = m.offset + 1;
        continue;
      }
      TimestampMs t = m.timestamp;
      int tf = src.time_field_index;
      if (tf >= 0 && tf < static_cast<int>(row.value().size()) &&
          row.value()[static_cast<size_t>(tf)].type() == ValueType::kInt) {
        t = row.value()[static_cast<size_t>(tf)].AsInt();
      }
      src.partition_max_event_time[p] =
          std::max(src.partition_max_event_time[p], t);
      records_in_.fetch_add(1);
      Element element = Element::Record(std::move(row.value()), t,
                                        static_cast<int32_t>(source_index));
      element.from_channel = static_cast<int32_t>(source_index);
      EmitRecord(std::move(element), out, &src.out, &src.stash);
      src.positions[p] = m.offset + 1;
      if (++src.records_since_watermark >= src.spec.watermark_interval_records) {
        src.records_since_watermark = 0;
        TimestampMs base = src.CurrentWatermarkBase(bus_);
        if (base != INT64_MIN) {
          Element wm = Element::Watermark(base - src.spec.out_of_orderness_ms);
          wm.from_channel = static_cast<int32_t>(source_index);
          EmitControl(wm, out, &src.out, &src.stash);
        }
      }
    }
  }
  FlushOut(out, &src.out, &src.stash);
  if (src.finishing) {
    bool caught_up = true;
    for (size_t p = 0; p < src.positions.size(); ++p) {
      if (src.positions[p] < src.end_targets[p]) {
        caught_up = false;
        break;
      }
    }
    if (caught_up) {
      // Batch + stash ordering keeps these behind any pending records per
      // queue.
      Element wm = Element::Watermark(kMaxWatermark);
      wm.from_channel = static_cast<int32_t>(source_index);
      EmitControl(wm, out, &src.out, &src.stash);
      Element end = Element::End();
      end.from_channel = static_cast<int32_t>(source_index);
      EmitControl(end, out, &src.out, &src.stash);
      FlushOut(out, &src.out, &src.stash);
      src.final_sent = true;
      src.busy.store(false);
      if (src.stash.empty() || cancel_.load() ||
          !SubmitTask([this, source_index] { RunSource(source_index); })) {
        src.done.store(true);
      }
      return;
    }
  }
  src.busy.store(false);
  if (!got_data) SystemClock::Instance()->SleepMs(options_.source_idle_sleep_ms);
  if (cancel_.load() || !SubmitTask([this, source_index] { RunSource(source_index); })) {
    src.done.store(true);
  }
}

bool JobRunner::ProcessControl(Instance* instance, const Element& element) {
  RunnerEmitter emitter(this, instance);
  auto aligned_watermark = [&]() {
    TimestampMs min_wm = kMaxWatermark;
    for (TimestampMs wm : instance->upstream_wm) min_wm = std::min(min_wm, wm);
    return min_wm;
  };
  auto update_state_gauges = [&] {
    int64_t bytes = instance->op->StateBytes();
    instance->state_bytes.store(bytes);
    if (bytes > instance->peak_state_bytes.load()) {
      instance->peak_state_bytes.store(bytes);
    }
    instance->late_dropped.store(instance->op->late_dropped());
  };

  if (element.kind == Element::Kind::kWatermark) {
    size_t ch = static_cast<size_t>(element.from_channel);
    if (ch < instance->upstream_wm.size()) {
      instance->upstream_wm[ch] =
          std::max(instance->upstream_wm[ch], element.event_time);
    }
    TimestampMs min_wm = aligned_watermark();
    if (min_wm > instance->aligned) {
      instance->aligned = min_wm;
      instance->op->OnWatermark(instance->aligned, &emitter);
      update_state_gauges();
      if (instance->output != nullptr) {
        Element forward = Element::Watermark(instance->aligned);
        forward.from_channel = instance->index;
        EmitControl(forward, *instance->output, &instance->out, &instance->stash);
      }
    }
    return false;
  }
  // kEnd.
  size_t ch = static_cast<size_t>(element.from_channel);
  if (ch < instance->upstream_wm.size()) {
    instance->upstream_wm[ch] = kMaxWatermark;
  }
  --instance->ends_remaining;
  TimestampMs min_wm = aligned_watermark();
  if (min_wm > instance->aligned) {
    instance->aligned = min_wm;
    instance->op->OnWatermark(instance->aligned, &emitter);
    update_state_gauges();
  }
  if (instance->ends_remaining == 0) {
    if (instance->output != nullptr) {
      Element forward = Element::End();
      forward.from_channel = instance->index;
      EmitControl(forward, *instance->output, &instance->out, &instance->stash);
    }
    return true;
  }
  return false;
}

bool JobRunner::ProcessBatchElements(Instance* instance, ElementBatch& batch) {
  RunnerEmitter emitter(this, instance);
  const size_t n = batch.items.size();
  size_t i = 0;
  while (i < n) {
    if (batch.items[i].kind == Element::Kind::kRecord) {
      size_t j = i + 1;
      while (j < n && batch.items[j].kind == Element::Kind::kRecord) ++j;
      // Contiguous record run: one virtual call, one state-gauge update.
      instance->op->ProcessBatch(&batch.items[i], j - i, &emitter);
      int64_t bytes = instance->op->StateBytes();
      instance->state_bytes.store(bytes);
      if (bytes > instance->peak_state_bytes.load()) {
        instance->peak_state_bytes.store(bytes);
      }
      instance->late_dropped.store(instance->op->late_dropped());
      i = j;
    } else {
      if (ProcessControl(instance, batch.items[i])) {
        // Final End is always the last element of the last live producer's
        // batch, so nothing follows it.
        return true;
      }
      ++i;
    }
  }
  return false;
}

void JobRunner::RunInstance(Instance* instance) {
  if (cancel_.load()) {
    instance->exited.store(true, std::memory_order_release);
    return;
  }
  auto resubmit = [this, instance] {
    // scheduled_ stays true across the handoff so producers don't
    // double-submit.
    if (!SubmitTask([this, instance] { RunInstance(instance); })) {
      instance->scheduled.store(false, std::memory_order_release);
    }
  };
  auto flush_output = [this, instance] {
    if (instance->output != nullptr) {
      FlushOut(*instance->output, &instance->out, &instance->stash);
    }
  };
  if (instance->exiting) {
    // Final End already processed: drain whatever that emitted, then leave
    // for good (nothing more arrives after End). Never blocks a pool
    // thread: if downstream is still full we yield and retry.
    if (!FlushStash(instance->stash)) {
      resubmit();
      return;
    }
    if (instance->is_sink) finished_.store(true);
    instance->exited.store(true, std::memory_order_release);
    return;
  }
  int budget = kInstanceTaskBudget;
  while (budget > 0) {
    if (!FlushStash(instance->stash)) {
      // Downstream full: park pending output in the stash and yield; pool
      // FIFO runs the downstream task first.
      flush_output();
      resubmit();
      return;
    }
    std::optional<ElementBatch> batch = instance->queue->TryPop();
    if (!batch.has_value()) break;
    budget -= static_cast<int>(batch->items.size());
    bool exited = ProcessBatchElements(instance, *batch);
    in_flight_.fetch_sub(static_cast<int64_t>(batch->items.size()));
    if (exited) {
      instance->exiting = true;
      flush_output();
      if (!FlushStash(instance->stash)) {
        resubmit();
        return;
      }
      if (instance->is_sink) finished_.store(true);
      instance->exited.store(true, std::memory_order_release);
      return;
    }
  }
  // Nothing may linger in the pending output while this task idles — flush
  // to queue or stash before deciding whether to reschedule.
  flush_output();
  if (!instance->stash.empty() || instance->queue->Size() > 0) {
    resubmit();
    return;
  }
  // Idle: clear the flag, then recheck — a producer that pushed between the
  // TryPop miss and the clear would otherwise be lost.
  instance->scheduled.store(false, std::memory_order_release);
  if (instance->queue->Size() > 0) {
    bool expected = false;
    if (instance->scheduled.compare_exchange_strong(expected, true,
                                                    std::memory_order_acq_rel)) {
      resubmit();
    }
  }
}

Status JobRunner::WaitForQuiesce(int64_t timeout_ms) {
  TimestampMs deadline = SystemClock::Instance()->NowMs() + timeout_ms;
  while (true) {
    bool sources_idle = true;
    for (auto& src : source_states_) {
      if (src->busy.load() && !src->done.load()) sources_idle = false;
    }
    if (sources_idle && in_flight_.load() == 0) return Status::Ok();
    if (SystemClock::Instance()->NowMs() > deadline) {
      return Status::Timeout("pipeline did not quiesce");
    }
    SystemClock::Instance()->SleepMs(1);
  }
}

Result<int64_t> JobRunner::TriggerCheckpoint() {
  if (!running_.load()) return Status::FailedPrecondition("job not running");
  pause_sources_.store(true);
  Status quiesced = WaitForQuiesce(30000);
  if (!quiesced.ok()) {
    pause_sources_.store(false);
    return quiesced;
  }
  CheckpointData data;
  data.sequence = checkpoint_sequence_.fetch_add(1) + 1;
  for (size_t si = 0; si < source_states_.size(); ++si) {
    const SourceState& src = *source_states_[si];
    for (size_t p = 0; p < src.positions.size(); ++p) {
      data.entries["source." + std::to_string(si) + "." + std::to_string(p)] =
          std::to_string(src.positions[p].load());
    }
  }
  // Every graph transform keeps its own entry regardless of chaining, so
  // checkpoints written with chaining on restore with it off and vice
  // versa: a chain's state lives under its first transform's key and its
  // followers (stateless by construction) store "".
  for (size_t s = 0; s + 1 < stages_.size(); ++s) {
    const StagePlan& plan = plans_[s];
    for (auto& inst : stages_[s]) {
      data.entries["op." + std::to_string(plan.first) + "." +
                   std::to_string(inst->index)] = inst->op->SnapshotState();
      for (size_t t = plan.first + 1; t <= plan.last; ++t) {
        data.entries["op." + std::to_string(t) + "." +
                     std::to_string(inst->index)] = "";
      }
    }
  }
  // Save is idempotent (same keys, same bytes), so retrying the whole write
  // after a transient store failure is safe.
  Status saved = options_.checkpoint_retry != nullptr
                     ? options_.checkpoint_retry->Run(
                           [&] { return checkpoint_store_.Save(data); })
                     : checkpoint_store_.Save(data);
  pause_sources_.store(false);
  if (!saved.ok()) return saved;
  return data.sequence;
}

void JobRunner::RequestFinish() { finish_requested_.store(true); }

Status JobRunner::AwaitTermination(int64_t timeout_ms) {
  TimestampMs deadline =
      timeout_ms < 0 ? kMaxWatermark : SystemClock::Instance()->NowMs() + timeout_ms;
  while (!finished_.load() && !cancel_.load()) {
    if (SystemClock::Instance()->NowMs() > deadline) {
      return Status::Timeout("job did not terminate");
    }
    SystemClock::Instance()->SleepMs(1);
  }
  // Sink done: sources and upstream instances have sent their Ends; wait for
  // the trailing pool tasks to drain.
  tasks_wg_.Wait();
  running_.store(false);
  return Status::Ok();
}

void JobRunner::Cancel() {
  cancel_.store(true);
  for (auto& stage : stages_) {
    for (auto& inst : stage) inst->queue->Close();
  }
  tasks_wg_.Wait();
  running_.store(false);
}

Status JobRunner::WaitUntilCaughtUp(int64_t timeout_ms) {
  TimestampMs deadline = SystemClock::Instance()->NowMs() + timeout_ms;
  while (true) {
    Result<int64_t> lag = SourceLag();
    if (lag.ok() && lag.value() == 0 && in_flight_.load() == 0) {
      bool idle = true;
      for (auto& src : source_states_) {
        if (src->busy.load()) idle = false;
      }
      if (idle) return Status::Ok();
    }
    if (SystemClock::Instance()->NowMs() > deadline) {
      return Status::Timeout("did not catch up");
    }
    SystemClock::Instance()->SleepMs(1);
  }
}

int64_t JobRunner::StateBytes() const {
  int64_t total = 0;
  for (const auto& stage : stages_) {
    for (const auto& inst : stage) total += inst->state_bytes.load();
  }
  return total;
}

int64_t JobRunner::PeakStateBytes() const {
  int64_t total = 0;
  for (const auto& stage : stages_) {
    for (const auto& inst : stage) total += inst->peak_state_bytes.load();
  }
  return total;
}

Result<int64_t> JobRunner::SourceLag() const {
  int64_t lag = 0;
  for (const auto& src : source_states_) {
    for (size_t p = 0; p < src->positions.size(); ++p) {
      Result<int64_t> end = bus_->EndOffset(src->spec.topic, static_cast<int32_t>(p));
      if (!end.ok()) return end.status();
      lag += std::max<int64_t>(0, end.value() - src->positions[p]);
    }
  }
  return lag;
}

int64_t JobRunner::LateDropped() const {
  int64_t total = 0;
  for (const auto& stage : stages_) {
    for (const auto& inst : stage) total += inst->late_dropped.load();
  }
  return total;
}

}  // namespace uberrt::compute
