#include "compute/job_runner.h"

#include <algorithm>

#include "common/clock.h"
#include "common/hash.h"
#include "compute/window_operator.h"

namespace uberrt::compute {

namespace {

/// Terminal stage: delivers rows to the configured sink.
class SinkOperator : public OperatorInstance {
 public:
  SinkOperator(const SinkSpec& spec, stream::MessageBus* bus,
               std::atomic<int64_t>* records_out)
      : spec_(spec), bus_(bus), records_out_(records_out) {}

  void ProcessRecord(const Element& element, Emitter* out) override {
    (void)out;
    if (spec_.kind == SinkSpec::Kind::kTopic) {
      stream::Message message;
      message.value = EncodeRow(element.row);
      message.timestamp = element.event_time;
      bus_->Produce(spec_.topic, std::move(message), stream::AckMode::kLeader).ok();
    } else if (spec_.collector) {
      spec_.collector(element.row, element.event_time);
    }
    records_out_->fetch_add(1);
  }

 private:
  SinkSpec spec_;
  stream::MessageBus* bus_;
  std::atomic<int64_t>* records_out_;
};

}  // namespace

struct JobRunner::Wiring {
  std::vector<BoundedQueue<Element>*> queues;
  bool keyed = false;
  std::vector<int> key_indices[2];  ///< per input side (joins); [0] otherwise
  std::atomic<uint64_t> round_robin{0};
};

struct JobRunner::Instance {
  int stage = 0;
  int index = 0;
  std::unique_ptr<BoundedQueue<Element>> queue;
  std::unique_ptr<OperatorInstance> op;
  Wiring* output = nullptr;  ///< null for the sink stage
  int num_upstream = 0;
  bool is_sink = false;
  std::atomic<int64_t> state_bytes{0};
  std::atomic<int64_t> peak_state_bytes{0};
  std::atomic<int64_t> late_dropped{0};
};

struct JobRunner::SourceState {
  SourceSpec spec;
  std::vector<int64_t> positions;
  int time_field_index = -1;
  /// Per-partition max event time (as in Flink's per-partition Kafka
  /// watermarking): the source watermark is the min over partitions that
  /// have produced data, so slow partitions never make fast ones "late".
  std::vector<TimestampMs> partition_max_event_time;
  int64_t records_since_watermark = 0;
  std::atomic<bool> busy{false};
  std::atomic<bool> done{false};

  /// Watermark base: min event time over partitions. A partition with no
  /// samples yet holds the watermark back (returns INT64_MIN) if it still
  /// has unread data — we must not declare time progressed past records we
  /// have not looked at. Truly empty partitions are ignored as idle.
  TimestampMs CurrentWatermarkBase(stream::MessageBus* bus) const {
    TimestampMs min_wm = kMaxWatermark;
    bool any = false;
    for (size_t p = 0; p < partition_max_event_time.size(); ++p) {
      TimestampMs t = partition_max_event_time[p];
      if (t == INT64_MIN) {
        Result<int64_t> end = bus->EndOffset(spec.topic, static_cast<int32_t>(p));
        if (end.ok() && end.value() > positions[p]) return INT64_MIN;  // unread data
        continue;  // idle partition
      }
      any = true;
      min_wm = std::min(min_wm, t);
    }
    return any ? min_wm : INT64_MIN;
  }
};

namespace {

/// Emitter bound to one instance: routes records into the next stage.
class RunnerEmitter : public Emitter {
 public:
  RunnerEmitter(JobRunner* runner, JobRunner::Instance* instance,
                void (JobRunner::*dispatch)(Element, JobRunner::Wiring&))
      : runner_(runner), instance_(instance), dispatch_(dispatch) {}

  void Emit(Row row, TimestampMs event_time) override {
    if (instance_->output == nullptr) return;
    Element element = Element::Record(std::move(row), event_time);
    element.from_channel = instance_->index;
    (runner_->*dispatch_)(std::move(element), *instance_->output);
  }

 private:
  JobRunner* runner_;
  JobRunner::Instance* instance_;
  void (JobRunner::*dispatch_)(Element, JobRunner::Wiring&);
};

}  // namespace

JobRunner::JobRunner(JobGraph graph, stream::MessageBus* bus,
                     storage::ObjectStore* store, JobRunnerOptions options)
    : graph_(std::move(graph)),
      bus_(bus),
      options_(options),
      checkpoint_store_(store, options.checkpoint_prefix, graph_.name()) {}

JobRunner::~JobRunner() { Cancel(); }

Status JobRunner::BuildTopology() {
  // Sources.
  for (const SourceSpec& spec : graph_.sources()) {
    auto src = std::make_unique<SourceState>();
    src->spec = spec;
    src->time_field_index = spec.time_field.empty()
                                ? -1
                                : spec.schema.FieldIndex(spec.time_field);
    Result<int32_t> partitions = bus_->NumPartitions(spec.topic);
    if (!partitions.ok()) return partitions.status();
    src->positions.resize(static_cast<size_t>(partitions.value()), 0);
    src->partition_max_event_time.resize(static_cast<size_t>(partitions.value()),
                                         INT64_MIN);
    for (int32_t p = 0; p < partitions.value(); ++p) {
      std::string key = "source." + std::to_string(source_states_.size()) + "." +
                        std::to_string(p);
      auto it = restored_.entries.find(key);
      if (it != restored_.entries.end()) {
        src->positions[static_cast<size_t>(p)] = std::stoll(it->second);
      } else {
        Result<int64_t> begin = bus_->BeginOffset(spec.topic, p);
        if (!begin.ok()) return begin.status();
        src->positions[static_cast<size_t>(p)] = begin.value();
      }
    }
    source_states_.push_back(std::move(src));
  }

  const auto& transforms = graph_.transforms();
  size_t num_stages = transforms.size() + 1;  // + sink
  stages_.resize(num_stages);
  wirings_.resize(num_stages);

  // Instances per stage.
  for (size_t s = 0; s < num_stages; ++s) {
    bool is_sink = s == transforms.size();
    int32_t parallelism = is_sink ? 1 : transforms[s].parallelism;
    int num_upstream = s == 0 ? static_cast<int>(graph_.sources().size())
                              : transforms[s - 1].parallelism;
    RowSchema input = graph_.SchemaAfter(static_cast<int>(s) - 1);
    for (int32_t i = 0; i < parallelism; ++i) {
      auto inst = std::make_unique<Instance>();
      inst->stage = static_cast<int>(s);
      inst->index = i;
      inst->queue = std::make_unique<BoundedQueue<Element>>(options_.channel_capacity);
      inst->num_upstream = num_upstream;
      inst->is_sink = is_sink;
      if (is_sink) {
        inst->op = std::make_unique<SinkOperator>(graph_.sink(), bus_, &records_out_);
      } else {
        RowSchema left = graph_.sources()[0].schema;
        RowSchema right =
            graph_.sources().size() > 1 ? graph_.sources()[1].schema : RowSchema();
        inst->op = CreateOperatorInstance(transforms[s], input, left, right);
        std::string key = "op." + std::to_string(s) + "." + std::to_string(i);
        auto it = restored_.entries.find(key);
        if (it != restored_.entries.end()) {
          UBERRT_RETURN_IF_ERROR(inst->op->RestoreState(it->second));
          inst->state_bytes.store(inst->op->StateBytes());
        }
      }
      stages_[s].push_back(std::move(inst));
    }
  }

  // Wirings: wirings_[s] feeds stage s.
  for (size_t s = 0; s < num_stages; ++s) {
    auto wiring = std::make_unique<Wiring>();
    for (auto& inst : stages_[s]) wiring->queues.push_back(inst->queue.get());
    if (s < transforms.size()) {
      const TransformSpec& t = transforms[s];
      if (t.kind == TransformSpec::Kind::kWindowAggregate) {
        wiring->keyed = true;
        RowSchema input = graph_.SchemaAfter(static_cast<int>(s) - 1);
        wiring->key_indices[0] = ResolveIndices(input, t.key_fields);
        wiring->key_indices[1] = wiring->key_indices[0];
      } else if (t.kind == TransformSpec::Kind::kWindowJoin) {
        wiring->keyed = true;
        wiring->key_indices[0] = ResolveIndices(graph_.sources()[0].schema, t.key_fields);
        wiring->key_indices[1] = ResolveIndices(graph_.sources()[1].schema, t.key_fields);
      }
    }
    wirings_[s] = std::move(wiring);
  }

  // Instance outputs.
  for (size_t s = 0; s + 1 < num_stages; ++s) {
    for (auto& inst : stages_[s]) inst->output = wirings_[s + 1].get();
  }
  return Status::Ok();
}

Status JobRunner::Start() {
  if (running_.load()) return Status::FailedPrecondition("already running");
  UBERRT_RETURN_IF_ERROR(graph_.Validate());
  UBERRT_RETURN_IF_ERROR(BuildTopology());
  running_.store(true);
  for (auto& stage : stages_) {
    for (auto& inst : stage) {
      threads_.emplace_back([this, instance = inst.get()] { InstanceLoop(instance); });
    }
  }
  for (size_t si = 0; si < source_states_.size(); ++si) {
    threads_.emplace_back([this, si] { SourceLoop(si); });
  }
  return Status::Ok();
}

Status JobRunner::RestoreFromCheckpoint(int64_t sequence) {
  if (running_.load()) return Status::FailedPrecondition("job already started");
  Result<CheckpointData> data =
      sequence < 0 ? checkpoint_store_.LoadLatest() : checkpoint_store_.Load(sequence);
  if (!data.ok()) return data.status();
  restored_ = std::move(data.value());
  has_restored_ = true;
  checkpoint_sequence_.store(restored_.sequence);
  return Status::Ok();
}

void JobRunner::Dispatch(Element element, Wiring& wiring) {
  size_t n = wiring.queues.size();
  size_t target = 0;
  if (n > 1 || wiring.keyed) {
    if (wiring.keyed) {
      int side = element.side == 1 ? 1 : 0;
      std::string key = EncodeKey(element.row, wiring.key_indices[side]);
      target = static_cast<size_t>(Fnv1a64(key) % n);
    } else {
      target = wiring.round_robin.fetch_add(1) % n;
    }
  }
  in_flight_.fetch_add(1);
  if (!wiring.queues[target]->Push(std::move(element))) {
    in_flight_.fetch_sub(1);  // queue closed during cancel
  }
}

void JobRunner::Broadcast(Element element, Wiring& wiring) {
  for (BoundedQueue<Element>* queue : wiring.queues) {
    in_flight_.fetch_add(1);
    if (!queue->Push(element)) in_flight_.fetch_sub(1);
  }
}

void JobRunner::SourceLoop(size_t source_index) {
  SourceState& src = *source_states_[source_index];
  Wiring& out = *wirings_[0];
  std::vector<int64_t> end_targets;
  bool finishing = false;
  while (!cancel_.load()) {
    if (pause_sources_.load()) {
      SystemClock::Instance()->SleepMs(1);
      continue;
    }
    src.busy.store(true);
    if (finish_requested_.load() && !finishing) {
      finishing = true;
      end_targets.resize(src.positions.size());
      for (size_t p = 0; p < src.positions.size(); ++p) {
        Result<int64_t> end = bus_->EndOffset(src.spec.topic, static_cast<int32_t>(p));
        end_targets[p] = end.ok() ? end.value() : src.positions[p];
      }
    }
    bool got_data = false;
    for (size_t p = 0; p < src.positions.size() && !cancel_.load(); ++p) {
      Result<std::vector<stream::Message>> batch =
          bus_->Fetch(src.spec.topic, static_cast<int32_t>(p), src.positions[p],
                      options_.source_poll_batch);
      if (!batch.ok()) {
        if (batch.status().code() == StatusCode::kOutOfRange) {
          Result<int64_t> begin =
              bus_->BeginOffset(src.spec.topic, static_cast<int32_t>(p));
          if (begin.ok() && begin.value() > src.positions[p]) {
            src.positions[p] = begin.value();
          }
        }
        continue;
      }
      for (stream::Message& m : batch.value()) {
        got_data = true;
        Result<Row> row = DecodeRow(m.value);
        // Position advances only after the record is safely in the pipeline,
        // so a checkpoint can never skip an unpushed record.
        if (!row.ok()) {
          decode_errors_.fetch_add(1);
          src.positions[p] = m.offset + 1;
          continue;
        }
        TimestampMs t = m.timestamp;
        int tf = src.time_field_index;
        if (tf >= 0 && tf < static_cast<int>(row.value().size()) &&
            row.value()[static_cast<size_t>(tf)].type() == ValueType::kInt) {
          t = row.value()[static_cast<size_t>(tf)].AsInt();
        }
        src.partition_max_event_time[p] =
            std::max(src.partition_max_event_time[p], t);
        records_in_.fetch_add(1);
        Element element = Element::Record(std::move(row.value()), t,
                                          static_cast<int32_t>(source_index));
        element.from_channel = static_cast<int32_t>(source_index);
        Dispatch(std::move(element), out);
        src.positions[p] = m.offset + 1;
        if (++src.records_since_watermark >= src.spec.watermark_interval_records) {
          src.records_since_watermark = 0;
          TimestampMs base = src.CurrentWatermarkBase(bus_);
          if (base != INT64_MIN) {
            Element wm = Element::Watermark(base - src.spec.out_of_orderness_ms);
            wm.from_channel = static_cast<int32_t>(source_index);
            Broadcast(std::move(wm), out);
          }
        }
      }
    }
    src.busy.store(false);
    if (finishing) {
      bool done = true;
      for (size_t p = 0; p < src.positions.size(); ++p) {
        if (src.positions[p] < end_targets[p]) {
          done = false;
          break;
        }
      }
      if (done) {
        Element wm = Element::Watermark(kMaxWatermark);
        wm.from_channel = static_cast<int32_t>(source_index);
        Broadcast(std::move(wm), out);
        Element end = Element::End();
        end.from_channel = static_cast<int32_t>(source_index);
        Broadcast(std::move(end), out);
        src.done.store(true);
        return;
      }
    }
    if (!got_data) SystemClock::Instance()->SleepMs(options_.source_idle_sleep_ms);
  }
  src.done.store(true);
}

void JobRunner::InstanceLoop(Instance* instance) {
  std::vector<TimestampMs> upstream_wm(static_cast<size_t>(instance->num_upstream),
                                       INT64_MIN);
  int ends_remaining = instance->num_upstream;
  TimestampMs aligned = INT64_MIN;
  RunnerEmitter emitter(this, instance, &JobRunner::Dispatch);

  auto aligned_watermark = [&]() {
    TimestampMs min_wm = kMaxWatermark;
    for (TimestampMs wm : upstream_wm) min_wm = std::min(min_wm, wm);
    return min_wm;
  };
  auto update_state_gauges = [&] {
    int64_t bytes = instance->op->StateBytes();
    instance->state_bytes.store(bytes);
    if (bytes > instance->peak_state_bytes.load()) {
      instance->peak_state_bytes.store(bytes);
    }
    instance->late_dropped.store(instance->op->late_dropped());
  };

  while (true) {
    std::optional<Element> element = instance->queue->Pop();
    if (!element.has_value()) return;  // cancelled
    switch (element->kind) {
      case Element::Kind::kRecord:
        instance->op->ProcessRecord(*element, &emitter);
        update_state_gauges();
        break;
      case Element::Kind::kWatermark: {
        size_t ch = static_cast<size_t>(element->from_channel);
        if (ch < upstream_wm.size()) {
          upstream_wm[ch] = std::max(upstream_wm[ch], element->event_time);
        }
        TimestampMs min_wm = aligned_watermark();
        if (min_wm > aligned) {
          aligned = min_wm;
          instance->op->OnWatermark(aligned, &emitter);
          update_state_gauges();
          if (instance->output != nullptr) {
            Element forward = Element::Watermark(aligned);
            forward.from_channel = instance->index;
            Broadcast(std::move(forward), *instance->output);
          }
        }
        break;
      }
      case Element::Kind::kEnd: {
        size_t ch = static_cast<size_t>(element->from_channel);
        if (ch < upstream_wm.size()) upstream_wm[ch] = kMaxWatermark;
        --ends_remaining;
        TimestampMs min_wm = aligned_watermark();
        if (min_wm > aligned) {
          aligned = min_wm;
          instance->op->OnWatermark(aligned, &emitter);
          update_state_gauges();
        }
        if (ends_remaining == 0) {
          if (instance->output != nullptr) {
            Element forward = Element::End();
            forward.from_channel = instance->index;
            Broadcast(std::move(forward), *instance->output);
          }
          if (instance->is_sink) finished_.store(true);
          in_flight_.fetch_sub(1);
          return;
        }
        break;
      }
    }
    in_flight_.fetch_sub(1);
  }
}

Status JobRunner::WaitForQuiesce(int64_t timeout_ms) {
  TimestampMs deadline = SystemClock::Instance()->NowMs() + timeout_ms;
  while (true) {
    bool sources_idle = true;
    for (auto& src : source_states_) {
      if (src->busy.load() && !src->done.load()) sources_idle = false;
    }
    if (sources_idle && in_flight_.load() == 0) return Status::Ok();
    if (SystemClock::Instance()->NowMs() > deadline) {
      return Status::Timeout("pipeline did not quiesce");
    }
    SystemClock::Instance()->SleepMs(1);
  }
}

Result<int64_t> JobRunner::TriggerCheckpoint() {
  if (!running_.load()) return Status::FailedPrecondition("job not running");
  pause_sources_.store(true);
  Status quiesced = WaitForQuiesce(30000);
  if (!quiesced.ok()) {
    pause_sources_.store(false);
    return quiesced;
  }
  CheckpointData data;
  data.sequence = checkpoint_sequence_.fetch_add(1) + 1;
  for (size_t si = 0; si < source_states_.size(); ++si) {
    const SourceState& src = *source_states_[si];
    for (size_t p = 0; p < src.positions.size(); ++p) {
      data.entries["source." + std::to_string(si) + "." + std::to_string(p)] =
          std::to_string(src.positions[p]);
    }
  }
  for (size_t s = 0; s + 1 < stages_.size(); ++s) {
    for (auto& inst : stages_[s]) {
      data.entries["op." + std::to_string(s) + "." + std::to_string(inst->index)] =
          inst->op->SnapshotState();
    }
  }
  Status saved = checkpoint_store_.Save(data);
  pause_sources_.store(false);
  if (!saved.ok()) return saved;
  return data.sequence;
}

void JobRunner::RequestFinish() { finish_requested_.store(true); }

Status JobRunner::AwaitTermination(int64_t timeout_ms) {
  TimestampMs deadline =
      timeout_ms < 0 ? kMaxWatermark : SystemClock::Instance()->NowMs() + timeout_ms;
  while (!finished_.load() && !cancel_.load()) {
    if (SystemClock::Instance()->NowMs() > deadline) {
      return Status::Timeout("job did not terminate");
    }
    SystemClock::Instance()->SleepMs(1);
  }
  // Sink done: sources and upstream instances have exited; join everything.
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
  running_.store(false);
  return Status::Ok();
}

void JobRunner::Cancel() {
  if (!running_.load() && threads_.empty()) return;
  cancel_.store(true);
  for (auto& stage : stages_) {
    for (auto& inst : stage) inst->queue->Close();
  }
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
  running_.store(false);
}

Status JobRunner::WaitUntilCaughtUp(int64_t timeout_ms) {
  TimestampMs deadline = SystemClock::Instance()->NowMs() + timeout_ms;
  while (true) {
    Result<int64_t> lag = SourceLag();
    if (lag.ok() && lag.value() == 0 && in_flight_.load() == 0) {
      bool idle = true;
      for (auto& src : source_states_) {
        if (src->busy.load()) idle = false;
      }
      if (idle) return Status::Ok();
    }
    if (SystemClock::Instance()->NowMs() > deadline) {
      return Status::Timeout("did not catch up");
    }
    SystemClock::Instance()->SleepMs(1);
  }
}

int64_t JobRunner::StateBytes() const {
  int64_t total = 0;
  for (const auto& stage : stages_) {
    for (const auto& inst : stage) total += inst->state_bytes.load();
  }
  return total;
}

int64_t JobRunner::PeakStateBytes() const {
  int64_t total = 0;
  for (const auto& stage : stages_) {
    for (const auto& inst : stage) total += inst->peak_state_bytes.load();
  }
  return total;
}

Result<int64_t> JobRunner::SourceLag() const {
  int64_t lag = 0;
  for (const auto& src : source_states_) {
    for (size_t p = 0; p < src->positions.size(); ++p) {
      Result<int64_t> end = bus_->EndOffset(src->spec.topic, static_cast<int32_t>(p));
      if (!end.ok()) return end.status();
      lag += std::max<int64_t>(0, end.value() - src->positions[p]);
    }
  }
  return lag;
}

int64_t JobRunner::LateDropped() const {
  int64_t total = 0;
  for (const auto& stage : stages_) {
    for (const auto& inst : stage) total += inst->late_dropped.load();
  }
  return total;
}

}  // namespace uberrt::compute
