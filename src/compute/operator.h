#ifndef UBERRT_COMPUTE_OPERATOR_H_
#define UBERRT_COMPUTE_OPERATOR_H_

#include <atomic>
#include <cstdint>
#include <memory>

#include "common/status.h"
#include "common/value.h"
#include "compute/element.h"
#include "compute/job_graph.h"

namespace uberrt::compute {

/// Downstream output of an operator instance. Implementations partition to
/// the next stage's instances and do in-flight accounting.
class Emitter {
 public:
  virtual ~Emitter() = default;
  virtual void Emit(Row row, TimestampMs event_time) = 0;
};

/// One parallel instance of a transformation. Driven by a single runner
/// thread, so implementations need no internal locking; state snapshots are
/// taken only while the pipeline is quiesced.
class OperatorInstance {
 public:
  virtual ~OperatorInstance() = default;

  /// Processes one data record. `element.side` distinguishes join inputs.
  virtual void ProcessRecord(const Element& element, Emitter* out) = 0;

  /// Processes a contiguous run of data records (no watermarks/ends). The
  /// default is the per-record loop; vectorizable operators override to
  /// amortize per-record overheads (virtual dispatch, key-scratch setup)
  /// across the run. The runner splits channel batches into record runs and
  /// control elements, so overrides never see non-records.
  virtual void ProcessBatch(const Element* elements, size_t count, Emitter* out) {
    for (size_t i = 0; i < count; ++i) ProcessRecord(elements[i], out);
  }

  /// Called when the instance's aligned watermark (min across input
  /// channels) advances. Window operators fire here.
  virtual void OnWatermark(TimestampMs watermark, Emitter* out) {
    (void)watermark;
    (void)out;
  }

  /// Keyed-state snapshot for checkpoints; empty for stateless operators.
  virtual std::string SnapshotState() const { return {}; }
  virtual Status RestoreState(const std::string& blob) {
    (void)blob;
    return Status::Ok();
  }

  /// Approximate bytes of retained state (drives the memory-profile
  /// comparisons of Sections 4.2 / 4.2.1).
  virtual int64_t StateBytes() const { return 0; }

  /// Records dropped for arriving later than allowed lateness.
  virtual int64_t late_dropped() const { return 0; }
};

/// Builds the instance for `spec`. `input` is the schema entering the
/// stage; for window joins, `left`/`right` are the two source schemas and
/// `input` is ignored.
std::unique_ptr<OperatorInstance> CreateOperatorInstance(const TransformSpec& spec,
                                                         const RowSchema& input,
                                                         const RowSchema& left,
                                                         const RowSchema& right);

/// True for the stateless record transforms (map/filter/flatmap) that are
/// eligible for operator chaining — they keep no keyed state, need no keyed
/// partitioning of their input, and snapshot nothing.
bool IsStatelessTransform(const TransformSpec& spec);

/// Fuses consecutive stateless transforms into one instance (Flink task
/// chaining, Section 4.2): records flow through the chain as local calls
/// with zero intermediate channel hops. `specs` must all satisfy
/// IsStatelessTransform and share one parallelism.
std::unique_ptr<OperatorInstance> CreateChainedOperatorInstance(
    std::vector<TransformSpec> specs);

}  // namespace uberrt::compute

#endif  // UBERRT_COMPUTE_OPERATOR_H_
