#include "compute/operator.h"

#include "compute/window_operator.h"

namespace uberrt::compute {

namespace {

/// Stateless record-at-a-time operator (map / filter / flatmap) — the
/// CPU-bound job class of Section 4.2.1.
class StatelessOperator : public OperatorInstance {
 public:
  explicit StatelessOperator(const TransformSpec& spec) : spec_(spec) {}

  void ProcessRecord(const Element& element, Emitter* out) override {
    switch (spec_.kind) {
      case TransformSpec::Kind::kMap:
        out->Emit(spec_.map_fn(element.row), element.event_time);
        break;
      case TransformSpec::Kind::kFilter:
        if (spec_.filter_fn(element.row)) {
          out->Emit(element.row, element.event_time);
        }
        break;
      case TransformSpec::Kind::kFlatMap:
        for (Row& row : spec_.flatmap_fn(element.row)) {
          out->Emit(std::move(row), element.event_time);
        }
        break;
      default:
        break;
    }
  }

 private:
  TransformSpec spec_;
};

}  // namespace

std::unique_ptr<OperatorInstance> CreateOperatorInstance(const TransformSpec& spec,
                                                         const RowSchema& input,
                                                         const RowSchema& left,
                                                         const RowSchema& right) {
  switch (spec.kind) {
    case TransformSpec::Kind::kMap:
    case TransformSpec::Kind::kFilter:
    case TransformSpec::Kind::kFlatMap:
      return std::make_unique<StatelessOperator>(spec);
    case TransformSpec::Kind::kWindowAggregate:
      return std::make_unique<WindowAggregateOperator>(spec, input);
    case TransformSpec::Kind::kWindowJoin:
      return std::make_unique<WindowJoinOperator>(spec, left, right);
  }
  return nullptr;
}

}  // namespace uberrt::compute
