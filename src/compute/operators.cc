#include "compute/operator.h"

#include "compute/window_operator.h"

namespace uberrt::compute {

namespace {

/// Stateless operator (map / filter / flatmap) — the CPU-bound job class of
/// Section 4.2.1. ProcessBatch hoists the kind switch and the std::function
/// indirection setup out of the per-record loop.
class StatelessOperator : public OperatorInstance {
 public:
  explicit StatelessOperator(const TransformSpec& spec) : spec_(spec) {}

  void ProcessRecord(const Element& element, Emitter* out) override {
    ProcessBatch(&element, 1, out);
  }

  void ProcessBatch(const Element* elements, size_t count, Emitter* out) override {
    switch (spec_.kind) {
      case TransformSpec::Kind::kMap: {
        const auto& fn = spec_.map_fn;
        for (size_t i = 0; i < count; ++i) {
          out->Emit(fn(elements[i].row), elements[i].event_time);
        }
        break;
      }
      case TransformSpec::Kind::kFilter: {
        const auto& fn = spec_.filter_fn;
        for (size_t i = 0; i < count; ++i) {
          if (fn(elements[i].row)) {
            out->Emit(elements[i].row, elements[i].event_time);
          }
        }
        break;
      }
      case TransformSpec::Kind::kFlatMap: {
        const auto& fn = spec_.flatmap_fn;
        for (size_t i = 0; i < count; ++i) {
          for (Row& row : fn(elements[i].row)) {
            out->Emit(std::move(row), elements[i].event_time);
          }
        }
        break;
      }
      default:
        break;
    }
  }

 private:
  TransformSpec spec_;
};

/// A fused chain of stateless transforms running as one instance: each
/// record walks the chain with plain calls, so the intermediate channel
/// hops (queue mutex, wakeup CAS, in-flight accounting) between chained
/// stages disappear entirely (Flink task chaining, Section 4.2).
class ChainedStatelessOperator : public OperatorInstance {
 public:
  explicit ChainedStatelessOperator(std::vector<TransformSpec> specs)
      : specs_(std::move(specs)) {}

  void ProcessRecord(const Element& element, Emitter* out) override {
    Apply(0, element.row, element.event_time, out);
  }

  void ProcessBatch(const Element* elements, size_t count, Emitter* out) override {
    for (size_t i = 0; i < count; ++i) {
      Apply(0, elements[i].row, elements[i].event_time, out);
    }
  }

 private:
  /// Runs the record through specs_[stage..]; emits the survivors.
  void Apply(size_t stage, const Row& row, TimestampMs event_time, Emitter* out) {
    for (; stage < specs_.size(); ++stage) {
      const TransformSpec& spec = specs_[stage];
      switch (spec.kind) {
        case TransformSpec::Kind::kMap: {
          Row mapped = spec.map_fn(row);
          // Tail the rest of the chain on the mapped row; recursion depth is
          // bounded by the chain length.
          Apply(stage + 1, mapped, event_time, out);
          return;
        }
        case TransformSpec::Kind::kFilter:
          if (!spec.filter_fn(row)) return;
          break;  // fall through to the next stage with the same row
        case TransformSpec::Kind::kFlatMap: {
          for (Row& expanded : spec.flatmap_fn(row)) {
            Apply(stage + 1, expanded, event_time, out);
          }
          return;
        }
        default:
          return;  // stateful kinds are never chained
      }
    }
    out->Emit(row, event_time);
  }

  std::vector<TransformSpec> specs_;
};

}  // namespace

bool IsStatelessTransform(const TransformSpec& spec) {
  switch (spec.kind) {
    case TransformSpec::Kind::kMap:
    case TransformSpec::Kind::kFilter:
    case TransformSpec::Kind::kFlatMap:
      return true;
    case TransformSpec::Kind::kWindowAggregate:
    case TransformSpec::Kind::kWindowJoin:
      return false;
  }
  return false;
}

std::unique_ptr<OperatorInstance> CreateOperatorInstance(const TransformSpec& spec,
                                                         const RowSchema& input,
                                                         const RowSchema& left,
                                                         const RowSchema& right) {
  switch (spec.kind) {
    case TransformSpec::Kind::kMap:
    case TransformSpec::Kind::kFilter:
    case TransformSpec::Kind::kFlatMap:
      return std::make_unique<StatelessOperator>(spec);
    case TransformSpec::Kind::kWindowAggregate:
      return std::make_unique<WindowAggregateOperator>(spec, input);
    case TransformSpec::Kind::kWindowJoin:
      return std::make_unique<WindowJoinOperator>(spec, left, right);
  }
  return nullptr;
}

std::unique_ptr<OperatorInstance> CreateChainedOperatorInstance(
    std::vector<TransformSpec> specs) {
  if (specs.size() == 1) return std::make_unique<StatelessOperator>(specs[0]);
  return std::make_unique<ChainedStatelessOperator>(std::move(specs));
}

}  // namespace uberrt::compute
