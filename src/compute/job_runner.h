#ifndef UBERRT_COMPUTE_JOB_RUNNER_H_
#define UBERRT_COMPUTE_JOB_RUNNER_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/executor.h"
#include "common/metrics.h"
#include "common/queue.h"
#include "common/retry.h"
#include "common/status.h"
#include "compute/checkpoint.h"
#include "compute/job_graph.h"
#include "compute/operator.h"
#include "storage/object_store.h"
#include "stream/message_bus.h"

namespace uberrt::compute {

/// Engine behaviour knobs.
struct JobRunnerOptions {
  /// Per-channel buffer. Bounded channels give credit-based backpressure
  /// (Flink-like); 0 means unbounded (the Storm-like no-flow-control mode
  /// compared in Section 4.2 and bench C2).
  size_t channel_capacity = 1024;
  size_t source_poll_batch = 256;
  /// Max records per ElementBatch flowing through a channel. Batching
  /// amortizes queue mutexes, wakeup CASes and in-flight bookkeeping across
  /// the batch (Section 4.2's pipelined network buffers). <= 1 reproduces
  /// the per-record dataflow of the seed — each element travels alone and
  /// sources fall back to the deep-copy Fetch path — which the bench keeps
  /// as its baseline.
  size_t max_batch_records = 256;
  /// Fuse consecutive same-parallelism stateless transforms (map / filter /
  /// flatmap) into one operator instance per parallel slot, eliminating the
  /// intermediate channel hop entirely (Flink task chaining). Checkpoints
  /// stay compatible both ways: every graph transform keeps its own
  /// `op.<index>.<instance>` entry, with chained followers snapshotting "".
  bool enable_chaining = true;
  /// When false the job manager never snapshots this job; recovery
  /// recomputes state from the stream (the surge tuning of Section 5.1).
  bool periodic_checkpoints = true;
  int64_t source_idle_sleep_ms = 1;
  std::string checkpoint_prefix = "checkpoints";
  /// Pool the job's tasks run on. nullptr -> the runner creates a private
  /// pool of `pool_threads` threads, so tests and standalone runners need no
  /// wiring. Either way the job's OS-thread count is the pool size, not the
  /// operator-instance count.
  common::Executor* executor = nullptr;
  size_t pool_threads = 4;
  /// Retry policy wrapped around checkpoint Save/Load against the object
  /// store; nullptr means one attempt (the seed behaviour). The policy is
  /// borrowed (typically from the JobManager) and must outlive the runner.
  common::RetryPolicy* checkpoint_retry = nullptr;
};

/// Streaming dataflow executor — the Flink substitute (Section 4.2).
///
/// Executes a JobGraph as a set of cooperative tasks on a fixed-size
/// executor: each operator instance is a task that drains its input queue
/// and reschedules itself while work remains (wake-on-push, so idle
/// instances cost nothing), and each source is a self-rescheduling poll
/// task. A 20-operator job therefore needs pool-size threads, not 20+.
/// Keyed stages partition records by key hash so all records of a key reach
/// one instance; watermarks are broadcast and aligned (min across input
/// channels) per instance. Tasks never block on a full channel: the
/// producer stashes the element and yields, which propagates backpressure
/// to the sources without stalling pool threads (deadlock-free at any pool
/// size).
///
/// Checkpoints are stop-the-world: sources pause, the pipeline drains, then
/// source offsets and all operator state snapshot atomically to the object
/// store (equivalent to aligned-barrier snapshots, traded for simplicity).
/// Restores resume from the snapshot offsets, giving exactly-once state and
/// at-least-once sink delivery.
class JobRunner {
 public:
  // Implementation detail, public only for the emitter glue in the .cc.
  struct Wiring;
  struct Instance;
  struct SourceState;
  struct PendingPush;
  struct OutBuffer;

  /// Routes one record into the producer's per-target pending batch
  /// (keyed / round-robin partitioning), flushing the target at the batch
  /// cap. Public only for the emitter glue in the .cc.
  void EmitRecord(Element element, Wiring& wiring, OutBuffer* out,
                  std::deque<PendingPush>* stash);

  JobRunner(JobGraph graph, stream::MessageBus* bus, storage::ObjectStore* store,
            JobRunnerOptions options = JobRunnerOptions());
  ~JobRunner();

  JobRunner(const JobRunner&) = delete;
  JobRunner& operator=(const JobRunner&) = delete;

  /// Validates the graph and schedules the source tasks.
  Status Start();

  /// Loads a checkpoint (latest when `sequence` < 0) into the un-started
  /// job: source offsets and operator state. Must precede Start().
  Status RestoreFromCheckpoint(int64_t sequence = -1);

  /// Pauses sources, drains in-flight work, snapshots, resumes. Returns the
  /// checkpoint sequence written.
  Result<int64_t> TriggerCheckpoint();

  /// Asks sources to stop at the topics' current end offsets; the pipeline
  /// then flushes all windows and terminates ("bounded" execution — also how
  /// Kappa+ backfill jobs end, Section 7).
  void RequestFinish();

  /// Blocks until the pipeline completed (sink saw all Ends) and every task
  /// drained. Timeout < 0 waits forever.
  Status AwaitTermination(int64_t timeout_ms = -1);

  /// Hard-stops the pipeline without flushing windows (state is preserved
  /// in the last checkpoint; this models a crash or forced stop).
  void Cancel();

  /// Blocks until sources have read to their topics' current end offsets
  /// and the pipeline has no in-flight elements.
  Status WaitUntilCaughtUp(int64_t timeout_ms = 10000);

  bool IsRunning() const { return running_.load(); }
  bool IsFinished() const { return finished_.load(); }

  // --- Observability (Section 4.2.1 monitoring signals) -------------------

  /// Rows delivered to the sink.
  int64_t RecordsOut() const { return records_out_.load(); }
  /// Records read from the sources.
  int64_t RecordsIn() const { return records_in_.load(); }
  /// Live keyed-state footprint across all operator instances.
  int64_t StateBytes() const;
  /// Sum of per-instance peak state footprints (upper bound on peak total).
  int64_t PeakStateBytes() const;
  /// Unread messages remaining in the source topics.
  Result<int64_t> SourceLag() const;
  /// Records dropped as too late across all window operators.
  int64_t LateDropped() const;
  /// Rows that failed to decode from the source topics.
  int64_t DecodeErrors() const { return decode_errors_.load(); }

  const JobGraph& graph() const { return graph_; }

 private:
  /// One fused pipeline stage: graph transforms [first..last] running as one
  /// operator per parallel slot. Stateful transforms always form a
  /// single-transform stage; chains cover runs of stateless transforms with
  /// one parallelism. The final plan is the sink.
  struct StagePlan {
    size_t first = 0;
    size_t last = 0;  ///< inclusive
    int32_t parallelism = 1;
    bool is_sink = false;
  };

  /// One scheduling quantum of an operator instance: flush stash, drain up
  /// to a budget of elements, reschedule or go idle (wake-on-push).
  void RunInstance(Instance* instance);
  /// One poll cycle of a source, then self-reschedule until done/cancelled.
  void RunSource(size_t source_index);
  /// Runs every element of a channel batch through the operator, handing
  /// contiguous record runs to ProcessBatch. True when the instance saw its
  /// final End and must exit.
  bool ProcessBatchElements(Instance* instance, ElementBatch& batch);
  /// Watermark / End handling; true on final End.
  bool ProcessControl(Instance* instance, const Element& element);
  /// Appends a control element (watermark / End) to every target's pending
  /// batch — control rides behind the records that preceded it.
  void EmitControl(const Element& element, Wiring& wiring, OutBuffer* out,
                   std::deque<PendingPush>* stash);
  /// Pushes one target's pending batch downstream (stash on backpressure).
  void FlushTarget(size_t target, Wiring& wiring, OutBuffer* out,
                   std::deque<PendingPush>* stash);
  /// Flushes every target's pending batch. Producers call this before going
  /// idle / yielding so no element ever waits in a pending buffer while its
  /// producer sleeps.
  void FlushOut(Wiring& wiring, OutBuffer* out, std::deque<PendingPush>* stash);
  /// Retries stashed pushes; true when the stash is empty afterwards.
  bool FlushStash(std::deque<PendingPush>& stash);
  /// Schedules the instance's task if it is not already scheduled.
  void WakeInstance(Instance* instance);
  /// WaitGroup-tracked submit; false if the pool rejected the task.
  bool SubmitTask(std::function<void()> fn);
  Status BuildTopology();
  Status WaitForQuiesce(int64_t timeout_ms);

  JobGraph graph_;
  stream::MessageBus* bus_;
  JobRunnerOptions options_;
  CheckpointStore checkpoint_store_;

  std::unique_ptr<common::Executor> owned_executor_;  // when options_.executor==nullptr
  common::Executor* executor_ = nullptr;
  common::WaitGroup tasks_wg_;  ///< counts queued+running pool tasks

  std::vector<std::unique_ptr<SourceState>> source_states_;
  // plans_[i] describes stage i (a transform, a fused chain, or the sink);
  // stages_[i] holds its instances and wirings_[i] feeds it.
  std::vector<StagePlan> plans_;
  std::vector<std::vector<std::unique_ptr<Instance>>> stages_;
  std::vector<std::unique_ptr<Wiring>> wirings_;  // wirings_[i] feeds stage i
  size_t max_batch_ = 1;  ///< max(1, options_.max_batch_records)

  std::atomic<bool> running_{false};
  std::atomic<bool> finished_{false};
  std::atomic<bool> cancel_{false};
  std::atomic<bool> pause_sources_{false};
  std::atomic<bool> finish_requested_{false};
  std::atomic<int64_t> in_flight_{0};
  std::atomic<int64_t> records_in_{0};
  std::atomic<int64_t> records_out_{0};
  std::atomic<int64_t> decode_errors_{0};
  std::atomic<int64_t> checkpoint_sequence_{0};

  CheckpointData restored_;  // applied during BuildTopology
  bool has_restored_ = false;
};

}  // namespace uberrt::compute

#endif  // UBERRT_COMPUTE_JOB_RUNNER_H_
