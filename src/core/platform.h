#ifndef UBERRT_CORE_PLATFORM_H_
#define UBERRT_CORE_PLATFORM_H_

#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "common/executor.h"
#include "common/fault_injector.h"
#include "common/status.h"
#include "compute/flink_sql.h"
#include "compute/job_manager.h"
#include "metadata/schema_registry.h"
#include "olap/cluster.h"
#include "sql/engine.h"
#include "storage/archive.h"
#include "storage/object_store.h"
#include "stream/chaperone.h"
#include "stream/federation.h"

namespace uberrt::core {

/// The layer names of the paper's Figure 2 abstraction stack (and the rows
/// of Table 1).
inline constexpr const char* kLayerApi = "API";
inline constexpr const char* kLayerSql = "SQL";
inline constexpr const char* kLayerOlap = "OLAP";
inline constexpr const char* kLayerCompute = "Compute";
inline constexpr const char* kLayerStream = "Stream";
inline constexpr const char* kLayerStorage = "Storage";

/// The unified real-time data platform — the paper's overall contribution:
/// one stack (Figures 2/3) where Kafka-, Flink-, Pinot-, HDFS- and
/// Presto-equivalents are wired behind standard abstractions, with
/// self-serve provisioning (Section 9.4), schema management, audit, and
/// per-use-case layer-usage accounting (reproducing Table 1 from live
/// calls).
///
/// Every entry point takes an `actor` (use-case name); the platform records
/// which abstraction layers each actor exercised.
class RealtimePlatform {
 public:
  struct Options {
    int32_t num_stream_clusters = 2;
    int32_t cluster_topic_capacity = 100;
    int32_t olap_servers = 2;
    /// Threads in the process-wide executor every layer shares (OLAP
    /// scatter-gather, job runners, ...). 0 picks the executor default.
    size_t executor_threads = 0;
    /// Seed for the process-wide fault plane (chaos runs re-seed here).
    uint64_t fault_seed = 42;
  };

  RealtimePlatform() : RealtimePlatform(Options()) {}
  explicit RealtimePlatform(Options options);

  // --- Layer access (advanced / test use) --------------------------------
  common::Executor* executor() { return &executor_; }
  /// The process-wide fault plane: every layer consults it, so one SetRule
  /// here injects faults at any named site ("store.put", "broker.produce.*",
  /// "olap.server.query.*", "job.crash.<id>", ...).
  common::FaultInjector* faults() { return &faults_; }
  stream::KafkaFederation* streams() { return &federation_; }
  storage::InMemoryObjectStore* store() { return &store_; }
  metadata::SchemaRegistry* registry() { return &registry_; }
  compute::JobManager* jobs() { return &job_manager_; }
  olap::OlapCluster* olap() { return &olap_; }
  sql::Catalog* catalog() { return &catalog_; }
  const sql::PrestoEngine* presto() const { return &presto_; }
  stream::Chaperone* audit() { return &chaperone_; }

  // --- Provisioning (Section 9.4: seamless onboarding) --------------------

  /// Registers the schema and creates the topic on the federated cluster.
  Status ProvisionTopic(const std::string& topic, const RowSchema& schema,
                        int32_t partitions, const std::string& actor,
                        bool lossless = true);

  /// Creates a Pinot-like table ingesting from an existing topic, registers
  /// it with Presto's catalog and records lineage.
  Status ProvisionOlapTable(olap::TableConfig config, const std::string& source_topic,
                            olap::ClusterTableOptions cluster_options,
                            const std::string& actor);

  // --- Data in -------------------------------------------------------------

  /// Produces one row (audited; uid header attached).
  Result<stream::ProduceResult> ProduceRow(const std::string& topic, const Row& row,
                                           const std::string& key,
                                           TimestampMs event_time,
                                           const std::string& actor);

  // --- Compute --------------------------------------------------------------

  /// Programmatic (API-layer) job submission.
  Result<std::string> SubmitJob(const compute::JobGraph& graph, const std::string& actor,
                                compute::JobRunnerOptions runner_options =
                                    compute::JobRunnerOptions());

  /// FlinkSQL job: compiles `sql` against the FROM topic's registered
  /// schema, provisions the sink topic with the output schema and submits.
  Result<std::string> SubmitSqlJob(const std::string& sql, const std::string& sink_topic,
                                   const std::string& actor,
                                   compute::FlinkSqlOptions sql_options =
                                       compute::FlinkSqlOptions());

  // --- Query ----------------------------------------------------------------

  /// Interactive PrestoSQL across OLAP and archive connectors.
  Result<sql::QueryResult> Query(const std::string& sql, const std::string& actor);

  /// Direct OLAP query (the limited-SQL layer).
  Result<olap::OlapResult> QueryOlap(const std::string& table,
                                     const olap::OlapQuery& query,
                                     const std::string& actor);

  // --- Operations -------------------------------------------------------------

  /// One platform pump: OLAP ingestion for all tables, job-manager tick,
  /// async archival drain.
  Status PumpOnce();
  /// Pumps until OLAP tables have zero ingest lag (jobs run on their own
  /// threads regardless).
  Status PumpUntilIngested(int32_t max_cycles = 1000);

  // --- Table 1 accounting -------------------------------------------------

  /// Layers the actor has exercised so far.
  std::set<std::string> LayersUsed(const std::string& actor) const;
  /// Renders the Table 1 matrix for the given actors (columns) in order.
  std::string RenderComponentTable(const std::vector<std::string>& actors) const;

 private:
  void MarkUsage(const std::string& actor, const std::string& layer);

  // Declared first so it is destroyed last: every layer below holds a raw
  // pointer to it and may consult it while tearing down.
  common::FaultInjector faults_;
  storage::InMemoryObjectStore store_;
  stream::KafkaFederation federation_;
  metadata::SchemaRegistry registry_;
  // Declared before the components that borrow it so it is destroyed after
  // them: runners and queries may still hold tasks on it while tearing down.
  common::Executor executor_;
  olap::OlapCluster olap_;
  compute::JobManager job_manager_;
  sql::Catalog catalog_;
  sql::PrestoEngine presto_;
  stream::Chaperone chaperone_;

  std::vector<std::string> olap_tables_;
  mutable std::mutex usage_mu_;
  std::map<std::string, std::set<std::string>> usage_;
  int64_t next_uid_ = 0;
};

}  // namespace uberrt::core

#endif  // UBERRT_CORE_PLATFORM_H_
