#include "core/platform.h"

#include "sql/parser.h"

#include <sstream>

namespace uberrt::core {

namespace {

common::ExecutorOptions PlatformExecutorOptions(const RealtimePlatform::Options& options) {
  common::ExecutorOptions exec;
  exec.num_threads = options.executor_threads;
  exec.name = "executor.platform";
  return exec;
}

compute::JobManagerOptions PlatformJobManagerOptions(common::Executor* executor) {
  compute::JobManagerOptions jm;
  jm.default_executor = executor;
  return jm;
}

}  // namespace

RealtimePlatform::RealtimePlatform(Options options)
    : faults_(options.fault_seed),
      executor_(PlatformExecutorOptions(options)),
      olap_(&federation_, &store_, &executor_),
      job_manager_(&federation_, &store_, PlatformJobManagerOptions(&executor_)),
      presto_(&catalog_) {
  store_.SetFaultInjector(&faults_);
  olap_.SetFaultInjector(&faults_);
  job_manager_.SetFaultInjector(&faults_);
  for (int32_t i = 0; i < options.num_stream_clusters; ++i) {
    stream::BrokerOptions broker_options;
    broker_options.num_nodes = 100;
    auto broker = std::make_unique<stream::Broker>("cluster-" + std::to_string(i),
                                                   broker_options);
    broker->SetFaultInjector(&faults_);
    federation_.AddCluster(std::move(broker), options.cluster_topic_capacity).ok();
  }
}

void RealtimePlatform::MarkUsage(const std::string& actor, const std::string& layer) {
  if (actor.empty()) return;
  std::lock_guard<std::mutex> lock(usage_mu_);
  usage_[actor].insert(layer);
}

Status RealtimePlatform::ProvisionTopic(const std::string& topic,
                                        const RowSchema& schema, int32_t partitions,
                                        const std::string& actor, bool lossless) {
  Result<int> version = registry_.Register(topic, schema);
  if (!version.ok()) return version.status();
  stream::TopicConfig config;
  config.num_partitions = partitions;
  config.lossless = lossless;
  Status created = federation_.CreateTopic(topic, config);
  if (!created.ok() && !created.IsAlreadyExists()) return created;
  MarkUsage(actor, kLayerStream);
  return Status::Ok();
}

Status RealtimePlatform::ProvisionOlapTable(olap::TableConfig config,
                                            const std::string& source_topic,
                                            olap::ClusterTableOptions cluster_options,
                                            const std::string& actor) {
  if (!federation_.HasTopic(source_topic)) {
    return Status::NotFound("source topic missing: " + source_topic);
  }
  // Schema inference from the source topic's registered schema when the
  // table config omits it (Section 4.3.3 integration).
  if (config.schema.NumFields() == 0) {
    Result<metadata::SchemaVersion> schema = registry_.GetLatest(source_topic);
    if (!schema.ok()) return schema.status();
    config.schema = schema.value().schema;
  }
  std::string table = config.name;
  UBERRT_RETURN_IF_ERROR(olap_.CreateTable(std::move(config), source_topic,
                                           cluster_options));
  registry_.AddLineage(source_topic, "olap:" + table);
  catalog_.Register(table, std::make_unique<sql::OlapConnector>(&olap_, table));
  olap_tables_.push_back(table);
  MarkUsage(actor, kLayerOlap);
  MarkUsage(actor, kLayerStorage);  // segment archival
  return Status::Ok();
}

Result<stream::ProduceResult> RealtimePlatform::ProduceRow(const std::string& topic,
                                                           const Row& row,
                                                           const std::string& key,
                                                           TimestampMs event_time,
                                                           const std::string& actor) {
  stream::Message message;
  message.key = key;
  message.value = EncodeRow(row);
  message.timestamp = event_time;
  message.headers[stream::kHeaderUid] =
      actor + "-" + std::to_string(next_uid_++);
  message.headers[stream::kHeaderService] = actor;
  chaperone_.Record("producer", topic, message);
  MarkUsage(actor, kLayerStream);
  return federation_.Produce(topic, std::move(message), stream::AckMode::kLeader);
}

Result<std::string> RealtimePlatform::SubmitJob(const compute::JobGraph& graph,
                                                const std::string& actor,
                                                compute::JobRunnerOptions runner_options) {
  Result<std::string> id = job_manager_.Submit(graph, runner_options);
  if (!id.ok()) return id;
  MarkUsage(actor, kLayerApi);
  MarkUsage(actor, kLayerCompute);
  for (const compute::SourceSpec& source : graph.sources()) {
    registry_.AddLineage(source.topic, "job:" + id.value());
  }
  if (graph.sink().kind == compute::SinkSpec::Kind::kTopic) {
    registry_.AddLineage("job:" + id.value(), graph.sink().topic);
  }
  return id;
}

Result<std::string> RealtimePlatform::SubmitSqlJob(const std::string& sql,
                                                   const std::string& sink_topic,
                                                   const std::string& actor,
                                                   compute::FlinkSqlOptions sql_options) {
  // Resolve the FROM topic's schema from the registry.
  Result<std::unique_ptr<sql::SelectStmt>> parsed = sql::ParseSelect(sql);
  if (!parsed.ok()) return parsed.status();
  if (!parsed.value()->from ||
      parsed.value()->from->kind != sql::TableRef::Kind::kNamed) {
    return Status::InvalidArgument("streaming SQL requires FROM <topic>");
  }
  const std::string& source_topic = parsed.value()->from->name;
  Result<metadata::SchemaVersion> schema = registry_.GetLatest(source_topic);
  if (!schema.ok()) return schema.status();

  Result<compute::JobGraph> graph =
      compute::CompileStreamingSql(sql, schema.value().schema, sql_options);
  if (!graph.ok()) return graph.status();

  // Provision the sink topic with the job's output schema.
  compute::JobGraph job = graph.value().WithName("flinksql");
  RowSchema output_schema =
      job.SchemaAfter(static_cast<int>(job.transforms().size()) - 1);
  if (!sink_topic.empty()) {
    Result<int32_t> partitions = federation_.NumPartitions(source_topic);
    UBERRT_RETURN_IF_ERROR(ProvisionTopic(sink_topic, output_schema,
                                          partitions.ok() ? partitions.value() : 4,
                                          actor));
    job.SinkToTopic(sink_topic);
  }
  Result<std::string> id = job_manager_.Submit(job);
  if (!id.ok()) return id;
  MarkUsage(actor, kLayerSql);
  MarkUsage(actor, kLayerCompute);
  MarkUsage(actor, kLayerStream);
  registry_.AddLineage(source_topic, "job:" + id.value());
  if (!sink_topic.empty()) registry_.AddLineage("job:" + id.value(), sink_topic);
  return id;
}

Result<sql::QueryResult> RealtimePlatform::Query(const std::string& sql,
                                                 const std::string& actor) {
  MarkUsage(actor, kLayerSql);
  MarkUsage(actor, kLayerOlap);
  return presto_.Execute(sql);
}

Result<olap::OlapResult> RealtimePlatform::QueryOlap(const std::string& table,
                                                     const olap::OlapQuery& query,
                                                     const std::string& actor) {
  MarkUsage(actor, kLayerOlap);
  return olap_.Query(table, query);
}

Status RealtimePlatform::PumpOnce() {
  for (const std::string& table : olap_tables_) {
    Result<int64_t> ingested = olap_.IngestOnce(table);
    if (!ingested.ok()) return ingested.status();
    olap_.DrainArchivalQueue(table).ok();
  }
  return job_manager_.Tick();
}

Status RealtimePlatform::PumpUntilIngested(int32_t max_cycles) {
  for (int32_t i = 0; i < max_cycles; ++i) {
    UBERRT_RETURN_IF_ERROR(PumpOnce());
    bool done = true;
    for (const std::string& table : olap_tables_) {
      Result<int64_t> lag = olap_.IngestLag(table);
      if (!lag.ok()) return lag.status();
      if (lag.value() > 0) done = false;
    }
    if (done) return Status::Ok();
  }
  return Status::Timeout("olap ingestion did not catch up");
}

std::set<std::string> RealtimePlatform::LayersUsed(const std::string& actor) const {
  std::lock_guard<std::mutex> lock(usage_mu_);
  auto it = usage_.find(actor);
  return it == usage_.end() ? std::set<std::string>{} : it->second;
}

std::string RealtimePlatform::RenderComponentTable(
    const std::vector<std::string>& actors) const {
  static const char* kLayers[] = {kLayerApi, kLayerSql,    kLayerOlap,
                                  kLayerCompute, kLayerStream, kLayerStorage};
  std::ostringstream os;
  os << "Component";
  for (const std::string& actor : actors) os << "\t" << actor;
  os << "\n";
  for (const char* layer : kLayers) {
    os << layer;
    for (const std::string& actor : actors) {
      os << "\t" << (LayersUsed(actor).count(layer) > 0 ? "Y" : "");
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace uberrt::core
