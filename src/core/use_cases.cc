#include "core/use_cases.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace uberrt::core {

// --- SurgePricingApp ---------------------------------------------------------

constexpr char SurgePricingApp::kActor[];

SurgePricingApp::SurgePricingApp(RealtimePlatform* platform, Options options)
    : platform_(platform), options_(options) {}

Status SurgePricingApp::Start() {
  RowSchema schema = workload::TripEventGenerator::Schema();
  // Freshness over consistency: non-lossless topic (Section 5.1).
  UBERRT_RETURN_IF_ERROR(platform_->ProvisionTopic(
      options_.trips_topic, schema, options_.partitions, kActor, /*lossless=*/false));

  compute::JobGraph graph("surge");
  compute::SourceSpec source;
  source.topic = options_.trips_topic;
  source.schema = schema;
  source.time_field = "ts";
  graph.AddSource(source);
  // Flag demand (ride requests) vs supply (completed trips freeing a
  // driver) so the window can sum both in one pass.
  RowSchema flagged({{"hex", ValueType::kString},
                     {"demand", ValueType::kInt},
                     {"supply", ValueType::kInt},
                     {"ts", ValueType::kInt}});
  graph.Map(
      "flag_demand_supply",
      [](const Row& row) {
        const std::string& status = row[4].AsString();
        int64_t demand = status == "requested" ? 1 : 0;
        int64_t supply = status == "completed" || status == "accepted" ? 1 : 0;
        return Row{row[1], Value(demand), Value(supply), row[6]};
      },
      flagged);
  graph.WindowAggregate("demand_supply_window", {"hex"},
                        compute::WindowSpec::Tumbling(options_.window_ms),
                        {compute::AggregateSpec::Sum("demand", "demand"),
                         compute::AggregateSpec::Sum("supply", "supply")});
  // "Complex machine-learning based algorithm" stand-in: a pricing function
  // of the demand/supply imbalance, clamped to [1, 5].
  double alpha = options_.alpha;
  RowSchema priced({{"hex", ValueType::kString},
                    {"window_start", ValueType::kInt},
                    {"multiplier", ValueType::kDouble}});
  graph.Map(
      "pricing_model",
      [alpha](const Row& row) {
        double demand = row[2].ToNumeric();
        double supply = std::max(1.0, row[3].ToNumeric());
        double imbalance = std::max(0.0, demand / supply - 1.0);
        double multiplier = std::min(5.0, 1.0 + alpha * imbalance);
        return Row{row[0], row[1], Value(multiplier)};
      },
      priced);
  graph.SinkToCollector([this](const Row& row, TimestampMs) {
    std::lock_guard<std::mutex> lock(mu_);
    multipliers_[row[0].AsString()] = row[2].AsDouble();
    ++windows_computed_;
  });

  // No periodic checkpoints: after failover the state is recomputed from
  // the aggregate stream (Figure 6), so surge never touches Storage.
  compute::JobRunnerOptions runner_options;
  runner_options.periodic_checkpoints = false;
  Result<std::string> id = platform_->SubmitJob(graph, kActor, runner_options);
  if (!id.ok()) return id.status();
  job_id_ = id.value();
  return Status::Ok();
}

double SurgePricingApp::GetMultiplier(const std::string& hex) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = multipliers_.find(hex);
  return it == multipliers_.end() ? 1.0 : it->second;
}

std::map<std::string, double> SurgePricingApp::Multipliers() const {
  std::lock_guard<std::mutex> lock(mu_);
  return multipliers_;
}

int64_t SurgePricingApp::windows_computed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return windows_computed_;
}

// --- RestaurantManagerApp ------------------------------------------------------

constexpr char RestaurantManagerApp::kActor[];

RestaurantManagerApp::RestaurantManagerApp(RealtimePlatform* platform, Options options)
    : platform_(platform), options_(options) {}

Status RestaurantManagerApp::Start() {
  RowSchema schema = workload::EatsOrderGenerator::Schema();
  UBERRT_RETURN_IF_ERROR(platform_->ProvisionTopic(options_.orders_topic, schema,
                                                   options_.partitions, kActor));
  // FlinkSQL preprocessing: aggressive filtering + partial aggregates
  // (Section 5.2) rolled up per restaurant/item/minute.
  std::string sql =
      "SELECT restaurant_id, item, window_start, COUNT(*) AS orders, "
      "SUM(total) AS sales "
      "FROM " + options_.orders_topic + " " +
      "WHERE status <> 'abandoned' "
      "GROUP BY restaurant_id, item, TUMBLE(ts, INTERVAL '1' MINUTE)";
  Result<std::string> job = platform_->SubmitSqlJob(sql, options_.rollup_topic, kActor);
  if (!job.ok()) return job.status();
  job_id_ = job.value();

  // Pinot table over the rollup with a star-tree on the dashboard's
  // dimensions — the pre-aggregation indices of Section 5.2.
  olap::TableConfig table;
  table.name = options_.table;
  table.time_column = "window_start";
  table.segment_rows_threshold = 100;
  table.index_config.inverted_columns = {"restaurant_id"};
  table.index_config.star_tree_dimensions = {"restaurant_id", "item"};
  table.index_config.star_tree_metrics = {"orders", "sales"};
  return platform_->ProvisionOlapTable(std::move(table), options_.rollup_topic,
                                       olap::ClusterTableOptions(), kActor);
}

Result<sql::QueryResult> RestaurantManagerApp::TopItems(int64_t restaurant_id,
                                                        int64_t limit) {
  std::ostringstream sql;
  sql << "SELECT item, SUM(sales) AS total_sales FROM " << options_.table
      << " WHERE restaurant_id = " << restaurant_id
      << " GROUP BY item ORDER BY total_sales DESC LIMIT " << limit;
  return platform_->Query(sql.str(), kActor);
}

Result<sql::QueryResult> RestaurantManagerApp::SalesTimeseries(int64_t restaurant_id) {
  std::ostringstream sql;
  sql << "SELECT window_start, SUM(sales) AS sales, SUM(orders) AS orders FROM "
      << options_.table << " WHERE restaurant_id = " << restaurant_id
      << " GROUP BY window_start ORDER BY window_start ASC";
  return platform_->Query(sql.str(), kActor);
}

Result<olap::OlapResult> RestaurantManagerApp::SalesByItemOlap(int64_t restaurant_id) {
  olap::OlapQuery query;
  query.filters.push_back(
      olap::FilterPredicate::Eq("restaurant_id", Value(restaurant_id)));
  query.group_by = {"item"};
  query.aggregations = {olap::OlapAggregation::Sum("sales", "total_sales"),
                        olap::OlapAggregation::Sum("orders", "orders")};
  return platform_->QueryOlap(options_.table, query, kActor);
}

// --- PredictionMonitoringApp -----------------------------------------------------

constexpr char PredictionMonitoringApp::kActor[];

PredictionMonitoringApp::PredictionMonitoringApp(RealtimePlatform* platform,
                                                 Options options)
    : platform_(platform), options_(options) {}

Status PredictionMonitoringApp::Start() {
  RowSchema pred_schema = workload::PredictionGenerator::PredictionSchema();
  RowSchema outcome_schema = workload::PredictionGenerator::OutcomeSchema();
  UBERRT_RETURN_IF_ERROR(platform_->ProvisionTopic(
      options_.predictions_topic, pred_schema, options_.partitions, kActor));
  UBERRT_RETURN_IF_ERROR(platform_->ProvisionTopic(
      options_.outcomes_topic, outcome_schema, options_.partitions, kActor));

  // API-layer join pipeline: predictions x outcomes -> absolute error ->
  // per-model window aggregates (the OLAP cube feed).
  compute::JobGraph graph("prediction_monitoring");
  compute::SourceSpec predictions;
  predictions.topic = options_.predictions_topic;
  predictions.schema = pred_schema;
  predictions.time_field = "ts";
  predictions.out_of_orderness_ms = 5000;
  compute::SourceSpec outcomes;
  outcomes.topic = options_.outcomes_topic;
  outcomes.schema = outcome_schema;
  outcomes.time_field = "ts";
  outcomes.out_of_orderness_ms = 5000;
  graph.AddSource(predictions).AddSource(outcomes);
  graph.WindowJoin("join_labels", {"prediction_id"},
                   compute::WindowSpec::Tumbling(options_.window_ms),
                   /*allowed_lateness_ms=*/0, options_.parallelism);
  // Joined: [prediction_id, model_id, predicted, ts, actual].
  RowSchema errors({{"model_id", ValueType::kString},
                    {"abs_error", ValueType::kDouble},
                    {"ts", ValueType::kInt}});
  graph.Map(
      "abs_error",
      [](const Row& row) {
        double err = std::fabs(row[2].ToNumeric() - row[4].ToNumeric());
        return Row{row[1], Value(err), row[3]};
      },
      errors, options_.parallelism);
  graph.WindowAggregate("per_model_window", {"model_id"},
                        compute::WindowSpec::Tumbling(options_.window_ms),
                        {compute::AggregateSpec::Count("n"),
                         compute::AggregateSpec::Avg("abs_error", "mae"),
                         compute::AggregateSpec::Max("abs_error", "max_error")},
                        /*allowed_lateness_ms=*/0, options_.parallelism);
  graph.SinkToTopic(options_.metrics_topic);

  // Provision the metrics topic with the job's output schema, then the
  // pre-aggregate Pinot table over it (Section 5.3's "real-time OLAP cube").
  RowSchema metrics_schema =
      graph.SchemaAfter(static_cast<int>(graph.transforms().size()) - 1);
  UBERRT_RETURN_IF_ERROR(platform_->ProvisionTopic(options_.metrics_topic,
                                                   metrics_schema, options_.partitions,
                                                   kActor));
  Result<std::string> job = platform_->SubmitJob(graph, kActor);
  if (!job.ok()) return job.status();
  job_id_ = job.value();

  olap::TableConfig table;
  table.name = options_.table;
  table.time_column = "window_start";
  table.segment_rows_threshold = 1000;
  table.index_config.inverted_columns = {"model_id"};
  return platform_->ProvisionOlapTable(std::move(table), options_.metrics_topic,
                                       olap::ClusterTableOptions(), kActor);
}

Result<sql::QueryResult> PredictionMonitoringApp::AccuracyByModel() {
  std::string sql = "SELECT model_id, AVG(mae) AS mean_abs_error, SUM(n) AS samples "
                    "FROM " + options_.table +
                    " GROUP BY model_id ORDER BY mean_abs_error DESC";
  return platform_->Query(sql, kActor);
}

Result<std::vector<std::string>> PredictionMonitoringApp::DetectAbnormalModels(
    double threshold) {
  Result<sql::QueryResult> accuracy = AccuracyByModel();
  if (!accuracy.ok()) return accuracy.status();
  std::vector<std::string> abnormal;
  int model_idx = accuracy.value().schema.FieldIndex("model_id");
  int mae_idx = accuracy.value().schema.FieldIndex("mean_abs_error");
  for (const Row& row : accuracy.value().rows) {
    if (row[static_cast<size_t>(mae_idx)].ToNumeric() > threshold) {
      abnormal.push_back(row[static_cast<size_t>(model_idx)].ToString());
    }
  }
  return abnormal;
}

// --- EatsOpsAutomationApp ---------------------------------------------------------

constexpr char EatsOpsAutomationApp::kActor[];

std::string EatsOpsAutomationApp::Alert::ToString() const {
  std::ostringstream os;
  os << "ALERT rule=" << rule << " observed=" << observed
     << " threshold=" << threshold;
  return os.str();
}

EatsOpsAutomationApp::EatsOpsAutomationApp(RealtimePlatform* platform, Options options)
    : platform_(platform), options_(options) {}

Result<sql::QueryResult> EatsOpsAutomationApp::Explore(const std::string& sql) {
  return platform_->Query(sql, kActor);
}

Status EatsOpsAutomationApp::AddRule(Rule rule) {
  if (rule.sql.empty()) return Status::InvalidArgument("rule needs a query");
  rules_.push_back(std::move(rule));
  return Status::Ok();
}

Result<std::vector<EatsOpsAutomationApp::Alert>> EatsOpsAutomationApp::EvaluateRules() {
  std::vector<Alert> alerts;
  for (const Rule& rule : rules_) {
    Result<sql::QueryResult> result = platform_->Query(rule.sql, kActor);
    if (!result.ok()) return result.status();
    if (result.value().rows.empty() || result.value().rows[0].empty()) continue;
    double observed = result.value().rows[0][0].ToNumeric();
    bool fired = rule.alert_when_greater ? observed > rule.threshold
                                         : observed < rule.threshold;
    if (fired) alerts.push_back({rule.name, observed, rule.threshold});
  }
  return alerts;
}

Status EatsOpsAutomationApp::StartPreprocessing(const std::string& orders_topic,
                                                const std::string& sink_topic) {
  std::string sql = "SELECT city, window_start, COUNT(*) AS active_orders "
                    "FROM " + orders_topic +
                    " WHERE status <> 'delivered' AND status <> 'abandoned' "
                    "GROUP BY city, TUMBLE(ts, INTERVAL '1' MINUTE)";
  Result<std::string> job = platform_->SubmitSqlJob(sql, sink_topic, kActor);
  if (!job.ok()) return job.status();
  return Status::Ok();
}

}  // namespace uberrt::core
