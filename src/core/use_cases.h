#ifndef UBERRT_CORE_USE_CASES_H_
#define UBERRT_CORE_USE_CASES_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/platform.h"
#include "workload/generators.h"

namespace uberrt::core {

/// Surge pricing (Section 5.1, Figure 6): the analytical-application
/// category. A programmatic (API-layer) Flink pipeline aggregates demand
/// and supply per hexagon geofence per time window and a pricing function
/// writes multipliers into a key-value store for instant lookup. Tuned for
/// freshness and availability over consistency: the trips topic is
/// non-lossless, the job runs without periodic checkpoints (state recomputes
/// from the stream after failover).
class SurgePricingApp {
 public:
  struct Options {
    std::string trips_topic = "trips";
    int32_t partitions = 4;
    int64_t window_ms = 60'000;
    double alpha = 0.5;  ///< multiplier sensitivity to demand/supply ratio
  };
  static constexpr char kActor[] = "surge";

  explicit SurgePricingApp(RealtimePlatform* platform)
      : SurgePricingApp(platform, Options()) {}
  SurgePricingApp(RealtimePlatform* platform, Options options);

  /// Provisions the topic and starts the pipeline.
  Status Start();

  /// Current multiplier for a geofence (1.0 when none computed yet).
  double GetMultiplier(const std::string& hex) const;
  /// All computed multipliers.
  std::map<std::string, double> Multipliers() const;
  int64_t windows_computed() const;

  const Options& options() const { return options_; }
  const std::string& job_id() const { return job_id_; }

 private:
  RealtimePlatform* platform_;
  Options options_;
  std::string job_id_;
  mutable std::mutex mu_;
  std::map<std::string, double> multipliers_;  ///< the "sink key-value store"
  int64_t windows_computed_ = 0;
};

/// UberEats Restaurant Manager (Section 5.2): the dashboard category.
/// A FlinkSQL preprocessing job rolls raw orders up per
/// (restaurant, item, minute) into a Pinot table with a star-tree index;
/// fixed-shape dashboard queries then hit the pre-aggregates, trading
/// ad-hoc flexibility for latency, exactly the Section 5.2 tradeoff.
class RestaurantManagerApp {
 public:
  struct Options {
    std::string orders_topic = "eats_orders";
    std::string rollup_topic = "eats_orders_rollup";
    std::string table = "eats_rollup";
    int32_t partitions = 4;
  };
  static constexpr char kActor[] = "restaurant_manager";

  explicit RestaurantManagerApp(RealtimePlatform* platform)
      : RestaurantManagerApp(platform, Options()) {}
  RestaurantManagerApp(RealtimePlatform* platform, Options options);

  Status Start();

  /// Top menu items by sales for one restaurant.
  Result<sql::QueryResult> TopItems(int64_t restaurant_id, int64_t limit = 5);
  /// Sales per window for one restaurant (time series for the dashboard).
  Result<sql::QueryResult> SalesTimeseries(int64_t restaurant_id);
  /// Direct OLAP-layer query used for the latency SLA measurements.
  Result<olap::OlapResult> SalesByItemOlap(int64_t restaurant_id);

  const Options& options() const { return options_; }

 private:
  RealtimePlatform* platform_;
  Options options_;
  std::string job_id_;
};

/// Real-time prediction monitoring (Section 5.3): the machine-learning
/// category. An API-layer Flink job joins the prediction stream to the
/// observed-outcome stream within a window, computes absolute errors,
/// pre-aggregates per (model, window) and lands the cube in a Pinot table
/// for high-QPS accuracy queries. Exercises every layer of Table 1.
class PredictionMonitoringApp {
 public:
  struct Options {
    std::string predictions_topic = "predictions";
    std::string outcomes_topic = "outcomes";
    std::string metrics_topic = "model_metrics";
    std::string table = "model_accuracy";
    int32_t partitions = 4;
    int64_t window_ms = 60'000;
    int32_t parallelism = 2;  ///< horizontal scalability knob (Section 5.3)
  };
  static constexpr char kActor[] = "prediction_monitoring";

  explicit PredictionMonitoringApp(RealtimePlatform* platform)
      : PredictionMonitoringApp(platform, Options()) {}
  PredictionMonitoringApp(RealtimePlatform* platform, Options options);

  Status Start();

  /// Mean absolute error per model over all windows (PrestoSQL on Pinot).
  Result<sql::QueryResult> AccuracyByModel();
  /// Models whose mean absolute error exceeds `threshold`.
  Result<std::vector<std::string>> DetectAbnormalModels(double threshold);

  const Options& options() const { return options_; }

 private:
  RealtimePlatform* platform_;
  Options options_;
  std::string job_id_;
};

/// UberEats Ops automation (Section 5.4): the ad-hoc exploration category.
/// Ops explore real-time order data with PrestoSQL on Pinot; a discovered
/// insight is productionized as a rule the automation framework evaluates
/// continuously, generating alerts (the Covid-era restaurant-capacity
/// story).
class EatsOpsAutomationApp {
 public:
  struct Options {
    std::string table = "eats_rollup";  ///< shared with RestaurantManagerApp
  };
  static constexpr char kActor[] = "eats_ops";

  struct Rule {
    std::string name;
    /// Query returning one numeric column; first row's value is compared.
    std::string sql;
    double threshold = 0;
    bool alert_when_greater = true;
  };
  struct Alert {
    std::string rule;
    double observed = 0;
    double threshold = 0;
    std::string ToString() const;
  };

  explicit EatsOpsAutomationApp(RealtimePlatform* platform)
      : EatsOpsAutomationApp(platform, Options()) {}
  EatsOpsAutomationApp(RealtimePlatform* platform, Options options);

  /// Ad-hoc exploration (PrestoSQL over the Pinot table).
  Result<sql::QueryResult> Explore(const std::string& sql);

  /// Productionize: register a rule derived from an ad-hoc query.
  Status AddRule(Rule rule);
  /// Evaluates every rule once, returning fired alerts.
  Result<std::vector<Alert>> EvaluateRules();

  /// Also exercises the compute layer the way the paper's ops flow did:
  /// a standing FlinkSQL job pre-filtering order events for the rules.
  Status StartPreprocessing(const std::string& orders_topic,
                            const std::string& sink_topic);

 private:
  RealtimePlatform* platform_;
  Options options_;
  std::vector<Rule> rules_;
};

}  // namespace uberrt::core

#endif  // UBERRT_CORE_USE_CASES_H_
