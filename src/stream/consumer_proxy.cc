#include "stream/consumer_proxy.h"

#include <algorithm>

#include "common/clock.h"

namespace uberrt::stream {

ConsumerProxy::ConsumerProxy(MessageBus* bus, std::string topic, std::string group,
                             Endpoint endpoint, ConsumerProxyOptions options)
    : bus_(bus),
      topic_(std::move(topic)),
      group_(std::move(group)),
      endpoint_(std::move(endpoint)),
      options_(options),
      dispatch_site_("proxy.dispatch." + topic_),
      dlq_(bus, DlqOptions{options.max_retries}) {}

ConsumerProxy::~ConsumerProxy() { Stop(); }

Status ConsumerProxy::Start() {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (running_.load()) return Status::FailedPrecondition("already running");
  UBERRT_RETURN_IF_ERROR(dlq_.EnsureTopics(topic_));
  consumer_ = std::make_unique<Consumer>(bus_, group_, topic_, group_ + "-proxy");
  UBERRT_RETURN_IF_ERROR(consumer_->Subscribe());
  queue_ = std::make_unique<BoundedQueue<Message>>(options_.queue_capacity);
  executor_ = options_.executor;
  if (executor_ == nullptr) {
    // Dispatch workers may block in the endpoint, so a private pool is
    // sized to the requested dispatch parallelism.
    common::ExecutorOptions pool;
    pool.num_threads = static_cast<size_t>(std::max<int32_t>(1, options_.num_workers));
    pool.name = "executor.proxy." + group_;
    owned_executor_ = std::make_unique<common::Executor>(pool);
    executor_ = owned_executor_.get();
  }
  running_.store(true);
  poller_ = std::thread([this] { PollLoop(); });
  return Status::Ok();
}

void ConsumerProxy::Stop() {
  std::lock_guard<std::mutex> lock(lifecycle_mu_);
  if (!running_.exchange(false)) return;
  if (poller_.joinable()) poller_.join();
  queue_->Close();
  // Worker tasks drain the closed queue, then retire; wait for the last one.
  workers_wg_.Wait();
  owned_executor_.reset();
  executor_ = nullptr;
  if (consumer_) {
    consumer_->Commit().ok();
    consumer_->Close().ok();
    consumer_.reset();
  }
}

void ConsumerProxy::PollLoop() {
  // The proxy consumes both the main topic and its retry topic: failed
  // dispatches loop through the retry topic until their budget is spent.
  Consumer retry_consumer(bus_, group_, DlqManager::RetryTopic(topic_),
                          group_ + "-proxy-retry");
  bool retry_subscribed = retry_consumer.Subscribe().ok();
  while (running_.load()) {
    bool idle = true;
    for (Consumer* c : {consumer_.get(), retry_subscribed ? &retry_consumer : nullptr}) {
      if (c == nullptr) continue;
      // Batch fetch as borrowed views; materialize owning Messages only at
      // the dispatch-queue boundary, where the endpoint needs ownership.
      Result<FetchedBatch> batch = c->PollViews(options_.poll_batch);
      if (!batch.ok()) continue;  // transient (e.g. cluster failover)
      for (const wire::MessageView& v : batch.value().messages) {
        in_flight_.fetch_add(1);
        if (!queue_->Push(v.ToMessage())) {
          in_flight_.fetch_sub(1);
          return;  // queue closed
        }
        SpawnWorkers();
        idle = false;
      }
    }
    if (idle) {
      // Caught up: safe point to record progress (at-least-once overall).
      if (in_flight_.load() == 0) {
        consumer_->Commit().ok();
        if (retry_subscribed) retry_consumer.Commit().ok();
      }
      SystemClock::Instance()->SleepMs(1);
    }
  }
  if (retry_subscribed) retry_consumer.Close().ok();
}

void ConsumerProxy::SpawnWorkers() {
  // Cap concurrent dispatches at num_workers regardless of pool size: a
  // worker slot is claimed by CAS before its task is submitted, and retired
  // when the task finds the queue empty.
  while (queue_->Size() > 0) {
    int32_t current = active_workers_.load();
    if (current >= options_.num_workers) return;
    if (!active_workers_.compare_exchange_weak(current, current + 1)) continue;
    workers_wg_.Add(1);
    if (!executor_->Submit([this] {
          WorkerTask();
          workers_wg_.Done();
        })) {
      active_workers_.fetch_sub(1);
      workers_wg_.Done();
      return;  // pool shut down
    }
  }
}

void ConsumerProxy::WorkerTask() {
  while (true) {
    std::optional<Message> message = queue_->TryPop();
    if (!message.has_value()) {
      active_workers_.fetch_sub(1);
      // Recheck after retiring the slot: a message pushed between the empty
      // TryPop and the decrement must not be stranded with no worker.
      if (queue_->Size() > 0) SpawnWorkers();
      return;
    }
    dispatched_.fetch_add(1);
    Status result = options_.faults != nullptr ? options_.faults->Check(dispatch_site_)
                                               : Status::Ok();
    if (result.ok()) result = endpoint_(*message);
    if (result.ok()) {
      succeeded_.fetch_add(1);
    } else {
      if (DlqManager::RetryCount(*message) >= options_.max_retries) {
        dead_lettered_.fetch_add(1);
      } else {
        retried_.fetch_add(1);
      }
      dlq_.HandleFailure(topic_, std::move(*message)).ok();
    }
    in_flight_.fetch_sub(1);
  }
}

Status ConsumerProxy::WaitUntilCaughtUp(int64_t poll_interval_ms) {
  if (!running_.load()) return Status::FailedPrecondition("proxy not running");
  while (true) {
    Result<int64_t> main_lag = bus_->ConsumerLag(group_, topic_);
    Result<int64_t> retry_lag = bus_->ConsumerLag(group_, DlqManager::RetryTopic(topic_));
    if (!main_lag.ok()) return main_lag.status();
    if (!retry_lag.ok()) return retry_lag.status();
    if (main_lag.value() == 0 && retry_lag.value() == 0 && in_flight_.load() == 0 &&
        queue_->Size() == 0) {
      return Status::Ok();
    }
    SystemClock::Instance()->SleepMs(poll_interval_ms);
  }
}

}  // namespace uberrt::stream
