#ifndef UBERRT_STREAM_FEDERATION_H_
#define UBERRT_STREAM_FEDERATION_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/metrics.h"
#include "common/status.h"
#include "stream/broker.h"
#include "stream/message_bus.h"

namespace uberrt::stream {

/// Federated "logical cluster" over multiple physical Kafka clusters
/// (Section 4.1.1 of the paper). A central metadata server maps each topic
/// to its hosting physical cluster and transparently routes client requests,
/// so producers/consumers never know the physical placement. Federation
/// provides:
///  - horizontal scaling: when every cluster is at capacity, add another;
///    new topics land on the least-loaded cluster with spare capacity;
///  - single-cluster failure tolerance: topics on a dead cluster can be
///    failed over to a healthy one (freshly provisioned; history recovery is
///    the job of cross-region replication);
///  - live topic migration between clusters without consumer restarts:
///    data is copied preserving offsets, then the routing entry flips.
///
/// Group coordination and committed offsets live at the federation
/// (metadata-server) level, so they survive topic migration and failover.
class KafkaFederation : public MessageBus {
 public:
  KafkaFederation() = default;

  /// Registers a physical cluster. `topic_capacity` is the maximum number of
  /// topics this cluster may host (the paper's "a cluster is full").
  /// The federation takes ownership.
  Status AddCluster(std::unique_ptr<Broker> cluster, int32_t topic_capacity);

  /// Direct access to a physical cluster (for failure injection in tests).
  /// Returns an owning reference so the caller can never observe a dangling
  /// broker, mirroring the Broker topic-lifetime rule.
  Result<std::shared_ptr<Broker>> GetCluster(const std::string& name) const;
  std::vector<std::string> ListClusters() const;

  /// Name of the physical cluster currently hosting a topic.
  Result<std::string> HostingCluster(const std::string& topic) const;

  /// Copies the topic's data to `target_cluster` preserving offsets, then
  /// atomically re-routes. Live consumers continue without restart.
  Status MigrateTopic(const std::string& topic, const std::string& target_cluster);

  /// Re-homes a topic whose hosting cluster died onto a healthy cluster
  /// (fresh logs). Called automatically by Produce on cluster failure.
  Status FailoverTopic(const std::string& topic);

  // --- MessageBus ---------------------------------------------------------

  Status CreateTopic(const std::string& topic, TopicConfig config) override;
  bool HasTopic(const std::string& topic) const override;
  Result<int32_t> NumPartitions(const std::string& topic) const override;
  Result<ProduceResult> Produce(const std::string& topic, Message message,
                                AckMode ack = AckMode::kLeader) override;
  /// Routes the batch to the hosting cluster's single-memcpy append; on
  /// cluster failure fails the topic over and retries once, like Produce.
  Result<ProduceResult> ProduceBatch(const std::string& topic, int32_t partition,
                                     const wire::EncodedBatch& batch,
                                     AckMode ack = AckMode::kLeader) override;
  Result<std::vector<Message>> Fetch(const std::string& topic, int32_t partition,
                                     int64_t offset, size_t max_messages) const override;
  /// Zero-copy batch fetch routed to the hosting cluster.
  Result<FetchedBatch> FetchViews(const std::string& topic, int32_t partition,
                                  int64_t offset, size_t max_messages) const override;
  Result<int64_t> BeginOffset(const std::string& topic, int32_t partition) const override;
  Result<int64_t> EndOffset(const std::string& topic, int32_t partition) const override;
  Status JoinGroup(const std::string& group, const std::string& topic,
                   const std::string& member) override;
  Status LeaveGroup(const std::string& group, const std::string& topic,
                    const std::string& member) override;
  Result<std::vector<int32_t>> GetAssignment(const std::string& group,
                                             const std::string& topic,
                                             const std::string& member) const override;
  int64_t GroupGeneration(const std::string& group, const std::string& topic) const override;
  Status CommitOffset(const std::string& group, const std::string& topic,
                      int32_t partition, int64_t offset) override;
  Result<int64_t> CommittedOffset(const std::string& group, const std::string& topic,
                                  int32_t partition) const override;
  Result<int64_t> ConsumerLag(const std::string& group, const std::string& topic) const override;

 private:
  struct ClusterEntry {
    std::shared_ptr<Broker> broker;
    int32_t topic_capacity = 0;
    int32_t hosted_topics = 0;
  };
  struct Group {
    std::vector<std::string> members;
    int64_t generation = 0;
  };

  /// Healthy cluster with spare capacity hosting the fewest topics, or
  /// ResourceExhausted.
  Result<ClusterEntry*> PickClusterLocked();
  /// Owning reference to the hosting broker; safe to use after `mu_` is
  /// released even if the topic is concurrently migrated or failed over
  /// (clients then retry against the re-read route, as real Kafka clients
  /// refresh metadata).
  Result<std::shared_ptr<Broker>> RouteLocked(const std::string& topic) const;
  Result<std::shared_ptr<Broker>> Route(const std::string& topic) const;

  mutable std::mutex mu_;
  std::map<std::string, ClusterEntry> clusters_;
  std::map<std::string, std::string> topic_to_cluster_;
  std::map<std::string, TopicConfig> topic_configs_;
  std::map<std::string, Group> groups_;            // group\0topic
  std::map<std::string, int64_t> committed_;       // group\0topic\0partition
  mutable MetricsRegistry metrics_;
  // Resolved once at construction; Produce's failover path and the control-
  // plane ops bump these without a registry lookup.
  Counter* topics_created_ = metrics_.GetCounter("federation.topics_created");
  Counter* failover_produces_ = metrics_.GetCounter("federation.failover_produces");
  Counter* migrations_ = metrics_.GetCounter("federation.migrations");
  Counter* failovers_ = metrics_.GetCounter("federation.failovers");
};

}  // namespace uberrt::stream

#endif  // UBERRT_STREAM_FEDERATION_H_
