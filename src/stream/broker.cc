#include "stream/broker.h"

#include <algorithm>

#include "common/hash.h"
#include "stream/assignment.h"

namespace uberrt::stream {

namespace {

std::string GroupKey(const std::string& group, const std::string& topic) {
  return group + '\0' + topic;
}

std::string OffsetKey(const std::string& group, const std::string& topic,
                      int32_t partition) {
  return group + '\0' + topic + '\0' + std::to_string(partition);
}

}  // namespace

Broker::Broker(std::string name, BrokerOptions options, Clock* clock)
    : name_(std::move(name)),
      options_(options),
      clock_(clock),
      produce_site_("broker.produce." + name_),
      fetch_site_("broker.fetch." + name_),
      produced_counter_(metrics_.GetCounter("broker." + name_ + ".produced")),
      dropped_counter_(metrics_.GetCounter("broker." + name_ + ".dropped")),
      retention_dropped_counter_(
          metrics_.GetCounter("broker." + name_ + ".retention_dropped")) {}

Status Broker::CreateTopic(const std::string& topic, TopicConfig config) {
  if (config.num_partitions <= 0) {
    return Status::InvalidArgument("num_partitions must be positive");
  }
  auto t = std::make_shared<Topic>();
  t->config = config;
  t->partitions.reserve(static_cast<size_t>(config.num_partitions));
  for (int32_t i = 0; i < config.num_partitions; ++i) {
    t->partitions.push_back(std::make_unique<PartitionLog>());
  }
  std::lock_guard<std::mutex> lock(topics_mu_);
  if (topics_.count(topic) > 0) {
    return Status::AlreadyExists("topic exists: " + topic);
  }
  topics_.emplace(topic, std::move(t));
  return Status::Ok();
}

Status Broker::DeleteTopic(const std::string& topic) {
  std::shared_ptr<Topic> doomed;
  {
    std::lock_guard<std::mutex> lock(topics_mu_);
    auto it = topics_.find(topic);
    if (it == topics_.end()) return Status::NotFound("no topic: " + topic);
    // Keep the last reference until after the lock is released so the
    // (potentially large) logs are never destroyed under topics_mu_.
    doomed = std::move(it->second);
    topics_.erase(it);
  }
  return Status::Ok();
}

bool Broker::HasTopic(const std::string& topic) const {
  std::lock_guard<std::mutex> lock(topics_mu_);
  return topics_.count(topic) > 0;
}

Result<TopicConfig> Broker::GetTopicConfig(const std::string& topic) const {
  Result<std::shared_ptr<Topic>> found = FindTopic(topic);
  if (!found.ok()) return found.status();
  return found.value()->config;
}

std::vector<std::string> Broker::ListTopics() const {
  std::lock_guard<std::mutex> lock(topics_mu_);
  std::vector<std::string> out;
  for (const auto& [name, topic] : topics_) out.push_back(name);
  return out;
}

Result<int32_t> Broker::NumPartitions(const std::string& topic) const {
  Result<std::shared_ptr<Topic>> found = FindTopic(topic);
  if (!found.ok()) return found.status();
  return static_cast<int32_t>(found.value()->partitions.size());
}

Result<std::shared_ptr<Broker::Topic>> Broker::FindTopic(
    const std::string& topic) const {
  std::lock_guard<std::mutex> lock(topics_mu_);
  auto it = topics_.find(topic);
  if (it == topics_.end()) return Status::NotFound("no topic: " + topic);
  return it->second;
}

void Broker::SpinCoordinationWork(AckMode ack) const {
  if (!options_.coordination_model_enabled) return;
  double iters = options_.coordination_base_iters +
                 options_.coordination_quad_iters *
                     static_cast<double>(options_.num_nodes) *
                     static_cast<double>(options_.num_nodes);
  if (ack == AckMode::kAll) iters *= 2.0;  // replica round trips
  volatile double sink = 0.0;
  for (int64_t i = 0; i < static_cast<int64_t>(iters); ++i) {
    sink = sink + static_cast<double>(i) * 1e-9;
  }
  (void)sink;
}

Result<ProduceResult> Broker::Produce(const std::string& topic, Message message,
                                      AckMode ack) {
  // Topic existence is checked before availability: a missing topic is
  // NotFound even while the cluster is down, so federation retry logic does
  // not spin forever on a topic that will never exist.
  Result<std::shared_ptr<Topic>> found = FindTopic(topic);
  if (!found.ok()) return found.status();
  std::shared_ptr<Topic> t = std::move(found.value());
  if (!available_.load(std::memory_order_acquire)) {
    if (!t->config.lossless) {
      // Availability over consistency: non-lossless topics drop silently.
      dropped_counter_->Increment();
      ProduceResult dropped;
      dropped.dropped = true;
      return dropped;
    }
    if (ack == AckMode::kNone) {
      ProduceResult lost;
      lost.dropped = true;
      return lost;  // fire-and-forget into a dead cluster
    }
    return Status::Unavailable("cluster " + name_ + " down");
  }
  // Injected faults fire before the append: an error return always means the
  // message was not stored, so lossless producers see acked-or-error.
  if (common::FaultInjector* faults = faults_.load(std::memory_order_acquire)) {
    UBERRT_RETURN_IF_ERROR(faults->Check(produce_site_));
  }
  // Capacity admission also fires before the append: a shed produce was
  // never stored, so the acked-or-error contract extends to load shedding.
  if (ProduceAdmission* admission = admission_.load(std::memory_order_acquire)) {
    Priority priority = Priority::kImportant;
    auto header = message.headers.find(kHeaderPriority);
    if (header != message.headers.end()) {
      priority = PriorityFromString(header->second);
    }
    UBERRT_RETURN_IF_ERROR(admission->AdmitProduce(topic, priority, 1));
  }
  SpinCoordinationWork(ack);
  int32_t partition = message.partition;
  int32_t num_partitions = static_cast<int32_t>(t->partitions.size());
  if (partition < 0) {
    if (!message.key.empty()) {
      partition = static_cast<int32_t>(
          KeyToPartition(message.key, static_cast<uint32_t>(num_partitions)));
    } else {
      partition = static_cast<int32_t>(t->round_robin.fetch_add(1) %
                                       static_cast<uint64_t>(num_partitions));
    }
  }
  if (partition >= num_partitions) {
    return Status::InvalidArgument("partition out of range");
  }
  if (message.timestamp == 0) message.timestamp = clock_->NowMs();
  message.partition = partition;
  int64_t offset = t->partitions[static_cast<size_t>(partition)]->Append(std::move(message));
  produced_counter_->Increment();
  ProduceResult result;
  result.partition = partition;
  result.offset = offset;
  return result;
}

Result<ProduceResult> Broker::ProduceBatch(const std::string& topic, int32_t partition,
                                           const wire::EncodedBatch& batch,
                                           AckMode ack) {
  Result<std::shared_ptr<Topic>> found = FindTopic(topic);
  if (!found.ok()) return found.status();
  std::shared_ptr<Topic> t = std::move(found.value());
  if (partition < 0 || partition >= static_cast<int32_t>(t->partitions.size())) {
    return Status::InvalidArgument("partition out of range");
  }
  if (!available_.load(std::memory_order_acquire)) {
    if (!t->config.lossless || ack == AckMode::kNone) {
      // Availability over consistency: the whole batch drops silently.
      if (!t->config.lossless) dropped_counter_->Increment(batch.record_count);
      ProduceResult dropped;
      dropped.dropped = true;
      return dropped;
    }
    return Status::Unavailable("cluster " + name_ + " down");
  }
  // Faults fire before the append; an error always means nothing was stored.
  if (common::FaultInjector* faults = faults_.load(std::memory_order_acquire)) {
    UBERRT_RETURN_IF_ERROR(faults->Check(produce_site_));
  }
  // Batches carry no per-record headers; admit at the default priority with
  // the whole batch as one unit block (shed-or-stored, never split).
  if (ProduceAdmission* admission = admission_.load(std::memory_order_acquire)) {
    UBERRT_RETURN_IF_ERROR(
        admission->AdmitProduce(topic, Priority::kImportant, batch.record_count));
  }
  // One coordination round trip per batch, not per record — the lever the
  // Kafka benchmark-practices paper identifies as dominating throughput.
  SpinCoordinationWork(ack);
  Result<int64_t> base =
      t->partitions[static_cast<size_t>(partition)]->AppendBatch(batch);
  if (!base.ok()) return base.status();
  produced_counter_->Increment(batch.record_count);
  ProduceResult result;
  result.partition = partition;
  result.offset = base.value();
  return result;
}

Status Broker::Replicate(const std::string& topic, const Message& message) {
  Result<std::shared_ptr<Topic>> found = FindTopic(topic);
  if (!found.ok()) return found.status();
  std::shared_ptr<Topic> t = std::move(found.value());
  if (!available_.load(std::memory_order_acquire)) {
    return Status::Unavailable("cluster " + name_ + " down");
  }
  if (message.partition < 0 ||
      message.partition >= static_cast<int32_t>(t->partitions.size())) {
    return Status::InvalidArgument("replicate: bad partition");
  }
  return t->partitions[static_cast<size_t>(message.partition)]->AppendWithOffset(message);
}

Result<std::vector<Message>> Broker::Fetch(const std::string& topic, int32_t partition,
                                           int64_t offset, size_t max_messages) const {
  // Compatibility shim over the zero-copy path: same gates, plus one owning
  // deep copy per message. Going through FetchViews also stamps partitions.
  Result<FetchedBatch> views = FetchViews(topic, partition, offset, max_messages);
  if (!views.ok()) return views.status();
  return views.value().ToMessages();
}

Result<FetchedBatch> Broker::FetchViews(const std::string& topic, int32_t partition,
                                        int64_t offset, size_t max_messages) const {
  Result<std::shared_ptr<Topic>> found = FindTopic(topic);
  if (!found.ok()) return found.status();
  std::shared_ptr<Topic> t = std::move(found.value());
  if (!available_.load(std::memory_order_acquire)) {
    return Status::Unavailable("cluster " + name_ + " down");
  }
  if (common::FaultInjector* faults = faults_.load(std::memory_order_acquire)) {
    UBERRT_RETURN_IF_ERROR(faults->Check(fetch_site_));
  }
  if (partition < 0 || partition >= static_cast<int32_t>(t->partitions.size())) {
    return Status::InvalidArgument("partition out of range");
  }
  Result<FetchedBatch> views =
      t->partitions[static_cast<size_t>(partition)]->ReadViews(offset, max_messages);
  if (!views.ok()) return views.status();
  // Frames don't store the partition; stamp it at the read boundary. The
  // views outlive the topic even if DeleteTopic or retention race this read
  // (they pin the arena segments).
  for (wire::MessageView& v : views.value().messages) v.partition = partition;
  return views;
}

Result<int64_t> Broker::BeginOffset(const std::string& topic, int32_t partition) const {
  Result<std::shared_ptr<Topic>> found = FindTopic(topic);
  if (!found.ok()) return found.status();
  std::shared_ptr<Topic> t = std::move(found.value());
  if (partition < 0 || partition >= static_cast<int32_t>(t->partitions.size())) {
    return Status::InvalidArgument("partition out of range");
  }
  return t->partitions[static_cast<size_t>(partition)]->BeginOffset();
}

Result<int64_t> Broker::EndOffset(const std::string& topic, int32_t partition) const {
  Result<std::shared_ptr<Topic>> found = FindTopic(topic);
  if (!found.ok()) return found.status();
  std::shared_ptr<Topic> t = std::move(found.value());
  if (partition < 0 || partition >= static_cast<int32_t>(t->partitions.size())) {
    return Status::InvalidArgument("partition out of range");
  }
  return t->partitions[static_cast<size_t>(partition)]->EndOffset();
}

Status Broker::JoinGroup(const std::string& group, const std::string& topic,
                         const std::string& member) {
  if (!HasTopic(topic)) return Status::NotFound("no topic: " + topic);
  std::lock_guard<std::mutex> lock(groups_mu_);
  Group& g = groups_[GroupKey(group, topic)];
  if (std::find(g.members.begin(), g.members.end(), member) != g.members.end()) {
    return Status::AlreadyExists("member already in group");
  }
  g.members.push_back(member);
  std::sort(g.members.begin(), g.members.end());
  ++g.generation;
  return Status::Ok();
}

Status Broker::LeaveGroup(const std::string& group, const std::string& topic,
                          const std::string& member) {
  std::lock_guard<std::mutex> lock(groups_mu_);
  auto it = groups_.find(GroupKey(group, topic));
  if (it == groups_.end()) return Status::NotFound("no such group");
  auto& members = it->second.members;
  auto pos = std::find(members.begin(), members.end(), member);
  if (pos == members.end()) return Status::NotFound("member not in group");
  members.erase(pos);
  ++it->second.generation;
  return Status::Ok();
}

Result<std::vector<int32_t>> Broker::GetAssignment(const std::string& group,
                                                   const std::string& topic,
                                                   const std::string& member) const {
  int32_t member_index = -1;
  int32_t num_members = 0;
  {
    std::lock_guard<std::mutex> lock(groups_mu_);
    auto git = groups_.find(GroupKey(group, topic));
    if (git == groups_.end()) return Status::NotFound("no such group");
    const auto& members = git->second.members;
    auto pos = std::find(members.begin(), members.end(), member);
    if (pos == members.end()) return Status::NotFound("member not in group");
    member_index = static_cast<int32_t>(pos - members.begin());
    num_members = static_cast<int32_t>(members.size());
  }
  Result<std::shared_ptr<Topic>> found = FindTopic(topic);
  if (!found.ok()) return found.status();
  int32_t num_partitions = static_cast<int32_t>(found.value()->partitions.size());
  return RangeAssignment(num_partitions, num_members, member_index);
}

int64_t Broker::GroupGeneration(const std::string& group, const std::string& topic) const {
  std::lock_guard<std::mutex> lock(groups_mu_);
  auto it = groups_.find(GroupKey(group, topic));
  return it == groups_.end() ? 0 : it->second.generation;
}

Status Broker::CommitOffset(const std::string& group, const std::string& topic,
                            int32_t partition, int64_t offset) {
  std::lock_guard<std::mutex> lock(offsets_mu_);
  committed_[OffsetKey(group, topic, partition)] = offset;
  return Status::Ok();
}

Result<int64_t> Broker::CommittedOffset(const std::string& group,
                                        const std::string& topic,
                                        int32_t partition) const {
  std::lock_guard<std::mutex> lock(offsets_mu_);
  auto it = committed_.find(OffsetKey(group, topic, partition));
  if (it == committed_.end()) return Status::NotFound("no committed offset");
  return it->second;
}

Result<int64_t> Broker::ConsumerLag(const std::string& group,
                                    const std::string& topic) const {
  Result<std::shared_ptr<Topic>> found = FindTopic(topic);
  if (!found.ok()) return found.status();
  std::shared_ptr<Topic> t = std::move(found.value());
  int64_t lag = 0;
  std::lock_guard<std::mutex> lock(offsets_mu_);
  for (size_t p = 0; p < t->partitions.size(); ++p) {
    int64_t end = t->partitions[p]->EndOffset();
    int64_t committed = t->partitions[p]->BeginOffset();
    auto it = committed_.find(OffsetKey(group, topic, static_cast<int32_t>(p)));
    if (it != committed_.end()) committed = std::max(committed, it->second);
    lag += std::max<int64_t>(0, end - committed);
  }
  return lag;
}

int64_t Broker::ApplyRetention() {
  std::vector<std::shared_ptr<Topic>> work;
  {
    std::lock_guard<std::mutex> lock(topics_mu_);
    work.reserve(topics_.size());
    for (auto& [name, topic] : topics_) work.push_back(topic);
  }
  int64_t dropped = 0;
  TimestampMs now = clock_->NowMs();
  for (const std::shared_ptr<Topic>& topic : work) {
    for (auto& partition : topic->partitions) {
      dropped += partition->ApplyRetention(topic->config.retention, now);
    }
  }
  if (dropped > 0) {
    retention_dropped_counter_->Increment(dropped);
  }
  return dropped;
}

void Broker::SetAvailable(bool available) {
  available_.store(available, std::memory_order_release);
}

bool Broker::available() const {
  return available_.load(std::memory_order_acquire);
}

}  // namespace uberrt::stream
