#include "stream/broker.h"

#include <algorithm>

#include "common/hash.h"

namespace uberrt::stream {

namespace {

std::string GroupKey(const std::string& group, const std::string& topic) {
  return group + '\0' + topic;
}

std::string OffsetKey(const std::string& group, const std::string& topic,
                      int32_t partition) {
  return group + '\0' + topic + '\0' + std::to_string(partition);
}

}  // namespace

Broker::Broker(std::string name, BrokerOptions options, Clock* clock)
    : name_(std::move(name)), options_(options), clock_(clock) {}

Status Broker::CreateTopic(const std::string& topic, TopicConfig config) {
  if (config.num_partitions <= 0) {
    return Status::InvalidArgument("num_partitions must be positive");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (topics_.count(topic) > 0) {
    return Status::AlreadyExists("topic exists: " + topic);
  }
  auto t = std::make_unique<Topic>();
  t->config = config;
  t->partitions.reserve(static_cast<size_t>(config.num_partitions));
  for (int32_t i = 0; i < config.num_partitions; ++i) {
    t->partitions.push_back(std::make_unique<PartitionLog>());
  }
  topics_.emplace(topic, std::move(t));
  return Status::Ok();
}

Status Broker::DeleteTopic(const std::string& topic) {
  std::lock_guard<std::mutex> lock(mu_);
  if (topics_.erase(topic) == 0) return Status::NotFound("no topic: " + topic);
  return Status::Ok();
}

bool Broker::HasTopic(const std::string& topic) const {
  std::lock_guard<std::mutex> lock(mu_);
  return topics_.count(topic) > 0;
}

Result<TopicConfig> Broker::GetTopicConfig(const std::string& topic) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = topics_.find(topic);
  if (it == topics_.end()) return Status::NotFound("no topic: " + topic);
  return it->second->config;
}

std::vector<std::string> Broker::ListTopics() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  for (const auto& [name, topic] : topics_) out.push_back(name);
  return out;
}

Result<int32_t> Broker::NumPartitions(const std::string& topic) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = topics_.find(topic);
  if (it == topics_.end()) return Status::NotFound("no topic: " + topic);
  return static_cast<int32_t>(it->second->partitions.size());
}

Result<Broker::Topic*> Broker::FindTopic(const std::string& topic) const {
  auto it = topics_.find(topic);
  if (it == topics_.end()) return Status::NotFound("no topic: " + topic);
  return it->second.get();
}

void Broker::SpinCoordinationWork(AckMode ack) const {
  if (!options_.coordination_model_enabled) return;
  double iters = options_.coordination_base_iters +
                 options_.coordination_quad_iters *
                     static_cast<double>(options_.num_nodes) *
                     static_cast<double>(options_.num_nodes);
  if (ack == AckMode::kAll) iters *= 2.0;  // replica round trips
  volatile double sink = 0.0;
  for (int64_t i = 0; i < static_cast<int64_t>(iters); ++i) {
    sink = sink + static_cast<double>(i) * 1e-9;
  }
  (void)sink;
}

Result<ProduceResult> Broker::Produce(const std::string& topic, Message message,
                                      AckMode ack) {
  Topic* t = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!available_) {
      auto it = topics_.find(topic);
      if (it != topics_.end() && !it->second->config.lossless) {
        // Availability over consistency: non-lossless topics drop silently.
        metrics_.GetCounter("broker." + name_ + ".dropped")->Increment();
        ProduceResult dropped;
        dropped.dropped = true;
        return dropped;
      }
      if (ack == AckMode::kNone) {
        ProduceResult lost;
        lost.dropped = true;
        return lost;  // fire-and-forget into a dead cluster
      }
      return Status::Unavailable("cluster " + name_ + " down");
    }
    Result<Topic*> found = FindTopic(topic);
    if (!found.ok()) return found.status();
    t = found.value();
  }
  SpinCoordinationWork(ack);
  int32_t partition = message.partition;
  int32_t num_partitions = static_cast<int32_t>(t->partitions.size());
  if (partition < 0) {
    if (!message.key.empty()) {
      partition = static_cast<int32_t>(
          KeyToPartition(message.key, static_cast<uint32_t>(num_partitions)));
    } else {
      partition = static_cast<int32_t>(t->round_robin.fetch_add(1) %
                                       static_cast<uint64_t>(num_partitions));
    }
  }
  if (partition >= num_partitions) {
    return Status::InvalidArgument("partition out of range");
  }
  if (message.timestamp == 0) message.timestamp = clock_->NowMs();
  message.partition = partition;
  int64_t offset = t->partitions[static_cast<size_t>(partition)]->Append(std::move(message));
  metrics_.GetCounter("broker." + name_ + ".produced")->Increment();
  ProduceResult result;
  result.partition = partition;
  result.offset = offset;
  return result;
}

Status Broker::Replicate(const std::string& topic, const Message& message) {
  Topic* t = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!available_) return Status::Unavailable("cluster " + name_ + " down");
    Result<Topic*> found = FindTopic(topic);
    if (!found.ok()) return found.status();
    t = found.value();
  }
  if (message.partition < 0 ||
      message.partition >= static_cast<int32_t>(t->partitions.size())) {
    return Status::InvalidArgument("replicate: bad partition");
  }
  return t->partitions[static_cast<size_t>(message.partition)]->AppendWithOffset(message);
}

Result<std::vector<Message>> Broker::Fetch(const std::string& topic, int32_t partition,
                                           int64_t offset, size_t max_messages) const {
  const PartitionLog* log = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!available_) return Status::Unavailable("cluster " + name_ + " down");
    Result<Topic*> found = FindTopic(topic);
    if (!found.ok()) return found.status();
    Topic* t = found.value();
    if (partition < 0 || partition >= static_cast<int32_t>(t->partitions.size())) {
      return Status::InvalidArgument("partition out of range");
    }
    log = t->partitions[static_cast<size_t>(partition)].get();
  }
  return log->Read(offset, max_messages);
}

Result<int64_t> Broker::BeginOffset(const std::string& topic, int32_t partition) const {
  std::lock_guard<std::mutex> lock(mu_);
  Result<Topic*> found = FindTopic(topic);
  if (!found.ok()) return found.status();
  Topic* t = found.value();
  if (partition < 0 || partition >= static_cast<int32_t>(t->partitions.size())) {
    return Status::InvalidArgument("partition out of range");
  }
  return t->partitions[static_cast<size_t>(partition)]->BeginOffset();
}

Result<int64_t> Broker::EndOffset(const std::string& topic, int32_t partition) const {
  std::lock_guard<std::mutex> lock(mu_);
  Result<Topic*> found = FindTopic(topic);
  if (!found.ok()) return found.status();
  Topic* t = found.value();
  if (partition < 0 || partition >= static_cast<int32_t>(t->partitions.size())) {
    return Status::InvalidArgument("partition out of range");
  }
  return t->partitions[static_cast<size_t>(partition)]->EndOffset();
}

Status Broker::JoinGroup(const std::string& group, const std::string& topic,
                         const std::string& member) {
  std::lock_guard<std::mutex> lock(mu_);
  if (topics_.count(topic) == 0) return Status::NotFound("no topic: " + topic);
  Group& g = groups_[GroupKey(group, topic)];
  if (std::find(g.members.begin(), g.members.end(), member) != g.members.end()) {
    return Status::AlreadyExists("member already in group");
  }
  g.members.push_back(member);
  std::sort(g.members.begin(), g.members.end());
  ++g.generation;
  return Status::Ok();
}

Status Broker::LeaveGroup(const std::string& group, const std::string& topic,
                          const std::string& member) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = groups_.find(GroupKey(group, topic));
  if (it == groups_.end()) return Status::NotFound("no such group");
  auto& members = it->second.members;
  auto pos = std::find(members.begin(), members.end(), member);
  if (pos == members.end()) return Status::NotFound("member not in group");
  members.erase(pos);
  ++it->second.generation;
  return Status::Ok();
}

Result<std::vector<int32_t>> Broker::GetAssignment(const std::string& group,
                                                   const std::string& topic,
                                                   const std::string& member) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto git = groups_.find(GroupKey(group, topic));
  if (git == groups_.end()) return Status::NotFound("no such group");
  const auto& members = git->second.members;
  auto pos = std::find(members.begin(), members.end(), member);
  if (pos == members.end()) return Status::NotFound("member not in group");
  auto tit = topics_.find(topic);
  if (tit == topics_.end()) return Status::NotFound("no topic: " + topic);
  int32_t num_partitions = static_cast<int32_t>(tit->second->partitions.size());
  int32_t member_index = static_cast<int32_t>(pos - members.begin());
  int32_t num_members = static_cast<int32_t>(members.size());
  // Range assignment: partition p goes to member (p % num_members).
  std::vector<int32_t> assigned;
  for (int32_t p = 0; p < num_partitions; ++p) {
    if (p % num_members == member_index) assigned.push_back(p);
  }
  return assigned;
}

int64_t Broker::GroupGeneration(const std::string& group, const std::string& topic) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = groups_.find(GroupKey(group, topic));
  return it == groups_.end() ? 0 : it->second.generation;
}

Status Broker::CommitOffset(const std::string& group, const std::string& topic,
                            int32_t partition, int64_t offset) {
  std::lock_guard<std::mutex> lock(mu_);
  committed_[OffsetKey(group, topic, partition)] = offset;
  return Status::Ok();
}

Result<int64_t> Broker::CommittedOffset(const std::string& group,
                                        const std::string& topic,
                                        int32_t partition) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = committed_.find(OffsetKey(group, topic, partition));
  if (it == committed_.end()) return Status::NotFound("no committed offset");
  return it->second;
}

Result<int64_t> Broker::ConsumerLag(const std::string& group,
                                    const std::string& topic) const {
  std::lock_guard<std::mutex> lock(mu_);
  Result<Topic*> found = FindTopic(topic);
  if (!found.ok()) return found.status();
  Topic* t = found.value();
  int64_t lag = 0;
  for (size_t p = 0; p < t->partitions.size(); ++p) {
    int64_t end = t->partitions[p]->EndOffset();
    int64_t committed = t->partitions[p]->BeginOffset();
    auto it = committed_.find(OffsetKey(group, topic, static_cast<int32_t>(p)));
    if (it != committed_.end()) committed = std::max(committed, it->second);
    lag += std::max<int64_t>(0, end - committed);
  }
  return lag;
}

int64_t Broker::ApplyRetention() {
  std::vector<std::pair<Topic*, RetentionPolicy>> work;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [name, topic] : topics_) {
      work.emplace_back(topic.get(), topic->config.retention);
    }
  }
  int64_t dropped = 0;
  TimestampMs now = clock_->NowMs();
  for (auto& [topic, policy] : work) {
    for (auto& partition : topic->partitions) {
      dropped += partition->ApplyRetention(policy, now);
    }
  }
  if (dropped > 0) {
    metrics_.GetCounter("broker." + name_ + ".retention_dropped")->Increment(dropped);
  }
  return dropped;
}

void Broker::SetAvailable(bool available) {
  std::lock_guard<std::mutex> lock(mu_);
  available_ = available;
}

bool Broker::available() const {
  std::lock_guard<std::mutex> lock(mu_);
  return available_;
}

}  // namespace uberrt::stream
