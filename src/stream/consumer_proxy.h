#ifndef UBERRT_STREAM_CONSUMER_PROXY_H_
#define UBERRT_STREAM_CONSUMER_PROXY_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/executor.h"
#include "common/fault_injector.h"
#include "common/metrics.h"
#include "common/queue.h"
#include "common/status.h"
#include "stream/consumer.h"
#include "stream/dlq.h"
#include "stream/message_bus.h"

namespace uberrt::stream {

/// The user-registered service endpoint the proxy dispatches to — the stand-
/// in for the gRPC endpoint of Figure 4. Must be thread-safe; the proxy
/// invokes it concurrently from its worker pool.
using Endpoint = std::function<Status(const Message&)>;

/// Kafka Consumer Proxy (Section 4.1.3, Figure 4).
///
/// Encapsulates the full consumer complexity behind a thin push interface:
/// the proxy polls Kafka on the application's behalf and *pushes* messages
/// to the registered endpoint from a worker pool whose size is independent
/// of the topic's partition count — lifting Kafka's
/// consumers-per-group <= partitions parallelism cap for slow consumers.
/// Failed dispatches are retried and finally parked in the DLQ, so poison
/// messages never clog live traffic.
struct ConsumerProxyOptions {
    /// Concurrent dispatch workers; may exceed the partition count, which is
    /// the whole point of push-based dispatch for slow consumers.
    int32_t num_workers = 8;
    /// In-place redelivery attempts before a message goes to the DLQ.
    int32_t max_retries = 3;
    size_t poll_batch = 256;
    /// Pending dispatch buffer (bounded: the proxy itself applies
    /// backpressure to its poll loop).
    size_t queue_capacity = 1024;
    /// Pool the dispatch workers run on. nullptr -> the proxy creates a
    /// private pool of num_workers threads. Either way at most num_workers
    /// dispatches run concurrently; the pool size only bounds OS threads.
    common::Executor* executor = nullptr;
    /// Optional fault plane: each dispatch consults
    /// Check("proxy.dispatch.<topic>") before invoking the endpoint; an
    /// injected fault counts as an endpoint failure (retry, then DLQ).
    common::FaultInjector* faults = nullptr;
};

class ConsumerProxy {
 public:
  ConsumerProxy(MessageBus* bus, std::string topic, std::string group,
                Endpoint endpoint, ConsumerProxyOptions options = ConsumerProxyOptions());
  ~ConsumerProxy();

  ConsumerProxy(const ConsumerProxy&) = delete;
  ConsumerProxy& operator=(const ConsumerProxy&) = delete;

  /// Creates side topics, subscribes and starts the poller + worker pool.
  /// Serialized against Stop(): concurrent Start/Stop calls from different
  /// threads are safe and see a consistent running state.
  Status Start();

  /// Drains in-flight work, commits progress and stops all threads.
  void Stop();

  /// Blocks until every message produced so far has been dispatched
  /// (successfully or to the DLQ). Intended for tests and benches.
  Status WaitUntilCaughtUp(int64_t poll_interval_ms = 1);

  int64_t dispatched() const { return dispatched_.load(); }
  int64_t succeeded() const { return succeeded_.load(); }
  int64_t retried() const { return retried_.load(); }
  int64_t dead_lettered() const { return dead_lettered_.load(); }

  DlqManager* dlq() { return &dlq_; }

 private:
  void PollLoop();
  /// Schedules worker tasks on the executor until num_workers are active or
  /// the queue is empty.
  void SpawnWorkers();
  /// One worker task: drains the dispatch queue, then retires its slot.
  void WorkerTask();

  MessageBus* bus_;
  std::string topic_;
  std::string group_;
  Endpoint endpoint_;
  ConsumerProxyOptions options_;
  std::string dispatch_site_;  // "proxy.dispatch.<topic>", cached
  DlqManager dlq_;

  // Serializes Start/Stop so two threads cannot race the pool and queue
  // setup/teardown; never held by the poller or workers.
  std::mutex lifecycle_mu_;
  std::unique_ptr<Consumer> consumer_;
  std::unique_ptr<BoundedQueue<Message>> queue_;
  std::unique_ptr<common::Executor> owned_executor_;  // when options_.executor==nullptr
  common::Executor* executor_ = nullptr;
  common::WaitGroup workers_wg_;  ///< queued+running worker tasks
  std::atomic<int32_t> active_workers_{0};
  std::thread poller_;
  std::atomic<bool> running_{false};
  std::atomic<int64_t> in_flight_{0};
  std::atomic<int64_t> dispatched_{0};
  std::atomic<int64_t> succeeded_{0};
  std::atomic<int64_t> retried_{0};
  std::atomic<int64_t> dead_lettered_{0};
};

}  // namespace uberrt::stream

#endif  // UBERRT_STREAM_CONSUMER_PROXY_H_
