#include "stream/ureplicator.h"

#include <algorithm>

#include "common/hash.h"
#include "common/retry.h"

namespace uberrt::stream {

namespace {

std::string MappingKey(const std::string& route, const TopicPartition& tp) {
  return route + '\0' + tp.topic + '\0' + std::to_string(tp.partition);
}

}  // namespace

void OffsetMappingStore::Checkpoint(const std::string& route, const TopicPartition& tp,
                                    OffsetMapping mapping) {
  std::lock_guard<std::mutex> lock(mu_);
  mappings_[MappingKey(route, tp)].push_back(mapping);
}

Result<OffsetMapping> OffsetMappingStore::LatestAtOrBefore(
    const std::string& route, const TopicPartition& tp, int64_t source_offset) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = mappings_.find(MappingKey(route, tp));
  if (it == mappings_.end()) return Status::NotFound("no checkpoints for route");
  const OffsetMapping* best = nullptr;
  for (const OffsetMapping& m : it->second) {
    if (m.source_offset <= source_offset &&
        (best == nullptr || m.source_offset > best->source_offset)) {
      best = &m;
    }
  }
  if (best == nullptr) return Status::NotFound("no checkpoint at or before offset");
  return *best;
}

Result<OffsetMapping> OffsetMappingStore::LatestByDestinationAtOrBefore(
    const std::string& route, const TopicPartition& tp,
    int64_t destination_offset) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = mappings_.find(MappingKey(route, tp));
  if (it == mappings_.end()) return Status::NotFound("no checkpoints for route");
  const OffsetMapping* best = nullptr;
  for (const OffsetMapping& m : it->second) {
    if (m.destination_offset <= destination_offset &&
        (best == nullptr || m.destination_offset > best->destination_offset)) {
      best = &m;
    }
  }
  if (best == nullptr) return Status::NotFound("no checkpoint at or before offset");
  return *best;
}

std::vector<OffsetMapping> OffsetMappingStore::GetAll(const std::string& route,
                                                      const TopicPartition& tp) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = mappings_.find(MappingKey(route, tp));
  if (it == mappings_.end()) return {};
  return it->second;
}

Result<OffsetMapping> OffsetMappingStore::Earliest(const std::string& route,
                                                   const TopicPartition& tp) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = mappings_.find(MappingKey(route, tp));
  if (it == mappings_.end() || it->second.empty()) {
    return Status::NotFound("no checkpoints for route");
  }
  return it->second.front();
}

UReplicator::UReplicator(Broker* source, Broker* destination, std::string route,
                         OffsetMappingStore* mapping_store,
                         UReplicatorOptions options)
    : source_(source),
      destination_(destination),
      route_(std::move(route)),
      copy_site_("ureplicator.copy." + route_),
      mapping_store_(mapping_store),
      options_(options) {
  for (int32_t i = 0; i < options_.num_workers; ++i) {
    active_workers_.insert(next_worker_id_++);
  }
  for (int32_t i = 0; i < options_.num_standby_workers; ++i) {
    standby_workers_.insert(next_worker_id_++);
  }
}

int32_t UReplicator::LeastLoadedWorkerLocked() const {
  std::map<int32_t, int64_t> load;
  for (int32_t w : active_workers_) load[w] = 0;
  for (const auto& [tp, state] : partitions_) {
    if (load.count(state.owner) > 0) ++load[state.owner];
  }
  int32_t best = -1;
  int64_t best_load = 0;
  for (const auto& [worker, count] : load) {
    if (best == -1 || count < best_load) {
      best = worker;
      best_load = count;
    }
  }
  return best;
}

Status UReplicator::AddTopic(const std::string& topic) {
  Result<int32_t> partitions = source_->NumPartitions(topic);
  if (!partitions.ok()) return partitions.status();
  if (!destination_->HasTopic(topic)) {
    Result<TopicConfig> config = source_->GetTopicConfig(topic);
    if (!config.ok()) return config.status();
    UBERRT_RETURN_IF_ERROR(destination_->CreateTopic(topic, config.value()));
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (active_workers_.empty()) return Status::FailedPrecondition("no active workers");
  for (int32_t p = 0; p < partitions.value(); ++p) {
    TopicPartition tp{topic, p};
    if (partitions_.count(tp) > 0) continue;
    PartitionState state;
    state.owner = LeastLoadedWorkerLocked();
    Result<int64_t> begin = source_->BeginOffset(topic, p);
    if (!begin.ok()) return begin.status();
    state.source_position = begin.value();
    partitions_[tp] = state;
  }
  return Status::Ok();
}

int64_t UReplicator::RehashAllLocked() {
  // Naive strategy: deterministic hash of the partition over the *current*
  // sorted worker list. Any membership change shifts most assignments.
  std::vector<int32_t> workers(active_workers_.begin(), active_workers_.end());
  int64_t moved = 0;
  for (auto& [tp, state] : partitions_) {
    int32_t target =
        workers[Fnv1a64(tp.ToString()) % static_cast<uint64_t>(workers.size())];
    if (state.owner != target) {
      state.owner = target;
      ++moved;
    }
  }
  return moved;
}

Result<int64_t> UReplicator::RemoveWorker(int32_t worker_id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (active_workers_.erase(worker_id) == 0) {
    return Status::NotFound("no active worker " + std::to_string(worker_id));
  }
  if (active_workers_.empty()) {
    active_workers_.insert(worker_id);
    return Status::FailedPrecondition("cannot remove last worker");
  }
  int64_t moved = 0;
  if (options_.rebalance_mode == RebalanceMode::kFullRehash) {
    moved = RehashAllLocked();
  } else {
    // Minimal movement: only the dead worker's partitions are reassigned,
    // each to the currently least-loaded survivor.
    for (auto& [tp, state] : partitions_) {
      if (state.owner == worker_id) {
        state.owner = LeastLoadedWorkerLocked();
        ++moved;
      }
    }
  }
  partitions_moved_total_.fetch_add(moved, std::memory_order_relaxed);
  return moved;
}

Result<int64_t> UReplicator::AddWorker() {
  std::lock_guard<std::mutex> lock(mu_);
  int32_t id = next_worker_id_++;
  active_workers_.insert(id);
  int64_t moved = 0;
  if (options_.rebalance_mode == RebalanceMode::kFullRehash) {
    moved = RehashAllLocked();
  } else {
    // Minimal movement: steal just enough partitions to even the load.
    int64_t target_load =
        static_cast<int64_t>(partitions_.size()) /
        static_cast<int64_t>(active_workers_.size());
    std::map<int32_t, int64_t> load;
    for (const auto& [tp, state] : partitions_) ++load[state.owner];
    for (auto& [tp, state] : partitions_) {
      if (moved >= target_load) break;
      if (load[state.owner] > target_load) {
        --load[state.owner];
        state.owner = id;
        ++moved;
      }
    }
  }
  partitions_moved_total_.fetch_add(moved, std::memory_order_relaxed);
  return moved;
}

void UReplicator::RedistributeBurstsLocked() {
  if (standby_workers_.empty()) return;
  // Find the bursting partitions, then even them out over the combined
  // active+standby pool: overloaded workers shed bursting partitions to
  // standbys until everyone is at the fair share. This is what "dynamically
  // redistribute the load to the standby workers" buys: extra copy
  // capacity, not a different bottleneck.
  std::vector<std::map<TopicPartition, PartitionState>::iterator> bursting;
  std::map<int32_t, int64_t> burst_count;
  for (auto it = partitions_.begin(); it != partitions_.end(); ++it) {
    Result<int64_t> end = source_->EndOffset(it->first.topic, it->first.partition);
    if (!end.ok()) continue;
    if (end.value() - it->second.source_position > options_.burst_lag_threshold) {
      bursting.push_back(it);
      ++burst_count[it->second.owner];
    }
  }
  if (bursting.empty()) return;
  int64_t pool_size = static_cast<int64_t>(active_workers_.size()) +
                      static_cast<int64_t>(standby_workers_.size());
  int64_t fair = (static_cast<int64_t>(bursting.size()) + pool_size - 1) / pool_size;
  for (auto& it : bursting) {
    if (burst_count[it->second.owner] <= fair) continue;
    for (int32_t standby : standby_workers_) {
      if (burst_count[standby] < fair) {
        --burst_count[it->second.owner];
        ++burst_count[standby];
        it->second.owner = standby;
        partitions_moved_total_.fetch_add(1, std::memory_order_relaxed);
        break;
      }
    }
  }
}

Result<int64_t> UReplicator::RunOnce() {
  std::lock_guard<std::mutex> lock(mu_);
  RedistributeBurstsLocked();

  // Group partitions by owning logical worker: workers copy in parallel on
  // the executor (mu_ is held, so the groups touch disjoint PartitionState
  // entries and the brokers are thread-safe); within a worker, partitions
  // pump in order under the shared cycle budget.
  std::map<int32_t, std::vector<std::pair<const TopicPartition*, PartitionState*>>>
      by_worker;
  for (auto& [tp, state] : partitions_) {
    by_worker[state.owner].push_back({&tp, &state});
  }

  struct WorkerOutcome {
    int64_t replicated = 0;
    Status status;
  };
  auto run_worker =
      [this](const std::vector<std::pair<const TopicPartition*, PartitionState*>>& parts,
             WorkerOutcome* out) {
        int64_t remaining = options_.worker_cycle_budget;
        for (const auto& [tp_ptr, state] : parts) {
          const TopicPartition& tp = *tp_ptr;
          if (remaining <= 0) break;
          // Injected copy faults and transient broker errors skip the
          // partition for this cycle — it stays at source_position and is
          // retried next pump, so faults only ever add lag.
          if (options_.faults != nullptr && !options_.faults->Check(copy_site_).ok()) {
            transient_skips_.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          int64_t want = std::min<int64_t>(static_cast<int64_t>(options_.batch_size),
                                           remaining);
          if (mapping_store_ != nullptr) {
            // Chunk copies at checkpoint boundaries so offset-mapping
            // fidelity (one mapping per checkpoint_every records) is
            // preserved with batched produce.
            want = std::min(want,
                            options_.checkpoint_every - state->since_checkpoint);
          }
          Result<FetchedBatch> batch = source_->FetchViews(
              tp.topic, tp.partition, state->source_position, static_cast<size_t>(want));
          if (!batch.ok()) {
            if (batch.status().code() == StatusCode::kOutOfRange) {
              // Source truncated under us; skip forward.
              Result<int64_t> begin = source_->BeginOffset(tp.topic, tp.partition);
              if (begin.ok()) state->source_position = begin.value();
              continue;
            }
            if (common::RetryPolicy::IsRetryable(batch.status())) {
              transient_skips_.fetch_add(1, std::memory_order_relaxed);
              continue;
            }
            out->status = batch.status();
            return;
          }
          if (batch.value().empty()) continue;
          // Re-append the fetched frames verbatim (no Message is ever
          // materialized on the copy path); the destination assigns its own
          // offsets from the batch base.
          wire::BatchBuilder builder;
          for (const wire::MessageView& v : batch.value().messages) {
            builder.AddEncodedFrame(v.raw_frame, v.timestamp);
          }
          int64_t last_source = batch.value().messages.back().offset;
          int64_t copied = static_cast<int64_t>(builder.count());
          Result<ProduceResult> produced = destination_->ProduceBatch(
              tp.topic, tp.partition, builder.Finish(), AckMode::kLeader);
          if (!produced.ok()) {
            if (common::RetryPolicy::IsRetryable(produced.status())) {
              // The batch append is atomic: nothing was stored, the
              // partition stays at source_position and retries next cycle.
              transient_skips_.fetch_add(1, std::memory_order_relaxed);
              continue;
            }
            out->status = produced.status();
            return;
          }
          state->source_position = last_source + 1;
          state->since_checkpoint += copied;
          out->replicated += copied;
          remaining -= copied;
          if (mapping_store_ != nullptr && !state->anchored) {
            // Anchor the route's first copied message. Offset sync treats a
            // source with no checkpoint at-or-before the committed offset
            // as never consumed, which is only sound if the first copied
            // batch is always visible in the store.
            mapping_store_->Checkpoint(
                route_, tp,
                OffsetMapping{batch.value().messages.front().offset,
                              produced.value().offset});
            state->anchored = true;
          }
          if (mapping_store_ != nullptr &&
              state->since_checkpoint >= options_.checkpoint_every) {
            mapping_store_->Checkpoint(
                route_, tp,
                OffsetMapping{last_source + 1, produced.value().offset + copied});
            state->since_checkpoint = 0;
          }
        }
      };

  std::vector<WorkerOutcome> outcomes(by_worker.size());
  if (options_.executor != nullptr && by_worker.size() > 1) {
    common::WaitGroup wg;
    size_t slot = 0;
    for (auto& [worker, parts] : by_worker) {
      WorkerOutcome* out = &outcomes[slot++];
      wg.Add(1);
      auto task = [&run_worker, &parts, out, &wg] {
        run_worker(parts, out);
        wg.Done();
      };
      if (!options_.executor->Submit(task)) {
        task();  // pool shut down: degrade to inline
      }
    }
    wg.Wait();
  } else {
    size_t slot = 0;
    for (auto& [worker, parts] : by_worker) {
      run_worker(parts, &outcomes[slot++]);
    }
  }

  int64_t replicated = 0;
  for (const WorkerOutcome& out : outcomes) {
    if (!out.status.ok()) return out.status;
    replicated += out.replicated;
  }
  return replicated;
}

Result<int64_t> UReplicator::RunUntilCaughtUp(int32_t max_cycles) {
  int64_t total = 0;
  for (int32_t i = 0; i < max_cycles; ++i) {
    Result<int64_t> n = RunOnce();
    if (!n.ok()) return n.status();
    total += n.value();
    Result<int64_t> lag = TotalLag();
    if (!lag.ok()) return lag.status();
    if (lag.value() == 0) return total;
  }
  return Status::Timeout("not caught up after max_cycles");
}

Result<int64_t> UReplicator::TotalLag() const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t lag = 0;
  for (const auto& [tp, state] : partitions_) {
    Result<int64_t> end = source_->EndOffset(tp.topic, tp.partition);
    if (!end.ok()) return end.status();
    lag += std::max<int64_t>(0, end.value() - state.source_position);
  }
  return lag;
}

int32_t UReplicator::OwnerOf(const TopicPartition& tp) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = partitions_.find(tp);
  return it == partitions_.end() ? -1 : it->second.owner;
}

std::vector<int32_t> UReplicator::ActiveWorkers() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {active_workers_.begin(), active_workers_.end()};
}

}  // namespace uberrt::stream
