#include "stream/federation.h"

#include <algorithm>

#include "stream/assignment.h"

namespace uberrt::stream {

namespace {

std::string GroupKey(const std::string& group, const std::string& topic) {
  return group + '\0' + topic;
}

std::string OffsetKey(const std::string& group, const std::string& topic,
                      int32_t partition) {
  return group + '\0' + topic + '\0' + std::to_string(partition);
}

}  // namespace

Status KafkaFederation::AddCluster(std::unique_ptr<Broker> cluster,
                                   int32_t topic_capacity) {
  if (!cluster) return Status::InvalidArgument("null cluster");
  if (topic_capacity <= 0) return Status::InvalidArgument("capacity must be positive");
  std::lock_guard<std::mutex> lock(mu_);
  std::string name = cluster->name();
  if (clusters_.count(name) > 0) return Status::AlreadyExists("cluster: " + name);
  ClusterEntry entry;
  entry.broker = std::move(cluster);
  entry.topic_capacity = topic_capacity;
  clusters_.emplace(std::move(name), std::move(entry));
  return Status::Ok();
}

Result<std::shared_ptr<Broker>> KafkaFederation::GetCluster(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = clusters_.find(name);
  if (it == clusters_.end()) return Status::NotFound("no cluster: " + name);
  return it->second.broker;
}

std::vector<std::string> KafkaFederation::ListClusters() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  for (const auto& [name, entry] : clusters_) out.push_back(name);
  return out;
}

Result<std::string> KafkaFederation::HostingCluster(const std::string& topic) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = topic_to_cluster_.find(topic);
  if (it == topic_to_cluster_.end()) return Status::NotFound("no topic: " + topic);
  return it->second;
}

Result<KafkaFederation::ClusterEntry*> KafkaFederation::PickClusterLocked() {
  ClusterEntry* best = nullptr;
  for (auto& [name, entry] : clusters_) {
    if (!entry.broker->available()) continue;
    if (entry.hosted_topics >= entry.topic_capacity) continue;
    if (best == nullptr || entry.hosted_topics < best->hosted_topics) best = &entry;
  }
  if (best == nullptr) {
    return Status::ResourceExhausted("all clusters full or down; add a cluster");
  }
  return best;
}

Result<std::shared_ptr<Broker>> KafkaFederation::RouteLocked(
    const std::string& topic) const {
  auto it = topic_to_cluster_.find(topic);
  if (it == topic_to_cluster_.end()) return Status::NotFound("no topic: " + topic);
  auto cit = clusters_.find(it->second);
  if (cit == clusters_.end()) return Status::Internal("dangling cluster route");
  return cit->second.broker;
}

Result<std::shared_ptr<Broker>> KafkaFederation::Route(const std::string& topic) const {
  std::lock_guard<std::mutex> lock(mu_);
  return RouteLocked(topic);
}

Status KafkaFederation::CreateTopic(const std::string& topic, TopicConfig config) {
  std::lock_guard<std::mutex> lock(mu_);
  if (topic_to_cluster_.count(topic) > 0) {
    return Status::AlreadyExists("topic exists: " + topic);
  }
  Result<ClusterEntry*> picked = PickClusterLocked();
  if (!picked.ok()) return picked.status();
  UBERRT_RETURN_IF_ERROR(picked.value()->broker->CreateTopic(topic, config));
  picked.value()->hosted_topics++;
  topic_to_cluster_[topic] = picked.value()->broker->name();
  topic_configs_[topic] = config;
  topics_created_->Increment();
  return Status::Ok();
}

bool KafkaFederation::HasTopic(const std::string& topic) const {
  std::lock_guard<std::mutex> lock(mu_);
  return topic_to_cluster_.count(topic) > 0;
}

Result<int32_t> KafkaFederation::NumPartitions(const std::string& topic) const {
  Result<std::shared_ptr<Broker>> broker = Route(topic);
  if (!broker.ok()) return broker.status();
  return broker.value()->NumPartitions(topic);
}

Result<ProduceResult> KafkaFederation::Produce(const std::string& topic,
                                               Message message, AckMode ack) {
  Result<std::shared_ptr<Broker>> broker = Route(topic);
  if (!broker.ok()) return broker.status();
  Result<ProduceResult> result = broker.value()->Produce(topic, message, ack);
  if (result.ok() || !result.status().IsUnavailable()) return result;
  // Hosting cluster is down: fail the topic over to a healthy cluster and
  // retry once. This is the availability improvement of federation.
  UBERRT_RETURN_IF_ERROR(FailoverTopic(topic));
  Result<std::shared_ptr<Broker>> rerouted = Route(topic);
  if (!rerouted.ok()) return rerouted.status();
  failover_produces_->Increment();
  return rerouted.value()->Produce(topic, std::move(message), ack);
}

Result<ProduceResult> KafkaFederation::ProduceBatch(const std::string& topic,
                                                    int32_t partition,
                                                    const wire::EncodedBatch& batch,
                                                    AckMode ack) {
  Result<std::shared_ptr<Broker>> broker = Route(topic);
  if (!broker.ok()) return broker.status();
  Result<ProduceResult> result = broker.value()->ProduceBatch(topic, partition, batch, ack);
  if (result.ok() || !result.status().IsUnavailable()) return result;
  // Hosting cluster is down: fail over and retry once, exactly like the
  // per-message path. The batch was not appended (acked-or-error holds).
  UBERRT_RETURN_IF_ERROR(FailoverTopic(topic));
  Result<std::shared_ptr<Broker>> rerouted = Route(topic);
  if (!rerouted.ok()) return rerouted.status();
  failover_produces_->Increment();
  return rerouted.value()->ProduceBatch(topic, partition, batch, ack);
}

Result<FetchedBatch> KafkaFederation::FetchViews(const std::string& topic,
                                                 int32_t partition, int64_t offset,
                                                 size_t max_messages) const {
  Result<std::shared_ptr<Broker>> broker = Route(topic);
  if (!broker.ok()) return broker.status();
  return broker.value()->FetchViews(topic, partition, offset, max_messages);
}

Result<std::vector<Message>> KafkaFederation::Fetch(const std::string& topic,
                                                    int32_t partition, int64_t offset,
                                                    size_t max_messages) const {
  Result<std::shared_ptr<Broker>> broker = Route(topic);
  if (!broker.ok()) return broker.status();
  return broker.value()->Fetch(topic, partition, offset, max_messages);
}

Result<int64_t> KafkaFederation::BeginOffset(const std::string& topic,
                                             int32_t partition) const {
  Result<std::shared_ptr<Broker>> broker = Route(topic);
  if (!broker.ok()) return broker.status();
  return broker.value()->BeginOffset(topic, partition);
}

Result<int64_t> KafkaFederation::EndOffset(const std::string& topic,
                                           int32_t partition) const {
  Result<std::shared_ptr<Broker>> broker = Route(topic);
  if (!broker.ok()) return broker.status();
  return broker.value()->EndOffset(topic, partition);
}

Status KafkaFederation::MigrateTopic(const std::string& topic,
                                     const std::string& target_cluster) {
  std::shared_ptr<Broker> source;
  std::shared_ptr<Broker> target;
  TopicConfig config;
  {
    std::lock_guard<std::mutex> lock(mu_);
    Result<std::shared_ptr<Broker>> src = RouteLocked(topic);
    if (!src.ok()) return src.status();
    source = src.value();
    if (source->name() == target_cluster) {
      return Status::InvalidArgument("topic already on " + target_cluster);
    }
    auto cit = clusters_.find(target_cluster);
    if (cit == clusters_.end()) return Status::NotFound("no cluster: " + target_cluster);
    if (cit->second.hosted_topics >= cit->second.topic_capacity) {
      return Status::ResourceExhausted("target cluster full");
    }
    target = cit->second.broker;
    config = topic_configs_[topic];
  }
  // Copy data preserving partition/offset so consumer positions stay valid.
  UBERRT_RETURN_IF_ERROR(target->CreateTopic(topic, config));
  Result<int32_t> partitions = source->NumPartitions(topic);
  if (!partitions.ok()) return partitions.status();
  for (int32_t p = 0; p < partitions.value(); ++p) {
    Result<int64_t> begin = source->BeginOffset(topic, p);
    Result<int64_t> end = source->EndOffset(topic, p);
    if (!begin.ok()) return begin.status();
    if (!end.ok()) return end.status();
    int64_t offset = begin.value();
    while (offset < end.value()) {
      Result<std::vector<Message>> batch = source->Fetch(topic, p, offset, 1024);
      if (!batch.ok()) return batch.status();
      if (batch.value().empty()) break;
      for (const Message& m : batch.value()) {
        UBERRT_RETURN_IF_ERROR(target->Replicate(topic, m));
      }
      offset = batch.value().back().offset + 1;
    }
  }
  // Flip the route atomically; in-flight consumers continue seamlessly.
  {
    std::lock_guard<std::mutex> lock(mu_);
    std::string old_cluster = topic_to_cluster_[topic];
    clusters_[old_cluster].hosted_topics--;
    clusters_[target_cluster].hosted_topics++;
    topic_to_cluster_[topic] = target_cluster;
  }
  source->DeleteTopic(topic).ok();
  migrations_->Increment();
  return Status::Ok();
}

Status KafkaFederation::FailoverTopic(const std::string& topic) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = topic_to_cluster_.find(topic);
  if (it == topic_to_cluster_.end()) return Status::NotFound("no topic: " + topic);
  auto old_cluster = clusters_.find(it->second);
  if (old_cluster != clusters_.end() && old_cluster->second.broker->available()) {
    return Status::FailedPrecondition("hosting cluster is healthy");
  }
  Result<ClusterEntry*> picked = PickClusterLocked();
  if (!picked.ok()) return picked.status();
  UBERRT_RETURN_IF_ERROR(
      picked.value()->broker->CreateTopic(topic, topic_configs_[topic]));
  if (old_cluster != clusters_.end()) old_cluster->second.hosted_topics--;
  picked.value()->hosted_topics++;
  it->second = picked.value()->broker->name();
  failovers_->Increment();
  return Status::Ok();
}

Status KafkaFederation::JoinGroup(const std::string& group, const std::string& topic,
                                  const std::string& member) {
  std::lock_guard<std::mutex> lock(mu_);
  if (topic_to_cluster_.count(topic) == 0) return Status::NotFound("no topic: " + topic);
  Group& g = groups_[GroupKey(group, topic)];
  if (std::find(g.members.begin(), g.members.end(), member) != g.members.end()) {
    return Status::AlreadyExists("member already in group");
  }
  g.members.push_back(member);
  std::sort(g.members.begin(), g.members.end());
  ++g.generation;
  return Status::Ok();
}

Status KafkaFederation::LeaveGroup(const std::string& group, const std::string& topic,
                                   const std::string& member) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = groups_.find(GroupKey(group, topic));
  if (it == groups_.end()) return Status::NotFound("no such group");
  auto& members = it->second.members;
  auto pos = std::find(members.begin(), members.end(), member);
  if (pos == members.end()) return Status::NotFound("member not in group");
  members.erase(pos);
  ++it->second.generation;
  return Status::Ok();
}

Result<std::vector<int32_t>> KafkaFederation::GetAssignment(
    const std::string& group, const std::string& topic,
    const std::string& member) const {
  int32_t num_partitions = 0;
  {
    Result<int32_t> n = NumPartitions(topic);
    if (!n.ok()) return n.status();
    num_partitions = n.value();
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto git = groups_.find(GroupKey(group, topic));
  if (git == groups_.end()) return Status::NotFound("no such group");
  const auto& members = git->second.members;
  auto pos = std::find(members.begin(), members.end(), member);
  if (pos == members.end()) return Status::NotFound("member not in group");
  int32_t member_index = static_cast<int32_t>(pos - members.begin());
  int32_t num_members = static_cast<int32_t>(members.size());
  return RangeAssignment(num_partitions, num_members, member_index);
}

int64_t KafkaFederation::GroupGeneration(const std::string& group,
                                         const std::string& topic) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = groups_.find(GroupKey(group, topic));
  return it == groups_.end() ? 0 : it->second.generation;
}

Status KafkaFederation::CommitOffset(const std::string& group, const std::string& topic,
                                     int32_t partition, int64_t offset) {
  std::lock_guard<std::mutex> lock(mu_);
  committed_[OffsetKey(group, topic, partition)] = offset;
  return Status::Ok();
}

Result<int64_t> KafkaFederation::CommittedOffset(const std::string& group,
                                                 const std::string& topic,
                                                 int32_t partition) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = committed_.find(OffsetKey(group, topic, partition));
  if (it == committed_.end()) return Status::NotFound("no committed offset");
  return it->second;
}

Result<int64_t> KafkaFederation::ConsumerLag(const std::string& group,
                                             const std::string& topic) const {
  Result<std::shared_ptr<Broker>> broker = Route(topic);
  if (!broker.ok()) return broker.status();
  Result<int32_t> partitions = broker.value()->NumPartitions(topic);
  if (!partitions.ok()) return partitions.status();
  int64_t lag = 0;
  for (int32_t p = 0; p < partitions.value(); ++p) {
    Result<int64_t> end = broker.value()->EndOffset(topic, p);
    if (!end.ok()) return end.status();
    int64_t committed;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = committed_.find(OffsetKey(group, topic, p));
      if (it != committed_.end()) {
        committed = it->second;
      } else {
        Result<int64_t> begin = broker.value()->BeginOffset(topic, p);
        if (!begin.ok()) return begin.status();
        committed = begin.value();
      }
    }
    lag += std::max<int64_t>(0, end.value() - committed);
  }
  return lag;
}

}  // namespace uberrt::stream
