#ifndef UBERRT_STREAM_WIRE_H_
#define UBERRT_STREAM_WIRE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "common/clock.h"
#include "common/status.h"
#include "stream/message.h"

namespace uberrt::stream::wire {

/// Compact binary frame format for the partition log (DESIGN.md "Binary log
/// format"). All integers are network byte order (big-endian).
///
/// Record frame — one message:
///
///   u32  frame_len      bytes that follow this length field
///   u64  timestamp      application/event timestamp (ms)
///   u32  key_len        then key bytes
///   u32  value_len      then value bytes
///   u32  header_count   then per header: u32 key_len, key, u32 value_len, value
///
/// Batch — the unit of append, CRC and retention:
///
///   u32  magic          kBatchMagic ("UBRT")
///   u32  record_count
///   u32  payload_len    bytes of record frames that follow the header
///   u32  crc32          CRC-32C (Castagnoli) over the payload only
///   u64  max_timestamp  largest record timestamp in the batch
///   payload             record_count record frames, back to back
///
/// Offsets and partitions are *not* stored in frames: a record's offset is
/// implied by the batch base offset plus its index, which is what lets
/// replication re-append fetched frames verbatim while the destination
/// assigns its own offsets.

inline constexpr uint32_t kBatchMagic = 0x55425254;  // "UBRT"
inline constexpr size_t kBatchHeaderSize = 4 + 4 + 4 + 4 + 8;
/// frame_len of an empty message: timestamp + key_len + value_len + header_count.
inline constexpr size_t kMinFrameLen = 8 + 4 + 4 + 4;

// --- primitive append/read helpers (network byte order) ---------------------

inline void AppendU8(std::string& buf, uint8_t v) {
  buf.push_back(static_cast<char>(v));
}

/// Patches a u32 into an already-sized buffer (reserved header slots).
inline void WriteU32(char* p, uint32_t v) {
  p[0] = static_cast<char>((v >> 24) & 0xFF);
  p[1] = static_cast<char>((v >> 16) & 0xFF);
  p[2] = static_cast<char>((v >> 8) & 0xFF);
  p[3] = static_cast<char>(v & 0xFF);
}

inline void WriteU64(char* p, uint64_t v) {
  WriteU32(p, static_cast<uint32_t>(v >> 32));
  WriteU32(p + 4, static_cast<uint32_t>(v & 0xFFFFFFFFULL));
}

inline void AppendU32(std::string& buf, uint32_t v) {
  char b[4];
  WriteU32(b, v);
  buf.append(b, 4);
}

inline void AppendU64(std::string& buf, uint64_t v) {
  char b[8];
  WriteU64(b, v);
  buf.append(b, 8);
}

inline uint32_t ReadU32(const char* p) {
  const auto* u = reinterpret_cast<const unsigned char*>(p);
  return (static_cast<uint32_t>(u[0]) << 24) | (static_cast<uint32_t>(u[1]) << 16) |
         (static_cast<uint32_t>(u[2]) << 8) | static_cast<uint32_t>(u[3]);
}

inline uint64_t ReadU64(const char* p) {
  return (static_cast<uint64_t>(ReadU32(p)) << 32) | ReadU32(p + 4);
}

/// CRC-32C (Castagnoli polynomial, reflected) — the checksum Kafka uses for
/// record batches. Hardware-accelerated (SSE4.2) when the CPU supports it,
/// slicing-by-8 software fallback otherwise; the scope of the checksum is
/// one batch payload.
uint32_t Crc32(const char* data, size_t n);

inline uint32_t Crc32(std::string_view data) { return Crc32(data.data(), data.size()); }

// --- record frames ----------------------------------------------------------

/// Encodes `m` as one record frame appended to `buf`. The encoded size is
/// exactly `m.FrameSize()` (the one authoritative byte accounting).
void AppendFrame(std::string& buf, const Message& m);

/// Borrowed, zero-copy view of one record inside a log arena segment. The
/// string_views point into memory owned by the log (or an EncodedBatch);
/// validity follows the pin that produced the view (see FetchedBatch).
struct MessageView {
  std::string_view key;
  std::string_view value;
  TimestampMs timestamp = 0;
  int64_t offset = -1;     ///< assigned at read time from the batch base offset
  int32_t partition = -1;  ///< assigned at read time by the broker
  /// The whole encoded frame including its length prefix — re-appendable
  /// verbatim via BatchBuilder::AddEncodedFrame (replication hot path).
  std::string_view raw_frame;
  /// Concatenated header entries (u32 klen, key, u32 vlen, value) x count.
  std::string_view headers_raw;
  uint32_t header_count = 0;

  /// Linear scan for a header value; false when absent.
  bool GetHeader(std::string_view name, std::string_view* out) const;

  /// Deep-copies into an owning Message — the compatibility boundary where
  /// ownership is genuinely needed (endpoints, DLQ, checkpoints).
  Message ToMessage() const;
};

/// Bounds-checked decode of the frame starting at (*pos); advances *pos past
/// it. Corruption on any truncated or inconsistent length.
Result<MessageView> DecodeFrame(std::string_view data, size_t* pos);

/// Unchecked decode for data that already passed ValidateBatch (the log only
/// serves views from validated arena segments). This is the fetch hot path:
/// a handful of length reads, no branches on malformed input.
MessageView DecodeFrameTrusted(std::string_view data, size_t* pos);

// --- batches ----------------------------------------------------------------

/// A sealed, CRC'd batch ready for a single-memcpy append into a partition
/// log. `data` holds the batch header followed by the payload.
struct EncodedBatch {
  std::string data;
  uint32_t record_count = 0;
  int64_t max_timestamp = 0;

  size_t bytes() const { return data.size(); }
};

/// Accumulates record frames, then seals them into an EncodedBatch with one
/// CRC pass. Records are encoded directly after a reserved header slot, so
/// Finish() patches the header and *moves* the buffer out — sealing a batch
/// never copies the payload. Reusable after Finish().
class BatchBuilder {
 public:
  BatchBuilder() { Reset(); }

  /// Encodes the message directly into the payload buffer (no Message copy).
  void Add(const Message& m);

  /// Appends an already-encoded record frame verbatim (e.g. a fetched view's
  /// raw_frame) — replication never materializes Messages.
  void AddEncodedFrame(std::string_view frame, TimestampMs timestamp);

  bool empty() const { return count_ == 0; }
  uint32_t count() const { return count_; }
  /// Payload bytes so far (excludes the batch header).
  size_t payload_bytes() const { return payload_.size() - kBatchHeaderSize; }
  int64_t max_timestamp() const { return max_timestamp_; }

  /// Seals the accumulated records into a batch and resets the builder.
  EncodedBatch Finish();

 private:
  void Reset();

  std::string payload_;  ///< header placeholder + record frames
  uint32_t count_ = 0;
  int64_t max_timestamp_ = 0;
};

/// Validates a batch end to end: magic, header/payload sizes, CRC, and a
/// full bounds-checked walk of every record frame. A batch that passes is
/// safe to index and serve views from without further checks.
Status ValidateBatch(std::string_view batch);

/// Iterates the records of a validated batch (validates on Open).
class BatchReader {
 public:
  /// Corruption / InvalidArgument when the batch fails validation.
  static Result<BatchReader> Open(std::string_view batch);

  uint32_t record_count() const { return record_count_; }
  int64_t max_timestamp() const { return max_timestamp_; }
  bool Done() const { return read_ == record_count_; }

  /// Next record frame as a view into the batch buffer.
  Result<MessageView> Next();

 private:
  BatchReader(std::string_view payload, uint32_t record_count, int64_t max_timestamp)
      : payload_(payload), record_count_(record_count), max_timestamp_(max_timestamp) {}

  std::string_view payload_;
  uint32_t record_count_ = 0;
  int64_t max_timestamp_ = 0;
  uint32_t read_ = 0;
  size_t pos_ = 0;
};

}  // namespace uberrt::stream::wire

#endif  // UBERRT_STREAM_WIRE_H_
