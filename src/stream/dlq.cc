#include "stream/dlq.h"

#include <vector>

namespace uberrt::stream {

Status DlqManager::EnsureTopics(const std::string& topic) {
  if (!bus_->HasTopic(topic)) return Status::NotFound("no topic: " + topic);
  Result<int32_t> partitions = bus_->NumPartitions(topic);
  if (!partitions.ok()) return partitions.status();
  TopicConfig config;
  config.num_partitions = partitions.value();
  for (const std::string& side : {RetryTopic(topic), DlqTopic(topic)}) {
    if (!bus_->HasTopic(side)) {
      Status s = bus_->CreateTopic(side, config);
      if (!s.ok() && !s.IsAlreadyExists()) return s;
    }
  }
  return Status::Ok();
}

int32_t DlqManager::RetryCount(const Message& message) {
  auto it = message.headers.find(kHeaderRetryCount);
  if (it == message.headers.end()) return 0;
  return static_cast<int32_t>(std::stol(it->second));
}

Status DlqManager::HandleFailure(const std::string& topic, Message message) {
  int32_t retries = RetryCount(message);
  message.headers[kHeaderRetryCount] = std::to_string(retries + 1);
  message.offset = -1;  // will be re-assigned by the side topic
  const std::string target =
      retries < options_.max_retries ? RetryTopic(topic) : DlqTopic(topic);
  Result<ProduceResult> produced = bus_->Produce(target, std::move(message),
                                                 AckMode::kLeader);
  if (!produced.ok()) return produced.status();
  return Status::Ok();
}

Result<int64_t> DlqManager::DrainDlq(const std::string& topic,
                                     const std::string& consumer_group,
                                     bool reinject) {
  const std::string dlq = DlqTopic(topic);
  Result<int32_t> partitions = bus_->NumPartitions(dlq);
  if (!partitions.ok()) return partitions.status();
  int64_t handled = 0;
  for (int32_t p = 0; p < partitions.value(); ++p) {
    int64_t position;
    Result<int64_t> committed = bus_->CommittedOffset(consumer_group, dlq, p);
    if (committed.ok()) {
      position = committed.value();
    } else {
      Result<int64_t> begin = bus_->BeginOffset(dlq, p);
      if (!begin.ok()) return begin.status();
      position = begin.value();
    }
    while (true) {
      Result<std::vector<Message>> batch = bus_->Fetch(dlq, p, position, 256);
      if (!batch.ok()) return batch.status();
      if (batch.value().empty()) break;
      for (Message& m : batch.value()) {
        position = m.offset + 1;
        ++handled;
        if (reinject) {
          m.headers[kHeaderRetryCount] = "0";
          m.offset = -1;
          Result<ProduceResult> produced =
              bus_->Produce(topic, std::move(m), AckMode::kLeader);
          if (!produced.ok()) return produced.status();
        }
      }
    }
    UBERRT_RETURN_IF_ERROR(bus_->CommitOffset(consumer_group, dlq, p, position));
  }
  return handled;
}

Result<int64_t> DlqManager::Merge(const std::string& topic,
                                  const std::string& consumer_group) {
  return DrainDlq(topic, consumer_group, /*reinject=*/true);
}

Result<int64_t> DlqManager::Purge(const std::string& topic,
                                  const std::string& consumer_group) {
  return DrainDlq(topic, consumer_group, /*reinject=*/false);
}

Result<int64_t> DlqManager::DlqDepth(const std::string& topic) const {
  const std::string dlq = DlqTopic(topic);
  Result<int32_t> partitions = bus_->NumPartitions(dlq);
  if (!partitions.ok()) return partitions.status();
  int64_t depth = 0;
  for (int32_t p = 0; p < partitions.value(); ++p) {
    Result<int64_t> begin = bus_->BeginOffset(dlq, p);
    Result<int64_t> end = bus_->EndOffset(dlq, p);
    if (!begin.ok()) return begin.status();
    if (!end.ok()) return end.status();
    depth += end.value() - begin.value();
  }
  return depth;
}

}  // namespace uberrt::stream
