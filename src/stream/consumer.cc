#include "stream/consumer.h"

namespace uberrt::stream {

Consumer::Consumer(MessageBus* bus, std::string group, std::string topic,
                   std::string member_id, OffsetReset reset)
    : bus_(bus),
      group_(std::move(group)),
      topic_(std::move(topic)),
      member_id_(std::move(member_id)),
      reset_(reset) {}

Consumer::~Consumer() {
  if (subscribed_) Close().ok();
}

Status Consumer::Subscribe() {
  if (subscribed_) return Status::FailedPrecondition("already subscribed");
  UBERRT_RETURN_IF_ERROR(bus_->JoinGroup(group_, topic_, member_id_));
  subscribed_ = true;
  seen_generation_ = -1;  // force assignment refresh on first poll
  return Status::Ok();
}

Status Consumer::Close() {
  if (!subscribed_) return Status::Ok();
  subscribed_ = false;
  return bus_->LeaveGroup(group_, topic_, member_id_);
}

Result<int64_t> Consumer::InitialOffset(int32_t partition) const {
  Result<int64_t> committed = bus_->CommittedOffset(group_, topic_, partition);
  if (committed.ok()) return committed.value();
  if (reset_ == OffsetReset::kEarliest) return bus_->BeginOffset(topic_, partition);
  return bus_->EndOffset(topic_, partition);
}

Status Consumer::RefreshAssignmentIfNeeded() {
  int64_t generation = bus_->GroupGeneration(group_, topic_);
  if (generation == seen_generation_) return Status::Ok();
  Result<std::vector<int32_t>> assignment = bus_->GetAssignment(group_, topic_, member_id_);
  if (!assignment.ok()) return assignment.status();
  assignment_ = std::move(assignment.value());
  seen_generation_ = generation;
  next_partition_index_ = 0;
  std::map<int32_t, int64_t> fresh;
  for (int32_t p : assignment_) {
    auto it = positions_.find(p);
    if (it != positions_.end()) {
      fresh[p] = it->second;  // keep progress across rebalance
    } else {
      Result<int64_t> initial = InitialOffset(p);
      if (!initial.ok()) return initial.status();
      fresh[p] = initial.value();
    }
  }
  positions_ = std::move(fresh);
  return Status::Ok();
}

Result<std::vector<Message>> Consumer::Poll(size_t max_messages) {
  Result<FetchedBatch> views = PollViews(max_messages);
  if (!views.ok()) return views.status();
  return views.value().ToMessages();
}

Result<FetchedBatch> Consumer::PollViews(size_t max_messages) {
  if (!subscribed_) return Status::FailedPrecondition("not subscribed");
  UBERRT_RETURN_IF_ERROR(RefreshAssignmentIfNeeded());
  FetchedBatch out;
  if (assignment_.empty()) return out;
  size_t partitions_tried = 0;
  while (out.size() < max_messages && partitions_tried < assignment_.size()) {
    int32_t partition = assignment_[next_partition_index_];
    next_partition_index_ = (next_partition_index_ + 1) % assignment_.size();
    ++partitions_tried;
    int64_t position = positions_[partition];
    Result<FetchedBatch> batch =
        bus_->FetchViews(topic_, partition, position, max_messages - out.size());
    if (!batch.ok()) {
      if (batch.status().code() == StatusCode::kOutOfRange) {
        // Truncated under us (retention): jump to the earliest retained.
        Result<int64_t> begin = bus_->BeginOffset(topic_, partition);
        if (!begin.ok()) return begin.status();
        positions_[partition] = begin.value();
        continue;
      }
      return batch.status();
    }
    if (!batch.value().empty()) {
      positions_[partition] = batch.value().messages.back().offset + 1;
      partitions_tried = 0;  // found data; keep cycling
      out.Merge(std::move(batch.value()));
    }
  }
  return out;
}

Status Consumer::Commit() {
  if (!subscribed_) return Status::FailedPrecondition("not subscribed");
  for (const auto& [partition, offset] : positions_) {
    UBERRT_RETURN_IF_ERROR(bus_->CommitOffset(group_, topic_, partition, offset));
  }
  return Status::Ok();
}

}  // namespace uberrt::stream
