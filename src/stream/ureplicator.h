#ifndef UBERRT_STREAM_UREPLICATOR_H_
#define UBERRT_STREAM_UREPLICATOR_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "common/executor.h"
#include "common/fault_injector.h"
#include "common/metrics.h"
#include "common/status.h"
#include "stream/broker.h"

namespace uberrt::stream {

/// One replicated topic partition.
struct TopicPartition {
  std::string topic;
  int32_t partition = 0;

  bool operator<(const TopicPartition& other) const {
    if (topic != other.topic) return topic < other.topic;
    return partition < other.partition;
  }
  bool operator==(const TopicPartition& other) const {
    return topic == other.topic && partition == other.partition;
  }
  std::string ToString() const { return topic + "/" + std::to_string(partition); }
};

/// Source-offset -> destination-offset mapping checkpoint, periodically
/// written by uReplicator into the "active-active database" of Figure 7.
/// The offset sync job (allactive module) reads these to translate an
/// active-passive consumer's progress between regions.
struct OffsetMapping {
  int64_t source_offset = 0;
  int64_t destination_offset = 0;
};

/// Store of offset-mapping checkpoints, keyed by replication route
/// (e.g. "regionA->aggA"), topic and partition.
class OffsetMappingStore {
 public:
  void Checkpoint(const std::string& route, const TopicPartition& tp,
                  OffsetMapping mapping);

  /// Latest checkpoint whose source_offset <= `source_offset`, i.e. the safe
  /// resume point in the destination for a consumer at `source_offset` in
  /// the source. NotFound when no checkpoint qualifies.
  Result<OffsetMapping> LatestAtOrBefore(const std::string& route,
                                         const TopicPartition& tp,
                                         int64_t source_offset) const;

  /// Latest checkpoint whose destination_offset <= `destination_offset` —
  /// the inverse lookup the offset sync job uses to translate a consumer's
  /// committed aggregate offset back to a source position.
  Result<OffsetMapping> LatestByDestinationAtOrBefore(const std::string& route,
                                                      const TopicPartition& tp,
                                                      int64_t destination_offset) const;

  /// All checkpoints for a route/tp, in checkpoint order.
  std::vector<OffsetMapping> GetAll(const std::string& route,
                                    const TopicPartition& tp) const;

  /// Earliest checkpoint for a route/tp — the anchor written when the route
  /// copies its first batch, i.e. where this source's first message landed
  /// in the destination. NotFound when the route has copied nothing yet.
  Result<OffsetMapping> Earliest(const std::string& route,
                                 const TopicPartition& tp) const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::vector<OffsetMapping>> mappings_;
};

/// How partitions are reassigned when workers come and go.
enum class RebalanceMode {
  /// uReplicator's algorithm (Section 4.1.4): only partitions that lost
  /// their worker move; everything else stays put.
  kMinimalMovement,
  /// The naive baseline: hash every partition over the current worker list,
  /// moving most of them on any membership change.
  kFullRehash,
};

/// Cross-cluster Kafka replicator modeled on Uber's uReplicator
/// (Section 4.1.4): copies topics from a source cluster to a destination
/// cluster using a pool of workers, with
///  - a rebalancing algorithm that minimizes affected partitions when
///    workers join or fail,
///  - standby workers that absorb bursty traffic (partitions whose lag
///    exceeds a threshold are temporarily handed to standbys), and
///  - periodic offset-mapping checkpoints for the active/passive failover
///    story of Section 6.
///
/// Deterministic: replication advances via RunOnce() pump cycles; "workers"
/// are logical owners, which keeps rebalance behaviour exactly observable
/// in tests and benches.
struct UReplicatorOptions {
    int32_t num_workers = 4;
    int32_t num_standby_workers = 1;
    RebalanceMode rebalance_mode = RebalanceMode::kMinimalMovement;
    /// Messages between offset-mapping checkpoints.
    int64_t checkpoint_every = 100;
    /// Lag above which a partition is moved to a standby worker.
  int64_t burst_lag_threshold = 5000;
  size_t batch_size = 512;
  /// Max messages one worker copies per RunOnce (its cycle throughput);
  /// this is what makes extra standby workers actually add capacity.
  int64_t worker_cycle_budget = INT64_MAX;
  /// Pool for RunOnce's per-worker copy fan-out. nullptr -> each logical
  /// worker's partitions are pumped serially (deterministic order, the mode
  /// the rebalance tests rely on).
  common::Executor* executor = nullptr;
  /// Optional fault plane: each partition pump consults
  /// Check("ureplicator.copy.<route>"); injected faults (and transient
  /// Unavailable/Timeout broker errors) skip the partition for this cycle
  /// instead of failing the pump — replication lag, never data loss.
  common::FaultInjector* faults = nullptr;
};

/// Cross-cluster replicator; see file comment above.
class UReplicator {
 public:
  /// Replicates from `source` to `destination` (topics keep their names and
  /// partition counts). `route` names this replication path in the offset
  /// mapping store. `mapping_store` may be null when offset sync is unused.
  /// The brokers and store are borrowed, not owned: the caller must keep
  /// them alive for the replicator's lifetime (they are held as raw
  /// pointers). Individual broker calls are safe against concurrent topic
  /// churn on the brokers themselves (shared_ptr topic ownership).
  UReplicator(Broker* source, Broker* destination, std::string route,
              OffsetMappingStore* mapping_store,
              UReplicatorOptions options = UReplicatorOptions());

  /// Starts replicating a topic; creates the destination topic when absent.
  /// Partitions are assigned to the least-loaded active workers.
  Status AddTopic(const std::string& topic);

  /// Attaches (or detaches, with nullptr) the fault plane after
  /// construction; equivalent to UReplicatorOptions::faults.
  void SetFaultInjector(common::FaultInjector* faults) {
    std::lock_guard<std::mutex> lock(mu_);
    options_.faults = faults;
  }

  /// Worker lifecycle. Returns how many partitions moved, which is the
  /// metric the paper's rebalancing claim is about.
  Result<int64_t> RemoveWorker(int32_t worker_id);
  Result<int64_t> AddWorker();

  /// One replication pump: every active worker copies up to batch_size
  /// messages per owned partition. Returns messages replicated. Handles
  /// burst redistribution to standby workers before pumping.
  Result<int64_t> RunOnce();

  /// Runs until fully caught up (bounded by `max_cycles`).
  Result<int64_t> RunUntilCaughtUp(int32_t max_cycles = 1000);

  /// Total replication lag over all owned partitions.
  Result<int64_t> TotalLag() const;

  /// Current owner of a partition, or -1.
  int32_t OwnerOf(const TopicPartition& tp) const;

  /// Active (non-standby) worker ids currently alive.
  std::vector<int32_t> ActiveWorkers() const;

  int64_t partitions_moved_total() const {
    return partitions_moved_total_.load(std::memory_order_relaxed);
  }

  /// Partition pumps skipped this far because of injected faults or
  /// transient broker errors (the copy retries next cycle).
  int64_t transient_skips() const {
    return transient_skips_.load(std::memory_order_relaxed);
  }

 private:
  struct PartitionState {
    int32_t owner = -1;
    int64_t source_position = 0;
    int64_t since_checkpoint = 0;
    // Whether the first copied batch has been anchored in the mapping
    // store. Offset sync relies on every active route/partition having a
    // mapping at its first copied message: "no checkpoint at or before the
    // committed offset" then proves the consumer saw nothing of that
    // source, rather than meaning the source is merely between checkpoints.
    bool anchored = false;
  };

  int32_t LeastLoadedWorkerLocked() const;
  int64_t RehashAllLocked();
  void RedistributeBurstsLocked();

  Broker* source_;
  Broker* destination_;
  std::string route_;
  std::string copy_site_;  // "ureplicator.copy.<route>", cached
  OffsetMappingStore* mapping_store_;
  UReplicatorOptions options_;

  mutable std::mutex mu_;
  std::set<int32_t> active_workers_;
  std::set<int32_t> standby_workers_;
  int32_t next_worker_id_ = 0;
  std::map<TopicPartition, PartitionState> partitions_;
  // Atomic: read by the accessor without taking mu_ while RunOnce/rebalance
  // threads bump it under the lock.
  std::atomic<int64_t> partitions_moved_total_{0};
  std::atomic<int64_t> transient_skips_{0};
};

}  // namespace uberrt::stream

#endif  // UBERRT_STREAM_UREPLICATOR_H_
