#ifndef UBERRT_STREAM_PRODUCER_H_
#define UBERRT_STREAM_PRODUCER_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "stream/message_bus.h"

namespace uberrt::stream {

/// Client-side batching knobs — Kafka's batch.size / linger.ms levers, the
/// dominant throughput controls per the benchmark-practices catalog in
/// PAPERS.md.
struct BatchingProducerOptions {
  /// Flush a partition's buffer when it holds this many records...
  size_t batch_records = 512;
  /// ...or this many encoded payload bytes...
  size_t batch_bytes = 64 * 1024;
  /// ...or when its oldest buffered record has waited this long. <= 0 means
  /// no time budget (flush on size or explicitly).
  int64_t linger_ms = 5;
  AckMode ack = AckMode::kLeader;
};

/// Batching producer for one topic: messages are encoded straight into
/// per-partition wire::BatchBuilder buffers (client-side partitioning with
/// the broker's key-hash/round-robin rules) and shipped with
/// MessageBus::ProduceBatch — one routed, single-memcpy append per batch
/// instead of one per message.
///
/// Delivery contract: Produce() buffers and returns Ok; a batch is durable
/// only once its flush returns Ok. A failed flush keeps the sealed batch
/// pending and retries it on the next flush of that partition, so a
/// transient cluster outage (or federation failover) delays delivery but
/// never silently drops buffered records. Call Flush() before relying on
/// acked-or-error.
///
/// Not thread-safe: one producer per thread, like the Kafka client.
class BatchingProducer {
 public:
  BatchingProducer(MessageBus* bus, std::string topic,
                   BatchingProducerOptions options = {},
                   Clock* clock = SystemClock::Instance());
  /// Best-effort flush of anything still buffered.
  ~BatchingProducer();

  BatchingProducer(const BatchingProducer&) = delete;
  BatchingProducer& operator=(const BatchingProducer&) = delete;

  /// Buffers the message (stamping timestamp 0 with the clock, as the broker
  /// does for per-message produce) and flushes any partition that hit its
  /// record, byte, or linger budget.
  Status Produce(const Message& message);

  /// Flushes every partition with buffered or pending data.
  Status Flush();

  /// Flushes only partitions whose linger budget has expired. Call from a
  /// poll loop when traffic is sparse.
  Status MaybeFlushLinger();

  /// Records successfully acked by the bus.
  int64_t produced() const { return produced_; }
  /// Batches shipped (the produce amortization factor is produced/batches).
  int64_t batches_flushed() const { return batches_flushed_; }
  /// Records currently buffered or pending retry.
  int64_t buffered() const { return buffered_; }

 private:
  struct PartitionBuffer {
    wire::BatchBuilder builder;
    TimestampMs oldest_buffered_ms = 0;  ///< wall clock of the first buffered record
    std::optional<wire::EncodedBatch> pending;  ///< sealed but unacked batch
  };

  Status EnsurePartitions();
  Status FlushPartition(int32_t partition);

  MessageBus* bus_;
  std::string topic_;
  BatchingProducerOptions options_;
  Clock* clock_;
  std::vector<PartitionBuffer> buffers_;
  uint64_t round_robin_ = 0;
  int64_t produced_ = 0;
  int64_t batches_flushed_ = 0;
  int64_t buffered_ = 0;
};

}  // namespace uberrt::stream

#endif  // UBERRT_STREAM_PRODUCER_H_
