#ifndef UBERRT_STREAM_BROKER_H_
#define UBERRT_STREAM_BROKER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/fault_injector.h"
#include "common/metrics.h"
#include "common/status.h"
#include "stream/admission.h"
#include "stream/log.h"
#include "stream/message.h"
#include "stream/message_bus.h"

namespace uberrt::stream {

/// Physical-cluster behaviour knobs.
///
/// `num_nodes` together with the coordination model reproduces the empirical
/// observation of Section 4.1.1 that "the ideal cluster size is less than
/// 150 nodes for optimum performance": every produce pays a coordination
/// cost (controller metadata + replication bookkeeping) that grows
/// superlinearly with cluster size, so aggregate cluster capacity
/// (nodes x per-produce rate) peaks near 120-150 nodes and degrades beyond.
/// With `coordination_model_enabled = false` (the default) no artificial
/// work is done.
struct BrokerOptions {
  int32_t num_nodes = 3;
  bool coordination_model_enabled = false;
  /// Per-produce busy-work iterations: base + quad * num_nodes^2.
  double coordination_base_iters = 30.0;
  double coordination_quad_iters = 0.004;
};

/// One physical Kafka-like cluster: topics of partitioned append-only logs,
/// producer acks, consumer-group coordination with committed offsets, and
/// retention enforcement.
///
/// Thread-safe: every public method may be called concurrently with every
/// other, including DeleteTopic and SetAvailable racing in-flight
/// produce/fetch traffic. Topics are `shared_ptr`-owned — an operation takes
/// a reference under the topic-map lock and keeps the topic (and its
/// partition logs) alive for the duration of the call, so a concurrent
/// DeleteTopic never invalidates data another thread is touching; the topic
/// is destroyed when the last in-flight operation drops its reference. Three
/// independent locks (topic map, group map, committed-offset map) keep
/// produce/fetch on different topics and group coordination from
/// serializing on one broker-wide mutex; see DESIGN.md "Threading model"
/// for the lock ordering rules.
class Broker : public MessageBus {
 public:
  explicit Broker(std::string name, BrokerOptions options = {},
                  Clock* clock = SystemClock::Instance());

  const std::string& name() const { return name_; }
  const BrokerOptions& options() const { return options_; }

  // --- Topic management -------------------------------------------------

  Status CreateTopic(const std::string& topic, TopicConfig config) override;
  /// Removes the topic from the map. In-flight operations that already hold
  /// a reference finish against the orphaned logs; new calls get NotFound.
  Status DeleteTopic(const std::string& topic);
  bool HasTopic(const std::string& topic) const override;
  Result<TopicConfig> GetTopicConfig(const std::string& topic) const;
  std::vector<std::string> ListTopics() const;
  Result<int32_t> NumPartitions(const std::string& topic) const override;

  // --- Produce / fetch ---------------------------------------------------

  /// Appends a message. The partition is `message.partition` when >= 0,
  /// otherwise derived from the key hash, otherwise round-robin.
  /// A missing topic is NotFound even while the cluster is unavailable, so
  /// retry logic never spins on a topic that will never exist.
  Result<ProduceResult> Produce(const std::string& topic, Message message,
                                AckMode ack = AckMode::kLeader) override;

  /// Appends a pre-encoded batch to one explicit partition with a single
  /// memcpy into the partition log's arena segment — the per-batch costs
  /// (topic lookup, availability/fault gates, coordination work) are paid
  /// once for the whole batch. Non-lossless topics drop the entire batch
  /// while the cluster is down, mirroring Produce.
  Result<ProduceResult> ProduceBatch(const std::string& topic, int32_t partition,
                                     const wire::EncodedBatch& batch,
                                     AckMode ack = AckMode::kLeader) override;

  /// Appends preserving message.offset/partition (federated topic migration).
  Status Replicate(const std::string& topic, const Message& message);

  Result<std::vector<Message>> Fetch(const std::string& topic, int32_t partition,
                                     int64_t offset, size_t max_messages) const override;

  /// Zero-copy batch fetch: borrowed views into the partition log's arena
  /// segments, no per-message allocation (see FetchedBatch lifetime rules).
  Result<FetchedBatch> FetchViews(const std::string& topic, int32_t partition,
                                  int64_t offset, size_t max_messages) const override;

  Result<int64_t> BeginOffset(const std::string& topic, int32_t partition) const override;
  Result<int64_t> EndOffset(const std::string& topic, int32_t partition) const override;

  // --- Consumer group coordination ---------------------------------------

  /// Adds the member to the group for the topic and triggers a rebalance.
  Status JoinGroup(const std::string& group, const std::string& topic,
                   const std::string& member) override;
  Status LeaveGroup(const std::string& group, const std::string& topic,
                    const std::string& member) override;
  /// Range assignment of the topic's partitions for this member: partitions
  /// are split into contiguous blocks, one block per member in sorted member
  /// order (Kafka's default strategy). Bumps with every membership change;
  /// poll loops re-read it each cycle.
  Result<std::vector<int32_t>> GetAssignment(const std::string& group,
                                             const std::string& topic,
                                             const std::string& member) const override;
  /// Rebalance generation for (group, topic); starts at 0.
  int64_t GroupGeneration(const std::string& group, const std::string& topic) const override;

  Status CommitOffset(const std::string& group, const std::string& topic,
                      int32_t partition, int64_t offset) override;
  /// NotFound until the first commit.
  Result<int64_t> CommittedOffset(const std::string& group, const std::string& topic,
                                  int32_t partition) const override;

  /// Sum over partitions of (end offset - committed offset) for the group.
  Result<int64_t> ConsumerLag(const std::string& group, const std::string& topic) const override;

  // --- Operations ---------------------------------------------------------

  /// Applies every topic's retention policy; returns total dropped messages.
  int64_t ApplyRetention();

  /// Simulates a whole-cluster outage (tolerated by federation, Section 4.1.1).
  void SetAvailable(bool available);
  bool available() const;

  /// Attaches the process-wide fault plane. Produce consults
  /// Check("broker.produce.<name>") and Fetch Check("broker.fetch.<name>")
  /// after the availability gate, so an injected produce fault always means
  /// the message was NOT appended (acked-or-error for lossless topics).
  void SetFaultInjector(common::FaultInjector* faults) {
    faults_.store(faults, std::memory_order_release);
  }

  /// Attaches a capacity admission layer consulted on every Produce /
  /// ProduceBatch after the availability and fault gates, before the append
  /// (a rejected produce was never stored). Priority comes from the
  /// message's kHeaderPriority header; batches are admitted at kImportant
  /// with units = record_count. Replicate() is exempt: replication is
  /// internal traffic whose source was already admitted. Pass nullptr to
  /// detach. The admission object must outlive the broker or be detached
  /// first.
  void SetAdmission(ProduceAdmission* admission) {
    admission_.store(admission, std::memory_order_release);
  }

  MetricsRegistry* metrics() { return &metrics_; }

 private:
  /// Immutable shape after creation: `config` and the `partitions` vector
  /// never change (PartitionLog is internally synchronized), so holders of a
  /// shared_ptr<Topic> may read them without any broker lock.
  struct Topic {
    TopicConfig config;
    std::vector<std::unique_ptr<PartitionLog>> partitions;
    std::atomic<uint64_t> round_robin{0};
  };
  struct Group {
    std::vector<std::string> members;  // sorted
    int64_t generation = 0;
  };

  /// Looks up the topic under `topics_mu_` and returns an owning reference.
  Result<std::shared_ptr<Topic>> FindTopic(const std::string& topic) const;
  void SpinCoordinationWork(AckMode ack) const;

  std::string name_;
  BrokerOptions options_;
  Clock* clock_;

  // Lock order (when nesting is unavoidable): topics_mu_ -> groups_mu_ ->
  // offsets_mu_. Current code never holds two at once; broker calls into
  // PartitionLog (its own mutex) only after releasing broker locks or from
  // an owned shared_ptr.
  mutable std::mutex topics_mu_;   // guards topics_ (the map, not the Topics)
  std::map<std::string, std::shared_ptr<Topic>> topics_;
  mutable std::mutex groups_mu_;   // guards groups_
  // keyed by group + '\0' + topic
  std::map<std::string, Group> groups_;
  mutable std::mutex offsets_mu_;  // guards committed_
  std::map<std::string, int64_t> committed_;  // group\0topic\0partition -> offset
  std::atomic<bool> available_{true};
  std::atomic<common::FaultInjector*> faults_{nullptr};
  std::atomic<ProduceAdmission*> admission_{nullptr};
  // Cached site names so the hot path does not concatenate per call.
  std::string produce_site_;
  std::string fetch_site_;
  mutable MetricsRegistry metrics_;
  // Hot-path counters resolved once; MetricsRegistry pointers are stable.
  Counter* produced_counter_;
  Counter* dropped_counter_;
  Counter* retention_dropped_counter_;
};

}  // namespace uberrt::stream

#endif  // UBERRT_STREAM_BROKER_H_
