#ifndef UBERRT_STREAM_BROKER_H_
#define UBERRT_STREAM_BROKER_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/metrics.h"
#include "common/status.h"
#include "stream/log.h"
#include "stream/message.h"
#include "stream/message_bus.h"

namespace uberrt::stream {

/// Physical-cluster behaviour knobs.
///
/// `num_nodes` together with the coordination model reproduces the empirical
/// observation of Section 4.1.1 that "the ideal cluster size is less than
/// 150 nodes for optimum performance": every produce pays a coordination
/// cost (controller metadata + replication bookkeeping) that grows
/// superlinearly with cluster size, so aggregate cluster capacity
/// (nodes x per-produce rate) peaks near 120-150 nodes and degrades beyond.
/// With `coordination_model_enabled = false` (the default) no artificial
/// work is done.
struct BrokerOptions {
  int32_t num_nodes = 3;
  bool coordination_model_enabled = false;
  /// Per-produce busy-work iterations: base + quad * num_nodes^2.
  double coordination_base_iters = 30.0;
  double coordination_quad_iters = 0.004;
};

/// One physical Kafka-like cluster: topics of partitioned append-only logs,
/// producer acks, consumer-group coordination with committed offsets, and
/// retention enforcement. Thread-safe.
class Broker : public MessageBus {
 public:
  explicit Broker(std::string name, BrokerOptions options = {},
                  Clock* clock = SystemClock::Instance());

  const std::string& name() const { return name_; }
  const BrokerOptions& options() const { return options_; }

  // --- Topic management -------------------------------------------------

  Status CreateTopic(const std::string& topic, TopicConfig config) override;
  Status DeleteTopic(const std::string& topic);
  bool HasTopic(const std::string& topic) const override;
  Result<TopicConfig> GetTopicConfig(const std::string& topic) const;
  std::vector<std::string> ListTopics() const;
  Result<int32_t> NumPartitions(const std::string& topic) const override;

  // --- Produce / fetch ---------------------------------------------------

  /// Appends a message. The partition is `message.partition` when >= 0,
  /// otherwise derived from the key hash, otherwise round-robin.
  Result<ProduceResult> Produce(const std::string& topic, Message message,
                                AckMode ack = AckMode::kLeader) override;

  /// Appends preserving message.offset/partition (federated topic migration).
  Status Replicate(const std::string& topic, const Message& message);

  Result<std::vector<Message>> Fetch(const std::string& topic, int32_t partition,
                                     int64_t offset, size_t max_messages) const override;

  Result<int64_t> BeginOffset(const std::string& topic, int32_t partition) const override;
  Result<int64_t> EndOffset(const std::string& topic, int32_t partition) const override;

  // --- Consumer group coordination ---------------------------------------

  /// Adds the member to the group for the topic and triggers a rebalance.
  Status JoinGroup(const std::string& group, const std::string& topic,
                   const std::string& member) override;
  Status LeaveGroup(const std::string& group, const std::string& topic,
                    const std::string& member) override;
  /// Range assignment of the topic's partitions for this member. Bumps with
  /// every membership change; poll loops re-read it each cycle.
  Result<std::vector<int32_t>> GetAssignment(const std::string& group,
                                             const std::string& topic,
                                             const std::string& member) const override;
  /// Rebalance generation for (group, topic); starts at 0.
  int64_t GroupGeneration(const std::string& group, const std::string& topic) const override;

  Status CommitOffset(const std::string& group, const std::string& topic,
                      int32_t partition, int64_t offset) override;
  /// NotFound until the first commit.
  Result<int64_t> CommittedOffset(const std::string& group, const std::string& topic,
                                  int32_t partition) const override;

  /// Sum over partitions of (end offset - committed offset) for the group.
  Result<int64_t> ConsumerLag(const std::string& group, const std::string& topic) const override;

  // --- Operations ---------------------------------------------------------

  /// Applies every topic's retention policy; returns total dropped messages.
  int64_t ApplyRetention();

  /// Simulates a whole-cluster outage (tolerated by federation, Section 4.1.1).
  void SetAvailable(bool available);
  bool available() const;

  MetricsRegistry* metrics() { return &metrics_; }

 private:
  struct Topic {
    TopicConfig config;
    std::vector<std::unique_ptr<PartitionLog>> partitions;
    std::atomic<uint64_t> round_robin{0};
  };
  struct Group {
    std::vector<std::string> members;  // sorted
    int64_t generation = 0;
  };

  Result<Topic*> FindTopic(const std::string& topic) const;
  void SpinCoordinationWork(AckMode ack) const;

  std::string name_;
  BrokerOptions options_;
  Clock* clock_;

  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Topic>> topics_;
  // keyed by group + '\0' + topic
  std::map<std::string, Group> groups_;
  std::map<std::string, int64_t> committed_;  // group\0topic\0partition -> offset
  bool available_ = true;
  mutable MetricsRegistry metrics_;
};

}  // namespace uberrt::stream

#endif  // UBERRT_STREAM_BROKER_H_
