#include "stream/log.h"

#include <algorithm>

namespace uberrt::stream {

int64_t PartitionLog::AppendBatchLocked(const wire::EncodedBatch& batch) {
  size_t need = batch.data.size();
  if (!arena_ || arena_->size() + need > arena_->capacity()) {
    // Fixed-capacity arenas: appends never exceed the reserved capacity, so
    // the data pointer is stable for the segment's lifetime and outstanding
    // views never dangle.
    arena_ = std::make_shared<std::string>();
    arena_->reserve(std::max(need, options_.segment_bytes));
  }
  BatchMeta meta;
  meta.arena = arena_;
  meta.begin = static_cast<uint32_t>(arena_->size());
  arena_->append(batch.data);  // the one memcpy
  meta.end = static_cast<uint32_t>(arena_->size());
  meta.base_offset = end_offset_;
  meta.count = batch.record_count;
  hwm_timestamp_ = std::max(hwm_timestamp_, batch.max_timestamp);
  meta.hwm_timestamp = hwm_timestamp_;
  int64_t base = end_offset_;
  end_offset_ += batch.record_count;
  bytes_ += static_cast<int64_t>(need);
  batches_.push_back(std::move(meta));
  return base;
}

int64_t PartitionLog::AppendMessageLocked(const Message& message) {
  wire::BatchBuilder builder;
  builder.Add(message);
  return AppendBatchLocked(builder.Finish());
}

int64_t PartitionLog::Append(Message message) {
  std::lock_guard<std::mutex> lock(mu_);
  return AppendMessageLocked(message);
}

Status PartitionLog::AppendWithOffset(Message message) {
  std::lock_guard<std::mutex> lock(mu_);
  if (message.offset != end_offset_) {
    return Status::InvalidArgument("offset gap: expected " + std::to_string(end_offset_) +
                                   " got " + std::to_string(message.offset));
  }
  AppendMessageLocked(message);
  return Status::Ok();
}

Result<int64_t> PartitionLog::AppendBatch(const wire::EncodedBatch& batch) {
  if (batch.record_count == 0) {
    return Status::InvalidArgument("empty batch");
  }
  UBERRT_RETURN_IF_ERROR(wire::ValidateBatch(batch.data));
  if (wire::ReadU32(batch.data.data() + 4) != batch.record_count) {
    return Status::InvalidArgument("batch record_count does not match header");
  }
  std::lock_guard<std::mutex> lock(mu_);
  return AppendBatchLocked(batch);
}

Result<std::vector<Message>> PartitionLog::Read(int64_t offset,
                                                size_t max_messages) const {
  Result<FetchedBatch> views = ReadViews(offset, max_messages);
  if (!views.ok()) return views.status();
  // Materialize outside the lock: deep copies no longer serialize appends.
  return views.value().ToMessages();
}

Result<FetchedBatch> PartitionLog::ReadViews(int64_t offset,
                                             size_t max_messages) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (offset < begin_offset_) {
    return Status::OutOfRange("offset " + std::to_string(offset) +
                              " below begin offset " + std::to_string(begin_offset_));
  }
  if (offset > end_offset_) {
    return Status::OutOfRange("offset " + std::to_string(offset) +
                              " beyond end offset " + std::to_string(end_offset_));
  }
  FetchedBatch out;
  if (offset == end_offset_ || max_messages == 0) return out;
  // Locate the batch containing `offset`.
  auto it = std::upper_bound(
      batches_.begin(), batches_.end(), offset,
      [](int64_t off, const BatchMeta& b) { return off < b.base_offset; });
  --it;  // offset >= begin_offset_ guarantees a containing batch exists
  out.messages.reserve(std::min<size_t>(
      max_messages, static_cast<size_t>(end_offset_ - offset)));
  int64_t cur = offset;
  for (; it != batches_.end() && out.messages.size() < max_messages; ++it) {
    const BatchMeta& b = *it;
    if (out.pins.empty() || out.pins.back() != b.arena) out.pins.push_back(b.arena);
    std::string_view arena(b.arena->data(), b.end);
    // Seek within the batch by hopping length prefixes — reads almost always
    // start at a batch boundary, so this loop rarely iterates.
    size_t pos = b.begin + wire::kBatchHeaderSize;
    for (int64_t skip = cur - b.base_offset; skip > 0; --skip) {
      pos += 4 + wire::ReadU32(arena.data() + pos);
    }
    // Frames were validated structurally at append time; decode untrusted
    // checks would be pure overhead on the fetch hot path.
    for (size_t ri = static_cast<size_t>(cur - b.base_offset);
         ri < b.count && out.messages.size() < max_messages; ++ri, ++cur) {
      wire::MessageView view = wire::DecodeFrameTrusted(arena, &pos);
      view.offset = cur;
      out.messages.push_back(view);
    }
  }
  return out;
}

int64_t PartitionLog::BeginOffset() const {
  std::lock_guard<std::mutex> lock(mu_);
  return begin_offset_;
}

int64_t PartitionLog::EndOffset() const {
  std::lock_guard<std::mutex> lock(mu_);
  return end_offset_;
}

int64_t PartitionLog::Size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return end_offset_ - begin_offset_;
}

int64_t PartitionLog::Bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_;
}

int64_t PartitionLog::ApplyRetention(const RetentionPolicy& policy, TimestampMs now) {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t dropped = 0;
  auto drop_front = [&] {
    const BatchMeta& b = batches_.front();
    bytes_ -= static_cast<int64_t>(b.end - b.begin);
    begin_offset_ += b.count;
    dropped += b.count;
    batches_.pop_front();
  };
  if (policy.max_age_ms > 0) {
    // Strictly by append order: the monotone watermark means a non-expired
    // batch also fences every batch behind it, and a late-arriving old
    // timestamp inherits the watermark of the data appended before it.
    while (!batches_.empty() &&
           batches_.front().hwm_timestamp < now - policy.max_age_ms) {
      drop_front();
    }
  }
  if (policy.max_bytes > 0) {
    // Never drop the newest batch: the active segment stays readable even
    // when a single batch exceeds the byte budget, so an acked produce is
    // never silently truncated by its own arrival.
    while (batches_.size() > 1 && bytes_ > policy.max_bytes) drop_front();
  }
  return dropped;
}

}  // namespace uberrt::stream
