#include "stream/log.h"

namespace uberrt::stream {

int64_t PartitionLog::Append(Message message) {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t offset = begin_offset_ + static_cast<int64_t>(messages_.size());
  message.offset = offset;
  bytes_ += static_cast<int64_t>(message.ByteSize());
  messages_.push_back(std::move(message));
  return offset;
}

Status PartitionLog::AppendWithOffset(Message message) {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t end = begin_offset_ + static_cast<int64_t>(messages_.size());
  if (message.offset != end) {
    return Status::InvalidArgument("offset gap: expected " + std::to_string(end) +
                                   " got " + std::to_string(message.offset));
  }
  bytes_ += static_cast<int64_t>(message.ByteSize());
  messages_.push_back(std::move(message));
  return Status::Ok();
}

Result<std::vector<Message>> PartitionLog::Read(int64_t offset,
                                                size_t max_messages) const {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t end = begin_offset_ + static_cast<int64_t>(messages_.size());
  if (offset < begin_offset_) {
    return Status::OutOfRange("offset " + std::to_string(offset) +
                              " below begin offset " + std::to_string(begin_offset_));
  }
  if (offset > end) {
    return Status::OutOfRange("offset " + std::to_string(offset) +
                              " beyond end offset " + std::to_string(end));
  }
  std::vector<Message> out;
  size_t start = static_cast<size_t>(offset - begin_offset_);
  size_t count = std::min(max_messages, messages_.size() - start);
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) out.push_back(messages_[start + i]);
  return out;
}

int64_t PartitionLog::BeginOffset() const {
  std::lock_guard<std::mutex> lock(mu_);
  return begin_offset_;
}

int64_t PartitionLog::EndOffset() const {
  std::lock_guard<std::mutex> lock(mu_);
  return begin_offset_ + static_cast<int64_t>(messages_.size());
}

int64_t PartitionLog::Size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(messages_.size());
}

int64_t PartitionLog::Bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_;
}

int64_t PartitionLog::ApplyRetention(const RetentionPolicy& policy, TimestampMs now) {
  std::lock_guard<std::mutex> lock(mu_);
  int64_t dropped = 0;
  auto drop_front = [&] {
    bytes_ -= static_cast<int64_t>(messages_.front().ByteSize());
    messages_.pop_front();
    ++begin_offset_;
    ++dropped;
  };
  if (policy.max_age_ms > 0) {
    while (!messages_.empty() && messages_.front().timestamp < now - policy.max_age_ms) {
      drop_front();
    }
  }
  if (policy.max_bytes > 0) {
    while (!messages_.empty() && bytes_ > policy.max_bytes) drop_front();
  }
  return dropped;
}

}  // namespace uberrt::stream
