#ifndef UBERRT_STREAM_ADMISSION_H_
#define UBERRT_STREAM_ADMISSION_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace uberrt::stream {

/// Traffic priority class for capacity admission (the load-shedding order of
/// "Uber's Failover Architecture": when a region is over budget, dashboards
/// are shed before surge pricing). Lower enum value = more important.
enum class Priority : int32_t {
  kCritical = 0,    ///< revenue / consistency-critical (payments, surge)
  kImportant = 1,   ///< product features that degrade gracefully
  kBestEffort = 2,  ///< dashboards, analytics, internal tooling
};

inline constexpr int32_t kNumPriorities = 3;

inline const char* PriorityName(Priority p) {
  switch (p) {
    case Priority::kCritical: return "critical";
    case Priority::kImportant: return "important";
    case Priority::kBestEffort: return "besteffort";
  }
  return "unknown";
}

/// Parses a priority header value ("critical", "important", "besteffort").
/// Unlabeled traffic defaults to kImportant: legacy producers should neither
/// jump the critical reserve nor be first against the wall.
inline Priority PriorityFromString(const std::string& value) {
  if (value == "critical") return Priority::kCritical;
  if (value == "besteffort") return Priority::kBestEffort;
  return Priority::kImportant;
}

/// Capacity admission consulted by the broker at the produce boundary,
/// before anything is appended. A non-Ok return rejects the produce with
/// nothing stored — kResourceExhausted means "shed, retry later" (the
/// message carries a retry-after hint), anything else is a hard gate.
/// Implementations must be thread-safe; the broker calls from any thread.
class ProduceAdmission {
 public:
  virtual ~ProduceAdmission() = default;

  /// `units` is the admission cost (1 per message, record_count per batch).
  virtual Status AdmitProduce(const std::string& topic, Priority priority,
                              int64_t units) = 0;
};

}  // namespace uberrt::stream

#endif  // UBERRT_STREAM_ADMISSION_H_
