#ifndef UBERRT_STREAM_CHAPERONE_H_
#define UBERRT_STREAM_CHAPERONE_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "stream/message.h"

namespace uberrt::stream {

/// Audit statistics for one tumbling window at one pipeline stage.
struct WindowStats {
  TimestampMs window_start = 0;
  int64_t count = 0;   ///< messages observed
  int64_t unique = 0;  ///< distinct uids observed (duplication = count - unique)
};

/// A detected mismatch between two stages for one window.
struct AuditAlert {
  enum class Kind { kLoss, kDuplication };
  Kind kind = Kind::kLoss;
  std::string topic;
  TimestampMs window_start = 0;
  int64_t upstream_count = 0;
  int64_t downstream_count = 0;

  std::string ToString() const;
};

/// End-to-end auditing service modeled on Uber's Chaperone
/// (Section 4.1.4): every stage of a pipeline (producer, regional Kafka,
/// uReplicator output, aggregate Kafka, Flink input, ...) reports each
/// message it sees; Chaperone buckets the reports into tumbling windows by
/// the message's application timestamp, counts total and unique messages
/// per (stage, topic, window), and raises alerts where adjacent stages
/// disagree — detecting both loss and duplication.
class Chaperone {
 public:
  explicit Chaperone(int64_t window_size_ms = 1000) : window_size_ms_(window_size_ms) {}

  /// Reports one message observation at a stage. Uses the message's `uid`
  /// header for duplicate detection (messages without one are only counted).
  void Record(const std::string& stage, const std::string& topic, const Message& message);

  /// Convenience for synthetic tests.
  void RecordRaw(const std::string& stage, const std::string& topic,
                 TimestampMs event_time, const std::string& uid);

  /// Per-window statistics for a stage/topic, ordered by window start.
  std::vector<WindowStats> GetStats(const std::string& stage,
                                    const std::string& topic) const;

  /// Total messages observed at a stage/topic.
  int64_t TotalCount(const std::string& stage, const std::string& topic) const;

  /// Compares an upstream stage against a downstream stage for one topic and
  /// returns an alert per window where they disagree:
  ///  - downstream unique count < upstream unique count -> loss
  ///  - downstream count > downstream unique            -> duplication
  std::vector<AuditAlert> Compare(const std::string& upstream_stage,
                                  const std::string& downstream_stage,
                                  const std::string& topic) const;

 private:
  struct Bucket {
    int64_t count = 0;
    std::set<std::string> uids;
  };

  TimestampMs WindowStart(TimestampMs t) const {
    return t - (t % window_size_ms_ + window_size_ms_) % window_size_ms_;
  }

  int64_t window_size_ms_;
  mutable std::mutex mu_;
  // (stage \0 topic) -> window start -> bucket
  std::map<std::string, std::map<TimestampMs, Bucket>> buckets_;
};

}  // namespace uberrt::stream

#endif  // UBERRT_STREAM_CHAPERONE_H_
