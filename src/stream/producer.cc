#include "stream/producer.h"

#include "common/hash.h"

namespace uberrt::stream {

BatchingProducer::BatchingProducer(MessageBus* bus, std::string topic,
                                   BatchingProducerOptions options, Clock* clock)
    : bus_(bus), topic_(std::move(topic)), options_(options), clock_(clock) {}

BatchingProducer::~BatchingProducer() { Flush().ok(); }

Status BatchingProducer::EnsurePartitions() {
  if (!buffers_.empty()) return Status::Ok();
  Result<int32_t> n = bus_->NumPartitions(topic_);
  if (!n.ok()) return n.status();
  if (n.value() <= 0) return Status::Internal("topic has no partitions");
  buffers_.resize(static_cast<size_t>(n.value()));
  return Status::Ok();
}

Status BatchingProducer::Produce(const Message& message) {
  UBERRT_RETURN_IF_ERROR(EnsurePartitions());
  int32_t num_partitions = static_cast<int32_t>(buffers_.size());
  // Client-side partitioning with the broker's rules: explicit partition,
  // else key hash, else round-robin (here per message, across batches).
  int32_t partition = message.partition;
  if (partition < 0) {
    if (!message.key.empty()) {
      partition = static_cast<int32_t>(
          KeyToPartition(message.key, static_cast<uint32_t>(num_partitions)));
    } else {
      partition = static_cast<int32_t>(round_robin_++ %
                                       static_cast<uint64_t>(num_partitions));
    }
  }
  if (partition >= num_partitions) {
    return Status::InvalidArgument("partition out of range");
  }
  PartitionBuffer& buf = buffers_[static_cast<size_t>(partition)];
  TimestampMs now = clock_->NowMs();
  if (buf.builder.empty()) buf.oldest_buffered_ms = now;
  if (message.timestamp == 0) {
    Message stamped = message;  // broker stamps per-message produce; we batch
    stamped.timestamp = now;
    buf.builder.Add(stamped);
  } else {
    buf.builder.Add(message);
  }
  ++buffered_;
  if (buf.builder.count() >= options_.batch_records ||
      buf.builder.payload_bytes() >= options_.batch_bytes ||
      (options_.linger_ms > 0 && now - buf.oldest_buffered_ms >= options_.linger_ms)) {
    return FlushPartition(partition);
  }
  return Status::Ok();
}

Status BatchingProducer::FlushPartition(int32_t partition) {
  PartitionBuffer& buf = buffers_[static_cast<size_t>(partition)];
  // Ship the retry of a previously failed batch before sealing new data, so
  // partition order is preserved across transient outages.
  if (buf.pending.has_value()) {
    Result<ProduceResult> retried =
        bus_->ProduceBatch(topic_, partition, *buf.pending, options_.ack);
    if (!retried.ok()) return retried.status();
    produced_ += buf.pending->record_count;
    buffered_ -= buf.pending->record_count;
    ++batches_flushed_;
    buf.pending.reset();
  }
  if (buf.builder.empty()) return Status::Ok();
  wire::EncodedBatch batch = buf.builder.Finish();
  Result<ProduceResult> produced =
      bus_->ProduceBatch(topic_, partition, batch, options_.ack);
  if (!produced.ok()) {
    buf.pending = std::move(batch);  // retried on the next flush
    return produced.status();
  }
  produced_ += batch.record_count;
  buffered_ -= batch.record_count;
  ++batches_flushed_;
  return Status::Ok();
}

Status BatchingProducer::Flush() {
  Status first_error = Status::Ok();
  for (size_t p = 0; p < buffers_.size(); ++p) {
    Status s = FlushPartition(static_cast<int32_t>(p));
    if (!s.ok() && first_error.ok()) first_error = s;
  }
  return first_error;
}

Status BatchingProducer::MaybeFlushLinger() {
  if (options_.linger_ms <= 0) return Status::Ok();
  TimestampMs now = clock_->NowMs();
  Status first_error = Status::Ok();
  for (size_t p = 0; p < buffers_.size(); ++p) {
    PartitionBuffer& buf = buffers_[p];
    if (buf.pending.has_value() ||
        (!buf.builder.empty() &&
         now - buf.oldest_buffered_ms >= options_.linger_ms)) {
      Status s = FlushPartition(static_cast<int32_t>(p));
      if (!s.ok() && first_error.ok()) first_error = s;
    }
  }
  return first_error;
}

}  // namespace uberrt::stream
