#include "stream/wire.h"

#include <array>
#include <cstring>

#if defined(__x86_64__) && defined(__GNUC__)
#include <nmmintrin.h>
#define UBERRT_CRC32C_HW 1
#endif

namespace uberrt::stream::wire {

namespace {

// CRC-32C (Castagnoli, 0x1EDC6F41 reflected) — the polynomial Kafka uses for
// record batches (KIP-98), chosen because commodity CPUs check it in
// hardware. Software fallback is slicing-by-8: eight derived tables let the
// inner loop fold one u64 per iteration instead of one byte.
std::array<std::array<uint32_t, 256>, 8> BuildCrcTables() {
  std::array<std::array<uint32_t, 256>, 8> tables{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0x82F63B78u ^ (c >> 1) : c >> 1;
    }
    tables[0][i] = c;
  }
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = tables[0][i];
    for (int t = 1; t < 8; ++t) {
      c = tables[0][c & 0xFF] ^ (c >> 8);
      tables[t][i] = c;
    }
  }
  return tables;
}

uint32_t Crc32Sw(const char* data, size_t n, uint32_t crc) {
  static const std::array<std::array<uint32_t, 256>, 8> kTables = BuildCrcTables();
  const auto* p = reinterpret_cast<const unsigned char*>(data);
  while (n >= 8) {
    uint64_t chunk;
    std::memcpy(&chunk, p, 8);  // little-endian host assumed for the fold
    chunk ^= crc;
    crc = kTables[7][chunk & 0xFF] ^ kTables[6][(chunk >> 8) & 0xFF] ^
          kTables[5][(chunk >> 16) & 0xFF] ^ kTables[4][(chunk >> 24) & 0xFF] ^
          kTables[3][(chunk >> 32) & 0xFF] ^ kTables[2][(chunk >> 40) & 0xFF] ^
          kTables[1][(chunk >> 48) & 0xFF] ^ kTables[0][chunk >> 56];
    p += 8;
    n -= 8;
  }
  while (n-- > 0) {
    crc = kTables[0][(crc ^ *p++) & 0xFF] ^ (crc >> 8);
  }
  return crc;
}

#ifdef UBERRT_CRC32C_HW
__attribute__((target("sse4.2"))) uint32_t Crc32Hw(const char* data, size_t n,
                                                   uint32_t crc) {
  const auto* p = reinterpret_cast<const unsigned char*>(data);
  uint64_t c = crc;
  while (n >= 8) {
    uint64_t chunk;
    std::memcpy(&chunk, p, 8);
    c = _mm_crc32_u64(c, chunk);
    p += 8;
    n -= 8;
  }
  crc = static_cast<uint32_t>(c);
  while (n-- > 0) {
    crc = _mm_crc32_u8(crc, *p++);
  }
  return crc;
}

bool HasCrc32Hw() {
  static const bool has = __builtin_cpu_supports("sse4.2");
  return has;
}
#endif

}  // namespace

uint32_t Crc32(const char* data, size_t n) {
  uint32_t crc = 0xFFFFFFFFu;
#ifdef UBERRT_CRC32C_HW
  if (HasCrc32Hw()) return Crc32Hw(data, n, crc) ^ 0xFFFFFFFFu;
#endif
  return Crc32Sw(data, n, crc) ^ 0xFFFFFFFFu;
}

void AppendFrame(std::string& buf, const Message& m) {
  // Append-mode with a patched length prefix: one pass over the message
  // (walking the header map twice — once to size, once to write — costs a
  // cache miss per node, and this runs once per produced message).
  size_t start = buf.size();
  buf.append(4, '\0');  // frame_len, patched below
  AppendU64(buf, static_cast<uint64_t>(m.timestamp));
  AppendU32(buf, static_cast<uint32_t>(m.key.size()));
  buf.append(m.key);
  AppendU32(buf, static_cast<uint32_t>(m.value.size()));
  buf.append(m.value);
  AppendU32(buf, static_cast<uint32_t>(m.headers.size()));
  for (const auto& [k, v] : m.headers) {
    AppendU32(buf, static_cast<uint32_t>(k.size()));
    buf.append(k);
    AppendU32(buf, static_cast<uint32_t>(v.size()));
    buf.append(v);
  }
  WriteU32(&buf[start], static_cast<uint32_t>(buf.size() - start - 4));
}

bool MessageView::GetHeader(std::string_view name, std::string_view* out) const {
  size_t pos = 0;
  for (uint32_t i = 0; i < header_count; ++i) {
    uint32_t klen = ReadU32(headers_raw.data() + pos);
    pos += 4;
    std::string_view k = headers_raw.substr(pos, klen);
    pos += klen;
    uint32_t vlen = ReadU32(headers_raw.data() + pos);
    pos += 4;
    if (k == name) {
      *out = headers_raw.substr(pos, vlen);
      return true;
    }
    pos += vlen;
  }
  return false;
}

Message MessageView::ToMessage() const {
  Message m;
  m.key.assign(key);
  m.value.assign(value);
  m.timestamp = timestamp;
  m.offset = offset;
  m.partition = partition;
  size_t pos = 0;
  for (uint32_t i = 0; i < header_count; ++i) {
    uint32_t klen = ReadU32(headers_raw.data() + pos);
    pos += 4;
    std::string k(headers_raw.substr(pos, klen));
    pos += klen;
    uint32_t vlen = ReadU32(headers_raw.data() + pos);
    pos += 4;
    m.headers.emplace(std::move(k), std::string(headers_raw.substr(pos, vlen)));
    pos += vlen;
  }
  return m;
}

Result<MessageView> DecodeFrame(std::string_view data, size_t* pos) {
  size_t p = *pos;
  auto truncated = [] { return Status::Corruption("truncated record frame"); };
  if (p + 4 > data.size()) return truncated();
  uint32_t frame_len = ReadU32(data.data() + p);
  p += 4;
  if (frame_len < kMinFrameLen || p + frame_len > data.size()) return truncated();
  size_t frame_end = p + frame_len;

  MessageView view;
  view.raw_frame = data.substr(*pos, 4 + frame_len);
  view.timestamp = static_cast<TimestampMs>(ReadU64(data.data() + p));
  p += 8;
  uint32_t key_len = ReadU32(data.data() + p);
  p += 4;
  if (p + key_len + 4 > frame_end) return truncated();
  view.key = data.substr(p, key_len);
  p += key_len;
  uint32_t value_len = ReadU32(data.data() + p);
  p += 4;
  if (p + value_len + 4 > frame_end) return truncated();
  view.value = data.substr(p, value_len);
  p += value_len;
  view.header_count = ReadU32(data.data() + p);
  p += 4;
  size_t headers_begin = p;
  for (uint32_t i = 0; i < view.header_count; ++i) {
    if (p + 4 > frame_end) return truncated();
    uint32_t klen = ReadU32(data.data() + p);
    p += 4 + klen;
    if (p + 4 > frame_end) return truncated();
    uint32_t vlen = ReadU32(data.data() + p);
    p += 4 + vlen;
    if (p > frame_end) return truncated();
  }
  if (p != frame_end) {
    return Status::Corruption("record frame length mismatch");
  }
  view.headers_raw = data.substr(headers_begin, frame_end - headers_begin);
  *pos = frame_end;
  return view;
}

MessageView DecodeFrameTrusted(std::string_view data, size_t* pos) {
  size_t p = *pos;
  uint32_t frame_len = ReadU32(data.data() + p);
  p += 4;
  size_t frame_end = p + frame_len;
  MessageView view;
  view.raw_frame = data.substr(*pos, 4 + frame_len);
  view.timestamp = static_cast<TimestampMs>(ReadU64(data.data() + p));
  p += 8;
  uint32_t key_len = ReadU32(data.data() + p);
  p += 4;
  view.key = data.substr(p, key_len);
  p += key_len;
  uint32_t value_len = ReadU32(data.data() + p);
  p += 4;
  view.value = data.substr(p, value_len);
  p += value_len;
  view.header_count = ReadU32(data.data() + p);
  p += 4;
  // Validation already proved the header region spans exactly to frame_end,
  // so there is no need to walk the entries here.
  view.headers_raw = data.substr(p, frame_end - p);
  *pos = frame_end;
  return view;
}

void BatchBuilder::Add(const Message& m) {
  AppendFrame(payload_, m);
  if (count_ == 0 || m.timestamp > max_timestamp_) max_timestamp_ = m.timestamp;
  ++count_;
}

void BatchBuilder::AddEncodedFrame(std::string_view frame, TimestampMs timestamp) {
  payload_.append(frame);
  if (count_ == 0 || timestamp > max_timestamp_) max_timestamp_ = timestamp;
  ++count_;
}

void BatchBuilder::Reset() {
  payload_.assign(kBatchHeaderSize, '\0');
  count_ = 0;
  max_timestamp_ = 0;
}

EncodedBatch BatchBuilder::Finish() {
  EncodedBatch batch;
  batch.record_count = count_;
  batch.max_timestamp = max_timestamp_;
  char* h = payload_.data();
  WriteU32(h, kBatchMagic);
  WriteU32(h + 4, count_);
  WriteU32(h + 8, static_cast<uint32_t>(payload_.size() - kBatchHeaderSize));
  WriteU32(h + 12,
           Crc32(payload_.data() + kBatchHeaderSize, payload_.size() - kBatchHeaderSize));
  WriteU64(h + 16, static_cast<uint64_t>(max_timestamp_));
  batch.data = std::move(payload_);  // seal without copying the payload
  Reset();
  return batch;
}

Status ValidateBatch(std::string_view batch) {
  if (batch.size() < kBatchHeaderSize) {
    return Status::Corruption("batch shorter than header");
  }
  if (ReadU32(batch.data()) != kBatchMagic) {
    return Status::Corruption("bad batch magic");
  }
  uint32_t record_count = ReadU32(batch.data() + 4);
  uint32_t payload_len = ReadU32(batch.data() + 8);
  uint32_t crc = ReadU32(batch.data() + 12);
  if (batch.size() != kBatchHeaderSize + payload_len) {
    return Status::Corruption("batch payload length mismatch");
  }
  std::string_view payload = batch.substr(kBatchHeaderSize);
  if (Crc32(payload) != crc) {
    return Status::Corruption("batch CRC mismatch");
  }
  // Full structural walk: a batch that passes is safe to index and serve
  // views from with no further per-read checks. The checks mirror
  // DecodeFrame but only verify lengths — this runs once per record on the
  // append hot path, so it skips materializing views.
  const char* base = payload.data();
  size_t size = payload.size();
  size_t pos = 0;
  auto truncated = [] { return Status::Corruption("truncated record frame"); };
  for (uint32_t i = 0; i < record_count; ++i) {
    if (pos + 4 > size) return truncated();
    uint32_t frame_len = ReadU32(base + pos);
    pos += 4;
    if (frame_len < kMinFrameLen || pos + frame_len > size) return truncated();
    size_t frame_end = pos + frame_len;
    size_t p = pos + 8;  // timestamp needs no validation
    uint32_t key_len = ReadU32(base + p);
    p += 4;
    if (p + key_len + 4 > frame_end) return truncated();
    p += key_len;
    uint32_t value_len = ReadU32(base + p);
    p += 4;
    if (p + value_len + 4 > frame_end) return truncated();
    p += value_len;
    uint32_t header_count = ReadU32(base + p);
    p += 4;
    for (uint32_t h = 0; h < header_count; ++h) {
      if (p + 4 > frame_end) return truncated();
      p += 4 + ReadU32(base + p);
      if (p + 4 > frame_end) return truncated();
      p += 4 + ReadU32(base + p);
      if (p > frame_end) return truncated();
    }
    if (p != frame_end) {
      return Status::Corruption("record frame length mismatch");
    }
    pos = frame_end;
  }
  if (pos != size) {
    return Status::Corruption("batch record count mismatch");
  }
  return Status::Ok();
}

Result<BatchReader> BatchReader::Open(std::string_view batch) {
  UBERRT_RETURN_IF_ERROR(ValidateBatch(batch));
  return BatchReader(batch.substr(kBatchHeaderSize), ReadU32(batch.data() + 4),
                     static_cast<int64_t>(ReadU64(batch.data() + 16)));
}

Result<MessageView> BatchReader::Next() {
  if (Done()) return Status::OutOfRange("batch exhausted");
  Result<MessageView> view = DecodeFrame(payload_, &pos_);
  if (view.ok()) ++read_;
  return view;
}

}  // namespace uberrt::stream::wire
