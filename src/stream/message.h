#ifndef UBERRT_STREAM_MESSAGE_H_
#define UBERRT_STREAM_MESSAGE_H_

#include <cstdint>
#include <map>
#include <string>

#include "common/clock.h"

namespace uberrt::stream {

/// One event in a topic partition.
///
/// `headers` carries the audit metadata the paper describes in Section 9.4
/// (unique identifier, application timestamp, service name, tier) that
/// Chaperone uses to track loss and duplication end to end.
struct Message {
  std::string key;
  std::string value;
  TimestampMs timestamp = 0;  ///< application/event timestamp
  std::map<std::string, std::string> headers;

  // Assigned by the broker at append time.
  int64_t offset = -1;
  int32_t partition = -1;

  /// Exact encoded size of this message's binary record frame (wire.h):
  /// length prefix + timestamp + length-prefixed key/value + header count +
  /// per-header length-prefixed key/value. This is the one authoritative
  /// byte accounting — wire::AppendFrame emits exactly this many bytes, and
  /// retention-by-bytes, broker metrics and the benches all derive from it.
  size_t FrameSize() const {
    size_t n = 4 + 8 + 4 + key.size() + 4 + value.size() + 4;
    for (const auto& [k, v] : headers) n += 8 + k.size() + v.size();
    return n;
  }

  /// Deprecated alias for FrameSize(). The old formula added a flat 24
  /// bytes with no per-header-entry overhead, so size-based retention and
  /// throughput accounting drifted from the stored bytes.
  size_t ByteSize() const { return FrameSize(); }
};

/// Standard header keys for audit metadata (Section 9.4).
inline constexpr char kHeaderUid[] = "uid";
inline constexpr char kHeaderService[] = "service";
inline constexpr char kHeaderTier[] = "tier";
inline constexpr char kHeaderRetryCount[] = "retry_count";
/// Capacity-admission priority class ("critical" / "important" /
/// "besteffort", see stream/admission.h). Missing header = important.
inline constexpr char kHeaderPriority[] = "priority";

}  // namespace uberrt::stream

#endif  // UBERRT_STREAM_MESSAGE_H_
