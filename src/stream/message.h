#ifndef UBERRT_STREAM_MESSAGE_H_
#define UBERRT_STREAM_MESSAGE_H_

#include <cstdint>
#include <map>
#include <string>

#include "common/clock.h"

namespace uberrt::stream {

/// One event in a topic partition.
///
/// `headers` carries the audit metadata the paper describes in Section 9.4
/// (unique identifier, application timestamp, service name, tier) that
/// Chaperone uses to track loss and duplication end to end.
struct Message {
  std::string key;
  std::string value;
  TimestampMs timestamp = 0;  ///< application/event timestamp
  std::map<std::string, std::string> headers;

  // Assigned by the broker at append time.
  int64_t offset = -1;
  int32_t partition = -1;

  /// Approximate wire size, used for retention-by-bytes and throughput
  /// accounting.
  size_t ByteSize() const {
    size_t n = key.size() + value.size() + 24;
    for (const auto& [k, v] : headers) n += k.size() + v.size();
    return n;
  }
};

/// Standard header keys for audit metadata (Section 9.4).
inline constexpr char kHeaderUid[] = "uid";
inline constexpr char kHeaderService[] = "service";
inline constexpr char kHeaderTier[] = "tier";
inline constexpr char kHeaderRetryCount[] = "retry_count";

}  // namespace uberrt::stream

#endif  // UBERRT_STREAM_MESSAGE_H_
