#ifndef UBERRT_STREAM_DLQ_H_
#define UBERRT_STREAM_DLQ_H_

#include <cstdint>
#include <functional>
#include <string>

#include "common/status.h"
#include "stream/message_bus.h"

namespace uberrt::stream {

/// Dead-letter-queue strategy on top of the Kafka interface (Section 4.1.2).
///
/// Kafka natively offers only "drop" or "retry forever and clog the
/// partition" for unprocessable messages; Uber's DLQ keeps failed messages
/// in side topics so live traffic is never impeded and nothing is lost:
/// a failed message goes to `<topic>__retry` until `max_retries` is
/// exhausted, then to `<topic>__dlq`, whose content can later be merged
/// (re-injected into the main topic) or purged on demand.
struct DlqOptions {
  int32_t max_retries = 3;
};

class DlqManager {
 public:
  explicit DlqManager(MessageBus* bus, DlqOptions options = DlqOptions())
      : bus_(bus), options_(options) {}

  static std::string RetryTopic(const std::string& topic) { return topic + "__retry"; }
  static std::string DlqTopic(const std::string& topic) { return topic + "__dlq"; }

  /// Creates the retry and DLQ side topics mirroring the main topic's
  /// partition count. Idempotent.
  Status EnsureTopics(const std::string& topic);

  /// Routes a message that failed processing: to the retry topic while it
  /// has retry budget left, else to the DLQ topic. Updates the
  /// `retry_count` header.
  Status HandleFailure(const std::string& topic, Message message);

  /// Number of retries already consumed by this message (from its header).
  static int32_t RetryCount(const Message& message);

  /// Re-injects every DLQ message into the main topic with a reset retry
  /// budget ("merge", i.e. retry on demand). Returns how many were merged.
  Result<int64_t> Merge(const std::string& topic, const std::string& consumer_group);

  /// Drops all DLQ content for the topic. Returns how many were purged.
  Result<int64_t> Purge(const std::string& topic, const std::string& consumer_group);

  /// Unconsumed messages currently parked in the DLQ topic.
  Result<int64_t> DlqDepth(const std::string& topic) const;

 private:
  Result<int64_t> DrainDlq(const std::string& topic, const std::string& consumer_group,
                           bool reinject);

  MessageBus* bus_;
  DlqOptions options_;
};

}  // namespace uberrt::stream

#endif  // UBERRT_STREAM_DLQ_H_
