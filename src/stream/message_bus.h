#ifndef UBERRT_STREAM_MESSAGE_BUS_H_
#define UBERRT_STREAM_MESSAGE_BUS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "stream/log.h"
#include "stream/message.h"

namespace uberrt::stream {

/// Producer acknowledgement level, as in Kafka.
enum class AckMode {
  kNone = 0,    ///< fire-and-forget
  kLeader = 1,  ///< leader append acknowledged
  kAll = 2,     ///< all replicas acknowledged (higher coordination cost)
};

/// Per-topic configuration. `lossless = false` models the topic tuning the
/// paper describes for surge pricing (Section 5.1): "the Kafka cluster
/// configured for higher throughput but not lossless guarantee" — producing
/// to an unavailable non-lossless topic silently drops instead of failing.
struct TopicConfig {
  int32_t num_partitions = 1;
  int32_t replication_factor = 1;
  RetentionPolicy retention;
  bool lossless = true;
};

struct ProduceResult {
  int32_t partition = -1;
  int64_t offset = -1;
  bool dropped = false;  ///< true when a non-lossless topic dropped the message
};

/// Client-facing pub/sub surface — the paper's "Stream" abstraction
/// (Section 3). Both a single physical cluster (Broker) and the federated
/// logical cluster (KafkaFederation, Section 4.1.1) implement it, which is
/// precisely how federation stays transparent: producers and consumers are
/// written against this interface and never know which physical cluster
/// hosts a topic.
class MessageBus {
 public:
  virtual ~MessageBus() = default;

  virtual Status CreateTopic(const std::string& topic, TopicConfig config) = 0;
  virtual bool HasTopic(const std::string& topic) const = 0;
  virtual Result<int32_t> NumPartitions(const std::string& topic) const = 0;

  virtual Result<ProduceResult> Produce(const std::string& topic, Message message,
                                        AckMode ack) = 0;
  virtual Result<std::vector<Message>> Fetch(const std::string& topic,
                                             int32_t partition, int64_t offset,
                                             size_t max_messages) const = 0;

  /// Appends a pre-encoded batch (wire::BatchBuilder) to one partition.
  /// ProduceResult.offset is the base offset of the batch's first record.
  /// The broker overrides this with a single-memcpy append; the default
  /// decodes and loops Produce (non-atomic) for buses without a native
  /// batch path. Timestamps are the producer's responsibility: frames are
  /// appended as encoded, never re-stamped.
  virtual Result<ProduceResult> ProduceBatch(const std::string& topic,
                                             int32_t partition,
                                             const wire::EncodedBatch& batch,
                                             AckMode ack);

  /// Batch fetch returning borrowed zero-copy views (see FetchedBatch for
  /// the lifetime rules). The broker serves views straight from its arena
  /// segments; the default copies through Fetch into an owned buffer.
  virtual Result<FetchedBatch> FetchViews(const std::string& topic,
                                          int32_t partition, int64_t offset,
                                          size_t max_messages) const;
  virtual Result<int64_t> BeginOffset(const std::string& topic,
                                      int32_t partition) const = 0;
  virtual Result<int64_t> EndOffset(const std::string& topic,
                                    int32_t partition) const = 0;

  virtual Status JoinGroup(const std::string& group, const std::string& topic,
                           const std::string& member) = 0;
  virtual Status LeaveGroup(const std::string& group, const std::string& topic,
                            const std::string& member) = 0;
  virtual Result<std::vector<int32_t>> GetAssignment(const std::string& group,
                                                     const std::string& topic,
                                                     const std::string& member) const = 0;
  virtual int64_t GroupGeneration(const std::string& group,
                                  const std::string& topic) const = 0;
  virtual Status CommitOffset(const std::string& group, const std::string& topic,
                              int32_t partition, int64_t offset) = 0;
  virtual Result<int64_t> CommittedOffset(const std::string& group,
                                          const std::string& topic,
                                          int32_t partition) const = 0;
  virtual Result<int64_t> ConsumerLag(const std::string& group,
                                      const std::string& topic) const = 0;
};

}  // namespace uberrt::stream

#endif  // UBERRT_STREAM_MESSAGE_BUS_H_
