#ifndef UBERRT_STREAM_CONSUMER_H_
#define UBERRT_STREAM_CONSUMER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "stream/message_bus.h"

namespace uberrt::stream {

/// Where a consumer starts when it has no committed offset.
enum class OffsetReset { kEarliest, kLatest };

/// Group consumer against a MessageBus (physical or federated logical
/// cluster). Mirrors the Kafka client model: join a group, poll the
/// partitions assigned to this member, commit positions. Rebalances are
/// picked up automatically at the next Poll when the group generation moved
/// (a member joined/left or the topic migrated clusters).
///
/// Not thread-safe: one Consumer per thread, like the Kafka client.
class Consumer {
 public:
  Consumer(MessageBus* bus, std::string group, std::string topic,
           std::string member_id, OffsetReset reset = OffsetReset::kEarliest);
  ~Consumer();

  Consumer(const Consumer&) = delete;
  Consumer& operator=(const Consumer&) = delete;

  /// Joins the consumer group. Must be called before Poll.
  Status Subscribe();

  /// Leaves the group.
  Status Close();

  /// Fetches up to `max_messages` from this member's assigned partitions
  /// (round-robin across them). Empty result when caught up.
  /// Compatibility shim over PollViews: one owning deep copy per message.
  Result<std::vector<Message>> Poll(size_t max_messages);

  /// Batch fetch: up to `max_messages` borrowed zero-copy views from this
  /// member's assigned partitions. The returned FetchedBatch pins the log
  /// segments the views borrow, so they outlive retention and rebalances;
  /// decode to owning Messages (view.ToMessage()) only where ownership is
  /// genuinely needed.
  Result<FetchedBatch> PollViews(size_t max_messages);

  /// Commits the positions reached by Poll for all assigned partitions.
  Status Commit();

  /// Positions currently held (partition -> next offset to read).
  const std::map<int32_t, int64_t>& positions() const { return positions_; }

  /// Overrides the position of one partition (used by failover logic that
  /// resumes from a synced offset, Section 6).
  void Seek(int32_t partition, int64_t offset) { positions_[partition] = offset; }

  const std::string& member_id() const { return member_id_; }

 private:
  Status RefreshAssignmentIfNeeded();
  Result<int64_t> InitialOffset(int32_t partition) const;

  MessageBus* bus_;
  std::string group_;
  std::string topic_;
  std::string member_id_;
  OffsetReset reset_;
  bool subscribed_ = false;
  int64_t seen_generation_ = -1;
  std::vector<int32_t> assignment_;
  std::map<int32_t, int64_t> positions_;
  size_t next_partition_index_ = 0;
};

}  // namespace uberrt::stream

#endif  // UBERRT_STREAM_CONSUMER_H_
