#include "stream/chaperone.h"

#include <sstream>

namespace uberrt::stream {

namespace {

std::string StageKey(const std::string& stage, const std::string& topic) {
  return stage + '\0' + topic;
}

}  // namespace

std::string AuditAlert::ToString() const {
  std::ostringstream os;
  os << (kind == Kind::kLoss ? "LOSS" : "DUPLICATION") << " topic=" << topic
     << " window=" << window_start << " upstream=" << upstream_count
     << " downstream=" << downstream_count;
  return os.str();
}

void Chaperone::Record(const std::string& stage, const std::string& topic,
                       const Message& message) {
  auto it = message.headers.find(kHeaderUid);
  RecordRaw(stage, topic, message.timestamp,
            it == message.headers.end() ? std::string() : it->second);
}

void Chaperone::RecordRaw(const std::string& stage, const std::string& topic,
                          TimestampMs event_time, const std::string& uid) {
  std::lock_guard<std::mutex> lock(mu_);
  Bucket& bucket = buckets_[StageKey(stage, topic)][WindowStart(event_time)];
  ++bucket.count;
  if (!uid.empty()) bucket.uids.insert(uid);
}

std::vector<WindowStats> Chaperone::GetStats(const std::string& stage,
                                             const std::string& topic) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<WindowStats> out;
  auto it = buckets_.find(StageKey(stage, topic));
  if (it == buckets_.end()) return out;
  for (const auto& [window, bucket] : it->second) {
    out.push_back({window, bucket.count, static_cast<int64_t>(bucket.uids.size())});
  }
  return out;
}

int64_t Chaperone::TotalCount(const std::string& stage, const std::string& topic) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = buckets_.find(StageKey(stage, topic));
  if (it == buckets_.end()) return 0;
  int64_t total = 0;
  for (const auto& [window, bucket] : it->second) total += bucket.count;
  return total;
}

std::vector<AuditAlert> Chaperone::Compare(const std::string& upstream_stage,
                                           const std::string& downstream_stage,
                                           const std::string& topic) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<AuditAlert> alerts;
  auto uit = buckets_.find(StageKey(upstream_stage, topic));
  auto dit = buckets_.find(StageKey(downstream_stage, topic));
  static const std::map<TimestampMs, Bucket> kEmpty;
  const auto& up = uit == buckets_.end() ? kEmpty : uit->second;
  const auto& down = dit == buckets_.end() ? kEmpty : dit->second;

  // Union of windows.
  std::set<TimestampMs> windows;
  for (const auto& [w, b] : up) windows.insert(w);
  for (const auto& [w, b] : down) windows.insert(w);

  for (TimestampMs w : windows) {
    auto ub = up.find(w);
    auto db = down.find(w);
    int64_t up_unique = ub == up.end() ? 0 : static_cast<int64_t>(ub->second.uids.size());
    int64_t down_count = db == down.end() ? 0 : db->second.count;
    int64_t down_unique =
        db == down.end() ? 0 : static_cast<int64_t>(db->second.uids.size());
    if (down_unique < up_unique) {
      alerts.push_back({AuditAlert::Kind::kLoss, topic, w, up_unique, down_unique});
    }
    if (down_count > down_unique) {
      alerts.push_back({AuditAlert::Kind::kDuplication, topic, w, down_unique, down_count});
    }
  }
  return alerts;
}

}  // namespace uberrt::stream
