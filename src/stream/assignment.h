#ifndef UBERRT_STREAM_ASSIGNMENT_H_
#define UBERRT_STREAM_ASSIGNMENT_H_

#include <algorithm>
#include <cstdint>
#include <vector>

namespace uberrt::stream {

/// Kafka's range assignment strategy (the client default): partitions are
/// laid out in order and split into contiguous blocks, one per member (in
/// sorted member order). The first `num_partitions % num_members` members
/// get one extra partition. Shared by Broker and KafkaFederation group
/// coordination so a consumer sees the same placement either way.
inline std::vector<int32_t> RangeAssignment(int32_t num_partitions,
                                            int32_t num_members,
                                            int32_t member_index) {
  std::vector<int32_t> assigned;
  if (num_partitions <= 0 || num_members <= 0 || member_index < 0 ||
      member_index >= num_members) {
    return assigned;
  }
  int32_t base = num_partitions / num_members;
  int32_t extra = num_partitions % num_members;
  int32_t start = member_index * base + std::min(member_index, extra);
  int32_t count = base + (member_index < extra ? 1 : 0);
  assigned.reserve(static_cast<size_t>(count));
  for (int32_t p = start; p < start + count; ++p) assigned.push_back(p);
  return assigned;
}

}  // namespace uberrt::stream

#endif  // UBERRT_STREAM_ASSIGNMENT_H_
