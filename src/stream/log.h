#ifndef UBERRT_STREAM_LOG_H_
#define UBERRT_STREAM_LOG_H_

#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "common/status.h"
#include "stream/message.h"

namespace uberrt::stream {

/// How long data stays readable in a partition before truncation. The paper
/// (Section 7) notes Uber limits Kafka retention to "only a few days", which
/// is exactly why Kappa-style backfill from Kafka does not work and Kappa+
/// reads the archive instead.
struct RetentionPolicy {
  /// Age-based retention; <= 0 disables.
  int64_t max_age_ms = -1;
  /// Size-based retention; <= 0 disables.
  int64_t max_bytes = -1;
};

/// Append-only offset-addressed log for one topic partition.
/// Thread-safe. Offsets are dense and monotonically increasing; truncation
/// advances the begin offset without renumbering (as in Kafka).
class PartitionLog {
 public:
  PartitionLog() = default;

  PartitionLog(const PartitionLog&) = delete;
  PartitionLog& operator=(const PartitionLog&) = delete;

  /// Appends and assigns the next offset, which is returned.
  int64_t Append(Message message);

  /// Appends preserving `message.offset` (used by intra-federation topic
  /// migration where offset continuity must be preserved). The offset must
  /// equal the current end offset.
  Status AppendWithOffset(Message message);

  /// Reads up to `max_messages` messages starting at `offset`.
  /// OutOfRange if offset is below the begin offset (data truncated away) or
  /// above the end offset. An offset equal to the end offset yields an empty
  /// result (nothing new yet).
  Result<std::vector<Message>> Read(int64_t offset, size_t max_messages) const;

  /// First retained offset.
  int64_t BeginOffset() const;
  /// Offset that the next append will receive.
  int64_t EndOffset() const;
  /// Retained message count.
  int64_t Size() const;
  /// Retained bytes.
  int64_t Bytes() const;

  /// Applies the retention policy relative to `now`, truncating from the
  /// front. Returns the number of messages dropped.
  int64_t ApplyRetention(const RetentionPolicy& policy, TimestampMs now);

 private:
  mutable std::mutex mu_;
  std::deque<Message> messages_;
  int64_t begin_offset_ = 0;
  int64_t bytes_ = 0;
};

}  // namespace uberrt::stream

#endif  // UBERRT_STREAM_LOG_H_
