#ifndef UBERRT_STREAM_LOG_H_
#define UBERRT_STREAM_LOG_H_

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "common/status.h"
#include "stream/message.h"
#include "stream/wire.h"

namespace uberrt::stream {

/// How long data stays readable in a partition before truncation. The paper
/// (Section 7) notes Uber limits Kafka retention to "only a few days", which
/// is exactly why Kappa-style backfill from Kafka does not work and Kappa+
/// reads the archive instead.
///
/// Retention semantics (both policies truncate whole batches from the front,
/// in append order, as Kafka truncates whole segments):
///  - Age: each batch records a *monotone* high-watermark timestamp — the
///    max record timestamp over this and every earlier batch. A batch is
///    dropped when its watermark (not its own newest record) falls outside
///    `max_age_ms`. A late-arriving record with an old event timestamp
///    therefore lives exactly as long as the data appended around it, and an
///    out-of-order old timestamp sitting behind newer data cannot pin
///    expired prefixes: eligibility is strictly by append order.
///  - Size: batches are dropped from the front until the retained encoded
///    bytes fit `max_bytes`, but the newest batch is always retained (Kafka
///    never deletes the active segment), so an acked producer's last write
///    stays readable even when a single batch exceeds the budget.
struct RetentionPolicy {
  /// Age-based retention; <= 0 disables.
  int64_t max_age_ms = -1;
  /// Size-based retention; <= 0 disables.
  int64_t max_bytes = -1;
};

/// A fetched batch of borrowed message views. Views point into the log's
/// arena segments; the FetchedBatch pins those segments (shared ownership),
/// so every view stays valid until the FetchedBatch is destroyed — even if
/// retention truncates the range or the topic is deleted concurrently.
struct FetchedBatch {
  std::vector<wire::MessageView> messages;
  /// Arena segments (or decoded buffers) the views borrow from.
  std::vector<std::shared_ptr<const std::string>> pins;

  bool empty() const { return messages.empty(); }
  size_t size() const { return messages.size(); }

  /// Deep-copies every view into an owning Message (compatibility boundary).
  std::vector<Message> ToMessages() const {
    std::vector<Message> out;
    out.reserve(messages.size());
    for (const wire::MessageView& v : messages) out.push_back(v.ToMessage());
    return out;
  }

  /// Steals the other batch's views and pins (multi-partition polls).
  void Merge(FetchedBatch&& other) {
    for (auto& v : other.messages) messages.push_back(v);
    for (auto& p : other.pins) pins.push_back(std::move(p));
    other.messages.clear();
    other.pins.clear();
  }
};

struct PartitionLogOptions {
  /// Arena segment capacity. A batch larger than this gets a dedicated
  /// segment sized to fit; segment memory is reclaimed when its last batch
  /// is truncated and the last borrowing FetchedBatch is released.
  size_t segment_bytes = 256 * 1024;
};

/// Append-only offset-addressed log for one topic partition, stored as
/// contiguous arena segments of binary batch frames (wire.h).
///
/// Produce appends a pre-encoded batch with one memcpy; ReadViews returns
/// borrowed string_view slices with zero per-message allocation. Offsets are
/// dense and monotonically increasing; truncation advances the begin offset
/// a whole batch at a time without renumbering (as in Kafka).
///
/// Thread-safe. Arena segments are append-only and fixed-capacity, so bytes
/// already written never move; concurrent appends only ever touch bytes past
/// every outstanding view.
class PartitionLog {
 public:
  explicit PartitionLog(PartitionLogOptions options = {}) : options_(options) {}

  PartitionLog(const PartitionLog&) = delete;
  PartitionLog& operator=(const PartitionLog&) = delete;

  /// Appends one message as a single-record batch and assigns the next
  /// offset, which is returned. (Compatibility path; batched producers
  /// should pre-encode with wire::BatchBuilder and use AppendBatch.)
  int64_t Append(Message message);

  /// Appends preserving `message.offset` (used by intra-federation topic
  /// migration where offset continuity must be preserved). The offset must
  /// equal the current end offset.
  Status AppendWithOffset(Message message);

  /// Appends a sealed batch with a single memcpy into the active arena
  /// segment. The batch is validated (magic, sizes, CRC, frame structure)
  /// before any state changes; Corruption means nothing was appended.
  /// Returns the base offset assigned to the batch's first record.
  Result<int64_t> AppendBatch(const wire::EncodedBatch& batch);

  /// Reads up to `max_messages` owning Messages starting at `offset`.
  /// Compatibility shim over ReadViews (one deep copy per message).
  Result<std::vector<Message>> Read(int64_t offset, size_t max_messages) const;

  /// Reads up to `max_messages` borrowed views starting at `offset`, with
  /// zero per-message allocation. OutOfRange if offset is below the begin
  /// offset (data truncated away) or above the end offset. An offset equal
  /// to the end offset yields an empty result (nothing new yet).
  Result<FetchedBatch> ReadViews(int64_t offset, size_t max_messages) const;

  /// First retained offset.
  int64_t BeginOffset() const;
  /// Offset that the next append will receive.
  int64_t EndOffset() const;
  /// Retained message count.
  int64_t Size() const;
  /// Retained encoded bytes (batch headers + record frames).
  int64_t Bytes() const;

  /// Applies the retention policy relative to `now`, truncating whole
  /// batches from the front (see RetentionPolicy for the exact semantics).
  /// Returns the number of messages dropped.
  int64_t ApplyRetention(const RetentionPolicy& policy, TimestampMs now);

 private:
  /// Bookkeeping for one appended batch: where its bytes live and how its
  /// records map to offsets.
  struct BatchMeta {
    std::shared_ptr<const std::string> arena;
    uint32_t begin = 0;  ///< byte offset of the batch header in the arena
    uint32_t end = 0;    ///< one past the batch payload
    int64_t base_offset = 0;
    uint32_t count = 0;
    /// Monotone high-watermark: max record timestamp over this and every
    /// earlier batch (survives truncation via hwm_timestamp_).
    int64_t hwm_timestamp = 0;
  };

  int64_t AppendBatchLocked(const wire::EncodedBatch& batch);
  int64_t AppendMessageLocked(const Message& message);

  mutable std::mutex mu_;
  PartitionLogOptions options_;
  std::shared_ptr<std::string> arena_;  ///< active segment (fixed capacity)
  std::deque<BatchMeta> batches_;
  int64_t begin_offset_ = 0;
  int64_t end_offset_ = 0;
  int64_t bytes_ = 0;
  int64_t hwm_timestamp_ = INT64_MIN;  ///< running watermark across appends
};

}  // namespace uberrt::stream

#endif  // UBERRT_STREAM_LOG_H_
