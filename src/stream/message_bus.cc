#include "stream/message_bus.h"

namespace uberrt::stream {

Result<ProduceResult> MessageBus::ProduceBatch(const std::string& topic,
                                               int32_t partition,
                                               const wire::EncodedBatch& batch,
                                               AckMode ack) {
  Result<wire::BatchReader> reader = wire::BatchReader::Open(batch.data);
  if (!reader.ok()) return reader.status();
  ProduceResult result;
  result.partition = partition;
  while (!reader.value().Done()) {
    Result<wire::MessageView> view = reader.value().Next();
    if (!view.ok()) return view.status();
    Message m = view.value().ToMessage();
    m.partition = partition;
    m.offset = -1;
    Result<ProduceResult> produced = Produce(topic, std::move(m), ack);
    if (!produced.ok()) return produced.status();
    if (result.offset < 0) {
      result.offset = produced.value().offset;
      result.partition = produced.value().partition;
    }
    result.dropped = result.dropped || produced.value().dropped;
  }
  return result;
}

Result<FetchedBatch> MessageBus::FetchViews(const std::string& topic,
                                            int32_t partition, int64_t offset,
                                            size_t max_messages) const {
  Result<std::vector<Message>> fetched = Fetch(topic, partition, offset, max_messages);
  if (!fetched.ok()) return fetched.status();
  // Re-encode into an owned buffer the views can borrow from: same lifetime
  // contract as the broker's native arena-backed path, one copy slower.
  wire::BatchBuilder builder;
  for (const Message& m : fetched.value()) builder.Add(m);
  FetchedBatch out;
  if (builder.empty()) return out;
  auto owned = std::make_shared<const std::string>(builder.Finish().data);
  Result<wire::BatchReader> reader = wire::BatchReader::Open(*owned);
  if (!reader.ok()) return reader.status();
  out.pins.push_back(owned);
  for (const Message& m : fetched.value()) {
    Result<wire::MessageView> view = reader.value().Next();
    if (!view.ok()) return view.status();
    view.value().offset = m.offset;
    view.value().partition = m.partition;
    out.messages.push_back(std::move(view.value()));
  }
  return out;
}

}  // namespace uberrt::stream
