#include "common/value.h"

#include <cstring>
#include <sstream>

namespace uberrt {

namespace {

void AppendU32(std::string* out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}

void AppendU64(std::string* out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

bool ReadU32(std::string_view data, size_t* pos, uint32_t* out) {
  if (*pos + 4 > data.size()) return false;
  std::memcpy(out, data.data() + *pos, 4);
  *pos += 4;
  return true;
}

bool ReadU64(std::string_view data, size_t* pos, uint64_t* out) {
  if (*pos + 8 > data.size()) return false;
  std::memcpy(out, data.data() + *pos, 8);
  *pos += 8;
  return true;
}

}  // namespace

const char* ValueTypeName(ValueType type) {
  switch (type) {
    case ValueType::kNull: return "NULL";
    case ValueType::kInt: return "INT";
    case ValueType::kDouble: return "DOUBLE";
    case ValueType::kString: return "STRING";
    case ValueType::kBool: return "BOOL";
  }
  return "UNKNOWN";
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt:
      return std::to_string(AsInt());
    case ValueType::kDouble: {
      std::ostringstream os;
      os << AsDouble();
      return os.str();
    }
    case ValueType::kString:
      return AsString();
    case ValueType::kBool:
      return AsBool() ? "true" : "false";
  }
  return "NULL";
}

bool Value::operator<(const Value& other) const {
  ValueType a = type();
  ValueType b = other.type();
  // Nulls sort first.
  if (a == ValueType::kNull || b == ValueType::kNull) {
    return a == ValueType::kNull && b != ValueType::kNull;
  }
  bool a_num = a != ValueType::kString;
  bool b_num = b != ValueType::kString;
  if (a_num && b_num) return ToNumeric() < other.ToNumeric();
  if (a == ValueType::kString && b == ValueType::kString) {
    return AsString() < other.AsString();
  }
  // Mixed string/numeric: numerics sort before strings.
  return a_num;
}

int RowSchema::FieldIndex(const std::string& name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

std::string RowSchema::ToString() const {
  std::ostringstream os;
  os << "(";
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) os << ", ";
    os << fields_[i].name << " " << ValueTypeName(fields_[i].type);
  }
  os << ")";
  return os.str();
}

void AppendValue(std::string* out, const Value& v) {
  out->push_back(static_cast<char>(v.type()));
  switch (v.type()) {
    case ValueType::kNull:
      break;
    case ValueType::kInt:
      AppendU64(out, static_cast<uint64_t>(v.AsInt()));
      break;
    case ValueType::kDouble: {
      uint64_t bits;
      double d = v.AsDouble();
      std::memcpy(&bits, &d, 8);
      AppendU64(out, bits);
      break;
    }
    case ValueType::kString: {
      const std::string& s = v.AsString();
      AppendU32(out, static_cast<uint32_t>(s.size()));
      out->append(s);
      break;
    }
    case ValueType::kBool:
      out->push_back(v.AsBool() ? 1 : 0);
      break;
  }
}

std::string EncodeRow(const Row& row) {
  std::string out;
  AppendU32(&out, static_cast<uint32_t>(row.size()));
  for (const Value& v : row) AppendValue(&out, v);
  return out;
}

Result<Row> DecodeRow(std::string_view data) {
  size_t pos = 0;
  uint32_t count = 0;
  if (!ReadU32(data, &pos, &count)) {
    return Status::Corruption("row header truncated");
  }
  // Every field needs at least its 1-byte tag; a count beyond the remaining
  // bytes is corruption (and must not drive a huge reserve()).
  if (count > data.size() - pos) return Status::Corruption("row count implausible");
  Row row;
  row.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    if (pos >= data.size()) return Status::Corruption("row body truncated");
    auto tag = static_cast<ValueType>(data[pos++]);
    switch (tag) {
      case ValueType::kNull:
        row.push_back(Value::Null());
        break;
      case ValueType::kInt: {
        uint64_t raw;
        if (!ReadU64(data, &pos, &raw)) return Status::Corruption("int truncated");
        row.push_back(Value(static_cast<int64_t>(raw)));
        break;
      }
      case ValueType::kDouble: {
        uint64_t bits;
        if (!ReadU64(data, &pos, &bits)) return Status::Corruption("double truncated");
        double d;
        std::memcpy(&d, &bits, 8);
        row.push_back(Value(d));
        break;
      }
      case ValueType::kString: {
        uint32_t len;
        if (!ReadU32(data, &pos, &len)) return Status::Corruption("string length truncated");
        if (pos + len > data.size()) return Status::Corruption("string body truncated");
        row.push_back(Value(std::string(data.substr(pos, len))));
        pos += len;
        break;
      }
      case ValueType::kBool: {
        if (pos >= data.size()) return Status::Corruption("bool truncated");
        row.push_back(Value(data[pos++] != 0));
        break;
      }
      default:
        return Status::Corruption("unknown value tag");
    }
  }
  return row;
}

}  // namespace uberrt
