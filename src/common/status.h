#ifndef UBERRT_COMMON_STATUS_H_
#define UBERRT_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace uberrt {

/// Error category for a failed operation. Modeled after the RocksDB/Abseil
/// status idiom: library code never throws; every fallible call returns a
/// Status (or a Result<T>, below).
enum class StatusCode {
  kOk = 0,
  kNotFound,
  kAlreadyExists,
  kInvalidArgument,
  kFailedPrecondition,
  kOutOfRange,
  kUnavailable,
  kTimeout,
  kCorruption,
  kResourceExhausted,
  kInternal,
};

/// Returns a human-readable name for a status code ("NotFound", ...).
const char* StatusCodeName(StatusCode code);

/// Result of a fallible operation: a code plus an optional message.
/// Cheap to copy in the OK case (empty message).
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status NotFound(std::string m) {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status AlreadyExists(std::string m) {
    return Status(StatusCode::kAlreadyExists, std::move(m));
  }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status FailedPrecondition(std::string m) {
    return Status(StatusCode::kFailedPrecondition, std::move(m));
  }
  static Status OutOfRange(std::string m) {
    return Status(StatusCode::kOutOfRange, std::move(m));
  }
  static Status Unavailable(std::string m) {
    return Status(StatusCode::kUnavailable, std::move(m));
  }
  static Status Timeout(std::string m) {
    return Status(StatusCode::kTimeout, std::move(m));
  }
  static Status Corruption(std::string m) {
    return Status(StatusCode::kCorruption, std::move(m));
  }
  static Status ResourceExhausted(std::string m) {
    return Status(StatusCode::kResourceExhausted, std::move(m));
  }
  static Status Internal(std::string m) {
    return Status(StatusCode::kInternal, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsNotFound() const { return code_ == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code_ == StatusCode::kAlreadyExists; }
  bool IsUnavailable() const { return code_ == StatusCode::kUnavailable; }
  bool IsTimeout() const { return code_ == StatusCode::kTimeout; }
  bool IsCorruption() const { return code_ == StatusCode::kCorruption; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Value-or-error, the return type for fallible producers of values.
template <typename T>
class Result {
 public:
  /// Implicit from a value: `return some_value;`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from a non-OK status: `return Status::NotFound(...)`.
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Requires ok(). Undefined behaviour otherwise (same contract as
  /// std::optional::operator*).
  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return std::move(*value_); }

  const T& operator*() const& { return *value_; }
  T& operator*() & { return *value_; }
  const T* operator->() const { return &*value_; }
  T* operator->() { return &*value_; }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace uberrt

/// Propagates a non-OK Status from the current function.
#define UBERRT_RETURN_IF_ERROR(expr)            \
  do {                                          \
    ::uberrt::Status _st = (expr);              \
    if (!_st.ok()) return _st;                  \
  } while (0)

#endif  // UBERRT_COMMON_STATUS_H_
