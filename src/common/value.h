#ifndef UBERRT_COMMON_VALUE_H_
#define UBERRT_COMMON_VALUE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "common/status.h"

namespace uberrt {

/// Scalar type of a field. The stack is schema-first (paper Section 3,
/// "Metadata"): every topic/table declares its field types up front.
enum class ValueType { kNull = 0, kInt = 1, kDouble = 2, kString = 3, kBool = 4 };

const char* ValueTypeName(ValueType type);

/// Dynamically-typed scalar carried through the stack: stream payload
/// fields, compute records and OLAP cells all use this representation.
class Value {
 public:
  Value() : data_(std::monostate{}) {}
  explicit Value(int64_t v) : data_(v) {}
  explicit Value(double v) : data_(v) {}
  explicit Value(std::string v) : data_(std::move(v)) {}
  explicit Value(const char* v) : data_(std::string(v)) {}
  explicit Value(bool v) : data_(v) {}

  static Value Null() { return Value(); }

  ValueType type() const {
    switch (data_.index()) {
      case 0: return ValueType::kNull;
      case 1: return ValueType::kInt;
      case 2: return ValueType::kDouble;
      case 3: return ValueType::kString;
      case 4: return ValueType::kBool;
    }
    return ValueType::kNull;
  }

  bool is_null() const { return data_.index() == 0; }
  int64_t AsInt() const { return std::get<int64_t>(data_); }
  double AsDouble() const { return std::get<double>(data_); }
  const std::string& AsString() const { return std::get<std::string>(data_); }
  bool AsBool() const { return std::get<bool>(data_); }

  /// Numeric view: ints widen to double, bools to 0/1; 0 for null/string.
  double ToNumeric() const {
    switch (type()) {
      case ValueType::kInt: return static_cast<double>(AsInt());
      case ValueType::kDouble: return AsDouble();
      case ValueType::kBool: return AsBool() ? 1.0 : 0.0;
      default: return 0.0;
    }
  }

  /// Display form used by SQL results and debugging.
  std::string ToString() const;

  bool operator==(const Value& other) const { return data_ == other.data_; }
  bool operator!=(const Value& other) const { return !(*this == other); }

  /// Ordering for sort/group keys: null < everything; numerics compare by
  /// value across int/double; strings lexicographically.
  bool operator<(const Value& other) const;

 private:
  std::variant<std::monostate, int64_t, double, std::string, bool> data_;
};

/// One field of a schema.
struct FieldSpec {
  std::string name;
  ValueType type = ValueType::kNull;

  bool operator==(const FieldSpec& other) const {
    return name == other.name && type == other.type;
  }
};

/// Ordered, named, typed field list. Rows are positional against a schema.
class RowSchema {
 public:
  RowSchema() = default;
  explicit RowSchema(std::vector<FieldSpec> fields) : fields_(std::move(fields)) {}

  const std::vector<FieldSpec>& fields() const { return fields_; }
  size_t NumFields() const { return fields_.size(); }

  /// Index of the named field or -1.
  int FieldIndex(const std::string& name) const;
  bool HasField(const std::string& name) const { return FieldIndex(name) >= 0; }

  bool operator==(const RowSchema& other) const { return fields_ == other.fields_; }

  std::string ToString() const;

 private:
  std::vector<FieldSpec> fields_;
};

/// Positional tuple of values. Interpreted against a RowSchema.
using Row = std::vector<Value>;

/// Compact binary row codec used when rows travel through the stream layer
/// as message payloads. Format: u32 field count, then per field a 1-byte
/// type tag and a type-dependent body (varint-free fixed widths; strings are
/// u32-length-prefixed).
std::string EncodeRow(const Row& row);

/// Appends one value's encoded form (1-byte tag + body, same wire layout as
/// EncodeRow fields) to `out`. Exposed so hot paths can encode partial rows
/// (e.g. group/window key scratch buffers) without materializing a Row.
void AppendValue(std::string* out, const Value& v);

/// Decodes a row previously produced by EncodeRow. Returns Corruption on any
/// malformed input (short buffer, bad tag). Takes a borrowed view so callers
/// can decode straight from zero-copy stream slices (wire::MessageView) with
/// no owning deep copy of the payload; the returned Row owns its values.
Result<Row> DecodeRow(std::string_view data);

}  // namespace uberrt

#endif  // UBERRT_COMMON_VALUE_H_
