#ifndef UBERRT_COMMON_FAULT_INJECTOR_H_
#define UBERRT_COMMON_FAULT_INJECTOR_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "common/status.h"

namespace uberrt::common {

/// Half-open [start_ms, end_ms) window during which a site is unconditionally
/// down, evaluated against the injector's clock. Windows compose with the
/// probabilistic part of a rule: inside a window every check fails; outside,
/// `error_probability` applies.
struct OutageWindow {
  TimestampMs start_ms = 0;
  TimestampMs end_ms = 0;
};

/// Failure behaviour attached to one site (or site prefix — see
/// FaultInjector::Check for the prefix-matching rules).
struct FaultRule {
  /// Probability in [0, 1] that a check returns `error_code`.
  double error_probability = 0.0;
  /// Status code injected failures carry.
  StatusCode error_code = StatusCode::kUnavailable;
  /// Latency added to every check that matches this rule, injected via the
  /// injector's clock (so SimulatedClock-based tests stay instant).
  int64_t added_latency_ms = 0;
  /// Scripted outage schedule: the site is hard-down inside any window.
  std::vector<OutageWindow> outages;
  /// Unconditional kill switch, the moral equivalent of the old
  /// InMemoryObjectStore::SetAvailable(false).
  bool down = false;
  /// If >= 0, the rule stops firing after this many injected faults. A value
  /// of 1 makes a one-shot fault (e.g. crash a job exactly once).
  int64_t max_triggers = -1;
};

/// Process-wide, deterministic fault plane. Components ask it, per named
/// site, whether an operation should fail and with what; tests and benches
/// script failures against it instead of poking per-component toggles.
///
/// Sites are dot-separated hierarchical names, e.g. "store.put",
/// "broker.produce.cluster-0", "olap.server.query.2", "region.dca". A rule
/// registered on a prefix applies to every site under it: SetDown("store")
/// downs "store.put", "store.get", ... — which is what lets the short names
/// from the design doc act as wildcards over per-instance sites.
///
/// Determinism: all randomness comes from one seeded Rng, consumed under the
/// injector's mutex, and all time comes from the injected Clock. The same
/// seed + schedule + operation sequence yields the same faults.
///
/// Thread safety: all methods are safe to call concurrently. Injected
/// latency is applied after the internal lock is released so a slow site
/// never blocks rule updates or checks on other sites.
class FaultInjector {
 public:
  explicit FaultInjector(uint64_t seed = 42,
                         Clock* clock = SystemClock::Instance());

  /// Installs (or replaces) the rule for `site`.
  void SetRule(const std::string& site, FaultRule rule);

  /// Removes the rule for `site` (no-op when absent). Rules on other
  /// prefixes of the same site are unaffected.
  void ClearRule(const std::string& site);

  /// Convenience kill switch: marks `site` hard-down (or back up) without
  /// disturbing the rest of its rule.
  void SetDown(const std::string& site, bool down);

  /// Appends a scripted outage window [start_ms, end_ms) to `site`'s rule.
  void ScheduleOutage(const std::string& site, TimestampMs start_ms,
                      TimestampMs end_ms);

  /// The per-operation hook: returns Ok when the operation should proceed,
  /// or the injected error. Applies the added latency of every matching
  /// rule. Components call this at the top of the guarded operation.
  Status Check(const std::string& site);

  /// Pure availability probe: true when `site` is hard-down or inside an
  /// outage window. Consumes no randomness and injects no latency — for
  /// boolean-shaped paths (Exists/List) and health checks.
  bool IsDown(const std::string& site) const;

  /// Counters: "faults.injected" (total), "faults.checks" (total), and
  /// per-site "faults.<site>.injected".
  MetricsRegistry* metrics() const { return &metrics_; }

  uint64_t seed() const { return seed_; }
  Clock* clock() const { return clock_; }

 private:
  struct RuleState {
    FaultRule rule;
    int64_t triggered = 0;  // injected faults charged against max_triggers
  };

  /// Collects every rule whose site is `site` itself or a dot-prefix of it.
  std::vector<RuleState*> MatchingRulesLocked(const std::string& site);

  const uint64_t seed_;
  Clock* const clock_;
  mutable std::mutex mu_;
  Rng rng_;                                // guarded by mu_
  std::map<std::string, RuleState> rules_;  // guarded by mu_
  mutable MetricsRegistry metrics_;
  Counter* checks_total_;
  Counter* injected_total_;
};

}  // namespace uberrt::common

#endif  // UBERRT_COMMON_FAULT_INJECTOR_H_
