#ifndef UBERRT_COMMON_CLOCK_H_
#define UBERRT_COMMON_CLOCK_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>

namespace uberrt {

/// Milliseconds since an arbitrary epoch. All timestamps in the system
/// (event times, watermarks, retention, audit windows) use this unit.
using TimestampMs = int64_t;

/// Time source abstraction so that tests and deterministic benchmarks can
/// drive time explicitly while production-style runs use the wall clock.
class Clock {
 public:
  virtual ~Clock() = default;
  /// Current time in milliseconds.
  virtual TimestampMs NowMs() const = 0;
  /// Blocks (or advances simulated time) for the given duration.
  virtual void SleepMs(int64_t duration_ms) = 0;
};

/// Wall-clock backed by std::chrono::steady_clock.
class SystemClock : public Clock {
 public:
  TimestampMs NowMs() const override;
  void SleepMs(int64_t duration_ms) override;

  /// Process-wide instance (never destroyed; see style rule on statics).
  static SystemClock* Instance();
};

/// Manually-advanced clock for deterministic tests and simulations.
/// Thread-safe: multiple threads may read while one advances.
class SimulatedClock : public Clock {
 public:
  explicit SimulatedClock(TimestampMs start_ms = 0) : now_ms_(start_ms) {}

  TimestampMs NowMs() const override { return now_ms_.load(); }
  /// SleepMs on a simulated clock advances time rather than blocking.
  void SleepMs(int64_t duration_ms) override { AdvanceMs(duration_ms); }

  void AdvanceMs(int64_t delta_ms) { now_ms_.fetch_add(delta_ms); }
  void SetMs(TimestampMs now_ms) { now_ms_.store(now_ms); }

 private:
  std::atomic<TimestampMs> now_ms_;
};

}  // namespace uberrt

#endif  // UBERRT_COMMON_CLOCK_H_
