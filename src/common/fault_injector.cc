#include "common/fault_injector.h"

namespace uberrt::common {

namespace {

bool InOutage(const FaultRule& rule, TimestampMs now_ms) {
  for (const OutageWindow& window : rule.outages) {
    if (now_ms >= window.start_ms && now_ms < window.end_ms) return true;
  }
  return false;
}

}  // namespace

FaultInjector::FaultInjector(uint64_t seed, Clock* clock)
    : seed_(seed),
      clock_(clock),
      rng_(seed),
      checks_total_(metrics_.GetCounter("faults.checks")),
      injected_total_(metrics_.GetCounter("faults.injected")) {}

void FaultInjector::SetRule(const std::string& site, FaultRule rule) {
  std::lock_guard<std::mutex> lock(mu_);
  RuleState& state = rules_[site];
  state.rule = std::move(rule);
  state.triggered = 0;
}

void FaultInjector::ClearRule(const std::string& site) {
  std::lock_guard<std::mutex> lock(mu_);
  rules_.erase(site);
}

void FaultInjector::SetDown(const std::string& site, bool down) {
  std::lock_guard<std::mutex> lock(mu_);
  rules_[site].rule.down = down;
}

void FaultInjector::ScheduleOutage(const std::string& site,
                                   TimestampMs start_ms, TimestampMs end_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  rules_[site].rule.outages.push_back(OutageWindow{start_ms, end_ms});
}

std::vector<FaultInjector::RuleState*> FaultInjector::MatchingRulesLocked(
    const std::string& site) {
  std::vector<RuleState*> matches;
  // A rule applies when its site equals `site` or is a dot-prefix of it:
  // "store" matches "store.put"; "broker.produce" matches
  // "broker.produce.cluster-0"; "stor" matches nothing.
  for (auto& [name, state] : rules_) {
    if (name.size() > site.size()) continue;
    if (site.compare(0, name.size(), name) != 0) continue;
    if (name.size() < site.size() && site[name.size()] != '.') continue;
    matches.push_back(&state);
  }
  return matches;
}

Status FaultInjector::Check(const std::string& site) {
  checks_total_->Increment();
  int64_t latency_ms = 0;
  Status injected = Status::Ok();
  {
    std::lock_guard<std::mutex> lock(mu_);
    const TimestampMs now_ms = clock_->NowMs();
    for (RuleState* state : MatchingRulesLocked(site)) {
      const FaultRule& rule = state->rule;
      latency_ms += rule.added_latency_ms;
      if (injected.ok() && (rule.down || InOutage(rule, now_ms))) {
        injected = Status(rule.error_code, "injected outage at " + site);
      }
      if (injected.ok() && rule.error_probability > 0.0 &&
          (rule.max_triggers < 0 || state->triggered < rule.max_triggers) &&
          rng_.Chance(rule.error_probability)) {
        injected = Status(rule.error_code, "injected fault at " + site);
        state->triggered++;
      }
    }
  }
  if (latency_ms > 0) clock_->SleepMs(latency_ms);
  if (!injected.ok()) {
    injected_total_->Increment();
    metrics_.GetCounter("faults." + site + ".injected")->Increment();
  }
  return injected;
}

bool FaultInjector::IsDown(const std::string& site) const {
  bool down = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const TimestampMs now_ms = clock_->NowMs();
    for (const auto& [name, state] : rules_) {
      if (name.size() > site.size()) continue;
      if (site.compare(0, name.size(), name) != 0) continue;
      if (name.size() < site.size() && site[name.size()] != '.') continue;
      if (state.rule.down || InOutage(state.rule, now_ms)) {
        down = true;
        break;
      }
    }
  }
  if (down) metrics_.GetCounter("faults." + site + ".unavailable")->Increment();
  return down;
}

}  // namespace uberrt::common
