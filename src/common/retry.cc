#include "common/retry.h"

#include <algorithm>
#include <cmath>

namespace uberrt::common {

RetryPolicy::RetryPolicy(std::string name, RetryOptions options, Clock* clock,
                         MetricsRegistry* metrics, uint64_t seed)
    : name_(std::move(name)), options_(options), clock_(clock), rng_(seed) {
  MetricsRegistry* reg = metrics != nullptr ? metrics : &owned_metrics_;
  attempts_ = reg->GetCounter("retries." + name_ + ".attempts");
  retries_ = reg->GetCounter("retries." + name_ + ".retries");
  success_ = reg->GetCounter("retries." + name_ + ".success");
  exhausted_ = reg->GetCounter("retries." + name_ + ".exhausted");
}

Status RetryPolicy::Run(const std::function<Status()>& op) {
  const TimestampMs start_ms = clock_->NowMs();
  int32_t attempt = 1;
  attempts_->Increment();
  Status result = op();
  while (!result.ok() && ShouldRetry(result, attempt, start_ms)) {
    ++attempt;
    attempts_->Increment();
    retries_->Increment();
    result = op();
  }
  (result.ok() ? success_ : exhausted_)->Increment();
  return result;
}

bool RetryPolicy::ShouldRetry(const Status& failed, int32_t attempt,
                              TimestampMs start_ms) {
  if (!IsRetryable(failed)) return false;
  if (attempt >= options_.max_attempts) return false;
  double backoff = static_cast<double>(options_.initial_backoff_ms) *
                   std::pow(options_.multiplier, attempt - 1);
  backoff = std::min(backoff, static_cast<double>(options_.max_backoff_ms));
  if (options_.jitter > 0.0 && backoff > 0.0) {
    double factor;
    {
      std::lock_guard<std::mutex> lock(mu_);
      factor = 1.0 - options_.jitter + 2.0 * options_.jitter * rng_.NextDouble();
    }
    backoff *= factor;
  }
  const int64_t sleep_ms = static_cast<int64_t>(backoff);
  if (options_.deadline_ms >= 0) {
    const int64_t elapsed = clock_->NowMs() - start_ms;
    if (elapsed + sleep_ms > options_.deadline_ms) return false;
  }
  if (sleep_ms > 0) clock_->SleepMs(sleep_ms);
  return true;
}

}  // namespace uberrt::common
