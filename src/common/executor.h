#ifndef UBERRT_COMMON_EXECUTOR_H_
#define UBERRT_COMMON_EXECUTOR_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/metrics.h"
#include "common/queue.h"

namespace uberrt {
namespace common {

/// Completion latch for a batch of executor tasks: scatter with Add/Submit,
/// gather with Wait. Counts may go up and down concurrently; Wait returns
/// once the count reaches zero.
class WaitGroup {
 public:
  void Add(int64_t n = 1) {
    std::lock_guard<std::mutex> lock(mu_);
    count_ += n;
  }

  void Done() {
    std::lock_guard<std::mutex> lock(mu_);
    if (--count_ <= 0) cv_.notify_all();
  }

  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return count_ <= 0; });
  }

  /// Returns true when the count hit zero within the timeout.
  bool WaitFor(std::chrono::milliseconds timeout) {
    std::unique_lock<std::mutex> lock(mu_);
    return cv_.wait_for(lock, timeout, [&] { return count_ <= 0; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int64_t count_ = 0;
};

struct ExecutorOptions {
  /// 0 -> max(8, hardware_concurrency). Oversubscribed on purpose: pool
  /// tasks across the platform may sleep (proxy endpoints, idle sources),
  /// so the pool needs headroom beyond core count for liveness.
  size_t num_threads = 0;
  /// Task queue capacity; 0 = unbounded. The pool's own submission path
  /// must never block the platform's hot paths, so unbounded is the default.
  size_t queue_capacity = 0;
  /// Metric name prefix, e.g. "executor.platform".
  std::string name = "executor";
};

/// Fixed-size thread pool over BoundedQueue. One instance is shared by the
/// whole platform (olap scatter-gather, compute instance loops, proxy
/// dispatch), so total OS-thread count is a config knob rather than a
/// function of job width (DESIGN.md §2, paper §4.3).
///
/// Metrics (resolved once at construction, hot path touches no registry):
///   <name>.queue_depth        gauge, sampled at submit
///   <name>.tasks_submitted    counter
///   <name>.tasks_completed    counter
///   <name>.task_wait_us       histogram, submit -> start of execution
///   <name>.task_run_us        histogram, execution time
class Executor {
 public:
  using Task = std::function<void()>;

  explicit Executor(ExecutorOptions options = {});
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  /// Enqueues a task. Returns false after Shutdown (task is dropped).
  bool Submit(Task task);

  /// Stops accepting tasks, drains the queue, joins all threads. Idempotent.
  void Shutdown();

  size_t num_threads() const { return threads_.size(); }
  size_t QueueDepth() const { return queue_.Size(); }
  MetricsRegistry& metrics() { return metrics_; }

  /// Process-wide default pool for components constructed without an
  /// explicit executor. Function-local static: destroyed at exit, so leak
  /// checkers stay quiet.
  static Executor& Shared();

  /// Runs `count` indexed tasks as one gathered batch (a morsel task
  /// group): each index is submitted to `executor` and the call blocks
  /// until all have finished. With a null executor, a single task, or a
  /// pool that is already shut down, tasks run inline on the caller — the
  /// serial path and the degraded path are the same code. `fn` must be
  /// safe to call concurrently for distinct indices.
  static void RunTaskGroup(Executor* executor, size_t count,
                           const std::function<void(size_t)>& fn);

 private:
  struct Envelope {
    Task task;
    std::chrono::steady_clock::time_point submitted;
  };

  void WorkerLoop();

  MetricsRegistry metrics_;
  BoundedQueue<Envelope> queue_;
  std::vector<std::thread> threads_;
  std::mutex join_mu_;  // serializes concurrent Shutdown calls
  std::atomic<bool> shutdown_{false};

  Gauge* queue_depth_;
  Counter* tasks_submitted_;
  Counter* tasks_completed_;
  Histogram* task_wait_us_;
  Histogram* task_run_us_;
};

}  // namespace common
}  // namespace uberrt

#endif  // UBERRT_COMMON_EXECUTOR_H_
