#ifndef UBERRT_COMMON_METRICS_H_
#define UBERRT_COMMON_METRICS_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace uberrt {

/// Monotonic counter (messages produced, bytes written, retries, ...).
/// Relaxed memory order: a counter is a standalone statistic, never used to
/// publish other data, so the hot path pays no fence.
class Counter {
 public:
  void Increment(int64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Point-in-time gauge (queue depth, consumer lag, state size, ...).
/// Relaxed memory order, same rationale as Counter.
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Latency/size distribution with percentile queries. Stores raw samples;
/// fine at laptop scale and keeps percentiles exact for the SLA benches.
/// Percentile queries use a lazily-sorted cache invalidated by Record, so
/// repeated queries between records are O(1) after one sort instead of a
/// copy+sort per query; Mean/Max are running aggregates.
class Histogram {
 public:
  void Record(int64_t sample) {
    std::lock_guard<std::mutex> lock(mu_);
    samples_.push_back(sample);
    sorted_valid_ = false;
    sum_ += static_cast<double>(sample);
    if (samples_.size() == 1 || sample > max_) max_ = sample;
  }

  size_t Count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return samples_.size();
  }

  /// Exact percentile over recorded samples; q in [0,100]. Returns 0 when
  /// empty.
  int64_t Percentile(double q) const {
    std::lock_guard<std::mutex> lock(mu_);
    if (samples_.empty()) return 0;
    EnsureSortedLocked();
    size_t idx = static_cast<size_t>(q / 100.0 * static_cast<double>(sorted_.size() - 1));
    if (idx >= sorted_.size()) idx = sorted_.size() - 1;
    return sorted_[idx];
  }

  double Mean() const {
    std::lock_guard<std::mutex> lock(mu_);
    if (samples_.empty()) return 0.0;
    return sum_ / static_cast<double>(samples_.size());
  }

  /// Running sum of all recorded samples, without re-walking them.
  double Sum() const {
    std::lock_guard<std::mutex> lock(mu_);
    return sum_;
  }

  int64_t Max() const {
    std::lock_guard<std::mutex> lock(mu_);
    if (samples_.empty()) return 0;
    return max_;
  }

  void Reset() {
    std::lock_guard<std::mutex> lock(mu_);
    samples_.clear();
    sorted_.clear();
    sorted_valid_ = true;
    sum_ = 0.0;
    max_ = 0;
  }

 private:
  void EnsureSortedLocked() const {
    if (sorted_valid_) return;
    sorted_ = samples_;
    std::sort(sorted_.begin(), sorted_.end());
    sorted_valid_ = true;
  }

  mutable std::mutex mu_;
  std::vector<int64_t> samples_;
  mutable std::vector<int64_t> sorted_;   // cache, valid when sorted_valid_
  mutable bool sorted_valid_ = true;
  double sum_ = 0.0;
  int64_t max_ = 0;
};

/// Named metric registry. Each subsystem registers its counters here so the
/// platform layer can expose per-use-case dashboards and chargeback
/// (Section 9.3 of the paper). Objects returned are owned by the registry
/// and live as long as it does.
class MetricsRegistry {
 public:
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  /// Snapshot of all counter/gauge values, for dashboards and tests.
  std::map<std::string, int64_t> SnapshotValues() const;

  /// Renders a small text dashboard (name -> value) sorted by name.
  std::string RenderText() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace uberrt

#endif  // UBERRT_COMMON_METRICS_H_
