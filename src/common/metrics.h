#ifndef UBERRT_COMMON_METRICS_H_
#define UBERRT_COMMON_METRICS_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace uberrt {

/// Monotonic counter (messages produced, bytes written, retries, ...).
class Counter {
 public:
  void Increment(int64_t delta = 1) { value_.fetch_add(delta); }
  int64_t value() const { return value_.load(); }
  void Reset() { value_.store(0); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Point-in-time gauge (queue depth, consumer lag, state size, ...).
class Gauge {
 public:
  void Set(int64_t v) { value_.store(v); }
  void Add(int64_t delta) { value_.fetch_add(delta); }
  int64_t value() const { return value_.load(); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Latency/size distribution with percentile queries. Stores raw samples;
/// fine at laptop scale and keeps percentiles exact for the SLA benches.
class Histogram {
 public:
  void Record(int64_t sample) {
    std::lock_guard<std::mutex> lock(mu_);
    samples_.push_back(sample);
  }

  size_t Count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return samples_.size();
  }

  /// Exact percentile over recorded samples; q in [0,100]. Returns 0 when
  /// empty.
  int64_t Percentile(double q) const {
    std::lock_guard<std::mutex> lock(mu_);
    if (samples_.empty()) return 0;
    std::vector<int64_t> sorted = samples_;
    std::sort(sorted.begin(), sorted.end());
    size_t idx = static_cast<size_t>(q / 100.0 * static_cast<double>(sorted.size() - 1));
    if (idx >= sorted.size()) idx = sorted.size() - 1;
    return sorted[idx];
  }

  double Mean() const {
    std::lock_guard<std::mutex> lock(mu_);
    if (samples_.empty()) return 0.0;
    double sum = 0;
    for (int64_t s : samples_) sum += static_cast<double>(s);
    return sum / static_cast<double>(samples_.size());
  }

  int64_t Max() const {
    std::lock_guard<std::mutex> lock(mu_);
    if (samples_.empty()) return 0;
    return *std::max_element(samples_.begin(), samples_.end());
  }

  void Reset() {
    std::lock_guard<std::mutex> lock(mu_);
    samples_.clear();
  }

 private:
  mutable std::mutex mu_;
  std::vector<int64_t> samples_;
};

/// Named metric registry. Each subsystem registers its counters here so the
/// platform layer can expose per-use-case dashboards and chargeback
/// (Section 9.3 of the paper). Objects returned are owned by the registry
/// and live as long as it does.
class MetricsRegistry {
 public:
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  /// Snapshot of all counter/gauge values, for dashboards and tests.
  std::map<std::string, int64_t> SnapshotValues() const;

  /// Renders a small text dashboard (name -> value) sorted by name.
  std::string RenderText() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace uberrt

#endif  // UBERRT_COMMON_METRICS_H_
