#ifndef UBERRT_COMMON_RETRY_H_
#define UBERRT_COMMON_RETRY_H_

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>

#include "common/clock.h"
#include "common/metrics.h"
#include "common/rng.h"
#include "common/status.h"

namespace uberrt::common {

struct RetryOptions {
  /// Total attempts including the first (so max_attempts - 1 retries).
  int32_t max_attempts = 5;
  /// Backoff before retry n (1-based) is initial * multiplier^(n-1),
  /// capped at max_backoff_ms, then jittered.
  int64_t initial_backoff_ms = 1;
  double multiplier = 2.0;
  int64_t max_backoff_ms = 64;
  /// Fraction of the backoff randomized away: sleep is uniform in
  /// [backoff * (1 - jitter), backoff * (1 + jitter)].
  double jitter = 0.25;
  /// If >= 0, no retry is attempted once (elapsed + next backoff) would
  /// exceed this budget, measured from the first attempt.
  int64_t deadline_ms = -1;
};

/// Named retry loop with exponential backoff + jitter, the load-bearing
/// pattern for every transient-failure path (store puts, broker produces,
/// checkpoint save/load, OLAP sub-queries). Retries only transient codes
/// (see IsRetryable); everything else passes straight through.
///
/// Publishes, into the registry it was given (or an internal one):
///   retries.<name>.attempts   every invocation of the wrapped op
///   retries.<name>.retries    re-invocations after a retryable failure
///   retries.<name>.success    Run() calls that ended Ok
///   retries.<name>.exhausted  Run() calls that gave up (budget or code)
///
/// Thread safe: one policy can serve concurrent callers (jitter randomness
/// is mutex-guarded, counters are atomic).
class RetryPolicy {
 public:
  explicit RetryPolicy(std::string name, RetryOptions options = {},
                       Clock* clock = SystemClock::Instance(),
                       MetricsRegistry* metrics = nullptr, uint64_t seed = 42);

  /// True for the transient codes worth retrying.
  static bool IsRetryable(const Status& status) {
    return status.IsUnavailable() || status.IsTimeout() ||
           status.code() == StatusCode::kResourceExhausted;
  }

  /// Runs `op` until it returns Ok, a non-retryable code, or the budget
  /// (attempts / deadline) is exhausted. Returns the last status.
  Status Run(const std::function<Status()>& op);

  /// Result<T>-shaped variant of Run with the same budget and metrics.
  template <typename T>
  Result<T> RunResult(const std::function<Result<T>()>& op) {
    const TimestampMs start_ms = clock_->NowMs();
    int32_t attempt = 1;
    attempts_->Increment();
    Result<T> result = op();
    while (!result.ok() && ShouldRetry(result.status(), attempt, start_ms)) {
      ++attempt;
      attempts_->Increment();
      retries_->Increment();
      result = op();
    }
    (result.ok() ? success_ : exhausted_)->Increment();
    return result;
  }

  const std::string& name() const { return name_; }
  const RetryOptions& options() const { return options_; }

 private:
  /// Decides whether attempt `attempt` (1-based) that failed with `failed`
  /// should be followed by another; sleeps the jittered backoff when so.
  bool ShouldRetry(const Status& failed, int32_t attempt, TimestampMs start_ms);

  const std::string name_;
  const RetryOptions options_;
  Clock* const clock_;
  MetricsRegistry owned_metrics_;  // used when no registry is injected
  std::mutex mu_;
  Rng rng_;  // guarded by mu_
  Counter* attempts_;
  Counter* retries_;
  Counter* success_;
  Counter* exhausted_;
};

}  // namespace uberrt::common

#endif  // UBERRT_COMMON_RETRY_H_
