#ifndef UBERRT_COMMON_RNG_H_
#define UBERRT_COMMON_RNG_H_

#include <cmath>
#include <cstdint>
#include <random>
#include <string>
#include <vector>

namespace uberrt {

/// Seeded random source used by all workload generators and failure
/// injectors so that every test and benchmark is reproducible.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42) : engine_(seed) {}

  /// Uniform integer in [lo, hi] inclusive.
  int64_t Uniform(int64_t lo, int64_t hi) {
    std::uniform_int_distribution<int64_t> dist(lo, hi);
    return dist(engine_);
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    std::uniform_real_distribution<double> dist(0.0, 1.0);
    return dist(engine_);
  }

  /// Bernoulli trial with probability p of returning true.
  bool Chance(double p) { return NextDouble() < p; }

  /// Gaussian with the given mean and stddev.
  double Gaussian(double mean, double stddev) {
    std::normal_distribution<double> dist(mean, stddev);
    return dist(engine_);
  }

  /// Zipfian-distributed index in [0, n): a few indexes dominate, which is
  /// how hot geofences / popular restaurants behave in the paper's workloads.
  /// Uses the rejection-inversion-free clamped power-law approximation which
  /// is adequate for workload skew.
  int64_t Zipf(int64_t n, double exponent = 1.0) {
    // Inverse-CDF on a truncated power law.
    double u = NextDouble();
    double x = std::pow(static_cast<double>(n), 1.0 - exponent);
    double v = std::pow(u * (x - 1.0) + 1.0, 1.0 / (1.0 - exponent));
    int64_t idx = static_cast<int64_t>(v) - 1;
    if (idx < 0) idx = 0;
    if (idx >= n) idx = n - 1;
    return idx;
  }

  /// Random lowercase ASCII string of the given length.
  std::string AlphaString(size_t length) {
    std::string out(length, 'a');
    for (auto& c : out) c = static_cast<char>('a' + Uniform(0, 25));
    return out;
  }

  /// Picks one element of the vector uniformly. Requires non-empty input.
  template <typename T>
  const T& Pick(const std::vector<T>& items) {
    return items[static_cast<size_t>(Uniform(0, static_cast<int64_t>(items.size()) - 1))];
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace uberrt

#endif  // UBERRT_COMMON_RNG_H_
