#include "common/metrics.h"

#include <sstream>

namespace uberrt {

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return slot.get();
}

std::map<std::string, int64_t> MetricsRegistry::SnapshotValues() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, int64_t> out;
  for (const auto& [name, counter] : counters_) out[name] = counter->value();
  for (const auto& [name, gauge] : gauges_) out[name] = gauge->value();
  return out;
}

std::string MetricsRegistry::RenderText() const {
  std::ostringstream os;
  for (const auto& [name, value] : SnapshotValues()) {
    os << name << " = " << value << "\n";
  }
  return os.str();
}

}  // namespace uberrt
