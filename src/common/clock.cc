#include "common/clock.h"

#include <thread>

namespace uberrt {

TimestampMs SystemClock::NowMs() const {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void SystemClock::SleepMs(int64_t duration_ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(duration_ms));
}

SystemClock* SystemClock::Instance() {
  static SystemClock* instance = new SystemClock();
  return instance;
}

}  // namespace uberrt
