#ifndef UBERRT_COMMON_QUEUE_H_
#define UBERRT_COMMON_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace uberrt {

/// Blocking multi-producer multi-consumer queue.
///
/// Two capacity regimes model the two flow-control architectures compared in
/// the paper (Section 4.2): a bounded queue gives credit-based backpressure
/// (Flink-like — producers block when the consumer falls behind), while an
/// unbounded queue (capacity == 0) admits the whole backlog into memory
/// (Storm-like).
template <typename T>
class BoundedQueue {
 public:
  /// capacity == 0 means unbounded.
  explicit BoundedQueue(size_t capacity = 0) : capacity_(capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Blocks while the queue is full. Returns false if the queue was closed.
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [&] {
      return closed_ || capacity_ == 0 || items_.size() < capacity_;
    });
    if (closed_) return false;
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push. Returns false when full or closed.
  bool TryPush(T item) {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return false;
    if (capacity_ != 0 && items_.size() >= capacity_) return false;
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking push that leaves `item` intact on failure, so callers can
  /// stash it and retry later (cooperative backpressure without losing the
  /// element the way TryPush-by-value would).
  bool TryPushRef(T& item) {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return false;
    if (capacity_ != 0 && items_.size() >= capacity_) return false;
    items_.push_back(std::move(item));
    not_empty_.notify_one();
    return true;
  }

  /// Blocks until an item is available or the queue is closed and drained.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;  // closed and drained
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  /// Non-blocking pop.
  std::optional<T> TryPop() {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return item;
  }

  /// After Close(), pushes fail and pops drain the remaining items then
  /// return nullopt.
  void Close() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  size_t Size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace uberrt

#endif  // UBERRT_COMMON_QUEUE_H_
