#include "common/executor.h"

#include <algorithm>
#include <utility>

namespace uberrt {
namespace common {

namespace {
size_t ResolveThreadCount(size_t requested) {
  if (requested > 0) return requested;
  size_t hw = std::thread::hardware_concurrency();
  return std::max<size_t>(8, hw);
}
}  // namespace

Executor::Executor(ExecutorOptions options)
    : queue_(options.queue_capacity),
      queue_depth_(metrics_.GetGauge(options.name + ".queue_depth")),
      tasks_submitted_(metrics_.GetCounter(options.name + ".tasks_submitted")),
      tasks_completed_(metrics_.GetCounter(options.name + ".tasks_completed")),
      task_wait_us_(metrics_.GetHistogram(options.name + ".task_wait_us")),
      task_run_us_(metrics_.GetHistogram(options.name + ".task_run_us")) {
  size_t n = ResolveThreadCount(options.num_threads);
  threads_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

Executor::~Executor() { Shutdown(); }

bool Executor::Submit(Task task) {
  if (shutdown_.load(std::memory_order_acquire)) return false;
  Envelope env{std::move(task), std::chrono::steady_clock::now()};
  if (!queue_.Push(std::move(env))) return false;  // closed under our feet
  tasks_submitted_->Increment();
  queue_depth_->Set(static_cast<int64_t>(queue_.Size()));
  return true;
}

void Executor::Shutdown() {
  shutdown_.store(true, std::memory_order_release);
  queue_.Close();
  std::lock_guard<std::mutex> lock(join_mu_);
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
}

void Executor::WorkerLoop() {
  while (true) {
    std::optional<Envelope> env = queue_.Pop();
    if (!env) return;  // closed and drained
    auto start = std::chrono::steady_clock::now();
    task_wait_us_->Record(
        std::chrono::duration_cast<std::chrono::microseconds>(start -
                                                              env->submitted)
            .count());
    env->task();
    task_run_us_->Record(std::chrono::duration_cast<std::chrono::microseconds>(
                             std::chrono::steady_clock::now() - start)
                             .count());
    tasks_completed_->Increment();
  }
}

Executor& Executor::Shared() {
  static Executor shared{ExecutorOptions{0, 0, "executor.shared"}};
  return shared;
}

void Executor::RunTaskGroup(Executor* executor, size_t count,
                            const std::function<void(size_t)>& fn) {
  if (count == 0) return;
  if (executor == nullptr || count == 1) {
    for (size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  WaitGroup wg;
  for (size_t i = 0; i < count; ++i) {
    wg.Add();
    if (!executor->Submit([&fn, &wg, i] {
          fn(i);
          wg.Done();
        })) {
      fn(i);  // pool already shut down: degrade to inline
      wg.Done();
    }
  }
  wg.Wait();
}

}  // namespace common
}  // namespace uberrt
