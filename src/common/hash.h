#ifndef UBERRT_COMMON_HASH_H_
#define UBERRT_COMMON_HASH_H_

#include <cstdint>
#include <string_view>

namespace uberrt {

/// 64-bit FNV-1a. Used for partitioning keys across stream partitions and
/// OLAP upsert partitions; stable across runs so tests can assert placement.
inline uint64_t Fnv1a64(std::string_view data) {
  uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : data) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

/// Maps a key to one of n partitions (n > 0).
inline uint32_t KeyToPartition(std::string_view key, uint32_t num_partitions) {
  return static_cast<uint32_t>(Fnv1a64(key) % num_partitions);
}

}  // namespace uberrt

#endif  // UBERRT_COMMON_HASH_H_
