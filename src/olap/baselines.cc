#include "olap/baselines.h"

#include <algorithm>

#include "olap/cluster.h"
#include "olap/table.h"

namespace uberrt::olap {

namespace {

std::string ToJsonDoc(const RowSchema& schema, const Row& row) {
  std::string doc = "{";
  for (size_t i = 0; i < row.size(); ++i) {
    if (i > 0) doc += ",";
    doc += "\"" + schema.fields()[i].name + "\":";
    if (row[i].type() == ValueType::kString) {
      doc += "\"" + row[i].AsString() + "\"";
    } else {
      doc += row[i].ToString();
    }
  }
  doc += "}";
  return doc;
}

int64_t ValueBytes(const Value& v) {
  int64_t bytes = static_cast<int64_t>(sizeof(Value));
  if (v.type() == ValueType::kString) bytes += static_cast<int64_t>(v.AsString().size());
  return bytes;
}

}  // namespace

EsLikeStore::EsLikeStore(RowSchema schema) : schema_(std::move(schema)) {
  postings_.resize(schema_.NumFields());
  fielddata_.resize(schema_.NumFields());
}

Status EsLikeStore::Ingest(const Row& row) {
  if (row.size() != schema_.NumFields()) {
    return Status::InvalidArgument("row width mismatch");
  }
  uint32_t doc_id = static_cast<uint32_t>(docs_.size());
  std::string doc = ToJsonDoc(schema_, row);
  docs_bytes_ += static_cast<int64_t>(doc.size()) + 32;
  docs_.push_back(std::move(doc));
  for (size_t f = 0; f < row.size(); ++f) {
    auto [it, inserted] = postings_[f].try_emplace(row[f]);
    if (inserted) postings_bytes_ += ValueBytes(row[f]) + 48;
    it->second.push_back(doc_id);
    postings_bytes_ += 4;
    // Keep already-materialized fielddata arrays in sync.
    if (fielddata_[f].size() == static_cast<size_t>(doc_id) && doc_id > 0) {
      fielddata_[f].push_back(row[f]);
      fielddata_bytes_ += ValueBytes(row[f]);
    }
  }
  return Status::Ok();
}

const std::vector<Value>& EsLikeStore::Fielddata(int field_index) const {
  std::vector<Value>& data = fielddata_[static_cast<size_t>(field_index)];
  if (data.size() == docs_.size()) return data;
  // Materialize from postings (uninverting, as ES fielddata does).
  data.assign(docs_.size(), Value::Null());
  for (const auto& [term, doc_ids] : postings_[static_cast<size_t>(field_index)]) {
    for (uint32_t d : doc_ids) {
      data[d] = term;
      fielddata_bytes_ += ValueBytes(term);
    }
  }
  return data;
}

Result<std::vector<uint32_t>> EsLikeStore::FilterDocs(
    const std::vector<FilterPredicate>& preds, bool* all) const {
  *all = preds.empty();
  if (*all) return std::vector<uint32_t>{};
  std::vector<uint32_t> candidates;
  bool have = false;
  for (const FilterPredicate& pred : preds) {
    int idx = schema_.FieldIndex(pred.column);
    if (idx < 0) return Status::InvalidArgument("unknown column: " + pred.column);
    const auto& terms = postings_[static_cast<size_t>(idx)];
    std::vector<uint32_t> matched;
    auto add_range = [&](auto begin, auto end) {
      for (auto it = begin; it != end; ++it) {
        matched.insert(matched.end(), it->second.begin(), it->second.end());
      }
    };
    switch (pred.op) {
      case FilterPredicate::Op::kEq: {
        auto it = terms.find(pred.value);
        if (it != terms.end()) matched = it->second;
        break;
      }
      case FilterPredicate::Op::kNe: {
        for (const auto& [term, ids] : terms) {
          if (!(term < pred.value) && !(pred.value < term)) continue;
          matched.insert(matched.end(), ids.begin(), ids.end());
        }
        break;
      }
      case FilterPredicate::Op::kLt:
        add_range(terms.begin(), terms.lower_bound(pred.value));
        break;
      case FilterPredicate::Op::kLe:
        add_range(terms.begin(), terms.upper_bound(pred.value));
        break;
      case FilterPredicate::Op::kGt:
        add_range(terms.upper_bound(pred.value), terms.end());
        break;
      case FilterPredicate::Op::kGe:
        add_range(terms.lower_bound(pred.value), terms.end());
        break;
    }
    std::sort(matched.begin(), matched.end());
    if (!have) {
      candidates = std::move(matched);
      have = true;
    } else {
      std::vector<uint32_t> merged;
      std::set_intersection(candidates.begin(), candidates.end(), matched.begin(),
                            matched.end(), std::back_inserter(merged));
      candidates = std::move(merged);
    }
    if (candidates.empty()) break;
  }
  return candidates;
}

Result<OlapResult> EsLikeStore::Query(const OlapQuery& query) const {
  bool all = false;
  Result<std::vector<uint32_t>> docs = FilterDocs(query.filters, &all);
  if (!docs.ok()) return docs.status();

  std::vector<Row> partials;
  if (!query.aggregations.empty()) {
    std::vector<const std::vector<Value>*> group_data;
    for (const std::string& g : query.group_by) {
      int idx = schema_.FieldIndex(g);
      if (idx < 0) return Status::InvalidArgument("unknown group column: " + g);
      group_data.push_back(&Fielddata(idx));
    }
    std::vector<const std::vector<Value>*> agg_data(query.aggregations.size(), nullptr);
    for (size_t a = 0; a < query.aggregations.size(); ++a) {
      if (query.aggregations[a].column.empty()) continue;
      int idx = schema_.FieldIndex(query.aggregations[a].column);
      if (idx < 0) return Status::InvalidArgument("unknown aggregate column");
      agg_data[a] = &Fielddata(idx);
    }
    struct GroupEntry {
      Row key_values;
      std::vector<AggAccumulator> accs;
    };
    std::map<std::string, GroupEntry> groups;
    auto process = [&](uint32_t d) {
      std::string key;
      for (const auto* data : group_data) {
        key.append((*data)[d].ToString());
        key.push_back('\0');
      }
      GroupEntry& entry = groups[key];
      if (entry.accs.empty()) {
        entry.accs.resize(query.aggregations.size());
        for (const auto* data : group_data) entry.key_values.push_back((*data)[d]);
      }
      for (size_t a = 0; a < query.aggregations.size(); ++a) {
        entry.accs[a].Add(agg_data[a] != nullptr ? (*agg_data[a])[d].ToNumeric() : 0.0);
      }
    };
    if (all) {
      for (uint32_t d = 0; d < docs_.size(); ++d) process(d);
    } else {
      for (uint32_t d : docs.value()) process(d);
    }
    for (auto& [key, entry] : groups) {
      Row row = std::move(entry.key_values);
      for (const AggAccumulator& acc : entry.accs) AppendAccumulator(&row, acc);
      partials.push_back(std::move(row));
    }
  } else {
    std::vector<const std::vector<Value>*> select_data;
    for (const std::string& s : query.select_columns) {
      int idx = schema_.FieldIndex(s);
      if (idx < 0) return Status::InvalidArgument("unknown column: " + s);
      select_data.push_back(&Fielddata(idx));
    }
    auto emit = [&](uint32_t d) {
      Row row;
      for (const auto* data : select_data) row.push_back((*data)[d]);
      partials.push_back(std::move(row));
    };
    if (all) {
      for (uint32_t d = 0; d < docs_.size(); ++d) emit(d);
    } else {
      for (uint32_t d : docs.value()) emit(d);
    }
  }
  return MergeAndFinalize(query, schema_, std::move(partials));
}

int64_t EsLikeStore::MemoryBytes() const {
  return docs_bytes_ + postings_bytes_ + fielddata_bytes_;
}

int64_t EsLikeStore::DiskBytes() const { return docs_bytes_ + postings_bytes_; }

SegmentIndexConfig DruidLikeIndexConfig(const std::vector<std::string>& inverted_columns) {
  SegmentIndexConfig config;
  config.inverted_columns = inverted_columns;
  config.bit_packed_forward_index = false;
  return config;
}

Result<OlapResult> ScalarBaselineExecute(const Segment& segment, OlapQuery query,
                                         OlapQueryStats* stats) {
  query.force_scalar = true;
  return segment.Execute(query, /*validity=*/nullptr, stats);
}

}  // namespace uberrt::olap
