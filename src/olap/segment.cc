#include "olap/segment.h"

#include <algorithm>
#include <cstring>
#include <limits>
#include <mutex>
#include <set>

#include "common/hash.h"

namespace uberrt::olap {

namespace {

void AppendU32(std::string* out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out->append(buf, 4);
}

void AppendU64(std::string* out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out->append(buf, 8);
}

void AppendString(std::string* out, const std::string& s) {
  AppendU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

bool ReadU32(const std::string& data, size_t* pos, uint32_t* out) {
  if (*pos + 4 > data.size()) return false;
  std::memcpy(out, data.data() + *pos, 4);
  *pos += 4;
  return true;
}

bool ReadU64(const std::string& data, size_t* pos, uint64_t* out) {
  if (*pos + 8 > data.size()) return false;
  std::memcpy(out, data.data() + *pos, 8);
  *pos += 8;
  return true;
}

bool ReadString(const std::string& data, size_t* pos, std::string* out) {
  uint32_t len;
  if (!ReadU32(data, pos, &len)) return false;
  if (*pos + len > data.size()) return false;
  out->assign(data, *pos, len);
  *pos += len;
  return true;
}

int64_t ValueMemoryBytes(const Value& v) {
  int64_t bytes = static_cast<int64_t>(sizeof(Value));
  if (v.type() == ValueType::kString) bytes += static_cast<int64_t>(v.AsString().size());
  return bytes;
}

/// Coerces a cell to the column's declared type (ingest normalization).
Value CoerceTo(ValueType type, const Value& v) {
  if (v.is_null() || v.type() == type) return v;
  switch (type) {
    case ValueType::kInt:
      return Value(static_cast<int64_t>(v.ToNumeric()));
    case ValueType::kDouble:
      return Value(v.ToNumeric());
    case ValueType::kBool:
      return Value(v.ToNumeric() != 0.0);
    case ValueType::kString:
      return Value(v.ToString());
    case ValueType::kNull:
      return v;
  }
  return v;
}

/// Big-endian u32: lexicographic order of the encoded bytes equals numeric
/// order of the ids, so map-keyed group emission matches the vectorized
/// engine's packed-key sort order exactly.
void AppendU32BE(std::string* out, uint32_t v) {
  char buf[4] = {static_cast<char>(v >> 24), static_cast<char>(v >> 16),
                 static_cast<char>(v >> 8), static_cast<char>(v)};
  out->append(buf, 4);
}

uint32_t ReadU32BE(const char* p) {
  return (static_cast<uint32_t>(static_cast<unsigned char>(p[0])) << 24) |
         (static_cast<uint32_t>(static_cast<unsigned char>(p[1])) << 16) |
         (static_cast<uint32_t>(static_cast<unsigned char>(p[2])) << 8) |
         static_cast<uint32_t>(static_cast<unsigned char>(p[3]));
}

std::string EncodeIdTuple(const std::vector<uint32_t>& ids, size_t count) {
  std::string key;
  key.reserve(count * 4);
  for (size_t i = 0; i < count; ++i) AppendU32BE(&key, ids[i]);
  return key;
}

}  // namespace

// --- BitPackedVector ------------------------------------------------------

BitPackedVector::BitPackedVector(const std::vector<uint32_t>& values,
                                 uint32_t max_value) {
  bits_ = 1;
  while ((1ULL << bits_) <= max_value) ++bits_;
  size_ = values.size();
  words_.assign((size_ * static_cast<size_t>(bits_) + 63) / 64, 0);
  for (size_t i = 0; i < values.size(); ++i) {
    size_t bit = i * static_cast<size_t>(bits_);
    size_t word = bit / 64;
    int shift = static_cast<int>(bit % 64);
    words_[word] |= static_cast<uint64_t>(values[i]) << shift;
    if (shift + bits_ > 64) {
      words_[word + 1] |= static_cast<uint64_t>(values[i]) >> (64 - shift);
    }
  }
}

uint32_t BitPackedVector::Get(size_t index) const {
  size_t bit = index * static_cast<size_t>(bits_);
  size_t word = bit / 64;
  int shift = static_cast<int>(bit % 64);
  uint64_t v = words_[word] >> shift;
  if (shift + bits_ > 64) v |= words_[word + 1] << (64 - shift);
  return static_cast<uint32_t>(v & ((1ULL << bits_) - 1));
}

void BitPackedVector::Unpack(size_t start, size_t count, uint32_t* out) const {
  const uint64_t mask = (1ULL << bits_) - 1;
  const size_t bits = static_cast<size_t>(bits_);
  size_t bit = start * bits;
  for (size_t i = 0; i < count; ++i, bit += bits) {
    size_t word = bit >> 6;
    size_t shift = bit & 63;
    uint64_t v = words_[word] >> shift;
    if (shift + bits > 64) v |= words_[word + 1] << (64 - shift);
    out[i] = static_cast<uint32_t>(v & mask);
  }
}

Result<BitPackedVector> BitPackedVector::FromWords(int bits, size_t size,
                                                   std::vector<uint64_t> words) {
  if (bits < 1 || bits > 32) {
    return Status::Corruption("bit-packed vector: bad bit width");
  }
  if (size > (std::numeric_limits<size_t>::max() - 63) / static_cast<size_t>(bits)) {
    return Status::Corruption("bit-packed vector: size overflow");
  }
  if (words.size() != (size * static_cast<size_t>(bits) + 63) / 64) {
    return Status::Corruption("bit-packed vector: word count mismatch");
  }
  BitPackedVector v;
  v.bits_ = bits;
  v.size_ = size;
  v.words_ = std::move(words);
  return v;
}

// --- AggAccumulator helpers (shared partial-aggregate layout) -------------

void AggAccumulator::Add(double v) {
  if (count == 0) {
    min = v;
    max = v;
  } else {
    if (v < min) min = v;
    if (v > max) max = v;
  }
  ++count;
  sum += v;
}

void AggAccumulator::Merge(const AggAccumulator& other) {
  if (other.count == 0) return;
  if (count == 0) {
    *this = other;
    return;
  }
  count += other.count;
  sum += other.sum;
  if (other.min < min) min = other.min;
  if (other.max > max) max = other.max;
}

Value AggAccumulator::Finalize(OlapAggregation::Kind kind) const {
  switch (kind) {
    case OlapAggregation::Kind::kCount: return Value(count);
    case OlapAggregation::Kind::kSum: return Value(sum);
    case OlapAggregation::Kind::kMin: return Value(count == 0 ? 0.0 : min);
    case OlapAggregation::Kind::kMax: return Value(count == 0 ? 0.0 : max);
    case OlapAggregation::Kind::kAvg:
      return Value(count == 0 ? 0.0 : sum / static_cast<double>(count));
  }
  return Value::Null();
}

void AppendAccumulator(Row* row, const AggAccumulator& acc) {
  row->push_back(Value(acc.count));
  row->push_back(Value(acc.sum));
  row->push_back(Value(acc.min));
  row->push_back(Value(acc.max));
}

Result<AggAccumulator> ReadAccumulator(const Row& row, size_t offset) {
  if (offset + 4 > row.size()) return Status::Corruption("partial row too short");
  AggAccumulator acc;
  acc.count = row[offset].AsInt();
  acc.sum = row[offset + 1].AsDouble();
  acc.min = row[offset + 2].AsDouble();
  acc.max = row[offset + 3].AsDouble();
  return acc;
}

// --- Segment build ---------------------------------------------------------

void Segment::Column::UnpackRange(size_t start, size_t count, uint32_t* out) const {
  if (!plain.empty()) {
    std::memcpy(out, plain.data() + start, count * sizeof(uint32_t));
  } else {
    packed.Unpack(start, count, out);
  }
}

void Segment::BuildNumericDictionaries() {
  for (Column& column : columns_) {
    column.dict_numeric.resize(column.dictionary.size());
    for (size_t i = 0; i < column.dictionary.size(); ++i) {
      column.dict_numeric[i] = column.dictionary[i].ToNumeric();
    }
  }
}

int64_t Segment::Column::MemoryBytes() const {
  int64_t bytes = 64;
  for (const Value& v : dictionary) bytes += ValueMemoryBytes(v);
  bytes += packed.MemoryBytes();
  bytes += static_cast<int64_t>(plain.capacity() * sizeof(uint32_t));
  if (has_inverted) {
    for (const auto& list : inverted) {
      bytes += static_cast<int64_t>(list.capacity() * sizeof(uint32_t)) + 24;
    }
  }
  return bytes;
}

Result<std::shared_ptr<Segment>> Segment::Build(std::string name, RowSchema schema,
                                                std::vector<Row> rows,
                                                SegmentIndexConfig config) {
  auto segment = std::shared_ptr<Segment>(new Segment());
  segment->name_ = std::move(name);
  segment->schema_ = std::move(schema);
  segment->config_ = config;
  const size_t num_cols = segment->schema_.NumFields();
  for (const Row& row : rows) {
    if (row.size() != num_cols) {
      return Status::InvalidArgument("row width mismatch in segment build");
    }
  }

  // Sort rows by the sorted column, if any.
  if (!config.sorted_column.empty()) {
    int idx = segment->schema_.FieldIndex(config.sorted_column);
    if (idx < 0) return Status::InvalidArgument("sorted column not in schema");
    segment->sorted_column_ = idx;
    std::stable_sort(rows.begin(), rows.end(), [idx](const Row& a, const Row& b) {
      return a[static_cast<size_t>(idx)] < b[static_cast<size_t>(idx)];
    });
  }
  segment->num_rows_ = rows.size();

  // Dictionary-encode each column.
  segment->columns_.resize(num_cols);
  for (size_t c = 0; c < num_cols; ++c) {
    Column& column = segment->columns_[c];
    column.type = segment->schema_.fields()[c].type;
    std::set<Value> values;
    for (const Row& row : rows) values.insert(CoerceTo(column.type, row[c]));
    column.dictionary.assign(values.begin(), values.end());
    std::vector<uint32_t> ids(rows.size());
    for (size_t r = 0; r < rows.size(); ++r) {
      auto it = std::lower_bound(column.dictionary.begin(), column.dictionary.end(),
                                 CoerceTo(column.type, rows[r][c]));
      ids[r] = static_cast<uint32_t>(it - column.dictionary.begin());
    }
    uint32_t max_id =
        column.dictionary.empty() ? 0
                                  : static_cast<uint32_t>(column.dictionary.size() - 1);
    if (config.bit_packed_forward_index) {
      column.packed = BitPackedVector(ids, max_id);
    } else {
      column.plain = std::move(ids);
    }
  }

  segment->BuildNumericDictionaries();
  segment->BuildZoneMaps();
  segment->BuildIndexes(config);
  return segment;
}

void Segment::BuildIndexes(const SegmentIndexConfig& config) {
  constexpr size_t kBatch = 1024;
  std::vector<uint32_t> batch(std::min(kBatch, std::max<size_t>(num_rows_, 1)));

  // Inverted indexes (batch-decoded forward index instead of per-row Get).
  for (const std::string& name : config.inverted_columns) {
    int idx = schema_.FieldIndex(name);
    if (idx < 0) continue;
    Column& column = columns_[static_cast<size_t>(idx)];
    column.has_inverted = true;
    column.inverted.assign(column.dictionary.size(), {});
    for (size_t base = 0; base < num_rows_; base += kBatch) {
      size_t count = std::min(kBatch, num_rows_ - base);
      column.UnpackRange(base, count, batch.data());
      for (size_t i = 0; i < count; ++i) {
        column.inverted[batch[i]].push_back(static_cast<uint32_t>(base + i));
      }
    }
  }

  // Star-tree cube.
  star_dims_.clear();
  star_metrics_.clear();
  for (const std::string& dim : config.star_tree_dimensions) {
    int idx = schema_.FieldIndex(dim);
    if (idx >= 0) star_dims_.push_back(idx);
  }
  for (const std::string& metric : config.star_tree_metrics) {
    int idx = schema_.FieldIndex(metric);
    if (idx >= 0) star_metrics_.push_back(idx);
  }
  star_tree_.clear();
  star_root_ = StarTreeCell{};
  if (star_dims_.empty()) return;
  star_tree_.resize(star_dims_.size());
  size_t num_metrics = star_metrics_.size();
  star_root_.sum.assign(num_metrics, 0);
  star_root_.min.assign(num_metrics, 0);
  star_root_.max.assign(num_metrics, 0);
  std::vector<std::vector<uint32_t>> dim_ids(
      star_dims_.size(), std::vector<uint32_t>(batch.size()));
  std::vector<std::vector<uint32_t>> metric_ids(
      num_metrics, std::vector<uint32_t>(batch.size()));
  std::vector<uint32_t> ids(star_dims_.size());
  std::vector<double> metric_values(num_metrics);
  for (size_t base = 0; base < num_rows_; base += kBatch) {
    size_t count = std::min(kBatch, num_rows_ - base);
    for (size_t d = 0; d < star_dims_.size(); ++d) {
      columns_[static_cast<size_t>(star_dims_[d])].UnpackRange(base, count,
                                                              dim_ids[d].data());
    }
    for (size_t m = 0; m < num_metrics; ++m) {
      columns_[static_cast<size_t>(star_metrics_[m])].UnpackRange(
          base, count, metric_ids[m].data());
    }
    for (size_t i = 0; i < count; ++i) {
      for (size_t d = 0; d < star_dims_.size(); ++d) ids[d] = dim_ids[d][i];
      for (size_t m = 0; m < num_metrics; ++m) {
        const Column& mc = columns_[static_cast<size_t>(star_metrics_[m])];
        metric_values[m] = mc.dict_numeric[metric_ids[m][i]];
      }
      auto update = [&](StarTreeCell& cell) {
        if (cell.sum.empty()) {
          cell.sum.assign(num_metrics, 0);
          cell.min.assign(num_metrics, 0);
          cell.max.assign(num_metrics, 0);
        }
        for (size_t m = 0; m < num_metrics; ++m) {
          if (cell.count == 0) {
            cell.min[m] = metric_values[m];
            cell.max[m] = metric_values[m];
          } else {
            cell.min[m] = std::min(cell.min[m], metric_values[m]);
            cell.max[m] = std::max(cell.max[m], metric_values[m]);
          }
          cell.sum[m] += metric_values[m];
        }
        ++cell.count;
      };
      update(star_root_);
      for (size_t k = 1; k <= star_dims_.size(); ++k) {
        update(star_tree_[k - 1][EncodeIdTuple(ids, k)]);
      }
    }
  }
}

Value Segment::GetValue(size_t row_index, int column_index) const {
  const Column& column = columns_[static_cast<size_t>(column_index)];
  return column.dictionary[column.IdAt(row_index)];
}

Row Segment::GetRow(size_t row_index) const {
  Row row;
  row.reserve(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) {
    row.push_back(GetValue(row_index, static_cast<int>(c)));
  }
  return row;
}

int64_t Segment::MemoryBytes() const {
  // Lazy decode mutates columns_ under lazy_->mu; hold it across the walk
  // so footprint accounting never races a first-touch materialization.
  std::unique_lock<std::mutex> lock;
  if (lazy_ != nullptr) lock = std::unique_lock<std::mutex>(lazy_->mu);
  int64_t bytes = 128;
  for (const Column& column : columns_) bytes += column.MemoryBytes();
  for (const ZoneMap& zone : zones_) {
    bytes += 16 + static_cast<int64_t>(zone.bloom.capacity() * sizeof(uint64_t)) +
             ValueMemoryBytes(zone.min) + ValueMemoryBytes(zone.max);
  }
  size_t num_metrics = star_metrics_.size();
  for (const auto& level : star_tree_) {
    for (const auto& [key, cell] : level) {
      bytes += static_cast<int64_t>(key.size()) + 48 +
               static_cast<int64_t>(num_metrics * 3 * sizeof(double));
    }
  }
  return bytes;
}

// --- Zone maps & bloom pruning ---------------------------------------------

namespace {

/// Dictionaries below this stay bloom-less: a binary search over a handful
/// of values beats maintaining and probing filter words.
constexpr size_t kBloomMinCardinality = 64;
/// Filter bits per distinct value (2 probes -> ~5% false positives).
constexpr uint64_t kBloomBitsPerValue = 8;

uint64_t BloomHash(const Value& v) { return Fnv1a64(EncodeRow({v})); }

}  // namespace

bool Segment::ZoneMap::MayContain(uint64_t hash) const {
  if (bloom.empty()) return true;
  uint64_t h2 = (hash >> 32) | 1;
  for (uint64_t probe = 0; probe < 2; ++probe) {
    uint64_t bit = (hash + probe * h2) & bloom_mask;
    if ((bloom[bit >> 6] & (1ULL << (bit & 63))) == 0) return false;
  }
  return true;
}

void Segment::BuildZoneMaps(bool keep_blooms) {
  if (!keep_blooms) zones_.clear();
  zones_.resize(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) {
    ZoneMap& zone = zones_[c];
    const Column& column = columns_[c];
    if (column.dictionary.empty()) continue;
    // The dictionary is sorted, so min/max need no extra storage.
    zone.min = column.dictionary.front();
    zone.max = column.dictionary.back();
    if (keep_blooms && !zone.bloom.empty()) continue;
    zone.bloom.clear();
    zone.bloom_mask = 0;
    if (column.dictionary.size() < kBloomMinCardinality) continue;
    uint64_t bits = 64;
    while (bits < column.dictionary.size() * kBloomBitsPerValue) bits <<= 1;
    zone.bloom_mask = bits - 1;
    zone.bloom.assign(bits / 64, 0);
    for (const Value& v : column.dictionary) {
      uint64_t hash = BloomHash(v);
      uint64_t h2 = (hash >> 32) | 1;
      for (uint64_t probe = 0; probe < 2; ++probe) {
        uint64_t bit = (hash + probe * h2) & zone.bloom_mask;
        zone.bloom[bit >> 6] |= 1ULL << (bit & 63);
      }
    }
  }
}

bool Segment::CanMatch(const FilterPredicate& pred) const {
  int idx = ColumnIndex(pred.column);
  if (idx < 0) return true;  // unknown column: execution reports the error
  if (zones_.size() != columns_.size()) return true;
  const Column& column = columns_[static_cast<size_t>(idx)];
  const ZoneMap& zone = zones_[static_cast<size_t>(idx)];
  if (column.dictionary.empty()) return false;  // no rows, nothing matches
  // Coerce exactly like PredicateIdRange so pruning can never disagree with
  // execution.
  Value target = CoerceTo(column.type, pred.value);
  const Value& lo = zone.min;
  const Value& hi = zone.max;
  switch (pred.op) {
    case FilterPredicate::Op::kEq: {
      if (target < lo || hi < target) return false;
      if (!zone.MayContain(BloomHash(target))) return false;
      // The dictionary is resident, so back the bloom's "maybe" with the
      // exact membership answer.
      return std::binary_search(column.dictionary.begin(),
                                column.dictionary.end(), target);
    }
    case FilterPredicate::Op::kNe:
      // Prunable only when every row holds exactly the target value.
      return !(column.dictionary.size() == 1 && !(lo < target) && !(target < lo));
    case FilterPredicate::Op::kLt:
      return lo < target;
    case FilterPredicate::Op::kLe:
      return !(target < lo);
    case FilterPredicate::Op::kGt:
      return target < hi;
    case FilterPredicate::Op::kGe:
      return !(hi < target);
  }
  return true;
}

// --- Detached prune info (warm/cold tiers) ----------------------------------

bool SegmentPruneInfo::CanMatch(const FilterPredicate& pred) const {
  const ColumnPrune* col = nullptr;
  for (const ColumnPrune& c : columns_) {
    if (c.name == pred.column) {
      col = &c;
      break;
    }
  }
  if (col == nullptr) return true;  // unknown column: execution reports it
  if (!col->any_rows) return false;
  Value target = CoerceTo(col->type, pred.value);
  const Value& lo = col->min;
  const Value& hi = col->max;
  switch (pred.op) {
    case FilterPredicate::Op::kEq: {
      if (target < lo || hi < target) return false;
      // Bloom-only membership — no resident dictionary to back the "maybe"
      // with an exact answer, so a false positive scans a segment the hot
      // check would have pruned; never the reverse.
      if (!col->bloom.empty()) {
        uint64_t hash = BloomHash(target);
        uint64_t h2 = (hash >> 32) | 1;
        for (uint64_t probe = 0; probe < 2; ++probe) {
          uint64_t bit = (hash + probe * h2) & col->bloom_mask;
          if ((col->bloom[bit >> 6] & (1ULL << (bit & 63))) == 0) return false;
        }
      }
      return true;
    }
    case FilterPredicate::Op::kNe:
      // min == max means every row holds exactly the one distinct value.
      return !(!(lo < hi) && !(hi < lo) && !(lo < target) && !(target < lo));
    case FilterPredicate::Op::kLt:
      return lo < target;
    case FilterPredicate::Op::kLe:
      return !(target < lo);
    case FilterPredicate::Op::kGt:
      return target < hi;
    case FilterPredicate::Op::kGe:
      return !(hi < target);
  }
  return true;
}

int64_t SegmentPruneInfo::MemoryBytes() const {
  int64_t bytes = 32;
  for (const ColumnPrune& c : columns_) {
    bytes += 64 + static_cast<int64_t>(c.name.size()) +
             static_cast<int64_t>(c.bloom.capacity() * sizeof(uint64_t)) +
             ValueMemoryBytes(c.min) + ValueMemoryBytes(c.max);
  }
  return bytes;
}

SegmentPruneInfo Segment::BuildPruneInfo() const {
  std::vector<SegmentPruneInfo::ColumnPrune> cols;
  cols.reserve(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) {
    SegmentPruneInfo::ColumnPrune p;
    p.name = schema_.fields()[c].name;
    p.type = columns_[c].type;
    p.any_rows = !columns_[c].dictionary.empty();
    if (p.any_rows) {
      p.min = columns_[c].dictionary.front();
      p.max = columns_[c].dictionary.back();
    }
    if (c < zones_.size()) {
      p.bloom = zones_[c].bloom;
      p.bloom_mask = zones_[c].bloom_mask;
    }
    cols.push_back(std::move(p));
  }
  return SegmentPruneInfo(std::move(cols));
}

// --- Filtering -------------------------------------------------------------

Result<std::pair<uint32_t, uint32_t>> Segment::PredicateIdRange(
    const Column& column, const FilterPredicate& pred) const {
  Value target = CoerceTo(column.type, pred.value);
  auto lo_it = std::lower_bound(column.dictionary.begin(), column.dictionary.end(),
                                target);
  auto hi_it = std::upper_bound(column.dictionary.begin(), column.dictionary.end(),
                                target);
  uint32_t lo = static_cast<uint32_t>(lo_it - column.dictionary.begin());
  uint32_t hi = static_cast<uint32_t>(hi_it - column.dictionary.begin());
  uint32_t n = static_cast<uint32_t>(column.dictionary.size());
  switch (pred.op) {
    case FilterPredicate::Op::kEq: return std::make_pair(lo, hi);
    case FilterPredicate::Op::kLt: return std::make_pair(0u, lo);
    case FilterPredicate::Op::kLe: return std::make_pair(0u, hi);
    case FilterPredicate::Op::kGt: return std::make_pair(hi, n);
    case FilterPredicate::Op::kGe: return std::make_pair(lo, n);
    case FilterPredicate::Op::kNe:
      return Status::InvalidArgument("kNe has no contiguous id range");
  }
  return Status::Internal("bad predicate op");
}

Result<std::vector<uint32_t>> Segment::FilterRows(
    const std::vector<FilterPredicate>& preds, bool* all, int64_t* rows_scanned) const {
  *all = false;
  std::vector<const FilterPredicate*> scan_preds;
  std::vector<uint32_t> candidates;
  bool have_candidates = false;

  auto intersect = [&](std::vector<uint32_t> rows) {
    if (!have_candidates) {
      candidates = std::move(rows);
      have_candidates = true;
      return;
    }
    std::vector<uint32_t> merged;
    std::set_intersection(candidates.begin(), candidates.end(), rows.begin(),
                          rows.end(), std::back_inserter(merged));
    candidates = std::move(merged);
  };

  for (const FilterPredicate& pred : preds) {
    int idx = ColumnIndex(pred.column);
    if (idx < 0) return Status::InvalidArgument("unknown column: " + pred.column);
    const Column& column = columns_[static_cast<size_t>(idx)];
    if (pred.op == FilterPredicate::Op::kNe) {
      scan_preds.push_back(&pred);
      continue;
    }
    Result<std::pair<uint32_t, uint32_t>> range = PredicateIdRange(column, pred);
    if (!range.ok()) return range.status();
    auto [lo, hi] = range.value();
    if (lo >= hi) return std::vector<uint32_t>{};  // no dictionary match
    if (idx == sorted_column_) {
      // Sorted column: rows with ids in [lo,hi) are contiguous; binary
      // search the row range.
      size_t row_lo = 0, row_hi = num_rows_;
      {
        size_t a = 0, b = num_rows_;
        while (a < b) {
          size_t mid = (a + b) / 2;
          if (column.IdAt(mid) < lo) a = mid + 1; else b = mid;
        }
        row_lo = a;
        a = row_lo;
        b = num_rows_;
        while (a < b) {
          size_t mid = (a + b) / 2;
          if (column.IdAt(mid) < hi) a = mid + 1; else b = mid;
        }
        row_hi = a;
      }
      std::vector<uint32_t> rows;
      rows.reserve(row_hi - row_lo);
      for (size_t r = row_lo; r < row_hi; ++r) rows.push_back(static_cast<uint32_t>(r));
      intersect(std::move(rows));
    } else if (column.has_inverted) {
      // Inverted index: union of the posting lists in the id range. This is
      // also how range predicates are served ("range index").
      std::vector<uint32_t> rows;
      for (uint32_t id = lo; id < hi; ++id) {
        rows.insert(rows.end(), column.inverted[id].begin(), column.inverted[id].end());
      }
      std::sort(rows.begin(), rows.end());
      intersect(std::move(rows));
    } else {
      scan_preds.push_back(&pred);
    }
  }

  auto matches_scan = [&](uint32_t r) {
    for (const FilterPredicate* pred : scan_preds) {
      int idx = ColumnIndex(pred->column);
      const Column& column = columns_[static_cast<size_t>(idx)];
      uint32_t id = column.IdAt(r);
      if (pred->op == FilterPredicate::Op::kNe) {
        Value target = CoerceTo(column.type, pred->value);
        const Value& v = column.dictionary[id];
        if (!(v < target) && !(target < v)) return false;  // equal -> excluded
      } else {
        Result<std::pair<uint32_t, uint32_t>> range = PredicateIdRange(column, *pred);
        auto [lo, hi] = range.value();
        if (id < lo || id >= hi) return false;
      }
    }
    return true;
  };

  if (!have_candidates) {
    if (scan_preds.empty()) {
      *all = true;
      return std::vector<uint32_t>{};
    }
    std::vector<uint32_t> rows;
    for (size_t r = 0; r < num_rows_; ++r) {
      ++*rows_scanned;
      if (matches_scan(static_cast<uint32_t>(r))) rows.push_back(static_cast<uint32_t>(r));
    }
    return rows;
  }
  if (scan_preds.empty()) return candidates;
  std::vector<uint32_t> rows;
  for (uint32_t r : candidates) {
    ++*rows_scanned;
    if (matches_scan(r)) rows.push_back(r);
  }
  return rows;
}

// --- Star-tree query path --------------------------------------------------

bool Segment::TryStarTree(const OlapQuery& query, const std::vector<bool>* validity,
                          OlapResult* result) const {
  if (star_dims_.empty() || validity != nullptr) return false;
  if (query.aggregations.empty()) return false;
  // Which star dims does the query touch?
  auto dim_position = [&](const std::string& name) {
    int idx = ColumnIndex(name);
    for (size_t d = 0; d < star_dims_.size(); ++d) {
      if (star_dims_[d] == idx) return static_cast<int>(d);
    }
    return -1;
  };
  size_t max_prefix = 0;
  std::vector<std::pair<int, Value>> eq_filters;  // dim position -> value
  for (const FilterPredicate& pred : query.filters) {
    if (pred.op != FilterPredicate::Op::kEq) return false;
    int pos = dim_position(pred.column);
    if (pos < 0) return false;
    eq_filters.emplace_back(pos, pred.value);
    max_prefix = std::max(max_prefix, static_cast<size_t>(pos) + 1);
  }
  std::vector<int> group_positions;
  for (const std::string& g : query.group_by) {
    int pos = dim_position(g);
    if (pos < 0) return false;
    group_positions.push_back(pos);
    max_prefix = std::max(max_prefix, static_cast<size_t>(pos) + 1);
  }
  // Aggregations must be answerable from the cube metrics.
  std::vector<int> metric_slot(query.aggregations.size(), -1);
  for (size_t a = 0; a < query.aggregations.size(); ++a) {
    const OlapAggregation& agg = query.aggregations[a];
    if (agg.kind == OlapAggregation::Kind::kCount) continue;
    int idx = ColumnIndex(agg.column);
    bool found = false;
    for (size_t m = 0; m < star_metrics_.size(); ++m) {
      if (star_metrics_[m] == idx) {
        metric_slot[a] = static_cast<int>(m);
        found = true;
        break;
      }
    }
    if (!found) return false;
  }

  // Resolve EQ filter values to dict ids; a miss means zero matching rows.
  std::vector<std::pair<int, uint32_t>> id_filters;
  for (const auto& [pos, value] : eq_filters) {
    const Column& column = columns_[static_cast<size_t>(star_dims_[static_cast<size_t>(pos)])];
    Value target = CoerceTo(column.type, value);
    auto lo = std::lower_bound(column.dictionary.begin(), column.dictionary.end(), target);
    auto hi = std::upper_bound(column.dictionary.begin(), column.dictionary.end(), target);
    if (lo == hi) {
      // No rows: produce empty/zero result.
      result->rows.clear();
      return true;
    }
    id_filters.emplace_back(pos, static_cast<uint32_t>(lo - column.dictionary.begin()));
  }

  // Aggregate cells from the chosen cube level.
  struct GroupEntry {
    Row key_values;
    std::vector<AggAccumulator> accs;
  };
  std::map<std::string, GroupEntry> groups;
  auto fold_cell = [&](const std::vector<uint32_t>& prefix_ids, const StarTreeCell& cell) {
    std::string group_key;
    Row key_values;
    for (int pos : group_positions) {
      uint32_t id = prefix_ids[static_cast<size_t>(pos)];
      AppendU32BE(&group_key, id);
      const Column& column =
          columns_[static_cast<size_t>(star_dims_[static_cast<size_t>(pos)])];
      key_values.push_back(column.dictionary[id]);
    }
    GroupEntry& entry = groups[group_key];
    if (entry.accs.empty()) {
      entry.key_values = std::move(key_values);
      entry.accs.resize(query.aggregations.size());
    }
    for (size_t a = 0; a < query.aggregations.size(); ++a) {
      AggAccumulator partial;
      partial.count = cell.count;
      int slot = metric_slot[a];
      if (slot >= 0) {
        partial.sum = cell.sum[static_cast<size_t>(slot)];
        partial.min = cell.min[static_cast<size_t>(slot)];
        partial.max = cell.max[static_cast<size_t>(slot)];
      }
      entry.accs[a].Merge(partial);
    }
  };

  if (max_prefix == 0) {
    fold_cell({}, star_root_);
  } else {
    const auto& level = star_tree_[max_prefix - 1];
    std::vector<uint32_t> ids(max_prefix);
    for (const auto& [key, cell] : level) {
      for (size_t d = 0; d < max_prefix; ++d) {
        ids[d] = ReadU32BE(key.data() + d * 4);
      }
      bool match = true;
      for (const auto& [pos, id] : id_filters) {
        if (ids[static_cast<size_t>(pos)] != id) {
          match = false;
          break;
        }
      }
      if (match) fold_cell(ids, cell);
    }
  }

  result->rows.clear();
  for (auto& [key, entry] : groups) {
    Row row = std::move(entry.key_values);
    for (const AggAccumulator& acc : entry.accs) AppendAccumulator(&row, acc);
    result->rows.push_back(std::move(row));
  }
  return true;
}

// --- Execute ----------------------------------------------------------------

Result<OlapResult> Segment::Execute(const OlapQuery& query,
                                    const std::vector<bool>* validity,
                                    OlapQueryStats* stats) const {
  if (lazy_ != nullptr) {
    UBERRT_RETURN_IF_ERROR(EnsureForQuery(query, stats));
  }
  ++stats->segments_scanned;
  if (query.force_scalar) return ExecuteScalar(query, validity, stats);
  if (!query.aggregations.empty()) {
    OlapResult result;
    if (TryStarTree(query, validity, &result)) {
      ++stats->star_tree_hits;
      return result;
    }
  }
  return ExecuteVectorized(query, validity, stats);
}

Result<OlapResult> Segment::ExecuteScalar(const OlapQuery& query,
                                          const std::vector<bool>* validity,
                                          OlapQueryStats* stats) const {
  OlapResult result;
  if (!query.aggregations.empty()) {
    int64_t scanned_before = stats->rows_scanned;
    bool all = false;
    Result<std::vector<uint32_t>> rows =
        FilterRows(query.filters, &all, &stats->rows_scanned);
    if (!rows.ok()) return rows.status();
    // One accounting per row per query: when the filter phase already
    // examined rows (scan predicates), the aggregate phase adds nothing.
    const bool filter_scanned = stats->rows_scanned != scanned_before;

    std::vector<int> group_indices;
    for (const std::string& g : query.group_by) {
      int idx = ColumnIndex(g);
      if (idx < 0) return Status::InvalidArgument("unknown group column: " + g);
      group_indices.push_back(idx);
    }
    std::vector<int> agg_indices;
    for (const OlapAggregation& agg : query.aggregations) {
      int idx = agg.column.empty() ? -1 : ColumnIndex(agg.column);
      if (!agg.column.empty() && idx < 0) {
        return Status::InvalidArgument("unknown aggregate column: " + agg.column);
      }
      agg_indices.push_back(idx);
    }

    struct GroupEntry {
      Row key_values;
      std::vector<AggAccumulator> accs;
    };
    std::map<std::string, GroupEntry> groups;
    auto process_row = [&](uint32_t r) {
      if (validity != nullptr && !(*validity)[r]) return;
      if (!filter_scanned) ++stats->rows_scanned;
      std::string group_key;
      for (int idx : group_indices) {
        AppendU32BE(&group_key, columns_[static_cast<size_t>(idx)].IdAt(r));
      }
      GroupEntry& entry = groups[group_key];
      if (entry.accs.empty()) {
        entry.accs.resize(query.aggregations.size());
        for (int idx : group_indices) {
          entry.key_values.push_back(GetValue(r, idx));
        }
      }
      for (size_t a = 0; a < query.aggregations.size(); ++a) {
        double v = agg_indices[a] >= 0 ? GetValue(r, agg_indices[a]).ToNumeric() : 0.0;
        entry.accs[a].Add(v);
      }
    };
    if (all) {
      for (size_t r = 0; r < num_rows_; ++r) process_row(static_cast<uint32_t>(r));
    } else {
      for (uint32_t r : rows.value()) process_row(r);
    }
    for (auto& [key, entry] : groups) {
      Row row = std::move(entry.key_values);
      for (const AggAccumulator& acc : entry.accs) AppendAccumulator(&row, acc);
      result.rows.push_back(std::move(row));
    }
    return result;
  }

  // Raw selection.
  if (query.select_columns.empty()) {
    return Status::InvalidArgument("query needs select columns or aggregations");
  }
  std::vector<int> select_indices;
  for (const std::string& s : query.select_columns) {
    int idx = ColumnIndex(s);
    if (idx < 0) return Status::InvalidArgument("unknown column: " + s);
    select_indices.push_back(idx);
  }
  int64_t scanned_before = stats->rows_scanned;
  bool all = false;
  Result<std::vector<uint32_t>> rows =
      FilterRows(query.filters, &all, &stats->rows_scanned);
  if (!rows.ok()) return rows.status();
  const bool filter_scanned = stats->rows_scanned != scanned_before;
  auto emit = [&](uint32_t r) {
    if (validity != nullptr && !(*validity)[r]) return true;
    if (!filter_scanned) ++stats->rows_scanned;
    Row row;
    row.reserve(select_indices.size());
    for (int idx : select_indices) row.push_back(GetValue(r, idx));
    result.rows.push_back(std::move(row));
    // Per-segment short-circuit only valid without ORDER BY.
    return !(query.limit >= 0 && query.order_by.empty() &&
             static_cast<int64_t>(result.rows.size()) >= query.limit);
  };
  if (all) {
    for (size_t r = 0; r < num_rows_; ++r) {
      if (!emit(static_cast<uint32_t>(r))) break;
    }
  } else {
    for (uint32_t r : rows.value()) {
      if (!emit(r)) break;
    }
  }
  return result;
}

// --- Serialization -----------------------------------------------------------

std::string Segment::Serialize() const {
  // A lazy segment's pinned blob IS its serialized form (bloom sections
  // included), whatever subset of columns happens to be materialized.
  if (lazy_ != nullptr) return lazy_->blob->substr(lazy_->base_offset);
  std::string out;
  AppendString(&out, name_);
  AppendU32(&out, static_cast<uint32_t>(schema_.NumFields()));
  for (const FieldSpec& f : schema_.fields()) {
    AppendString(&out, f.name);
    out.push_back(static_cast<char>(f.type));
  }
  AppendU64(&out, num_rows_);
  // Index config (indexes themselves are rebuilt on load).
  out.push_back(config_.bit_packed_forward_index ? 1 : 0);
  AppendU32(&out, static_cast<uint32_t>(config_.inverted_columns.size()));
  for (const std::string& c : config_.inverted_columns) AppendString(&out, c);
  AppendString(&out, config_.sorted_column);
  AppendU32(&out, static_cast<uint32_t>(config_.star_tree_dimensions.size()));
  for (const std::string& c : config_.star_tree_dimensions) AppendString(&out, c);
  AppendU32(&out, static_cast<uint32_t>(config_.star_tree_metrics.size()));
  for (const std::string& c : config_.star_tree_metrics) AppendString(&out, c);
  // Columns: dictionary (as one encoded row) + forward index.
  for (const Column& column : columns_) {
    Row dict_row(column.dictionary.begin(), column.dictionary.end());
    AppendString(&out, EncodeRow(dict_row));
    if (!config_.bit_packed_forward_index) {
      for (size_t r = 0; r < num_rows_; ++r) AppendU32(&out, column.plain[r]);
    } else {
      AppendU32(&out, static_cast<uint32_t>(column.packed.bits_per_value()));
      AppendU64(&out, column.packed.words().size());
      for (uint64_t w : column.packed.words()) AppendU64(&out, w);
    }
  }
  // Zone-map bloom filters, computed once at seal; min/max re-derive from
  // the sorted dictionaries on load.
  for (const ZoneMap& zone : zones_) {
    AppendU64(&out, zone.bloom_mask);
    AppendU64(&out, zone.bloom.size());
    for (uint64_t w : zone.bloom) AppendU64(&out, w);
  }
  return out;
}

namespace {

/// Everything that precedes the per-column payload, shared by the eager and
/// lazy decoders so the two can never drift on the header layout.
struct SegmentHeaderInfo {
  std::string name;
  std::vector<FieldSpec> fields;
  uint64_t num_rows = 0;
  SegmentIndexConfig config;
};

Status ParseSegmentHeader(const std::string& blob, size_t* pos,
                          SegmentHeaderInfo* out) {
  auto corrupt = [] { return Status::Corruption("segment blob truncated"); };
  if (!ReadString(blob, pos, &out->name)) return corrupt();
  uint32_t num_fields;
  if (!ReadU32(blob, pos, &num_fields)) return corrupt();
  for (uint32_t i = 0; i < num_fields; ++i) {
    FieldSpec f;
    if (!ReadString(blob, pos, &f.name)) return corrupt();
    if (*pos >= blob.size()) return corrupt();
    f.type = static_cast<ValueType>(blob[(*pos)++]);
    out->fields.push_back(std::move(f));
  }
  if (!ReadU64(blob, pos, &out->num_rows)) return corrupt();
  if (*pos >= blob.size()) return corrupt();
  out->config.bit_packed_forward_index = blob[(*pos)++] != 0;
  uint32_t n;
  if (!ReadU32(blob, pos, &n)) return corrupt();
  for (uint32_t i = 0; i < n; ++i) {
    std::string c;
    if (!ReadString(blob, pos, &c)) return corrupt();
    out->config.inverted_columns.push_back(std::move(c));
  }
  if (!ReadString(blob, pos, &out->config.sorted_column)) return corrupt();
  if (!ReadU32(blob, pos, &n)) return corrupt();
  for (uint32_t i = 0; i < n; ++i) {
    std::string c;
    if (!ReadString(blob, pos, &c)) return corrupt();
    out->config.star_tree_dimensions.push_back(std::move(c));
  }
  if (!ReadU32(blob, pos, &n)) return corrupt();
  for (uint32_t i = 0; i < n; ++i) {
    std::string c;
    if (!ReadString(blob, pos, &c)) return corrupt();
    out->config.star_tree_metrics.push_back(std::move(c));
  }
  return Status::Ok();
}

}  // namespace

Result<std::shared_ptr<Segment>> Segment::Deserialize(const std::string& blob) {
  auto corrupt = [] { return Status::Corruption("segment blob truncated"); };
  size_t pos = 0;
  SegmentHeaderInfo header;
  UBERRT_RETURN_IF_ERROR(ParseSegmentHeader(blob, &pos, &header));
  const uint32_t num_fields = static_cast<uint32_t>(header.fields.size());
  const uint64_t num_rows = header.num_rows;
  const SegmentIndexConfig& config = header.config;

  auto segment = std::shared_ptr<Segment>(new Segment());
  segment->name_ = std::move(header.name);
  segment->schema_ = RowSchema(header.fields);
  segment->num_rows_ = num_rows;
  segment->config_ = config;
  segment->sorted_column_ = config.sorted_column.empty()
                                ? -1
                                : segment->schema_.FieldIndex(config.sorted_column);
  segment->columns_.resize(num_fields);
  constexpr size_t kBatch = 1024;
  std::vector<uint32_t> batch(kBatch);
  for (uint32_t c = 0; c < num_fields; ++c) {
    Column& column = segment->columns_[c];
    column.type = header.fields[c].type;
    std::string dict_blob;
    if (!ReadString(blob, &pos, &dict_blob)) return corrupt();
    Result<Row> dict = DecodeRow(dict_blob);
    if (!dict.ok()) return dict.status();
    column.dictionary = std::move(dict.value());
    const uint32_t dict_size = static_cast<uint32_t>(column.dictionary.size());
    if (!config.bit_packed_forward_index) {
      if (num_rows > (blob.size() - pos) / 4) return corrupt();
      column.plain.resize(num_rows);
      for (uint64_t r = 0; r < num_rows; ++r) {
        if (!ReadU32(blob, &pos, &column.plain[r])) return corrupt();
        if (column.plain[r] >= dict_size) {
          return Status::Corruption("segment blob: dict id out of range");
        }
      }
    } else {
      uint32_t bits;
      uint64_t num_words;
      if (!ReadU32(blob, &pos, &bits)) return corrupt();
      if (!ReadU64(blob, &pos, &num_words)) return corrupt();
      if (num_words > (blob.size() - pos) / 8) return corrupt();
      std::vector<uint64_t> words(num_words);
      for (uint64_t w = 0; w < num_words; ++w) {
        if (!ReadU64(blob, &pos, &words[w])) return corrupt();
      }
      // Adopt the serialized words directly (no unpack/repack round trip),
      // then batch-decode once to validate every id against the dictionary
      // so hostile blobs can't drive out-of-range lookups later.
      Result<BitPackedVector> packed =
          BitPackedVector::FromWords(static_cast<int>(bits), num_rows, std::move(words));
      if (!packed.ok()) return packed.status();
      column.packed = std::move(packed.value());
      for (uint64_t base = 0; base < num_rows; base += kBatch) {
        size_t count = static_cast<size_t>(std::min<uint64_t>(kBatch, num_rows - base));
        column.packed.Unpack(base, count, batch.data());
        for (size_t i = 0; i < count; ++i) {
          if (batch[i] >= dict_size) {
            return Status::Corruption("segment blob: dict id out of range");
          }
        }
      }
    }
  }
  // Bloom words are adopted as serialized (hostile geometry rejected);
  // min/max come from the dictionaries.
  segment->zones_.resize(num_fields);
  for (uint32_t c = 0; c < num_fields; ++c) {
    ZoneMap& zone = segment->zones_[c];
    uint64_t mask, num_words;
    if (!ReadU64(blob, &pos, &mask)) return corrupt();
    if (!ReadU64(blob, &pos, &num_words)) return corrupt();
    if (num_words > (blob.size() - pos) / 8) return corrupt();
    const uint64_t bits = num_words * 64;
    if ((num_words == 0 && mask != 0) ||
        (num_words > 0 && (mask != bits - 1 || (bits & (bits - 1)) != 0))) {
      return Status::Corruption("segment blob: bad bloom geometry");
    }
    zone.bloom_mask = mask;
    zone.bloom.resize(num_words);
    for (uint64_t w = 0; w < num_words; ++w) {
      if (!ReadU64(blob, &pos, &zone.bloom[w])) return corrupt();
    }
  }
  segment->BuildNumericDictionaries();
  segment->BuildZoneMaps(/*keep_blooms=*/true);
  segment->BuildIndexes(config);
  return segment;
}

Result<std::shared_ptr<Segment>> Segment::DeserializeLazy(
    std::shared_ptr<const std::string> blob, size_t offset) {
  auto corrupt = [] { return Status::Corruption("segment blob truncated"); };
  const std::string& data = *blob;
  size_t pos = offset;
  SegmentHeaderInfo header;
  UBERRT_RETURN_IF_ERROR(ParseSegmentHeader(data, &pos, &header));
  const size_t num_fields = header.fields.size();

  auto segment = std::shared_ptr<Segment>(new Segment());
  segment->name_ = std::move(header.name);
  segment->schema_ = RowSchema(header.fields);
  segment->num_rows_ = header.num_rows;
  segment->config_ = header.config;
  segment->sorted_column_ =
      header.config.sorted_column.empty()
          ? -1
          : segment->schema_.FieldIndex(header.config.sorted_column);
  segment->columns_.resize(num_fields);

  auto lazy = std::make_unique<LazySource>();
  lazy->blob = blob;
  lazy->base_offset = offset;
  lazy->columns.resize(num_fields);
  lazy->decoded.assign(num_fields, false);
  // One structural pass: record where each column's payload lives (so a
  // truncated blob fails here, not mid-query) without decoding anything.
  for (size_t c = 0; c < num_fields; ++c) {
    segment->columns_[c].type = header.fields[c].type;
    LazyColumn& lc = lazy->columns[c];
    lc.dict_pos = pos;
    uint32_t dict_len;
    if (!ReadU32(data, &pos, &dict_len)) return corrupt();
    if (dict_len > data.size() - pos) return corrupt();
    pos += dict_len;
    if (!header.config.bit_packed_forward_index) {
      lc.plain_pos = pos;
      if (header.num_rows > (data.size() - pos) / 4) return corrupt();
      pos += static_cast<size_t>(header.num_rows) * 4;
    } else {
      if (!ReadU32(data, &pos, &lc.bits)) return corrupt();
      if (!ReadU64(data, &pos, &lc.num_words)) return corrupt();
      lc.words_pos = pos;
      if (lc.num_words > (data.size() - pos) / 8) return corrupt();
      pos += static_cast<size_t>(lc.num_words) * 8;
    }
  }
  // The trailing bloom sections are deliberately not parsed: a lazy segment
  // carries no zone maps (CanMatch degrades to conservative-true); the
  // detached SegmentPruneInfo on its handle does the real plan-time pruning.
  segment->lazy_ = std::move(lazy);
  return segment;
}

Status Segment::EnsureColumnIndexes(const std::vector<int>& indexes,
                                    OlapQueryStats* stats) const {
  if (lazy_ == nullptr) return Status::Ok();
  auto corrupt = [] { return Status::Corruption("segment blob truncated"); };
  const std::string& data = *lazy_->blob;
  std::lock_guard<std::mutex> lock(lazy_->mu);
  constexpr size_t kBatch = 1024;
  std::vector<uint32_t> batch;
  for (int idx : indexes) {
    if (idx < 0 || static_cast<size_t>(idx) >= columns_.size()) continue;
    const size_t c = static_cast<size_t>(idx);
    if (lazy_->decoded[c]) continue;
    Column& column = columns_[c];
    const LazyColumn& lc = lazy_->columns[c];
    size_t pos = lc.dict_pos;
    std::string dict_blob;
    if (!ReadString(data, &pos, &dict_blob)) return corrupt();
    Result<Row> dict = DecodeRow(dict_blob);
    if (!dict.ok()) return dict.status();
    column.dictionary = std::move(dict.value());
    const uint32_t dict_size = static_cast<uint32_t>(column.dictionary.size());
    if (!config_.bit_packed_forward_index) {
      pos = lc.plain_pos;
      column.plain.resize(num_rows_);
      for (size_t r = 0; r < num_rows_; ++r) {
        if (!ReadU32(data, &pos, &column.plain[r])) return corrupt();
        if (column.plain[r] >= dict_size) {
          return Status::Corruption("segment blob: dict id out of range");
        }
      }
    } else {
      pos = lc.words_pos;
      std::vector<uint64_t> words(static_cast<size_t>(lc.num_words));
      for (uint64_t w = 0; w < lc.num_words; ++w) {
        if (!ReadU64(data, &pos, &words[w])) return corrupt();
      }
      Result<BitPackedVector> packed = BitPackedVector::FromWords(
          static_cast<int>(lc.bits), num_rows_, std::move(words));
      if (!packed.ok()) return packed.status();
      column.packed = std::move(packed.value());
      // Same hostile-id validation as the eager decoder.
      if (batch.empty()) batch.resize(std::min(kBatch, std::max<size_t>(num_rows_, 1)));
      for (size_t base = 0; base < num_rows_; base += kBatch) {
        size_t count = std::min(kBatch, num_rows_ - base);
        column.packed.Unpack(base, count, batch.data());
        for (size_t i = 0; i < count; ++i) {
          if (batch[i] >= dict_size) {
            return Status::Corruption("segment blob: dict id out of range");
          }
        }
      }
    }
    column.dict_numeric.resize(column.dictionary.size());
    for (size_t i = 0; i < column.dictionary.size(); ++i) {
      column.dict_numeric[i] = column.dictionary[i].ToNumeric();
    }
    lazy_->decoded[c] = true;
    if (stats != nullptr) ++stats->columns_materialized;
  }
  return Status::Ok();
}

Status Segment::EnsureForQuery(const OlapQuery& query,
                               OlapQueryStats* stats) const {
  if (lazy_ == nullptr) return Status::Ok();
  std::vector<int> indexes;
  auto add = [&](const std::string& name) {
    if (name.empty()) return;
    int idx = ColumnIndex(name);
    if (idx >= 0) indexes.push_back(idx);  // unknown: Execute reports it
  };
  for (const FilterPredicate& pred : query.filters) add(pred.column);
  for (const std::string& g : query.group_by) add(g);
  for (const OlapAggregation& agg : query.aggregations) add(agg.column);
  for (const std::string& s : query.select_columns) add(s);
  return EnsureColumnIndexes(indexes, stats);
}

Status Segment::EnsureAllColumns() const {
  if (lazy_ == nullptr) return Status::Ok();
  std::vector<int> all(columns_.size());
  for (size_t c = 0; c < all.size(); ++c) all[c] = static_cast<int>(c);
  return EnsureColumnIndexes(all, nullptr);
}

int64_t Segment::DiskBytes() const {
  if (lazy_ != nullptr) {
    return static_cast<int64_t>(lazy_->blob->size() - lazy_->base_offset);
  }
  return static_cast<int64_t>(Serialize().size());
}

}  // namespace uberrt::olap
