#include "olap/query.h"

#include <algorithm>

namespace uberrt::olap {

namespace {

void AppendField(std::string* out, const std::string& s) {
  // Length-prefixed so column names containing separators cannot collide.
  out->append(std::to_string(s.size()));
  out->push_back(':');
  out->append(s);
}

}  // namespace

std::string CanonicalQueryKey(const OlapQuery& query) {
  std::string key;
  key.reserve(128);
  key.append("sel|");
  for (const std::string& c : query.select_columns) AppendField(&key, c);
  key.append("|agg|");
  for (const OlapAggregation& agg : query.aggregations) {
    key.push_back(static_cast<char>('0' + static_cast<int>(agg.kind)));
    AppendField(&key, agg.column);
    AppendField(&key, agg.output_name);
  }
  // Filters are one AND set: predicate order cannot change the result, so
  // two spellings of the same filter set share a cache entry.
  std::vector<std::string> filters;
  filters.reserve(query.filters.size());
  for (const FilterPredicate& pred : query.filters) {
    std::string f;
    AppendField(&f, pred.column);
    f.push_back(static_cast<char>('0' + static_cast<int>(pred.op)));
    AppendField(&f, EncodeRow({pred.value}));
    filters.push_back(std::move(f));
  }
  std::sort(filters.begin(), filters.end());
  key.append("|flt|");
  for (const std::string& f : filters) key.append(f);
  key.append("|grp|");
  for (const std::string& g : query.group_by) AppendField(&key, g);
  key.append("|ord|");
  AppendField(&key, query.order_by);
  key.push_back(query.order_desc ? 'd' : 'a');
  key.append("|lim|");
  key.append(std::to_string(query.limit));
  key.push_back(query.allow_partial ? 'p' : 's');
  key.push_back(query.force_scalar ? 'f' : 'v');
  return key;
}

}  // namespace uberrt::olap
