#include "olap/cluster.h"

#include <algorithm>
#include <cstring>

#include "common/hash.h"

namespace uberrt::olap {

namespace {

/// Footprint estimate of one cached result, charged against the per-table
/// byte cap and the cluster memory budget. Mirrors the row accounting of
/// RealtimePartition::MemoryBytes (+ the key and entry overhead).
int64_t EstimateResultBytes(const std::string& key, const OlapResult& result) {
  int64_t bytes = static_cast<int64_t>(key.size()) + 64;
  for (const Row& row : result.rows) {
    bytes += 16;
    for (const Value& v : row) {
      bytes += 16;
      if (v.type() == ValueType::kString) {
        bytes += static_cast<int64_t>(v.AsString().size());
      }
    }
  }
  return bytes;
}

}  // namespace

Result<OlapResult> MergeAndFinalize(const OlapQuery& query,
                                    const RowSchema& table_schema,
                                    std::vector<Row> partial_rows) {
  OlapResult result;
  // Output schema.
  std::vector<FieldSpec> fields;
  if (!query.aggregations.empty()) {
    for (const std::string& g : query.group_by) {
      int idx = table_schema.FieldIndex(g);
      fields.push_back({g, idx >= 0 ? table_schema.fields()[static_cast<size_t>(idx)].type
                                    : ValueType::kString});
    }
    for (const OlapAggregation& agg : query.aggregations) {
      fields.push_back({agg.output_name,
                        agg.kind == OlapAggregation::Kind::kCount ? ValueType::kInt
                                                                  : ValueType::kDouble});
    }
  } else {
    for (const std::string& s : query.select_columns) {
      int idx = table_schema.FieldIndex(s);
      fields.push_back({s, idx >= 0 ? table_schema.fields()[static_cast<size_t>(idx)].type
                                    : ValueType::kString});
    }
  }
  result.schema = RowSchema(fields);

  if (!query.aggregations.empty()) {
    size_t num_groups = query.group_by.size();
    struct GroupEntry {
      Row key_values;
      std::vector<AggAccumulator> accs;
    };
    std::map<std::string, GroupEntry> groups;
    for (const Row& partial : partial_rows) {
      if (partial.size() != num_groups + query.aggregations.size() * kAccumulatorFields) {
        return Status::Internal("partial row width mismatch");
      }
      // Typed row encoding: ToString-based keys conflated values across
      // types (string "1" vs int 1) and embedded NULs.
      Row key_prefix(partial.begin(), partial.begin() + static_cast<long>(num_groups));
      std::string key = EncodeRow(key_prefix);
      GroupEntry& entry = groups[key];
      if (entry.accs.empty()) {
        entry.accs.resize(query.aggregations.size());
        entry.key_values.assign(partial.begin(),
                                partial.begin() + static_cast<long>(num_groups));
      }
      for (size_t a = 0; a < query.aggregations.size(); ++a) {
        Result<AggAccumulator> acc =
            ReadAccumulator(partial, num_groups + a * kAccumulatorFields);
        if (!acc.ok()) return acc.status();
        entry.accs[a].Merge(acc.value());
      }
    }
    // Global aggregation with zero matching rows still returns one row of
    // zero-valued aggregates (COUNT() = 0), as SQL does.
    if (groups.empty() && num_groups == 0) {
      GroupEntry empty;
      empty.accs.resize(query.aggregations.size());
      groups.emplace("", std::move(empty));
    }
    for (auto& [key, entry] : groups) {
      Row row = std::move(entry.key_values);
      for (size_t a = 0; a < query.aggregations.size(); ++a) {
        row.push_back(entry.accs[a].Finalize(query.aggregations[a].kind));
      }
      result.rows.push_back(std::move(row));
    }
  } else {
    result.rows = std::move(partial_rows);
  }

  // ORDER BY.
  if (!query.order_by.empty()) {
    int idx = result.schema.FieldIndex(query.order_by);
    if (idx < 0) {
      return Status::InvalidArgument("order-by column not in output: " + query.order_by);
    }
    bool desc = query.order_desc;
    std::stable_sort(result.rows.begin(), result.rows.end(),
                     [idx, desc](const Row& a, const Row& b) {
                       const Value& va = a[static_cast<size_t>(idx)];
                       const Value& vb = b[static_cast<size_t>(idx)];
                       return desc ? vb < va : va < vb;
                     });
  }
  // LIMIT.
  if (query.limit >= 0 && static_cast<int64_t>(result.rows.size()) > query.limit) {
    result.rows.resize(static_cast<size_t>(query.limit));
  }
  return result;
}

Status OlapCluster::CreateTable(TableConfig config, const std::string& source_topic,
                                ClusterTableOptions options) {
  if (config.upsert_enabled) {
    if (config.primary_key_column.empty() ||
        !config.schema.HasField(config.primary_key_column)) {
      return Status::InvalidArgument("upsert table needs a valid primary key column");
    }
    if (!config.index_config.sorted_column.empty()) {
      return Status::InvalidArgument(
          "upsert tables cannot use a sorted column (row order must be stable)");
    }
    if (!config.index_config.star_tree_dimensions.empty()) {
      return Status::InvalidArgument(
          "upsert tables cannot use a star-tree (pre-aggregates cannot see "
          "validity updates)");
    }
  }
  Result<int32_t> partitions = bus_->NumPartitions(source_topic);
  if (!partitions.ok()) return partitions.status();
  auto t = std::make_shared<Table>();
  t->options = options;
  t->topic = source_topic;
  t->num_stream_partitions = partitions.value();
  t->servers.resize(static_cast<size_t>(options.num_servers));
  for (int32_t s = 0; s < options.num_servers; ++s) t->servers[static_cast<size_t>(s)].id = s;
  for (int32_t p = 0; p < partitions.value(); ++p) {
    Server& server = t->servers[static_cast<size_t>(p % options.num_servers)];
    ServerPartition sp;
    sp.data = std::make_unique<RealtimePartition>(config, p, lifecycle_.get());
    Result<int64_t> begin = bus_->BeginOffset(source_topic, p);
    if (!begin.ok()) return begin.status();
    sp.stream_offset = begin.value();
    server.partitions.emplace(p, std::move(sp));
  }
  t->config = std::move(config);
  const std::string& name = t->config.name;
  // Resolve hot-path metric handles once; the registry owns them for its
  // lifetime, so the handles stay valid even after DropTable.
  t->rows_ingested = metrics_.GetCounter("olap." + name + ".rows_ingested");
  t->decode_errors = metrics_.GetCounter("olap." + name + ".decode_errors");
  t->segments_archived = metrics_.GetCounter("olap." + name + ".segments_archived");
  t->ingestion_blocked = metrics_.GetCounter("olap." + name + ".ingestion_blocked");
  std::lock_guard<std::mutex> lock(mu_);
  if (tables_.count(name) > 0) {
    return Status::AlreadyExists("table exists: " + name);
  }
  tables_.emplace(name, std::move(t));
  return Status::Ok();
}

Status OlapCluster::DropTable(const std::string& table) {
  std::shared_ptr<Table> victim;  // destroyed outside mu_
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tables_.find(table);
  if (it == tables_.end()) return Status::NotFound("no table: " + table);
  victim = std::move(it->second);
  tables_.erase(it);
  {
    // Un-charge the dropped table's result cache from the cluster gauge.
    std::lock_guard<std::mutex> clock(victim->cache_mu);
    result_cache_bytes_->Add(-victim->result_cache_bytes);
    victim->result_cache_bytes = 0;
    victim->result_cache.clear();
    victim->result_cache_lru.clear();
  }
  return Status::Ok();
}

bool OlapCluster::HasTable(const std::string& table) const {
  std::lock_guard<std::mutex> lock(mu_);
  return tables_.count(table) > 0;
}

Result<TableConfig> OlapCluster::GetTableConfig(const std::string& table) const {
  Result<std::shared_ptr<Table>> found = FindTable(table);
  if (!found.ok()) return found.status();
  return found.value()->config;
}

Result<std::shared_ptr<OlapCluster::Table>> OlapCluster::FindTable(
    const std::string& table) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tables_.find(table);
  if (it == tables_.end()) return Status::NotFound("no table: " + table);
  return it->second;
}

Status OlapCluster::ArchivePut(const std::string& key, const std::string& blob) const {
  int64_t attempts = 0;
  Status put = backup_retry_->Run([&] {
    ++attempts;
    return store_->Put(key, blob);
  });
  if (attempts > 1) backup_retries_->Increment(attempts - 1);
  return put;
}

int64_t OlapCluster::DrainArchival(Table* t, bool* emptied) const {
  std::lock_guard<std::mutex> alock(t->archival_mu);
  int64_t archived = 0;
  while (!t->archival_queue.empty()) {
    PendingArchive& pending = t->archival_queue.front();
    // Backed-off retries inside ArchivePut; if the store is still down after
    // that, the segment stays queued (and counted) for the next drain.
    if (!ArchivePut(pending.key, pending.blob).ok()) break;
    ++archived;
    t->archival_queue.pop_front();
  }
  if (archived > 0) t->segments_archived->Increment(archived);
  *emptied = t->archival_queue.empty();
  return archived;
}

void OlapCluster::UnblockArchival(Table* t) const {
  std::unique_lock<std::shared_mutex> lock(t->rw_mu);
  for (Server& server : t->servers) {
    for (auto& [partition_id, sp] : server.partitions) {
      sp.archival_blocked = false;
    }
  }
}

Status OlapCluster::HandleSeal(Table* t, Server* server, int32_t partition_id,
                               ServerPartition* sp, bool force) {
  Result<std::shared_ptr<Segment>> sealed = sp->data->SealIfNeeded(force);
  if (!sealed.ok()) return sealed.status();
  if (sealed.value() == nullptr) return Status::Ok();
  const std::shared_ptr<Segment>& segment = sealed.value();
  const auto& sealed_list = sp->data->sealed();
  const RealtimePartition::SealedSegment& sealed_entry = sealed_list.back();
  std::string key = SegmentKey(t->config.name, segment->name());
  SegmentFrame frame;
  frame.seq = sealed_entry.handle->seq();
  frame.min_time = sealed_entry.handle->min_time();
  frame.max_time = sealed_entry.handle->max_time();
  frame.validity = sealed_entry.validity;
  frame.segment = segment;
  std::string blob = EncodeSegmentFrame(frame);

  if (t->options.archival_mode == ArchivalMode::kSyncCentralized) {
    // One controller, synchronous backup: consumption halts until the
    // backup succeeds — but the store I/O itself (ArchivePut with its
    // retry/backoff) never runs under rw_mu. HandleSeal only enqueues and
    // marks the partition blocked; IngestOnce/ForceSeal drain the queue
    // under archival_mu and unblock, so queries are never starved by a
    // store outage.
    sp->archival_blocked = true;
    std::lock_guard<std::mutex> alock(t->archival_mu);
    t->archival_queue.push_back({std::move(key), std::move(blob)});
    return Status::Ok();  // seal kept; consumption halted until the drain
  }

  // Async peer-to-peer: replicate to peers now, archive later. The replica
  // shares the sealed entry's validity vector (shared_ptr), so later upsert
  // invalidations on the home server are visible to recovery from peers.
  int32_t replicas_wanted = t->options.replication_factor - 1;
  for (int32_t offset = 1;
       offset < static_cast<int32_t>(t->servers.size()) && replicas_wanted > 0;
       ++offset) {
    int32_t peer = (server->id + offset) % static_cast<int32_t>(t->servers.size());
    ReplicaEntry replica;
    replica.home_server = server->id;
    replica.home_partition = partition_id;
    replica.copy = sealed_entry;  // shares the immutable Segment
    t->replicas[segment->name()].push_back(std::move(replica));
    --replicas_wanted;
    (void)peer;
  }
  std::lock_guard<std::mutex> alock(t->archival_mu);
  t->archival_queue.push_back({key, std::move(blob)});
  return Status::Ok();
}

Result<int64_t> OlapCluster::IngestOnce(const std::string& table,
                                        size_t max_per_partition) {
  Result<std::shared_ptr<Table>> found = FindTable(table);
  if (!found.ok()) return found.status();
  Table* t = found.value().get();
  const bool sync = t->options.archival_mode == ArchivalMode::kSyncCentralized;

  // Sync mode: retry any pending backup BEFORE taking the exclusive lock.
  // During a store outage the ArchivePut retry/backoff loop must stall
  // ingestion — never the queries that rw_mu also serves.
  bool store_ok = true;
  if (sync) {
    bool emptied = false;
    DrainArchival(t, &emptied);
    store_ok = emptied;
  }

  int64_t ingested = 0;
  // Budget is per stream partition across all consume rounds of this call.
  std::map<int32_t, size_t> budget_used;
  while (true) {
    int64_t round_rows = 0;
    {
      std::unique_lock<std::shared_mutex> lock(t->rw_mu);
      for (Server& server : t->servers) {
        for (auto& [partition_id, sp] : server.partitions) {
          if (sp.archival_blocked) {
            if (!store_ok) continue;  // paper: "all data ingestion ... halt"
            sp.archival_blocked = false;
          }
          const int64_t rows_before = sp.data->NumRows();
          const int64_t segs_before = sp.data->NumSealedSegments();
          // Consume at most up to the seal threshold before attempting a
          // seal, so a blocked archival (sync mode) genuinely halts
          // consumption instead of buffering unboundedly past the segment
          // size.
          size_t& used = budget_used[partition_id];
          while (used < max_per_partition) {
            int64_t room =
                sp.data->segment_rows_threshold() - sp.data->BufferedRows();
            if (room <= 0) {
              UBERRT_RETURN_IF_ERROR(HandleSeal(t, &server, partition_id, &sp));
              if (sp.archival_blocked) break;  // halted until the drain below
              continue;
            }
            size_t want =
                std::min(max_per_partition - used, static_cast<size_t>(room));
            Result<std::vector<stream::Message>> batch =
                bus_->Fetch(t->topic, partition_id, sp.stream_offset, want);
            if (!batch.ok()) {
              if (batch.status().code() == StatusCode::kOutOfRange) {
                Result<int64_t> begin = bus_->BeginOffset(t->topic, partition_id);
                if (begin.ok()) sp.stream_offset = begin.value();
                continue;
              }
              break;  // cluster transiently unavailable
            }
            if (batch.value().empty()) break;
            used += batch.value().size();
            for (const stream::Message& m : batch.value()) {
              Result<Row> row = DecodeRow(m.value);
              sp.stream_offset = m.offset + 1;
              if (!row.ok()) {
                t->decode_errors->Increment();
                continue;
              }
              Status ingest = sp.data->Ingest(std::move(row.value()));
              if (!ingest.ok()) return ingest;
              ++round_rows;
            }
          }
          UBERRT_RETURN_IF_ERROR(HandleSeal(t, &server, partition_id, &sp));
          if (sp.data->NumRows() != rows_before ||
              sp.data->NumSealedSegments() != segs_before) {
            ++sp.data_version;  // invalidates cached results covering this
          }
        }
      }
      if (round_rows > 0) t->rows_ingested->Increment(round_rows);
    }
    ingested += round_rows;
    if (!sync) break;  // async mode: DrainArchivalQueue is the explicit pump
    bool pending;
    {
      std::lock_guard<std::mutex> alock(t->archival_mu);
      pending = !t->archival_queue.empty();
    }
    if (!pending) break;  // nothing sealed this round: caught up
    if (!store_ok) {
      // This call's opening drain already failed; don't pay a second
      // retry/backoff round — the next IngestOnce retries the backup.
      t->ingestion_blocked->Increment();
      break;
    }
    bool emptied = false;
    DrainArchival(t, &emptied);
    store_ok = emptied;
    if (!emptied) {
      t->ingestion_blocked->Increment();
      break;  // halted; the next IngestOnce retries the backup first
    }
    // Backup succeeded: run another consume round (budget permitting) so a
    // healthy store never caps throughput at one segment per call.
  }
  // Freshly sealed segments may push the cluster past its memory budget;
  // enforce only after the exclusive section above is released (demotions
  // never run under rw_mu).
  if (lifecycle_->memory_budget_bytes() > 0) lifecycle_->EnforceBudget();
  return ingested;
}

Result<int64_t> OlapCluster::IngestAll(const std::string& table, int32_t max_cycles) {
  int64_t total = 0;
  for (int32_t i = 0; i < max_cycles; ++i) {
    Result<int64_t> n = IngestOnce(table);
    if (!n.ok()) return n;
    total += n.value();
    Result<int64_t> lag = IngestLag(table);
    if (!lag.ok()) return lag.status();
    if (lag.value() == 0) return total;
  }
  return Status::Timeout("ingestion did not catch up");
}

Result<int64_t> OlapCluster::IngestLag(const std::string& table) const {
  Result<std::shared_ptr<Table>> found = FindTable(table);
  if (!found.ok()) return found.status();
  const Table* t = found.value().get();
  std::shared_lock<std::shared_mutex> lock(t->rw_mu);
  int64_t lag = 0;
  for (const Server& server : t->servers) {
    for (const auto& [partition_id, sp] : server.partitions) {
      Result<int64_t> end = bus_->EndOffset(t->topic, partition_id);
      if (!end.ok()) return end.status();
      lag += std::max<int64_t>(0, end.value() - sp.stream_offset);
    }
  }
  return lag;
}

Result<OlapResult> OlapCluster::Query(const std::string& table,
                                      const OlapQuery& query) const {
  Result<std::shared_ptr<Table>> found = FindTable(table);
  if (!found.ok()) return found.status();
  const std::shared_ptr<Table>& t = found.value();
  // Shared lock: concurrent queries (same or different table) overlap; only
  // ingestion/seal/recovery exclude queries, and only on this table.
  std::shared_lock<std::shared_mutex> lock(t->rw_mu);
  queries_executing_->Add(1);
  struct ExecutingGuard {
    Gauge* g;
    ~ExecutingGuard() { g->Add(-1); }
  } executing_guard{queries_executing_};

  // Partition-aware routing (Section 4.3.1): an upsert table queried with
  // an equality predicate on the primary key lives entirely in one
  // partition.
  int32_t routed_partition = -1;
  if (t->config.upsert_enabled) {
    for (const FilterPredicate& pred : query.filters) {
      if (pred.op == FilterPredicate::Op::kEq &&
          pred.column == t->config.primary_key_column) {
        routed_partition = static_cast<int32_t>(KeyToPartition(
            pred.value.ToString(), static_cast<uint32_t>(t->num_stream_partitions)));
        break;
      }
    }
  }

  // Dashboard path: consult the broker result cache. The version fingerprint
  // is the sum of the covered partitions' data_versions — versions only
  // increase (under exclusive rw_mu), so an equal sum under our shared lock
  // means no covered partition changed since the entry was written.
  const bool use_cache = query.use_cache;
  std::string cache_key;
  uint64_t cache_version = 0;
  if (use_cache) {
    cache_key = CanonicalQueryKey(query);
    for (const Server& server : t->servers) {
      for (const auto& [partition_id, sp] : server.partitions) {
        if (routed_partition >= 0 && partition_id != routed_partition) continue;
        cache_version += sp.data_version;
      }
    }
    std::lock_guard<std::mutex> clock(t->cache_mu);
    auto it = t->result_cache.find(cache_key);
    if (it != t->result_cache.end() && it->second.version == cache_version) {
      result_cache_hits_->Increment();
      // LRU: a hit moves the entry to the front.
      t->result_cache_lru.splice(t->result_cache_lru.begin(),
                                 t->result_cache_lru, it->second.lru_it);
      OlapResult cached = it->second.result;
      cached.stats.from_cache = true;
      return cached;
    }
    result_cache_misses_->Increment();
  }

  // Plan: one morsel per surviving sealed segment plus the consuming buffer,
  // laid out server-by-server so the gather below is deterministic. Zone-map
  // and time-window pruning happen here — pruned segments never become work.
  struct Morsel {
    const RealtimePartition* part;
    int32_t unit;  // sealed-segment index, or -1 for the consuming buffer
  };
  struct ServerPlan {
    size_t first_morsel = 0;
    size_t num_morsels = 0;
    OlapQueryStats plan_stats;  // carries segments_pruned
    bool touched = false;
  };
  std::vector<Morsel> morsels;
  std::vector<ServerPlan> plans(t->servers.size());
  size_t servers_with_work = 0;
  for (size_t si = 0; si < t->servers.size(); ++si) {
    ServerPlan& plan = plans[si];
    plan.first_morsel = morsels.size();
    for (const auto& [partition_id, sp] : t->servers[si].partitions) {
      if (routed_partition >= 0 && partition_id != routed_partition) continue;
      plan.touched = true;
      std::vector<int32_t> units;
      sp.data->PlanMorsels(query, &units, &plan.plan_stats);
      for (int32_t unit : units) morsels.push_back({sp.data.get(), unit});
    }
    plan.num_morsels = morsels.size() - plan.first_morsel;
    if (plan.num_morsels > 0) ++servers_with_work;
  }

  // Scatter: morsels are grouped into per-server chunks (a chunk never spans
  // servers, so the per-server fault site and retry semantics are unchanged)
  // and fan-out is bounded by pool width — many segments never means many
  // tasks. Serial path (no executor) = exactly one chunk per server.
  struct Chunk {
    size_t server;
    size_t begin;  // morsel range [begin, end)
    size_t end;
  };
  common::Executor* exec = executor_;
  const bool parallel = exec != nullptr && morsels.size() > 1;
  size_t fanout = 1;
  if (parallel) {
    fanout = std::max<size_t>(
        1, exec->num_threads() * 2 / std::max<size_t>(1, servers_with_work));
  }
  std::vector<Chunk> chunks;
  for (size_t si = 0; si < plans.size(); ++si) {
    const ServerPlan& plan = plans[si];
    if (plan.num_morsels == 0) continue;
    size_t pieces = std::min(fanout, plan.num_morsels);
    for (size_t c = 0; c < pieces; ++c) {
      size_t begin = plan.first_morsel + plan.num_morsels * c / pieces;
      size_t end = plan.first_morsel + plan.num_morsels * (c + 1) / pieces;
      if (begin < end) chunks.push_back({si, begin, end});
    }
  }

  // Each morsel writes into its own slot, so the merge below concatenates in
  // plan order regardless of which pool thread ran what — morsel-parallel
  // results are bitwise-identical to the serial path by construction.
  struct MorselOut {
    std::vector<Row> rows;
    OlapQueryStats stats;
  };
  std::vector<MorselOut> outs(morsels.size());
  std::vector<Status> chunk_status(chunks.size(), Status::Ok());
  auto run_chunk = [&](size_t ci) {
    const Chunk& chunk = chunks[ci];
    const std::string site = "olap.server.query." + std::to_string(chunk.server);
    // Transient sub-query failures (injected or real) are retried with
    // backoff before the gather ever sees them.
    int64_t attempts = 0;
    chunk_status[ci] = query_retry_->Run([&] {
      ++attempts;
      if (faults_ != nullptr) {
        UBERRT_RETURN_IF_ERROR(faults_->Check(site));
      }
      for (size_t m = chunk.begin; m < chunk.end; ++m) {
        MorselOut& out = outs[m];
        out.rows.clear();
        out.stats = OlapQueryStats{};
        Result<OlapResult> partial =
            morsels[m].part->ExecuteMorsel(query, morsels[m].unit, &out.stats);
        if (!partial.ok()) return partial.status();
        out.rows = std::move(partial.value().rows);
      }
      return Status::Ok();
    });
    if (attempts > 1) query_retries_->Increment(attempts - 1);
  };
  common::Executor::RunTaskGroup(parallel && chunks.size() > 1 ? exec : nullptr,
                                 chunks.size(), run_chunk);

  // Gather: walk servers in plan order; a server fails as a unit (any failed
  // chunk drops or fails the whole server, never a partial server).
  OlapQueryStats stats;
  std::vector<Row> rows;
  for (size_t si = 0; si < plans.size(); ++si) {
    const ServerPlan& plan = plans[si];
    Status server_status = Status::Ok();
    for (size_t ci = 0; ci < chunks.size(); ++ci) {
      if (chunks[ci].server == si && !chunk_status[ci].ok()) {
        server_status = chunk_status[ci];
        break;
      }
    }
    if (!server_status.ok()) {
      // Degraded mode: a server that stayed down after retries is dropped
      // from the merge instead of failing the query (Section 4.3's
      // availability-over-completeness trade, opt-in per query).
      if (query.allow_partial) {
        ++stats.servers_failed;
        continue;
      }
      return server_status;
    }
    stats.segments_pruned += plan.plan_stats.segments_pruned;
    if (plan.touched) ++stats.servers_queried;
    for (size_t m = plan.first_morsel; m < plan.first_morsel + plan.num_morsels;
         ++m) {
      stats.segments_scanned += outs[m].stats.segments_scanned;
      stats.rows_scanned += outs[m].stats.rows_scanned;
      stats.star_tree_hits += outs[m].stats.star_tree_hits;
      stats.exec_batches += outs[m].stats.exec_batches;
      stats.bitmap_words += outs[m].stats.bitmap_words;
      stats.segments_hot += outs[m].stats.segments_hot;
      stats.segments_warm += outs[m].stats.segments_warm;
      stats.segments_cold += outs[m].stats.segments_cold;
      stats.columns_materialized += outs[m].stats.columns_materialized;
      for (Row& row : outs[m].rows) rows.push_back(std::move(row));
    }
  }
  if (stats.exec_batches > 0) exec_batches_->Increment(stats.exec_batches);
  if (stats.bitmap_words > 0) exec_bitmap_words_->Increment(stats.bitmap_words);
  if (stats.segments_pruned > 0) segments_pruned_->Increment(stats.segments_pruned);
  lifecycle_->CountMaterializations(stats.columns_materialized);
  Result<OlapResult> merged = MergeAndFinalize(query, t->config.schema, std::move(rows));
  if (!merged.ok()) return merged;
  merged.value().stats = stats;
  // Complete results only: a degraded gather must never be served later as
  // if it were the whole table.
  if (use_cache && stats.servers_failed == 0) {
    std::lock_guard<std::mutex> clock(t->cache_mu);
    const int64_t bytes_before = t->result_cache_bytes;
    auto [it, inserted] = t->result_cache.emplace(cache_key, Table::CachedResult{});
    if (inserted) {
      t->result_cache_lru.push_front(cache_key);
      it->second.lru_it = t->result_cache_lru.begin();
    } else {
      // Recomputed in place: un-charge the stale bytes, refresh recency.
      t->result_cache_bytes -= it->second.bytes;
      t->result_cache_lru.splice(t->result_cache_lru.begin(),
                                 t->result_cache_lru, it->second.lru_it);
    }
    it->second.version = cache_version;
    it->second.result = merged.value();
    it->second.bytes = EstimateResultBytes(cache_key, it->second.result);
    t->result_cache_bytes += it->second.bytes;
    // LRU eviction under the byte cap — never the entry just written, so
    // one oversized result still caches (and evicts everything else).
    while (t->result_cache_bytes > options_.result_cache_max_bytes &&
           t->result_cache_lru.size() > 1) {
      auto victim = t->result_cache.find(t->result_cache_lru.back());
      t->result_cache_bytes -= victim->second.bytes;
      t->result_cache.erase(victim);
      t->result_cache_lru.pop_back();
    }
    result_cache_bytes_->Add(t->result_cache_bytes - bytes_before);
  }
  // A query that reloaded cold segments or materialized lazy columns grew
  // the resident set; settle the budget outside the shared lock.
  lock.unlock();
  if (lifecycle_->memory_budget_bytes() > 0 &&
      (stats.segments_cold > 0 || stats.columns_materialized > 0)) {
    lifecycle_->EnforceBudget();
  }
  return merged;
}

Result<int64_t> OlapCluster::ForceSeal(const std::string& table) {
  Result<std::shared_ptr<Table>> found = FindTable(table);
  if (!found.ok()) return found.status();
  Table* t = found.value().get();
  int64_t sealed = 0;
  {
    std::unique_lock<std::shared_mutex> lock(t->rw_mu);
    for (Server& server : t->servers) {
      for (auto& [partition_id, sp] : server.partitions) {
        int64_t before = sp.data->NumSealedSegments();
        UBERRT_RETURN_IF_ERROR(
            HandleSeal(t, &server, partition_id, &sp, /*force=*/true));
        if (sp.data->NumSealedSegments() != before) {
          sealed += sp.data->NumSealedSegments() - before;
          ++sp.data_version;
        }
      }
    }
  }
  if (t->options.archival_mode == ArchivalMode::kSyncCentralized) {
    // The sync-mode backup happens here, off the exclusive section.
    bool emptied = false;
    DrainArchival(t, &emptied);
    if (emptied) {
      UnblockArchival(t);
    } else {
      t->ingestion_blocked->Increment();
    }
  }
  if (lifecycle_->memory_budget_bytes() > 0) lifecycle_->EnforceBudget();
  return sealed;
}

Result<int64_t> OlapCluster::DrainArchivalQueue(const std::string& table) {
  Result<std::shared_ptr<Table>> found = FindTable(table);
  if (!found.ok()) return found.status();
  Table* t = found.value().get();
  bool emptied = false;
  int64_t archived = DrainArchival(t, &emptied);
  if (emptied) UnblockArchival(t);  // sync mode may be waiting on this queue
  return archived;
}

int64_t OlapCluster::ArchivalQueueDepth(const std::string& table) const {
  Result<std::shared_ptr<Table>> found = FindTable(table);
  if (!found.ok()) return 0;
  std::lock_guard<std::mutex> alock(found.value()->archival_mu);
  return static_cast<int64_t>(found.value()->archival_queue.size());
}

Status OlapCluster::KillServer(const std::string& table, int32_t server_id) {
  Result<std::shared_ptr<Table>> found = FindTable(table);
  if (!found.ok()) return found.status();
  Table* t = found.value().get();
  std::unique_lock<std::shared_mutex> lock(t->rw_mu);
  if (server_id < 0 || server_id >= static_cast<int32_t>(t->servers.size())) {
    return Status::InvalidArgument("no server " + std::to_string(server_id));
  }
  for (auto& [partition_id, sp] : t->servers[static_cast<size_t>(server_id)].partitions) {
    sp.data->DropSealedSegments();
    ++sp.data_version;  // cached results covering this partition are stale
  }
  return Status::Ok();
}

Result<RecoveryReport> OlapCluster::RecoverServer(const std::string& table,
                                                  int32_t server_id) {
  Result<std::shared_ptr<Table>> found = FindTable(table);
  if (!found.ok()) return found.status();
  Table* t = found.value().get();
  std::unique_lock<std::shared_mutex> lock(t->rw_mu);
  if (server_id < 0 || server_id >= static_cast<int32_t>(t->servers.size())) {
    return Status::InvalidArgument("no server " + std::to_string(server_id));
  }
  RecoveryReport report;
  // Which segments did this server own? Peer replica registry + archival
  // store listing both know; use the replica registry for names, falling
  // back to the store listing.
  for (auto& [segment_name, replicas] : t->replicas) {
    for (ReplicaEntry& replica : replicas) {
      if (replica.home_server != server_id) continue;
      Server& server = t->servers[static_cast<size_t>(server_id)];
      auto pit = server.partitions.find(replica.home_partition);
      if (pit == server.partitions.end()) continue;
      // Idempotent: a segment the server already holds (double recovery,
      // or a partial earlier recovery) is never restored twice.
      if (pit->second.data->HasSegment(segment_name)) continue;
      pit->second.data->RestoreSegment(replica.copy);
      ++report.segments_from_peers;
    }
  }
  // Anything archived but not replicated (sync mode) comes from the store.
  for (const std::string& key : store_->List("segments/" + table + "/")) {
    std::string segment_name = key.substr(("segments/" + table + "/").size());
    if (t->replicas.count(segment_name) > 0) continue;  // already restored
    // Only restore segments whose home partition is on this server.
    Result<std::string> blob = store_->Get(key);
    if (!blob.ok()) {
      ++report.segments_lost;
      continue;
    }
    // The archival frame carries seal seq, time bounds and upsert validity;
    // legacy blobs (bare segments) decode with conservative defaults.
    Result<SegmentFrame> restored = DecodeSegmentFrame(blob.value());
    if (!restored.ok()) {
      ++report.segments_lost;
      continue;
    }
    // Segment names are "<table>_p<partition>_s<seq>"; parse the partition.
    size_t p_pos = segment_name.rfind("_p");
    size_t s_pos = segment_name.rfind("_s");
    if (p_pos == std::string::npos || s_pos == std::string::npos || s_pos <= p_pos) {
      ++report.segments_lost;
      continue;
    }
    int32_t partition_id =
        static_cast<int32_t>(std::stol(segment_name.substr(p_pos + 2, s_pos - p_pos - 2)));
    if (partition_id % static_cast<int32_t>(t->servers.size()) != server_id) continue;
    Server& server = t->servers[static_cast<size_t>(server_id)];
    auto pit = server.partitions.find(partition_id);
    if (pit == server.partitions.end()) continue;
    if (pit->second.data->HasSegment(segment_name)) continue;
    SegmentFrame& frame = restored.value();
    if (frame.seq < 0) {
      // Legacy blob: recover the seal order from the segment name.
      frame.seq = std::stol(segment_name.substr(s_pos + 2));
    }
    RealtimePartition::SealedSegment entry;
    entry.handle = SegmentHandle::Create(frame.segment, frame.seq, frame.min_time,
                                         frame.max_time, frame.validity, key,
                                         lifecycle_.get());
    entry.validity = std::move(frame.validity);
    pit->second.data->RestoreSegment(std::move(entry));
    ++report.segments_from_store;
  }
  // Restored segments may arrive out of seal order (map iteration, store
  // listing order). Re-sort by seq and — for upsert tables — replay the
  // segments to rebuild primary-key locations and row validity. Without the
  // replay, rows overwritten by later upserts would resurrect on recovery.
  for (auto& [partition_id, sp] :
       t->servers[static_cast<size_t>(server_id)].partitions) {
    // A restored segment that meanwhile went cold must materialize for the
    // upsert replay; a store outage here surfaces instead of silently
    // resurrecting overwritten rows.
    UBERRT_RETURN_IF_ERROR(sp.data->FinishRestore());
    ++sp.data_version;
  }
  return report;
}

Result<int64_t> OlapCluster::NumRows(const std::string& table) const {
  Result<std::shared_ptr<Table>> found = FindTable(table);
  if (!found.ok()) return found.status();
  const Table* t = found.value().get();
  std::shared_lock<std::shared_mutex> lock(t->rw_mu);
  int64_t rows = 0;
  for (const Server& server : t->servers) {
    for (const auto& [partition_id, sp] : server.partitions) rows += sp.data->NumRows();
  }
  return rows;
}

Result<int64_t> OlapCluster::MemoryBytes(const std::string& table) const {
  Result<std::shared_ptr<Table>> found = FindTable(table);
  if (!found.ok()) return found.status();
  const Table* t = found.value().get();
  std::shared_lock<std::shared_mutex> lock(t->rw_mu);
  int64_t bytes = 0;
  for (const Server& server : t->servers) {
    for (const auto& [partition_id, sp] : server.partitions) {
      bytes += sp.data->MemoryBytes();
    }
  }
  return bytes;
}

Result<int64_t> OlapCluster::CompactOnce(const std::string& table) {
  Result<std::shared_ptr<Table>> found = FindTable(table);
  if (!found.ok()) return found.status();
  Table* t = found.value().get();

  // Claim under the shared lock only: the claim flips an atomic flag on the
  // handle, so concurrent CompactOnce calls never double-build a segment
  // and ingestion/queries proceed meanwhile.
  std::vector<std::shared_ptr<SegmentHandle>> pending;
  RowSchema schema;
  SegmentIndexConfig index_config;
  {
    std::shared_lock<std::shared_mutex> lock(t->rw_mu);
    schema = t->config.schema;
    for (const Server& server : t->servers) {
      for (const auto& [partition_id, sp] : server.partitions) {
        sp.data->ClaimPendingCompactions(&pending);
        index_config = sp.data->CompactionIndexConfig();
      }
    }
  }
  if (pending.empty()) return 0;

  // Rebuild off the lock (and off the write path): re-read the rows,
  // build with the table's full index configuration, swap into the shared
  // handle. Row order is preserved — a deferred seal already applied the
  // sorted column, and upsert tables never sort — so validity vectors and
  // upsert locations stay valid and results never change (no data_version
  // bump: cached results remain correct).
  std::vector<Status> statuses(pending.size(), Status::Ok());
  auto rebuild = [&](size_t i) {
    const std::shared_ptr<SegmentHandle>& handle = pending[i];
    Result<std::shared_ptr<Segment>> acquired = handle->AcquireFull();
    if (!acquired.ok()) {
      statuses[i] = acquired.status();
      return;
    }
    const std::shared_ptr<Segment>& old = acquired.value();
    std::vector<Row> rows;
    rows.reserve(static_cast<size_t>(old->NumRows()));
    for (int64_t r = 0; r < old->NumRows(); ++r) {
      rows.push_back(old->GetRow(static_cast<size_t>(r)));
    }
    Result<std::shared_ptr<Segment>> rebuilt =
        Segment::Build(old->name(), schema, rows, index_config);
    if (!rebuilt.ok()) {
      statuses[i] = rebuilt.status();
      return;
    }
    handle->ReplaceSegment(rebuilt.value());
  };
  common::Executor::RunTaskGroup(executor_, pending.size(), rebuild);

  int64_t compacted = 0;
  Status first_error = Status::Ok();
  for (size_t i = 0; i < pending.size(); ++i) {
    if (statuses[i].ok()) {
      ++compacted;
    } else {
      // Give the claim back: the next pump retries this segment.
      pending[i]->SetNeedsCompaction(true);
      if (first_error.ok()) first_error = statuses[i];
    }
  }
  if (compacted == 0 && !first_error.ok()) return first_error;
  // Rebuilt segments return to hot; settle the budget.
  if (lifecycle_->memory_budget_bytes() > 0) lifecycle_->EnforceBudget();
  return compacted;
}

}  // namespace uberrt::olap
