#include "olap/cluster.h"

#include <algorithm>

#include "common/hash.h"

namespace uberrt::olap {

Result<OlapResult> MergeAndFinalize(const OlapQuery& query,
                                    const RowSchema& table_schema,
                                    std::vector<Row> partial_rows) {
  OlapResult result;
  // Output schema.
  std::vector<FieldSpec> fields;
  if (!query.aggregations.empty()) {
    for (const std::string& g : query.group_by) {
      int idx = table_schema.FieldIndex(g);
      fields.push_back({g, idx >= 0 ? table_schema.fields()[static_cast<size_t>(idx)].type
                                    : ValueType::kString});
    }
    for (const OlapAggregation& agg : query.aggregations) {
      fields.push_back({agg.output_name,
                        agg.kind == OlapAggregation::Kind::kCount ? ValueType::kInt
                                                                  : ValueType::kDouble});
    }
  } else {
    for (const std::string& s : query.select_columns) {
      int idx = table_schema.FieldIndex(s);
      fields.push_back({s, idx >= 0 ? table_schema.fields()[static_cast<size_t>(idx)].type
                                    : ValueType::kString});
    }
  }
  result.schema = RowSchema(fields);

  if (!query.aggregations.empty()) {
    size_t num_groups = query.group_by.size();
    struct GroupEntry {
      Row key_values;
      std::vector<AggAccumulator> accs;
    };
    std::map<std::string, GroupEntry> groups;
    for (const Row& partial : partial_rows) {
      if (partial.size() != num_groups + query.aggregations.size() * kAccumulatorFields) {
        return Status::Internal("partial row width mismatch");
      }
      // Typed row encoding: ToString-based keys conflated values across
      // types (string "1" vs int 1) and embedded NULs.
      Row key_prefix(partial.begin(), partial.begin() + static_cast<long>(num_groups));
      std::string key = EncodeRow(key_prefix);
      GroupEntry& entry = groups[key];
      if (entry.accs.empty()) {
        entry.accs.resize(query.aggregations.size());
        entry.key_values.assign(partial.begin(),
                                partial.begin() + static_cast<long>(num_groups));
      }
      for (size_t a = 0; a < query.aggregations.size(); ++a) {
        Result<AggAccumulator> acc =
            ReadAccumulator(partial, num_groups + a * kAccumulatorFields);
        if (!acc.ok()) return acc.status();
        entry.accs[a].Merge(acc.value());
      }
    }
    // Global aggregation with zero matching rows still returns one row of
    // zero-valued aggregates (COUNT() = 0), as SQL does.
    if (groups.empty() && num_groups == 0) {
      GroupEntry empty;
      empty.accs.resize(query.aggregations.size());
      groups.emplace("", std::move(empty));
    }
    for (auto& [key, entry] : groups) {
      Row row = std::move(entry.key_values);
      for (size_t a = 0; a < query.aggregations.size(); ++a) {
        row.push_back(entry.accs[a].Finalize(query.aggregations[a].kind));
      }
      result.rows.push_back(std::move(row));
    }
  } else {
    result.rows = std::move(partial_rows);
  }

  // ORDER BY.
  if (!query.order_by.empty()) {
    int idx = result.schema.FieldIndex(query.order_by);
    if (idx < 0) {
      return Status::InvalidArgument("order-by column not in output: " + query.order_by);
    }
    bool desc = query.order_desc;
    std::stable_sort(result.rows.begin(), result.rows.end(),
                     [idx, desc](const Row& a, const Row& b) {
                       const Value& va = a[static_cast<size_t>(idx)];
                       const Value& vb = b[static_cast<size_t>(idx)];
                       return desc ? vb < va : va < vb;
                     });
  }
  // LIMIT.
  if (query.limit >= 0 && static_cast<int64_t>(result.rows.size()) > query.limit) {
    result.rows.resize(static_cast<size_t>(query.limit));
  }
  return result;
}

Status OlapCluster::CreateTable(TableConfig config, const std::string& source_topic,
                                ClusterTableOptions options) {
  if (config.upsert_enabled) {
    if (config.primary_key_column.empty() ||
        !config.schema.HasField(config.primary_key_column)) {
      return Status::InvalidArgument("upsert table needs a valid primary key column");
    }
    if (!config.index_config.sorted_column.empty()) {
      return Status::InvalidArgument(
          "upsert tables cannot use a sorted column (row order must be stable)");
    }
    if (!config.index_config.star_tree_dimensions.empty()) {
      return Status::InvalidArgument(
          "upsert tables cannot use a star-tree (pre-aggregates cannot see "
          "validity updates)");
    }
  }
  Result<int32_t> partitions = bus_->NumPartitions(source_topic);
  if (!partitions.ok()) return partitions.status();
  auto t = std::make_shared<Table>();
  t->options = options;
  t->topic = source_topic;
  t->num_stream_partitions = partitions.value();
  t->servers.resize(static_cast<size_t>(options.num_servers));
  for (int32_t s = 0; s < options.num_servers; ++s) t->servers[static_cast<size_t>(s)].id = s;
  for (int32_t p = 0; p < partitions.value(); ++p) {
    Server& server = t->servers[static_cast<size_t>(p % options.num_servers)];
    ServerPartition sp;
    sp.data = std::make_unique<RealtimePartition>(config, p);
    Result<int64_t> begin = bus_->BeginOffset(source_topic, p);
    if (!begin.ok()) return begin.status();
    sp.stream_offset = begin.value();
    server.partitions.emplace(p, std::move(sp));
  }
  t->config = std::move(config);
  const std::string& name = t->config.name;
  // Resolve hot-path metric handles once; the registry owns them for its
  // lifetime, so the handles stay valid even after DropTable.
  t->rows_ingested = metrics_.GetCounter("olap." + name + ".rows_ingested");
  t->decode_errors = metrics_.GetCounter("olap." + name + ".decode_errors");
  t->segments_archived = metrics_.GetCounter("olap." + name + ".segments_archived");
  t->ingestion_blocked = metrics_.GetCounter("olap." + name + ".ingestion_blocked");
  std::lock_guard<std::mutex> lock(mu_);
  if (tables_.count(name) > 0) {
    return Status::AlreadyExists("table exists: " + name);
  }
  tables_.emplace(name, std::move(t));
  return Status::Ok();
}

Status OlapCluster::DropTable(const std::string& table) {
  std::shared_ptr<Table> victim;  // destroyed outside mu_
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tables_.find(table);
  if (it == tables_.end()) return Status::NotFound("no table: " + table);
  victim = std::move(it->second);
  tables_.erase(it);
  return Status::Ok();
}

bool OlapCluster::HasTable(const std::string& table) const {
  std::lock_guard<std::mutex> lock(mu_);
  return tables_.count(table) > 0;
}

Result<TableConfig> OlapCluster::GetTableConfig(const std::string& table) const {
  Result<std::shared_ptr<Table>> found = FindTable(table);
  if (!found.ok()) return found.status();
  return found.value()->config;
}

Result<std::shared_ptr<OlapCluster::Table>> OlapCluster::FindTable(
    const std::string& table) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = tables_.find(table);
  if (it == tables_.end()) return Status::NotFound("no table: " + table);
  return it->second;
}

Status OlapCluster::ArchivePut(const std::string& key, const std::string& blob) const {
  int64_t attempts = 0;
  Status put = backup_retry_->Run([&] {
    ++attempts;
    return store_->Put(key, blob);
  });
  if (attempts > 1) backup_retries_->Increment(attempts - 1);
  return put;
}

Status OlapCluster::HandleSeal(Table* t, Server* server, int32_t partition_id,
                               ServerPartition* sp, bool force) {
  Result<std::shared_ptr<Segment>> sealed = sp->data->SealIfNeeded(force);
  if (!sealed.ok()) return sealed.status();
  if (sealed.value() == nullptr) return Status::Ok();
  const std::shared_ptr<Segment>& segment = sealed.value();
  std::string key = SegmentKey(t->config.name, segment->name());
  std::string blob = segment->Serialize();

  if (t->options.archival_mode == ArchivalMode::kSyncCentralized) {
    // One controller, synchronous backup: a store failure blocks this
    // partition's ingestion until the backup succeeds.
    Status put = ArchivePut(key, blob);
    if (!put.ok()) {
      sp->archival_blocked = true;
      std::lock_guard<std::mutex> alock(t->archival_mu);
      t->archival_queue.push_back({key, std::move(blob)});
      t->ingestion_blocked->Increment();
      return Status::Ok();  // seal kept; consumption halted
    }
    t->segments_archived->Increment();
    return Status::Ok();
  }

  // Async peer-to-peer: replicate to peers now, archive later.
  const auto& sealed_list = sp->data->sealed();
  const RealtimePartition::SealedSegment& sealed_entry = sealed_list.back();
  int32_t replicas_wanted = t->options.replication_factor - 1;
  for (int32_t offset = 1;
       offset < static_cast<int32_t>(t->servers.size()) && replicas_wanted > 0;
       ++offset) {
    int32_t peer = (server->id + offset) % static_cast<int32_t>(t->servers.size());
    ReplicaEntry replica;
    replica.home_server = server->id;
    replica.home_partition = partition_id;
    replica.copy = sealed_entry;  // shares the immutable Segment
    t->replicas[segment->name()].push_back(std::move(replica));
    --replicas_wanted;
    (void)peer;
  }
  std::lock_guard<std::mutex> alock(t->archival_mu);
  t->archival_queue.push_back({key, std::move(blob)});
  return Status::Ok();
}

Result<int64_t> OlapCluster::IngestOnce(const std::string& table,
                                        size_t max_per_partition) {
  Result<std::shared_ptr<Table>> found = FindTable(table);
  if (!found.ok()) return found.status();
  Table* t = found.value().get();
  std::unique_lock<std::shared_mutex> lock(t->rw_mu);
  int64_t ingested = 0;
  for (Server& server : t->servers) {
    for (auto& [partition_id, sp] : server.partitions) {
      if (sp.archival_blocked) {
        // Sync mode: retry the pending backup before consuming anything.
        bool unblocked = true;
        {
          std::lock_guard<std::mutex> alock(t->archival_mu);
          while (!t->archival_queue.empty()) {
            PendingArchive& pending = t->archival_queue.front();
            if (!ArchivePut(pending.key, pending.blob).ok()) {
              unblocked = false;
              break;
            }
            t->segments_archived->Increment();
            t->archival_queue.pop_front();
          }
        }
        if (!unblocked) continue;  // still halted
        sp.archival_blocked = false;
      }
      // Consume at most up to the seal threshold before attempting a seal,
      // so a blocked archival (sync mode) genuinely halts consumption
      // instead of buffering unboundedly past the segment size.
      size_t budget = max_per_partition;
      while (budget > 0) {
        int64_t room =
            sp.data->segment_rows_threshold() - sp.data->BufferedRows();
        if (room <= 0) {
          UBERRT_RETURN_IF_ERROR(HandleSeal(t, &server, partition_id, &sp));
          if (sp.archival_blocked) break;  // halted until the store is back
          continue;
        }
        size_t want = std::min(budget, static_cast<size_t>(room));
        Result<std::vector<stream::Message>> batch =
            bus_->Fetch(t->topic, partition_id, sp.stream_offset, want);
        if (!batch.ok()) {
          if (batch.status().code() == StatusCode::kOutOfRange) {
            Result<int64_t> begin = bus_->BeginOffset(t->topic, partition_id);
            if (begin.ok()) sp.stream_offset = begin.value();
            continue;
          }
          break;  // cluster transiently unavailable
        }
        if (batch.value().empty()) break;
        budget -= batch.value().size();
        for (const stream::Message& m : batch.value()) {
          Result<Row> row = DecodeRow(m.value);
          sp.stream_offset = m.offset + 1;
          if (!row.ok()) {
            t->decode_errors->Increment();
            continue;
          }
          Status ingest = sp.data->Ingest(std::move(row.value()));
          if (!ingest.ok()) return ingest;
          ++ingested;
        }
      }
      UBERRT_RETURN_IF_ERROR(HandleSeal(t, &server, partition_id, &sp));
    }
  }
  t->rows_ingested->Increment(ingested);
  return ingested;
}

Result<int64_t> OlapCluster::IngestAll(const std::string& table, int32_t max_cycles) {
  int64_t total = 0;
  for (int32_t i = 0; i < max_cycles; ++i) {
    Result<int64_t> n = IngestOnce(table);
    if (!n.ok()) return n;
    total += n.value();
    Result<int64_t> lag = IngestLag(table);
    if (!lag.ok()) return lag.status();
    if (lag.value() == 0) return total;
  }
  return Status::Timeout("ingestion did not catch up");
}

Result<int64_t> OlapCluster::IngestLag(const std::string& table) const {
  Result<std::shared_ptr<Table>> found = FindTable(table);
  if (!found.ok()) return found.status();
  const Table* t = found.value().get();
  std::shared_lock<std::shared_mutex> lock(t->rw_mu);
  int64_t lag = 0;
  for (const Server& server : t->servers) {
    for (const auto& [partition_id, sp] : server.partitions) {
      Result<int64_t> end = bus_->EndOffset(t->topic, partition_id);
      if (!end.ok()) return end.status();
      lag += std::max<int64_t>(0, end.value() - sp.stream_offset);
    }
  }
  return lag;
}

Result<OlapResult> OlapCluster::Query(const std::string& table,
                                      const OlapQuery& query) const {
  Result<std::shared_ptr<Table>> found = FindTable(table);
  if (!found.ok()) return found.status();
  const std::shared_ptr<Table>& t = found.value();
  // Shared lock: concurrent queries (same or different table) overlap; only
  // ingestion/seal/recovery exclude queries, and only on this table.
  std::shared_lock<std::shared_mutex> lock(t->rw_mu);
  queries_executing_->Add(1);
  struct ExecutingGuard {
    Gauge* g;
    ~ExecutingGuard() { g->Add(-1); }
  } executing_guard{queries_executing_};

  // Partition-aware routing (Section 4.3.1): an upsert table queried with
  // an equality predicate on the primary key lives entirely in one
  // partition.
  int32_t routed_partition = -1;
  if (t->config.upsert_enabled) {
    for (const FilterPredicate& pred : query.filters) {
      if (pred.op == FilterPredicate::Op::kEq &&
          pred.column == t->config.primary_key_column) {
        routed_partition = static_cast<int32_t>(KeyToPartition(
            pred.value.ToString(), static_cast<uint32_t>(t->num_stream_partitions)));
        break;
      }
    }
  }

  // Scatter: one sub-query per server, gathered into a server-indexed slot
  // so the merge order is deterministic regardless of scheduling.
  struct ServerPartial {
    std::vector<Row> rows;
    OlapQueryStats stats;
    Status status;
    bool touched = false;
  };
  std::vector<ServerPartial> partials(t->servers.size());
  auto run_server = [&](size_t si) {
    ServerPartial& out = partials[si];
    const std::string site = "olap.server.query." + std::to_string(si);
    // Transient sub-query failures (injected or real) are retried with
    // backoff before the gather ever sees them.
    int64_t attempts = 0;
    out.status = query_retry_->Run([&] {
      ++attempts;
      out.rows.clear();
      out.stats = OlapQueryStats{};
      out.touched = false;
      if (faults_ != nullptr) {
        UBERRT_RETURN_IF_ERROR(faults_->Check(site));
      }
      for (const auto& [partition_id, sp] : t->servers[si].partitions) {
        if (routed_partition >= 0 && partition_id != routed_partition) continue;
        out.touched = true;
        Result<OlapResult> partial = sp.data->Execute(query, &out.stats);
        if (!partial.ok()) return partial.status();
        for (Row& row : partial.value().rows) out.rows.push_back(std::move(row));
      }
      return Status::Ok();
    });
    if (attempts > 1) query_retries_->Increment(attempts - 1);
  };

  common::Executor* exec = executor_;
  if (exec != nullptr && routed_partition < 0 && t->servers.size() > 1) {
    common::WaitGroup wg;
    for (size_t si = 0; si < t->servers.size(); ++si) {
      wg.Add();
      if (!exec->Submit([&run_server, &wg, si] {
            run_server(si);
            wg.Done();
          })) {
        run_server(si);  // pool already shut down: degrade to inline
        wg.Done();
      }
    }
    wg.Wait();
  } else {
    for (size_t si = 0; si < t->servers.size(); ++si) run_server(si);
  }

  // Gather.
  OlapQueryStats stats;
  std::vector<Row> rows;
  for (ServerPartial& p : partials) {
    if (!p.status.ok()) {
      // Degraded mode: a server that stayed down after retries is dropped
      // from the merge instead of failing the query (Section 4.3's
      // availability-over-completeness trade, opt-in per query).
      if (query.allow_partial) {
        ++stats.servers_failed;
        continue;
      }
      return p.status;
    }
    stats.segments_scanned += p.stats.segments_scanned;
    stats.rows_scanned += p.stats.rows_scanned;
    stats.star_tree_hits += p.stats.star_tree_hits;
    stats.exec_batches += p.stats.exec_batches;
    stats.bitmap_words += p.stats.bitmap_words;
    if (p.touched) ++stats.servers_queried;
    for (Row& row : p.rows) rows.push_back(std::move(row));
  }
  if (stats.exec_batches > 0) exec_batches_->Increment(stats.exec_batches);
  if (stats.bitmap_words > 0) exec_bitmap_words_->Increment(stats.bitmap_words);
  Result<OlapResult> merged = MergeAndFinalize(query, t->config.schema, std::move(rows));
  if (!merged.ok()) return merged;
  merged.value().stats = stats;
  return merged;
}

Result<int64_t> OlapCluster::ForceSeal(const std::string& table) {
  Result<std::shared_ptr<Table>> found = FindTable(table);
  if (!found.ok()) return found.status();
  Table* t = found.value().get();
  std::unique_lock<std::shared_mutex> lock(t->rw_mu);
  int64_t sealed = 0;
  for (Server& server : t->servers) {
    for (auto& [partition_id, sp] : server.partitions) {
      int64_t before = sp.data->NumSealedSegments();
      UBERRT_RETURN_IF_ERROR(HandleSeal(t, &server, partition_id, &sp, /*force=*/true));
      sealed += sp.data->NumSealedSegments() - before;
    }
  }
  return sealed;
}

Result<int64_t> OlapCluster::DrainArchivalQueue(const std::string& table) {
  Result<std::shared_ptr<Table>> found = FindTable(table);
  if (!found.ok()) return found.status();
  Table* t = found.value().get();
  std::lock_guard<std::mutex> alock(t->archival_mu);
  int64_t archived = 0;
  while (!t->archival_queue.empty()) {
    PendingArchive& pending = t->archival_queue.front();
    // Backed-off retries inside ArchivePut; if the store is still down after
    // that, the segment stays queued (and counted) for the next drain.
    if (!ArchivePut(pending.key, pending.blob).ok()) break;
    ++archived;
    t->archival_queue.pop_front();
  }
  if (archived > 0) {
    t->segments_archived->Increment(archived);
  }
  return archived;
}

int64_t OlapCluster::ArchivalQueueDepth(const std::string& table) const {
  Result<std::shared_ptr<Table>> found = FindTable(table);
  if (!found.ok()) return 0;
  std::lock_guard<std::mutex> alock(found.value()->archival_mu);
  return static_cast<int64_t>(found.value()->archival_queue.size());
}

Status OlapCluster::KillServer(const std::string& table, int32_t server_id) {
  Result<std::shared_ptr<Table>> found = FindTable(table);
  if (!found.ok()) return found.status();
  Table* t = found.value().get();
  std::unique_lock<std::shared_mutex> lock(t->rw_mu);
  if (server_id < 0 || server_id >= static_cast<int32_t>(t->servers.size())) {
    return Status::InvalidArgument("no server " + std::to_string(server_id));
  }
  for (auto& [partition_id, sp] : t->servers[static_cast<size_t>(server_id)].partitions) {
    sp.data->DropSealedSegments();
  }
  return Status::Ok();
}

Result<RecoveryReport> OlapCluster::RecoverServer(const std::string& table,
                                                  int32_t server_id) {
  Result<std::shared_ptr<Table>> found = FindTable(table);
  if (!found.ok()) return found.status();
  Table* t = found.value().get();
  std::unique_lock<std::shared_mutex> lock(t->rw_mu);
  if (server_id < 0 || server_id >= static_cast<int32_t>(t->servers.size())) {
    return Status::InvalidArgument("no server " + std::to_string(server_id));
  }
  RecoveryReport report;
  // Which segments did this server own? Peer replica registry + archival
  // store listing both know; use the replica registry for names, falling
  // back to the store listing.
  for (auto& [segment_name, replicas] : t->replicas) {
    for (ReplicaEntry& replica : replicas) {
      if (replica.home_server != server_id) continue;
      Server& server = t->servers[static_cast<size_t>(server_id)];
      auto pit = server.partitions.find(replica.home_partition);
      if (pit == server.partitions.end()) continue;
      pit->second.data->RestoreSegment(replica.copy);
      ++report.segments_from_peers;
    }
  }
  // Anything archived but not replicated (sync mode) comes from the store.
  for (const std::string& key : store_->List("segments/" + table + "/")) {
    std::string segment_name = key.substr(("segments/" + table + "/").size());
    if (t->replicas.count(segment_name) > 0) continue;  // already restored
    // Only restore segments whose home partition is on this server.
    Result<std::string> blob = store_->Get(key);
    if (!blob.ok()) {
      ++report.segments_lost;
      continue;
    }
    Result<std::shared_ptr<Segment>> segment = Segment::Deserialize(blob.value());
    if (!segment.ok()) {
      ++report.segments_lost;
      continue;
    }
    // Segment names are "<table>_p<partition>_s<seq>"; parse the partition.
    size_t p_pos = segment_name.rfind("_p");
    size_t s_pos = segment_name.rfind("_s");
    if (p_pos == std::string::npos || s_pos == std::string::npos || s_pos <= p_pos) {
      ++report.segments_lost;
      continue;
    }
    int32_t partition_id =
        static_cast<int32_t>(std::stol(segment_name.substr(p_pos + 2, s_pos - p_pos - 2)));
    if (partition_id % static_cast<int32_t>(t->servers.size()) != server_id) continue;
    Server& server = t->servers[static_cast<size_t>(server_id)];
    auto pit = server.partitions.find(partition_id);
    if (pit == server.partitions.end()) continue;
    RealtimePartition::SealedSegment restored;
    restored.segment = std::move(segment.value());
    pit->second.data->RestoreSegment(std::move(restored));
    ++report.segments_from_store;
  }
  return report;
}

Result<int64_t> OlapCluster::NumRows(const std::string& table) const {
  Result<std::shared_ptr<Table>> found = FindTable(table);
  if (!found.ok()) return found.status();
  const Table* t = found.value().get();
  std::shared_lock<std::shared_mutex> lock(t->rw_mu);
  int64_t rows = 0;
  for (const Server& server : t->servers) {
    for (const auto& [partition_id, sp] : server.partitions) rows += sp.data->NumRows();
  }
  return rows;
}

Result<int64_t> OlapCluster::MemoryBytes(const std::string& table) const {
  Result<std::shared_ptr<Table>> found = FindTable(table);
  if (!found.ok()) return found.status();
  const Table* t = found.value().get();
  std::shared_lock<std::shared_mutex> lock(t->rw_mu);
  int64_t bytes = 0;
  for (const Server& server : t->servers) {
    for (const auto& [partition_id, sp] : server.partitions) {
      bytes += sp.data->MemoryBytes();
    }
  }
  return bytes;
}

}  // namespace uberrt::olap
