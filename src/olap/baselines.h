#ifndef UBERRT_OLAP_BASELINES_H_
#define UBERRT_OLAP_BASELINES_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "olap/query.h"
#include "olap/segment.h"

namespace uberrt::olap {

/// Elasticsearch-like document store baseline for the Section 4.3
/// comparison ("Elasticsearch's memory usage was 4x higher and disk usage
/// was 8x higher than Pinot ... query latency was 2x-4x higher").
///
/// Models the cost structure that drives those ratios:
///  - every document is retained as its JSON source (field names repeated
///    per document), as ES stores `_source`;
///  - every field is term-indexed (postings per distinct value per field),
///    as ES indexes all fields by default;
///  - aggregations and grouping read per-document "fielddata" arrays,
///    materialized lazily per field and kept on heap.
/// Query semantics match the OlapQuery subset so identical workloads run on
/// both stores.
class EsLikeStore {
 public:
  explicit EsLikeStore(RowSchema schema);

  Status Ingest(const Row& row);
  int64_t NumDocs() const { return static_cast<int64_t>(docs_.size()); }

  Result<OlapResult> Query(const OlapQuery& query) const;

  /// Heap footprint: source docs + postings + materialized fielddata.
  int64_t MemoryBytes() const;
  /// On-disk footprint: source docs + serialized postings.
  int64_t DiskBytes() const;

 private:
  Result<std::vector<uint32_t>> FilterDocs(const std::vector<FilterPredicate>& preds,
                                           bool* all) const;
  const std::vector<Value>& Fielddata(int field_index) const;

  RowSchema schema_;
  std::vector<std::string> docs_;  ///< JSON source per document
  /// Per field: ordered term -> doc ids ("index everything").
  std::vector<std::map<Value, std::vector<uint32_t>>> postings_;
  /// Lazily materialized column views used by aggregations (ES fielddata /
  /// doc_values loaded to heap).
  mutable std::vector<std::vector<Value>> fielddata_;
  mutable int64_t fielddata_bytes_ = 0;
  int64_t docs_bytes_ = 0;
  int64_t postings_bytes_ = 0;
};

/// Index configuration for the Druid-like baseline of Section 4.3: same
/// dictionary + inverted architecture as Pinot but without the bit-packed
/// forward index, star-tree, sorted or range specializations.
SegmentIndexConfig DruidLikeIndexConfig(const std::vector<std::string>& inverted_columns);

/// Runs `query` on `segment` through the row-at-a-time scalar engine
/// (the pre-vectorization execution path, kept as the parity oracle). Used
/// by the benches as the "scalar" engine under identical storage so the
/// vectorized speedup is isolated from index/layout effects.
Result<OlapResult> ScalarBaselineExecute(const Segment& segment, OlapQuery query,
                                         OlapQueryStats* stats);

}  // namespace uberrt::olap

#endif  // UBERRT_OLAP_BASELINES_H_
