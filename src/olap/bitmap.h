#ifndef UBERRT_OLAP_BITMAP_H_
#define UBERRT_OLAP_BITMAP_H_

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace uberrt::olap {

/// Dense selection bitmap over segment rows: one bit per row, packed into
/// uint64 words. The vectorized execution engine represents every filter
/// result as one of these — inverted posting lists, sorted-column row
/// ranges, scan predicates and upsert validity vectors all produce/consume
/// bitmaps, combined with word-wide AND / ANDNOT kernels instead of sorted
/// row-id vector intersections.
///
/// Invariant: bits at positions >= size() are always zero, so Count() and
/// Extract() never need a tail mask.
class SelectionBitmap {
 public:
  SelectionBitmap() = default;
  SelectionBitmap(size_t size, bool value) : size_(size) {
    words_.assign(NumWordsFor(size), value ? ~0ULL : 0ULL);
    if (value) MaskTail();
  }

  size_t size() const { return size_; }
  size_t NumWords() const { return words_.size(); }
  const std::vector<uint64_t>& words() const { return words_; }

  bool Test(size_t i) const { return (words_[i >> 6] >> (i & 63)) & 1; }
  void Set(size_t i) { words_[i >> 6] |= 1ULL << (i & 63); }
  void Reset(size_t i) { words_[i >> 6] &= ~(1ULL << (i & 63)); }

  void ClearAll() { words_.assign(words_.size(), 0); }

  /// this &= other. Returns words touched (for olap.exec.bitmap_words).
  size_t And(const SelectionBitmap& other) {
    size_t n = std::min(words_.size(), other.words_.size());
    for (size_t w = 0; w < n; ++w) words_[w] &= other.words_[w];
    return n;
  }

  /// this &= ~other (e.g. Ne predicates via an inverted index). Returns
  /// words touched.
  size_t AndNot(const SelectionBitmap& other) {
    size_t n = std::min(words_.size(), other.words_.size());
    for (size_t w = 0; w < n; ++w) words_[w] &= ~other.words_[w];
    return n;
  }

  /// Keeps only bits in [lo, hi) — a sorted-column range filter. Returns
  /// words touched.
  size_t IntersectRange(size_t lo, size_t hi);

  /// Clears bits in [lo, hi). Returns words touched.
  size_t ClearRange(size_t lo, size_t hi);

  /// Sets bits in [lo, hi). Returns words touched.
  size_t SetRange(size_t lo, size_t hi);

  size_t Count() const {
    size_t n = 0;
    for (uint64_t w : words_) n += static_cast<size_t>(std::popcount(w));
    return n;
  }

  /// Popcount restricted to [lo, hi).
  size_t CountRange(size_t lo, size_t hi) const;

  /// True when no bit is set in [lo, hi) — lets batch loops skip dead rows
  /// a word at a time.
  bool NoneInRange(size_t lo, size_t hi) const;

  /// Writes the positions of set bits in [lo, hi) to `out` (ascending).
  /// Returns how many were written; caller guarantees room for hi-lo.
  size_t Extract(size_t lo, size_t hi, uint32_t* out) const;

 private:
  static size_t NumWordsFor(size_t size) { return (size + 63) / 64; }
  /// Zeroes the bits beyond size_ in the last word.
  void MaskTail() {
    if (size_ % 64 != 0 && !words_.empty()) {
      words_.back() &= (1ULL << (size_ % 64)) - 1;
    }
  }

  size_t size_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace uberrt::olap

#endif  // UBERRT_OLAP_BITMAP_H_
