#ifndef UBERRT_OLAP_LIFECYCLE_H_
#define UBERRT_OLAP_LIFECYCLE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/metrics.h"
#include "common/retry.h"
#include "common/status.h"
#include "olap/segment.h"
#include "storage/object_store.h"

namespace uberrt::olap {

/// Where a sealed segment's bytes live (paper Section 4.3.4: fresh data is
/// served from memory, history migrates to the archival tier).
enum class SegmentTier {
  kHot = 0,   ///< fully decoded in process memory (dictionaries + indexes)
  kWarm = 1,  ///< only the serialized URT_SEG1 frame resident; columns
              ///< materialize lazily on first touch
  kCold = 2,  ///< evicted to the object store; reloaded (to warm) on query
};

/// URT_SEG1 archival frame: the segment blob plus the cluster-level sealing
/// state that Segment::Serialize cannot know (seal seq, time bounds, upsert
/// validity bits). Without the validity bits, store-path recovery
/// resurrected overwritten upsert rows: restored segments came back
/// all-valid. The same frame doubles as the warm tier's packed form.
struct SegmentFrame {
  int64_t seq = -1;
  TimestampMs min_time = INT64_MIN;
  TimestampMs max_time = INT64_MAX;
  /// Upsert tables only; null = all rows valid. Snapshots go stale the
  /// moment a later row supersedes a key — restore replays from row
  /// contents, never trusts these bits.
  std::shared_ptr<std::vector<bool>> validity;
  std::shared_ptr<Segment> segment;
};

std::string EncodeSegmentFrame(const SegmentFrame& frame);
/// Eager decode (recovery path): every column materializes now. Legacy
/// blobs (bare segments, no frame) decode with conservative defaults.
Result<SegmentFrame> DecodeSegmentFrame(const std::string& blob);
/// Warm-tier decode: frame metadata is skipped (the live handle keeps the
/// authoritative seq/time-bounds/validity) and the segment decodes lazily
/// per column, pinning `blob` until the segment is dropped.
Result<std::shared_ptr<Segment>> DecodeSegmentFrameLazy(
    std::shared_ptr<const std::string> blob);

class LifecycleManager;

/// The tier state of ONE sealed segment. Shared (by shared_ptr) between the
/// home partition, its peer replicas and the lifecycle manager's registry,
/// so a demotion, reload or compaction swap reaches every holder at once
/// and a replicated segment is never resident twice.
///
/// Lock discipline: `mu_` is a leaf mutex — nothing else is ever acquired
/// under it; callers hold at most a table's rw_mu (shared). Demotion and
/// reload take no rw_mu at all: in-flight queries keep the representation
/// they Acquire()d alive through the returned shared_ptr pin, so swapping
/// tiers under a running query is safe by construction. A Segment handed
/// out by Acquire() is never mutated except by its own monotone lazy
/// column decode (internally synchronized); shrinking a warm segment
/// replaces the Segment object instead of clearing the shared one.
///
/// Store I/O happens under mu_ only on the cold paths (eviction put,
/// reload get), each bounded by the manager's retry budget.
class SegmentHandle {
 public:
  /// Creates a hot handle and registers it with `manager` (null = an
  /// unmanaged handle that stays hot forever — standalone
  /// RealtimePartition use without a cluster).
  static std::shared_ptr<SegmentHandle> Create(
      std::shared_ptr<Segment> segment, int64_t seq, TimestampMs min_time,
      TimestampMs max_time, std::shared_ptr<std::vector<bool>> validity,
      std::string store_key, LifecycleManager* manager);

  const std::string& name() const { return name_; }
  const std::string& store_key() const { return store_key_; }
  int64_t num_rows() const { return num_rows_; }
  int64_t seq() const { return seq_; }
  TimestampMs min_time() const { return min_time_; }
  TimestampMs max_time() const { return max_time_; }

  SegmentTier tier() const;

  /// Plan-time pruning without materialization: hot segments answer with
  /// the exact dictionary-backed check; warm/cold consult the resident
  /// SegmentPruneInfo (same min/max/bloom, conservatively no dictionary
  /// backstop) — pruning never requires decoding a demoted segment.
  bool CanMatch(const FilterPredicate& pred) const;

  /// Query-path pin: returns the current representation (hot segment, or
  /// the warm lazy segment). Cold triggers a store reload — a promotion to
  /// warm. `observed` (optional) reports the tier served. The returned
  /// shared_ptr keeps the segment alive across any concurrent demotion.
  Result<std::shared_ptr<Segment>> Acquire(SegmentTier* observed = nullptr);
  /// Acquire + materialize every column (recovery replay, compaction).
  Result<std::shared_ptr<Segment>> AcquireFull();

  /// Restore replay swaps validity vectors; the handle must carry the live
  /// one so later demotions archive the current bits.
  void SetValidity(std::shared_ptr<std::vector<bool>> validity);
  /// Upsert ingest marks a superseded row invalid through the handle so the
  /// bit flip is synchronized against a concurrent demotion snapshotting
  /// the same bits (queries are already excluded by the table's rw_mu).
  void InvalidateRow(size_t row);

  /// Compaction commit: swaps in the rebuilt (fully indexed) segment. The
  /// handle returns to hot; the stale packed frame is dropped (re-encoded
  /// on the next demotion). In-flight queries finish on the old segment —
  /// both produce identical rows, so results never change mid-swap.
  void ReplaceSegment(std::shared_ptr<Segment> segment);

  bool needs_compaction() const {
    return needs_compaction_.load(std::memory_order_acquire);
  }
  void SetNeedsCompaction(bool pending) {
    needs_compaction_.store(pending, std::memory_order_release);
  }
  /// Atomically claims the pending-compaction flag (exactly one claimer).
  bool ClaimCompaction() {
    return needs_compaction_.exchange(false, std::memory_order_acq_rel);
  }

  /// hot -> warm: encodes the packed frame (current validity) and replaces
  /// the decoded segment with a lazy one over it. No-op unless hot.
  Status DemoteToWarm();
  /// warm -> cold: drops the frame after making sure the store holds it
  /// (put-if-absent with retries). Fails — and the segment stays warm —
  /// while the store is down. No-op unless warm.
  Status DemoteToCold();
  /// Re-packs a warm segment: drops its lazily materialized columns by
  /// swapping in a fresh lazy segment over the same frame. No-op unless
  /// warm.
  void ShrinkWarm();

  /// Process-memory footprint of the current representation (decoded
  /// segment and/or packed frame + resident prune info + validity bits).
  /// Cold segments cost only the prune info.
  int64_t ResidentBytes() const;
  /// Store-side bytes while cold (0 otherwise) — the cold-tier gauge.
  int64_t ColdBytes() const;

  uint64_t last_touch() const {
    return last_touch_.load(std::memory_order_relaxed);
  }
  /// Bumps the query-recency clock (manager-issued logical ticks).
  void Touch();

 private:
  SegmentHandle() = default;

  /// Copy of the current validity bits, taken under validity_mu_ (demotion
  /// frame encode; null when all rows are valid).
  std::shared_ptr<std::vector<bool>> SnapshotValidity() const;

  std::string name_;
  std::string store_key_;
  int64_t num_rows_ = 0;
  int64_t seq_ = -1;
  TimestampMs min_time_ = INT64_MIN;
  TimestampMs max_time_ = INT64_MAX;
  SegmentPruneInfo prune_;  ///< immutable after Create; resident per tier
  LifecycleManager* manager_ = nullptr;

  mutable std::mutex mu_;  // leaf; guards the representation below
  SegmentTier tier_ = SegmentTier::kHot;
  std::shared_ptr<Segment> segment_;  ///< hot: full; warm: lazy; cold: null
  std::shared_ptr<const std::string> packed_;  ///< warm: frame blob
  int64_t cold_bytes_ = 0;

  /// Guards the validity pointer and its bits against the one writer that
  /// runs outside the table's rw_mu (demotion's snapshot). Leaf, ordered
  /// after mu_; never held across store I/O.
  mutable std::mutex validity_mu_;
  std::shared_ptr<std::vector<bool>> validity_;

  std::atomic<uint64_t> last_touch_{0};
  std::atomic<bool> needs_compaction_{false};
};

struct LifecycleOptions {
  /// Cluster-wide budget for sealed-segment memory plus whatever the
  /// external-bytes hook reports (result caches). 0 = unlimited: no
  /// demotions ever happen on their own.
  int64_t memory_budget_bytes = 0;
};

/// Owns the tier policy: a registry of every live SegmentHandle, the
/// query-recency clock, the store plumbing for cold evictions/reloads, and
/// the olap.tier.* metrics. One per OlapCluster.
class LifecycleManager {
 public:
  LifecycleManager(storage::ObjectStore* store, MetricsRegistry* metrics,
                   LifecycleOptions options = {});

  void Register(const std::shared_ptr<SegmentHandle>& handle);

  void SetMemoryBudget(int64_t bytes) {
    budget_.store(bytes, std::memory_order_relaxed);
  }
  int64_t memory_budget_bytes() const {
    return budget_.load(std::memory_order_relaxed);
  }

  /// Bytes charged to the budget besides segments (the broker result
  /// caches). Set once at cluster wiring, before any concurrent use.
  void SetExternalBytesFn(std::function<int64_t()> fn) {
    external_bytes_fn_ = std::move(fn);
  }

  /// LRU demotion (oldest last_touch first) until hot+warm resident bytes
  /// plus external bytes fit the budget: hot->warm, then re-pack warm
  /// (drop lazily materialized columns), then warm->cold. Cold eviction
  /// stops at the first store failure (retried on the next pass). No-op
  /// without a budget. Callers must NOT hold any table rw_mu — cold
  /// eviction does store I/O. Returns demotions performed.
  int64_t EnforceBudget();

  /// Test/bench hook: demote by recency (most recent kept) until at most
  /// `max_hot` handles are hot and at most `max_warm` warm — exact tier
  /// ratios for the footprint/latency curves. Handles kept warm are shrunk
  /// back to the packed frame (lazily-materialized columns dropped). Only
  /// demotes (a cold handle never re-promotes here). Returns the first
  /// store error, if any.
  Status ApplyTierTargets(int64_t max_hot, int64_t max_warm);

  /// Hot+warm resident bytes across all live handles (excludes cold store
  /// bytes and the external/result-cache bytes).
  int64_t ManagedBytes();
  /// ManagedBytes plus the external-bytes hook — what EnforceBudget
  /// compares against the budget.
  int64_t BudgetedBytes();

  /// Re-publishes olap.tier.{hot,warm,cold}_bytes from a registry walk.
  void RefreshGauges();

  uint64_t Tick() { return clock_.fetch_add(1, std::memory_order_relaxed) + 1; }

  // --- used by SegmentHandle -----------------------------------------------
  Result<std::string> LoadBlob(const std::string& key);
  Status EnsureDurable(const std::string& key, const std::string& blob);
  void CountPromotion() { promotions_->Increment(); }
  void CountDemotion() { demotions_->Increment(); }
  void CountMaterializations(int64_t n) {
    if (n > 0) materializations_->Increment(n);
  }

 private:
  /// Live handles, oldest last_touch first; expired weak_ptrs are pruned.
  std::vector<std::shared_ptr<SegmentHandle>> SnapshotLru();

  storage::ObjectStore* store_;
  std::unique_ptr<common::RetryPolicy> store_retry_;
  std::function<int64_t()> external_bytes_fn_;

  std::mutex registry_mu_;
  std::vector<std::weak_ptr<SegmentHandle>> handles_;

  std::mutex enforce_mu_;  ///< one budget / tier-target pass at a time
  std::atomic<int64_t> budget_{0};
  std::atomic<uint64_t> clock_{0};

  Gauge* hot_bytes_;
  Gauge* warm_bytes_;
  Gauge* cold_bytes_;
  Counter* demotions_;
  Counter* promotions_;
  Counter* materializations_;
};

}  // namespace uberrt::olap

#endif  // UBERRT_OLAP_LIFECYCLE_H_
