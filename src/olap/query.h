#ifndef UBERRT_OLAP_QUERY_H_
#define UBERRT_OLAP_QUERY_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/value.h"

namespace uberrt::olap {

/// One ANDed predicate of an OLAP filter.
struct FilterPredicate {
  enum class Op { kEq, kNe, kLt, kLe, kGt, kGe };
  std::string column;
  Op op = Op::kEq;
  Value value;

  static FilterPredicate Eq(std::string column, Value v) {
    return {std::move(column), Op::kEq, std::move(v)};
  }
  static FilterPredicate Range(std::string column, Op op, Value v) {
    return {std::move(column), op, std::move(v)};
  }
};

/// Aggregation requested from the OLAP layer.
struct OlapAggregation {
  enum class Kind { kCount, kSum, kMin, kMax, kAvg };
  Kind kind = Kind::kCount;
  std::string column;  ///< ignored for kCount
  std::string output_name;

  static OlapAggregation Count(std::string output) {
    return {Kind::kCount, "", std::move(output)};
  }
  static OlapAggregation Sum(std::string column, std::string output) {
    return {Kind::kSum, std::move(column), std::move(output)};
  }
  static OlapAggregation Min(std::string column, std::string output) {
    return {Kind::kMin, std::move(column), std::move(output)};
  }
  static OlapAggregation Max(std::string column, std::string output) {
    return {Kind::kMax, std::move(column), std::move(output)};
  }
  static OlapAggregation Avg(std::string column, std::string output) {
    return {Kind::kAvg, std::move(column), std::move(output)};
  }
};

/// The limited-SQL query shape the OLAP layer serves (paper Section 3,
/// "OLAP"): filters, aggregations, group by, order by, limit — but no joins
/// or subqueries (those belong to the SQL layer on top, Section 4.3.2).
struct OlapQuery {
  /// Raw selection mode: project these columns (empty + no aggregations is
  /// invalid). Mutually exclusive with aggregations.
  std::vector<std::string> select_columns;
  std::vector<OlapAggregation> aggregations;
  std::vector<FilterPredicate> filters;  ///< ANDed
  std::vector<std::string> group_by;
  /// Output column to order by ("" = none).
  std::string order_by;
  bool order_desc = true;
  int64_t limit = -1;  ///< -1 = unlimited
  /// Degraded-mode switch: when true, a server whose sub-query still fails
  /// after retries is dropped from the gather (stats.servers_failed counts
  /// it) instead of failing the whole query. Default keeps strict semantics.
  bool allow_partial = false;
  /// Debug oracle: bypass the vectorized engine AND the star-tree and run
  /// the row-at-a-time scalar path (per-value forward-index reads, boxed
  /// Values, map-keyed groups). Kept compiled-in forever so the parity fuzz
  /// can diff the vectorized engine against it on any query.
  bool force_scalar = false;
  /// Dashboard-path switch: serve this query from the broker's per-table
  /// result cache when a fresh entry exists (invalidated per partition on
  /// ingest/seal/kill/recover). Off by default so one-shot queries and the
  /// stats-asserting tests see real executions.
  bool use_cache = false;
};

/// Canonical cache key for a query: identical semantics -> identical key
/// (filters are order-insensitive because they are ANDed, so they are
/// sorted; values use the typed EncodeRow bytes, never ToString). The table
/// name is NOT part of the key — the cache itself is per-table.
std::string CanonicalQueryKey(const OlapQuery& query);

/// Mergeable partial aggregate. Segments return *partial* rows — group
/// values followed by one 4-value accumulator (count, sum, min, max) per
/// aggregation — which the broker merges across segments and servers and
/// then finalizes (scatter-gather-merge, Section 4.3).
struct AggAccumulator {
  int64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;

  void Add(double v);
  void Merge(const AggAccumulator& other);
  Value Finalize(OlapAggregation::Kind kind) const;
};

/// Number of Row fields one serialized accumulator occupies.
inline constexpr size_t kAccumulatorFields = 4;

/// Appends [count, sum, min, max] to a partial row.
void AppendAccumulator(Row* row, const AggAccumulator& acc);
/// Reads an accumulator back from a partial row at `offset`.
Result<AggAccumulator> ReadAccumulator(const Row& row, size_t offset);

/// Per-query execution statistics (observability + bench assertions).
struct OlapQueryStats {
  int64_t segments_scanned = 0;
  int64_t segments_pruned = 0;   ///< sealed segments skipped by zone-map/time pruning
  int64_t rows_scanned = 0;      ///< rows visited by scans (0 for pure index hits)
  int64_t star_tree_hits = 0;    ///< segments answered from the star-tree
  int64_t servers_queried = 0;
  int64_t servers_failed = 0;    ///< sub-queries dropped (allow_partial only)
  int64_t exec_batches = 0;      ///< non-empty row batches the vectorized engine ran
  int64_t bitmap_words = 0;      ///< words touched by selection-bitmap kernels
  int64_t segments_hot = 0;      ///< morsels served from fully decoded segments
  int64_t segments_warm = 0;     ///< morsels served from packed (lazy) segments
  int64_t segments_cold = 0;     ///< morsels that reloaded a segment from the store
  int64_t columns_materialized = 0;  ///< lazy column decodes this query triggered
  bool from_cache = false;       ///< answered from the broker result cache
};

struct OlapResult {
  RowSchema schema;
  std::vector<Row> rows;
  OlapQueryStats stats;
};

}  // namespace uberrt::olap

#endif  // UBERRT_OLAP_QUERY_H_
